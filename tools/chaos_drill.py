#!/usr/bin/env python3
"""Chaos drill: drive bench_recovery across the fault matrix and enforce
the recovery contract from DESIGN.md ("Fault model and recovery
contract"):

  * every injection either completes after automatic restart — bitwise
    identical to the uninterrupted baseline in exact mode — or surfaces a
    typed CommAborted (recorded as recovered=false in the JSON);
  * never a hang (per-run wall-clock timeout) and never a crash
    (non-zero exit, sanitizer report).

The binary already sweeps algebras x overlap x compress x injection
points internally; this driver shards the sweep into one process per
algebra so a hang in one cell cannot mask the others, applies the
timeout, and validates every emitted record.

Usage:  python3 tools/chaos_drill.py [--build build] [--timeout 120]
                                     [--smoke]
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

ALGEBRAS = ["1d", "1.5d-c2", "2d", "3d"]

REQUIRED_FIELDS = {
    "schema_version", "bench", "algebra", "world", "overlap", "compress",
    "action", "site", "category", "nth", "epochs", "ckpt_every",
    "restarts", "retrained_epochs", "checkpoints_written",
    "checkpoint_write_seconds", "recovered", "bitwise_identical",
    "seconds", "baseline_seconds", "recovery_overhead_s",
}


def run_shard(binary: Path, algebra: str, smoke: bool, timeout: float):
    cmd = [str(binary), "--algebras", algebra]
    if smoke:
        cmd.append("--smoke")
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        return None, [f"{algebra}: HANG — no result within {timeout}s "
                      f"(the unwind guarantee is broken)"]
    if proc.returncode != 0:
        return None, [f"{algebra}: CRASH — exit {proc.returncode}\n"
                      f"{proc.stderr.strip()}"]
    return proc.stdout, []


def validate(records, errors):
    for r in records:
        where = (f"{r.get('algebra')}/overlap={r.get('overlap')}/"
                 f"{r.get('compress')}/{r.get('action')}@{r.get('site')}")
        missing = REQUIRED_FIELDS - r.keys()
        if missing:
            errors.append(f"{where}: missing fields {sorted(missing)}")
            continue
        if not r["recovered"]:
            # A typed abort after exhausted restarts is an acceptable
            # outcome, but with max_restarts=3 and one-shot triggers it
            # means the supervision loop failed to make progress.
            errors.append(f"{where}: did not recover within the restart "
                          f"budget (restarts={r['restarts']})")
        if r["compress"] == "off" and r["recovered"] \
                and not r["bitwise_identical"]:
            errors.append(f"{where}: exact-mode recovery is not bitwise "
                          f"identical to the uninterrupted baseline")
        if r["restarts"] > 0 and r["ckpt_every"] > 0 \
                and r["retrained_epochs"] > r["ckpt_every"] + r["epochs"]:
            errors.append(f"{where}: retrained {r['retrained_epochs']} "
                          f"epochs — more than a checkpoint interval of "
                          f"work was lost per restart")


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build",
                    help="build directory containing bench_recovery")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-shard wall-clock hang limit (seconds)")
    ap.add_argument("--smoke", action="store_true",
                    help="smaller graph / fewer epochs per cell")
    args = ap.parse_args()

    binary = Path(args.build) / "bench_recovery"
    if not binary.exists():
        print(f"missing binary: {binary} (build the repo first)",
              file=sys.stderr)
        return 1

    errors = []
    cells = 0
    for algebra in ALGEBRAS:
        stdout, shard_errors = run_shard(binary, algebra, args.smoke,
                                         args.timeout)
        errors.extend(shard_errors)
        if stdout is None:
            continue
        records = []
        for line in stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                errors.append(f"{algebra}: bad JSON line ({e}): {line!r}")
        if not records:
            errors.append(f"{algebra}: emitted no drill records")
        cells += len(records)
        validate(records, errors)

    if errors:
        print(f"chaos drill: {len(errors)} contract violation(s) across "
              f"{cells} cells", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"chaos drill: {cells} cells — every injection recovered, "
          f"exact mode bitwise, no hangs, no crashes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
