#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Validates every markdown link in the tracked top-level documents:
  - relative file links must point at files that exist in the repo;
  - intra-document anchors (#heading) must match a heading in the target;
  - http(s) URLs are only syntax-checked (CI must not depend on the
    network), and bare fragments like [text]() are rejected.

Exit status is the number of broken links (0 == all good). Run from the
repository root:  python3 tools/check_links.py [files...]
"""

import re
import sys
from pathlib import Path

DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "CHANGES.md",
    "ROADMAP.md",
    "PAPER.md",
    "PAPERS.md",
]

LINK_RE = re.compile(r"(?<!\!)\[(?P<text>[^\]]+)\]\((?P<target>[^)\s]*)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)


def anchor_of(title: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    slug = title.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"[\s]+", "-", slug)


def headings(path: Path) -> set:
    return {anchor_of(m.group("title"))
            for m in HEADING_RE.finditer(path.read_text(encoding="utf-8"))}


def check_file(path: Path, root: Path) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group("target")
        where = f"{path}: [{match.group('text')}]({target})"
        if target.startswith(("http://", "https://")):
            continue  # syntax ok; no network in CI
        if target == "":
            problems.append(f"{where}: empty link target")
            continue
        if target.startswith("#"):
            if anchor_of(target[1:]) not in headings(path):
                problems.append(f"{where}: no such heading in this file")
            continue
        file_part, _, fragment = target.partition("#")
        dest = (path.parent / file_part).resolve()
        try:
            dest.relative_to(root)
        except ValueError:
            problems.append(f"{where}: points outside the repository")
            continue
        if not dest.exists():
            problems.append(f"{where}: file does not exist")
            continue
        if fragment and dest.suffix == ".md":
            if anchor_of(fragment) not in headings(dest):
                problems.append(f"{where}: no heading '{fragment}' in "
                                f"{file_part}")
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    names = sys.argv[1:] or DEFAULT_DOCS
    problems = []
    checked = 0
    for name in names:
        path = (root / name).resolve()
        if not path.exists():
            # CHANGES.md etc. are expected; anything listed must exist.
            problems.append(f"{name}: document missing")
            continue
        checked += 1
        problems.extend(check_file(path, root))
    for p in problems:
        print(f"BROKEN: {p}", file=sys.stderr)
    print(f"checked {checked} documents, {len(problems)} broken links")
    return min(len(problems), 125)


if __name__ == "__main__":
    sys.exit(main())
