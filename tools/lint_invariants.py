#!/usr/bin/env python3
"""Repo-invariant linter: structural rules the compiler cannot enforce.

Each rule pins a convention the runtime's correctness story depends on
(see DESIGN.md, "Correctness tooling"):

  seam-funnel      every collective entry point in the comm runtime calls
                   detail::seam_event — an op that bypasses the transport
                   seam is invisible to fault injection and to the
                   contract checker.
  naked-thread     no `std::thread` outside src/util/parallel.* — ad-hoc
                   threads escape the pool's budget accounting and the
                   TSan-annotated handoff paths. run_world's rank threads
                   are the one deliberate exception, marked
                   `lint:allow(naked-thread)`.
  hot-path-alloc   functions marked `// [[hot-path]]` must not allocate
                   (new/malloc/make_unique/...): they run on every
                   publish/await/charge and an allocation there is both a
                   perf cliff and a lock-order hazard under TSan.
  knob-docs        every env knob (a quoted "CAGNET_*" string in src/)
                   has a row in README.md's knob table and a mention in
                   DESIGN.md — an undocumented knob is an untestable one.
  bench-schema     the JSON fields each bench emits equal the field set
                   pinned in tools/check_bench_schema.py — drift in
                   either direction makes the tracked trajectory files
                   lie by omission.

Run from the repo root (CI does):  python3 tools/lint_invariants.py
Self-test (seeded violations, one per rule):  ... --self-test
Exit status: 0 clean, 1 violations found (or a self-test rule failed to
fire), 2 usage/internal error.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
BENCH = REPO / "bench"

# ---- rule: seam-funnel -------------------------------------------------

# Collective entry points that publish or read channel/slot state
# directly. Wrappers that only delegate (allgather -> allgatherv,
# allreduce_sum -> reduce_impl, the i-collectives -> post_async) are
# covered through their callee.
SEAM_ANCHORS = {
    "src/comm/comm.hpp": [
        "void broadcast(",
        "void broadcast_from(",
        "void reduce_scatter_sum(",
        "void allgatherv_into(",
        "std::vector<T> exchange(",
        "std::vector<T> route(",
        "void alltoallv_into(",
        "Gathered<T> gather(",
        "std::span<const T> await_source(",
        "void reduce_impl(",
    ],
    "src/comm/comm.cpp": [
        "PendingOp Comm::post_async(",
        "void PendingOp::wait(",
    ],
}


def function_body(text, anchor_index):
    """The brace-matched body of the function starting at anchor_index,
    or None if no opening brace follows."""
    open_brace = text.find("{", anchor_index)
    if open_brace < 0:
        return None
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace : i + 1]
    return None


def check_seam_funnel(root):
    violations = []
    for rel, anchors in SEAM_ANCHORS.items():
        path = root / rel
        if not path.is_file():
            violations.append(f"{rel}: file missing (seam-funnel anchors "
                              f"are stale; update SEAM_ANCHORS)")
            continue
        text = path.read_text()
        for anchor in anchors:
            at = text.find(anchor)
            if at < 0:
                violations.append(
                    f"{rel}: collective `{anchor.rstrip('(')}` not found "
                    f"(renamed? update SEAM_ANCHORS)")
                continue
            body = function_body(text, at)
            if body is None or "seam_event(" not in body:
                line = text.count("\n", 0, at) + 1
                violations.append(
                    f"{rel}:{line}: seam-funnel: collective "
                    f"`{anchor.rstrip('(')}` does not call "
                    f"detail::seam_event — it is invisible to fault "
                    f"injection and the contract checker")
    return violations


# ---- rule: naked-thread ------------------------------------------------

THREAD_RE = re.compile(r"std::thread\b")
THREAD_ALLOW = "lint:allow(naked-thread)"
THREAD_EXEMPT = ("src/util/parallel.hpp", "src/util/parallel.cpp")


def check_naked_thread(root):
    violations = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel in THREAD_EXEMPT:
            continue
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            if not THREAD_RE.search(line):
                continue
            if "std::thread::hardware_concurrency" in line:
                continue
            prev = lines[i - 1] if i > 0 else ""
            if THREAD_ALLOW in line or THREAD_ALLOW in prev:
                continue
            violations.append(
                f"{rel}:{i + 1}: naked-thread: raw std::thread outside "
                f"src/util/parallel.* (use the pool, or annotate a "
                f"deliberate exception with `{THREAD_ALLOW}`)")
    return violations


# ---- rule: hot-path-alloc ----------------------------------------------

HOT_MARK = "[[hot-path]]"
ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
    r"|\bmake_unique\b|\bmake_shared\b")


def check_hot_path_alloc(root):
    violations = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        search_from = 0
        while True:
            mark = text.find(HOT_MARK, search_from)
            if mark < 0:
                break
            search_from = mark + len(HOT_MARK)
            body = function_body(text, mark)
            if body is None:
                line = text.count("\n", 0, mark) + 1
                violations.append(
                    f"{rel}:{line}: hot-path-alloc: {HOT_MARK} marker "
                    f"with no function body following it")
                continue
            hit = ALLOC_RE.search(body)
            if hit:
                line = (text.count("\n", 0, mark + text[mark:].find(hit.group(0)))
                        + 1)
                violations.append(
                    f"{rel}:{line}: hot-path-alloc: `{hit.group(0).strip()}`"
                    f" inside a {HOT_MARK} function (allocation on the "
                    f"publish/await/charge path)")
    return violations


# ---- rule: knob-docs ---------------------------------------------------

KNOB_RE = re.compile(r'"(CAGNET_[A-Z_]+)"')


def check_knob_docs(root):
    knobs = set()
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        knobs.update(KNOB_RE.findall(path.read_text()))
    # CAGNET_CHECK is also the assertion macro's name; the quoted literal
    # in contract_check.cpp is the env knob, which is what we want here.
    violations = []
    readme = (root / "README.md").read_text() if (root / "README.md").is_file() else ""
    design = (root / "DESIGN.md").read_text() if (root / "DESIGN.md").is_file() else ""
    table_rows = [l for l in readme.splitlines() if l.lstrip().startswith("|")]
    for knob in sorted(knobs):
        exact = re.compile(re.escape(knob) + r"(?![A-Z_])")
        if not any(exact.search(row) for row in table_rows):
            violations.append(
                f"README.md: knob-docs: env knob {knob} (read in src/) has "
                f"no row in the README knob table")
        if not exact.search(design):
            violations.append(
                f"DESIGN.md: knob-docs: env knob {knob} (read in src/) is "
                f"never mentioned in DESIGN.md")
    return violations


# ---- rule: bench-schema ------------------------------------------------

BENCH_NAME_RE = re.compile(r'\\"bench\\":\\"([a-z0-9_]+)\\"')
FIELD_RE = re.compile(r'\\"([a-z0-9_]+)\\":')


def load_schemas(root):
    sys.path.insert(0, str(root / "tools"))
    try:
        import check_bench_schema
        return check_bench_schema.SCHEMAS
    finally:
        sys.path.pop(0)


def check_bench_schema_sync(root, schemas=None):
    if schemas is None:
        schemas = load_schemas(root)
    violations = []
    seen_benches = set()
    bench_dir = root / "bench"
    for path in sorted(bench_dir.glob("*.cpp")) if bench_dir.is_dir() else []:
        text = path.read_text()
        names = set(BENCH_NAME_RE.findall(text))
        if not names:
            continue
        rel = path.relative_to(root).as_posix()
        for name in sorted(names):
            seen_benches.add(name)
            if name not in schemas:
                violations.append(
                    f"{rel}: bench-schema: emits bench \"{name}\" which has "
                    f"no entry in tools/check_bench_schema.py SCHEMAS")
                continue
            emitted = set(FIELD_RE.findall(text))
            missing = emitted - schemas[name]
            stale = schemas[name] - emitted
            for f in sorted(missing):
                violations.append(
                    f"{rel}: bench-schema: field \"{f}\" is emitted but "
                    f"missing from SCHEMAS[\"{name}\"] in "
                    f"tools/check_bench_schema.py")
            for f in sorted(stale):
                violations.append(
                    f"{rel}: bench-schema: SCHEMAS[\"{name}\"] pins field "
                    f"\"{f}\" which the bench no longer emits")
    for name in schemas:
        if name not in seen_benches:
            violations.append(
                f"tools/check_bench_schema.py: bench-schema: SCHEMAS entry "
                f"\"{name}\" has no emitting bench under bench/")
    return violations


# ---- driver ------------------------------------------------------------

RULES = [
    ("seam-funnel", check_seam_funnel),
    ("naked-thread", check_naked_thread),
    ("hot-path-alloc", check_hot_path_alloc),
    ("knob-docs", check_knob_docs),
    ("bench-schema", check_bench_schema_sync),
]


def run(root):
    all_violations = []
    for name, rule in RULES:
        all_violations.extend(rule(root))
    for v in all_violations:
        print(v)
    if all_violations:
        print(f"lint_invariants: {len(all_violations)} violation(s)")
        return 1
    print(f"lint_invariants: OK ({len(RULES)} rules, 0 violations)")
    return 0


# ---- self-test ---------------------------------------------------------
#
# Seeds one violation per rule into a synthetic tree and asserts the rule
# fires. A rule that stops firing (regex rot, renamed anchor) fails CI
# here rather than silently passing everything forever.


def build_seeded_tree(tmp):
    (tmp / "src/comm").mkdir(parents=True)
    (tmp / "src/util").mkdir(parents=True)
    (tmp / "bench").mkdir()
    # seam-funnel: both anchor files exist but broadcast never calls
    # seam_event; the rest of the anchors are present and clean.
    hpp_parts = []
    for anchor in SEAM_ANCHORS["src/comm/comm.hpp"]:
        body = "{}" if anchor == "void broadcast(" else "{ seam_event(x); }"
        hpp_parts.append(f"template <typename T>\n{anchor}) {body}\n")
    (tmp / "src/comm/comm.hpp").write_text("\n".join(hpp_parts))
    cpp_parts = []
    for anchor in SEAM_ANCHORS["src/comm/comm.cpp"]:
        cpp_parts.append(f"{anchor}) {{ seam_event(x); }}\n")
    # naked-thread: a raw std::thread outside parallel.*, unannotated.
    cpp_parts.append("void rogue() { std::thread t([] {}); t.join(); }\n")
    # hot-path-alloc: a marked function that allocates.
    cpp_parts.append(
        "// [[hot-path]]\nvoid hot() { auto* p = new int(1); (void)p; }\n")
    # knob-docs: a knob read in src/ but absent from README/DESIGN.
    cpp_parts.append(
        'void knob() { (void)std::getenv("CAGNET_UNDOCUMENTED"); }\n')
    (tmp / "src/comm/comm.cpp").write_text("\n".join(cpp_parts))
    (tmp / "README.md").write_text("| `CAGNET_DOCUMENTED` | ... |\n")
    (tmp / "DESIGN.md").write_text("CAGNET_DOCUMENTED\n")
    # bench-schema: emits a field the schema does not pin.
    (tmp / "bench/bench_fake.cpp").write_text(
        'printf("{\\"schema_version\\":1,\\"bench\\":\\"fake\\","'
        '"\\"rogue_field\\":%d}\\n", 1);\n')
    return {"fake": {"schema_version", "bench"}}


def self_test():
    import shutil
    import tempfile
    tmp = Path(tempfile.mkdtemp(prefix="lint_selftest_"))
    try:
        schemas = build_seeded_tree(tmp)
        failures = []
        expectations = [
            ("seam-funnel", lambda: check_seam_funnel(tmp)),
            ("naked-thread", lambda: check_naked_thread(tmp)),
            ("hot-path-alloc", lambda: check_hot_path_alloc(tmp)),
            ("knob-docs", lambda: check_knob_docs(tmp)),
            ("bench-schema",
             lambda: check_bench_schema_sync(tmp, schemas)),
        ]
        for name, rule in expectations:
            found = [v for v in rule() if name in v]
            if not found:
                failures.append(name)
                print(f"self-test: rule {name} FAILED to flag its seeded "
                      f"violation")
            else:
                print(f"self-test: rule {name} fired: {found[0]}")
        if failures:
            print(f"lint_invariants --self-test: {len(failures)} rule(s) "
                  f"dead: {', '.join(failures)}")
            return 1
        print(f"lint_invariants --self-test: OK ({len(expectations)} rules "
              f"fire on seeded violations)")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main(argv):
    if "--self-test" in argv:
        return self_test()
    if len(argv) > 1:
        print(f"usage: {argv[0]} [--self-test]", file=sys.stderr)
        return 2
    return run(REPO)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
