#!/usr/bin/env python3
"""Schema check for the tracked bench JSON trajectory files.

BENCH_EPOCH_THROUGHPUT.json and BENCH_RECOVERY.json accumulate one JSON
object per line across PRs. Schema drift — a bench gaining a field
without the tracked records being regenerated — makes a file lie by
omission (e.g. older epoch_throughput records silently lacking
halo_words/partition/halo, so a halo regression hides in rows that
cannot express it). This check pins the full per-bench field set: every
tracked record must carry every field its bench emits today. For the
recovery drills it additionally pins the semantic contract: an
exact-mode run that recovered must be bitwise identical to its
uninterrupted baseline.

Run from the repo root (CI does):  python3 tools/check_bench_schema.py
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TRACKED_FILES = [REPO / "BENCH_EPOCH_THROUGHPUT.json",
                 REPO / "BENCH_RECOVERY.json"]

# Full field set per bench type, matching the printf emitters in
# bench/bench_epoch_throughput.cpp and bench/bench_partitioning_edgecut.cpp.
SCHEMAS = {
    "epoch_throughput": {
        "schema_version", "bench", "algebra", "world", "threads", "n",
        "degree", "f", "hidden", "epochs", "seconds", "warmup_seconds",
        "epochs_per_sec", "dense_words", "sparse_words", "transpose_words",
        "halo_words", "compress", "compressed_words", "stale_k",
        "stale_words_saved", "preagg", "partition", "halo",
        "max_remote_rows", "fanouts", "batch_size", "sampled_words",
        "latency_units", "overlap", "overlap_regions",
        "overlap_saved_modeled_s", "phase_misc", "phase_trpose",
        "phase_dcomm", "phase_scomm", "phase_spmm", "phase_hpack",
        "phase_cpack",
    },
    "partition_edgecut_epoch": {
        "schema_version", "bench", "partitioner", "world", "n", "f",
        "max_remote_rows", "predicted_halo_words", "halo_words",
        "broadcast_total_words", "halo_total_words", "words_reduction",
        "overlap", "overlap_regions", "phase_hpack", "bcast_eps",
        "halo_eps",
    },
    # bench/bench_recovery.cpp — the chaos/recovery drill harness.
    "recovery_drill": {
        "schema_version", "bench", "algebra", "world", "overlap",
        "compress", "action", "site", "category", "nth", "epochs",
        "ckpt_every", "restarts", "retrained_epochs",
        "checkpoints_written", "checkpoint_write_seconds", "recovered",
        "bitwise_identical", "seconds", "baseline_seconds",
        "recovery_overhead_s",
    },
}

# The schema_version each bench emits today. A record carrying a stale
# version means the tracked file was not regenerated after a schema bump.
SCHEMA_VERSIONS = {
    "epoch_throughput": 4,
    "partition_edgecut_epoch": 2,
    "recovery_drill": 1,
}

# Values the "compress" field may take (the CAGNET_COMPRESS codec names).
COMPRESS_MODES = {"off", "fp16", "int8", "1bit"}


def check_file(tracked: Path) -> list:
    errors = []
    for lineno, line in enumerate(tracked.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: not valid JSON ({e})")
            continue
        bench = record.get("bench")
        if bench not in SCHEMAS:
            errors.append(f"line {lineno}: unknown bench type {bench!r}")
            continue
        expected = SCHEMAS[bench]
        missing = expected - record.keys()
        extra = record.keys() - expected
        if missing:
            errors.append(
                f"line {lineno} ({bench}): missing fields "
                f"{sorted(missing)} — regenerate the record with the "
                f"current bench binary")
        if extra:
            errors.append(
                f"line {lineno} ({bench}): unknown fields {sorted(extra)} "
                f"— update SCHEMAS in tools/check_bench_schema.py alongside "
                f"the bench emitter")
        version = record.get("schema_version")
        want = SCHEMA_VERSIONS[bench]
        if version != want:
            errors.append(
                f"line {lineno} ({bench}): schema_version {version!r} != "
                f"{want} — regenerate the record with the current bench "
                f"binary")
        if "compress" in record and record["compress"] not in COMPRESS_MODES:
            errors.append(
                f"line {lineno} ({bench}): compress "
                f"{record['compress']!r} is not one of "
                f"{sorted(COMPRESS_MODES)}")
        if "compressed_words" in record:
            words = record["compressed_words"]
            if not isinstance(words, (int, float)) or words < 0:
                errors.append(
                    f"line {lineno} ({bench}): compressed_words "
                    f"{words!r} must be a non-negative number")
            if record.get("compress") == "off" and words != 0:
                errors.append(
                    f"line {lineno} ({bench}): compress=off must meter "
                    f"zero compressed_words, got {words!r}")
        if bench == "epoch_throughput":
            # Bounded-staleness fields (CAGNET_STALE): stale_k is the
            # refresh-rate mode and stale_words_saved the metered halo
            # words the cache-replay epochs elided. With staleness off
            # nothing is ever skipped, so a non-zero saving in an "off"
            # row means the meter (or the record) is lying.
            stale_k = record.get("stale_k")
            if not (stale_k in ("off", "adaptive")
                    or (isinstance(stale_k, str) and stale_k.isdigit()
                        and int(stale_k) >= 1)):
                errors.append(
                    f"line {lineno} ({bench}): stale_k {stale_k!r} must "
                    f"be 'off', 'adaptive', or a positive integer string")
            saved = record.get("stale_words_saved")
            if not isinstance(saved, (int, float)) or saved < 0:
                errors.append(
                    f"line {lineno} ({bench}): stale_words_saved "
                    f"{saved!r} must be a non-negative number")
            elif stale_k == "off" and saved != 0:
                errors.append(
                    f"line {lineno} ({bench}): stale_k=off must meter "
                    f"zero stale_words_saved, got {saved!r}")
            if record.get("preagg") not in (0, 1):
                errors.append(
                    f"line {lineno} ({bench}): preagg "
                    f"{record.get('preagg')!r} must be 0 or 1")
            # Sampled-mode fields travel together: full-batch rows carry
            # fanouts="" / batch_size=0 / sampled_words=0, sampled rows a
            # non-empty fanout list, a positive batch and the metered
            # kHalo volume of the sampled row exchange.
            sampled = record.get("batch_size", 0) != 0
            if sampled and not record.get("fanouts"):
                errors.append(
                    f"line {lineno} ({bench}): batch_size > 0 requires a "
                    f"non-empty fanouts list")
            if not sampled and record.get("sampled_words", 0) != 0:
                errors.append(
                    f"line {lineno} ({bench}): full-batch rows "
                    f"(batch_size=0) must meter zero sampled_words, got "
                    f"{record.get('sampled_words')!r}")
        if bench == "recovery_drill":
            # The recovery contract, as recorded: an exact-mode drill
            # that recovered must be bitwise identical to its baseline.
            if record.get("compress") == "off" and record.get("recovered") \
                    and not record.get("bitwise_identical"):
                errors.append(
                    f"line {lineno} ({bench}): compress=off and "
                    f"recovered=true require bitwise_identical=true — "
                    f"exact-mode recovery lost determinism")
            for field in ("restarts", "retrained_epochs",
                          "checkpoints_written"):
                value = record.get(field)
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"line {lineno} ({bench}): {field} {value!r} "
                        f"must be a non-negative integer")
    return errors


def main() -> int:
    failed = False
    for tracked in TRACKED_FILES:
        if not tracked.exists():
            print(f"missing tracked file: {tracked}", file=sys.stderr)
            failed = True
            continue
        errors = check_file(tracked)
        if errors:
            print(f"{tracked.name}: schema drift detected", file=sys.stderr)
            for e in errors:
                print(f"  {e}", file=sys.stderr)
            failed = True
        else:
            print(f"{tracked.name}: all records carry the full schema")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
