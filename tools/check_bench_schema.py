#!/usr/bin/env python3
"""Schema check for the tracked bench JSON trajectory files.

BENCH_EPOCH_THROUGHPUT.json accumulates one JSON object per line across
PRs. Schema drift — a bench gaining a field without the tracked records
being regenerated — makes the file lie by omission (e.g. older
epoch_throughput records silently lacking halo_words/partition/halo, so a
halo regression hides in rows that cannot express it). This check pins
the full per-bench field set: every tracked record must carry every
field its bench emits today.

Run from the repo root (CI does):  python3 tools/check_bench_schema.py
"""

import json
import sys
from pathlib import Path

TRACKED = Path(__file__).resolve().parent.parent / "BENCH_EPOCH_THROUGHPUT.json"

# Full field set per bench type, matching the printf emitters in
# bench/bench_epoch_throughput.cpp and bench/bench_partitioning_edgecut.cpp.
SCHEMAS = {
    "epoch_throughput": {
        "schema_version", "bench", "algebra", "world", "threads", "n",
        "degree", "f", "hidden", "epochs", "seconds", "warmup_seconds",
        "epochs_per_sec", "dense_words", "sparse_words", "transpose_words",
        "halo_words", "compress", "compressed_words", "partition", "halo",
        "max_remote_rows", "latency_units", "overlap", "overlap_regions",
        "overlap_saved_modeled_s", "phase_misc", "phase_trpose",
        "phase_dcomm", "phase_scomm", "phase_spmm", "phase_hpack",
        "phase_cpack",
    },
    "partition_edgecut_epoch": {
        "schema_version", "bench", "partitioner", "world", "n", "f",
        "max_remote_rows", "predicted_halo_words", "halo_words",
        "broadcast_total_words", "halo_total_words", "words_reduction",
        "overlap", "overlap_regions", "phase_hpack", "bcast_eps",
        "halo_eps",
    },
}

# The schema_version each bench emits today. A record carrying a stale
# version means the tracked file was not regenerated after a schema bump.
SCHEMA_VERSIONS = {
    "epoch_throughput": 2,
    "partition_edgecut_epoch": 2,
}

# Values the "compress" field may take (the CAGNET_COMPRESS codec names).
COMPRESS_MODES = {"off", "fp16", "int8", "1bit"}


def main() -> int:
    if not TRACKED.exists():
        print(f"missing tracked file: {TRACKED}", file=sys.stderr)
        return 1
    errors = []
    for lineno, line in enumerate(TRACKED.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: not valid JSON ({e})")
            continue
        bench = record.get("bench")
        if bench not in SCHEMAS:
            errors.append(f"line {lineno}: unknown bench type {bench!r}")
            continue
        expected = SCHEMAS[bench]
        missing = expected - record.keys()
        extra = record.keys() - expected
        if missing:
            errors.append(
                f"line {lineno} ({bench}): missing fields "
                f"{sorted(missing)} — regenerate the record with the "
                f"current bench binary")
        if extra:
            errors.append(
                f"line {lineno} ({bench}): unknown fields {sorted(extra)} "
                f"— update SCHEMAS in tools/check_bench_schema.py alongside "
                f"the bench emitter")
        version = record.get("schema_version")
        want = SCHEMA_VERSIONS[bench]
        if version != want:
            errors.append(
                f"line {lineno} ({bench}): schema_version {version!r} != "
                f"{want} — regenerate the record with the current bench "
                f"binary")
        if "compress" in record and record["compress"] not in COMPRESS_MODES:
            errors.append(
                f"line {lineno} ({bench}): compress "
                f"{record['compress']!r} is not one of "
                f"{sorted(COMPRESS_MODES)}")
        if "compressed_words" in record:
            words = record["compressed_words"]
            if not isinstance(words, (int, float)) or words < 0:
                errors.append(
                    f"line {lineno} ({bench}): compressed_words "
                    f"{words!r} must be a non-negative number")
            if record.get("compress") == "off" and words != 0:
                errors.append(
                    f"line {lineno} ({bench}): compress=off must meter "
                    f"zero compressed_words, got {words!r}")
    if errors:
        print(f"{TRACKED.name}: schema drift detected", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"{TRACKED.name}: all records carry the full schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
