// Regenerates the Section VI-a local-SpMM observations (google-benchmark):
//
//   1. SpMM throughput degrades as the matrix gets sparser — Yang et al.
//      report a ~3x GFlops drop from average degree 62 to 8 for cuSPARSE
//      csrmm2; the same trend holds for any SpMM kernel, including this
//      CPU one.
//   2. Throughput degrades as the dense operand gets skinnier — the 2D
//      partition makes the middle layer's dense operand f/sqrt(P) wide
//      (16 columns at P=1 down to 2 at P=64 in the paper).
//   3. Hypersparsity: 2D-partitioning on a g x g grid divides the block's
//      average degree by ~g, compounding effect (1) — "a multiplicative
//      detrimental impact" (Section VI-a).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/dense/matrix.hpp"
#include "src/sparse/csr.hpp"
#include "src/sparse/generate.hpp"
#include "src/sparse/spmm_kernel.hpp"
#include "src/sparse/stats.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace cagnet {
namespace {

Csr make_er(Index n, double degree, std::uint64_t seed) {
  Rng rng(seed);
  return Csr::from_coo(erdos_renyi(n, degree, rng));
}

// (1) GFlop/s vs average degree, fixed dense width 64.
void BM_SpmmVsDegree(benchmark::State& state) {
  const Index n = 16384;
  const double degree = static_cast<double>(state.range(0));
  const Index f = 64;
  const Csr a = make_er(n, degree, 11);
  Matrix x(n, f);
  Rng rng(12);
  x.fill_uniform(rng, -1, 1);
  Matrix y(n, f);
  for (auto _ : state) {
    a.spmm(x, y, /*accumulate=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * static_cast<double>(a.nnz()) *
                       static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  state.counters["avg_degree"] =
      static_cast<double>(a.nnz()) / static_cast<double>(n);
}
BENCHMARK(BM_SpmmVsDegree)->Arg(8)->Arg(16)->Arg(32)->Arg(62)->Arg(128);

// (2) GFlop/s vs dense width, fixed amazon-like degree 24.
void BM_SpmmVsWidth(benchmark::State& state) {
  const Index n = 16384;
  const Index f = state.range(0);
  const Csr a = make_er(n, 24, 13);
  Matrix x(n, f);
  Rng rng(14);
  x.fill_uniform(rng, -1, 1);
  Matrix y(n, f);
  for (auto _ : state) {
    a.spmm(x, y, /*accumulate=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * static_cast<double>(a.nnz()) *
                       static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpmmVsWidth)->Arg(2)->Arg(4)->Arg(16)->Arg(64)->Arg(300);

// (3) Hypersparse 2D blocks: one diagonal block of a g x g partition.
// Reported avg_degree falls as ~d/g while per-block GFlop/s sinks.
void BM_SpmmHypersparseBlock(benchmark::State& state) {
  const Index n = 16384;
  const int g = static_cast<int>(state.range(0));
  const Csr a = make_er(n, 24, 15);
  const Csr block = a.block(0, n / g, 0, n / g);
  const Index f = 16;
  Matrix x(block.cols(), f);
  Rng rng(16);
  x.fill_uniform(rng, -1, 1);
  Matrix y(block.rows(), f);
  for (auto _ : state) {
    block.spmm(x, y, /*accumulate=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * static_cast<double>(block.nnz()) *
                       static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  state.counters["block_avg_degree"] =
      static_cast<double>(block.nnz()) / static_cast<double>(block.rows());
}
BENCHMARK(BM_SpmmHypersparseBlock)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// fp32 vs fp64 of the raw kernel (the paper's GPUs run fp32).
template <typename T>
void BM_SpmmKernelPrecision(benchmark::State& state) {
  const Index n = 8192;
  const Index f = 64;
  const Csr a = make_er(n, 32, 17);
  std::vector<Index> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<Index> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<T> vals(a.values().begin(), a.values().end());
  std::vector<T> x(static_cast<std::size_t>(n * f), T{1});
  std::vector<T> y(static_cast<std::size_t>(n * f), T{0});
  for (auto _ : state) {
    spmm_csr_kernel<T>(n, row_ptr.data(), col_idx.data(), vals.data(),
                       x.data(), f, y.data(), /*accumulate=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * static_cast<double>(a.nnz()) *
                       static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpmmKernelPrecision<float>);
BENCHMARK(BM_SpmmKernelPrecision<double>);

// (4) Thread scaling of the row-block-parallel kernel. The paper's kernel
// runs on a saturated GPU; here the CPU kernel splits contiguous,
// nnz-balanced row blocks across std::thread workers (CAGNET_THREADS caps
// the automatic choice; the benchmark passes explicit counts). The
// "speedup" counter is serial seconds / per-iteration seconds.
double serial_spmm_seconds(const Csr& a, const Matrix& x, Matrix& y) {
  // One warm-up plus three timed runs of the single-threaded kernel.
  static double cached = -1;
  if (cached >= 0) return cached;
  const auto run = [&] {
    spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                          a.values().data(), x.data(), x.cols(), y.data(),
                          /*accumulate=*/false, /*num_threads=*/1);
  };
  run();
  WallTimer timer;
  for (int i = 0; i < 3; ++i) run();
  cached = timer.seconds() / 3;
  return cached;
}

void BM_SpmmThreadScaling(benchmark::State& state) {
  const Index n = 16384;
  const Index f = 64;
  const int threads = static_cast<int>(state.range(0));
  const Csr a = make_er(n, 24, 18);
  Matrix x(n, f);
  Rng rng(19);
  x.fill_uniform(rng, -1, 1);
  Matrix y(n, f);
  const double serial_seconds = serial_spmm_seconds(a, x, y);
  for (auto _ : state) {
    spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                          a.values().data(), x.data(), f, y.data(),
                          /*accumulate=*/false, threads);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * static_cast<double>(a.nnz()) *
                       static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  // kIsRate divides by total elapsed: serial_secs * iters / elapsed
  // = serial seconds per iteration seconds = the parallel speedup.
  state.counters["speedup_vs_1t"] = benchmark::Counter(
      serial_seconds * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SpmmThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime();

}  // namespace
}  // namespace cagnet

BENCHMARK_MAIN();
