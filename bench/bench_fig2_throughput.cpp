// Regenerates Fig. 2: epoch throughput of the 2D implementation across
// GPU counts, for amazon (16/36/64), reddit (4/16/36/64), and protein
// (36/64/100).
//
// The paper-comparable series is the *modeled* epochs/sec (alpha-beta
// communication on Summit constants + V100-modeled local kernels); the
// host column is the wall time of the simulation on this machine and is
// reported only for transparency. The expected shape: throughput rises
// with P on every dataset (the paper reports 1.8x from 16 to 64 on
// amazon, and ~1.65x communication reduction from 36 to 100 on protein).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int epochs = static_cast<int>(args.get_int("epochs", 1));

  std::printf("=== Fig. 2: epoch throughput of the 2D implementation ===\n");
  std::printf("(modeled = Summit alpha-beta + V100 kernel model, metered on\n"
              " a scaled replica and extrapolated to full Table VI size —\n"
              " the paper-comparable y-axis. host = this machine's\n"
              " simulation wall time, for transparency only.)\n\n");
  std::printf("%-9s %5s %18s %18s %12s\n", "dataset", "P",
              "modeled epochs/s", "host epochs/s", "final loss");
  std::printf("----------------------------------------------------------------"
              "-\n");

  for (const char* name : {"amazon", "reddit", "protein"}) {
    const bench::ScaledDataset g = bench::load_scaled(name, args);
    std::vector<bench::Fig2Point> points;
    for (long p : bench::paper_proc_list(name)) {
      points.push_back(bench::run_2d(g, static_cast<int>(p), epochs));
      const bench::Fig2Point& pt = points.back();
      std::printf("%-9s %5ld %18.3f %18.3f %12.4f\n", name, p,
                  1.0 / pt.modeled_epoch_seconds,
                  1.0 / pt.host_epoch_seconds, pt.loss);
    }
    std::printf("  -> speedup %d -> %d procs: %.2fx (paper: amazon 16->64 "
                "= 1.8x)\n\n",
                points.front().procs, points.back().procs,
                points.front().modeled_epoch_seconds /
                    points.back().modeled_epoch_seconds);
  }
  return 0;
}
