// Local GEMM scaling (google-benchmark), the dense sibling of
// bench_spmm_local: the paper reports local GEMM under "misc", and the 2D/
// 3D partitions make the dense operands skinny (f/sqrt(P) or f/P^(1/3)
// columns), so both the blocked-kernel rate and its thread scaling matter.
//
//   1. GFlop/s vs matrix shape: the partial-SUMMA shapes (tall-skinny
//      times small-square) and the weight-gradient shape (skinny^T times
//      tall) at paper-like widths.
//   2. Thread scaling of the row-block-parallel kernel at fixed shape
//      (explicit counts override the automatic budget, like the SpMM
//      bench). "speedup_vs_1t" is serial seconds / per-iteration seconds.
#include <benchmark/benchmark.h>

#include "src/dense/gemm.hpp"
#include "src/dense/matrix.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace cagnet {
namespace {

Matrix random_matrix(Index rows, Index cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.fill_uniform(rng, -1, 1);
  return m;
}

// (1) The forward shape T(n x f) * W(f x f) at widths f/sqrt(P) for the
// paper's f = 16 middle layer across P = 1..64.
void BM_GemmForwardShape(benchmark::State& state) {
  const Index n = 16384;
  const Index f = state.range(0);
  const Matrix t = random_matrix(n, f, 21);
  const Matrix w = random_matrix(f, f, 22);
  Matrix z(n, f);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, Real{1}, t, w, Real{0}, z);
    benchmark::DoNotOptimize(z.data());
  }
  const double flops = 2.0 * static_cast<double>(n) *
                       static_cast<double>(f) * static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmForwardShape)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64)
    ->Arg(300);

// (1b) The weight-gradient shape H^T(f x n) * U(n x f): the transposed-A
// rank-1-update path.
void BM_GemmGradientShape(benchmark::State& state) {
  const Index n = 16384;
  const Index f = state.range(0);
  const Matrix h = random_matrix(n, f, 23);
  const Matrix u = random_matrix(n, f, 24);
  Matrix y(f, f);
  for (auto _ : state) {
    gemm(Trans::kYes, Trans::kNo, Real{1}, h, u, Real{0}, y);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * static_cast<double>(n) *
                       static_cast<double>(f) * static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmGradientShape)->Arg(4)->Arg(16)->Arg(64)->Arg(300);

// (2) Thread scaling at a fixed forward shape via the budget override.
double serial_gemm_seconds(const Matrix& t, const Matrix& w, Matrix& z) {
  static double cached = -1;
  if (cached >= 0) return cached;
  override_thread_budget(1);
  gemm(Trans::kNo, Trans::kNo, Real{1}, t, w, Real{0}, z);  // warm-up
  WallTimer timer;
  for (int i = 0; i < 3; ++i) {
    gemm(Trans::kNo, Trans::kNo, Real{1}, t, w, Real{0}, z);
  }
  cached = timer.seconds() / 3;
  override_thread_budget(0);
  return cached;
}

void BM_GemmThreadScaling(benchmark::State& state) {
  const Index n = 16384;
  const Index f = 64;
  const int threads = static_cast<int>(state.range(0));
  const Matrix t = random_matrix(n, f, 25);
  const Matrix w = random_matrix(f, f, 26);
  Matrix z(n, f);
  const double serial_seconds = serial_gemm_seconds(t, w, z);
  override_thread_budget(threads);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, Real{1}, t, w, Real{0}, z);
    benchmark::DoNotOptimize(z.data());
  }
  override_thread_budget(0);
  const double flops = 2.0 * static_cast<double>(n) *
                       static_cast<double>(f) * static_cast<double>(f);
  state.counters["GFlop/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  state.counters["speedup_vs_1t"] = benchmark::Counter(
      serial_seconds * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_GemmThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime();

}  // namespace
}  // namespace cagnet

BENCHMARK_MAIN();
