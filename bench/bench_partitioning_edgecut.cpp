// Regenerates the Section IV-A.8 graph-partitioning study.
//
// The paper runs METIS on Reddit at 64 processes and observes:
//   - total edge cut:   3,258,385 vs 11,761,151 random  (72% reduction)
//   - max per-process:    131,286 vs    185,823 random  (29% reduction)
// i.e. a locality partitioner helps the *total* far more than the *max*,
// and the bulk-synchronous runtime is dictated by the max. We reproduce
// the phenomenon with the greedy BFS partitioner (METIS stand-in, see
// DESIGN.md) on a scale-free graph.
//
// The second half closes the loop between the study and the trainer: it
// runs real 1D epochs per registered partitioner x overlap mode —
// broadcast path and sparsity-aware halo path — and prints the metered
// words next to the predicted edgecut_P(A) * f plus measured
// epochs/sec, in the same JSON shape BENCH_EPOCH_THROUGHPUT.json tracks.
// Timing uses the best of --epoch-reps measured epochs so one scheduler
// hiccup cannot invert a comparison.
//
// The run *fails* (nonzero exit, clear message) if the halo path loses
// on wall clock despite a words_reduction > 1 in overlap mode — the
// pipelined exchange regressing to "fewer words, same critical path" is
// exactly the regression class this bench exists to catch.
//
// Epoch-run flags: --epoch-parts 16, --features 16, --hidden 16,
// --epoch-reps 5.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/algebra_registry.hpp"
#include "src/core/costmodel.hpp"
#include "src/graph/partition.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Index n = args.get_int("vertices", 30000);
  const int parts = static_cast<int>(args.get_int("parts", 64));
  const Index communities = args.get_int("communities", 256);

  std::printf("=== Section IV-A.8: partitioning quality vs the max-metric "
              "===\n\n");
  // Reddit-like structure: strong communities (what METIS exploits for its
  // 72%% total-cut reduction) plus graph-wide hubs (why the busiest process
  // only improves 29%%). A pure R-MAT graph has no communities and METIS
  // would gain little — the paper itself notes scale-free graphs partition
  // poorly (end of IV-A.8).
  Rng rng(7);
  Coo coo = planted_partition(
      n, communities, args.get_double("intra-degree", 18),
      args.get_double("inter-degree", 2), rng,
      args.get_double("hub-fraction", 0.00025),
      args.get_double("hub-degree", 15000));
  coo.symmetrize();
  const Csr a = Csr::from_coo(coo);
  std::printf("community graph: %lld vertices, %lld edges, %lld planted "
              "communities + hubs, P = %d\n\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()),
              static_cast<long long>(communities), parts);

  Rng prng(8);
  const Partition random = random_partition(a.rows(), parts, prng);
  const Partition greedy = greedy_bfs_partition(a, parts);
  const EdgeCutStats s_random = edge_cut(a, random);
  const EdgeCutStats s_greedy = edge_cut(a, greedy);

  const auto pct = [](Index better, Index worse) {
    return 100.0 * (1.0 - static_cast<double>(better) /
                              static_cast<double>(worse));
  };

  std::printf("%-22s %14s %14s %12s\n", "metric", "random", "greedy(BFS)",
              "reduction");
  std::printf("------------------------------------------------------------------\n");
  std::printf("%-22s %14lld %14lld %11.1f%%\n", "total cut edges",
              static_cast<long long>(s_random.total_cut_edges),
              static_cast<long long>(s_greedy.total_cut_edges),
              pct(s_greedy.total_cut_edges, s_random.total_cut_edges));
  std::printf("%-22s %14lld %14lld %11.1f%%\n", "max cut edges/proc",
              static_cast<long long>(s_random.max_cut_edges_per_part),
              static_cast<long long>(s_greedy.max_cut_edges_per_part),
              pct(s_greedy.max_cut_edges_per_part,
                  s_random.max_cut_edges_per_part));
  std::printf("%-22s %14lld %14lld %11.1f%%\n", "max remote rows/proc",
              static_cast<long long>(s_random.max_remote_rows_per_part),
              static_cast<long long>(s_greedy.max_remote_rows_per_part),
              pct(s_greedy.max_remote_rows_per_part,
                  s_random.max_remote_rows_per_part));
  std::printf("\npaper (METIS on Reddit, P=64): total 11,761,151 -> 3,258,385"
              " (72%%)\n                              max      185,823 ->  "
              " 131,286 (29%%)\n");
  std::printf("\nThe expected shape: total-cut reduction far exceeds the\n"
              "max-per-process reduction on skewed graphs, and the runtime\n"
              "of a bulk-synchronous epoch follows the max (Section "
              "IV-A.8).\n");

  // ---- Closing the loop: real 1D epochs per partitioner ----
  const int epoch_parts = static_cast<int>(args.get_int("epoch-parts", 16));
  const Index f = args.get_int("features", 16);
  const Index hidden = args.get_int("hidden", 16);
  const Index classes = 8;

  Graph g;
  g.name = "edgecut-epochs";
  g.adjacency = gcn_normalize(coo, /*symmetrize=*/true);
  g.features = Matrix(g.adjacency.rows(), f);
  Rng frng(12);
  g.features.fill_uniform(frng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(g.adjacency.rows()));
  for (auto& label : g.labels) {
    label = static_cast<Index>(
        frng.next_below(static_cast<std::uint64_t>(classes)));
  }
  GnnConfig gnn = GnnConfig::three_layer(f, classes, hidden);
  // Per layer the halo path receives this rank's distinct remote rows,
  // f_in(l) wide: predicted kHalo words = max_remote_rows * sum(f_in).
  Index sum_f_in = 0;
  for (std::size_t l = 0; l + 1 < gnn.dims.size(); ++l) {
    sum_f_in += gnn.dims[l];
  }

  std::printf("\n=== 1D epochs at P=%d: broadcast vs halo, per partitioner "
              "x overlap mode ===\n\n", epoch_parts);
  std::printf("%-12s %3s %12s %14s %14s %9s %9s %9s\n", "partitioner",
              "ovl", "max_remote", "metered halo", "bcast dense",
              "reduction", "bcast eps", "halo eps");
  const int epoch_reps =
      std::max(1, static_cast<int>(args.get_int("epoch-reps", 5)));
  const bool halo_was = dist::halo_enabled();
  const bool overlap_was = dist::overlap_enabled();
  std::vector<std::string> regressions;
  for (const PartitionerSpec& spec : partitioner_registry()) {
    const DistProblem problem =
        DistProblem::prepare(g, epoch_parts, spec.name);
    for (int overlap = 1; overlap >= 0; --overlap) {
      dist::set_overlap_enabled(overlap != 0);
      double words[2] = {0, 0};       // total non-control words per mode
      double halo_words = 0;
      double eps[2] = {0, 0};
      double overlap_regions = 0;
      double phase_hpack = 0;
      for (int halo = 0; halo <= 1; ++halo) {
        dist::set_halo_enabled(halo != 0);
        run_world(epoch_parts, [&](Comm& world) {
          auto trainer = make_dist_trainer("1d", problem, gnn, world);
          trainer->train_epoch();  // warm-up (plan + buffers)
          // Best-of-reps epoch time: one preempted epoch on an
          // oversubscribed host must not invert the comparison.
          double best = 0;
          for (int rep = 0; rep < epoch_reps; ++rep) {
            world.barrier();
            WallTimer timer;
            trainer->train_epoch();
            world.barrier();
            const double elapsed = timer.seconds();
            if (rep == 0 || elapsed < best) best = elapsed;
          }
          const EpochStats stats = trainer->reduce_epoch_stats();
          if (world.rank() == 0) {
            words[halo] = stats.comm.total_words();
            eps[halo] = best > 0 ? 1.0 / best : 0;
            if (halo == 1) {
              halo_words = stats.comm.words(CommCategory::kHalo);
              overlap_regions = stats.comm.overlap_regions();
              phase_hpack = stats.profiler.seconds(Phase::kHaloPack);
            }
          }
        });
      }
      const double predicted =
          static_cast<double>(problem.edgecut.max_remote_rows_per_part) *
          static_cast<double>(sum_f_in);
      const double reduction = words[1] > 0 ? words[0] / words[1] : 0.0;
      std::printf("%-12s %3d %12lld %14.0f %14.0f %8.2fx %9.3f %9.3f\n",
                  spec.name.c_str(), overlap,
                  static_cast<long long>(
                      problem.edgecut.max_remote_rows_per_part),
                  halo_words, words[0], reduction, eps[0], eps[1]);
      std::printf("{\"schema_version\":2,"
                  "\"bench\":\"partition_edgecut_epoch\",\"partitioner\":"
                  "\"%s\",\"world\":%d,\"n\":%lld,\"f\":%lld,"
                  "\"max_remote_rows\":%lld,\"predicted_halo_words\":%.0f,"
                  "\"halo_words\":%.0f,\"broadcast_total_words\":%.0f,"
                  "\"halo_total_words\":%.0f,\"words_reduction\":%.3f,"
                  "\"overlap\":%d,\"overlap_regions\":%.0f,"
                  "\"phase_hpack\":%.5f,"
                  "\"bcast_eps\":%.3f,\"halo_eps\":%.3f}\n",
                  spec.name.c_str(), epoch_parts,
                  static_cast<long long>(g.adjacency.rows()),
                  static_cast<long long>(f),
                  static_cast<long long>(
                      problem.edgecut.max_remote_rows_per_part),
                  predicted, halo_words, words[0], words[1], reduction,
                  overlap, overlap_regions, phase_hpack, eps[0], eps[1]);
      if (overlap == 1 && reduction > 1.0 && eps[1] < eps[0]) {
        regressions.push_back(
            spec.name + ": halo " + std::to_string(eps[1]) +
            " eps < broadcast " + std::to_string(eps[0]) +
            " eps despite a " + std::to_string(reduction) +
            "x words reduction");
      }
    }
  }
  dist::set_halo_enabled(halo_was);
  dist::set_overlap_enabled(overlap_was);
  std::printf("\nmetered halo words equal the predicted edgecut_P(A) * f\n"
              "exactly (the IV-A.8 request-and-send volume); the broadcast\n"
              "path pays the n(P-1)/P bound regardless of partitioner.\n");
  if (!regressions.empty()) {
    std::fprintf(stderr,
                 "\nFAIL: the halo path lost on wall clock despite moving "
                 "fewer words (overlap mode).\nThe pipelined exchange has "
                 "regressed to \"fewer words, same critical path\":\n");
    for (const std::string& r : regressions) {
      std::fprintf(stderr, "  - %s\n", r.c_str());
    }
    return 1;
  }
  return 0;
}
