// Regenerates the Section IV-A.8 graph-partitioning study.
//
// The paper runs METIS on Reddit at 64 processes and observes:
//   - total edge cut:   3,258,385 vs 11,761,151 random  (72% reduction)
//   - max per-process:    131,286 vs    185,823 random  (29% reduction)
// i.e. a locality partitioner helps the *total* far more than the *max*,
// and the bulk-synchronous runtime is dictated by the max. We reproduce
// the phenomenon with the greedy BFS partitioner (METIS stand-in, see
// DESIGN.md) on a scale-free graph.
#include <cstdio>

#include "src/graph/partition.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Index n = args.get_int("vertices", 30000);
  const int parts = static_cast<int>(args.get_int("parts", 64));
  const Index communities = args.get_int("communities", 256);

  std::printf("=== Section IV-A.8: partitioning quality vs the max-metric "
              "===\n\n");
  // Reddit-like structure: strong communities (what METIS exploits for its
  // 72%% total-cut reduction) plus graph-wide hubs (why the busiest process
  // only improves 29%%). A pure R-MAT graph has no communities and METIS
  // would gain little — the paper itself notes scale-free graphs partition
  // poorly (end of IV-A.8).
  Rng rng(7);
  Coo coo = planted_partition(
      n, communities, args.get_double("intra-degree", 18),
      args.get_double("inter-degree", 2), rng,
      args.get_double("hub-fraction", 0.00025),
      args.get_double("hub-degree", 15000));
  coo.symmetrize();
  const Csr a = Csr::from_coo(coo);
  std::printf("community graph: %lld vertices, %lld edges, %lld planted "
              "communities + hubs, P = %d\n\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()),
              static_cast<long long>(communities), parts);

  Rng prng(8);
  const Partition random = random_partition(a.rows(), parts, prng);
  const Partition greedy = greedy_bfs_partition(a, parts);
  const EdgeCutStats s_random = edge_cut(a, random);
  const EdgeCutStats s_greedy = edge_cut(a, greedy);

  const auto pct = [](Index better, Index worse) {
    return 100.0 * (1.0 - static_cast<double>(better) /
                              static_cast<double>(worse));
  };

  std::printf("%-22s %14s %14s %12s\n", "metric", "random", "greedy(BFS)",
              "reduction");
  std::printf("------------------------------------------------------------------\n");
  std::printf("%-22s %14lld %14lld %11.1f%%\n", "total cut edges",
              static_cast<long long>(s_random.total_cut_edges),
              static_cast<long long>(s_greedy.total_cut_edges),
              pct(s_greedy.total_cut_edges, s_random.total_cut_edges));
  std::printf("%-22s %14lld %14lld %11.1f%%\n", "max cut edges/proc",
              static_cast<long long>(s_random.max_cut_edges_per_part),
              static_cast<long long>(s_greedy.max_cut_edges_per_part),
              pct(s_greedy.max_cut_edges_per_part,
                  s_random.max_cut_edges_per_part));
  std::printf("%-22s %14lld %14lld %11.1f%%\n", "max remote rows/proc",
              static_cast<long long>(s_random.max_remote_rows_per_part),
              static_cast<long long>(s_greedy.max_remote_rows_per_part),
              pct(s_greedy.max_remote_rows_per_part,
                  s_random.max_remote_rows_per_part));
  std::printf("\npaper (METIS on Reddit, P=64): total 11,761,151 -> 3,258,385"
              " (72%%)\n                              max      185,823 ->  "
              " 131,286 (29%%)\n");
  std::printf("\nThe expected shape: total-cut reduction far exceeds the\n"
              "max-per-process reduction on skewed graphs, and the runtime\n"
              "of a bulk-synchronous epoch follows the max (Section "
              "IV-A.8).\n");
  return 0;
}
