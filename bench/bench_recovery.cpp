// Chaos/recovery drill harness: sweep deterministic fault injections
// across the algebra families, overlap modes, and wire codecs, drive each
// interrupted run through the checkpoint/restart supervision loop
// (src/core/recovery.hpp), and record the recovery overhead as JSON lines
// (bench "recovery_drill", appended to BENCH_RECOVERY.json by the repo
// workflow; schema pinned by tools/check_bench_schema.py).
//
// Each cell runs twice: an uninterrupted baseline (no fault plan, no
// checkpointing) and a drill with an armed FaultPlan plus periodic
// checkpoints. The drill must either complete after automatic restarts —
// bitwise identical to the baseline in exact mode — or surface a typed
// CommAborted; a hang or crash is the only unacceptable outcome, and
// tools/chaos_drill.py enforces exactly that contract around this binary.
#include <array>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/comm/fault.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/core/recovery.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

namespace cagnet {
namespace {

Graph make_graph(Index n, Index f, Index classes, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "recovery-bench";
  Coo coo = planted_partition(n, /*communities=*/8, 8.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v % classes;
  }
  return g;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::string item;
  for (char c : list) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

struct InjectionPoint {
  FaultAction action;
  FaultSite site;
};

int run(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.has("smoke");

  const Index n = args.get_int("n", smoke ? 160 : 512);
  const Index f = 8;
  const Index classes = 4;
  const int epochs = static_cast<int>(args.get_int("epochs", smoke ? 6 : 10));
  const int every =
      static_cast<int>(args.get_int("ckpt-every", 2));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2020));

  struct AlgebraCase {
    std::string algebra;
    int p;
  };
  std::vector<AlgebraCase> algebras = {
      {"1d", 4}, {"1.5d-c2", 4}, {"2d", 4}, {"3d", 8}};
  if (args.has("algebras")) {
    algebras.clear();
    for (const std::string& name : split_csv(args.get("algebras", ""))) {
      const AlgebraSpec* spec = find_algebra(name);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown algebra: %s\n", name.c_str());
        return 1;
      }
      algebras.push_back({spec->name, spec->world_sizes.front() > 1
                                          ? spec->world_sizes.front()
                                          : spec->world_sizes.back()});
    }
  }

  std::vector<long> overlap_modes =
      args.get_int_list("overlap", {1, 0});
  std::vector<CompressMode> compress_modes;
  for (const std::string& name :
       split_csv(args.get("compress", "off,int8"))) {
    compress_modes.push_back(parse_compress_mode(name));
  }

  // One kill per lifecycle seam plus a poisoned payload: the three
  // distinct ways the transport backend can take a rank down. The N-th
  // event at which each fires is a seeded pick, so the sweep covers
  // varied schedule positions while staying reproducible run to run.
  const std::array<InjectionPoint, 3> points = {{
      {FaultAction::kKill, FaultSite::kPost},
      {FaultAction::kKill, FaultSite::kWait},
      {FaultAction::kPoison, FaultSite::kWait},
  }};

  const Graph graph = make_graph(n, f, classes, seed);
  const GnnConfig config = GnnConfig::three_layer(f, classes, 6);
  const DistProblem problem = DistProblem::prepare(graph);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "cagnet_bench_recovery.bin")
          .string();

  const bool saved_overlap = dist::overlap_enabled();
  const CompressMode saved_compress = compress_mode();
  std::uint64_t cell = 0;

  for (const AlgebraCase& a : algebras) {
    for (long overlap : overlap_modes) {
      for (CompressMode cmode : compress_modes) {
        dist::set_overlap_enabled(overlap != 0);
        set_compress_mode(cmode);

        // Uninterrupted baseline: same supervision-loop code path, no
        // fault and no periodic checkpoints, so the drill's extra wall
        // time is attributable to recovery alone.
        clear_fault_plan();
        RecoveryOptions base_opt;
        base_opt.ckpt_path = ckpt;
        base_opt.ckpt_every = 0;
        WallTimer base_timer;
        const RecoveryReport baseline = train_with_recovery(
            a.algebra, problem, config, a.p, epochs, base_opt);
        const double baseline_seconds = base_timer.seconds();

        for (const InjectionPoint& pt : points) {
          ++cell;
          // Rank 1 exists in every swept world; nth lands mid-schedule
          // so restarts genuinely retrain lost epochs.
          const std::uint64_t nth = seeded_nth(seed + cell, 5, 60);
          auto plan = std::make_shared<FaultPlan>();
          FaultTrigger trigger;
          trigger.action = pt.action;
          trigger.rank = 1;
          trigger.any_category = true;
          trigger.site = pt.site;
          trigger.nth = nth;
          plan->add(trigger);
          set_fault_plan(plan);

          RecoveryOptions opt;
          opt.ckpt_path = ckpt;
          opt.ckpt_every = every;
          opt.max_restarts = 3;
          bool recovered = true;
          RecoveryReport report;
          WallTimer timer;
          try {
            report = train_with_recovery(a.algebra, problem, config, a.p,
                                         epochs, opt);
          } catch (const CommAborted& e) {
            recovered = false;
            report.last_abort = e;
          }
          const double drill_seconds = timer.seconds();
          clear_fault_plan();

          bool bitwise = recovered;
          if (recovered) {
            if (report.losses != baseline.losses ||
                report.weights.size() != baseline.weights.size()) {
              bitwise = false;
            } else {
              for (std::size_t l = 0; l < report.weights.size(); ++l) {
                if (Matrix::max_abs_diff(report.weights[l],
                                         baseline.weights[l]) > Real{0}) {
                  bitwise = false;
                  break;
                }
              }
            }
          }

          std::printf(
              "{\"schema_version\":1,\"bench\":\"recovery_drill\","
              "\"algebra\":\"%s\",\"world\":%d,\"overlap\":%d,"
              "\"compress\":\"%s\",\"action\":\"%s\",\"site\":\"%s\","
              "\"category\":\"any\",\"nth\":%llu,\"epochs\":%d,"
              "\"ckpt_every\":%d,\"restarts\":%d,\"retrained_epochs\":%d,"
              "\"checkpoints_written\":%d,"
              "\"checkpoint_write_seconds\":%.6f,\"recovered\":%s,"
              "\"bitwise_identical\":%s,\"seconds\":%.4f,"
              "\"baseline_seconds\":%.4f,\"recovery_overhead_s\":%.4f}\n",
              a.algebra.c_str(), a.p, overlap != 0 ? 1 : 0,
              compress_mode_name(cmode), fault_action_name(pt.action),
              fault_site_name(pt.site),
              static_cast<unsigned long long>(nth), epochs, every,
              report.restarts, report.retrained_epochs,
              report.checkpoints_written, report.checkpoint_write_seconds,
              recovered ? "true" : "false", bitwise ? "true" : "false",
              drill_seconds, baseline_seconds,
              drill_seconds - baseline_seconds);
          std::fflush(stdout);
        }
      }
    }
  }

  std::remove(ckpt.c_str());
  std::remove((ckpt + ".tmp").c_str());
  dist::set_overlap_enabled(saved_overlap);
  set_compress_mode(saved_compress);
  return 0;
}

}  // namespace
}  // namespace cagnet

int main(int argc, char** argv) { return cagnet::run(argc, argv); }
