// Epoch throughput per algebra x world size x thread count, in
// machine-readable JSON (one object per line) so successive PRs can track
// the performance trajectory in BENCH_*.json files.
//
// Unlike the figure regenerators this measures *host* epochs/sec — the
// thing local-kernel and allocation work actually moves — alongside the
// metered per-epoch communication words, which must stay invariant across
// perf PRs (the words are the paper's measurements; see the cost-model
// regression test in tests/determinism_test.cpp).
//
// Flags:
//   --smoke            tiny problem + ~2s total budget (the CI mode)
//   --n, --degree      graph shape (default 4096 vertices, avg degree 12)
//   --f, --hidden      feature/hidden widths (default 32/32)
//   --algebras 2d,3d   comma-separated registry names (default: all four
//                      families at representative sizes)
//   --worlds 4,8       restrict the registry world sizes swept per algebra
//                      (only meaningful with --algebras)
//   --threads 1,8      thread budgets to sweep (default 1,<hardware>)
//   --seconds S        measurement budget per configuration (default 1.0)
//   --epochs N         cap on measured epochs per configuration
//   --partition NAME   partitioner from the registry (block/random/
//                      greedy-bfs; default CAGNET_PARTITION or "block") —
//                      non-block choices re-prepare the problem per world
//                      size with partition-aware row blocks
//   --halo 0|1|0,1     sparsity-aware halo exchange for the 1D/1.5D
//                      families (default CAGNET_HALO); halo_words and
//                      max_remote_rows land in the JSON. A list runs the
//                      modes back-to-back per configuration, so the
//                      halo-vs-broadcast eps comparison is not skewed by
//                      cross-invocation load drift
//   --graph rmat|planted  topology (planted = community-structured, the
//                      regime where a locality partitioner pays)
//   --communities C    planted communities (default n/48)
//   --inter-frac X     planted fraction of degree crossing communities
//                      (default 0.2; smaller = stronger locality)
//   --compress M[,M]   lossy wire codecs to sweep (off/fp16/int8/1bit;
//                      default CAGNET_COMPRESS). compressed_words in the
//                      JSON is the metered post-compression volume in
//                      Real-sized words — the words-on-wire actually paid
//                      — and phase_cpack the codec pack/unpack seconds
//   --stale M[,M]      bounded-staleness refresh rates to sweep for the
//                      1D/1.5D halo exchange (off/<k>/adaptive; default
//                      CAGNET_STALE). stale_k echoes the mode per row and
//                      stale_words_saved the metered halo words the
//                      cache-replay epochs elided (exact words minus
//                      metered words, CostMeter::stale_saved_words)
//   --preagg 0|1|0,1   aggregation-before-communication on the forward
//                      halo exchange (default CAGNET_PREAGG); like
//                      --halo, a list runs the modes back-to-back
//   --sample           sampled minibatch epochs (1D only: non-1d configs
//                      are skipped with a note). fanouts/batch_size land
//                      in the JSON and sampled_words records the metered
//                      per-epoch kHalo volume of the sampled row
//                      exchange; full-batch rows carry ""/0/0
//   --fanouts 15,10,5  per-hop fan-out caps, outermost hop first (must
//                      match the model's layer count)
//   --batch-size B     seed vertices per rank per minibatch (default 64)
#include <algorithm>
#include <array>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"
#include "src/util/timer.hpp"

namespace cagnet {
namespace {

struct BenchConfig {
  std::string algebra;
  int world = 1;
};

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) names.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

/// CAGNET_STALE-style mode names for --stale: "off", "adaptive", or a
/// positive refresh interval.
int parse_stale_mode(const std::string& name) {
  if (name == "off") return 0;
  if (name == "adaptive") return dist::kStaleAdaptive;
  return static_cast<int>(std::stol(name));
}

std::string stale_mode_label(int k) {
  if (k == 0) return "off";
  if (k == dist::kStaleAdaptive) return "adaptive";
  return std::to_string(k);
}

Graph make_graph(const std::string& topology, Index n, Index degree, Index f,
                 Index classes, Index communities, double inter_frac) {
  Rng rng(2024);
  Graph g;
  g.name = "epoch-throughput";
  Coo coo =
      topology == "planted"
          ? planted_partition(
                n, communities,
                (1.0 - inter_frac) * static_cast<double>(degree),
                inter_frac * static_cast<double>(degree), rng,
                /*hub_fraction=*/0.0)
          : rmat(n, n * degree, rng);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    label = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(classes)));
  }
  return g;
}

int run(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.has("smoke");

  const Index n = args.get_int("n", smoke ? 768 : 4096);
  const Index degree = args.get_int("degree", 12);
  const Index f = args.get_int("f", 32);
  const Index hidden = args.get_int("hidden", 32);
  const Index classes = 8;
  const double seconds_per_config =
      args.get_double("seconds", smoke ? 0.12 : 1.0);
  const long max_epochs = args.get_int("epochs", smoke ? 6 : 1000);

  std::vector<BenchConfig> configs;
  const std::vector<long> world_filter = args.get_int_list("worlds", {});
  const auto world_selected = [&](int p) {
    if (world_filter.empty()) return true;
    return std::find(world_filter.begin(), world_filter.end(),
                     static_cast<long>(p)) != world_filter.end();
  };
  if (args.has("algebras")) {
    for (const std::string& name : split_csv(args.get("algebras", ""))) {
      const AlgebraSpec* spec = find_algebra(name);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown algebra: %s\n", name.c_str());
        return 1;
      }
      for (int p : spec->world_sizes) {
        if (p <= 27 && world_selected(p)) configs.push_back({name, p});
      }
    }
  } else {
    // The large worlds (2d@16, 3d@27) are where the overlap runtime pays
    // most: barrier overhead grows with P, and P is the paper's regime.
    configs = {{"1d", 1},  {"1d", 4},  {"1.5d-c2", 4}, {"2d", 1},
               {"2d", 4},  {"2d", 16}, {"3d", 1},      {"3d", 8},
               {"3d", 27}};
    if (smoke) {
      configs = {{"1d", 4}, {"2d", 1}, {"2d", 4},
                 {"2d", 16}, {"3d", 8}, {"3d", 27}};
    }
  }

  std::vector<long> thread_counts = args.get_int_list(
      "threads", {1, static_cast<long>(thread_budget())});

  const std::string partition =
      args.get("partition", default_partitioner_name());
  if (find_partitioner(partition) == nullptr) {
    std::fprintf(stderr, "unknown partitioner: %s\n", partition.c_str());
    return 1;
  }
  const std::vector<long> halo_modes = args.get_int_list(
      "halo", {dist::halo_enabled() ? 1L : 0L});
  const bool any_halo =
      std::find(halo_modes.begin(), halo_modes.end(), 1L) !=
      halo_modes.end();
  std::vector<CompressMode> compress_modes;
  for (const std::string& name : split_csv(
           args.get("compress", compress_mode_name(compress_mode())))) {
    compress_modes.push_back(parse_compress_mode(name));
  }
  if (compress_modes.empty()) compress_modes.push_back(CompressMode::kOff);
  std::vector<int> stale_modes;
  for (const std::string& name :
       split_csv(args.get("stale", stale_mode_label(dist::stale_k())))) {
    stale_modes.push_back(parse_stale_mode(name));
  }
  if (stale_modes.empty()) stale_modes.push_back(0);
  const std::vector<long> preagg_modes = args.get_int_list(
      "preagg", {dist::preagg_enabled() ? 1L : 0L});

  const bool sample = args.has("sample");
  const std::vector<long> fanout_args =
      args.get_int_list("fanouts", {15, 10, 5});
  const Index batch_size = args.get_int("batch-size", 64);
  std::string fanouts_str;
  if (sample) {
    std::vector<Index> fanouts(fanout_args.begin(), fanout_args.end());
    dist::set_sample_fanouts(fanouts);
    dist::set_sample_batch_size(batch_size);
    for (std::size_t i = 0; i < fanouts.size(); ++i) {
      if (i > 0) fanouts_str += ',';
      fanouts_str += std::to_string(fanouts[i]);
    }
  }
  dist::set_sample_enabled(sample);

  const std::string topology = args.get("graph", "rmat");
  const Index communities =
      args.get_int("communities", std::max<Index>(n / 48, 2));
  const double inter_frac = args.get_double("inter-frac", 0.2);

  const Graph graph =
      make_graph(topology, n, degree, f, classes, communities, inter_frac);
  const DistProblem problem = DistProblem::prepare(graph);
  GnnConfig gnn = GnnConfig::three_layer(f, classes, hidden);

  for (const BenchConfig& config : configs) {
    if (sample && config.algebra != "1d") {
      std::fprintf(stderr,
                   "skipping %s @ p=%d: sampled training rides the 1D "
                   "row-stripe halo machinery\n",
                   config.algebra.c_str(), config.world);
      continue;
    }
    // Partition-aware runs relabel the problem per world size so the row
    // blocks follow the partitioner's (possibly uneven) parts. Halo runs
    // prepare even the block layout (bitwise identical training) so the
    // JSON's max_remote_rows records the real edgecut, not zero.
    const bool per_world = partition != "block" || any_halo;
    const DistProblem partitioned =
        per_world ? DistProblem::prepare(graph, config.world, partition)
                  : DistProblem{};
    const DistProblem& active = per_world ? partitioned : problem;
    // Only the rows-whole families consume the halo toggle; sweeping the
    // modes for 2D/3D would just emit duplicate rows whose eps delta is
    // run-to-run noise mislabeled as a halo effect.
    const bool halo_toggleable = config.algebra.rfind("1", 0) == 0;
    const std::vector<long> single_mode = {halo_modes.front()};
    const std::vector<long>& swept_modes =
        halo_toggleable ? halo_modes : single_mode;
    // Staleness and pre-aggregation ride the halo exchange, so only the
    // rows-whole families sweep them (same de-duplication as --halo).
    const std::vector<int> single_stale = {stale_modes.front()};
    const std::vector<int>& swept_stales =
        halo_toggleable ? stale_modes : single_stale;
    const std::vector<long> single_preagg = {preagg_modes.front()};
    const std::vector<long>& swept_preaggs =
        halo_toggleable ? preagg_modes : single_preagg;
    for (long threads : thread_counts) {
    for (long halo_mode : swept_modes) {
    for (CompressMode cmode : compress_modes) {
    for (int stale_mode : swept_stales) {
    for (long preagg_mode : swept_preaggs) {
      const bool halo = halo_mode != 0;
      dist::set_halo_enabled(halo);
      set_compress_mode(cmode);
      dist::set_stale_k(stale_mode);
      dist::set_preagg_enabled(preagg_mode != 0);
      override_thread_budget(static_cast<int>(threads));
      double warm_seconds = 0;
      double measured_seconds = 0;
      long epochs = 0;
      double dense_words = 0, sparse_words = 0, trpose_words = 0;
      double halo_words = 0, compressed_words = 0;
      double stale_saved = 0;
      double latency_units = 0;
      double overlap_regions = 0, overlap_saved = 0;
      double phase_seconds[Profiler::kNumPhases] = {};
      run_world(config.world, [&](Comm& world) {
        auto trainer =
            make_dist_trainer(config.algebra, active, gnn, world);
        WallTimer warm;
        trainer->train_epoch();  // warm-up: caches fill, buffers size
        world.barrier();
        const double warmed = warm.seconds();
        WallTimer timer;
        long local_epochs = 0;
        // Every rank runs the same loop (collectives are lock-step), so
        // the continue/stop decision must be rank-uniform: rank 0 decides
        // and broadcasts the verdict as control traffic. In overlap mode
        // the harness uses the nonblocking broadcast so its own pacing
        // does not re-serialize the ranks each epoch; the persistent flag
        // buffers are released by the engine's epoch-start quiesce.
        bool keep_going = true;
        std::array<Index, 1> flag_src = {0};
        std::array<Index, 1> flag_dst = {0};
        while (keep_going) {
          trainer->train_epoch();
          ++local_epochs;
          const Index verdict = world.rank() == 0 &&
                                        local_epochs < max_epochs &&
                                        timer.seconds() < seconds_per_config
                                    ? Index{1}
                                    : Index{0};
          if (dist::overlap_enabled() && world.size() > 1) {
            flag_src[0] = verdict;
            PendingOp op =
                world.rank() == 0
                    ? world.ibroadcast_from(
                          std::span<const Index>(flag_src),
                          std::span<Index>{}, 0, CommCategory::kControl)
                    : world.ibroadcast_from(std::span<const Index>{},
                                            std::span<Index>(flag_dst), 0,
                                            CommCategory::kControl);
            op.wait();
            keep_going =
                (world.rank() == 0 ? flag_src[0] : flag_dst[0]) == 1;
          } else {
            std::array<Index, 1> flag = {verdict};
            world.broadcast(std::span<Index>(flag), 0,
                            CommCategory::kControl);
            keep_going = flag[0] == 1;
          }
        }
        world.barrier();
        const double elapsed = timer.seconds();
        const EpochStats stats = trainer->reduce_epoch_stats();
        if (world.rank() == 0) {
          warm_seconds = warmed;
          measured_seconds = elapsed;
          epochs = local_epochs;
          dense_words = stats.comm.words(CommCategory::kDense);
          sparse_words = stats.comm.words(CommCategory::kSparse);
          trpose_words = stats.comm.words(CommCategory::kTranspose);
          halo_words = stats.comm.words(CommCategory::kHalo);
          compressed_words = stats.comm.words(CommCategory::kCompressed);
          stale_saved = stats.comm.stale_saved_words();
          latency_units = stats.comm.total_latency_units();
          overlap_regions = stats.comm.overlap_regions();
          overlap_saved = stats.comm.overlap_saved_seconds();
          for (std::size_t ph = 0; ph < Profiler::kNumPhases; ++ph) {
            phase_seconds[ph] = stats.profiler.seconds(static_cast<Phase>(ph));
          }
        }
      });
      override_thread_budget(0);
      const double eps =
          measured_seconds > 0 ? static_cast<double>(epochs) / measured_seconds
                               : 0.0;
      std::printf(
          "{\"schema_version\":4,"
          "\"bench\":\"epoch_throughput\",\"algebra\":\"%s\","
          "\"world\":%d,\"threads\":%ld,\"n\":%lld,\"degree\":%lld,"
          "\"f\":%lld,\"hidden\":%lld,\"epochs\":%ld,\"seconds\":%.4f,"
          "\"warmup_seconds\":%.4f,\"epochs_per_sec\":%.3f,"
          "\"dense_words\":%.1f,\"sparse_words\":%.1f,"
          "\"transpose_words\":%.1f,\"halo_words\":%.1f,"
          "\"compress\":\"%s\",\"compressed_words\":%.1f,"
          "\"stale_k\":\"%s\",\"stale_words_saved\":%.1f,\"preagg\":%d,"
          "\"partition\":\"%s\",\"halo\":%d,\"max_remote_rows\":%lld,"
          "\"fanouts\":\"%s\",\"batch_size\":%lld,"
          "\"sampled_words\":%.1f,"
          "\"latency_units\":%.1f,"
          "\"overlap\":%d,\"overlap_regions\":%.0f,"
          "\"overlap_saved_modeled_s\":%.6f,"
          "\"phase_misc\":%.5f,\"phase_trpose\":%.5f,\"phase_dcomm\":%.5f,"
          "\"phase_scomm\":%.5f,\"phase_spmm\":%.5f,"
          "\"phase_hpack\":%.5f,\"phase_cpack\":%.5f}\n",
          config.algebra.c_str(), config.world, threads,
          static_cast<long long>(n), static_cast<long long>(degree),
          static_cast<long long>(f), static_cast<long long>(hidden), epochs,
          measured_seconds, warm_seconds, eps, dense_words, sparse_words,
          trpose_words, halo_words, compress_mode_name(cmode),
          compressed_words, stale_mode_label(stale_mode).c_str(),
          stale_saved, preagg_mode != 0 ? 1 : 0, partition.c_str(),
          halo ? 1 : 0,
          static_cast<long long>(active.edgecut.max_remote_rows_per_part),
          fanouts_str.c_str(),
          static_cast<long long>(sample ? batch_size : 0),
          sample ? halo_words : 0.0, latency_units,
          dist::overlap_enabled() ? 1 : 0, overlap_regions, overlap_saved,
          phase_seconds[0], phase_seconds[1], phase_seconds[2],
          phase_seconds[3], phase_seconds[4], phase_seconds[5],
          phase_seconds[6]);
      std::fflush(stdout);
    }
    }
    }
    }
    }
  }
  return 0;
}

}  // namespace
}  // namespace cagnet

int main(int argc, char** argv) { return cagnet::run(argc, argv); }
