// Regenerates Table VI: the datasets used in the paper's experiments.
//
// Prints the paper's reported vertices/edges/features/labels next to the
// properties of the synthetic analogs this repo generates (at the bench's
// default scale, and with the scaling rule that preserves average degree).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/sparse/stats.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::printf("=== Table VI: datasets (paper values vs generated analogs) "
              "===\n\n");
  std::printf("%-9s | %12s %14s %9s %7s | %10s %12s %9s %9s %8s\n", "name",
              "paper-verts", "paper-edges", "paper-f", "paper-L", "gen-verts",
              "gen-nnz", "gen-f", "gen-L", "gen-deg");
  std::printf("---------------------------------------------------------------"
              "----------------------------------------------\n");
  for (const DatasetSpec& spec : paper_datasets()) {
    const Graph g = bench::load_scaled(spec.name, args).graph;
    const DegreeStats s = degree_stats(g.adjacency);
    std::printf("%-9s | %12lld %14lld %9lld %7lld | %10lld %12lld %9lld %9lld "
                "%8.1f\n",
                spec.name.c_str(), static_cast<long long>(spec.vertices),
                static_cast<long long>(spec.edges),
                static_cast<long long>(spec.features),
                static_cast<long long>(spec.labels),
                static_cast<long long>(g.num_vertices()),
                static_cast<long long>(g.num_edges()),
                static_cast<long long>(g.feature_dim()),
                static_cast<long long>(g.num_classes), s.avg_degree);
  }
  std::printf("\npaper avg degrees: reddit %.1f, amazon %.1f, protein %.1f\n",
              dataset_spec("reddit").avg_degree(),
              dataset_spec("amazon").avg_degree(),
              dataset_spec("protein").avg_degree());
  std::printf("generated analogs preserve n:nnz ratio (average degree), the\n"
              "feature/label widths, and R-MAT degree skew; see DESIGN.md\n"
              "(Substitutions). Note: heavily downscaled reddit is denser\n"
              "than the original because its average degree is held.\n");
  return 0;
}
