// Regenerates Fig. 3: per-epoch time breakdown of the 2D implementation
// into misc / trpose / dcomm / scomm / spmm, across GPU counts for
// amazon, reddit, and protein.
//
// Communication phases (dcomm, scomm, trpose) are the metered alpha-beta
// traffic converted to Summit seconds; spmm and misc (GEMM + elementwise)
// come from the V100 kernel model. Expected shapes (paper Section VI):
//   amazon : dcomm dominates and falls ~2x for 4x more devices; scomm is
//            latency-bound and does not scale.
//   reddit : spmm dominates at small P and scales (paper: 5.23x from 4 to
//            64); communication is latency-bound.
//   protein: total communication falls ~1.65x from 36 to 100.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int epochs = static_cast<int>(args.get_int("epochs", 1));
  const MachineModel summit = MachineModel::summit();

  std::printf("=== Fig. 3: per-epoch breakdown of the 2D implementation "
              "(modeled Summit seconds) ===\n\n");
  // The halo column is the kHalo category's modeled seconds: zero for the
  // 2D family (which has no halo path), but reported so a run of this
  // breakdown under a halo-enabled algebra cannot silently fold
  // demand-driven exchange traffic into another column.
  std::printf("%-9s %5s %10s %10s %10s %10s %10s %10s %10s\n", "dataset",
              "P", "misc", "trpose", "dcomm", "scomm", "halo", "spmm",
              "total");
  std::printf("----------------------------------------------------------------"
              "-------------------------\n");

  for (const char* name : {"amazon", "reddit", "protein"}) {
    const bench::ScaledDataset g = bench::load_scaled(name, args);
    std::vector<bench::Fig2Point> points;
    for (long p : bench::paper_proc_list(name)) {
      points.push_back(bench::run_2d(g, static_cast<int>(p), epochs));
      const EpochStats& s = points.back().stats;
      const double denom = points.back().denominator;
      const double misc = s.work.gemm_seconds() * denom;
      const double trpose = bench::extrapolated_seconds(
          s.comm, summit, CommCategory::kTranspose, denom);
      const double dcomm = bench::extrapolated_seconds(
          s.comm, summit, CommCategory::kDense, denom);
      const double scomm = bench::extrapolated_seconds(
          s.comm, summit, CommCategory::kSparse, denom);
      const double halo = bench::extrapolated_seconds(
          s.comm, summit, CommCategory::kHalo, denom);
      const double spmm = s.work.spmm_seconds() * denom;
      std::printf("%-9s %5ld %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f "
                  "%10.4f\n",
                  name, p, misc, trpose, dcomm, scomm, halo, spmm,
                  misc + trpose + dcomm + scomm + halo + spmm);
    }
    // Paper's headline per-dataset scaling observations.
    const EpochStats& first = points.front().stats;
    const EpochStats& final = points.back().stats;
    const double denom = points.front().denominator;
    const double dcomm_ratio =
        bench::extrapolated_seconds(first.comm, summit, CommCategory::kDense,
                                    denom) /
        bench::extrapolated_seconds(final.comm, summit, CommCategory::kDense,
                                    denom);
    const double spmm_ratio =
        first.work.spmm_seconds() / final.work.spmm_seconds();
    const auto total_comm = [&](const EpochStats& s) {
      return bench::extrapolated_seconds(s.comm, summit,
                                         CommCategory::kDense, denom) +
             bench::extrapolated_seconds(s.comm, summit,
                                         CommCategory::kSparse, denom) +
             bench::extrapolated_seconds(s.comm, summit,
                                         CommCategory::kTranspose, denom) +
             bench::extrapolated_seconds(s.comm, summit,
                                         CommCategory::kHalo, denom);
    };
    const double comm_ratio = total_comm(first) / total_comm(final);
    std::printf("  -> %s: dcomm %d->%d: %.2fx | spmm: %.2fx | total comm: "
                "%.2fx\n",
                name, points.front().procs, points.back().procs, dcomm_ratio,
                spmm_ratio, comm_ratio);
    if (std::string(name) == "amazon") {
      std::printf("     (paper: dcomm falls ~2x for 4x devices)\n");
    } else if (std::string(name) == "reddit") {
      std::printf("     (paper: spmm scales 5.23x from 4 to 64)\n");
    } else {
      std::printf("     (paper: total comm falls ~1.65x from 36 to 100)\n");
    }
    std::printf("\n");
  }
  std::printf("host-measured per-phase seconds (this machine's simulation;\n"
              "shape only, absolute values are not Summit-comparable):\n");
  {
    const bench::ScaledDataset g = bench::load_scaled("reddit", args);
    for (long p : {4L, 16L}) {
      const bench::Fig2Point pt =
          bench::run_2d(g, static_cast<int>(p), epochs);
      std::printf("  reddit P=%ld: %s\n", p,
                  pt.stats.profiler.to_string().c_str());
    }
  }
  return 0;
}
