// Collective-communication microbenchmarks (google-benchmark).
//
// Every cost expression in Section IV is built from broadcast, all-gather,
// reduce-scatter, and all-reduce; this bench validates the runtime's
// metered word counts against the textbook formulas (reported as counters)
// and exercises the collectives at several world sizes and payloads.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/comm/comm.hpp"

namespace cagnet {
namespace {

void BM_Broadcast(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto words = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    std::vector<CostMeter> meters;
    run_world(p, [&](Comm& comm) {
      std::vector<Real> data(words, static_cast<Real>(comm.rank()));
      comm.broadcast(std::span<Real>(data), 0, CommCategory::kDense);
      benchmark::DoNotOptimize(data.data());
    }, &meters);
    state.counters["words/rank"] = meters[0].words(CommCategory::kDense);
    state.counters["alpha_units/rank"] =
        meters[0].latency_units(CommCategory::kDense);
  }
}
BENCHMARK(BM_Broadcast)
    ->ArgsProduct({{2, 4, 16}, {128, 8192, 131072}})
    ->Unit(benchmark::kMicrosecond);

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto words = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    std::vector<CostMeter> meters;
    run_world(p, [&](Comm& comm) {
      std::vector<Real> data(words, 1.0);
      comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
      benchmark::DoNotOptimize(data.data());
    }, &meters);
    state.counters["words/rank"] = meters[0].words(CommCategory::kDense);
  }
}
BENCHMARK(BM_Allreduce)
    ->ArgsProduct({{2, 4, 16}, {128, 8192, 131072}})
    ->Unit(benchmark::kMicrosecond);

void BM_ReduceScatter(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto words = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    std::vector<CostMeter> meters;
    run_world(p, [&](Comm& comm) {
      std::vector<Real> contrib(words, 1.0);
      std::vector<Real> out(words / static_cast<std::size_t>(p));
      // Uniform chunking: every rank keeps words/p entries.
      comm.reduce_scatter_sum(std::span<const Real>(contrib),
                              std::span<Real>(out), CommCategory::kDense);
      benchmark::DoNotOptimize(out.data());
    }, &meters);
    state.counters["words/rank"] = meters[0].words(CommCategory::kDense);
  }
}
BENCHMARK(BM_ReduceScatter)
    ->ArgsProduct({{2, 4, 16}, {1024, 16384, 131072}})
    ->Unit(benchmark::kMicrosecond);

void BM_Allgather(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto words = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    std::vector<CostMeter> meters;
    run_world(p, [&](Comm& comm) {
      std::vector<Real> mine(words / static_cast<std::size_t>(p),
                             static_cast<Real>(comm.rank()));
      const auto all =
          comm.allgather(std::span<const Real>(mine), CommCategory::kDense);
      benchmark::DoNotOptimize(all.data());
    }, &meters);
    state.counters["words/rank"] = meters[0].words(CommCategory::kDense);
  }
}
BENCHMARK(BM_Allgather)
    ->ArgsProduct({{2, 4, 16}, {1024, 16384, 131072}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cagnet

BENCHMARK_MAIN();
