// Shared machinery for the table/figure regeneration harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dist2d.hpp"
#include "src/graph/datasets.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

namespace cagnet::bench {

/// A generated dataset plus the factor by which it was shrunk from the
/// paper's Table VI size.
struct ScaledDataset {
  Graph graph;
  double denominator = 1.0;
};

/// Result of training one configuration with the 2D implementation.
struct Fig2Point {
  std::string dataset;
  int procs = 0;
  double modeled_epoch_seconds = 0;  ///< extrapolated to full Table VI scale
  double host_epoch_seconds = 0;     ///< wall time on this host (simulation)
  EpochStats stats;                  ///< max-reduced final-epoch stats
  double denominator = 1.0;
  Real loss = 0;
};

/// Extrapolated Summit seconds for one traffic category.
///
/// The simulation runs a 1/denominator-scale replica; every bandwidth and
/// flop quantity is linear in (n, nnz) at fixed P and f, so multiplying the
/// beta/work terms by the denominator recovers the full-scale cost, while
/// latency (alpha) terms depend only on P and the stage structure and are
/// kept as metered. Local-kernel *rates* depend on average degree and dense
/// width, both preserved by the scaling rule, so the extrapolation is
/// rate-faithful. (The f^2 all-reduce terms, which do not grow with n, are
/// conservatively scaled along; they are orders of magnitude too small to
/// matter.)
inline double extrapolated_seconds(const CostMeter& comm,
                                   const MachineModel& m, CommCategory cat,
                                   double denominator) {
  if (cat == CommCategory::kControl) return 0.0;
  return m.alpha * comm.latency_units(cat) +
         m.beta * comm.words(cat) * denominator;
}

inline double extrapolated_total_seconds(const EpochStats& stats,
                                         const MachineModel& m,
                                         double denominator) {
  double total = stats.work.total_seconds() * denominator;
  for (std::size_t c = 0; c < CostMeter::kNumCategories; ++c) {
    total += extrapolated_seconds(stats.comm, m,
                                  static_cast<CommCategory>(c), denominator);
  }
  return total;
}

/// Train `epochs` epochs of the paper's 3-layer GCN on the scaled dataset
/// with the 2D algorithm on `procs` simulated processes.
inline Fig2Point run_2d(const ScaledDataset& data, int procs, int epochs,
                        Index hidden = 16) {
  const Graph& graph = data.graph;
  const GnnConfig config =
      GnnConfig::three_layer(graph.feature_dim(), graph.num_classes, hidden);
  const DistProblem problem = DistProblem::prepare(graph);
  const MachineModel summit = MachineModel::summit();

  Fig2Point point;
  point.dataset = graph.name;
  point.procs = procs;
  point.denominator = data.denominator;

  WallTimer wall;
  run_world(procs, [&](Comm& world) {
    Dist2D trainer(problem, config, world);
    EpochResult r{};
    for (int e = 0; e < epochs; ++e) r = trainer.train_epoch();
    const EpochStats s =
        trainer.reduce_epoch_stats();
    if (world.rank() == 0) {
      point.stats = s;
      point.loss = r.loss;
      point.modeled_epoch_seconds =
          extrapolated_total_seconds(s, summit, data.denominator);
    }
  });
  point.host_epoch_seconds = wall.seconds() / epochs;
  return point;
}

/// The per-dataset GPU counts of Figs. 2-3 (paper Section V-C: amazon does
/// not fit below 16 devices, protein below 36).
inline std::vector<long> paper_proc_list(const std::string& dataset) {
  if (dataset == "reddit") return {4, 16, 36, 64};
  if (dataset == "amazon") return {16, 36, 64};
  return {36, 64, 100};  // protein
}

/// Default generation scale per dataset, sized for a ~20 GB host while
/// keeping every P in the paper's list meaningful (n >> P^(3/2)).
inline double default_denominator(const std::string& dataset) {
  if (dataset == "reddit") return 128;  // density grows as n shrinks
  if (dataset == "amazon") return 256;
  return 256;                           // protein
}

inline ScaledDataset load_scaled(const std::string& dataset,
                                 const CliArgs& args) {
  ScaledDataset out;
  const double cli = args.get_double("scale-denominator", 0);
  out.denominator = cli > 0 ? cli : default_denominator(dataset);
  SyntheticOptions opt;
  opt.scale = 1.0 / out.denominator;
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  out.graph = make_dataset(dataset, opt);
  return out;
}

}  // namespace cagnet::bench
