// Regenerates the Section IV / VI-d communication comparisons:
//   (a) words-per-epoch of 1D / 1.5D / 2D / 3D at full Table VI sizes,
//       via the closed forms (no memory needed);
//   (b) the "(5/sqrt(P)) of 1D" ratio and the sqrt(P) >= 5 crossover that
//       explains why <= 16-GPU studies (NeuGraph, ROC) can't see the 2D
//       advantage (Section VI-d);
//   (c) a metered-vs-analytical cross-check: the actual trainers' counted
//       traffic against the formulas, on scaled graphs at small P.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/core/costmodel.hpp"
#include "src/core/dist1d.hpp"

using namespace cagnet;

namespace {

void closed_form_table(const DatasetSpec& spec) {
  std::printf("\n--- %s (n=%.3e, nnz=%.3e, f=%.0f, L=3) ---\n",
              spec.name.c_str(), static_cast<double>(spec.vertices),
              static_cast<double>(spec.edges),
              static_cast<double>(spec.features));
  std::printf("%6s %12s %12s %12s %12s %10s %12s\n", "P", "1D", "1.5D(c=4)",
              "2D", "3D", "2D/1D", "5/sqrt(P)");
  for (long p : {4L, 16L, 36L, 64L, 100L, 256L, 1024L, 4096L}) {
    const CostInputs in = CostInputs::from_random(
        static_cast<double>(spec.vertices), static_cast<double>(spec.edges),
        static_cast<double>(spec.features), static_cast<int>(p), 3);
    const double w1 = cost_1d(in).words;
    const double w15 = cost_15d(in, 4).words;
    const double w2 = cost_2d(in).words;
    const double w3 = cost_3d(in).words;
    std::printf("%6ld %12.3e %12.3e %12.3e %12.3e %10.3f %12.3f%s\n", p, w1,
                w15, w2, w3, w2 / w1, 5.0 / std::sqrt(static_cast<double>(p)),
                w2 < w1 ? "  << 2D wins" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  std::printf("=== Sections IV & VI-d: communication scaling of the "
              "algorithm families ===\n");
  std::printf("(words moved per process per epoch, closed forms at FULL "
              "Table VI sizes)\n");
  for (const DatasetSpec& spec : paper_datasets()) closed_form_table(spec);

  std::printf("\nNote the crossover: 2D/1D beats 1.0 once sqrt(P) > 5 under"
              "\nthe nnz~nf regime — at 8-16 GPUs (NeuGraph/ROC scale) 1D\n"
              "still wins, exactly the paper's Section VI-d argument.\n");

  // ---- metered vs analytical cross-check ----
  std::printf("\n=== metered traffic vs closed forms (scaled graphs, small P)"
              " ===\n");
  SyntheticOptions opt;
  opt.scale = 1.0 / 1024;
  opt.max_features = 64;
  const Graph g = make_dataset("amazon", opt);
  const double n = static_cast<double>(g.num_vertices());
  const double nnz = static_cast<double>(g.num_edges());
  // Uniform layer width makes the closed form exact per layer.
  GnnConfig config;
  config.dims = {g.feature_dim(), g.feature_dim(), g.feature_dim(),
                 g.num_classes};
  const double favg = static_cast<double>(g.feature_dim());
  const DistProblem problem = DistProblem::prepare(g);

  std::printf("%-5s %4s %14s %14s %8s\n", "algo", "P", "metered dense",
              "predicted", "ratio");
  for (long p : {4L, 8L, 16L}) {
    double metered = 0;
    run_world(static_cast<int>(p), [&](Comm& world) {
      Dist1D trainer(problem, config, world);
      trainer.train_epoch();
      const EpochStats s =
          trainer.reduce_epoch_stats();
      if (world.rank() == 0) metered = s.comm.words(CommCategory::kDense);
    });
    const CostInputs in = CostInputs::from_random(
        n, nnz, favg, static_cast<int>(p), 3);
    const double predicted = cost_1d(in).words;
    std::printf("%-5s %4ld %14.3e %14.3e %8.3f\n", "1D", p, metered,
                predicted, metered / predicted);
  }
  for (long p : {4L, 16L, 36L}) {
    const bench::Fig2Point pt = [&] {
      bench::Fig2Point out;
      const MachineModel summit = MachineModel::summit();
      run_world(static_cast<int>(p), [&](Comm& world) {
        Dist2D trainer(problem, config, world);
        trainer.train_epoch();
        const EpochStats s =
            trainer.reduce_epoch_stats();
        if (world.rank() == 0) {
          out.stats = s;
          out.modeled_epoch_seconds = s.modeled_seconds(summit);
        }
      });
      return out;
    }();
    const CostInputs in = CostInputs::from_random(
        n, nnz, favg, static_cast<int>(p), 3);
    // The 2D closed form's dense part: 8nf/sqrt(P) + f^2 per layer.
    const double rp = std::sqrt(static_cast<double>(p));
    const double predicted = 3.0 * (8.0 * n * favg / rp + favg * favg);
    std::printf("%-5s %4ld %14.3e %14.3e %8.3f\n", "2D", p,
                pt.stats.comm.words(CommCategory::kDense), predicted,
                pt.stats.comm.words(CommCategory::kDense) / predicted);
  }
  std::printf(
      "\n1D ratios sit near 1: Algorithm 1's broadcasts realize the\n"
      "edgecut*f + nf + f^2 form directly. 2D ratios sit near 0.5 and are\n"
      "*stable in P*: the paper's 8nf/sqrt(P) constant is deliberately\n"
      "conservative (Section IV-C5 'to reduce clutter'), while the\n"
      "implementation reuses the AG^l all-gather for both Y^l and G^(l-1)\n"
      "and moves ~4nf/sqrt(P) per layer. Constant offsets do not affect\n"
      "any scaling conclusion; the sqrt(P) slope is what matters and it\n"
      "matches (see the P-sweep above).\n");
  return 0;
}
