// Ablations of the design choices Section IV discusses but does not
// implement (DESIGN.md experiment E9):
//
//   (a) Rectangular 2D grids (Section IV-C.6): a Pr > Pc grid trades
//       sparse-broadcast words (nnz/Pr) for dense words (nf/Pc + nf/Pr);
//       the paper argues the square minimizes the dense sum ("square has
//       the smallest perimeter") and keeps to square grids. The table
//       shows where a rectangular grid *would* pay off: d >> f.
//   (b) 1.5D replication (Section IV-B): metered words and per-rank memory
//       of Dist15D at c in {1, 2, 4, 8}, on one world size. Communication
//       falls ~1/c while the dense memory grows c-fold — the trade the
//       paper deems unattractive for GNNs (d = O(f)), visible here.
#include <cstdio>

#include "src/core/costmodel.hpp"
#include "src/core/dist15d.hpp"
#include "src/graph/datasets.hpp"
#include "src/util/cli.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  std::printf("=== (a) rectangular 2D grids, forward-propagation words "
              "(closed form, P=64) ===\n\n");
  struct Shape {
    const char* label;
    double n, d, f;
  };
  const Shape shapes[] = {
      {"amazon-like  (d=24.6 << f=300)", 9.43e6, 24.6, 300},
      {"protein-like (d=121 ~ f=128)", 8.75e6, 121, 128},
      {"degree-heavy (d=500 >> f=16)", 1e6, 500, 16},
  };
  for (const Shape& s : shapes) {
    std::printf("%s\n", s.label);
    std::printf("  %8s %14s %14s %14s\n", "Pr x Pc", "sparse words",
                "dense words", "total");
    CostInputs in;
    in.n = s.n;
    in.nnz = s.d * s.n;
    in.f = s.f;
    in.p = 64;
    in.layers = 1;
    for (const auto [pr, pc] : {std::pair<int, int>{2, 32},
                                {4, 16},
                                {8, 8},
                                {16, 4},
                                {32, 2}}) {
      const double sparse = in.nnz / pr;
      const double dense = in.n * in.f / pc + in.n * in.f / pr;
      std::printf("  %3dx%-4d %14.3e %14.3e %14.3e%s\n", pr, pc, sparse,
                  dense, sparse + dense,
                  (pr == 8 && pc == 8) ? "   <- square" : "");
    }
    std::printf("\n");
  }

  std::printf("=== (b) 1.5D replication ablation (metered, P=16) ===\n\n");
  SyntheticOptions opt;
  opt.scale = 1.0 / 1024;
  opt.max_features = 64;
  const Graph g = make_dataset("amazon", opt);
  const GnnConfig config =
      GnnConfig::three_layer(g.feature_dim(), g.num_classes);
  const DistProblem problem = DistProblem::prepare(g);
  const MachineModel summit = MachineModel::summit();
  const double n = static_cast<double>(g.num_vertices());
  const double f = static_cast<double>(g.feature_dim());

  std::printf("%3s %16s %14s %18s %10s\n", "c", "dense words/rank",
              "modeled ms", "H-memory words/rank", "loss");
  for (int c : {1, 2, 4, 8}) {
    double words = 0;
    double ms = 0;
    Real loss = 0;
    run_world(16, [&](Comm& world) {
      Dist15D trainer(problem, config, world, c);
      EpochResult r{};
      for (int e = 0; e < 2; ++e) r = trainer.train_epoch();
      const EpochStats s =
          trainer.reduce_epoch_stats();
      if (world.rank() == 0) {
        words = s.comm.words(CommCategory::kDense);
        ms = 1e3 * s.comm.modeled_seconds(summit);
        loss = r.loss;
      }
    });
    // Per-rank H storage: block rows n/(P/c) x f, i.e. c-fold replication.
    const double h_mem = n * f / (16.0 / c);
    std::printf("%3d %16.3e %14.3f %18.3e %10.4f\n", c, words, ms, h_mem,
                loss);
  }
  std::printf("\nExpected: dense words fall roughly as 1/c (until the\n"
              "team-reduction terms bite) while the dense memory footprint\n"
              "rises c-fold — Section IV-B's trade-off. Losses identical:\n"
              "every c computes the same training.\n");
  return 0;
}
