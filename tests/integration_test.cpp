// End-to-end integration tests crossing module boundaries: dataset
// registry -> distributed training -> checkpoint -> serial inference, and
// Matrix Market round trips feeding the training pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "src/comm/compress.hpp"
#include "src/core/costmodel.hpp"
#include "src/core/dist2d.hpp"
#include "src/dense/ops.hpp"
#include "src/gnn/checkpoint.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/graph/datasets.hpp"
#include "src/graph/mmio.hpp"
#include "src/graph/partition.hpp"
#include "src/sparse/generate.hpp"

namespace cagnet {
namespace {

TEST(Integration, RegistryTrainCheckpointInfer) {
  // Compares lossy distributed training against an exact serial oracle;
  // only meaningful when the wire is exact. Lossy-mode convergence is
  // asserted (with tolerance) in compress_test.
  if (compress_mode() != CompressMode::kOff) {
    GTEST_SKIP() << "dist-vs-serial exactness requires CAGNET_COMPRESS=off";
  }
  // 1. Synthetic amazon analog from the Table VI registry.
  SyntheticOptions opt;
  opt.scale = 1.0 / 4096;
  opt.max_features = 24;
  const Graph g = make_dataset("amazon", opt);

  // 2. Distributed 2D training for a few epochs; rank 0 checkpoints.
  GnnConfig config = GnnConfig::three_layer(g.feature_dim(), g.num_classes);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_integration.ckpt")
          .string();
  Real dist_loss = 0;
  run_world(4, [&](Comm& world) {
    Dist2D trainer(problem, config, world);
    EpochResult r{};
    for (int e = 0; e < 3; ++e) r = trainer.train_epoch();
    if (world.rank() == 0) {
      dist_loss = r.loss;
      save_weights(path, trainer.weights());
    }
  });

  // 3. Serial trainer restored from the checkpoint must produce the same
  //    next-epoch loss as continuing distributed training would.
  SerialTrainer serial(g, config);
  serial.weights() = load_weights(path);
  const Matrix& probs = serial.forward();
  const Real resumed_loss = nll_loss(probs, g.labels);

  SerialTrainer oracle(g, config);
  for (int e = 0; e < 3; ++e) oracle.train_epoch();
  const Real oracle_loss = nll_loss(oracle.forward(), g.labels);
  EXPECT_NEAR(resumed_loss, oracle_loss, 1e-8);
  EXPECT_TRUE(std::isfinite(dist_loss));
  std::remove(path.c_str());
}

TEST(Integration, MatrixMarketGraphFeedsTraining) {
  // Export a generated topology, reload it as if it were an external
  // dataset, normalize, and train end to end.
  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_integration.mtx")
          .string();
  Rng rng(31);
  const Csr raw = Csr::from_coo(erdos_renyi(150, 5, rng));
  write_matrix_market_file(path, raw);

  Coo reloaded = read_matrix_market_file(path);
  Graph g;
  g.name = "mtx";
  g.adjacency = gcn_normalize(std::move(reloaded), true);
  g.features = Matrix(150, 6);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = 3;
  g.labels.assign(150, 0);
  for (std::size_t v = 0; v < g.labels.size(); ++v) {
    g.labels[v] = static_cast<Index>(v % 3);
  }

  GnnConfig config = GnnConfig::three_layer(6, 3, 8);
  SerialTrainer trainer(g, config);
  const Real first = trainer.train_epoch().loss;
  Real last = first;
  for (int e = 0; e < 20; ++e) last = trainer.train_epoch().loss;
  EXPECT_LT(last, first);
  std::remove(path.c_str());
}

TEST(Integration, PartitionerFeedsCostModelNarrative) {
  // The 1D bandwidth term is edgecut * f: a better partition must map to a
  // proportionally lower modeled communication for the 1D algorithm.
  Rng rng(32);
  Coo coo = planted_partition(3000, 30, 10, 1, rng, 0.0);
  coo.symmetrize();
  const Csr a = Csr::from_coo(coo);
  Rng prng(33);
  const auto random_cut = edge_cut(a, random_partition(a.rows(), 8, prng));
  const auto greedy_cut = edge_cut(a, greedy_bfs_partition(a, 8));
  ASSERT_LT(greedy_cut.max_remote_rows_per_part,
            random_cut.max_remote_rows_per_part);

  CostInputs in;
  in.n = static_cast<double>(a.rows());
  in.nnz = static_cast<double>(a.nnz());
  in.f = 64;
  in.p = 8;
  in.layers = 3;
  in.edgecut = static_cast<double>(random_cut.max_remote_rows_per_part);
  const double random_words = cost_1d(in).words;
  in.edgecut = static_cast<double>(greedy_cut.max_remote_rows_per_part);
  const double greedy_words = cost_1d(in).words;
  EXPECT_LT(greedy_words, random_words);
}

TEST(Integration, DatasetScaleSweepStaysTrainable) {
  // Property sweep: every registry dataset at several scales produces a
  // normalized, trainable problem (finite losses, spectral norm <= 1).
  for (const auto& spec : paper_datasets()) {
    for (double denom : {2048.0, 8192.0}) {
      SyntheticOptions opt;
      opt.scale = 1.0 / denom;
      opt.max_features = 12;
      const Graph g = make_synthetic(spec, opt);
      ASSERT_GT(g.num_vertices(), 0);
      ASSERT_EQ(g.adjacency.rows(), g.adjacency.cols());
      GnnConfig config = GnnConfig::three_layer(g.feature_dim(),
                                                g.num_classes, 4);
      SerialTrainer trainer(g, config);
      const EpochResult r = trainer.train_epoch();
      EXPECT_TRUE(std::isfinite(r.loss)) << spec.name << " 1/" << denom;
    }
  }
}

}  // namespace
}  // namespace cagnet
