// Checkpoint round-trip: train k epochs, save, reload into a fresh
// trainer, continue — the resumed run must be bitwise identical (losses
// and weights) to training straight through, across all four algebra
// families. SGD is stateless, so the weights ARE the full training state.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/gnn/checkpoint.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/error.hpp"

namespace cagnet {
namespace {

/// Weights-only checkpoints capture the complete training state only on
/// an exact wire: under a lossy codec the error-feedback residual is
/// deliberately per-run transient state (never serialized), so the
/// resume-bitwise contract is pinned in exact mode regardless of the
/// ambient CAGNET_COMPRESS the suite was launched with.
class ExactModeGuard {
 public:
  ExactModeGuard() : mode_(compress_mode()) {
    set_compress_mode(CompressMode::kOff);
  }
  ~ExactModeGuard() { set_compress_mode(mode_); }

 private:
  CompressMode mode_;
};

Graph small_graph(Index n, Index communities, Index f, Index classes,
                  std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "checkpoint-test";
  Coo coo = planted_partition(n, communities, 8.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v % classes;
  }
  return g;
}

struct Trace {
  std::vector<Real> losses;
  std::vector<Matrix> weights;
};

/// Train `epochs` epochs; if `load_path` is non-empty the trainer first
/// restores its weights from that checkpoint; if `save_path` is non-empty
/// rank 0 checkpoints the weights after the last epoch.
Trace train(const std::string& algebra, const DistProblem& problem,
            const GnnConfig& config, int p, int epochs,
            const std::string& load_path, const std::string& save_path) {
  Trace trace;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    if (!load_path.empty()) {
      trainer->set_weights(load_weights(load_path));
    }
    std::vector<Real> losses;
    for (int e = 0; e < epochs; ++e) {
      losses.push_back(trainer->train_epoch().loss);
    }
    if (world.rank() == 0) {
      if (!save_path.empty()) save_weights(save_path, trainer->weights());
      std::lock_guard<std::mutex> lock(mutex);
      trace.losses = std::move(losses);
      trace.weights = trainer->weights();
    }
  });
  return trace;
}

TEST(CheckpointRoundTrip, ResumeIsBitwiseAcrossAllAlgebras) {
  ExactModeGuard exact;
  const Graph g = small_graph(160, 8, 8, 4, 77);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const int pre = 3;   // epochs before the checkpoint
  const int post = 2;  // epochs after the reload

  const struct {
    const char* algebra;
    int p;
  } cases[] = {{"1d", 4}, {"1.5d-c2", 4}, {"2d", 4}, {"3d", 8}};

  for (const auto& c : cases) {
    SCOPED_TRACE(c.algebra);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         (std::string("cagnet_ckpt_") + c.algebra + ".bin"))
            .string();

    // Oracle: train straight through, no interruption.
    const Trace oracle =
        train(c.algebra, problem, config, c.p, pre + post, "", "");

    // Interrupted run: train, checkpoint, reload into a fresh world,
    // continue. Bitwise identity of the continuation is the contract.
    train(c.algebra, problem, config, c.p, pre, "", path);
    const Trace resumed =
        train(c.algebra, problem, config, c.p, post, path, "");
    std::remove(path.c_str());

    ASSERT_EQ(oracle.losses.size(), static_cast<std::size_t>(pre + post));
    ASSERT_EQ(resumed.losses.size(), static_cast<std::size_t>(post));
    for (int e = 0; e < post; ++e) {
      EXPECT_EQ(resumed.losses[static_cast<std::size_t>(e)],
                oracle.losses[static_cast<std::size_t>(pre + e)])
          << "epoch " << pre + e;
    }
    ASSERT_EQ(resumed.weights.size(), oracle.weights.size());
    for (std::size_t l = 0; l < oracle.weights.size(); ++l) {
      EXPECT_LE(Matrix::max_abs_diff(resumed.weights[l], oracle.weights[l]),
                Real{0})
          << "layer " << l;
    }
  }
}

TEST(CheckpointRoundTrip, SetWeightsRejectsShapeMismatch) {
  const Graph g = small_graph(64, 4, 8, 4, 79);
  const GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  const DistProblem problem = DistProblem::prepare(g);
  run_world(1, [&](Comm& world) {
    auto trainer = make_dist_trainer("1d", problem, config, world);
    std::vector<Matrix> wrong_count;
    EXPECT_THROW(trainer->set_weights(wrong_count), Error);
    std::vector<Matrix> wrong_shape = trainer->weights();
    wrong_shape[0] = Matrix(1, 1);
    EXPECT_THROW(trainer->set_weights(wrong_shape), Error);
  });
}

}  // namespace
}  // namespace cagnet
