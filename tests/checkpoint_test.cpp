// Checkpoint round-trip: train k epochs, save, reload into a fresh
// trainer, continue — the resumed run must be bitwise identical (losses
// and weights) to training straight through, across all four algebra
// families. SGD is stateless, so the weights ARE the full training state.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/gnn/checkpoint.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/error.hpp"

namespace cagnet {
namespace {

/// Weights-only checkpoints capture the complete training state only on
/// an exact wire: under a lossy codec the error-feedback residual is
/// deliberately per-run transient state (never serialized), and under
/// bounded staleness (CAGNET_STALE) the halo cache is equally transient —
/// a rebuilt world starts invalid and refreshes on its first epoch, so a
/// resumed lossy run legitimately diverges from the uninterrupted one
/// (the StaleRestart drill pins that contract). The resume-bitwise
/// contract here is therefore pinned in exact mode regardless of the
/// ambient CAGNET_COMPRESS / CAGNET_STALE / CAGNET_PREAGG the suite was
/// launched with.
class ExactModeGuard {
 public:
  ExactModeGuard()
      : mode_(compress_mode()),
        stale_(dist::stale_k()),
        preagg_(dist::preagg_enabled()) {
    set_compress_mode(CompressMode::kOff);
    dist::set_stale_k(0);
    dist::set_preagg_enabled(false);
  }
  ~ExactModeGuard() {
    set_compress_mode(mode_);
    dist::set_stale_k(stale_);
    dist::set_preagg_enabled(preagg_);
  }

 private:
  CompressMode mode_;
  int stale_;
  bool preagg_;
};

Graph small_graph(Index n, Index communities, Index f, Index classes,
                  std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "checkpoint-test";
  Coo coo = planted_partition(n, communities, 8.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v % classes;
  }
  return g;
}

struct Trace {
  std::vector<Real> losses;
  std::vector<Matrix> weights;
};

/// Train `epochs` epochs; if `load_path` is non-empty the trainer first
/// restores its weights from that checkpoint; if `save_path` is non-empty
/// rank 0 checkpoints the weights after the last epoch.
Trace train(const std::string& algebra, const DistProblem& problem,
            const GnnConfig& config, int p, int epochs,
            const std::string& load_path, const std::string& save_path) {
  Trace trace;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    if (!load_path.empty()) {
      trainer->set_weights(load_weights(load_path));
    }
    std::vector<Real> losses;
    for (int e = 0; e < epochs; ++e) {
      losses.push_back(trainer->train_epoch().loss);
    }
    if (world.rank() == 0) {
      if (!save_path.empty()) save_weights(save_path, trainer->weights());
      std::lock_guard<std::mutex> lock(mutex);
      trace.losses = std::move(losses);
      trace.weights = trainer->weights();
    }
  });
  return trace;
}

TEST(CheckpointRoundTrip, ResumeIsBitwiseAcrossAllAlgebras) {
  ExactModeGuard exact;
  const Graph g = small_graph(160, 8, 8, 4, 77);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const int pre = 3;   // epochs before the checkpoint
  const int post = 2;  // epochs after the reload

  const struct {
    const char* algebra;
    int p;
  } cases[] = {{"1d", 4}, {"1.5d-c2", 4}, {"2d", 4}, {"3d", 8}};

  for (const auto& c : cases) {
    SCOPED_TRACE(c.algebra);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         (std::string("cagnet_ckpt_") + c.algebra + ".bin"))
            .string();

    // Oracle: train straight through, no interruption.
    const Trace oracle =
        train(c.algebra, problem, config, c.p, pre + post, "", "");

    // Interrupted run: train, checkpoint, reload into a fresh world,
    // continue. Bitwise identity of the continuation is the contract.
    train(c.algebra, problem, config, c.p, pre, "", path);
    const Trace resumed =
        train(c.algebra, problem, config, c.p, post, path, "");
    std::remove(path.c_str());

    ASSERT_EQ(oracle.losses.size(), static_cast<std::size_t>(pre + post));
    ASSERT_EQ(resumed.losses.size(), static_cast<std::size_t>(post));
    for (int e = 0; e < post; ++e) {
      EXPECT_EQ(resumed.losses[static_cast<std::size_t>(e)],
                oracle.losses[static_cast<std::size_t>(pre + e)])
          << "epoch " << pre + e;
    }
    ASSERT_EQ(resumed.weights.size(), oracle.weights.size());
    for (std::size_t l = 0; l < oracle.weights.size(); ++l) {
      EXPECT_LE(Matrix::max_abs_diff(resumed.weights[l], oracle.weights[l]),
                Real{0})
          << "layer " << l;
    }
  }
}

TEST(CheckpointRoundTrip, SetWeightsRejectsShapeMismatch) {
  const Graph g = small_graph(64, 4, 8, 4, 79);
  const GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  const DistProblem problem = DistProblem::prepare(g);
  run_world(1, [&](Comm& world) {
    auto trainer = make_dist_trainer("1d", problem, config, world);
    std::vector<Matrix> wrong_count;
    EXPECT_THROW(trainer->set_weights(wrong_count), Error);
    std::vector<Matrix> wrong_shape = trainer->weights();
    wrong_shape[0] = Matrix(1, 1);
    EXPECT_THROW(trainer->set_weights(wrong_shape), Error);
  });
}

// ---- Format hardening: version, CRC32, atomic writes ----

namespace {

std::vector<Matrix> sample_weights() {
  Rng rng(5);
  std::vector<Matrix> weights;
  weights.emplace_back(7, 5);
  weights.back().fill_uniform(rng, -1, 1);
  weights.emplace_back(5, 3);
  weights.back().fill_uniform(rng, -1, 1);
  return weights;
}

std::string ckpt_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(CheckpointFormat, EpochAndWeightsRoundTripAndNoTmpLeftBehind) {
  const std::string path = ckpt_path("cagnet_fmt_roundtrip.bin");
  const std::vector<Matrix> weights = sample_weights();
  save_checkpoint(path, weights, 42);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.epoch, 42u);
  ASSERT_EQ(loaded.weights.size(), weights.size());
  for (std::size_t l = 0; l < weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(loaded.weights[l], weights[l]), Real{0});
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormat, BitFlipAnywhereFailsTheCrc) {
  const std::string path = ckpt_path("cagnet_fmt_bitflip.bin");
  save_checkpoint(path, sample_weights(), 7);
  const std::string good = slurp(path);
  // Flip one bit in each region: header field, payload, and the stored
  // CRC itself — every corruption must be rejected with the typed error.
  for (const std::size_t pos :
       {std::size_t{6}, good.size() / 2, good.size() - 2}) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    spit(path, bad);
    EXPECT_THROW(load_checkpoint(path), CheckpointError) << "byte " << pos;
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormat, TruncationIsRejected) {
  const std::string path = ckpt_path("cagnet_fmt_trunc.bin");
  save_checkpoint(path, sample_weights(), 3);
  const std::string good = slurp(path);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, std::size_t{6}, good.size() / 2,
        good.size() - 1}) {
    spit(path, good.substr(0, keep));
    EXPECT_THROW(load_checkpoint(path), CheckpointError) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormat, ForeignAndMissingFilesAreTypedErrors) {
  const std::string path = ckpt_path("cagnet_fmt_foreign.bin");
  spit(path, "PNG\x89 definitely not a checkpoint");
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  try {
    load_checkpoint(path);
    FAIL() << "bad magic not diagnosed";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
  std::remove(path.c_str());
  EXPECT_THROW(load_checkpoint(path), CheckpointError);  // missing file
  // CheckpointError derives from Error: existing catch sites still work.
  EXPECT_THROW(load_weights(path), Error);
}

TEST(CheckpointFormat, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789" — pins the polynomial and
  // reflection so checkpoints stay portable across platforms.
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(CheckpointFormat, SaveOverwritesAtomically) {
  const std::string path = ckpt_path("cagnet_fmt_overwrite.bin");
  save_checkpoint(path, sample_weights(), 1);
  std::vector<Matrix> second = sample_weights();
  second[0].data()[0] = Real{123.5};
  save_checkpoint(path, second, 2);
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.epoch, 2u);
  EXPECT_EQ(loaded.weights[0].data()[0], Real{123.5});
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cagnet
