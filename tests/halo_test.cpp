// Partition-aware layouts and the sparsity-aware halo exchange.
//
// The HaloParity suite is the contract of dist::set_halo_enabled: for every
// rows-whole algebra, world size, partitioner, and CAGNET_OVERLAP mode, the
// halo path must reproduce the broadcast path's losses, accuracy, weights,
// and embeddings *bitwise* while metering strictly less traffic. The exact
// words test pins the acceptance claim of Section IV-A.8: on a
// community-structured graph the 1D halo volume equals
// max_remote_rows_per_part * f exactly and beats the broadcast bound by a
// wide factor under the greedy-BFS partitioner. The serial-parity tests
// verify the partition/permutation contract end to end (relabel once,
// train permuted, un-permute on output).
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/core/costmodel.hpp"
#include "src/core/dist15d.hpp"
#include "src/core/dist1d.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/graph/datasets.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

constexpr Real kParityTol = 1e-8;

/// Cross-path exactness (halo vs broadcast, distributed vs serial) is a
/// contract of exact traffic: an ambient lossy codec (CAGNET_COMPRESS)
/// re-encodes the halo payload but not the broadcasts, so the paths
/// legitimately diverge. Those tests skip themselves under a lossy mode;
/// within-mode parity (overlap vs blocking under the same codec) still
/// runs and must stay bitwise. Lossy-mode accuracy is compress_test's.
#define SKIP_IF_AMBIENT_LOSSY()                                           \
  do {                                                                    \
    if (compress_mode() != CompressMode::kOff) {                          \
      GTEST_SKIP() << "cross-path exactness holds only for exact "        \
                      "traffic (CAGNET_COMPRESS="                         \
                   << compress_mode_name(compress_mode()) << ")";         \
    }                                                                     \
    if (dist::stale_k() != 0 && dist::stale_k() != 1) {                   \
      GTEST_SKIP() << "cross-path exactness holds only for exact "        \
                      "traffic (CAGNET_STALE=" << dist::stale_k() << ")"; \
    }                                                                     \
    if (dist::preagg_enabled()) {                                         \
      GTEST_SKIP() << "cross-path exactness holds only for exact "       \
                      "traffic (CAGNET_PREAGG=on)";                       \
    }                                                                     \
  } while (false)

/// Community-structured graph (no hubs): the regime where a locality
/// partitioner shrinks the halo.
Graph community_graph(Index n, Index communities, Index f, Index classes,
                      std::uint64_t seed, double intra = 10.0,
                      double inter = 1.0) {
  Rng rng(seed);
  Graph g;
  g.name = "halo-test";
  Coo coo = planted_partition(n, communities, intra, inter, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    label = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(classes)));
  }
  return g;
}

struct HaloRun {
  std::vector<Real> losses;
  std::vector<Real> accuracies;
  std::vector<Matrix> weights;
  Matrix output;          // gathered, un-permuted
  EpochStats stats;       // max-reduced, final epoch
};

HaloRun run_trainer(const std::string& algebra, const DistProblem& problem,
                    const GnnConfig& config, int p, int epochs) {
  HaloRun run;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    std::vector<Real> accuracies;
    for (int e = 0; e < epochs; ++e) {
      const EpochResult r = trainer->train_epoch();
      losses.push_back(r.loss);
      accuracies.push_back(r.accuracy);
    }
    const EpochStats reduced = trainer->reduce_epoch_stats();
    Matrix out = trainer->gather_output();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      run.losses = std::move(losses);
      run.accuracies = std::move(accuracies);
      run.weights = trainer->weights();
      run.output = std::move(out);
      run.stats = reduced;
    }
  });
  return run;
}

/// Flip both runtime toggles around a body, restoring them afterwards.
class ToggleGuard {
 public:
  ToggleGuard()
      : overlap_(dist::overlap_enabled()), halo_(dist::halo_enabled()) {}
  ~ToggleGuard() {
    dist::set_overlap_enabled(overlap_);
    dist::set_halo_enabled(halo_);
  }

 private:
  bool overlap_;
  bool halo_;
};

// ---- HaloParity: broadcast vs halo, bitwise, across the matrix of
// algebras x world sizes x partitioners x overlap modes ----

struct HaloCase {
  std::string algebra;
  int p = 0;
  int partition_parts = 0;  ///< parts the DistProblem is prepared for
};

std::vector<HaloCase> halo_cases() {
  // Partition parts aligned with the algebra's row-block count (P for 1D,
  // G = P/c for 1.5D) exercise the partition-aware boundaries; the final
  // 1.5D case deliberately misaligns them to cover the block_range
  // fallback on the permuted problem.
  return {
      {"1d", 4, 4},       {"1d", 7, 7},      {"1.5d-c2", 8, 4},
      {"1.5d-c4", 8, 2},  {"1.5d-c2", 4, 4},
  };
}

class HaloParity
    : public ::testing::TestWithParam<std::tuple<HaloCase, std::string>> {};

TEST_P(HaloParity, BitwiseMatchesBroadcastPath) {
  SKIP_IF_AMBIENT_LOSSY();
  const auto [c, partitioner] = GetParam();
  const Graph g = community_graph(252, 12, 10, 4, 91);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 3;
  const DistProblem problem =
      DistProblem::prepare(g, c.partition_parts, partitioner);

  ToggleGuard guard;
  for (bool overlap : {true, false}) {
    dist::set_overlap_enabled(overlap);
    dist::set_halo_enabled(false);
    const HaloRun bcast =
        run_trainer(c.algebra, problem, config, c.p, epochs);
    dist::set_halo_enabled(true);
    const HaloRun halo =
        run_trainer(c.algebra, problem, config, c.p, epochs);

    const std::string label = c.algebra + " p=" + std::to_string(c.p) +
                              " " + partitioner +
                              (overlap ? " overlap" : " blocking");
    ASSERT_EQ(halo.losses.size(), bcast.losses.size()) << label;
    for (std::size_t e = 0; e < halo.losses.size(); ++e) {
      EXPECT_EQ(halo.losses[e], bcast.losses[e]) << label << " epoch " << e;
      EXPECT_EQ(halo.accuracies[e], bcast.accuracies[e])
          << label << " epoch " << e;
    }
    ASSERT_EQ(halo.weights.size(), bcast.weights.size()) << label;
    for (std::size_t l = 0; l < halo.weights.size(); ++l) {
      EXPECT_LE(Matrix::max_abs_diff(halo.weights[l], bcast.weights[l]),
                Real{0})
          << label << " weights layer " << l;
    }
    EXPECT_LE(Matrix::max_abs_diff(halo.output, bcast.output), Real{0})
        << label << " output";

    // The halo path moves its forward traffic as kHalo and strictly less
    // dense data; the broadcast path never charges kHalo.
    EXPECT_GT(halo.stats.comm.words(CommCategory::kHalo), 0.0) << label;
    EXPECT_DOUBLE_EQ(bcast.stats.comm.words(CommCategory::kHalo), 0.0)
        << label;
    EXPECT_LT(halo.stats.comm.words(CommCategory::kDense),
              bcast.stats.comm.words(CommCategory::kDense))
        << label;
    // The halo never moves more than the broadcasts; under a random
    // partition it can tie exactly (every remote row is touched).
    EXPECT_LE(halo.stats.comm.total_words(), bcast.stats.comm.total_words())
        << label;
  }
}

std::string halo_case_name(
    const ::testing::TestParamInfo<std::tuple<HaloCase, std::string>>&
        info) {
  const auto& [c, partitioner] = info.param;
  std::string name = c.algebra + "_p" + std::to_string(c.p) + "_parts" +
                     std::to_string(c.partition_parts) + "_" + partitioner;
  for (char& ch : name) {
    if (ch == '.' || ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, HaloParity,
    ::testing::Combine(::testing::ValuesIn(halo_cases()),
                       ::testing::Values("block", "random", "greedy-bfs")),
    halo_case_name);

// ---- Pipelined-path parity: halo x overlap vs halo x blocking, bitwise,
// across world sizes x partitioners x thread counts ----

class HaloOverlapParity
    : public ::testing::TestWithParam<std::tuple<HaloCase, std::string>> {};

TEST_P(HaloOverlapParity, PipelinedPathBitwiseMatchesBlocking) {
  const auto [c, partitioner] = GetParam();
  const Graph g = community_graph(252, 12, 10, 4, 97);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 3;
  const DistProblem problem =
      DistProblem::prepare(g, c.partition_parts, partitioner);

  ToggleGuard guard;
  dist::set_halo_enabled(true);
  for (int threads : {1, 8}) {
    override_thread_budget(threads);
    dist::set_overlap_enabled(true);
    const HaloRun pipelined =
        run_trainer(c.algebra, problem, config, c.p, epochs);
    dist::set_overlap_enabled(false);
    const HaloRun blocking =
        run_trainer(c.algebra, problem, config, c.p, epochs);
    override_thread_budget(0);

    const std::string label = c.algebra + " p=" + std::to_string(c.p) +
                              " " + partitioner + " threads=" +
                              std::to_string(threads);
    ASSERT_EQ(pipelined.losses.size(), blocking.losses.size()) << label;
    for (std::size_t e = 0; e < pipelined.losses.size(); ++e) {
      EXPECT_EQ(pipelined.losses[e], blocking.losses[e])
          << label << " epoch " << e;
      EXPECT_EQ(pipelined.accuracies[e], blocking.accuracies[e])
          << label << " epoch " << e;
    }
    ASSERT_EQ(pipelined.weights.size(), blocking.weights.size()) << label;
    for (std::size_t l = 0; l < pipelined.weights.size(); ++l) {
      EXPECT_LE(
          Matrix::max_abs_diff(pipelined.weights[l], blocking.weights[l]),
          Real{0})
          << label << " weights layer " << l;
    }
    EXPECT_LE(Matrix::max_abs_diff(pipelined.output, blocking.output),
              Real{0})
        << label << " output";
    // Metered words and latency: bitwise equal per category (the
    // per-source drain charges must telescope to the blocking
    // alltoallv's).
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(CommCategory::kCount); ++i) {
      const auto cat = static_cast<CommCategory>(i);
      EXPECT_EQ(pipelined.stats.comm.words(cat),
                blocking.stats.comm.words(cat))
          << label << " words " << comm_category_name(cat);
      EXPECT_EQ(pipelined.stats.comm.latency_units(cat),
                blocking.stats.comm.latency_units(cat))
          << label << " latency " << comm_category_name(cat);
    }
    // The regression this PR fixes: the pipelined halo path must engage
    // the overlap machinery (one region per drained peer stage), where it
    // used to collapse to zero. Under ambient bounded staleness the
    // metered epoch may be a cache-replay epoch that elides the exchange
    // entirely (in both modes — the bitwise comparisons above still
    // bite), so the engagement assertion only applies on an exact
    // refresh schedule.
    if (dist::stale_k() == 0 || dist::stale_k() == 1) {
      EXPECT_GT(pipelined.stats.comm.overlap_regions(), 0.0) << label;
    }
    EXPECT_GE(pipelined.stats.comm.overlap_saved_seconds(), 0.0) << label;
    EXPECT_DOUBLE_EQ(blocking.stats.comm.overlap_regions(), 0.0) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, HaloOverlapParity,
    ::testing::Combine(::testing::ValuesIn(halo_cases()),
                       ::testing::Values("block", "random", "greedy-bfs")),
    halo_case_name);

TEST(HaloOverlap, ThreadedPackParityOnLargePipelinedExchange) {
  // Large enough that the pool pack/scatter actually splits into multiple
  // chunks (rows * f beyond the per-chunk minimum): the threaded pipeline
  // must stay bitwise the single-threaded blocking path.
  const Graph g = community_graph(4096, 32, 32, 8, 98);
  GnnConfig config = GnnConfig::three_layer(32, 8, 16);
  const DistProblem problem = DistProblem::prepare(g, 4, "random");

  ToggleGuard guard;
  dist::set_halo_enabled(true);
  dist::set_overlap_enabled(true);
  override_thread_budget(8);
  const HaloRun pipelined = run_trainer("1d", problem, config, 4, 2);
  override_thread_budget(1);
  dist::set_overlap_enabled(false);
  const HaloRun blocking = run_trainer("1d", problem, config, 4, 2);
  override_thread_budget(0);

  for (std::size_t e = 0; e < pipelined.losses.size(); ++e) {
    EXPECT_EQ(pipelined.losses[e], blocking.losses[e]) << "epoch " << e;
  }
  EXPECT_LE(Matrix::max_abs_diff(pipelined.output, blocking.output), Real{0});
  if (dist::stale_k() == 0 || dist::stale_k() == 1) {
    EXPECT_GT(pipelined.stats.comm.overlap_regions(), 0.0);
  }
}

// ---- The 1.5D backward contribution exchange ----

TEST(HaloBackward15D, EngagesUnderLocalityPartitionAndGatesUnderRandom) {
  const Graph g = community_graph(256, 16, 8, 4, 99, /*intra=*/12.0,
                                  /*inter=*/0.5);
  ToggleGuard guard;
  dist::set_halo_enabled(true);
  // Locality partition: the busiest rank's landed contribution rows stay
  // far under the reduce-scatter charge, so the mirrored backward
  // exchange must engage (this is the path the backward-parity cases in
  // HaloParity/HaloOverlapParity then exercise).
  {
    const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");
    run_world(8, [&](Comm& world) {
      Algebra15D algebra(problem, world, 2, MachineModel::summit());
      EXPECT_TRUE(algebra.halo_active());
      EXPECT_TRUE(algebra.backward_halo_active());
    });
    run_world(8, [&](Comm& world) {
      Algebra1D algebra(problem, world, MachineModel::summit());
      EXPECT_TRUE(algebra.halo_active());
    });
  }
  // Random partition: nearly every row travels anyway, so the gate must
  // keep the reduce-scatter (the exchange would move more and pay
  // pack/scatter work on top).
  {
    const DistProblem problem = DistProblem::prepare(g, 4, "random");
    run_world(8, [&](Comm& world) {
      Algebra15D algebra(problem, world, 2, MachineModel::summit());
      EXPECT_TRUE(algebra.halo_active());
      EXPECT_FALSE(algebra.backward_halo_active());
    });
  }
}

TEST(HaloBackward15D, BackwardExchangeShrinksDenseWordsVsReduceScatter) {
  SKIP_IF_AMBIENT_LOSSY();
  // With the backward exchange engaged, halo-mode kDense words must drop
  // strictly below the broadcast path's (which reduce-scatters the full
  // stripe) — not merely match it.
  const Graph g = community_graph(256, 16, 8, 4, 100, /*intra=*/12.0,
                                  /*inter=*/0.5);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  ToggleGuard guard;
  dist::set_halo_enabled(true);
  const HaloRun halo = run_trainer("1.5d-c2", problem, config, 8, 2);
  dist::set_halo_enabled(false);
  const HaloRun bcast = run_trainer("1.5d-c2", problem, config, 8, 2);

  for (std::size_t e = 0; e < halo.losses.size(); ++e) {
    EXPECT_EQ(halo.losses[e], bcast.losses[e]) << "epoch " << e;
  }
  EXPECT_LE(Matrix::max_abs_diff(halo.output, bcast.output), Real{0});
  EXPECT_LT(halo.stats.comm.words(CommCategory::kDense),
            bcast.stats.comm.words(CommCategory::kDense));
  EXPECT_LE(halo.stats.comm.total_words(), bcast.stats.comm.total_words());
}

// ---- The acceptance claim: exact edgecut volume and the >= 3x win ----

TEST(HaloWords, ExactEdgecutVolumeAndReductionAtP16) {
  SKIP_IF_AMBIENT_LOSSY();
  // Planted-partition graph at P=16 under the greedy-BFS partitioner: the
  // 1D halo path's metered kHalo words must equal
  // max_remote_rows_per_part * (sum of layer input widths) *exactly*, and
  // the total metered volume must be >= 3x below the broadcast path's.
  const int p = 16;
  const Graph g = community_graph(640, 16, 16, 8, 92, /*intra=*/12.0,
                                  /*inter=*/1.0);
  GnnConfig config = GnnConfig::three_layer(16, 8, 16);
  const DistProblem problem = DistProblem::prepare(g, p, "greedy-bfs");

  Index sum_f_in = 0;
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    sum_f_in += config.dims[l];
  }

  ToggleGuard guard;
  dist::set_halo_enabled(true);
  const HaloRun halo = run_trainer("1d", problem, config, p, 2);
  dist::set_halo_enabled(false);
  const HaloRun bcast = run_trainer("1d", problem, config, p, 2);

  const double expected =
      static_cast<double>(problem.edgecut.max_remote_rows_per_part) *
      static_cast<double>(sum_f_in);
  EXPECT_EQ(halo.stats.comm.words(CommCategory::kHalo), expected);
  EXPECT_GE(bcast.stats.comm.total_words(),
            3.0 * halo.stats.comm.total_words());
  // Bitwise training parity holds at this scale too.
  for (std::size_t e = 0; e < halo.losses.size(); ++e) {
    EXPECT_EQ(halo.losses[e], bcast.losses[e]);
  }
  // The measured edgecut feeds the closed forms: predicted 1D words under
  // from_partition bound the metered halo volume tightly from the same
  // statistic.
  const CostInputs measured = CostInputs::from_partition(
      problem.edgecut, static_cast<double>(g.num_vertices()),
      static_cast<double>(g.num_edges()), static_cast<double>(sum_f_in) / 3.0,
      p, 3);
  EXPECT_GT(cost_1d_symmetric(measured).words, expected);
}

// ---- Partition/permutation contract: permuted training, original-order
// output, serial parity for every family ----

TEST(PartitionedTraining, AllFamiliesMatchSerialUnderEveryPartitioner) {
  SKIP_IF_AMBIENT_LOSSY();
  const Graph g = community_graph(180, 9, 8, 3, 93);
  GnnConfig config = GnnConfig::three_layer(8, 3, 6);
  const int epochs = 3;

  SerialTrainer serial(g, config);
  std::vector<Real> serial_losses;
  for (int e = 0; e < epochs; ++e) {
    serial_losses.push_back(serial.train_epoch().loss);
  }
  const Matrix& serial_out = serial.activations().back();

  ToggleGuard guard;
  dist::set_halo_enabled(true);  // 2D/3D ignore the toggle; 1D/1.5D use it
  for (const std::string partitioner : {"random", "greedy-bfs"}) {
    for (const auto& [algebra, p] : {std::pair<std::string, int>{"1d", 5},
                                     {"1.5d-c2", 6},
                                     {"2d", 4},
                                     {"3d", 8}}) {
      const DistProblem problem = DistProblem::prepare(g, p, partitioner);
      const HaloRun dist = run_trainer(algebra, problem, config, p, epochs);
      const std::string label = algebra + " p=" + std::to_string(p) + " " +
                                partitioner;
      for (int e = 0; e < epochs; ++e) {
        EXPECT_NEAR(dist.losses[static_cast<std::size_t>(e)],
                    serial_losses[static_cast<std::size_t>(e)], kParityTol)
            << label << " epoch " << e;
      }
      EXPECT_LE(Matrix::max_abs_diff(dist.output, serial_out), kParityTol)
          << label;
    }
  }
}

TEST(PartitionedTraining, BlockPartitionerIsBitwiseIdentity) {
  // Preparing with the "block" partitioner must train bitwise identically
  // to the unpartitioned prepare (offsets reproduce block_range exactly,
  // no permutation).
  const Graph g = community_graph(120, 6, 6, 3, 94);
  const GnnConfig config = GnnConfig::three_layer(6, 3, 5);
  const DistProblem plain = DistProblem::prepare(g);
  const DistProblem blocked = DistProblem::prepare(g, 4, "block");
  EXPECT_TRUE(blocked.partitioned());
  EXPECT_TRUE(blocked.perm.empty());

  const HaloRun a = run_trainer("1d", plain, config, 4, 2);
  const HaloRun b = run_trainer("1d", blocked, config, 4, 2);
  for (std::size_t e = 0; e < a.losses.size(); ++e) {
    EXPECT_EQ(a.losses[e], b.losses[e]);
  }
  EXPECT_LE(Matrix::max_abs_diff(a.output, b.output), Real{0});
}

TEST(PartitionedTraining, RowRangeFollowsPartitionOffsetsWhenAligned) {
  const Graph g = community_graph(100, 5, 6, 3, 95);
  const DistProblem problem = DistProblem::prepare(g, 5, "greedy-bfs");
  ASSERT_TRUE(problem.partitioned());
  // Aligned query: ranges tile [0, n) along the partition's own offsets.
  Index covered = 0;
  for (int q = 0; q < 5; ++q) {
    const auto [lo, hi] = problem.row_range(5, q);
    EXPECT_EQ(lo, covered);
    EXPECT_LE(lo, hi);
    covered = hi;
    EXPECT_EQ(hi, problem.part_offsets[static_cast<std::size_t>(q) + 1]);
  }
  EXPECT_EQ(covered, g.num_vertices());
  // Misaligned query falls back to even blocks of the permuted order.
  const auto [lo3, hi3] = problem.row_range(3, 1);
  const auto [bl3, bh3] = block_range(g.num_vertices(), 3, 1);
  EXPECT_EQ(lo3, bl3);
  EXPECT_EQ(hi3, bh3);
}

TEST(PartitionedTraining, UnknownPartitionerThrows) {
  const Graph g = community_graph(60, 3, 4, 2, 96);
  EXPECT_THROW(DistProblem::prepare(g, 4, "metis"), Error);
}

}  // namespace
}  // namespace cagnet
