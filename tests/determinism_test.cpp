// Determinism and cost-model invariance of the threaded, cached hot path.
//
// Two guarantees this PR's optimizations must never break:
//
//  1. Thread-count determinism: every kernel parallelizes over disjoint
//     output blocks whose per-element accumulation order is independent of
//     the chunk count, so training is bitwise identical under any
//     CAGNET_THREADS. (Verified via override_thread_budget, the in-process
//     form of the env var.)
//
//  2. Meter invariance of the epoch caches: the SUMMA sparse-block and
//     distributed-transpose caches replay their recorded epoch-1 charges,
//     so per-epoch CostMeter words/latency — the paper's measurements —
//     are exactly what the uncached (seed-behavior) path charges, for
//     every algebra and every epoch.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "src/core/algebra_registry.hpp"
#include "src/graph/datasets.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

Graph make_graph(Index n, Index degree, Index f, Index classes,
                 std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "determinism-test";
  g.adjacency = gcn_normalize(rmat(n, n * degree, rng), true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    label = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(classes)));
  }
  return g;
}

struct TrainedState {
  std::vector<Real> losses;
  std::vector<Matrix> weights;
  Matrix output;
  // Per-epoch (latency, words) for every category, rank 0's view.
  std::vector<std::vector<double>> epoch_meters;
};

TrainedState train(const std::string& algebra, const DistProblem& problem,
                   const GnnConfig& config, int p, int epochs) {
  TrainedState state;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    std::vector<std::vector<double>> meters;
    for (int e = 0; e < epochs; ++e) {
      losses.push_back(trainer->train_epoch().loss);
      const CostMeter& m = trainer->last_epoch_stats().comm;
      std::vector<double> row;
      for (std::size_t c = 0; c < CostMeter::kNumCategories; ++c) {
        const auto cat = static_cast<CommCategory>(c);
        row.push_back(m.latency_units(cat));
        row.push_back(m.words(cat));
      }
      meters.push_back(std::move(row));
    }
    Matrix out = trainer->gather_output();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      state.losses = std::move(losses);
      state.weights = trainer->weights();
      state.output = std::move(out);
      state.epoch_meters = std::move(meters);
    }
  });
  return state;
}

void expect_bitwise_equal(const TrainedState& a, const TrainedState& b,
                          const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t e = 0; e < a.losses.size(); ++e) {
    EXPECT_EQ(a.losses[e], b.losses[e]) << label << " loss, epoch " << e;
  }
  ASSERT_EQ(a.weights.size(), b.weights.size()) << label;
  for (std::size_t l = 0; l < a.weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(a.weights[l], b.weights[l]), Real{0})
        << label << " weights, layer " << l;
  }
  EXPECT_LE(Matrix::max_abs_diff(a.output, b.output), Real{0})
      << label << " output";
}

/// Representative world per algebra, kept small so the whole suite stays
/// fast: the single-process worlds carry blocks large enough that the
/// kernels genuinely chunk under an 8-thread budget.
std::vector<std::pair<std::string, int>> determinism_cases() {
  return {{"1d", 1},      {"1d", 4},      {"1.5d-c2", 4}, {"1.5d-c4", 4},
          {"2d", 1},      {"2d", 4},      {"3d", 1},      {"3d", 8}};
}

TEST(ThreadDeterminism, TrainingBitwiseIdenticalAcrossThreadCounts) {
  // Large enough single-rank blocks that spmm/gemm really split into
  // multiple chunks at budget 8 (the minimum-work clamp is ~256k flops).
  const Graph g = make_graph(1024, 16, 32, 6, 71);
  const DistProblem problem = DistProblem::prepare(g);
  GnnConfig config = GnnConfig::three_layer(32, 6, 32);

  for (const auto& [algebra, p] : determinism_cases()) {
    override_thread_budget(1);
    const TrainedState serial = train(algebra, problem, config, p, 3);
    override_thread_budget(8);
    const TrainedState threaded = train(algebra, problem, config, p, 3);
    override_thread_budget(0);
    expect_bitwise_equal(serial, threaded,
                         algebra + " p=" + std::to_string(p));
  }
}

TEST(EpochCacheMeter, CachedChargesBitwiseMatchUncachedSeedBehavior) {
  const Graph g = make_graph(192, 8, 12, 4, 72);
  const DistProblem problem = DistProblem::prepare(g);
  GnnConfig config = GnnConfig::three_layer(12, 4, 8);
  const int epochs = 3;

  for (const AlgebraSpec& spec : algebra_registry()) {
    int p = 0;
    for (int candidate : spec.world_sizes) {
      if (candidate > 1 && candidate <= 9) p = candidate;
    }
    ASSERT_GT(p, 0) << spec.name;

    dist::set_epoch_cache_enabled(true);
    const TrainedState cached = train(spec.name, problem, config, p, epochs);
    dist::set_epoch_cache_enabled(false);
    const TrainedState uncached =
        train(spec.name, problem, config, p, epochs);
    dist::set_epoch_cache_enabled(true);

    // The cached path must charge exactly the uncached (seed) meters for
    // every epoch and category — latency units and words bitwise equal.
    ASSERT_EQ(cached.epoch_meters.size(), uncached.epoch_meters.size());
    for (std::size_t e = 0; e < cached.epoch_meters.size(); ++e) {
      ASSERT_EQ(cached.epoch_meters[e].size(),
                uncached.epoch_meters[e].size());
      for (std::size_t i = 0; i < cached.epoch_meters[e].size(); ++i) {
        EXPECT_EQ(cached.epoch_meters[e][i], uncached.epoch_meters[e][i])
            << spec.name << " p=" << p << " epoch " << e << " slot " << i;
      }
    }
    // And the training itself must be unaffected by the cache.
    expect_bitwise_equal(cached, uncached, spec.name + " cache on/off");
  }
}

TEST(EpochCacheMeter, RepeatedEpochsChargeIdenticalMeters) {
  // Within one cached run, every epoch must charge exactly the same
  // words/latency (the adjacency traffic is epoch-invariant and the dense
  // traffic sizes never change). Bounded staleness (CAGNET_STALE) makes
  // halo traffic epoch-VARIANT by design — refresh epochs charge kHalo,
  // replay epochs don't — so pin the exact per-epoch schedule here.
  const int ambient_stale = dist::stale_k();
  dist::set_stale_k(0);
  const Graph g = make_graph(128, 8, 10, 3, 73);
  const DistProblem problem = DistProblem::prepare(g);
  GnnConfig config = GnnConfig::three_layer(10, 3, 6);
  for (const auto& [algebra, p] :
       {std::pair<std::string, int>{"2d", 4}, {"3d", 8}, {"1.5d-c2", 4}}) {
    const TrainedState run = train(algebra, problem, config, p, 4);
    for (std::size_t e = 1; e < run.epoch_meters.size(); ++e) {
      for (std::size_t i = 0; i < run.epoch_meters[e].size(); ++i) {
        EXPECT_EQ(run.epoch_meters[0][i], run.epoch_meters[e][i])
            << algebra << " epoch " << e << " slot " << i;
      }
    }
  }
  dist::set_stale_k(ambient_stale);
}

}  // namespace
}  // namespace cagnet
