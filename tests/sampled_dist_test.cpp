// Distributed sampled-training tests: the CAGNET_SAMPLE minibatch path's
// acceptance contract. An uncapped fanout with a whole-graph batch must
// reproduce the full-batch epoch bitwise (per algebra and world size);
// sampled epochs are bitwise-deterministic across thread budgets and
// overlap modes; finite fanouts still reach the exact run's accuracy
// floor; restart (set_start_epoch, train_with_recovery) resumes the
// epoch-keyed sample streams exactly; unsupported algebras fail with a
// typed Error.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "src/comm/comm.hpp"
#include "src/comm/compress.hpp"
#include "src/comm/fault.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/core/recovery.hpp"
#include "src/gnn/sampling.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

/// Restore every process-global training knob on scope exit — including
/// the sampling toggles this suite flips — so tests behave identically
/// whatever ambient CAGNET_* environment the suite was launched under.
class SampleModeGuard {
 public:
  SampleModeGuard()
      : mode_(compress_mode()), overlap_(dist::overlap_enabled()),
        halo_(dist::halo_enabled()), sample_(dist::sample_enabled()),
        fanouts_(dist::sample_fanouts()), batch_(dist::sample_batch_size()),
        stale_(dist::stale_k()), preagg_(dist::preagg_enabled()) {
    // The sampled-vs-full-batch oracles need an exact full-batch side:
    // ambient bounded staleness / pre-aggregation would make the
    // full-batch run lossy while sampled epochs never arm them (they
    // route through per-batch subgraphs, not the halo plan).
    dist::set_stale_k(0);
    dist::set_preagg_enabled(false);
  }
  ~SampleModeGuard() {
    set_compress_mode(mode_);
    dist::set_overlap_enabled(overlap_);
    dist::set_halo_enabled(halo_);
    dist::set_sample_enabled(sample_);
    dist::set_sample_fanouts(fanouts_);
    dist::set_sample_batch_size(batch_);
    dist::set_stale_k(stale_);
    dist::set_preagg_enabled(preagg_);
  }

 private:
  CompressMode mode_;
  bool overlap_;
  bool halo_;
  bool sample_;
  std::vector<Index> fanouts_;
  Index batch_;
  int stale_;
  bool preagg_;
};

class FaultPlanGuard {
 public:
  explicit FaultPlanGuard(FaultPlan plan) {
    set_fault_plan(std::make_shared<FaultPlan>(std::move(plan)));
  }
  ~FaultPlanGuard() { clear_fault_plan(); }
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Planted-partition graph whose labels follow the communities (the same
/// learnable construction the compression suite trains on).
Graph learnable_graph(Index n, Index communities, Index f, Index classes,
                      std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "sampled-test";
  Coo coo = planted_partition(n, communities, 10.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    const Index community = v * communities / n;
    g.labels[static_cast<std::size_t>(v)] = community % classes;
    g.features(v, community % f) += Real{2};
  }
  return g;
}

struct TrainRun {
  std::vector<Real> losses;
  std::vector<Real> accuracies;
  std::vector<Matrix> weights;
  EpochStats stats;  ///< max-reduced, final epoch
};

TrainRun run_trainer(const std::string& algebra, const DistProblem& problem,
                     const GnnConfig& config, int p, int epochs) {
  TrainRun run;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    std::vector<Real> accuracies;
    for (int e = 0; e < epochs; ++e) {
      const EpochResult r = trainer->train_epoch();
      losses.push_back(r.loss);
      accuracies.push_back(r.accuracy);
    }
    const EpochStats reduced = trainer->reduce_epoch_stats();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      run.losses = std::move(losses);
      run.accuracies = std::move(accuracies);
      run.weights = trainer->weights();
      run.stats = reduced;
    }
  });
  return run;
}

/// Whole-graph training accuracy of a fixed weight set: one exact
/// full-batch epoch at learning rate zero (SGD with zero step leaves the
/// weights untouched) reports the deterministic full-graph forward
/// metrics. This is the fair yardstick for sampled runs, whose in-epoch
/// accuracy is measured on noisy sampled neighborhoods.
Real eval_accuracy(const DistProblem& problem, GnnConfig config, int p,
                   const std::vector<Matrix>& weights) {
  config.learning_rate = 0;
  const bool sample = dist::sample_enabled();
  dist::set_sample_enabled(false);
  Real acc = 0;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer("1d", problem, config, world);
    trainer->set_weights(weights);
    const EpochResult r = trainer->train_epoch();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      acc = r.accuracy;
    }
  });
  dist::set_sample_enabled(sample);
  return acc;
}

void expect_bitwise_equal(const TrainRun& a, const TrainRun& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t e = 0; e < a.losses.size(); ++e) {
    EXPECT_EQ(a.losses[e], b.losses[e]) << "epoch " << e;
    EXPECT_EQ(a.accuracies[e], b.accuracies[e]) << "epoch " << e;
  }
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t l = 0; l < a.weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(a.weights[l], b.weights[l]), Real{0})
        << "layer " << l;
  }
}

TEST(SampledTraining, InfiniteFanoutMatchesFullBatchBitwise) {
  // Uncapped fanouts and a batch covering every labeled vertex make the
  // sampled epoch the full-batch epoch masked to (all) receptive-field
  // rows: same ordered sums, so losses and weights agree bitwise at any
  // world size and in both overlap modes.
  SampleModeGuard guard;
  set_compress_mode(CompressMode::kOff);
  dist::set_halo_enabled(true);
  const Graph g = learnable_graph(180, 9, 10, 3, 41);
  const GnnConfig config = GnnConfig::three_layer(10, 3, 8);
  const DistProblem problem = DistProblem::prepare(g);
  const int epochs = 3;

  dist::set_sample_fanouts({kSampleAll, kSampleAll, kSampleAll});
  dist::set_sample_batch_size(g.num_vertices());

  for (const bool overlap : {true, false}) {
    dist::set_overlap_enabled(overlap);
    for (const int p : {1, 2, 4}) {
      SCOPED_TRACE(std::string(overlap ? "overlap" : "sync") + "/p=" +
                   std::to_string(p));
      dist::set_sample_enabled(false);
      const TrainRun full = run_trainer("1d", problem, config, p, epochs);
      dist::set_sample_enabled(true);
      const TrainRun sampled = run_trainer("1d", problem, config, p, epochs);
      expect_bitwise_equal(full, sampled);
    }
  }
}

TEST(SampledTraining, InfiniteFanoutParityHoldsOnGreedyBfsPartition) {
  // Same parity contract on a non-contiguous partition: the sampler's
  // owner arithmetic must follow the partition-aware row starts.
  SampleModeGuard guard;
  set_compress_mode(CompressMode::kOff);
  dist::set_halo_enabled(true);
  dist::set_overlap_enabled(true);
  const Graph g = learnable_graph(180, 9, 10, 3, 43);
  const GnnConfig config = GnnConfig::three_layer(10, 3, 8);
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  dist::set_sample_fanouts({kSampleAll, kSampleAll, kSampleAll});
  dist::set_sample_batch_size(g.num_vertices());
  dist::set_sample_enabled(false);
  const TrainRun full = run_trainer("1d", problem, config, 4, 3);
  dist::set_sample_enabled(true);
  const TrainRun sampled = run_trainer("1d", problem, config, 4, 3);
  expect_bitwise_equal(full, sampled);
}

TEST(SampledTraining, FiniteFanoutDeterministicAcrossThreadBudgets) {
  // The minibatch pipeline (sample, pack, exchange, compute) must be
  // bitwise-reproducible for a fixed seed whatever the kernel thread
  // budget: sampling is serial per rank and every reduction order is
  // fixed by the schedule, not the thread count.
  SampleModeGuard guard;
  const int budget_before = thread_budget();
  set_compress_mode(CompressMode::kOff);
  dist::set_overlap_enabled(true);
  const Graph g = learnable_graph(160, 8, 10, 4, 47);
  const GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  const DistProblem problem = DistProblem::prepare(g);

  dist::set_sample_enabled(true);
  dist::set_sample_fanouts({6, 4, 3});
  dist::set_sample_batch_size(16);

  std::vector<TrainRun> runs;
  for (const int budget : {1, 8}) {
    override_thread_budget(budget);
    runs.push_back(run_trainer("1d", problem, config, 4, 3));
  }
  override_thread_budget(budget_before);
  expect_bitwise_equal(runs[0], runs[1]);
  // The run genuinely exchanged sampled rows (kHalo) and need lists
  // (kControl) — the metering contract of the sampled path.
  EXPECT_GT(runs[0].stats.comm.words(CommCategory::kHalo), 0.0);
  EXPECT_GT(runs[0].stats.comm.words(CommCategory::kControl), 0.0);
}

TEST(SampledTraining, OverlapToggleIsBitwiseNeutral) {
  // CAGNET_OVERLAP=0 turns every posted exchange into its blocking
  // equivalent at the same schedule point; the sampled trainer must not
  // care. Multiple batches per epoch so the cross-batch pipeline (build
  // b+1 behind backward b) is genuinely exercised.
  SampleModeGuard guard;
  set_compress_mode(CompressMode::kOff);
  const Graph g = learnable_graph(180, 9, 10, 3, 53);
  const GnnConfig config = GnnConfig::three_layer(10, 3, 8);
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  dist::set_sample_enabled(true);
  dist::set_sample_fanouts({8, 5, 3});
  dist::set_sample_batch_size(12);

  dist::set_overlap_enabled(true);
  const TrainRun pipelined = run_trainer("1d", problem, config, 4, 4);
  dist::set_overlap_enabled(false);
  const TrainRun blocking = run_trainer("1d", problem, config, 4, 4);
  expect_bitwise_equal(pipelined, blocking);
  EXPECT_EQ(pipelined.stats.comm.words(CommCategory::kHalo),
            blocking.stats.comm.words(CommCategory::kHalo));
}

TEST(SampledTraining, FiniteFanoutReachesExactAccuracyFloor) {
  // The convergence half of the acceptance: capped fanouts inject
  // sampling noise but must still train to the exact run's accuracy
  // floor on the planted-partition task (same discipline as the lossy
  // compression contract).
  SampleModeGuard guard;
  set_compress_mode(CompressMode::kOff);
  dist::set_halo_enabled(true);
  dist::set_overlap_enabled(true);
  const Graph g = learnable_graph(240, 8, 12, 4, 51);
  GnnConfig config = GnnConfig::three_layer(12, 4, 16);
  config.learning_rate = 0.3;
  const int epochs = 60;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  dist::set_sample_enabled(false);
  const TrainRun exact = run_trainer("1d", problem, config, 4, epochs);
  ASSERT_TRUE(std::isfinite(exact.losses.back()));
  const Real exact_acc = eval_accuracy(problem, config, 4, exact.weights);
  ASSERT_GE(exact_acc, 0.8);

  // Sampled in-epoch accuracy is measured on sampled neighborhoods and
  // shifting minibatch weights, so judge the trained model by the same
  // full-graph forward the exact run is judged by.
  dist::set_sample_enabled(true);
  dist::set_sample_fanouts({12, 10, 8});
  dist::set_sample_batch_size(32);
  const TrainRun sampled = run_trainer("1d", problem, config, 4, epochs);
  EXPECT_TRUE(std::isfinite(sampled.losses.back()));
  const Real sampled_acc =
      eval_accuracy(problem, config, 4, sampled.weights);
  EXPECT_GE(sampled_acc, exact_acc - 0.05)
      << "sampled in-epoch accuracy " << sampled.accuracies.back();

  // And under a lossy wire codec the sampled run still trains (the halo
  // rows and gradient reductions share the compressed path).
  set_compress_mode(CompressMode::kInt8);
  const TrainRun lossy = run_trainer("1d", problem, config, 4, epochs);
  set_compress_mode(CompressMode::kOff);
  EXPECT_TRUE(std::isfinite(lossy.losses.back()));
  const Real lossy_acc = eval_accuracy(problem, config, 4, lossy.weights);
  EXPECT_GE(lossy_acc, exact_acc - 0.1)
      << "lossy in-epoch accuracy " << lossy.accuracies.back();
}

TEST(SampledTraining, UnsupportedAlgebraThrowsTypedError) {
  // Sampling rides the row-stripe halo machinery; algebras without a
  // sample communicator must refuse loudly, not train nonsense.
  SampleModeGuard guard;
  const Graph g = learnable_graph(64, 4, 8, 4, 61);
  const GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  const DistProblem problem = DistProblem::prepare(g);
  dist::set_sample_enabled(true);
  dist::set_sample_fanouts({4, 3, 2});
  dist::set_sample_batch_size(16);
  const struct {
    const char* algebra;
    int p;
  } cases[] = {{"1.5d-c2", 4}, {"2d", 4}, {"3d", 8}};
  for (const auto& c : cases) {
    // The refusal fires before any collective, so every rank throws and
    // catches locally — no peer is left parked in an exchange.
    run_world(c.p, [&](Comm& world) {
      auto trainer = make_dist_trainer(c.algebra, problem, config, world);
      EXPECT_THROW(trainer->train_epoch(), Error) << c.algebra;
    });
  }
}

TEST(SampledTraining, InvalidSampleOptionsThrowTypedError) {
  // The engine forwards the process-global knobs into MiniBatchOptions;
  // a fanout list that does not match the model depth (or a nonsensical
  // batch size) must surface as a typed Error on the first epoch.
  SampleModeGuard guard;
  const Graph g = learnable_graph(64, 4, 8, 4, 67);
  const GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  const DistProblem problem = DistProblem::prepare(g);
  dist::set_sample_enabled(true);
  dist::set_sample_batch_size(16);
  dist::set_sample_fanouts({4, 3});  // three-layer model needs three hops
  run_world(1, [&](Comm& world) {
    auto trainer = make_dist_trainer("1d", problem, config, world);
    EXPECT_THROW(trainer->train_epoch(), Error);
  });
  EXPECT_THROW(dist::set_sample_batch_size(0), Error);
}

TEST(SampledTraining, SetStartEpochResumesSampleStreamsBitwise) {
  // The shuffle and per-batch sample streams are keyed by the absolute
  // epoch, so a restart that restores weights and calls set_start_epoch
  // continues exactly where the uninterrupted run would be.
  SampleModeGuard guard;
  set_compress_mode(CompressMode::kOff);
  dist::set_overlap_enabled(true);
  const Graph g = learnable_graph(160, 8, 10, 4, 71);
  const GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  const DistProblem problem = DistProblem::prepare(g);
  dist::set_sample_enabled(true);
  dist::set_sample_fanouts({6, 4, 3});
  dist::set_sample_batch_size(16);

  run_world(4, [&](Comm& world) {
    auto oracle = make_dist_trainer("1d", problem, config, world);
    std::vector<Real> oracle_losses;
    for (int e = 0; e < 6; ++e) {
      oracle_losses.push_back(oracle->train_epoch().loss);
    }

    auto first = make_dist_trainer("1d", problem, config, world);
    for (int e = 0; e < 3; ++e) first->train_epoch();

    // Weights are replicated, so every rank restores its own copy —
    // exactly what train_with_recovery does from a checkpoint.
    auto resumed = make_dist_trainer("1d", problem, config, world);
    resumed->set_weights(first->weights());
    resumed->set_start_epoch(3);
    for (int e = 3; e < 6; ++e) {
      const Real loss = resumed->train_epoch().loss;
      EXPECT_EQ(loss, oracle_losses[static_cast<std::size_t>(e)])
          << "epoch " << e;
    }
    const auto& got = resumed->weights();
    const auto& want = oracle->weights();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t l = 0; l < got.size(); ++l) {
      EXPECT_LE(Matrix::max_abs_diff(got[l], want[l]), Real{0})
          << "layer " << l;
    }
  });
}

TEST(SampledRecoveryDrill, FaultedSampledRunRecoversBitwise) {
  // A rank dies mid-minibatch (the transport seam fires inside the
  // sampled schedule); train_with_recovery must unwind every survivor,
  // restart from the checkpoint, and — because the sample streams are
  // epoch-keyed — finish bitwise-identical to the unfaulted run.
  SampleModeGuard guard;
  set_compress_mode(CompressMode::kOff);
  dist::set_overlap_enabled(true);
  const Graph g = learnable_graph(128, 8, 8, 4, 77);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const int epochs = 5;
  dist::set_sample_enabled(true);
  dist::set_sample_fanouts({6, 4, 3});
  dist::set_sample_batch_size(12);

  const TrainRun oracle = run_trainer("1d", problem, config, 4, epochs);

  const std::string path = temp_path("cagnet_sampled_drill.ckpt");
  RecoveryOptions options;
  options.ckpt_path = path;
  options.ckpt_every = 2;
  RecoveryReport report;
  {
    FaultPlanGuard fault(FaultPlan().kill_any(1, FaultSite::kPost, 70));
    report = train_with_recovery("1d", problem, config, 4, epochs, options);
  }
  EXPECT_GE(report.restarts, 1);
  ASSERT_TRUE(report.last_abort.has_value());
  EXPECT_EQ(report.last_abort->rank(), 1);

  EXPECT_EQ(report.losses, oracle.losses);
  ASSERT_EQ(report.weights.size(), oracle.weights.size());
  for (std::size_t l = 0; l < oracle.weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(report.weights[l], oracle.weights[l]),
              Real{0})
        << "layer " << l;
  }
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cagnet
