// Tests for the paper-called-out extensions: semiring SpMM (Section I),
// neighbor sampling + mini-batch training (Section VII future work),
// Matrix Market I/O, and model checkpointing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "src/dense/ops.hpp"
#include "src/gnn/checkpoint.hpp"
#include "src/gnn/sampling.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/graph/mmio.hpp"
#include "src/sparse/generate.hpp"
#include "src/sparse/semiring.hpp"

namespace cagnet {
namespace {

// ---------- semirings ----------

TEST(Semiring, PlusTimesMatchesStandardSpmm) {
  Rng rng(1);
  Coo coo(10, 10);
  for (int e = 0; e < 40; ++e) {
    coo.add(static_cast<Index>(rng.next_below(10)),
            static_cast<Index>(rng.next_below(10)), rng.next_double(-1, 1));
  }
  const Csr a = Csr::from_coo(coo);
  Matrix x(10, 4);
  x.fill_uniform(rng, -1, 1);
  const Matrix standard = a.multiply(x);
  Matrix semi(10, 4);
  spmm_semiring<PlusTimes>(a, x, semi);
  EXPECT_LE(Matrix::max_abs_diff(standard, semi), 1e-14);
}

TEST(Semiring, MinPlusPerformsBellmanFordRelaxation) {
  // Path 0 -> 1 -> 2 with weights 2 and 3; distances from vertex 0.
  Coo coo(3, 3);
  coo.add(1, 0, 2.0);  // row i holds in-edges of i: dist(1) <- dist(0) + 2
  coo.add(2, 1, 3.0);
  // Self loops with weight 0 keep already-settled distances.
  coo.add(0, 0, 0.0);
  coo.add(1, 1, 0.0);
  coo.add(2, 2, 0.0);
  const Csr a = Csr::from_coo(coo);

  Matrix dist(3, 1);
  dist(0, 0) = 0;
  dist(1, 0) = std::numeric_limits<Real>::infinity();
  dist(2, 0) = std::numeric_limits<Real>::infinity();
  Matrix next(3, 1);
  spmm_semiring<MinPlus>(a, dist, next);  // one relaxation
  EXPECT_EQ(next(1, 0), 2.0);
  EXPECT_TRUE(std::isinf(next(2, 0)));
  spmm_semiring<MinPlus>(a, next, dist);  // second relaxation
  EXPECT_EQ(dist(2, 0), 5.0);
}

TEST(Semiring, OrAndExpandsBfsFrontier) {
  // Star: 0 -> {1,2,3}; one OrAnd step reaches all leaves.
  Coo coo(4, 4);
  for (Index leaf = 1; leaf < 4; ++leaf) coo.add(leaf, 0, 1.0);
  for (Index v = 0; v < 4; ++v) coo.add(v, v, 1.0);
  const Csr a = Csr::from_coo(coo);
  Matrix frontier(4, 1);
  frontier(0, 0) = 1;
  Matrix reached(4, 1);
  spmm_semiring<OrAnd>(a, frontier, reached);
  for (Index v = 0; v < 4; ++v) EXPECT_EQ(reached(v, 0), 1.0);
}

TEST(Semiring, MaxTimesIsMaxPoolingAggregator) {
  Coo coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(0, 2, 1.0);
  coo.add(1, 2, 2.0);
  const Csr a = Csr::from_coo(coo);
  Matrix x(3, 2);
  x(0, 0) = 5;
  x(1, 0) = -1;
  x(2, 0) = 3;
  x(0, 1) = 0.5;
  x(1, 1) = 4;
  x(2, 1) = 1;
  Matrix y(2, 2);
  spmm_semiring<MaxTimes>(a, x, y);
  EXPECT_EQ(y(0, 0), 5.0);   // max over all three
  EXPECT_EQ(y(0, 1), 4.0);
  EXPECT_EQ(y(1, 0), 6.0);   // 2 * 3
  EXPECT_EQ(y(1, 1), 2.0);   // 2 * 1
}

TEST(Semiring, EmptyRowsYieldIdentity) {
  const Csr a(2, 2);  // all empty
  Matrix x(2, 1);
  x.fill(7.0);
  Matrix y(2, 1);
  spmm_semiring<MinPlus>(a, x, y);
  EXPECT_TRUE(std::isinf(y(0, 0)));
  spmm_semiring<PlusTimes>(a, x, y);
  EXPECT_EQ(y(0, 0), 0.0);
}

// ---------- Matrix Market I/O ----------

TEST(Mmio, RoundTripPreservesMatrix) {
  Rng rng(2);
  Coo coo = erdos_renyi(30, 4, rng);
  const Csr original = Csr::from_coo(coo);
  std::stringstream buffer;
  write_matrix_market(buffer, original);
  const Csr reloaded = Csr::from_coo(read_matrix_market(buffer));
  EXPECT_TRUE(original == reloaded);
}

TEST(Mmio, ParsesSymmetricPattern) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a triangle\n"
      "3 3 3\n"
      "2 1\n"
      "3 1\n"
      "3 2\n");
  const Csr a = Csr::from_coo(read_matrix_market(in));
  EXPECT_EQ(a.nnz(), 6);  // both triangles
  const Matrix d = a.to_dense();
  EXPECT_EQ(d(0, 1), 1.0);
  EXPECT_EQ(d(1, 0), 1.0);
  EXPECT_EQ(d(2, 0), 1.0);
}

TEST(Mmio, ParsesIntegerGeneralWithComments) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% comment one\n"
      "% comment two\n"
      "2 3 2\n"
      "1 3 7\n"
      "2 1 -2\n");
  const Csr a = Csr::from_coo(read_matrix_market(in));
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.to_dense()(0, 2), 7.0);
  EXPECT_EQ(a.to_dense()(1, 0), -2.0);
}

TEST(Mmio, SkewSymmetricNegatesMirror) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.5\n");
  const Matrix d = Csr::from_coo(read_matrix_market(in)).to_dense();
  EXPECT_EQ(d(1, 0), 3.5);
  EXPECT_EQ(d(0, 1), -3.5);
}

TEST(Mmio, RejectsMalformedInput) {
  std::stringstream bad_banner("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(bad_banner), Error);
  std::stringstream bad_format(
      "%%MatrixMarket matrix array real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(bad_format), Error);
  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(out_of_range), Error);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), Error);
}

TEST(Mmio, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_mmio_test.mtx")
          .string();
  Rng rng(3);
  const Csr original = Csr::from_coo(erdos_renyi(20, 3, rng));
  write_matrix_market_file(path, original);
  const Csr reloaded = Csr::from_coo(read_matrix_market_file(path));
  EXPECT_TRUE(original == reloaded);
  std::remove(path.c_str());
  EXPECT_THROW(read_matrix_market_file(path), Error);
}

// ---------- sampling + mini-batch ----------

Graph community_graph(Index n, Index communities, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "communities";
  Coo coo = planted_partition(n, communities, 10, 1, rng, 0.0);
  g.adjacency = gcn_normalize(std::move(coo), true);
  g.features = Matrix(n, 8);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = communities;
  g.labels.resize(static_cast<std::size_t>(n));
  const Index comm_size = (n + communities - 1) / communities;
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v / comm_size;
  }
  return g;
}

TEST(Sampling, SeedsComeFirstAndAreUnique) {
  const Graph g = community_graph(200, 4, 4);
  const Csr at = g.adjacency.transposed();
  Rng rng(5);
  const std::vector<Index> seeds = {7, 42, 130};
  const std::vector<Index> fanouts = {5, 5};
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  ASSERT_GE(sub.vertices.size(), seeds.size());
  EXPECT_EQ(sub.num_seeds, 3);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(sub.vertices[i], seeds[i]);
  }
  std::set<Index> unique(sub.vertices.begin(), sub.vertices.end());
  EXPECT_EQ(unique.size(), sub.vertices.size());
}

TEST(Sampling, FanoutBoundsNeighborhoodExplosion) {
  const Graph g = community_graph(500, 5, 6);
  const Csr at = g.adjacency.transposed();
  Rng rng(7);
  const std::vector<Index> seeds = {0, 1};
  const std::vector<Index> fanouts = {3, 3};
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  // At most seeds * (1 + f1 + f1*f2) vertices.
  EXPECT_LE(static_cast<Index>(sub.vertices.size()), 2 * (1 + 3 + 9));
}

TEST(Sampling, SubgraphKeepsTraversedEdgesWithHorvitzThompsonScale) {
  // The sampled operator is the traversed edges only: each sampled column
  // carries exactly min(deg, fanout) entries, take-all columns verbatim
  // and capped columns rescaled by deg/fanout (the same unbiasedness
  // correction the distributed SampledRunner applies), so the sampled row
  // aggregate stays an unbiased estimate of the full one.
  const Graph g = community_graph(120, 3, 8);
  const Csr at = g.adjacency.transposed();
  Rng rng(9);
  const std::vector<Index> seeds = {11, 57};
  const Index fanout = 4;
  const std::vector<Index> fanouts = {fanout};
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  const Matrix global = g.adjacency.to_dense();
  const Matrix local = sub.adjacency.to_dense();
  const auto rp = at.row_ptr();
  for (std::size_t j = 0; j < sub.vertices.size(); ++j) {
    const Index vj = sub.vertices[j];
    const Index deg = rp[vj + 1] - rp[vj];
    // One hop from two seeds: only the seed columns are ever sampled.
    const bool sampled_column = j < seeds.size();
    const Real scale = deg <= fanout
                           ? Real{1}
                           : static_cast<Real>(deg) / static_cast<Real>(fanout);
    Index nonzeros = 0;
    for (std::size_t i = 0; i < sub.vertices.size(); ++i) {
      const Real value = local(static_cast<Index>(i), static_cast<Index>(j));
      if (value == Real{0}) continue;
      ++nonzeros;
      ASSERT_TRUE(sampled_column) << "edge into unsampled column " << j;
      EXPECT_NEAR(value, global(sub.vertices[i], vj) * scale, 1e-14);
    }
    if (sampled_column) EXPECT_EQ(nonzeros, std::min(deg, fanout));
  }
}

TEST(Sampling, OnlySeedsKeepLabels) {
  const Graph g = community_graph(150, 3, 10);
  const Csr at = g.adjacency.transposed();
  Rng rng(11);
  const std::vector<Index> seeds = {20};
  const std::vector<Index> fanouts = {6, 6};
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  EXPECT_EQ(sub.labels[0], g.labels[20]);
  for (std::size_t i = 1; i < sub.labels.size(); ++i) {
    EXPECT_EQ(sub.labels[i], -1);
  }
}

TEST(Sampling, FullFanoutCoversExactNeighborhood) {
  const Graph g = community_graph(100, 2, 12);
  const Csr at = g.adjacency.transposed();
  Rng rng(13);
  const std::vector<Index> seeds = {5};
  const std::vector<Index> fanouts = {1000};  // > max degree: take all
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  // Must contain exactly seed + its in-neighborhood.
  std::set<Index> expected = {5};
  const auto rp = at.row_ptr();
  const auto ci = at.col_idx();
  for (Index p = rp[5]; p < rp[6]; ++p) expected.insert(ci[p]);
  const std::set<Index> got(sub.vertices.begin(), sub.vertices.end());
  EXPECT_EQ(got, expected);
}

TEST(MiniBatch, LearnsCommunitiesAboveChance) {
  const Graph g = community_graph(300, 3, 14);
  GnnConfig config;
  config.dims = {8, 16, 3};
  config.learning_rate = 0.01;
  config.optimizer.kind = OptimizerKind::kAdam;
  MiniBatchOptions options;
  options.batch_size = 32;
  options.fanouts = {8, 8};
  MiniBatchTrainer trainer(g, config, options);
  EXPECT_EQ(trainer.batches_per_epoch(), (300 + 31) / 32);

  EpochResult r{};
  for (int e = 0; e < 15; ++e) r = trainer.train_epoch();
  // Chance is 1/3; community structure is learnable well above that.
  EXPECT_GT(r.accuracy, 0.6);
  // Full-graph inference agrees on being meaningfully predictive.
  const Matrix probs = trainer.predict();
  EXPECT_GT(accuracy(probs, g.labels), 0.6);
}

TEST(MiniBatch, LossDecreases) {
  const Graph g = community_graph(200, 4, 15);
  GnnConfig config;
  config.dims = {8, 12, 4};
  config.learning_rate = 0.02;
  config.optimizer.kind = OptimizerKind::kAdam;
  MiniBatchOptions options;
  options.batch_size = 25;
  options.fanouts = {6, 6};
  MiniBatchTrainer trainer(g, config, options);
  const Real first = trainer.train_epoch().loss;
  Real last = first;
  for (int e = 0; e < 10; ++e) last = trainer.train_epoch().loss;
  EXPECT_LT(last, first);
}

TEST(MiniBatch, FullFanoutSingleBatchMatchesFullBatchLoss) {
  // With one batch covering every (labeled) vertex, unbounded fanouts, and
  // enough hops to reach the whole connected graph, the sampled subgraph
  // is the whole graph (reordered), so the first batch's loss equals the
  // full-batch trainer's first-epoch loss.
  const Graph g = community_graph(120, 2, 18);
  GnnConfig config;
  config.dims = {8, 6, 2};

  MiniBatchOptions options;
  options.batch_size = 120;           // one batch
  options.fanouts = {100000, 100000}; // take every neighbor
  MiniBatchTrainer sampled(g, config, options);
  const Real minibatch_loss = sampled.train_epoch().loss;

  SerialTrainer full(g, config);
  const Real full_loss = full.train_epoch().loss;
  // The subgraph permutes vertices (seeds first), so losses agree up to
  // accumulation-order error only if the sampled vertex set is complete.
  EXPECT_NEAR(minibatch_loss, full_loss, 1e-8);
}

TEST(MiniBatch, RequiresLabeledVertices) {
  Graph g = community_graph(50, 2, 16);
  for (auto& label : g.labels) label = -1;
  GnnConfig config;
  config.dims = {8, 2};
  EXPECT_THROW(MiniBatchTrainer(g, config, MiniBatchOptions{}), Error);
}

// ---------- checkpointing ----------

TEST(Checkpoint, RoundTripPreservesWeights) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_ckpt_test.bin")
          .string();
  GnnConfig config = GnnConfig::three_layer(12, 5);
  const auto weights = make_weights(config);
  save_weights(path, weights);
  const auto reloaded = load_weights(path);
  ASSERT_EQ(reloaded.size(), weights.size());
  for (std::size_t l = 0; l < weights.size(); ++l) {
    EXPECT_TRUE(Matrix::allclose(weights[l], reloaded[l], 0.0));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_ckpt_bad.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(load_weights(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_weights(path), Error);
}

TEST(Checkpoint, TrainedModelResumesExactly) {
  const Graph g = community_graph(80, 2, 17);
  GnnConfig config;
  config.dims = {8, 10, 2};
  SerialTrainer a(g, config);
  for (int e = 0; e < 5; ++e) a.train_epoch();

  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_ckpt_resume.bin")
          .string();
  save_weights(path, a.weights());

  SerialTrainer b(g, config);
  b.weights() = load_weights(path);
  // Same weights -> identical forward output.
  EXPECT_TRUE(Matrix::allclose(a.forward(), b.forward(), 0.0));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cagnet
