// Unit tests for src/sparse: COO operations, CSR construction/transpose/
// blocking, SpMM against dense reference, generators, and sparsity stats.
#include <gtest/gtest.h>

#include <vector>

#include "src/dense/gemm.hpp"
#include "src/sparse/coo.hpp"
#include "src/sparse/csr.hpp"
#include "src/sparse/generate.hpp"
#include "src/sparse/spmm_kernel.hpp"
#include "src/sparse/stats.hpp"
#include "src/util/rng.hpp"

namespace cagnet {
namespace {

Coo random_coo(Index rows, Index cols, Index nnz, Rng& rng) {
  Coo coo(rows, cols);
  for (Index i = 0; i < nnz; ++i) {
    coo.add(static_cast<Index>(rng.next_below(rows)),
            static_cast<Index>(rng.next_below(cols)),
            rng.next_double(-1, 1));
  }
  coo.sort_and_combine();
  return coo;
}

TEST(Coo, SortAndCombineSumsDuplicates) {
  Coo coo(3, 3);
  coo.add(1, 2, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(1, 2, 3.0);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[0].val, 2.0);
  EXPECT_EQ(coo.entries()[1].row, 1);
  EXPECT_EQ(coo.entries()[1].col, 2);
  EXPECT_EQ(coo.entries()[1].val, 4.0);
}

TEST(Coo, OutOfRangeEntryThrows) {
  Coo coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), Error);
  EXPECT_THROW(coo.add(0, -1, 1.0), Error);
}

TEST(Coo, SymmetrizeMirrorsOffDiagonals) {
  Coo coo(3, 3);
  coo.add(0, 1, 1.0);
  coo.add(2, 2, 5.0);
  coo.symmetrize();
  const Csr csr = Csr::from_coo(coo);
  const Matrix d = csr.to_dense();
  EXPECT_EQ(d(0, 1), 1.0);
  EXPECT_EQ(d(1, 0), 1.0);
  EXPECT_EQ(d(2, 2), 5.0);  // diagonal not doubled
  EXPECT_EQ(csr.nnz(), 3);
}

TEST(Coo, AddSelfLoopsSetsFullDiagonal) {
  Coo coo(4, 4);
  coo.add(0, 1, 1.0);
  coo.add(2, 2, 1.0);  // existing diagonal gets +1
  coo.add_self_loops();
  const Matrix d = Csr::from_coo(coo).to_dense();
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(1, 1), 1.0);
  EXPECT_EQ(d(2, 2), 2.0);
  EXPECT_EQ(d(3, 3), 1.0);
}

TEST(Coo, PermuteRelabelsBothEndpoints) {
  Coo coo(3, 3);
  coo.add(0, 1, 7.0);
  const std::vector<Index> perm = {2, 0, 1};
  coo.permute(perm);
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_EQ(coo.entries()[0].row, 2);
  EXPECT_EQ(coo.entries()[0].col, 0);
}

TEST(Csr, FromCooMatchesDense) {
  Rng rng(1);
  const Coo coo = random_coo(8, 6, 20, rng);
  const Csr csr = Csr::from_coo(coo);
  const Matrix dense = csr.to_dense();
  // Every COO entry appears in the dense version.
  Matrix expected(8, 6);
  for (const Triple& t : coo.entries()) expected(t.row, t.col) += t.val;
  EXPECT_LE(Matrix::max_abs_diff(dense, expected), 1e-15);
  EXPECT_EQ(csr.nnz(), coo.nnz());
}

TEST(Csr, ColumnIndicesSortedWithinRows) {
  Rng rng(2);
  const Csr csr = Csr::from_coo(random_coo(30, 30, 200, rng));
  const auto rp = csr.row_ptr();
  const auto ci = csr.col_idx();
  for (Index r = 0; r < csr.rows(); ++r) {
    for (Index p = rp[r] + 1; p < rp[r + 1]; ++p) {
      EXPECT_LT(ci[p - 1], ci[p]);
    }
  }
}

TEST(Csr, SpmmMatchesDenseReference) {
  Rng rng(3);
  const Csr a = Csr::from_coo(random_coo(12, 9, 40, rng));
  Matrix x(9, 5);
  x.fill_uniform(rng, -1, 1);
  const Matrix via_spmm = a.multiply(x);
  const Matrix via_dense = matmul(a.to_dense(), x);
  EXPECT_LE(Matrix::max_abs_diff(via_spmm, via_dense), 1e-12);
}

TEST(Csr, SpmmAccumulateAddsIntoOutput) {
  Rng rng(4);
  const Csr a = Csr::from_coo(random_coo(5, 5, 10, rng));
  Matrix x(5, 3);
  x.fill_uniform(rng, -1, 1);
  Matrix y(5, 3);
  y.fill(1.0);
  Matrix y2 = y;
  a.spmm(x, y, /*accumulate=*/true);
  const Matrix prod = a.multiply(x);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_NEAR(y(i, j), y2(i, j) + prod(i, j), 1e-13);
    }
  }
}

TEST(Csr, SpmmShapeMismatchThrows) {
  const Csr a(4, 4);
  Matrix x(5, 2);
  Matrix y(4, 2);
  EXPECT_THROW(a.spmm(x, y), Error);
}

TEST(Csr, TransposeMatchesDenseTranspose) {
  Rng rng(5);
  const Csr a = Csr::from_coo(random_coo(11, 7, 35, rng));
  const Csr at = a.transposed();
  EXPECT_EQ(at.rows(), 7);
  EXPECT_EQ(at.cols(), 11);
  EXPECT_LE(Matrix::max_abs_diff(at.to_dense(), a.to_dense().transposed()),
            1e-15);
}

TEST(Csr, TransposeIsInvolution) {
  Rng rng(6);
  const Csr a = Csr::from_coo(random_coo(9, 13, 50, rng));
  EXPECT_TRUE(a.transposed().transposed() == a);
}

TEST(Csr, BlockExtractsSubmatrix) {
  Rng rng(7);
  const Csr a = Csr::from_coo(random_coo(10, 10, 60, rng));
  const Csr blk = a.block(2, 7, 3, 9);
  EXPECT_EQ(blk.rows(), 5);
  EXPECT_EQ(blk.cols(), 6);
  const Matrix expected = a.to_dense().block(2, 3, 5, 6);
  EXPECT_LE(Matrix::max_abs_diff(blk.to_dense(), expected), 1e-15);
}

TEST(Csr, BlocksPartitionNnz) {
  Rng rng(8);
  const Csr a = Csr::from_coo(random_coo(20, 20, 150, rng));
  // Any grid blocking must conserve total nnz.
  for (int grid : {2, 3, 4}) {
    Index total = 0;
    for (int bi = 0; bi < grid; ++bi) {
      const auto [r0, r1] = std::pair<Index, Index>{20 * bi / grid,
                                                    20 * (bi + 1) / grid};
      for (int bj = 0; bj < grid; ++bj) {
        const auto [c0, c1] = std::pair<Index, Index>{20 * bj / grid,
                                                      20 * (bj + 1) / grid};
        total += a.block(r0, r1, c0, c1).nnz();
      }
    }
    EXPECT_EQ(total, a.nnz());
  }
}

TEST(Csr, EmptyBlockIsValid) {
  const Csr a(5, 5);
  const Csr blk = a.block(1, 3, 2, 5);
  EXPECT_EQ(blk.nnz(), 0);
  EXPECT_EQ(blk.rows(), 2);
  Matrix x(3, 2);
  Matrix y = blk.multiply(x);
  EXPECT_EQ(y.rows(), 2);
}

TEST(Csr, ScaleRowsColsAppliesBothFactors) {
  Coo coo(2, 2);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 3.0);
  Csr a = Csr::from_coo(coo);
  const std::vector<Real> rs = {2.0, 0.5};
  const std::vector<Real> cs = {10.0, 100.0};
  a.scale_rows_cols(rs, cs);
  const Matrix d = a.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 2.0 * 2.0 * 100.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 3.0 * 0.5 * 10.0);
}

TEST(Csr, RowSumsMatchDense) {
  Rng rng(9);
  const Csr a = Csr::from_coo(random_coo(6, 6, 18, rng));
  const auto sums = a.row_sums();
  const Matrix d = a.to_dense();
  for (Index i = 0; i < 6; ++i) {
    Real expected = 0;
    for (Index j = 0; j < 6; ++j) expected += d(i, j);
    EXPECT_NEAR(sums[i], expected, 1e-13);
  }
}

TEST(Csr, NonemptyRowsCounted) {
  Coo coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(2, 3, 1.0);
  coo.add(2, 1, 1.0);
  const Csr a = Csr::from_coo(coo);
  EXPECT_EQ(a.nonempty_rows(), 2);
}

TEST(Generate, ErdosRenyiHitsTargetDegree) {
  Rng rng(10);
  const Index n = 2000;
  const double d = 8.0;
  const Coo coo = erdos_renyi(n, d, rng);
  // Duplicates merge, so realized density is slightly below the target.
  EXPECT_GT(coo.nnz(), static_cast<Index>(0.95 * d * n));
  EXPECT_LE(coo.nnz(), static_cast<Index>(d * n));
}

TEST(Generate, ErdosRenyiDeterministicPerSeed) {
  Rng a(11);
  Rng b(11);
  const Coo ca = erdos_renyi(500, 4, a);
  const Coo cb = erdos_renyi(500, 4, b);
  ASSERT_EQ(ca.nnz(), cb.nnz());
  for (Index i = 0; i < ca.nnz(); ++i) {
    EXPECT_EQ(ca.entries()[i].row, cb.entries()[i].row);
    EXPECT_EQ(ca.entries()[i].col, cb.entries()[i].col);
  }
}

TEST(Generate, RmatProducesRequestedShape) {
  Rng rng(12);
  const Coo coo = rmat(1000, 8000, rng);
  EXPECT_EQ(coo.rows(), 1000);
  EXPECT_EQ(coo.cols(), 1000);
  // Merged duplicates shrink the count, but most edges survive.
  EXPECT_GT(coo.nnz(), 6000);
  EXPECT_LE(coo.nnz(), 8000);
}

TEST(Generate, RmatHandlesNonPowerOfTwoVertexCount) {
  Rng rng(13);
  const Coo coo = rmat(777, 3000, rng);
  EXPECT_EQ(coo.rows(), 777);
  for (const Triple& t : coo.entries()) {
    EXPECT_LT(t.row, 777);
    EXPECT_LT(t.col, 777);
  }
}

TEST(Generate, RmatIsSkewedComparedToErdosRenyi) {
  Rng rng(14);
  const Index n = 4000;
  const Index edges = 16 * n;
  RmatParams params;
  params.scramble_ids = false;  // keep the raw skew measurable
  const Csr r = Csr::from_coo(rmat(n, edges, rng, params));
  const Csr e = Csr::from_coo(erdos_renyi(n, 16, rng));
  // Max degree of the scale-free graph should dwarf the ER one.
  EXPECT_GT(degree_stats(r).max_degree, 2 * degree_stats(e).max_degree);
}

TEST(Csr, FullRangeBlockEqualsOriginal) {
  Rng rng(24);
  const Csr a = Csr::from_coo(random_coo(15, 11, 60, rng));
  EXPECT_TRUE(a.block(0, 15, 0, 11) == a);
}

TEST(Csr, TransposeOfEmptyRectangular) {
  const Csr a(3, 7);
  const Csr at = a.transposed();
  EXPECT_EQ(at.rows(), 7);
  EXPECT_EQ(at.cols(), 3);
  EXPECT_EQ(at.nnz(), 0);
}

TEST(Csr, SpmmOnWideOutputs) {
  // Feature widths beyond cache-friendly sizes still compute correctly.
  Rng rng(25);
  const Csr a = Csr::from_coo(random_coo(20, 20, 80, rng));
  Matrix x(20, 301);
  x.fill_uniform(rng, -1, 1);
  const Matrix via_spmm = a.multiply(x);
  const Matrix via_dense = matmul(a.to_dense(), x);
  EXPECT_LE(Matrix::max_abs_diff(via_spmm, via_dense), 1e-11);
}

TEST(Generate, RmatDeterministicPerSeed) {
  Rng a(26);
  Rng b(26);
  const Coo ca = rmat(512, 2048, a);
  const Coo cb = rmat(512, 2048, b);
  ASSERT_EQ(ca.nnz(), cb.nnz());
  for (Index i = 0; i < ca.nnz(); ++i) {
    EXPECT_EQ(ca.entries()[i].row, cb.entries()[i].row);
    EXPECT_EQ(ca.entries()[i].col, cb.entries()[i].col);
  }
}

TEST(Generate, RmatRejectsBadProbabilities) {
  Rng rng(27);
  RmatParams bad;
  bad.a = 0.6;
  bad.b = 0.3;
  bad.c = 0.2;  // sums past 1
  EXPECT_THROW(rmat(16, 32, rng, bad), Error);
}

TEST(Csr, FromPartsRoundTrip) {
  Rng rng(20);
  const Csr a = Csr::from_coo(random_coo(7, 9, 25, rng));
  const Csr b = Csr::from_parts(
      a.rows(), a.cols(),
      std::vector<Index>(a.row_ptr().begin(), a.row_ptr().end()),
      std::vector<Index>(a.col_idx().begin(), a.col_idx().end()),
      std::vector<Real>(a.values().begin(), a.values().end()));
  EXPECT_TRUE(a == b);
}

TEST(Csr, FromPartsValidatesShape) {
  EXPECT_THROW(Csr::from_parts(2, 2, {0, 1}, {0}, {1.0}), Error);  // row_ptr
  EXPECT_THROW(Csr::from_parts(1, 2, {0, 2}, {0}, {1.0}), Error);  // bounds
  EXPECT_THROW(Csr::from_parts(1, 2, {0, 1}, {0, 1}, {1.0}), Error);  // nnz
}

TEST(Csr, VstackConcatenatesRowBlocks) {
  Rng rng(21);
  const Csr full = Csr::from_coo(random_coo(12, 5, 30, rng));
  const std::vector<Csr> pieces = {full.block(0, 4, 0, 5),
                                   full.block(4, 9, 0, 5),
                                   full.block(9, 12, 0, 5)};
  const Csr stacked = Csr::vstack(pieces);
  EXPECT_TRUE(stacked == full);
}

TEST(Csr, VstackHandlesEmptyPieces) {
  const Csr empty(0, 4);
  Coo coo(2, 4);
  coo.add(1, 3, 2.0);
  const Csr block = Csr::from_coo(coo);
  const Csr stacked = Csr::vstack({empty, block, empty});
  EXPECT_EQ(stacked.rows(), 2);
  EXPECT_EQ(stacked.nnz(), 1);
  EXPECT_THROW(Csr::vstack({}), Error);
}

TEST(Generate, PlantedPartitionHasCommunityStructure) {
  Rng rng(22);
  const Index n = 4000;
  const Index k = 40;
  const Coo coo = planted_partition(n, k, 12, 1, rng, /*hub_fraction=*/0.0);
  const Csr a = Csr::from_coo(coo);
  // Count intra-community vs inter-community edges.
  const Index comm_size = (n + k - 1) / k;
  Index intra = 0;
  Index inter = 0;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (Index u = 0; u < n; ++u) {
    for (Index p = rp[u]; p < rp[u + 1]; ++p) {
      if (u / comm_size == ci[p] / comm_size) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, 5 * inter);
}

TEST(Generate, PlantedPartitionHubsRaiseMaxDegree) {
  Rng rng(23);
  const Coo no_hubs = planted_partition(2000, 20, 8, 1, rng, 0.0);
  Rng rng2(23);
  const Coo hubs = planted_partition(2000, 20, 8, 1, rng2, 0.005, 500);
  EXPECT_GT(degree_stats(Csr::from_coo(hubs)).max_degree,
            2 * degree_stats(Csr::from_coo(no_hubs)).max_degree);
}

TEST(Stats, DegreeStatsBasics) {
  Coo coo(4, 4);
  coo.add(0, 1, 1.0);
  coo.add(0, 2, 1.0);
  coo.add(0, 3, 1.0);
  coo.add(2, 0, 1.0);
  const DegreeStats s = degree_stats(Csr::from_coo(coo));
  EXPECT_EQ(s.rows, 4);
  EXPECT_EQ(s.nnz, 4);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.0);
  EXPECT_EQ(s.max_degree, 3);
  EXPECT_EQ(s.empty_rows, 2);
}

// The paper's hypersparsity observation: 2D-partitioning a matrix on a
// g x g grid divides the average block degree by ~g (a factor sqrt(P)).
TEST(Stats, HypersparsityDegreeDropsByGridDim) {
  Rng rng(15);
  const Index n = 4096;
  const Csr a = Csr::from_coo(erdos_renyi(n, 32, rng));
  const auto global = degree_stats(a).avg_degree;
  for (Index g : {2, 4, 8}) {
    const auto rep = hypersparsity_report(a, g);
    EXPECT_NEAR(rep.block_avg_degree, global / static_cast<double>(g),
                0.15 * global / static_cast<double>(g));
  }
}

TEST(Stats, HypersparsityEmptyRowFractionGrowsWithGrid) {
  Rng rng(16);
  const Csr a = Csr::from_coo(erdos_renyi(2048, 4, rng));
  const auto rep2 = hypersparsity_report(a, 2);
  const auto rep16 = hypersparsity_report(a, 16);
  EXPECT_GT(rep16.avg_empty_row_fraction, rep2.avg_empty_row_fraction);
}

TEST(SpmmKernel, ThreadedMatchesSerialBitwise) {
  // The row-block parallelization partitions rows across workers, so every
  // thread count must produce bitwise-identical output (each row's flops
  // are computed in the same order by exactly one thread).
  Rng rng(17);
  const Csr a = Csr::from_coo(erdos_renyi(512, 9, rng));
  const Index f = 7;
  Matrix x(a.cols(), f);
  x.fill_uniform(rng, -1, 1);

  Matrix serial(a.rows(), f);
  spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                        a.values().data(), x.data(), f, serial.data(),
                        /*accumulate=*/false, /*num_threads=*/1);
  for (int threads : {2, 3, 8, 64}) {
    Matrix parallel(a.rows(), f);
    spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                          a.values().data(), x.data(), f, parallel.data(),
                          /*accumulate=*/false, threads);
    EXPECT_EQ(Matrix::max_abs_diff(serial, parallel), 0.0)
        << threads << " threads";
  }
}

TEST(SpmmKernel, ThreadedAccumulateMatchesSerial) {
  Rng rng(18);
  const Csr a = Csr::from_coo(erdos_renyi(300, 6, rng));
  const Index f = 5;
  Matrix x(a.cols(), f);
  x.fill_uniform(rng, -1, 1);
  Matrix serial(a.rows(), f);
  serial.fill(0.5);
  Matrix parallel(a.rows(), f);
  parallel.fill(0.5);
  spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                        a.values().data(), x.data(), f, serial.data(),
                        /*accumulate=*/true, /*num_threads=*/1);
  spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                        a.values().data(), x.data(), f, parallel.data(),
                        /*accumulate=*/true, /*num_threads=*/4);
  EXPECT_EQ(Matrix::max_abs_diff(serial, parallel), 0.0);
}

TEST(SpmmKernel, MoreThreadsThanRowsIsSafe) {
  Rng rng(19);
  const Csr a = Csr::from_coo(erdos_renyi(3, 2, rng));
  const Index f = 4;
  Matrix x(a.cols(), f);
  x.fill_uniform(rng, -1, 1);
  Matrix y(a.rows(), f);
  spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                        a.values().data(), x.data(), f, y.data(),
                        /*accumulate=*/false, /*num_threads=*/16);
  const Matrix reference = a.multiply(x);
  EXPECT_EQ(Matrix::max_abs_diff(reference, y), 0.0);
}

TEST(Csr, ResizePartsDeserializationRoundTrip) {
  // The receive side of the CSR collectives: resize a reused buffer and
  // fill its mutable views from another block's serialized arrays.
  Rng rng(61);
  const Csr source = Csr::from_coo(erdos_renyi(40, 5.0, rng));
  Csr recv;
  for (int round = 0; round < 2; ++round) {  // second round reuses buffers
    recv.resize_parts(source.rows(), source.cols(), source.nnz());
    std::copy(source.row_ptr().begin(), source.row_ptr().end(),
              recv.row_ptr_mut().begin());
    std::copy(source.col_idx().begin(), source.col_idx().end(),
              recv.col_idx_mut().begin());
    std::copy(source.values().begin(), source.values().end(),
              recv.values().begin());
    EXPECT_EQ(recv, source);
  }
}

}  // namespace
}  // namespace cagnet
