// Tests for the simulated distributed runtime: collective correctness
// across world sizes, sub-communicator splits, process grids, alpha-beta
// metering, and failure propagation.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "src/comm/comm.hpp"
#include "src/comm/grid.hpp"
#include "src/comm/machine.hpp"

namespace cagnet {
namespace {

class CollectivesAcrossP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesAcrossP, BroadcastDeliversRootData) {
  const int p = GetParam();
  run_world(p, [&](Comm& comm) {
    const int root = comm.size() / 2;
    std::vector<Real> data(37, static_cast<Real>(comm.rank()));
    if (comm.rank() == root) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<Real>(i) * 0.5;
      }
    }
    comm.broadcast(std::span<Real>(data), root, CommCategory::kDense);
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_DOUBLE_EQ(data[i], static_cast<Real>(i) * 0.5);
    }
  });
}

TEST_P(CollectivesAcrossP, AllreduceSumsContributions) {
  const int p = GetParam();
  run_world(p, [&](Comm& comm) {
    std::vector<Real> data(53);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<Real>(comm.rank() + 1) * static_cast<Real>(i);
    }
    comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
    const Real rank_sum = static_cast<Real>(p) * (p + 1) / 2;
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_NEAR(data[i], rank_sum * static_cast<Real>(i), 1e-9);
    }
  });
}

TEST_P(CollectivesAcrossP, AllreduceMaxFindsMaximum) {
  const int p = GetParam();
  run_world(p, [&](Comm& comm) {
    std::vector<Real> data = {static_cast<Real>(comm.rank()),
                              static_cast<Real>(-comm.rank())};
    comm.allreduce_max(std::span<Real>(data), CommCategory::kDense);
    ASSERT_DOUBLE_EQ(data[0], static_cast<Real>(p - 1));
    ASSERT_DOUBLE_EQ(data[1], 0.0);
  });
}

TEST_P(CollectivesAcrossP, ReduceScatterSplitsReducedVector) {
  const int p = GetParam();
  run_world(p, [&](Comm& comm) {
    // Every rank contributes contrib[i] = i * (rank+1); chunk c receives
    // sum over ranks = i * p(p+1)/2 over its slice.
    std::vector<std::size_t> chunk_sizes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      chunk_sizes[static_cast<std::size_t>(r)] =
          3 + static_cast<std::size_t>(r);  // uneven on purpose
    }
    const std::size_t total =
        std::accumulate(chunk_sizes.begin(), chunk_sizes.end(), 0ull);
    std::vector<Real> contrib(total);
    for (std::size_t i = 0; i < total; ++i) {
      contrib[i] = static_cast<Real>(i) * static_cast<Real>(comm.rank() + 1);
    }
    std::vector<Real> out(chunk_sizes[static_cast<std::size_t>(comm.rank())]);
    comm.reduce_scatter_sum(std::span<const Real>(contrib),
                            std::span<Real>(out), CommCategory::kDense);
    std::size_t offset = 0;
    for (int r = 0; r < comm.rank(); ++r) {
      offset += chunk_sizes[static_cast<std::size_t>(r)];
    }
    const Real rank_sum = static_cast<Real>(p) * (p + 1) / 2;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_NEAR(out[i], static_cast<Real>(offset + i) * rank_sum, 1e-9);
    }
  });
}

TEST_P(CollectivesAcrossP, AllgathervConcatenatesInRankOrder) {
  const int p = GetParam();
  run_world(p, [&](Comm& comm) {
    // Rank r contributes r+1 copies of value r.
    std::vector<Index> mine(static_cast<std::size_t>(comm.rank()) + 1,
                            static_cast<Index>(comm.rank()));
    const auto gathered =
        comm.allgatherv(std::span<const Index>(mine), CommCategory::kDense);
    ASSERT_EQ(gathered.offsets.size(), static_cast<std::size_t>(p) + 1);
    for (int r = 0; r < p; ++r) {
      const auto chunk = gathered.chunk(r);
      ASSERT_EQ(chunk.size(), static_cast<std::size_t>(r) + 1);
      for (Index v : chunk) ASSERT_EQ(v, static_cast<Index>(r));
    }
  });
}

TEST_P(CollectivesAcrossP, GatherCollectsAtRootOnly) {
  const int p = GetParam();
  run_world(p, [&](Comm& comm) {
    std::vector<Real> mine = {static_cast<Real>(comm.rank() * 10)};
    const auto g =
        comm.gather(std::span<const Real>(mine), 0, CommCategory::kControl);
    if (comm.rank() == 0) {
      ASSERT_EQ(g.data.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        ASSERT_DOUBLE_EQ(g.data[static_cast<std::size_t>(r)],
                         static_cast<Real>(r * 10));
      }
    } else {
      ASSERT_TRUE(g.data.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesAcrossP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Comm, ExchangeSwapsBuffersPairwise) {
  run_world(4, [](Comm& comm) {
    const int peer = comm.rank() ^ 1;  // 0<->1, 2<->3
    std::vector<Real> send(static_cast<std::size_t>(comm.rank()) + 2,
                           static_cast<Real>(comm.rank()));
    const auto recv =
        comm.exchange(std::span<const Real>(send), peer, CommCategory::kTranspose);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(peer) + 2);
    for (Real v : recv) ASSERT_DOUBLE_EQ(v, static_cast<Real>(peer));
  });
}

TEST(Comm, ExchangeWithSelfCopies) {
  run_world(2, [](Comm& comm) {
    std::vector<Real> send = {1.0, 2.0, static_cast<Real>(comm.rank())};
    const auto recv = comm.exchange(std::span<const Real>(send), comm.rank(),
                                    CommCategory::kTranspose);
    ASSERT_EQ(recv.size(), 3u);
    ASSERT_DOUBLE_EQ(recv[2], static_cast<Real>(comm.rank()));
  });
}

TEST(Comm, RouteDeliversAlongPermutation) {
  run_world(5, [](Comm& comm) {
    // Cyclic shift: rank r sends to r+1 (mod p).
    const int dest = (comm.rank() + 1) % comm.size();
    std::vector<Real> send(static_cast<std::size_t>(comm.rank()) + 1,
                           static_cast<Real>(comm.rank()));
    const auto recv =
        comm.route(std::span<const Real>(send), dest, CommCategory::kDense);
    const int src = (comm.rank() + comm.size() - 1) % comm.size();
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(src) + 1);
    for (Real v : recv) ASSERT_DOUBLE_EQ(v, static_cast<Real>(src));
  });
}

TEST(Comm, RouteIdentityIsFree) {
  std::vector<CostMeter> meters;
  run_world(3, [](Comm& comm) {
    std::vector<Real> send = {static_cast<Real>(comm.rank())};
    const auto recv = comm.route(std::span<const Real>(send), comm.rank(),
                                 CommCategory::kDense);
    ASSERT_DOUBLE_EQ(recv[0], static_cast<Real>(comm.rank()));
  }, &meters);
  for (const auto& m : meters) {
    EXPECT_DOUBLE_EQ(m.words(CommCategory::kDense), 0.0);
  }
}

TEST(Comm, RouteRejectsNonPermutation) {
  EXPECT_THROW(run_world(3,
                         [](Comm& comm) {
                           // Everyone sends to rank 0: not a permutation.
                           std::vector<Real> send = {1.0};
                           comm.route(std::span<const Real>(send), 0,
                                      CommCategory::kDense);
                         }),
               Error);
}

TEST(Comm, SplitFormsRowGroups) {
  run_world(6, [](Comm& comm) {
    // Two groups of three: color = rank / 3.
    Comm sub = comm.split(comm.rank() / 3, comm.rank());
    ASSERT_EQ(sub.size(), 3);
    ASSERT_EQ(sub.rank(), comm.rank() % 3);
    // A broadcast within the subgroup must not leak across groups.
    std::vector<Real> v = {static_cast<Real>(comm.rank())};
    sub.broadcast(std::span<Real>(v), 0, CommCategory::kDense);
    ASSERT_DOUBLE_EQ(v[0], static_cast<Real>((comm.rank() / 3) * 3));
  });
}

TEST(Comm, SplitHonorsKeyOrdering) {
  run_world(4, [](Comm& comm) {
    // Reverse ordering via key.
    Comm sub = comm.split(0, -comm.rank());
    ASSERT_EQ(sub.size(), 4);
    ASSERT_EQ(sub.rank(), 3 - comm.rank());
  });
}

TEST(Comm, NestedSplitWorks) {
  run_world(8, [](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_EQ(quarter.size(), 2);
    std::vector<Real> v = {static_cast<Real>(comm.rank())};
    quarter.allreduce_sum(std::span<Real>(v), CommCategory::kDense);
    // Pairs are (0,1), (2,3), ...
    const int base = (comm.rank() / 2) * 2;
    ASSERT_DOUBLE_EQ(v[0], static_cast<Real>(base + base + 1));
  });
}

TEST(Comm, AllgatherFixedSizeConcatenates) {
  run_world(4, [](Comm& comm) {
    std::vector<Real> mine(3, static_cast<Real>(comm.rank() + 1));
    const auto all =
        comm.allgather(std::span<const Real>(mine), CommCategory::kDense);
    ASSERT_EQ(all.size(), 12u);
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(r * 3 + i)],
                         static_cast<Real>(r + 1));
      }
    }
  });
}

TEST(Comm, AllgatherMismatchedSizesDetected) {
  EXPECT_THROW(
      run_world(2,
                [](Comm& comm) {
                  std::vector<Real> mine(
                      comm.rank() == 0 ? 2u : 3u, 0.0);
                  comm.allgather(std::span<const Real>(mine),
                                 CommCategory::kDense);
                }),
      Error);
}

TEST(Comm, ExchangeMeterChargesReceivedWords) {
  std::vector<CostMeter> meters;
  run_world(2, [](Comm& comm) {
    std::vector<Real> send(static_cast<std::size_t>(comm.rank()) + 5, 1.0);
    comm.exchange(std::span<const Real>(send), 1 - comm.rank(),
                  CommCategory::kTranspose);
  }, &meters);
  // Rank 0 receives rank 1's 6 words; rank 1 receives 5.
  EXPECT_DOUBLE_EQ(meters[0].words(CommCategory::kTranspose), 6.0);
  EXPECT_DOUBLE_EQ(meters[1].words(CommCategory::kTranspose), 5.0);
  EXPECT_DOUBLE_EQ(meters[0].latency_units(CommCategory::kTranspose), 1.0);
}

TEST(Comm, EmptyPayloadCollectivesAreSafe) {
  run_world(3, [](Comm& comm) {
    std::vector<Real> empty;
    comm.broadcast(std::span<Real>(empty), 0, CommCategory::kDense);
    comm.allreduce_sum(std::span<Real>(empty), CommCategory::kDense);
    const auto gathered =
        comm.allgatherv(std::span<const Real>(empty), CommCategory::kDense);
    ASSERT_TRUE(gathered.data.empty());
    ASSERT_EQ(gathered.offsets.size(), 4u);
  });
}

TEST(Comm, LargePayloadBroadcastIntact) {
  run_world(2, [](Comm& comm) {
    std::vector<Real> data(1 << 18);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<Real>(i % 1009);
      }
    }
    comm.broadcast(std::span<Real>(data), 0, CommCategory::kDense);
    for (std::size_t i = 0; i < data.size(); i += 4097) {
      ASSERT_DOUBLE_EQ(data[i], static_cast<Real>(i % 1009));
    }
  });
}

TEST(Comm, MeterChargesBroadcastCost) {
  std::vector<CostMeter> meters;
  run_world(4, [](Comm& comm) {
    std::vector<Real> data(100, 1.0);
    comm.broadcast(std::span<Real>(data), 0, CommCategory::kDense);
  }, &meters);
  for (const auto& m : meters) {
    // alpha: lg 4 = 2; beta: 100 words.
    EXPECT_DOUBLE_EQ(m.latency_units(CommCategory::kDense), 2.0);
    EXPECT_DOUBLE_EQ(m.words(CommCategory::kDense), 100.0);
    EXPECT_DOUBLE_EQ(m.words(CommCategory::kSparse), 0.0);
  }
}

TEST(Comm, MeterChargesAllreduceRabenseifnerCost) {
  std::vector<CostMeter> meters;
  run_world(4, [](Comm& comm) {
    std::vector<Real> data(64, 1.0);
    comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
  }, &meters);
  for (const auto& m : meters) {
    EXPECT_DOUBLE_EQ(m.latency_units(CommCategory::kDense), 4.0);  // 2 lg 4
    EXPECT_DOUBLE_EQ(m.words(CommCategory::kDense), 2.0 * 64 * 3 / 4);
  }
}

TEST(Comm, MeterControlCategoryExcludedFromModeledTime) {
  std::vector<CostMeter> meters;
  run_world(2, [](Comm& comm) {
    std::vector<Real> data(1000, 1.0);
    comm.broadcast(std::span<Real>(data), 0, CommCategory::kControl);
  }, &meters);
  const MachineModel m = MachineModel::summit();
  EXPECT_DOUBLE_EQ(meters[0].modeled_seconds(m), 0.0);
  EXPECT_GT(meters[0].words(CommCategory::kControl), 0.0);
  EXPECT_DOUBLE_EQ(meters[0].total_words(), 0.0);
}

TEST(Comm, MeterIndexPayloadCountedInRealWords) {
  std::vector<CostMeter> meters;
  run_world(2, [](Comm& comm) {
    std::vector<Index> data(10, 1);  // 10 * 8 bytes = 10 Real words
    comm.broadcast(std::span<Index>(data), 0, CommCategory::kSparse);
  }, &meters);
  EXPECT_DOUBLE_EQ(meters[0].words(CommCategory::kSparse), 10.0);
}

TEST(Comm, WorldSizeOneCollectivesAreFree) {
  std::vector<CostMeter> meters;
  run_world(1, [](Comm& comm) {
    std::vector<Real> data(10, 2.0);
    comm.broadcast(std::span<Real>(data), 0, CommCategory::kDense);
    comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
    for (Real v : data) ASSERT_DOUBLE_EQ(v, 2.0);
  }, &meters);
  EXPECT_DOUBLE_EQ(meters[0].total_latency_units(), 0.0);
  EXPECT_DOUBLE_EQ(meters[0].total_words(), 0.0);
}

TEST(Comm, RankExceptionPropagatesToCaller) {
  EXPECT_THROW(
      run_world(4,
                [](Comm& comm) {
                  std::vector<Real> v(8, 0.0);
                  // Everyone reaches the eventual broadcast except rank 2,
                  // which fails first; peers must unwind, not deadlock.
                  if (comm.rank() == 2) throw Error("injected failure");
                  comm.broadcast(std::span<Real>(v), 0, CommCategory::kDense);
                }),
      Error);
}

TEST(Comm, BarrierSynchronizesPhases) {
  std::atomic<int> counter{0};
  run_world(8, [&](Comm& comm) {
    counter.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all increments.
    ASSERT_EQ(counter.load(), 8);
  });
}

TEST(Comm, MismatchedBroadcastSizesDetected) {
  EXPECT_THROW(run_world(2,
                         [](Comm& comm) {
                           std::vector<Real> v(
                               comm.rank() == 0 ? 4u : 5u, 0.0);
                           comm.broadcast(std::span<Real>(v), 0,
                                          CommCategory::kDense);
                         }),
               Error);
}

TEST(Grid, TwoDSquareCoordinates) {
  run_world(9, [](Comm& comm) {
    Grid2D g = Grid2D::create_square(comm);
    ASSERT_EQ(g.pr, 3);
    ASSERT_EQ(g.pc, 3);
    ASSERT_EQ(g.i, comm.rank() / 3);
    ASSERT_EQ(g.j, comm.rank() % 3);
    ASSERT_EQ(g.row.size(), 3);
    ASSERT_EQ(g.col.size(), 3);
    ASSERT_EQ(g.row.rank(), g.j);
    ASSERT_EQ(g.col.rank(), g.i);
  });
}

TEST(Grid, TwoDRowBroadcastStaysInRow) {
  run_world(4, [](Comm& comm) {
    Grid2D g = Grid2D::create_square(comm);
    std::vector<Real> v = {static_cast<Real>(comm.rank())};
    g.row.broadcast(std::span<Real>(v), 0, CommCategory::kDense);
    // Row i's rank-0 member is world rank i*pc.
    ASSERT_DOUBLE_EQ(v[0], static_cast<Real>(g.i * g.pc));
  });
}

TEST(Grid, RectangularGridShapes) {
  run_world(6, [](Comm& comm) {
    Grid2D g = Grid2D::create(comm, 2, 3);
    ASSERT_EQ(g.row.size(), 3);
    ASSERT_EQ(g.col.size(), 2);
  });
}

TEST(Grid, NonSquareWorldRejected) {
  EXPECT_THROW(
      run_world(6, [](Comm& comm) { Grid2D::create_square(comm); }),
      Error);
}

TEST(Grid, ThreeDCoordinatesAndComms) {
  run_world(8, [](Comm& comm) {
    Grid3D g = Grid3D::create_cube(comm);
    ASSERT_EQ(g.q, 2);
    ASSERT_EQ(g.layer.size(), 4);
    ASSERT_EQ(g.row.size(), 2);
    ASSERT_EQ(g.col.size(), 2);
    ASSERT_EQ(g.fiber.size(), 2);
    // Fiber reduce across layers: ranks (i,j,0) and (i,j,1).
    std::vector<Real> v = {static_cast<Real>(g.k + 1)};
    g.fiber.allreduce_sum(std::span<Real>(v), CommCategory::kDense);
    ASSERT_DOUBLE_EQ(v[0], 3.0);  // 1 + 2
  });
}

TEST(Grid, FineRangesTileEachCoarseBlock) {
  const Index n = 103;
  const int q = 3;
  for (int coarse = 0; coarse < q; ++coarse) {
    const auto [clo, chi] = block_range(n, q, coarse);
    Index prev = clo;
    for (int sub = 0; sub < q; ++sub) {
      const auto [flo, fhi] = fine_range(n, q, coarse, sub);
      EXPECT_EQ(flo, prev);
      EXPECT_LE(flo, fhi);
      prev = fhi;
    }
    EXPECT_EQ(prev, chi);
  }
}

TEST(Grid, FineRangesAreGloballyContiguous) {
  const Index n = 64;
  const int q = 4;
  Index cursor = 0;
  for (int coarse = 0; coarse < q; ++coarse) {
    for (int sub = 0; sub < q; ++sub) {
      const auto [lo, hi] = fine_range(n, q, coarse, sub);
      EXPECT_EQ(lo, cursor);
      cursor = hi;
    }
  }
  EXPECT_EQ(cursor, n);
}

TEST(Grid, BlockRangeCoversDimensionExactly) {
  const Index n = 103;
  for (int parts : {1, 2, 3, 7, 10}) {
    Index covered = 0;
    Index prev_hi = 0;
    for (int idx = 0; idx < parts; ++idx) {
      const auto [lo, hi] = block_range(n, parts, idx);
      EXPECT_EQ(lo, prev_hi);
      EXPECT_LE(lo, hi);
      covered += hi - lo;
      prev_hi = hi;
    }
    EXPECT_EQ(covered, n);
    EXPECT_EQ(prev_hi, n);
  }
}

TEST(Machine, SpmmRateDegradationMatchesYangEtAl) {
  // Section VI-a cites a ~3x GFlops drop when average degree falls 62 -> 8.
  const MachineModel m = MachineModel::summit();
  const double wide = 64.0;
  const double ratio = m.spmm_gflops(62, wide) / m.spmm_gflops(8, wide);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(Machine, SkinnyDenseOperandPenalized) {
  const MachineModel m = MachineModel::summit();
  EXPECT_GT(m.spmm_gflops(30, 16), 2.0 * m.spmm_gflops(30, 2));
}

TEST(Machine, WorkMeterAccumulatesModeledSeconds) {
  const MachineModel m = MachineModel::summit();
  WorkMeter w;
  w.add_spmm(m, /*nnz=*/1e6, /*width=*/64, /*avg_degree=*/50);
  w.add_gemm(m, /*flops=*/1e9);
  EXPECT_GT(w.spmm_seconds(), 0.0);
  EXPECT_NEAR(w.gemm_seconds(), 1e9 / (m.gemm_gflops * 1e9), 1e-12);
  EXPECT_DOUBLE_EQ(w.spmm_flops(), 2.0 * 1e6 * 64);
}

TEST(Machine, CeilLog2Values) {
  EXPECT_DOUBLE_EQ(ceil_log2(1), 0.0);
  EXPECT_DOUBLE_EQ(ceil_log2(2), 1.0);
  EXPECT_DOUBLE_EQ(ceil_log2(3), 2.0);
  EXPECT_DOUBLE_EQ(ceil_log2(4), 2.0);
  EXPECT_DOUBLE_EQ(ceil_log2(100), 7.0);
}

TEST(RootDirectBroadcast, DeliversRootDataAndChargesLikeBroadcast) {
  // broadcast_from must be observably identical to broadcast: same data on
  // every non-root, same alpha-beta charge on every rank — it only skips
  // the root's staging copy.
  const int p = 4;
  std::vector<CostMeter> meters;
  run_world(
      p,
      [&](Comm& comm) {
        const int root = 1;
        std::vector<Real> src;
        std::vector<Real> dst(29, -1);
        if (comm.rank() == root) {
          src.resize(29);
          for (std::size_t i = 0; i < src.size(); ++i) {
            src[i] = static_cast<Real>(i) * 1.5;
          }
        }
        comm.broadcast_from(std::span<const Real>(src), std::span<Real>(dst),
                            root, CommCategory::kDense);
        if (comm.rank() != root) {
          for (std::size_t i = 0; i < dst.size(); ++i) {
            ASSERT_DOUBLE_EQ(dst[i], static_cast<Real>(i) * 1.5);
          }
        } else {
          // Root's buffers are untouched.
          for (Real v : dst) ASSERT_DOUBLE_EQ(v, -1);
        }
      },
      &meters);
  std::vector<CostMeter> reference_meters;
  run_world(
      p,
      [&](Comm& comm) {
        std::vector<Real> data(29);
        if (comm.rank() == 1) {
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<Real>(i) * 1.5;
          }
        }
        comm.broadcast(std::span<Real>(data), 1, CommCategory::kDense);
      },
      &reference_meters);
  for (int r = 0; r < p; ++r) {
    const auto& got = meters[static_cast<std::size_t>(r)];
    const auto& want = reference_meters[static_cast<std::size_t>(r)];
    EXPECT_EQ(got.words(CommCategory::kDense),
              want.words(CommCategory::kDense));
    EXPECT_EQ(got.latency_units(CommCategory::kDense),
              want.latency_units(CommCategory::kDense));
  }
}

// ---- Invalid-communicator diagnostics ----
// A default-constructed Comm is invalid; every collective must fail with a
// clear Error instead of dereferencing null state (regression for the
// formerly undiagnosed `Comm() = default` misuse).

TEST(InvalidComm, CollectivesFailWithDiagnostic) {
  Comm comm;  // default-constructed: invalid
  ASSERT_FALSE(comm.valid());
  ASSERT_EQ(comm.size(), 0);
  std::vector<Real> data(4, 1.0);
  Gathered<Real> gathered;
  EXPECT_THROW(comm.barrier(), Error);
  EXPECT_THROW(comm.meter(), Error);
  EXPECT_THROW(comm.quiesce(), Error);
  EXPECT_THROW(comm.split(0, 0), Error);
  EXPECT_THROW(comm.broadcast(std::span<Real>(data), 0,
                              CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.broadcast_from(std::span<const Real>(data),
                                   std::span<Real>{}, 0,
                                   CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.allreduce_sum(std::span<Real>(data),
                                  CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.allreduce_max(std::span<Real>(data),
                                  CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.reduce_scatter_sum(std::span<const Real>(data),
                                       std::span<Real>(data),
                                       CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.allgather(std::span<const Real>(data),
                              CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.allgatherv_into(std::span<const Real>(data), gathered,
                                    CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.exchange(std::span<const Real>(data), 0,
                             CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.route(std::span<const Real>(data), 0,
                          CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.gather(std::span<const Real>(data), 0,
                           CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.ibroadcast_from(std::span<const Real>(data),
                                    std::span<Real>{}, 0,
                                    CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.ireduce_scatter_sum(std::span<const Real>(data),
                                        std::span<Real>(data),
                                        CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.iallgatherv_into(std::span<const Real>(data), gathered,
                                     CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.iallreduce_sum(std::span<const Real>(data),
                                   std::span<Real>(data),
                                   CommCategory::kDense),
               Error);
  try {
    comm.barrier();
    FAIL() << "barrier on invalid Comm did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invalid Comm"), std::string::npos);
  }
}

TEST(InvalidComm, CompressedCollectivesFailWithDiagnostic) {
  // Diagnostic parity: the lossy entry points must fail like the exact
  // ones, not dereference null state (or worse, bind the CompressBuf to a
  // dead communicator).
  Comm comm;  // default-constructed: invalid
  std::vector<Real> data(8, 1.0);
  CompressBuf buf;
  EXPECT_THROW(comm.allreduce_sum_compressed(std::span<Real>(data),
                                             CompressMode::kInt8, buf),
               Error);
  EXPECT_THROW(comm.reduce_scatter_sum_compressed(
                   std::span<const Real>(data), std::span<Real>(data),
                   CompressMode::kInt8, buf),
               Error);
  EXPECT_THROW(comm.iallreduce_sum_compressed(std::span<const Real>(data),
                                              std::span<Real>(data),
                                              CompressMode::kInt8, buf),
               Error);
  EXPECT_THROW(comm.ireduce_scatter_sum_compressed(
                   std::span<const Real>(data), std::span<Real>(data),
                   CompressMode::kInt8, buf),
               Error);
  try {
    comm.allreduce_sum_compressed(std::span<Real>(data), CompressMode::kInt8,
                                  buf);
    FAIL() << "compressed all-reduce on invalid Comm did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invalid Comm"), std::string::npos);
  }
  EXPECT_TRUE(buf.residual.empty());  // never bound, never touched
}

TEST(Compressed, ResidualCarriesWithinAStreamAndResetsOnRebind) {
  // Error feedback must carry across rounds of one (communicator, length)
  // stream, and must NOT leak when the same CompressBuf is reused with a
  // different length or a different communicator — reuse after a rebind
  // must be bitwise identical to starting from a fresh buf.
  const std::size_t n = 300;  // straddles a codec chunk boundary
  run_world(2, [&](Comm& world) {
    std::vector<Real> base(n);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = std::sin(0.1 * static_cast<double>(i + 1) *
                         (world.rank() + 1));
    }
    const auto round = [](Comm& c, CompressBuf& buf,
                          std::span<const Real> src, std::vector<Real>& out) {
      out.assign(src.begin(), src.end());
      buf.error_feedback = true;
      c.allreduce_sum_compressed(std::span<Real>(out), CompressMode::kInt8,
                                 buf);
    };

    std::vector<Real> fresh1;
    std::vector<Real> fresh2;
    {
      CompressBuf fresh;
      round(world, fresh, base, fresh1);
    }
    {
      CompressBuf fresh;
      round(world, fresh, base, fresh2);
    }
    ASSERT_EQ(fresh1, fresh2);  // determinism baseline

    // Same buf, same stream: round 2 re-injects round 1's residual and
    // must differ from a fresh round (the carry is observable).
    CompressBuf buf;
    std::vector<Real> r1;
    std::vector<Real> r2;
    round(world, buf, base, r1);
    EXPECT_EQ(r1, fresh1);
    ASSERT_EQ(buf.residual.size(), n);
    round(world, buf, base, r2);
    EXPECT_NE(r2, fresh1);

    // Length change rebinds: the stale residual must not leak.
    const std::vector<Real> shorter(base.begin(),
                                    base.begin() + static_cast<long>(n - 7));
    std::vector<Real> fresh_short;
    {
      CompressBuf fresh;
      round(world, fresh, shorter, fresh_short);
    }
    std::vector<Real> reused_short;
    round(world, buf, shorter, reused_short);
    EXPECT_EQ(reused_short, fresh_short);

    // Communicator change rebinds too (same membership, new identity).
    Comm sub = world.split(/*color=*/0, /*key=*/world.rank());
    std::vector<Real> fresh_sub;
    {
      CompressBuf fresh;
      round(sub, fresh, shorter, fresh_sub);
    }
    round(world, buf, shorter, reused_short);  // repopulate buf's residual
    std::vector<Real> reused_sub;
    round(sub, buf, shorter, reused_sub);
    EXPECT_EQ(reused_sub, fresh_sub);
  });
}

// ---- Nonblocking collectives ----

TEST(Nonblocking, BroadcastDeliversAndChargesLikeBlocking) {
  const int p = 4;
  std::vector<CostMeter> meters;
  run_world(
      p,
      [&](Comm& comm) {
        const int root = 2;
        std::vector<Real> src;
        std::vector<Real> dst(31, -1);
        if (comm.rank() == root) {
          src.resize(31);
          for (std::size_t i = 0; i < src.size(); ++i) {
            src[i] = static_cast<Real>(i) * 0.25;
          }
        }
        PendingOp op = comm.ibroadcast_from(std::span<const Real>(src),
                                            std::span<Real>(dst), root,
                                            CommCategory::kDense);
        EXPECT_TRUE(op.pending());
        op.wait();
        EXPECT_FALSE(op.pending());
        // A second wait() is the legacy no-op only while the contract
        // checker is off; armed (the default in assertion-keeping
        // builds) it is diagnosed as a double-wait —
        // tests/contract_test.cpp pins the diagnostic text.
        if (!contract::enabled()) op.wait();
        if (comm.rank() != root) {
          for (std::size_t i = 0; i < dst.size(); ++i) {
            ASSERT_DOUBLE_EQ(dst[i], static_cast<Real>(i) * 0.25);
          }
        }
        comm.quiesce();  // src may be released now
      },
      &meters);
  // Identical charge to the blocking broadcast: lg 4 = 2 latency units,
  // 31 words, on every rank.
  for (const auto& m : meters) {
    EXPECT_DOUBLE_EQ(m.latency_units(CommCategory::kDense), 2.0);
    EXPECT_DOUBLE_EQ(m.words(CommCategory::kDense), 31.0);
  }
}

TEST(Nonblocking, OutOfOrderWaitsComplete) {
  run_world(3, [](Comm& comm) {
    std::vector<Real> src1, src2;
    std::vector<Real> dst1(8, -1), dst2(5, -1);
    if (comm.rank() == 0) {
      src1.assign(8, 10.0);
      src2.assign(5, 20.0);
    }
    PendingOp op1 = comm.ibroadcast_from(std::span<const Real>(src1),
                                         std::span<Real>(dst1), 0,
                                         CommCategory::kDense);
    PendingOp op2 = comm.ibroadcast_from(std::span<const Real>(src2),
                                         std::span<Real>(dst2), 0,
                                         CommCategory::kDense);
    // Waits in reverse posting order must both complete.
    op2.wait();
    op1.wait();
    if (comm.rank() != 0) {
      for (Real v : dst1) ASSERT_DOUBLE_EQ(v, 10.0);
      for (Real v : dst2) ASSERT_DOUBLE_EQ(v, 20.0);
    }
    comm.quiesce();
  });
}

TEST(Nonblocking, PostedButUnwaitedOpCompletesOnDestruction) {
  std::vector<CostMeter> meters;
  run_world(
      2,
      [&](Comm& comm) {
        std::vector<Real> src;
        std::vector<Real> dst(6, -1);
        if (comm.rank() == 0) src.assign(6, 7.5);
        {
          PendingOp op = comm.ibroadcast_from(std::span<const Real>(src),
                                              std::span<Real>(dst), 0,
                                              CommCategory::kDense);
          // Dropped without wait(): the destructor must complete it.
        }
        if (comm.rank() == 1) {
          for (Real v : dst) ASSERT_DOUBLE_EQ(v, 7.5);
        }
        comm.quiesce();
      },
      &meters);
  // The charge is applied by the destructor's implicit wait.
  for (const auto& m : meters) {
    EXPECT_DOUBLE_EQ(m.words(CommCategory::kDense), 6.0);
  }
}

TEST(Nonblocking, ReduceScatterMatchesBlocking) {
  const int p = 3;
  std::vector<CostMeter> meters, blocking_meters;
  std::vector<std::vector<Real>> outs(p), blocking_outs(p);
  run_world(
      p,
      [&](Comm& comm) {
        std::vector<Real> contrib(9);
        for (std::size_t i = 0; i < contrib.size(); ++i) {
          contrib[i] = static_cast<Real>(i + comm.rank());
        }
        std::vector<Real> out(static_cast<std::size_t>(comm.rank()) + 2);
        PendingOp op = comm.ireduce_scatter_sum(
            std::span<const Real>(contrib), std::span<Real>(out),
            CommCategory::kDense);
        op.wait();
        comm.quiesce();
        outs[static_cast<std::size_t>(comm.rank())] = out;
      },
      &meters);
  run_world(
      p,
      [&](Comm& comm) {
        std::vector<Real> contrib(9);
        for (std::size_t i = 0; i < contrib.size(); ++i) {
          contrib[i] = static_cast<Real>(i + comm.rank());
        }
        std::vector<Real> out(static_cast<std::size_t>(comm.rank()) + 2);
        comm.reduce_scatter_sum(std::span<const Real>(contrib),
                                std::span<Real>(out), CommCategory::kDense);
        blocking_outs[static_cast<std::size_t>(comm.rank())] = out;
      },
      &blocking_meters);
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(outs[static_cast<std::size_t>(r)],
              blocking_outs[static_cast<std::size_t>(r)]);
    EXPECT_EQ(meters[static_cast<std::size_t>(r)].words(CommCategory::kDense),
              blocking_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kDense));
    EXPECT_EQ(meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kDense),
              blocking_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kDense));
  }
}

TEST(Nonblocking, AllgathervMatchesBlocking) {
  const int p = 4;
  std::vector<CostMeter> meters, blocking_meters;
  run_world(
      p,
      [&](Comm& comm) {
        std::vector<Index> mine(static_cast<std::size_t>(comm.rank()) + 1,
                                static_cast<Index>(comm.rank()));
        Gathered<Index> out;
        comm.iallgatherv_into(std::span<const Index>(mine), out,
                              CommCategory::kDense)
            .wait();
        comm.quiesce();
        ASSERT_EQ(out.offsets.size(), static_cast<std::size_t>(p) + 1);
        for (int r = 0; r < p; ++r) {
          const auto chunk = out.chunk(r);
          ASSERT_EQ(chunk.size(), static_cast<std::size_t>(r) + 1);
          for (Index v : chunk) ASSERT_EQ(v, static_cast<Index>(r));
        }
      },
      &meters);
  run_world(
      p,
      [&](Comm& comm) {
        std::vector<Index> mine(static_cast<std::size_t>(comm.rank()) + 1,
                                static_cast<Index>(comm.rank()));
        comm.allgatherv(std::span<const Index>(mine), CommCategory::kDense);
      },
      &blocking_meters);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(meters[static_cast<std::size_t>(r)].words(CommCategory::kDense),
              blocking_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kDense));
  }
}

TEST(Nonblocking, AllreduceSumMatchesBlockingBitwise) {
  const int p = 4;
  std::vector<CostMeter> meters, blocking_meters;
  std::vector<std::vector<Real>> outs(p), blocking_outs(p);
  const auto contrib_for = [](int rank) {
    std::vector<Real> c(17);
    for (std::size_t i = 0; i < c.size(); ++i) {
      c[i] = std::sin(static_cast<Real>(i) * (rank + 1));  // non-trivial FP
    }
    return c;
  };
  run_world(
      p,
      [&](Comm& comm) {
        const std::vector<Real> contrib = contrib_for(comm.rank());
        std::vector<Real> out(contrib.size());
        comm.iallreduce_sum(std::span<const Real>(contrib),
                            std::span<Real>(out), CommCategory::kDense)
            .wait();
        comm.quiesce();
        outs[static_cast<std::size_t>(comm.rank())] = out;
      },
      &meters);
  run_world(
      p,
      [&](Comm& comm) {
        std::vector<Real> data = contrib_for(comm.rank());
        comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
        blocking_outs[static_cast<std::size_t>(comm.rank())] = data;
      },
      &blocking_meters);
  for (int r = 0; r < p; ++r) {
    // Bitwise equality: the nonblocking reduction uses the same
    // rank-ascending element order as the blocking one.
    ASSERT_EQ(outs[static_cast<std::size_t>(r)],
              blocking_outs[static_cast<std::size_t>(r)]);
    EXPECT_EQ(meters[static_cast<std::size_t>(r)].words(CommCategory::kDense),
              blocking_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kDense));
    EXPECT_EQ(meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kDense),
              blocking_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kDense));
  }
}

TEST(Nonblocking, ComputeBetweenPostAndWaitSeesNoInterference) {
  // The advertised pattern: post, run an unrelated *blocking* collective
  // plus local compute, then wait. The pending op must be unaffected.
  run_world(3, [](Comm& comm) {
    std::vector<Real> src;
    std::vector<Real> dst(12, -1);
    if (comm.rank() == 1) src.assign(12, 3.0);
    PendingOp op = comm.ibroadcast_from(std::span<const Real>(src),
                                        std::span<Real>(dst), 1,
                                        CommCategory::kDense);
    std::vector<Real> unrelated = {static_cast<Real>(comm.rank())};
    comm.allreduce_sum(std::span<Real>(unrelated), CommCategory::kControl);
    ASSERT_DOUBLE_EQ(unrelated[0], 3.0);  // 0 + 1 + 2
    op.wait();
    if (comm.rank() != 1) {
      for (Real v : dst) ASSERT_DOUBLE_EQ(v, 3.0);
    }
    comm.quiesce();
  });
}

TEST(Nonblocking, TooManyOutstandingOpsDiagnosed) {
  EXPECT_THROW(
      run_world(2,
                [](Comm& comm) {
                  std::vector<Real> src(2, 1.0);
                  std::vector<Real> dst(2, 0.0);
                  std::vector<PendingOp> ops;
                  for (int i = 0; i < 17; ++i) {  // cap is 16 in flight
                    ops.push_back(comm.ibroadcast_from(
                        std::span<const Real>(src), std::span<Real>(dst), 0,
                        CommCategory::kDense));
                  }
                }),
      Error);
}

TEST(Nonblocking, RankFailureReleasesPendingWaiters) {
  // Rank 2 fails before posting; the other ranks block in wait() and must
  // be released by the abort flag instead of deadlocking.
  EXPECT_THROW(
      run_world(3,
                [](Comm& comm) {
                  if (comm.rank() == 2) throw Error("injected failure");
                  std::vector<Real> src(4, 1.0);
                  std::vector<Real> dst(4, 0.0);
                  const std::span<const Real> src_span =
                      comm.rank() == 0 ? std::span<const Real>(src)
                                       : std::span<const Real>{};
                  PendingOp op = comm.ibroadcast_from(
                      src_span, std::span<Real>(dst), 0,
                      CommCategory::kDense);
                  op.wait();
                }),
      Error);
}

TEST(Nonblocking, ChannelsRecycleAcrossManyOps) {
  // More ops than channels (16) exercises the generation-based recycling.
  run_world(2, [](Comm& comm) {
    std::vector<Real> src(3);
    std::vector<Real> dst(3, -1);
    for (int round = 0; round < 50; ++round) {
      if (comm.rank() == 0) {
        src.assign(3, static_cast<Real>(round));
      }
      PendingOp op = comm.ibroadcast_from(
          comm.rank() == 0 ? std::span<const Real>(src)
                           : std::span<const Real>{},
          comm.rank() == 0 ? std::span<Real>{} : std::span<Real>(dst), 0,
          CommCategory::kControl);
      op.wait();
      comm.quiesce();
      if (comm.rank() == 1) {
        for (Real v : dst) ASSERT_DOUBLE_EQ(v, static_cast<Real>(round));
      }
    }
  });
}

TEST(Nonblocking, QuiesceReleasesSourcesForReuse) {
  // The documented release discipline: after quiesce(), every rank has
  // completed every posted op, so a broadcast source may be rewritten.
  run_world(3, [](Comm& comm) {
    std::vector<Real> src(5);
    std::vector<Real> dst(5, -1);
    for (int round = 0; round < 3; ++round) {
      if (comm.rank() == 0) src.assign(5, static_cast<Real>(round + 1));
      PendingOp op = comm.ibroadcast_from(
          comm.rank() == 0 ? std::span<const Real>(src)
                           : std::span<const Real>{},
          comm.rank() == 0 ? std::span<Real>{} : std::span<Real>(dst), 0,
          CommCategory::kControl);
      const std::uint64_t ticket = op.ticket();
      op.wait();
      if (comm.rank() != 0) {
        for (Real v : dst) ASSERT_DOUBLE_EQ(v, static_cast<Real>(round + 1));
      }
      // Single-op release: equivalent to quiesce() here, but would not
      // wait on deliberately-pending later ops.
      comm.quiesce_op(ticket);
    }
    comm.quiesce();  // full drain is idempotent
  });
}

// ---- Overlap accounting on the CostMeter ----

TEST(OverlapAccounting, RegionRecordsMaxOfCommAndCompute) {
  const MachineModel m = MachineModel::summit();
  CostMeter meter;
  // Region 1: comm-heavy. 1e9 words at beta seconds/word dominates.
  meter.begin_overlap_region();
  meter.add(CommCategory::kDense, 0.0, 1e9);
  const double comm1 = m.beta * 1e9;
  meter.end_overlap_region(m, /*compute_seconds=*/0.001);
  // Region 2: compute-heavy.
  meter.begin_overlap_region();
  meter.add(CommCategory::kDense, 0.0, 10.0);
  const double comm2 = m.beta * 10.0;
  meter.end_overlap_region(m, /*compute_seconds=*/0.5);
  EXPECT_DOUBLE_EQ(meter.overlap_regions(), 2.0);
  EXPECT_DOUBLE_EQ(meter.overlap_serialized_seconds(),
                   comm1 + 0.001 + comm2 + 0.5);
  EXPECT_DOUBLE_EQ(meter.overlap_overlapped_seconds(),
                   std::max(comm1, 0.001) + std::max(comm2, 0.5));
  EXPECT_GT(meter.overlap_saved_seconds(), 0.0);
  // Control traffic stays excluded from the region's comm seconds.
  CostMeter control_only;
  control_only.begin_overlap_region();
  control_only.add(CommCategory::kControl, 5.0, 5e9);
  control_only.end_overlap_region(m, 0.25);
  EXPECT_DOUBLE_EQ(control_only.overlap_serialized_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(control_only.overlap_overlapped_seconds(), 0.25);
}

TEST(OverlapAccounting, TotalsSurviveSubtractAndMerge) {
  const MachineModel m = MachineModel::summit();
  CostMeter a;
  a.begin_overlap_region();
  a.add(CommCategory::kDense, 2.0, 100.0);
  a.end_overlap_region(m, 0.5);
  CostMeter before;  // empty baseline
  CostMeter delta = a;
  delta.subtract(before);
  EXPECT_DOUBLE_EQ(delta.overlap_serialized_seconds(),
                   a.overlap_serialized_seconds());
  CostMeter merged;
  merged.merge_max(a);
  EXPECT_DOUBLE_EQ(merged.overlap_overlapped_seconds(),
                   a.overlap_overlapped_seconds());
  merged.merge_sum(a);
  EXPECT_DOUBLE_EQ(merged.overlap_regions(), 2.0 * a.overlap_regions());
}

TEST(AllgathervInto, ReusesStorageAcrossCalls) {
  run_world(3, [&](Comm& comm) {
    Gathered<Real> out;
    for (int round = 0; round < 3; ++round) {
      std::vector<Real> mine(static_cast<std::size_t>(comm.rank()) + 2,
                             static_cast<Real>(comm.rank() + round));
      comm.allgatherv_into(std::span<const Real>(mine), out,
                           CommCategory::kControl);
      ASSERT_EQ(out.offsets.size(), 4u);
      for (int r = 0; r < 3; ++r) {
        const auto chunk = out.chunk(r);
        ASSERT_EQ(chunk.size(), static_cast<std::size_t>(r) + 2);
        for (Real v : chunk) {
          ASSERT_DOUBLE_EQ(v, static_cast<Real>(r + round));
        }
      }
    }
  });
}

// ---- alltoallv: the halo-exchange primitive ----

/// Each rank sends `dest + 1` copies of the value 100*rank + dest to every
/// destination; every receive is fully checkable.
TEST(Alltoallv, MovesEveryChunkToItsDestination) {
  const int p = 4;
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets = {0};
    for (int d = 0; d < p; ++d) {
      for (int k = 0; k <= d; ++k) {
        send.push_back(static_cast<Real>(100 * comm.rank() + d));
      }
      offsets.push_back(send.size());
    }
    Gathered<Real> out;
    comm.alltoallv_into(std::span<const Real>(send),
                        std::span<const std::size_t>(offsets), out,
                        CommCategory::kDense);
    ASSERT_EQ(out.offsets.size(), static_cast<std::size_t>(p) + 1);
    for (int r = 0; r < p; ++r) {
      const auto chunk = out.chunk(r);
      ASSERT_EQ(chunk.size(), static_cast<std::size_t>(comm.rank()) + 1);
      for (Real v : chunk) {
        ASSERT_DOUBLE_EQ(v, static_cast<Real>(100 * r + comm.rank()));
      }
    }
  });
}

TEST(Alltoallv, EmptyChunksAndSelfOnlyAreSafe) {
  run_world(3, [&](Comm& comm) {
    // Only the self chunk is populated: nothing should travel or charge.
    std::vector<Real> send(2, static_cast<Real>(comm.rank()));
    std::vector<std::size_t> offsets(4, 0);
    for (int d = comm.rank(); d < 3; ++d) offsets[static_cast<std::size_t>(d) + 1] = 2;
    const CostMeter before = comm.meter();
    Gathered<Real> out;
    comm.alltoallv_into(std::span<const Real>(send),
                        std::span<const std::size_t>(offsets), out,
                        CommCategory::kDense);
    CostMeter delta = comm.meter();
    delta.subtract(before);
    ASSERT_EQ(out.chunk(comm.rank()).size(), 2u);
    ASSERT_DOUBLE_EQ(delta.words(CommCategory::kDense), 0.0);
  });
}

TEST(Alltoallv, NonblockingMatchesBlockingAndChargesBitwise) {
  const int p = 4;
  std::vector<CostMeter> blocking_meters;
  std::vector<CostMeter> nonblocking_meters;
  std::vector<std::vector<Real>> blocking_data(p);
  std::vector<std::vector<Real>> nonblocking_data(p);
  const auto payload = [&](Comm& comm, std::vector<Real>& send,
                           std::vector<std::size_t>& offsets) {
    offsets = {0};
    for (int d = 0; d < p; ++d) {
      for (int k = 0; k < (comm.rank() + d) % 3; ++k) {
        send.push_back(static_cast<Real>(comm.rank() * 10 + d + k));
      }
      offsets.push_back(send.size());
    }
  };
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets;
    payload(comm, send, offsets);
    Gathered<Real> out;
    comm.alltoallv_into(std::span<const Real>(send),
                        std::span<const std::size_t>(offsets), out,
                        CommCategory::kHalo);
    blocking_data[static_cast<std::size_t>(comm.rank())] = out.data;
  }, &blocking_meters);
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets;
    payload(comm, send, offsets);
    Gathered<Real> out;
    PendingOp op = comm.ialltoallv_into(
        std::span<const Real>(send), std::span<const std::size_t>(offsets),
        out, CommCategory::kHalo);
    EXPECT_TRUE(op.pending());
    op.wait();
    comm.quiesce();  // release send/offsets before they go out of scope
    nonblocking_data[static_cast<std::size_t>(comm.rank())] = out.data;
  }, &nonblocking_meters);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(blocking_data[static_cast<std::size_t>(r)],
              nonblocking_data[static_cast<std::size_t>(r)]);
    EXPECT_EQ(blocking_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kHalo),
              nonblocking_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kHalo));
    EXPECT_EQ(blocking_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kHalo),
              nonblocking_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kHalo));
  }
}

TEST(Alltoallv, PerSourceDrainMatchesBlockingAndChargesBitwise) {
  // ialltoallv_post + await_source: zero-copy views per source, in any
  // order, with charges telescoping bitwise to the blocking form's.
  const int p = 4;
  std::vector<CostMeter> blocking_meters;
  std::vector<CostMeter> drain_meters;
  std::vector<std::vector<Real>> blocking_data(p);
  std::vector<std::vector<Real>> drain_data(p);
  const auto payload = [&](Comm& comm, std::vector<Real>& send,
                           std::vector<std::size_t>& offsets) {
    offsets = {0};
    for (int d = 0; d < p; ++d) {
      for (int k = 0; k < (comm.rank() + 2 * d) % 4; ++k) {
        send.push_back(static_cast<Real>(comm.rank() * 100 + d * 10 + k));
      }
      offsets.push_back(send.size());
    }
  };
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets;
    payload(comm, send, offsets);
    Gathered<Real> out;
    comm.alltoallv_into(std::span<const Real>(send),
                        std::span<const std::size_t>(offsets), out,
                        CommCategory::kHalo);
    blocking_data[static_cast<std::size_t>(comm.rank())] = out.data;
  }, &blocking_meters);
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets;
    payload(comm, send, offsets);
    PendingOp op = comm.ialltoallv_post(
        std::span<const Real>(send), std::span<const std::size_t>(offsets),
        CommCategory::kHalo);
    EXPECT_TRUE(op.pending());
    // Drain out of order: descending sources, self last — the assembled
    // concatenation must still be the blocking result. Chunks the
    // receiver can prove empty from the payload rule go through
    // skip_source (no rendezvous), which must charge identically.
    std::vector<std::vector<Real>> chunks(static_cast<std::size_t>(p));
    for (int src = p - 1; src >= 0; --src) {
      if (src == comm.rank()) continue;
      if ((src + 2 * comm.rank()) % 4 == 0) {
        op.skip_source(src);
        continue;
      }
      const auto view = op.await_source<Real>(src);
      chunks[static_cast<std::size_t>(src)].assign(view.begin(), view.end());
    }
    const auto self = op.await_source<Real>(comm.rank());
    chunks[static_cast<std::size_t>(comm.rank())].assign(self.begin(),
                                                         self.end());
    op.wait();  // all drained: releases the channel, charges nothing more
    comm.quiesce();  // release send/offsets before they go out of scope
    auto& mine = drain_data[static_cast<std::size_t>(comm.rank())];
    for (const auto& chunk : chunks) {
      mine.insert(mine.end(), chunk.begin(), chunk.end());
    }
  }, &drain_meters);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(blocking_data[static_cast<std::size_t>(r)],
              drain_data[static_cast<std::size_t>(r)]);
    EXPECT_EQ(blocking_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kHalo),
              drain_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kHalo));
    EXPECT_EQ(blocking_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kHalo),
              drain_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kHalo));
  }
}

TEST(Alltoallv, AbandonedDrainStillChargesFullVolumeAtWait) {
  // A drain op wait()ed (or destroyed) with sources left undrained must
  // await and charge them — charge parity cannot depend on how many
  // chunks the caller consumed.
  const int p = 3;
  std::vector<CostMeter> full_meters;
  std::vector<CostMeter> abandoned_meters;
  const auto payload = [&](std::vector<Real>& send,
                           std::vector<std::size_t>& offsets) {
    send.assign(2 * static_cast<std::size_t>(p), 1.5);
    offsets.clear();
    for (int d = 0; d <= p; ++d) {
      offsets.push_back(2 * static_cast<std::size_t>(d));
    }
  };
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets;
    payload(send, offsets);
    Gathered<Real> out;
    comm.alltoallv_into(std::span<const Real>(send),
                        std::span<const std::size_t>(offsets), out,
                        CommCategory::kDense);
  }, &full_meters);
  run_world(p, [&](Comm& comm) {
    std::vector<Real> send;
    std::vector<std::size_t> offsets;
    payload(send, offsets);
    {
      PendingOp op = comm.ialltoallv_post(
          std::span<const Real>(send),
          std::span<const std::size_t>(offsets), CommCategory::kDense);
      // Drain only source 0, then let the handle complete itself.
      op.await_source<Real>(0);
    }
    comm.quiesce();
  }, &abandoned_meters);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(full_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kDense),
              abandoned_meters[static_cast<std::size_t>(r)].words(
                  CommCategory::kDense));
    EXPECT_EQ(full_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kDense),
              abandoned_meters[static_cast<std::size_t>(r)].latency_units(
                  CommCategory::kDense));
  }
}

TEST(Alltoallv, DrainDiagnosesMisuse) {
  run_world(2, [&](Comm& comm) {
    std::vector<Real> send(2, 1.0);
    std::vector<std::size_t> offsets = {0, 1, 2};
    PendingOp op = comm.ialltoallv_post(
        std::span<const Real>(send), std::span<const std::size_t>(offsets),
        CommCategory::kDense);
    op.await_source<Real>(1 - comm.rank());
    EXPECT_THROW(op.await_source<Real>(1 - comm.rank()), Error);  // twice
    EXPECT_THROW(op.skip_source(1 - comm.rank()), Error);  // already drained
    EXPECT_THROW(op.await_source<Real>(7), Error);  // out of range
    op.await_source<Real>(comm.rank());
    op.wait();
    // await_source on a non-drain op is diagnosed.
    Gathered<Real> out;
    PendingOp into = comm.ialltoallv_into(
        std::span<const Real>(send), std::span<const std::size_t>(offsets),
        out, CommCategory::kDense);
    EXPECT_THROW(into.await_source<Real>(0), Error);
    into.wait();
    comm.quiesce();
  });
}

TEST(Alltoallv, ChargesReceivedWordsExcludingSelf) {
  const int p = 3;
  run_world(p, [&](Comm& comm) {
    // Every rank sends 5 elements to every destination (self included).
    std::vector<Real> send(5 * static_cast<std::size_t>(p), 1.0);
    std::vector<std::size_t> offsets;
    for (int d = 0; d <= p; ++d) offsets.push_back(5 * static_cast<std::size_t>(d));
    const CostMeter before = comm.meter();
    Gathered<Real> out;
    comm.alltoallv_into(std::span<const Real>(send),
                        std::span<const std::size_t>(offsets), out,
                        CommCategory::kDense);
    CostMeter delta = comm.meter();
    delta.subtract(before);
    EXPECT_DOUBLE_EQ(delta.words(CommCategory::kDense),
                     static_cast<double>(5 * (p - 1)));
    EXPECT_DOUBLE_EQ(delta.latency_units(CommCategory::kDense),
                     static_cast<double>(p - 1));
  });
}

TEST(Alltoallv, BadOffsetsDiagnosed) {
  EXPECT_THROW(run_world(1,
                         [&](Comm& comm) {
                           std::vector<Real> send(3, 1.0);
                           std::vector<std::size_t> offsets = {0, 2};  // != 3
                           Gathered<Real> out;
                           comm.alltoallv_into(
                               std::span<const Real>(send),
                               std::span<const std::size_t>(offsets), out,
                               CommCategory::kDense);
                         }),
               Error);
}

TEST(Alltoallv, InvalidCommDiagnosed) {
  Comm comm;
  std::vector<Real> send(1, 1.0);
  std::vector<std::size_t> offsets = {0, 1};
  Gathered<Real> out;
  EXPECT_THROW(comm.alltoallv_into(std::span<const Real>(send),
                                   std::span<const std::size_t>(offsets), out,
                                   CommCategory::kDense),
               Error);
  EXPECT_THROW(comm.ialltoallv_into(std::span<const Real>(send),
                                    std::span<const std::size_t>(offsets),
                                    out, CommCategory::kDense),
               Error);
}

// ---- Abort coverage: compressed collectives and per-source drains ----

TEST(Abort, CompressedCollectiveAbortAndResidualRebindOnRebuiltWorld) {
  // Kill a rank mid compressed all-reduce, then rebuild a fresh world and
  // rerun the same reduction with the SAME CompressBuf objects: the
  // error-feedback residuals were bound to the dead communicator, so the
  // rebind must reset them — the recovered round is bitwise identical to
  // one using factory-fresh buffers.
  const std::size_t n = 300;
  const auto contrib = [](int rank) {
    std::vector<Real> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = std::sin(0.1 * static_cast<double>(i + 1) * (rank + 1));
    }
    return v;
  };
  const auto round = [&](Comm& world, CompressBuf& buf,
                         std::vector<Real>& out) {
    out = contrib(world.rank());
    buf.error_feedback = true;
    world.allreduce_sum_compressed(std::span<Real>(out), CompressMode::kInt8,
                                   buf);
  };

  std::vector<Real> fresh_result;
  run_world(2, [&](Comm& world) {
    CompressBuf fresh;
    std::vector<Real> out;
    round(world, fresh, out);
    if (world.rank() == 0) fresh_result = out;
  });

  std::array<CompressBuf, 2> bufs;  // survive across worlds, like a trainer's
  set_fault_plan(std::make_shared<FaultPlan>(FaultPlan().kill(
      1, CommCategory::kCompressed, FaultSite::kWait, 1)));
  try {
    EXPECT_THROW(
        run_world(2,
                  [&](Comm& world) {
                    std::vector<Real> out;
                    round(world,
                          bufs[static_cast<std::size_t>(world.rank())], out);
                    round(world,
                          bufs[static_cast<std::size_t>(world.rank())], out);
                  }),
        CommAborted);
  } catch (...) {
    clear_fault_plan();
    throw;
  }
  clear_fault_plan();

  std::vector<Real> recovered;
  run_world(2, [&](Comm& world) {
    std::vector<Real> out;
    round(world, bufs[static_cast<std::size_t>(world.rank())], out);
    if (world.rank() == 0) recovered = out;
  });
  EXPECT_EQ(recovered, fresh_result);
}

TEST(Abort, PeerFailureMidSourceDrainUnwinds) {
  // A rank throwing between two await_source calls must not strand the
  // peers parked in their own drains: everyone posted before anyone
  // drained, so the partially-drained ops complete during unwind and the
  // caller sees the original error.
  try {
    run_world(3, [](Comm& comm) {
      const int p = comm.size();
      std::vector<Real> send;
      std::vector<std::size_t> offsets{0};
      for (int d = 0; d < p; ++d) {
        send.push_back(static_cast<Real>(comm.rank() * 10 + d));
        offsets.push_back(send.size());
      }
      PendingOp op = comm.ialltoallv_post(
          std::span<const Real>(send), std::span<const std::size_t>(offsets),
          CommCategory::kHalo);
      for (int src = 0; src < p; ++src) {
        if (comm.rank() == 2 && src == 1) {
          throw Error("simulated failure mid-drain");
        }
        op.await_source<Real>(src);
      }
      op.wait();
      comm.quiesce();
    });
    FAIL() << "rank failure did not propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("simulated failure mid-drain"),
              std::string::npos);
  }
}

// ---- Diagnostics: message shapes name rank, op kind, and category ----

TEST(Diagnostics, OrderMismatchNamesRanksOpsAndCategory) {
  try {
    run_world(2, [](Comm& comm) {
      std::vector<Real> a(4, Real{1});
      std::vector<Real> out(4, Real{0});
      if (comm.rank() == 0) {
        comm.iallreduce_sum(std::span<const Real>(a), std::span<Real>(out),
                            CommCategory::kDense)
            .wait();
      } else {
        Gathered<Real> g;
        comm.iallgatherv_into(std::span<const Real>(a), g,
                              CommCategory::kDense)
            .wait();
      }
      comm.quiesce();
    });
    FAIL() << "program-order mismatch was not diagnosed";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("disagree on op order"), std::string::npos) << what;
    // Whichever rank reports first, the message names the waiting rank,
    // both op kinds, and the traffic category.
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
    EXPECT_NE(what.find("waiting on"), std::string::npos) << what;
    EXPECT_NE(what.find("[dense]"), std::string::npos) << what;
    EXPECT_NE(what.find("posted"), std::string::npos) << what;
  }
}

TEST(Diagnostics, SizeMismatchNamesOpCategoryAndBothRanks) {
  try {
    run_world(2, [](Comm& comm) {
      std::vector<Real> data(comm.rank() == 0 ? 4 : 5, Real{1});
      comm.broadcast(std::span<Real>(data), 0, CommCategory::kDense);
    });
    FAIL() << "size mismatch was not diagnosed";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("[dense]"), std::string::npos) << what;
    EXPECT_NE(what.find("disagree on element count"), std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(Diagnostics, InvalidCommNamesTheOperation) {
  Comm comm;
  std::vector<Real> data(4, Real{1});
  try {
    comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
    FAIL() << "invalid Comm was not diagnosed";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("allreduce_sum"), std::string::npos) << what;
    EXPECT_NE(what.find("invalid Comm"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace cagnet
