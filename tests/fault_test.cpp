// Fault-injection and recovery drills: the transport seam's FaultPlan
// kills/delays/poisons ranks at chosen points of the communication
// schedule, every survivor must unwind with a typed CommAborted (never a
// hang), and the checkpoint/restart driver must resume bitwise-identical
// (exact mode) to an uninterrupted run across all four algebra families.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/comm/fault.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/core/recovery.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/error.hpp"

namespace cagnet {
namespace {

/// Installs a fault plan for the enclosed run_world calls and disarms it
/// on exit, so a failing assertion can't leak faults into later tests.
class FaultPlanGuard {
 public:
  explicit FaultPlanGuard(FaultPlan plan) {
    set_fault_plan(std::make_shared<FaultPlan>(std::move(plan)));
  }
  ~FaultPlanGuard() { clear_fault_plan(); }
};

/// Pin the exact wire for resume-bitwise drills: the error-feedback
/// residual (CAGNET_COMPRESS) and the stale halo cache (CAGNET_STALE /
/// CAGNET_PREAGG) are per-run transient state never captured by a
/// checkpoint, so a restarted lossy run legitimately diverges from the
/// uninterrupted oracle.
class ExactModeGuard {
 public:
  ExactModeGuard()
      : mode_(compress_mode()),
        stale_(dist::stale_k()),
        preagg_(dist::preagg_enabled()) {
    set_compress_mode(CompressMode::kOff);
    dist::set_stale_k(0);
    dist::set_preagg_enabled(false);
  }
  ~ExactModeGuard() {
    set_compress_mode(mode_);
    dist::set_stale_k(stale_);
    dist::set_preagg_enabled(preagg_);
  }

 private:
  CompressMode mode_;
  int stale_;
  bool preagg_;
};

class CompressModeGuard {
 public:
  explicit CompressModeGuard(CompressMode mode) : mode_(compress_mode()) {
    set_compress_mode(mode);
  }
  ~CompressModeGuard() { set_compress_mode(mode_); }

 private:
  CompressMode mode_;
};

class OverlapGuard {
 public:
  explicit OverlapGuard(bool on) : was_(dist::overlap_enabled()) {
    dist::set_overlap_enabled(on);
  }
  ~OverlapGuard() { dist::set_overlap_enabled(was_); }

 private:
  bool was_;
};

Graph small_graph(Index n, Index communities, Index f, Index classes,
                  std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "fault-test";
  Coo coo = planted_partition(n, communities, 8.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v % classes;
  }
  return g;
}

struct Trace {
  std::vector<Real> losses;
  std::vector<Matrix> weights;
};

/// Uninterrupted oracle: train straight through, rank 0's view.
Trace train_oracle(const std::string& algebra, const DistProblem& problem,
                   const GnnConfig& config, int p, int epochs) {
  Trace trace;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    for (int e = 0; e < epochs; ++e) {
      losses.push_back(trainer->train_epoch().loss);
    }
    if (world.rank() == 0) {
      trace.losses = std::move(losses);
      trace.weights = trainer->weights();
    }
  });
  return trace;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- FaultPlan spec grammar ----

TEST(FaultSpec, ParsesActionsCategoriesSites) {
  const FaultPlan plan = FaultPlan::parse(
      "kill:2:trpose:post:3;delay:0:any:wait:1:7;poison:1:halo:charge:2");
  EXPECT_EQ(plan.trigger_count(), 3u);
  EXPECT_EQ(FaultPlan::parse("").trigger_count(), 0u);
  EXPECT_EQ(FaultPlan::parse(";;").trigger_count(), 0u);
  // "transpose" is accepted as an alias for the meter's "trpose".
  EXPECT_EQ(FaultPlan::parse("kill:0:transpose:post:1").trigger_count(), 1u);
}

TEST(FaultSpec, MalformedSpecThrowsCatchableError) {
  EXPECT_THROW(FaultPlan::parse("bogus"), Error);
  EXPECT_THROW(FaultPlan::parse("kill:1:dense:post"), Error);
  EXPECT_THROW(FaultPlan::parse("explode:1:dense:post:1"), Error);
  EXPECT_THROW(FaultPlan::parse("kill:1:warp:post:1"), Error);
  EXPECT_THROW(FaultPlan::parse("kill:1:dense:sideways:1"), Error);
  EXPECT_THROW(FaultPlan::parse("kill:1:dense:post:0"), Error);
  EXPECT_THROW(FaultPlan::parse("kill:1:dense:post:1:5"), Error);
  try {
    FaultPlan::parse("kill:one:dense:post:1");
    FAIL() << "malformed rank did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CAGNET_FAULT"), std::string::npos);
  }
}

TEST(FaultSpec, SeededNthIsDeterministicAndInRange) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const std::uint64_t n = seeded_nth(seed, 1, 8);
    EXPECT_EQ(n, seeded_nth(seed, 1, 8));
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 8u);
  }
  EXPECT_EQ(FaultPlan::parse("kill:0:dense:post:s42").trigger_count(), 1u);
}

// ---- Kill: typed aborts, never a hang ----

TEST(FaultAbort, KillAtBlockingPostNamesRankOpCategorySite) {
  FaultPlanGuard guard(FaultPlan().kill(2, CommCategory::kTranspose,
                                        FaultSite::kPost, /*nth=*/2));
  try {
    run_world(4, [](Comm& comm) {
      std::vector<Real> data(8, static_cast<Real>(comm.rank()));
      for (int i = 0; i < 4; ++i) {
        comm.allreduce_sum(std::span<Real>(data), CommCategory::kTranspose);
      }
    });
    FAIL() << "injected kill did not abort the world";
  } catch (const CommAborted& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.op(), "allreduce_sum");
    EXPECT_EQ(e.category(), CommCategory::kTranspose);
    EXPECT_EQ(e.site(), FaultSite::kPost);
    EXPECT_EQ(e.cause(), "injected rank kill");
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos);
    EXPECT_NE(what.find("allreduce_sum"), std::string::npos);
    EXPECT_NE(what.find("trpose"), std::string::npos);
    EXPECT_NE(what.find("post"), std::string::npos);
  }
}

TEST(FaultAbort, PeersUnwindWithTypedPeerFailure) {
  const int p = 4;
  FaultPlanGuard guard(
      FaultPlan().kill(1, CommCategory::kDense, FaultSite::kPost, 2));
  std::array<std::string, 4> causes;
  std::array<int, 4> ranks{-1, -1, -1, -1};
  EXPECT_THROW(
      run_world(p,
                [&](Comm& comm) {
                  try {
                    std::vector<Real> data(4, Real{1});
                    for (int i = 0; i < 4; ++i) {
                      comm.broadcast(std::span<Real>(data), 0,
                                     CommCategory::kDense);
                    }
                  } catch (const CommAborted& e) {
                    const auto r = static_cast<std::size_t>(comm.rank());
                    causes[r] = e.cause();
                    ranks[r] = e.rank();
                    throw;
                  }
                }),
      CommAborted);
  EXPECT_EQ(causes[1], "injected rank kill");
  for (int r : {0, 2, 3}) {
    const auto i = static_cast<std::size_t>(r);
    // Every survivor observes a typed abort naming ITS rank and a peer
    // failure as the cause — not a hang, not a bare runtime_error.
    EXPECT_EQ(causes[i], "a peer rank failed") << "rank " << r;
    EXPECT_EQ(ranks[i], r) << "rank " << r;
  }
}

TEST(FaultAbort, KillInsideSplitCollectiveDoesNotHangOtherGroups) {
  // Regression for the old std::barrier limitation: a rank dying while
  // OTHER split groups are parked inside their own blocking collectives
  // must poison-wake everyone. Before the PhaseGate rework this hung.
  // Trigger ranks are communicator-local, so sub-rank 2 names the last
  // member of whichever 3-rank split group reaches the 5th post first.
  FaultPlanGuard guard(
      FaultPlan().kill(2, CommCategory::kSparse, FaultSite::kPost, 5));
  try {
    run_world(6, [](Comm& comm) {
      Comm sub = comm.split(comm.rank() % 2, comm.rank());
      std::vector<Real> data(16, static_cast<Real>(comm.rank()));
      for (int i = 0; i < 50; ++i) {
        sub.allreduce_sum(std::span<Real>(data), CommCategory::kSparse);
      }
    });
    FAIL() << "injected kill did not abort the world";
  } catch (const CommAborted& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.cause(), "injected rank kill");
  }
}

TEST(FaultAbort, KillAtNonblockingWait) {
  FaultPlanGuard guard(
      FaultPlan().kill(0, CommCategory::kSparse, FaultSite::kWait, 1));
  try {
    run_world(2, [](Comm& comm) {
      std::vector<Real> src(8, static_cast<Real>(comm.rank() + 1));
      std::vector<Real> dst(8, Real{0});
      PendingOp op = comm.iallreduce_sum(std::span<const Real>(src),
                                         std::span<Real>(dst),
                                         CommCategory::kSparse);
      op.wait();
      comm.quiesce();
    });
    FAIL() << "injected kill did not abort the world";
  } catch (const CommAborted& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.op(), "iallreduce_sum");
    EXPECT_EQ(e.site(), FaultSite::kWait);
    EXPECT_EQ(e.cause(), "injected rank kill");
  }
}

TEST(FaultAbort, KillMidSourceDrain) {
  // Die between two await_source calls of an ialltoallv drain; the
  // partially-drained PendingOp must clean up and peers must unwind.
  FaultPlanGuard guard(
      FaultPlan().kill(1, CommCategory::kHalo, FaultSite::kWait, 2));
  try {
    run_world(3, [](Comm& comm) {
      const int p = comm.size();
      std::vector<Real> send;
      std::vector<std::size_t> offsets{0};
      for (int d = 0; d < p; ++d) {
        for (int k = 0; k <= d; ++k) {
          send.push_back(static_cast<Real>(comm.rank() * 10 + d));
        }
        offsets.push_back(send.size());
      }
      PendingOp op = comm.ialltoallv_post(
          std::span<const Real>(send), std::span<const std::size_t>(offsets),
          CommCategory::kHalo);
      for (int src = 0; src < p; ++src) {
        op.await_source<Real>(src);
      }
      op.wait();
      comm.quiesce();
    });
    FAIL() << "injected kill did not abort the world";
  } catch (const CommAborted& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.op(), "ialltoallv_post drain");
    EXPECT_EQ(e.category(), CommCategory::kHalo);
    EXPECT_EQ(e.site(), FaultSite::kWait);
  }
}

TEST(FaultAbort, CompressedCollectiveAborts) {
  FaultPlanGuard guard(
      FaultPlan().kill(1, CommCategory::kCompressed, FaultSite::kWait, 1));
  try {
    run_world(2, [](Comm& comm) {
      std::vector<Real> data(64, static_cast<Real>(comm.rank() + 1) * 0.25);
      CompressBuf buf;
      comm.allreduce_sum_compressed(std::span<Real>(data),
                                    CompressMode::kInt8, buf);
    });
    FAIL() << "injected kill did not abort the world";
  } catch (const CommAborted& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.category(), CommCategory::kCompressed);
    EXPECT_EQ(e.cause(), "injected rank kill");
  }
}

// ---- Delay: timing stress only, results and meters bitwise ----

TEST(FaultDelay, ResultsAndMetersStayBitwise) {
  const int p = 2;
  const auto workload = [](Comm& comm, std::vector<Real>& out) {
    std::vector<Real> data(32, static_cast<Real>(comm.rank() + 1) * 0.5);
    comm.allreduce_sum(std::span<Real>(data), CommCategory::kDense);
    std::vector<Real> swapped =
        comm.exchange(std::span<const Real>(data), 1 - comm.rank(),
                      CommCategory::kHalo);
    PendingOp op = comm.iallreduce_sum(std::span<const Real>(swapped),
                                       std::span<Real>(data),
                                       CommCategory::kSparse);
    op.wait();
    comm.quiesce();
    if (comm.rank() == 0) out = data;
  };

  std::vector<Real> baseline;
  std::vector<CostMeter> baseline_meters;
  run_world(p, [&](Comm& c) { workload(c, baseline); }, &baseline_meters);

  std::vector<Real> delayed;
  std::vector<CostMeter> delayed_meters;
  {
    FaultPlanGuard guard(
        FaultPlan()
            .delay(0, CommCategory::kDense, FaultSite::kPost, 1, 5)
            .delay(1, CommCategory::kSparse, FaultSite::kWait, 1, 5));
    run_world(p, [&](Comm& c) { workload(c, delayed); }, &delayed_meters);
  }

  EXPECT_EQ(delayed, baseline);
  ASSERT_EQ(delayed_meters.size(), baseline_meters.size());
  for (std::size_t r = 0; r < baseline_meters.size(); ++r) {
    for (std::size_t c = 0; c < CostMeter::kNumCategories; ++c) {
      const auto cat = static_cast<CommCategory>(c);
      EXPECT_EQ(delayed_meters[r].words(cat), baseline_meters[r].words(cat))
          << "rank " << r << " cat " << comm_category_name(cat);
      EXPECT_EQ(delayed_meters[r].latency_units(cat),
                baseline_meters[r].latency_units(cat))
          << "rank " << r << " cat " << comm_category_name(cat);
    }
  }
}

// ---- Poison: receiver-side integrity failure ----

TEST(FaultPoison, PoisonedPayloadIsTypedAbort) {
  FaultPlanGuard guard(
      FaultPlan().poison(1, CommCategory::kHalo, FaultSite::kPost, 1));
  try {
    run_world(2, [](Comm& comm) {
      std::vector<Real> data(16, static_cast<Real>(comm.rank()));
      comm.exchange(std::span<const Real>(data), 1 - comm.rank(),
                    CommCategory::kHalo);
    });
    FAIL() << "poisoned payload did not abort the world";
  } catch (const CommAborted& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.category(), CommCategory::kHalo);
    EXPECT_EQ(e.cause(), "poisoned payload detected");
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos);
  }
}

// ---- The thread pool stays reusable after an abort ----

TEST(FaultAbort, WorldIsImmediatelyRelaunchableAfterAbort) {
  {
    FaultPlanGuard guard(
        FaultPlan().kill(0, CommCategory::kDense, FaultSite::kPost, 1));
    EXPECT_THROW(run_world(4,
                           [](Comm& comm) {
                             std::vector<Real> d(4, Real{1});
                             comm.allreduce_sum(std::span<Real>(d),
                                                CommCategory::kDense);
                           }),
                 CommAborted);
  }
  // Same process, fresh world, faults disarmed: everything works.
  std::vector<Real> sum(4, Real{0});
  run_world(4, [&](Comm& comm) {
    std::vector<Real> d(4, Real{1});
    comm.allreduce_sum(std::span<Real>(d), CommCategory::kDense);
    if (comm.rank() == 0) sum = d;
  });
  EXPECT_EQ(sum, std::vector<Real>(4, Real{4}));
}

// ---- Recovery drills: checkpoint/restart closes the loop ----

TEST(RecoveryDrill, RestartIsBitwiseAcrossAlgebrasAndOverlapModes) {
  ExactModeGuard exact;
  const Graph g = small_graph(160, 8, 8, 4, 77);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const int epochs = 5;

  const struct {
    const char* algebra;
    int p;
  } cases[] = {{"1d", 4}, {"1.5d-c2", 4}, {"2d", 4}, {"3d", 8}};

  for (const bool overlap : {true, false}) {
    OverlapGuard overlap_guard(overlap);
    for (const auto& c : cases) {
      SCOPED_TRACE(std::string(c.algebra) + (overlap ? "/overlap" : "/sync"));
      const Trace oracle =
          train_oracle(c.algebra, problem, config, c.p, epochs);

      const std::string path =
          temp_path(std::string("cagnet_drill_") + c.algebra +
                    (overlap ? "_ov" : "_sync") + ".ckpt");
      RecoveryOptions options;
      options.ckpt_path = path;
      options.ckpt_every = 2;
      RecoveryReport report;
      {
        // Kill rank 1 at its 40th publication of any category: lands
        // mid-training, after checkpoints have started landing.
        FaultPlanGuard guard(
            FaultPlan().kill_any(1, FaultSite::kPost, 40));
        report = train_with_recovery(c.algebra, problem, config, c.p,
                                     epochs, options);
      }
      EXPECT_GE(report.restarts, 1);
      ASSERT_TRUE(report.last_abort.has_value());
      EXPECT_EQ(report.last_abort->rank(), 1);
      EXPECT_GE(report.checkpoints_written, 1);

      // The recovered run is indistinguishable from the oracle: same
      // per-epoch losses, bitwise-identical final weights.
      EXPECT_EQ(report.losses, oracle.losses);
      ASSERT_EQ(report.weights.size(), oracle.weights.size());
      for (std::size_t l = 0; l < oracle.weights.size(); ++l) {
        EXPECT_LE(Matrix::max_abs_diff(report.weights[l], oracle.weights[l]),
                  Real{0})
            << "layer " << l;
      }
      // Atomic writes: no half-written temp file survives.
      EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
      std::remove(path.c_str());
    }
  }
}

TEST(RecoveryDrill, RestartFromScratchWhenKilledBeforeFirstCheckpoint) {
  ExactModeGuard exact;
  const Graph g = small_graph(96, 4, 8, 4, 31);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const int epochs = 3;
  const Trace oracle = train_oracle("1d", problem, config, 4, epochs);

  const std::string path = temp_path("cagnet_drill_scratch.ckpt");
  RecoveryOptions options;
  options.ckpt_path = path;
  options.ckpt_every = 10;  // never fires within 3 epochs
  RecoveryReport report;
  {
    FaultPlanGuard guard(FaultPlan().kill_any(0, FaultSite::kPost, 5));
    report = train_with_recovery("1d", problem, config, 4, epochs, options);
  }
  // No checkpoint existed yet: recovery restarts from the deterministic
  // initial weights and must still match the oracle bitwise.
  EXPECT_GE(report.restarts, 1);
  EXPECT_EQ(report.checkpoints_written, 0);
  EXPECT_EQ(report.losses, oracle.losses);
  ASSERT_EQ(report.weights.size(), oracle.weights.size());
  for (std::size_t l = 0; l < oracle.weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(report.weights[l], oracle.weights[l]),
              Real{0});
  }
  std::remove(path.c_str());
}

TEST(RecoveryDrill, Int8CompressedRunRecovers) {
  // Under a lossy codec the EF residuals are transient per-world state,
  // so recovery is convergence-preserving rather than bitwise; the drill
  // asserts completion with a sane loss trajectory after the restart.
  CompressModeGuard int8(CompressMode::kInt8);
  const Graph g = small_graph(96, 4, 8, 4, 31);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g);
  const int epochs = 4;

  const std::string path = temp_path("cagnet_drill_int8.ckpt");
  RecoveryOptions options;
  options.ckpt_path = path;
  options.ckpt_every = 1;
  RecoveryReport report;
  {
    FaultPlanGuard guard(FaultPlan().kill(
        1, CommCategory::kCompressed, FaultSite::kWait, 3));
    report = train_with_recovery("1d", problem, config, 4, epochs, options);
  }
  EXPECT_GE(report.restarts, 1);
  ASSERT_EQ(report.losses.size(), static_cast<std::size_t>(epochs));
  for (const Real loss : report.losses) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, Real{0});
  }
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(RecoveryDrill, RestartsExhaustedRethrowsAbort) {
  ExactModeGuard exact;
  const Graph g = small_graph(64, 4, 8, 4, 11);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  const DistProblem problem = DistProblem::prepare(g);

  const std::string path = temp_path("cagnet_drill_exhaust.ckpt");
  RecoveryOptions options;
  options.ckpt_path = path;
  options.ckpt_every = 0;
  options.max_restarts = 1;
  // Two distinct kills: the counters are process-cumulative, so the
  // second trigger fires on the rebuilt world, and with max_restarts = 1
  // the driver must give up and surface the abort to the caller.
  FaultPlanGuard guard(FaultPlan()
                           .kill_any(0, FaultSite::kPost, 3)
                           .kill_any(0, FaultSite::kPost, 6));
  EXPECT_THROW(train_with_recovery("1d", problem, config, 4, 3, options),
               CommAborted);
  std::remove(path.c_str());
}

TEST(CkptEveryKnob, RejectsNegativeAndParsesEnvLazily) {
  const int was = ckpt_every();
  set_ckpt_every(4);
  EXPECT_EQ(ckpt_every(), 4);
  EXPECT_THROW(set_ckpt_every(-1), Error);
  set_ckpt_every(was);
}

}  // namespace
}  // namespace cagnet
