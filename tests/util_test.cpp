// Unit tests for src/util: RNG determinism and stream independence, the
// phase profiler, CLI parsing, and the error check machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/util/cli.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"
#include "src/util/profiler.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace cagnet {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(-2.5, 1.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 1.5);
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(5);
  Rng p2(5);
  Rng a = p1.split(17);
  Rng b = p2.split(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(123);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Profiler, AccumulatesPerPhase) {
  Profiler p;
  p.add(Phase::kSpmm, 1.5);
  p.add(Phase::kSpmm, 0.5);
  p.add(Phase::kDenseComm, 2.0);
  EXPECT_DOUBLE_EQ(p.seconds(Phase::kSpmm), 2.0);
  EXPECT_DOUBLE_EQ(p.seconds(Phase::kDenseComm), 2.0);
  EXPECT_DOUBLE_EQ(p.seconds(Phase::kSparseComm), 0.0);
  EXPECT_DOUBLE_EQ(p.total_seconds(), 4.0);
}

TEST(Profiler, MergeMaxTakesPerPhaseMax) {
  Profiler a;
  Profiler b;
  a.add(Phase::kSpmm, 3.0);
  a.add(Phase::kMisc, 1.0);
  b.add(Phase::kSpmm, 2.0);
  b.add(Phase::kMisc, 5.0);
  a.merge_max(b);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kSpmm), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kMisc), 5.0);
}

TEST(Profiler, ScopedPhaseAddsTime) {
  Profiler p;
  {
    ScopedPhase scope(p, Phase::kTranspose);
    WallTimer t;
    while (t.seconds() < 0.01) {
    }
  }
  EXPECT_GE(p.seconds(Phase::kTranspose), 0.009);
}

TEST(Profiler, PhaseNamesMatchPaperFigure3) {
  EXPECT_STREQ(phase_name(Phase::kMisc), "misc");
  EXPECT_STREQ(phase_name(Phase::kTranspose), "trpose");
  EXPECT_STREQ(phase_name(Phase::kDenseComm), "dcomm");
  EXPECT_STREQ(phase_name(Phase::kSparseComm), "scomm");
  EXPECT_STREQ(phase_name(Phase::kSpmm), "spmm");
  EXPECT_STREQ(phase_name(Phase::kHaloPack), "hpack");
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  // A bare boolean flag must come last (or use --flag=): a following
  // non-flag token would be consumed as its value.
  const char* argv[] = {"prog", "positional", "--alpha", "3", "--beta=4.5",
                        "--flag"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0), 4.5);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", 7), 7);
}

TEST(Cli, ParsesIntLists) {
  const char* argv[] = {"prog", "--procs", "4,16,64"};
  CliArgs args(3, const_cast<char**>(argv));
  const auto procs = args.get_int_list("procs", {});
  ASSERT_EQ(procs.size(), 3u);
  EXPECT_EQ(procs[0], 4);
  EXPECT_EQ(procs[1], 16);
  EXPECT_EQ(procs[2], 64);
  EXPECT_EQ(args.get_int_list("missing", {1, 2}).size(), 2u);
}

TEST(Error, CheckThrowsWithContext) {
  try {
    CAGNET_CHECK(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(CAGNET_CHECK(true, "fine"));
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  WallTimer spin;
  while (spin.seconds() < 0.01) {
  }
  EXPECT_GE(t.seconds(), 0.009);
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  override_thread_budget(8);
  const Index n = 100000;
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  parallel_for(n, 8, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  override_thread_budget(0);
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, ChunksRunExactlyOnceEvenWhenConcurrent) {
  override_thread_budget(8);
  std::atomic<int> total{0};
  // Several concurrent submitters sharing the one pool, as simulated-world
  // rank threads do.
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        parallel_for_chunks(7, [&](int) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  override_thread_budget(0);
  EXPECT_EQ(total.load(), 4 * 10 * 7);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  override_thread_budget(4);
  EXPECT_THROW(parallel_for_chunks(4,
                                   [&](int c) {
                                     if (c == 2) throw Error("chunk failed");
                                   }),
               Error);
  override_thread_budget(0);
}

TEST(ThreadBudget, OverrideAndPlanChunks) {
  override_thread_budget(6);
  EXPECT_EQ(thread_budget(), 6);
  EXPECT_EQ(available_thread_budget(), 6);
  {
    ScopedThreadBudgetShare share(3);
    EXPECT_EQ(available_thread_budget(), 2);
  }
  // Work-based clamp: tiny work stays serial, big work uses the budget,
  // max_chunks caps everything.
  EXPECT_EQ(plan_chunks(/*total_work=*/10.0, /*min_work_per_chunk=*/1000.0,
                        /*max_chunks=*/100),
            1);
  EXPECT_EQ(plan_chunks(1e9, 1000.0, 100), 6);
  EXPECT_EQ(plan_chunks(1e9, 1000.0, 3), 3);
  override_thread_budget(0);
  EXPECT_GE(thread_budget(), 1);
}

}  // namespace
}  // namespace cagnet
