// Tests for the comm-runtime contract checker (src/comm/contract_check.*)
// and the concurrency-tooling regression guards: each misuse class the
// checker diagnoses gets a test asserting the typed error, the checker is
// proven purely observational (bitwise-identical results and meters on
// and off), and a pool/profiler stress keeps the TSan-clean accumulation
// paths pinned under the sanitizer jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "src/comm/comm.hpp"
#include "src/util/parallel.hpp"
#include "src/util/profiler.hpp"

namespace cagnet {
namespace {

/// Force the checker on (or off) for the test's scope, restoring the
/// env/build-type default on exit — keeps the suite meaningful under any
/// ambient CAGNET_CHECK and build type.
class ScopedChecker {
 public:
  explicit ScopedChecker(int value) { contract::set_enabled_for_testing(value); }
  ~ScopedChecker() { contract::set_enabled_for_testing(-1); }
};

TEST(Contract, DoubleWaitDiagnosed) {
  ScopedChecker armed(1);
  const int p = 3;
  run_world(p, [](Comm& comm) {
    std::vector<Real> src, dst;
    if (comm.rank() == 0) {
      src.assign(5, static_cast<Real>(1.5));
    } else {
      dst.assign(5, Real{0});
    }
    PendingOp op = comm.ibroadcast_from(std::span<const Real>(src),
                                        std::span<Real>(dst), /*root=*/0,
                                        CommCategory::kDense);
    op.wait();
    EXPECT_FALSE(op.pending());
    try {
      op.wait();
      FAIL() << "second wait() on a completed op was not diagnosed";
    } catch (const ContractViolation& e) {
      EXPECT_EQ(e.rank(), comm.rank());
      EXPECT_STREQ(e.op(), "ibroadcast_from");
      EXPECT_EQ(e.category(), CommCategory::kDense);
      EXPECT_NE(std::string(e.what()).find(
                    "wait() called on an already-completed op"),
                std::string::npos)
          << e.what();
    }
    comm.quiesce();
  });
}

TEST(Contract, MovedFromHandleIsNotADoubleWait) {
  ScopedChecker armed(1);
  run_world(2, [](Comm& comm) {
    std::vector<Real> src, dst;
    if (comm.rank() == 0) {
      src.assign(3, static_cast<Real>(2.0));
    } else {
      dst.assign(3, Real{0});
    }
    PendingOp a = comm.ibroadcast_from(std::span<const Real>(src),
                                       std::span<Real>(dst), /*root=*/0,
                                       CommCategory::kDense);
    PendingOp b = std::move(a);
    // The moved-from handle is an empty handle, not a completed one:
    // waiting it must stay the documented no-op even with the checker
    // armed.
    EXPECT_NO_THROW(a.wait());  // NOLINT(bugprone-use-after-move)
    b.wait();
    comm.quiesce();
  });
}

TEST(Contract, TeardownWithUnwaitedOpDiagnosed) {
  ScopedChecker armed(1);
  // The leaked handle must outlive run_world for the teardown audit to
  // have something to catch; a passive-root uncharged broadcast is the
  // one op whose late completion (at destruction, below) touches no
  // peer slots and no meter.
  PendingOp leaked;
  static std::vector<Real> src_storage;  // outlives the leaked handle
  src_storage.assign(4, static_cast<Real>(3.0));
  try {
    run_world(3, [&](Comm& comm) {
      std::vector<Real> dst;
      if (comm.rank() != 0) dst.assign(4, Real{0});
      PendingOp op = comm.ibroadcast_from(std::span<const Real>(src_storage),
                                          std::span<Real>(dst), /*root=*/0,
                                          CommCategory::kDense,
                                          /*charged=*/false);
      if (comm.rank() == 0) {
        leaked = std::move(op);  // never waited inside the world
      } else {
        op.wait();
      }
    });
    FAIL() << "teardown with a posted-but-unwaited op was not diagnosed";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_NE(std::string(e.what()).find("posted-but-unwaited"),
              std::string::npos)
        << e.what();
  }
}

TEST(Contract, ChargeWithoutOpenOpDiagnosed) {
  contract::Checker checker(2);
  // Legal inside a blocking collective...
  checker.on_blocking_begin(0, "broadcast", CommCategory::kDense);
  EXPECT_NO_THROW(checker.on_charge(0, "broadcast", CommCategory::kDense));
  checker.on_blocking_end(0);
  // ...and while a nonblocking op is open...
  checker.on_post(1, /*ticket=*/0, "iallreduce_sum", CommCategory::kDense,
                  /*finished_count=*/0, /*recycle_target=*/0);
  EXPECT_NO_THROW(
      checker.on_charge(1, "iallreduce_sum", CommCategory::kDense));
  checker.on_complete(1);
  // ...but orphaned charges are a violation on both ranks.
  for (int rank = 0; rank < 2; ++rank) {
    try {
      checker.on_charge(rank, "stray", CommCategory::kHalo);
      FAIL() << "orphan charge was not diagnosed";
    } catch (const ContractViolation& e) {
      EXPECT_EQ(e.rank(), rank);
      EXPECT_STREQ(e.op(), "stray");
      EXPECT_EQ(e.category(), CommCategory::kHalo);
      EXPECT_NE(std::string(e.what()).find("no open op"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Contract, TicketMonotonicityAndRecycleGateDiagnosed) {
  contract::Checker checker(1);
  checker.on_post(0, 0, "iallreduce_sum", CommCategory::kDense, 0, 0);
  // Ticket 2 after ticket 0 skips 1: out of monotone posting order.
  try {
    checker.on_post(0, 2, "iallreduce_sum", CommCategory::kDense, 0, 0);
    FAIL() << "out-of-order ticket was not diagnosed";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("monotone posting order"),
              std::string::npos)
        << e.what();
  }
  // Republish over an unfinished generation: finished < required.
  contract::Checker fresh(1);
  try {
    fresh.on_post(0, 0, "ibroadcast_from", CommCategory::kDense,
                  /*finished_count=*/3, /*recycle_target=*/4);
    FAIL() << "slot republish over a parked reader was not diagnosed";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("republished"), std::string::npos)
        << e.what();
  }
}

TEST(Contract, ReleaseOfNeverPostedOpDiagnosed) {
  contract::Checker checker(1);
  checker.on_post(0, 0, "iallgatherv_into", CommCategory::kCompressed, 0, 0);
  EXPECT_NO_THROW(checker.on_release(0, 0, "quiesce_op"));
  try {
    checker.on_release(0, 7, "quiesce_op");
    FAIL() << "release of a never-posted ticket was not diagnosed";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("never posted"), std::string::npos)
        << e.what();
  }
}

/// One metered mixed workload (blocking + nonblocking + per-source drain
/// + release), returning results and meters for bitwise comparison.
void mixed_workload(std::vector<Real>& out, std::vector<CostMeter>& meters) {
  const int p = 4;
  out.assign(static_cast<std::size_t>(p) * 8, Real{0});
  run_world(
      p,
      [&](Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        std::vector<Real> acc(8);
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] = static_cast<Real>(comm.rank() + 1) * 0.125 *
                   static_cast<Real>(i + 1);
        }
        comm.allreduce_sum(std::span<Real>(acc), CommCategory::kDense);

        std::vector<Real> total(8);
        PendingOp red = comm.iallreduce_sum(std::span<const Real>(acc),
                                            std::span<Real>(total),
                                            CommCategory::kSparse);
        red.wait();

        // Per-source drained alltoallv: rank r sends (r+1) words to every
        // destination.
        std::vector<Real> send(static_cast<std::size_t>(p) * (r + 1),
                               static_cast<Real>(comm.rank()));
        std::vector<std::size_t> offs(static_cast<std::size_t>(p) + 1, 0);
        for (std::size_t d = 1; d <= static_cast<std::size_t>(p); ++d) {
          offs[d] = offs[d - 1] + (r + 1);
        }
        PendingOp x = comm.ialltoallv_post(std::span<const Real>(send),
                                           std::span<const std::size_t>(offs),
                                           CommCategory::kHalo);
        const std::uint64_t ticket = x.ticket();
        Real drained = 0;
        for (int s = 0; s < p; ++s) {
          for (Real v : x.await_source<Real>(s)) drained += v;
        }
        x.wait();
        comm.quiesce_op(ticket);

        for (std::size_t i = 0; i < total.size(); ++i) {
          out[r * 8 + i] = total[i] + drained;
        }
      },
      &meters);
}

TEST(Contract, CheckerIsPurelyObservational) {
  std::vector<Real> out_off, out_on;
  std::vector<CostMeter> meters_off, meters_on;
  {
    ScopedChecker off(0);
    mixed_workload(out_off, meters_off);
  }
  {
    ScopedChecker on(1);
    mixed_workload(out_on, meters_on);
  }
  ASSERT_EQ(out_off.size(), out_on.size());
  for (std::size_t i = 0; i < out_off.size(); ++i) {
    // Bitwise, not approximate: the checker must not perturb a single
    // operation order or charge.
    EXPECT_EQ(std::memcmp(&out_off[i], &out_on[i], sizeof(Real)), 0)
        << "result word " << i << " differs with the checker armed";
  }
  ASSERT_EQ(meters_off.size(), meters_on.size());
  for (std::size_t r = 0; r < meters_off.size(); ++r) {
    for (std::size_t c = 0; c < CostMeter::kNumCategories; ++c) {
      const auto cat = static_cast<CommCategory>(c);
      EXPECT_EQ(meters_off[r].latency_units(cat),
                meters_on[r].latency_units(cat));
      EXPECT_EQ(meters_off[r].words(cat), meters_on[r].words(cat));
    }
  }
}

TEST(Contract, QuiescedWorldPassesTeardownAudit) {
  ScopedChecker armed(1);
  // The happy path: posts, waits, splits, releases — the audit stays
  // silent, including on the split sub-communicators it also covers.
  EXPECT_NO_THROW(run_world(4, [](Comm& comm) {
    Comm row = comm.split(comm.rank() / 2, comm.rank());
    std::vector<Real> v(6, static_cast<Real>(comm.rank()));
    row.allreduce_sum(std::span<Real>(v), CommCategory::kDense);
    std::vector<Real> total(6);
    PendingOp op = comm.iallreduce_sum(std::span<const Real>(v),
                                       std::span<Real>(total),
                                       CommCategory::kSparse);
    op.wait();
    comm.quiesce();
  }));
}

// Regression guard for the pool/profiler accumulation paths (the TSan CI
// job runs this suite): every rank hammers parallel_for on the shared
// pool while accumulating its own Profiler and CostMeter, the exact
// cross-thread pattern a racy phase/meter accumulation would trip under
// ThreadSanitizer. The assertions pin the deterministic totals so the
// test also fails on silent lost updates, not just on TSan reports.
TEST(Contract, PoolAndProfilerAccumulationStress) {
  const int p = 4;
  const int rounds = 25;
  std::vector<CostMeter> meters;
  run_world(
      p,
      [&](Comm& comm) {
        Profiler prof;
        std::vector<double> sums(64);
        for (int round = 0; round < rounds; ++round) {
          {
            ScopedPhase scope(prof, Phase::kSpmm);
            parallel_for_chunks(
                static_cast<int>(sums.size()), [&](int c) {
                  sums[static_cast<std::size_t>(c)] +=
                      static_cast<double>(c + 1);
                });
          }
          std::vector<Real> v(4, static_cast<Real>(comm.rank()));
          comm.allreduce_sum(std::span<Real>(v), CommCategory::kDense);
        }
        double total = 0;
        for (double s : sums) total += s;
        // 25 rounds x sum(1..64) each.
        EXPECT_DOUBLE_EQ(total, static_cast<double>(rounds) * 64.0 * 65.0 /
                                    2.0);
        EXPECT_GT(prof.seconds(Phase::kSpmm), 0.0);
      },
      &meters);
  // Meter accumulation is symmetric across ranks for a symmetric
  // workload; divergence here means a lost or duplicated charge.
  ASSERT_FALSE(meters.empty());
  for (const auto& m : meters) {
    EXPECT_GT(m.latency_units(CommCategory::kDense), 0.0);
    EXPECT_EQ(m.latency_units(CommCategory::kDense),
              meters.front().latency_units(CommCategory::kDense));
    EXPECT_EQ(m.words(CommCategory::kDense),
              meters.front().words(CommCategory::kDense));
  }
}

}  // namespace
}  // namespace cagnet
