// Unit tests for src/dense: Matrix container, GEMM against a naive
// reference over all transpose combinations, activations and their
// derivatives (checked numerically), and the NLL loss.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/dense/gemm.hpp"
#include "src/dense/matrix.hpp"
#include "src/dense/ops.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace cagnet {
namespace {

Matrix random_matrix(Index r, Index c, Rng& rng, Real lo = -1, Real hi = 1) {
  Matrix m(r, c);
  m.fill_uniform(rng, lo, hi);
  return m;
}

// Straightforward triple loop used as the oracle for gemm.
Matrix naive_matmul(const Matrix& a, const Matrix& b, Trans ta, Trans tb) {
  const Index m = ta == Trans::kNo ? a.rows() : a.cols();
  const Index k = ta == Trans::kNo ? a.cols() : a.rows();
  const Index n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real acc = 0;
      for (Index p = 0; p < k; ++p) {
        const Real av = ta == Trans::kNo ? a(i, p) : a(p, i);
        const Real bv = tb == Trans::kNo ? b(p, j) : b(j, p);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  m(1, 0) = 5;
  m(1, 2) = 7;
  auto row = m.row(1);
  EXPECT_EQ(row[0], 5);
  EXPECT_EQ(row[2], 7);
  row[1] = 6;
  EXPECT_EQ(m(1, 1), 6);
}

TEST(Matrix, BlockRoundTrip) {
  Rng rng(1);
  Matrix m = random_matrix(6, 8, rng);
  Matrix blk = m.block(2, 3, 3, 4);
  EXPECT_EQ(blk.rows(), 3);
  EXPECT_EQ(blk.cols(), 4);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) EXPECT_EQ(blk(i, j), m(2 + i, 3 + j));
  }
  Matrix copy(6, 8);
  copy.set_block(2, 3, blk);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) EXPECT_EQ(copy(2 + i, 3 + j), m(2 + i, 3 + j));
  }
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix m(3, 3);
  EXPECT_THROW(m.block(1, 1, 3, 1), Error);
  EXPECT_THROW((void)m.block(0, 2, 1, 2), Error);
}

TEST(Matrix, TransposedSwapsIndices) {
  Rng rng(2);
  Matrix m = random_matrix(4, 7, rng);
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 7; ++j) EXPECT_EQ(t(j, i), m(i, j));
  }
}

TEST(Matrix, GlorotBoundsRespected) {
  Rng rng(3);
  Matrix w(64, 32);
  w.fill_glorot(rng);
  const Real bound = std::sqrt(6.0 / (64 + 32));
  for (Real v : w.flat()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
  // Not all zero.
  EXPECT_GT(w.frobenius_norm(), 0.1);
}

TEST(Matrix, MaxAbsDiffAndAllclose) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  b(1, 1) = 1e-3;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 1e-3);
  EXPECT_TRUE(Matrix::allclose(a, b, 1e-2));
  EXPECT_FALSE(Matrix::allclose(a, b, 1e-4));
}

class GemmAllTranspose
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmAllTranspose, MatchesNaive) {
  const auto [mi, ki, ni, trans_combo] = GetParam();
  const Index m = mi;
  const Index k = ki;
  const Index n = ni;
  const Trans ta = (trans_combo & 1) ? Trans::kYes : Trans::kNo;
  const Trans tb = (trans_combo & 2) ? Trans::kYes : Trans::kNo;

  Rng rng(static_cast<std::uint64_t>(m * 131 + k * 17 + n + trans_combo));
  Matrix a = ta == Trans::kNo ? random_matrix(m, k, rng)
                              : random_matrix(k, m, rng);
  Matrix b = tb == Trans::kNo ? random_matrix(k, n, rng)
                              : random_matrix(n, k, rng);

  const Matrix expected = naive_matmul(a, b, ta, tb);
  const Matrix got = matmul(a, b, ta, tb);
  EXPECT_LE(Matrix::max_abs_diff(expected, got), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAllTranspose,
    ::testing::Combine(::testing::Values(1, 5, 33, 64),
                       ::testing::Values(1, 7, 65),
                       ::testing::Values(1, 4, 31),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Gemm, AlphaBetaComposition) {
  Rng rng(5);
  Matrix a = random_matrix(4, 6, rng);
  Matrix b = random_matrix(6, 3, rng);
  Matrix c = random_matrix(4, 3, rng);
  Matrix c_orig = c;
  gemm(Trans::kNo, Trans::kNo, 2.0, a, b, 0.5, c);
  const Matrix ab = naive_matmul(a, b, Trans::kNo, Trans::kNo);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * ab(i, j) + 0.5 * c_orig(i, j), 1e-12);
    }
  }
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(4, 2);
  Matrix c(2, 2);
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, c), Error);
}

TEST(Gemm, ZeroAlphaScalesOnly) {
  Rng rng(6);
  Matrix a = random_matrix(3, 3, rng);
  Matrix b = random_matrix(3, 3, rng);
  Matrix c = random_matrix(3, 3, rng);
  Matrix expected = c;
  for (Real& v : expected.flat()) v *= 0.25;
  gemm(Trans::kNo, Trans::kNo, 0.0, a, b, 0.25, c);
  EXPECT_LE(Matrix::max_abs_diff(expected, c), 1e-15);
}

TEST(Ops, ReluClampsNegatives) {
  Matrix z(2, 2);
  z(0, 0) = -1;
  z(0, 1) = 2;
  z(1, 0) = 0;
  z(1, 1) = -0.5;
  Matrix out(2, 2);
  relu(z, out);
  EXPECT_EQ(out(0, 0), 0);
  EXPECT_EQ(out(0, 1), 2);
  EXPECT_EQ(out(1, 0), 0);
  EXPECT_EQ(out(1, 1), 0);
}

TEST(Ops, ReluBackwardMasksByPreactivation) {
  Matrix z(1, 3);
  z(0, 0) = -1;
  z(0, 1) = 1;
  z(0, 2) = 0;
  Matrix g(1, 3);
  g(0, 0) = 10;
  g(0, 1) = 20;
  g(0, 2) = 30;
  Matrix out(1, 3);
  relu_backward(g, z, out);
  EXPECT_EQ(out(0, 0), 0);
  EXPECT_EQ(out(0, 1), 20);
  EXPECT_EQ(out(0, 2), 0);  // subgradient at 0 chosen as 0
}

TEST(Ops, LogSoftmaxRowsNormalize) {
  Rng rng(7);
  Matrix z = random_matrix(5, 9, rng, -3, 3);
  Matrix ls(5, 9);
  log_softmax_rows(z, ls);
  for (Index i = 0; i < 5; ++i) {
    Real sum = 0;
    for (Index j = 0; j < 9; ++j) sum += std::exp(ls(i, j));
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Ops, LogSoftmaxStableUnderLargeShift) {
  Matrix z(1, 3);
  z(0, 0) = 1000;
  z(0, 1) = 1001;
  z(0, 2) = 999;
  Matrix ls(1, 3);
  log_softmax_rows(z, ls);
  Real sum = 0;
  for (Index j = 0; j < 3; ++j) {
    EXPECT_TRUE(std::isfinite(ls(0, j)));
    sum += std::exp(ls(0, j));
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Ops, LogSoftmaxShiftInvariant) {
  Rng rng(8);
  Matrix z = random_matrix(3, 4, rng);
  Matrix shifted = z;
  for (Real& v : shifted.flat()) v += 123.0;
  Matrix a(3, 4);
  Matrix b(3, 4);
  log_softmax_rows(z, a);
  log_softmax_rows(shifted, b);
  EXPECT_LE(Matrix::max_abs_diff(a, b), 1e-9);
}

// Numerical check of the log-softmax backward rule.
TEST(Ops, LogSoftmaxBackwardMatchesNumericalGradient) {
  Rng rng(9);
  const Index n = 3;
  const Index f = 5;
  Matrix z = random_matrix(n, f, rng);
  Matrix g = random_matrix(n, f, rng);  // arbitrary upstream gradient

  Matrix ls(n, f);
  log_softmax_rows(z, ls);
  Matrix analytic(n, f);
  log_softmax_backward(g, ls, analytic);

  const Real eps = 1e-6;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < f; ++j) {
      Matrix zp = z;
      Matrix zm = z;
      zp(i, j) += eps;
      zm(i, j) -= eps;
      Matrix lsp(n, f);
      Matrix lsm(n, f);
      log_softmax_rows(zp, lsp);
      log_softmax_rows(zm, lsm);
      // Scalar objective: sum(g ⊙ log_softmax(z)).
      Real fp = 0;
      Real fm = 0;
      for (Index a = 0; a < n; ++a) {
        for (Index b = 0; b < f; ++b) {
          fp += g(a, b) * lsp(a, b);
          fm += g(a, b) * lsm(a, b);
        }
      }
      EXPECT_NEAR(analytic(i, j), (fp - fm) / (2 * eps), 1e-5);
    }
  }
}

TEST(Ops, NllLossMatchesManual) {
  Matrix lp(3, 2);
  lp(0, 0) = std::log(0.25);
  lp(0, 1) = std::log(0.75);
  lp(1, 0) = std::log(0.5);
  lp(1, 1) = std::log(0.5);
  lp(2, 0) = std::log(0.9);
  lp(2, 1) = std::log(0.1);
  const std::vector<Index> labels = {1, 0, 0};
  const Real expected =
      -(std::log(0.75) + std::log(0.5) + std::log(0.9)) / 3.0;
  EXPECT_NEAR(nll_loss(lp, labels), expected, 1e-12);
}

TEST(Ops, NllLossIgnoresMaskedRows) {
  Matrix lp(2, 2);
  lp(0, 0) = std::log(0.5);
  lp(1, 0) = std::log(0.125);
  const std::vector<Index> labels = {0, -1};
  EXPECT_NEAR(nll_loss(lp, labels), -std::log(0.5), 1e-12);
}

TEST(Ops, NllBackwardPlacesMassOnLabels) {
  Matrix lp(3, 4);
  const std::vector<Index> labels = {2, -1, 0};
  Matrix grad(3, 4);
  nll_loss_backward(lp, labels, grad);
  EXPECT_DOUBLE_EQ(grad(0, 2), -0.5);  // two labeled rows -> -1/2
  EXPECT_DOUBLE_EQ(grad(2, 0), -0.5);
  // All other entries zero.
  Real sum = 0;
  for (Real v : grad.flat()) sum += std::abs(v);
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Ops, AxpyAccumulates) {
  Matrix x(2, 2);
  x.fill(3);
  Matrix y(2, 2);
  y.fill(1);
  axpy(0.5, x, y);
  for (Real v : y.flat()) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(Ops, HadamardMultipliesElementwise) {
  Matrix a(1, 3);
  Matrix b(1, 3);
  a(0, 0) = 2;
  a(0, 1) = 3;
  a(0, 2) = -1;
  b(0, 0) = 5;
  b(0, 1) = -2;
  b(0, 2) = 4;
  Matrix out(1, 3);
  hadamard(a, b, out);
  EXPECT_EQ(out(0, 0), 10);
  EXPECT_EQ(out(0, 1), -6);
  EXPECT_EQ(out(0, 2), -4);
}

TEST(Ops, AccuracyCountsLabeledHits) {
  Matrix lp(3, 2);
  lp(0, 1) = 1;  // argmax 1
  lp(1, 0) = 1;  // argmax 0
  lp(2, 1) = 1;  // argmax 1, masked
  const std::vector<Index> labels = {1, 1, -1};
  EXPECT_DOUBLE_EQ(accuracy(lp, labels), 0.5);
}

TEST(Ops, ArgmaxRowsPicksFirstMax) {
  Matrix m(2, 3);
  m(0, 2) = 5;
  m(1, 0) = 1;
  m(1, 1) = 1;  // tie -> first index
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 2);
  EXPECT_EQ(idx[1], 0);
}

TEST(MatrixWorkspace, ResizeReusesStorage) {
  Matrix m(4, 5);
  m.fill(7);
  const Real* before = m.data();
  m.resize(2, 10);  // same element count: storage must be reused
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 10);
  EXPECT_EQ(m.data(), before);
  m.resize(1, 3);  // shrink keeps capacity
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.size(), 3);
}

TEST(MatrixWorkspace, BlockIntoMatchesBlock) {
  Rng rng(91);
  Matrix m(6, 7);
  m.fill_uniform(rng, -1, 1);
  Matrix out(1, 1);  // wrong shape on purpose; block_into must resize
  m.block_into(1, 2, 4, 3, out);
  EXPECT_EQ(Matrix::max_abs_diff(out, m.block(1, 2, 4, 3)), 0.0);
}

TEST(Gemm, ThreadedMatchesSerialBitwise) {
  // The row-block partition must not change any result bit, for every
  // trans combination (each picks a different kernel path). Shapes are
  // large enough that the automatic plan genuinely chunks at budget 8.
  Rng rng(92);
  const Index m = 2003, k = 64, n = 31;
  Matrix a(m, k);
  Matrix b(k, n);
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  for (const auto& [ta, tb] :
       {std::pair<Trans, Trans>{Trans::kNo, Trans::kNo},
        {Trans::kYes, Trans::kNo},
        {Trans::kNo, Trans::kYes},
        {Trans::kYes, Trans::kYes}}) {
    const Matrix aa = ta == Trans::kNo ? a : a.transposed();
    const Matrix bb = tb == Trans::kNo ? b : b.transposed();
    Matrix serial(m, n);
    Matrix threaded(m, n);
    override_thread_budget(1);
    gemm(ta, tb, Real{1.25}, aa, bb, Real{0}, serial);
    override_thread_budget(8);
    gemm(ta, tb, Real{1.25}, aa, bb, Real{0}, threaded);
    override_thread_budget(0);
    EXPECT_EQ(Matrix::max_abs_diff(serial, threaded), 0.0);
  }
}

}  // namespace
}  // namespace cagnet
