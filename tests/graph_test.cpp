// Tests for src/graph: GCN normalization invariants, permutations,
// partitioners and edge-cut metrics, and the synthetic dataset registry.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/graph/datasets.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/partition.hpp"
#include "src/sparse/generate.hpp"
#include "src/sparse/stats.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

Coo path_graph(Index n) {
  Coo coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) coo.add(i, i + 1, 1.0);
  return coo;
}

TEST(Normalize, SelfLoopsGuaranteeFullDiagonal) {
  const Csr a = gcn_normalize(path_graph(5), /*symmetrize=*/true);
  const Matrix d = a.to_dense();
  for (Index i = 0; i < 5; ++i) EXPECT_GT(d(i, i), 0.0);
}

TEST(Normalize, SymmetricInputYieldsSymmetricMatrix) {
  Rng rng(1);
  Coo coo = erdos_renyi(50, 4, rng);
  const Csr a = gcn_normalize(coo, /*symmetrize=*/true);
  const Matrix d = a.to_dense();
  for (Index i = 0; i < 50; ++i) {
    for (Index j = 0; j < i; ++j) EXPECT_NEAR(d(i, j), d(j, i), 1e-14);
  }
}

TEST(Normalize, SpectralRadiusAtMostOne) {
  // D^-1/2 (A+I) D^-1/2 of an undirected graph has eigenvalues in [-1, 1];
  // verify via power iteration on a small graph.
  Rng rng(2);
  const Csr a = gcn_normalize(erdos_renyi(40, 5, rng), /*symmetrize=*/true);
  Matrix v(40, 1);
  v.fill_uniform(rng, -1, 1);
  Real norm = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Matrix w = a.multiply(v);
    norm = w.frobenius_norm();
    ASSERT_GT(norm, 0);
    v = w;
    for (Real& x : v.flat()) x /= norm;
  }
  EXPECT_LE(norm, 1.0 + 1e-9);
}

TEST(Normalize, RowValueIsInverseDegreeForRegularGraph) {
  // A cycle is 2-regular; with self loops every modified degree is 3, so
  // every nonzero equals 1/3.
  Coo coo(6, 6);
  for (Index i = 0; i < 6; ++i) coo.add(i, (i + 1) % 6, 1.0);
  const Csr a = gcn_normalize(coo, /*symmetrize=*/true);
  for (Real v : a.values()) EXPECT_NEAR(v, 1.0 / 3.0, 1e-14);
}

TEST(Normalize, RejectsRectangular) {
  Coo coo(3, 4);
  EXPECT_THROW(gcn_normalize(coo, false), Error);
}

TEST(Permutation, IsBijective) {
  Rng rng(3);
  const auto perm = random_permutation(100, rng);
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Partition, BlockPartitionMatchesBlockRange) {
  for (Index n : {10, 103, 64}) {
    for (int parts : {1, 3, 7}) {
      const Partition p = block_partition(n, parts);
      for (int q = 0; q < parts; ++q) {
        const auto [lo, hi] = std::pair<Index, Index>{n * q / parts,
                                                      n * (q + 1) / parts};
        for (Index v = lo; v < hi; ++v) {
          EXPECT_EQ(p.owner[static_cast<std::size_t>(v)], q)
              << "n=" << n << " parts=" << parts << " v=" << v;
        }
      }
    }
  }
}

TEST(Partition, RandomPartitionIsBalanced) {
  Rng rng(4);
  const Partition p = random_partition(1000, 8, rng);
  std::vector<Index> counts(8, 0);
  for (Index o : p.owner) ++counts[static_cast<std::size_t>(o)];
  for (Index c : counts) EXPECT_EQ(c, 125);
}

TEST(Partition, GreedyCoversAllVertices) {
  Rng rng(5);
  const Csr a = Csr::from_coo(erdos_renyi(500, 6, rng));
  const Partition p = greedy_bfs_partition(a, 7);
  ASSERT_EQ(p.size(), 500);
  for (Index o : p.owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 7);
  }
}

TEST(Partition, GreedyRespectsCapacitySlack) {
  Rng rng(6);
  const Csr a = Csr::from_coo(erdos_renyi(600, 5, rng));
  const double slack = 1.05;
  const Partition p = greedy_bfs_partition(a, 6, slack);
  std::vector<Index> counts(6, 0);
  for (Index o : p.owner) ++counts[static_cast<std::size_t>(o)];
  // The last part absorbs leftovers; all others obey the cap.
  const auto cap = static_cast<Index>(slack * 100 + 1);
  for (std::size_t q = 0; q + 1 < counts.size(); ++q) {
    EXPECT_LE(counts[q], cap);
  }
}

TEST(Partition, EdgeCutZeroForSinglePart) {
  Rng rng(7);
  const Csr a = Csr::from_coo(erdos_renyi(100, 4, rng));
  const auto s = edge_cut(a, block_partition(100, 1));
  EXPECT_EQ(s.total_cut_edges, 0);
  EXPECT_EQ(s.max_cut_edges_per_part, 0);
  EXPECT_EQ(s.max_remote_rows_per_part, 0);
}

TEST(Partition, EdgeCutCountsCrossEdges) {
  // 4-cycle split into two halves: vertices {0,1} and {2,3}.
  Coo coo(4, 4);
  coo.add(0, 1, 1);
  coo.add(1, 2, 1);
  coo.add(2, 3, 1);
  coo.add(3, 0, 1);
  const Csr a = Csr::from_coo(coo);
  const auto s = edge_cut(a, block_partition(4, 2));
  EXPECT_EQ(s.total_cut_edges, 2);          // (1,2) and (3,0)
  EXPECT_EQ(s.max_cut_edges_per_part, 1);   // one each
  EXPECT_EQ(s.max_remote_rows_per_part, 1); // one remote vertex each
}

TEST(Partition, MaxMetricsBoundedByTotals) {
  Rng rng(8);
  const Csr a = Csr::from_coo(rmat(800, 8000, rng));
  Rng prng(9);
  const Partition p = random_partition(800, 8, prng);
  const auto s = edge_cut(a, p);
  EXPECT_LE(s.max_cut_edges_per_part, s.total_cut_edges);
  EXPECT_LE(s.max_remote_rows_per_part, 800);
  EXPECT_GE(s.max_cut_edges_per_part,
            s.total_cut_edges / 8);  // max >= mean
}

// The Section IV-A.8 phenomenon: a locality partitioner cuts the *total*
// edge count substantially, but the busiest process improves much less on
// a skewed graph.
TEST(Partition, GreedyBeatsRandomOnTotalCut) {
  Rng rng(10);
  Coo coo = rmat(2000, 30000, rng);
  coo.symmetrize();
  const Csr a = Csr::from_coo(coo);
  Rng prng(11);
  const Partition random = random_partition(a.rows(), 16, prng);
  const Partition greedy = greedy_bfs_partition(a, 16);
  const auto s_random = edge_cut(a, random);
  const auto s_greedy = edge_cut(a, greedy);
  EXPECT_LT(s_greedy.total_cut_edges, s_random.total_cut_edges);
}

TEST(Partition, RegistryCoversAllPartitioners) {
  for (const char* name : {"block", "random", "greedy-bfs"}) {
    EXPECT_NE(find_partitioner(name), nullptr) << name;
  }
  EXPECT_EQ(find_partitioner("metis"), nullptr);
  // CAGNET_PARTITION is unset in the test environment: the default holds.
  EXPECT_NE(find_partitioner(default_partitioner_name()), nullptr);
}

TEST(Partition, RegistryPartitionersCoverAndBalance) {
  Rng rng(12);
  const Csr a = Csr::from_coo(erdos_renyi(400, 5, rng));
  for (const PartitionerSpec& spec : partitioner_registry()) {
    const Partition p = spec.make(a, 8, 99);
    ASSERT_EQ(p.size(), 400) << spec.name;
    ASSERT_EQ(p.parts, 8) << spec.name;
    std::vector<Index> counts(8, 0);
    for (Index o : p.owner) {
      ASSERT_GE(o, 0) << spec.name;
      ASSERT_LT(o, 8) << spec.name;
      ++counts[static_cast<std::size_t>(o)];
    }
    // Balance: no part above the greedy slack ceiling (the loosest bound
    // of the three partitioners); none empty on a connected-ish graph.
    for (Index c : counts) {
      EXPECT_LE(c, static_cast<Index>(1.03 * 50 + 1)) << spec.name;
      EXPECT_GT(c, 0) << spec.name;
    }
  }
}

TEST(Partition, GreedyDeterministicAcrossThreadBudgets) {
  Rng rng(13);
  Coo coo = rmat(1200, 14000, rng);
  coo.symmetrize();
  const Csr a = Csr::from_coo(coo);
  override_thread_budget(1);
  const Partition serial = greedy_bfs_partition(a, 9);
  override_thread_budget(8);
  const Partition threaded = greedy_bfs_partition(a, 9);
  override_thread_budget(0);
  EXPECT_EQ(serial.owner, threaded.owner);
}

TEST(Partition, OffsetsAndPermutationAreConsistent) {
  Rng rng(14);
  const Csr a = Csr::from_coo(erdos_renyi(300, 4, rng));
  const Partition p = greedy_bfs_partition(a, 5);
  const std::vector<Index> offsets = partition_offsets(p);
  ASSERT_EQ(offsets.size(), 6u);
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), 300);
  const std::vector<Index> perm = partition_permutation(p);
  // Bijection ...
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 300u);
  // ... that sorts owners part-contiguously with original order preserved
  // inside each part (stable).
  for (std::size_t r = 0; r + 1 < perm.size(); ++r) {
    const Index ow_r = p.owner[static_cast<std::size_t>(perm[r])];
    const Index ow_n = p.owner[static_cast<std::size_t>(perm[r + 1])];
    EXPECT_LE(ow_r, ow_n);
    if (ow_r == ow_n) EXPECT_LT(perm[r], perm[r + 1]);
  }
  for (int q = 0; q < 5; ++q) {
    for (Index r = offsets[static_cast<std::size_t>(q)];
         r < offsets[static_cast<std::size_t>(q) + 1]; ++r) {
      EXPECT_EQ(p.owner[static_cast<std::size_t>(perm[static_cast<std::size_t>(r)])], q);
    }
  }
}

TEST(Partition, PermutedCsrMatchesRelabeledDense) {
  Rng rng(15);
  const Csr a = Csr::from_coo(erdos_renyi(40, 3, rng));
  Rng prng(16);
  const Partition p = random_partition(40, 4, prng);
  const std::vector<Index> perm = partition_permutation(p);
  const Csr permuted = a.permuted(std::span<const Index>(perm));
  const Matrix d = a.to_dense();
  const Matrix pd = permuted.to_dense();
  for (Index r = 0; r < 40; ++r) {
    for (Index c = 0; c < 40; ++c) {
      EXPECT_EQ(pd(r, c), d(perm[static_cast<std::size_t>(r)],
                            perm[static_cast<std::size_t>(c)]));
    }
  }
  // Edge-cut statistics are invariant under the induced relabeling.
  Partition sorted;
  sorted.parts = p.parts;
  sorted.owner.resize(40);
  for (Index r = 0; r < 40; ++r) {
    sorted.owner[static_cast<std::size_t>(r)] =
        p.owner[static_cast<std::size_t>(perm[static_cast<std::size_t>(r)])];
  }
  const EdgeCutStats before = edge_cut(a, p);
  const EdgeCutStats after = edge_cut(permuted, sorted);
  EXPECT_EQ(before.total_cut_edges, after.total_cut_edges);
  EXPECT_EQ(before.max_cut_edges_per_part, after.max_cut_edges_per_part);
  EXPECT_EQ(before.max_remote_rows_per_part, after.max_remote_rows_per_part);
}

TEST(Partition, RemappedColumnsPreserveStructure) {
  Coo coo(3, 6);
  coo.add(0, 1, 2.0);
  coo.add(0, 4, 3.0);
  coo.add(2, 4, 5.0);
  const Csr a = Csr::from_coo(coo);
  // Columns {1, 4} compact to {0, 1}.
  const std::vector<Index> map = {-1, 0, -1, -1, 1, -1};
  const Csr compact =
      a.with_remapped_columns(std::span<const Index>(map), 2);
  EXPECT_EQ(compact.rows(), 3);
  EXPECT_EQ(compact.cols(), 2);
  EXPECT_EQ(compact.nnz(), 3);
  const Matrix d = compact.to_dense();
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(0, 1), 3.0);
  EXPECT_EQ(d(2, 1), 5.0);
}

TEST(Datasets, TableSixSpecsMatchPaper) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(dataset_spec("reddit").vertices, 232965);
  EXPECT_EQ(dataset_spec("reddit").edges, 114848857);
  EXPECT_EQ(dataset_spec("reddit").features, 602);
  EXPECT_EQ(dataset_spec("reddit").labels, 41);
  EXPECT_EQ(dataset_spec("amazon").vertices, 9430088);
  EXPECT_EQ(dataset_spec("amazon").edges, 231594310);
  EXPECT_EQ(dataset_spec("protein").vertices, 8745542);
  EXPECT_EQ(dataset_spec("protein").edges, 1058120062);
  EXPECT_EQ(dataset_spec("protein").labels, 256);
  EXPECT_THROW(dataset_spec("citeseer"), Error);
}

TEST(Datasets, SyntheticPreservesShapeAtScale) {
  SyntheticOptions opt;
  opt.scale = 1.0 / 512;
  opt.max_features = 64;
  const Graph g = make_dataset("amazon", opt);
  const auto& spec = dataset_spec("amazon");
  EXPECT_NEAR(static_cast<double>(g.num_vertices()),
              spec.vertices / 512.0, spec.vertices / 512.0 * 0.01 + 2);
  EXPECT_EQ(g.feature_dim(), 64);
  EXPECT_EQ(g.num_classes, 24);
  EXPECT_EQ(g.labels.size(), static_cast<std::size_t>(g.num_vertices()));
  // Average degree of the normalized matrix is within 3x of the spec's
  // (symmetrization + self loops grow it; duplicate merges shrink it).
  const double d = degree_stats(g.adjacency).avg_degree;
  EXPECT_GT(d, 0.5 * spec.avg_degree());
  EXPECT_LT(d, 3.0 * spec.avg_degree());
}

TEST(Datasets, AllLabelsWithinRange) {
  SyntheticOptions opt;
  opt.scale = 1.0 / 1024;
  opt.max_features = 16;
  for (const auto& spec : paper_datasets()) {
    const Graph g = make_synthetic(spec, opt);
    for (Index label : g.labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, spec.labels);
    }
  }
}

TEST(Datasets, DeterministicForFixedSeed) {
  SyntheticOptions opt;
  opt.scale = 1.0 / 1024;
  opt.max_features = 8;
  const Graph a = make_dataset("protein", opt);
  const Graph b = make_dataset("protein", opt);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(Matrix::allclose(a.features, b.features, 0.0));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Datasets, SeedChangesTopology) {
  SyntheticOptions a;
  a.scale = 1.0 / 1024;
  a.max_features = 8;
  SyntheticOptions b = a;
  b.seed = 777;
  const Graph ga = make_dataset("reddit", a);
  const Graph gb = make_dataset("reddit", b);
  EXPECT_FALSE(Matrix::allclose(ga.features, gb.features, 1e-12));
}

}  // namespace
}  // namespace cagnet
