// Tests for the Section IV closed-form cost model: exact formula values,
// asymptotic ratios (the paper's headline O(sqrt(P)) and O(P^(1/6))
// claims), the 2D-vs-1D crossover, and memory-replication accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/costmodel.hpp"
#include "src/util/error.hpp"

namespace cagnet {
namespace {

CostInputs paper_like_inputs(int p) {
  // Section IV-C.5's simplification regime: nnz ≈ n f, f << n.
  const double n = 1e6;
  const double f = 128;
  return CostInputs::from_random(n, n * f, f, p, /*layers=*/3);
}

TEST(CostModel, RandomEdgecutBound) {
  const CostInputs in =
      CostInputs::from_random(1000, 8000, 16, 8, 3);
  EXPECT_DOUBLE_EQ(in.edgecut, 1000.0 * 7 / 8);
}

TEST(CostModel, OneDFormulaExact) {
  CostInputs in;
  in.n = 100;
  in.nnz = 900;
  in.f = 10;
  in.edgecut = 80;
  in.p = 4;
  in.layers = 2;
  const CommCost c = cost_1d(in);
  EXPECT_DOUBLE_EQ(c.latency_units, 2 * 3.0 * 2.0);  // L * 3 lg 4
  EXPECT_DOUBLE_EQ(c.words, 2 * (80.0 * 10 + 100.0 * 10 + 100.0));
}

TEST(CostModel, SymmetricOneDCheaperThanGeneral) {
  const CostInputs in = paper_like_inputs(64);
  EXPECT_LT(cost_1d_symmetric(in).words, cost_1d(in).words);
}

TEST(CostModel, TransposingVariantAddsTransposeCost) {
  const CostInputs in = paper_like_inputs(64);
  const CommCost sym = cost_1d_symmetric(in);
  const CommCost tr = cost_1d_transposing(in);
  EXPECT_DOUBLE_EQ(tr.latency_units - sym.latency_units, 2.0 * 64 * 64);
  EXPECT_DOUBLE_EQ(tr.words - sym.words, 2.0 * in.nnz / 64);
}

TEST(CostModel, TwoDFormulaExact) {
  CostInputs in;
  in.n = 100;
  in.nnz = 900;
  in.f = 10;
  in.p = 16;
  in.layers = 1;
  const CommCost c = cost_2d(in);
  EXPECT_DOUBLE_EQ(c.latency_units, 5.0 * 4 + 3.0 * 4);
  EXPECT_DOUBLE_EQ(c.words, 8.0 * 1000 / 4 + 2.0 * 900 / 4 + 100.0);
}

TEST(CostModel, ThreeDFormulaExact) {
  CostInputs in;
  in.n = 100;
  in.nnz = 900;
  in.f = 10;
  in.p = 64;
  in.layers = 1;
  const CommCost c = cost_3d(in);
  EXPECT_DOUBLE_EQ(c.latency_units, 4.0 * 4);
  EXPECT_DOUBLE_EQ(c.words, 2.0 * 900 / 16 + 12.0 * 1000 / 16);
}

// The paper's Section IV-C.5 conclusion: under nnz ≈ nf, random edgecut,
// and f << n, the 2D algorithm moves (5 / sqrt(P)) of the 1D volume.
TEST(CostModel, TwoDOverOneDRatioIsFiveOverSqrtP) {
  for (int p : {16, 64, 256, 1024}) {
    const CostInputs in = paper_like_inputs(p);
    const double ratio = cost_2d(in).words / cost_1d(in).words;
    const double predicted = 5.0 / std::sqrt(static_cast<double>(p));
    EXPECT_NEAR(ratio, predicted, 0.15 * predicted) << "P=" << p;
  }
}

// Crossover: 2D wins on bandwidth once sqrt(P) >= 5 (Section VI-d's
// explanation for why 8-16 GPU studies can't see the benefit).
TEST(CostModel, TwoDCrossoverNearSqrtPFive) {
  const CostInputs at16 = paper_like_inputs(16);   // sqrt = 4 < 5
  const CostInputs at36 = paper_like_inputs(36);   // sqrt = 6 > 5
  EXPECT_GT(cost_1d(at16).words, 0.0);
  EXPECT_GT(cost_2d(at16).words, cost_1d(at16).words);
  EXPECT_LT(cost_2d(at36).words, cost_1d(at36).words);
}

// 3D reduces words by another factor ~P^(1/6) over 2D (with constants).
TEST(CostModel, ThreeDAsymptoticallyBeatsTwoD) {
  for (int p : {4096, 32768}) {
    const CostInputs in = paper_like_inputs(p);
    const double gain = cost_2d(in).words / cost_3d(in).words;
    const double predicted =
        std::pow(static_cast<double>(p), 1.0 / 6.0) * 10.0 / 14.0;
    EXPECT_NEAR(gain, predicted, 0.25 * predicted) << "P=" << p;
  }
}

TEST(CostModel, LatencyOrdering1DLowest) {
  // 1D pays lg P latency; 2D pays sqrt(P); 3D pays P^(1/3): at large P the
  // latency ordering is the reverse of the bandwidth ordering.
  const CostInputs in = paper_like_inputs(4096);
  EXPECT_LT(cost_1d(in).latency_units, cost_3d(in).latency_units);
  EXPECT_LT(cost_3d(in).latency_units, cost_2d(in).latency_units);
}

TEST(CostModel, WordsDecreaseMonotonicallyInP) {
  double prev2d = 1e300;
  double prev3d = 1e300;
  for (int p : {8, 64, 512, 4096}) {
    const CostInputs in = paper_like_inputs(p);
    EXPECT_LT(cost_2d(in).words, prev2d);
    EXPECT_LT(cost_3d(in).words, prev3d);
    prev2d = cost_2d(in).words;
    prev3d = cost_3d(in).words;
  }
}

TEST(CostModel, OneAndAHalfDInterpolates) {
  const CostInputs in = paper_like_inputs(64);
  // c = 1 degenerates to ~1D-sized dense traffic; larger c cuts it.
  const double w1 = cost_15d(in, 1).words;
  const double w4 = cost_15d(in, 4).words;
  const double w8 = cost_15d(in, 8).words;
  EXPECT_GT(w1, w4);
  EXPECT_GT(w4, w8);
}

TEST(CostModel, OneAndAHalfDRejectsNonDivisorReplication) {
  const CostInputs in = paper_like_inputs(64);
  EXPECT_THROW(cost_15d(in, 3), Error);
}

TEST(CostModel, RectangularForwardMinimizedNearSquare) {
  // Section IV-C.6: for nnz ≈ nf shapes the dense terms dominate and the
  // square grid minimizes their sum ("square has the smallest perimeter").
  const CostInputs in = paper_like_inputs(64);
  const double square = cost_2d_rectangular_forward(in, 8, 8).words;
  const double tall = cost_2d_rectangular_forward(in, 32, 2).words;
  const double wide = cost_2d_rectangular_forward(in, 2, 32).words;
  EXPECT_LT(square, tall);
  EXPECT_LT(square, wide);
}

TEST(CostModel, RectangularTallGridTradesSparseForDense) {
  // With average degree >> f, a taller grid (Pr > Pc) cuts the sparse term.
  CostInputs in;
  in.n = 1e6;
  in.f = 16;
  in.nnz = 500 * in.n;  // d = 500 >> f
  in.p = 64;
  in.layers = 1;
  const CommCost square = cost_2d_rectangular_forward(in, 8, 8);
  const CommCost tall = cost_2d_rectangular_forward(in, 16, 4);
  // Sparse part: nnz/Pr shrinks with taller grids.
  EXPECT_LT(in.nnz / 16, in.nnz / 8);
  EXPECT_LT(tall.words - (in.n * in.f / 4 + in.n * in.f / 16),
            square.words - (in.n * in.f / 8 + in.n * in.f / 8));
}

TEST(CostModel, MemoryReplicationFactors) {
  const CostInputs in = paper_like_inputs(64);
  const double m1 = memory_words_1d(in);
  const double m2 = memory_words_2d(in);
  const double m15 = memory_words_15d(in, 4);
  const double m3 = memory_words_3d(in);
  // 2D is memory-optimal (equal to 1D); 1.5D pays ~c on the dense part;
  // 3D pays ~P^(1/3).
  EXPECT_DOUBLE_EQ(m1, m2);
  EXPECT_GT(m15, m2);
  EXPECT_GT(m3, m2);
  EXPECT_LT(m3, 5.0 * m2);  // cbrt(64) = 4 on the dense term only
}

TEST(CostModel, SecondsCombineAlphaBeta) {
  MachineModel m;
  m.alpha = 2.0;
  m.beta = 0.5;
  const CommCost c = {3.0, 10.0};
  EXPECT_DOUBLE_EQ(c.seconds(m), 2.0 * 3.0 + 0.5 * 10.0);
}

TEST(CostModel, FromPartitionUsesMeasuredEdgecut) {
  EdgeCutStats cut;
  cut.total_cut_edges = 5000;
  cut.max_cut_edges_per_part = 900;
  cut.max_remote_rows_per_part = 123;
  const CostInputs measured =
      CostInputs::from_partition(cut, 1000, 8000, 16, 8, 3);
  EXPECT_DOUBLE_EQ(measured.edgecut, 123.0);
  // Every other field matches the random-bound inputs.
  const CostInputs bound = CostInputs::from_random(1000, 8000, 16, 8, 3);
  EXPECT_DOUBLE_EQ(measured.n, bound.n);
  EXPECT_DOUBLE_EQ(measured.nnz, bound.nnz);
  EXPECT_DOUBLE_EQ(measured.f, bound.f);
  EXPECT_EQ(measured.p, bound.p);
  EXPECT_EQ(measured.layers, bound.layers);
  // A measured edgecut below the bound yields a cheaper 1D prediction —
  // the IV-A.8 payoff the halo path realizes.
  EXPECT_LT(cost_1d(measured).words, cost_1d(bound).words);
  EXPECT_DOUBLE_EQ(cost_1d(measured).words - cost_1d(bound).words,
                   3.0 * (123.0 - bound.edgecut) * 16.0);
}

TEST(CostModel, AlgorithmNames) {
  EXPECT_STREQ(algorithm_name(0), "1D");
  EXPECT_STREQ(algorithm_name(1), "1.5D");
  EXPECT_STREQ(algorithm_name(2), "2D");
  EXPECT_STREQ(algorithm_name(3), "3D");
}

}  // namespace
}  // namespace cagnet
