// Adaptive communication rates: bounded-staleness halo refresh
// (CAGNET_STALE) and aggregation-before-communication (CAGNET_PREAGG).
//
// The contract under test (DESIGN.md "Adaptive communication rates
// contract"):
//   - CAGNET_STALE=off and CAGNET_STALE=1 are bitwise the exact halo
//     path — losses, weights, output, and every per-category meter,
//     including stale_saved_words == 0.
//   - A fixed refresh interval k >= 2 cuts metered kHalo traffic by ~k
//     while the skipped words are credited exactly: for every rank,
//     exact kHalo words minus stale kHalo words equals stale_saved_words
//     (compression off). Accuracy on a learnable graph stays within a
//     small floor of the exact run's.
//   - Within a stale mode, overlap and blocking runs stay bitwise equal
//     (losses, weights, meters) — the skip charges telescope the same
//     way the drain charges do.
//   - Adaptive mode (CAGNET_STALE=adaptive) respects the
//     CAGNET_STALE_MIN/MAX interval bounds, skips at least some
//     exchanges on a slowly-changing graph, and converges.
//   - Pre-aggregation ships pre-reduced rows for pairs where that is
//     structurally smaller, so metered kHalo words drop below the exact
//     exchange on a hub-heavy graph; it is deterministic across overlap
//     modes.
//   - The stale cache is per-run transient state (like the compression
//     error-feedback residual): a restart rebuilds it, refreshes on the
//     first resumed epoch, and keeps converging — but is NOT bitwise the
//     uninterrupted run, which is why the checkpoint drills pin exact
//     mode.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/gnn/checkpoint.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

/// Save and restore every knob this suite flips, and pin the ones whose
/// ambient values would change what is being measured (codec off: the
/// exact-saving identity is stated in uncompressed words).
class StaleGuard {
 public:
  StaleGuard()
      : mode_(compress_mode()), overlap_(dist::overlap_enabled()),
        halo_(dist::halo_enabled()), stale_(dist::stale_k()),
        stale_min_(dist::stale_min_k()), stale_max_(dist::stale_max_k()),
        preagg_(dist::preagg_enabled()) {
    set_compress_mode(CompressMode::kOff);
    dist::set_stale_k(0);
    dist::set_preagg_enabled(false);
    dist::set_halo_enabled(true);
  }
  ~StaleGuard() {
    set_compress_mode(mode_);
    dist::set_overlap_enabled(overlap_);
    dist::set_halo_enabled(halo_);
    dist::set_stale_k(stale_);
    dist::set_stale_bounds(stale_min_, stale_max_);
    dist::set_preagg_enabled(preagg_);
  }

 private:
  CompressMode mode_;
  bool overlap_;
  bool halo_;
  int stale_;
  int stale_min_;
  int stale_max_;
  bool preagg_;
};

/// Community-structured graph whose labels follow the communities and
/// whose features carry a per-community offset, so training accuracy is
/// a meaningful signal (same construction the compression suite uses).
Graph learnable_graph(Index n, Index communities, Index f, Index classes,
                      std::uint64_t seed, double hub_fraction = 0.0,
                      double hub_degree = 0.0) {
  Rng rng(seed);
  Graph g;
  g.name = "stale-test";
  Coo coo = planted_partition(n, communities, 10.0, 1.0, rng, hub_fraction,
                              hub_degree);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    const Index community = v * communities / n;
    g.labels[static_cast<std::size_t>(v)] = community % classes;
    g.features(v, community % f) += Real{2};
  }
  return g;
}

struct StaleRun {
  std::vector<Real> losses;
  std::vector<Real> accuracies;
  std::vector<Matrix> weights;
  Matrix output;
  EpochStats final_stats;  ///< max-reduced, final epoch
  // Rank 0's per-run totals, summed over its per-epoch meters.
  double halo_words = 0;
  double halo_latency = 0;
  double stale_saved = 0;
  // Rank 0's final-epoch per-category meters, for bitwise comparisons.
  std::vector<double> meter_row;
};

StaleRun run_trainer(const std::string& algebra, const DistProblem& problem,
                     const GnnConfig& config, int p, int epochs) {
  StaleRun run;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    std::vector<Real> accuracies;
    double halo_words = 0;
    double halo_latency = 0;
    double stale_saved = 0;
    std::vector<double> meter_row;
    for (int e = 0; e < epochs; ++e) {
      const EpochResult r = trainer->train_epoch();
      losses.push_back(r.loss);
      accuracies.push_back(r.accuracy);
      const CostMeter& m = trainer->last_epoch_stats().comm;
      halo_words += m.words(CommCategory::kHalo);
      halo_latency += m.latency_units(CommCategory::kHalo);
      stale_saved += m.stale_saved_words();
      meter_row.clear();
      for (std::size_t c = 0; c < CostMeter::kNumCategories; ++c) {
        const auto cat = static_cast<CommCategory>(c);
        meter_row.push_back(m.latency_units(cat));
        meter_row.push_back(m.words(cat));
      }
    }
    const EpochStats reduced = trainer->reduce_epoch_stats();
    Matrix out = trainer->gather_output();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      run.losses = std::move(losses);
      run.accuracies = std::move(accuracies);
      run.weights = trainer->weights();
      run.output = std::move(out);
      run.final_stats = reduced;
      run.halo_words = halo_words;
      run.halo_latency = halo_latency;
      run.stale_saved = stale_saved;
      run.meter_row = std::move(meter_row);
    }
  });
  return run;
}

void expect_bitwise_equal(const StaleRun& a, const StaleRun& b,
                          const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t e = 0; e < a.losses.size(); ++e) {
    EXPECT_EQ(a.losses[e], b.losses[e]) << label << " loss, epoch " << e;
    EXPECT_EQ(a.accuracies[e], b.accuracies[e])
        << label << " accuracy, epoch " << e;
  }
  ASSERT_EQ(a.weights.size(), b.weights.size()) << label;
  for (std::size_t l = 0; l < a.weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(a.weights[l], b.weights[l]), Real{0})
        << label << " weights, layer " << l;
  }
  EXPECT_LE(Matrix::max_abs_diff(a.output, b.output), Real{0})
      << label << " output";
  ASSERT_EQ(a.meter_row.size(), b.meter_row.size()) << label;
  for (std::size_t i = 0; i < a.meter_row.size(); ++i) {
    EXPECT_EQ(a.meter_row[i], b.meter_row[i]) << label << " meter " << i;
  }
}

struct StaleCase {
  std::string algebra;
  int p = 0;
  int partition_parts = 0;
};

std::vector<StaleCase> stale_cases() {
  return {{"1d", 4, 4}, {"1d", 7, 7}, {"1.5d-c2", 8, 4}, {"1.5d-c2", 4, 4}};
}

// ---- CAGNET_STALE=off and =1 are bitwise the exact halo path ----

TEST(StaleParity, OffAndKOneBitwiseMatchExactPath) {
  StaleGuard guard;
  const Graph g = learnable_graph(252, 12, 10, 4, 91);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 3;

  for (const auto& c : stale_cases()) {
    for (const char* partitioner : {"block", "greedy-bfs"}) {
      const DistProblem problem =
          DistProblem::prepare(g, c.partition_parts, partitioner);
      for (const bool overlap : {false, true}) {
        dist::set_overlap_enabled(overlap);
        const std::string label = c.algebra + "/" + partitioner +
                                  (overlap ? "/overlap" : "/sync");

        dist::set_stale_k(0);
        const StaleRun exact =
            run_trainer(c.algebra, problem, config, c.p, epochs);
        dist::set_stale_k(1);
        const StaleRun k1 =
            run_trainer(c.algebra, problem, config, c.p, epochs);
        dist::set_stale_k(0);

        expect_bitwise_equal(exact, k1, label);
        EXPECT_DOUBLE_EQ(exact.stale_saved, 0.0) << label;
        EXPECT_DOUBLE_EQ(k1.stale_saved, 0.0) << label;
        EXPECT_DOUBLE_EQ(exact.final_stats.comm.stale_saved_words(), 0.0)
            << label;
        EXPECT_DOUBLE_EQ(k1.final_stats.comm.stale_saved_words(), 0.0)
            << label;
      }
    }
  }
}

// ---- Fixed k >= 2: traffic drops ~k-fold, savings credited exactly ----

TEST(StaleTraffic, FixedKCutsHaloWordsAndCreditsSavingsExactly) {
  StaleGuard guard;
  const Graph g = learnable_graph(240, 12, 10, 4, 93);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 12;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  for (const bool overlap : {false, true}) {
    dist::set_overlap_enabled(overlap);
    const std::string label = overlap ? "overlap" : "sync";

    dist::set_stale_k(0);
    const StaleRun exact = run_trainer("1d", problem, config, 4, epochs);
    dist::set_stale_k(4);
    const StaleRun stale = run_trainer("1d", problem, config, 4, epochs);
    dist::set_stale_k(0);

    ASSERT_GT(exact.halo_words, 0.0) << label;
    // 12 epochs at k=4 refresh on epochs 0, 4, 8: a 4x word cut (the
    // acceptance floor is 2x).
    EXPECT_GE(exact.halo_words, 2.0 * stale.halo_words) << label;
    EXPECT_GT(exact.halo_latency, stale.halo_latency) << label;
    // The skipped words are credited exactly: rank 0's exact halo words
    // minus its stale halo words is its stale_saved_words (uncompressed
    // wire, so words are element counts on both sides).
    EXPECT_DOUBLE_EQ(exact.halo_words - stale.halo_words, stale.stale_saved)
        << label;
    EXPECT_DOUBLE_EQ(exact.stale_saved, 0.0) << label;

    // Bounded staleness is lossy but bounded: the run still converges to
    // within a small floor of the exact run's training accuracy.
    EXPECT_LT(stale.losses.back(), stale.losses.front()) << label;
    EXPECT_GE(stale.accuracies.back(), exact.accuracies.back() - 0.1)
        << label;
  }
}

TEST(StaleTraffic, OverlapAndBlockingStayBitwiseWithinStaleMode) {
  StaleGuard guard;
  const Graph g = learnable_graph(240, 12, 10, 4, 93);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 6;

  for (const auto& c : stale_cases()) {
    const DistProblem problem =
        DistProblem::prepare(g, c.partition_parts, "greedy-bfs");
    dist::set_stale_k(3);
    dist::set_overlap_enabled(true);
    const StaleRun pipelined =
        run_trainer(c.algebra, problem, config, c.p, epochs);
    dist::set_overlap_enabled(false);
    const StaleRun blocking =
        run_trainer(c.algebra, problem, config, c.p, epochs);
    dist::set_stale_k(0);
    expect_bitwise_equal(pipelined, blocking, c.algebra + "/k=3");
    EXPECT_EQ(pipelined.stale_saved, blocking.stale_saved) << c.algebra;
  }
}

// ---- Adaptive mode: per-peer intervals inside the configured bounds ----

TEST(StaleAdaptive, RespectsBoundsSkipsExchangesAndConverges) {
  StaleGuard guard;
  const Graph g = learnable_graph(240, 12, 10, 4, 95);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 12;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  dist::set_stale_k(0);
  const StaleRun exact = run_trainer("1d", problem, config, 4, epochs);

  dist::set_stale_k(dist::kStaleAdaptive);
  dist::set_stale_bounds(2, 6);
  const StaleRun adaptive = run_trainer("1d", problem, config, 4, epochs);
  dist::set_stale_k(0);

  // A floor of 2 forces at least every other exchange to be skipped once
  // the caches are primed, so savings must be strictly positive and the
  // metered halo words strictly below the exact run's.
  EXPECT_GT(adaptive.stale_saved, 0.0);
  EXPECT_LT(adaptive.halo_words, exact.halo_words);
  // ...but the ceiling of 6 bounds the staleness: over 12 epochs at most
  // ~5/6 of rank 0's receives can be skipped.
  EXPECT_GT(adaptive.halo_words, 0.0);
  // Still converges to within the accuracy floor.
  EXPECT_LT(adaptive.losses.back(), adaptive.losses.front());
  EXPECT_GE(adaptive.accuracies.back(), exact.accuracies.back() - 0.1);
}

TEST(StaleAdaptive, BoundSettersValidate) {
  StaleGuard guard;
  EXPECT_THROW(dist::set_stale_bounds(0, 4), Error);
  EXPECT_THROW(dist::set_stale_bounds(4, 2), Error);
  dist::set_stale_bounds(3, 3);
  EXPECT_EQ(dist::stale_min_k(), 3);
  EXPECT_EQ(dist::stale_max_k(), 3);
  EXPECT_THROW(dist::set_stale_k(-7), Error);
  dist::set_stale_k(dist::kStaleAdaptive);
  EXPECT_EQ(dist::stale_k(), dist::kStaleAdaptive);
}

// ---- Pre-aggregation: fewer words on hub-heavy coupling, deterministic --

TEST(PreAgg, CutsHaloWordsOnHubGraphAndStaysDeterministic) {
  StaleGuard guard;
  // Hubs concentrate many remote reads onto few local output rows —
  // exactly the structure where shipping one pre-reduced row per output
  // row beats shipping every requested source row.
  const Graph g = learnable_graph(240, 12, 10, 4, 97, /*hub_fraction=*/0.05,
                                  /*hub_degree=*/60.0);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 6;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  dist::set_preagg_enabled(false);
  const StaleRun exact = run_trainer("1d", problem, config, 4, epochs);

  dist::set_preagg_enabled(true);
  dist::set_overlap_enabled(true);
  const StaleRun agg = run_trainer("1d", problem, config, 4, epochs);
  dist::set_overlap_enabled(false);
  const StaleRun agg_blocking = run_trainer("1d", problem, config, 4, epochs);
  dist::set_preagg_enabled(false);

  ASSERT_GT(exact.halo_words, 0.0);
  EXPECT_LT(agg.halo_words, exact.halo_words);
  // Lossy only in floating-point association order: same convergence.
  EXPECT_LT(agg.losses.back(), agg.losses.front());
  EXPECT_GE(agg.accuracies.back(), exact.accuracies.back() - 0.1);
  // Deterministic within the mode: overlap and blocking bitwise agree.
  expect_bitwise_equal(agg, agg_blocking, "preagg overlap-vs-blocking");
}

TEST(PreAgg, ComposesWithStale) {
  StaleGuard guard;
  const Graph g = learnable_graph(240, 12, 10, 4, 97, /*hub_fraction=*/0.05,
                                  /*hub_degree=*/60.0);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const int epochs = 12;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");

  dist::set_preagg_enabled(true);
  const StaleRun agg = run_trainer("1d", problem, config, 4, epochs);
  dist::set_stale_k(4);
  const StaleRun both = run_trainer("1d", problem, config, 4, epochs);
  dist::set_stale_k(0);
  dist::set_preagg_enabled(false);

  // Staleness stacks on top of aggregation: skipped epochs move nothing,
  // and the credited savings reflect the *aggregated* exchange words.
  EXPECT_GE(agg.halo_words, 2.0 * both.halo_words);
  EXPECT_DOUBLE_EQ(agg.halo_words - both.halo_words, both.stale_saved);
  EXPECT_LT(both.losses.back(), both.losses.front());
}

// ---- Restart drill: the stale cache is per-run transient state ----

TEST(StaleRestart, ResumedRunRefreshesCacheAndKeepsConverging) {
  StaleGuard guard;
  const Graph g = learnable_graph(240, 12, 10, 4, 99);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.1;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");
  const int pre = 5;
  const int post = 5;
  const std::string path =
      (std::filesystem::temp_directory_path() / "cagnet_stale_drill.bin")
          .string();

  dist::set_stale_k(4);

  // Uninterrupted stale run, the reference trajectory.
  const StaleRun oracle =
      run_trainer("1d", problem, config, 4, pre + post);

  // Interrupted: train, checkpoint weights, resume in a fresh world. The
  // stale cache is deliberately NOT serialized — the resumed trainer's
  // plan starts invalid and re-exchanges on its first epoch (the same
  // per-run-transient contract as the compression error-feedback
  // residual), so the continuation converges but is not bitwise the
  // oracle; the bitwise-resume drills in checkpoint_test/fault_test pin
  // exact mode for exactly this reason.
  std::mutex mutex;
  run_world(4, [&](Comm& world) {
    auto trainer = make_dist_trainer("1d", problem, config, world);
    for (int e = 0; e < pre; ++e) trainer->train_epoch();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      save_weights(path, trainer->weights());
    }
  });
  StaleRun resumed;
  run_world(4, [&](Comm& world) {
    auto trainer = make_dist_trainer("1d", problem, config, world);
    trainer->set_weights(load_weights(path));
    trainer->set_start_epoch(pre);
    std::vector<Real> losses;
    std::vector<Real> accuracies;
    for (int e = 0; e < post; ++e) {
      const EpochResult r = trainer->train_epoch();
      losses.push_back(r.loss);
      accuracies.push_back(r.accuracy);
    }
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      resumed.losses = std::move(losses);
      resumed.accuracies = std::move(accuracies);
      resumed.weights = trainer->weights();
    }
  });
  std::remove(path.c_str());
  dist::set_stale_k(0);

  ASSERT_EQ(resumed.losses.size(), static_cast<std::size_t>(post));
  // The resumed trajectory keeps descending from where the checkpoint
  // left off and lands within the same accuracy floor as the oracle.
  EXPECT_LT(resumed.losses.back(), oracle.losses[pre - 1]);
  EXPECT_GE(resumed.accuracies.back(), oracle.accuracies.back() - 0.1);
}

}  // namespace
}  // namespace cagnet
