// Compressed-communication tests: codec units (error bounds, determinism,
// error feedback), the compressed collectives' decode-sum semantics and
// metered words-on-wire, and trainer-level lossy convergence on the
// planted-partition graph — the acceptance contract of the lossy modes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "src/comm/comm.hpp"
#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

/// Deterministic, sign-mixed, chunk-boundary-unfriendly test values.
std::vector<Real> wave(std::size_t n, int salt) {
  std::vector<Real> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.05 * static_cast<double>(i + 1) * (salt + 1)) *
           (1.0 + 0.01 * static_cast<double>(i % 7));
  }
  return v;
}

/// Restore the process-global compression mode (and the runtime toggles)
/// on scope exit, so these tests behave identically whatever ambient
/// CAGNET_COMPRESS the suite was launched under.
class ModeGuard {
 public:
  ModeGuard()
      : mode_(compress_mode()), overlap_(dist::overlap_enabled()),
        halo_(dist::halo_enabled()) {}
  ~ModeGuard() {
    set_compress_mode(mode_);
    dist::set_overlap_enabled(overlap_);
    dist::set_halo_enabled(halo_);
  }

 private:
  CompressMode mode_;
  bool overlap_;
  bool halo_;
};

// ---- Codec units ----

TEST(CompressCodec, NamesParseAndRoundTrip) {
  for (CompressMode mode :
       {CompressMode::kOff, CompressMode::kFp16, CompressMode::kInt8,
        CompressMode::k1Bit}) {
    EXPECT_EQ(parse_compress_mode(compress_mode_name(mode)), mode);
  }
  EXPECT_THROW(parse_compress_mode("zstd"), Error);
  EXPECT_EQ(row_compress_mode() == CompressMode::k1Bit, false);
}

TEST(CompressCodec, EncodedSizesAndRatios) {
  const std::size_t n = 1000;  // 4 codec chunks: 256 + 256 + 256 + 232
  EXPECT_EQ(encoded_size_bytes(CompressMode::kOff, n), 8 * n);
  EXPECT_EQ(encoded_size_bytes(CompressMode::kFp16, n), 2 * n);
  EXPECT_EQ(encoded_size_bytes(CompressMode::kInt8, n), n + 4 * 4);
  EXPECT_EQ(encoded_size_bytes(CompressMode::k1Bit, n),
            8 * 4 + 3 * 32 + (232 + 7) / 8);

  const auto ratio = [n](CompressMode mode) {
    return static_cast<double>(encoded_size_bytes(CompressMode::kOff, n)) /
           static_cast<double>(encoded_size_bytes(mode, n));
  };
  EXPECT_DOUBLE_EQ(ratio(CompressMode::kFp16), 4.0);
  EXPECT_GE(ratio(CompressMode::kInt8), 3.0);   // ~7.9x
  EXPECT_GE(ratio(CompressMode::k1Bit), 20.0);  // ~51x
}

TEST(CompressCodec, Fp16RoundTripWithinHalfPrecision) {
  const std::size_t n = 700;
  const std::vector<Real> src = wave(n, 3);
  std::vector<std::uint8_t> enc(encoded_size_bytes(CompressMode::kFp16, n));
  std::vector<Real> dec(n);
  compress_encode(CompressMode::kFp16, src, enc.data(), nullptr);
  compress_decode(CompressMode::kFp16, enc.data(), n, dec.data());
  for (std::size_t i = 0; i < n; ++i) {
    // Round-to-nearest-even half: relative error <= 2^-11 for normals.
    EXPECT_LE(std::abs(dec[i] - src[i]),
              std::max(std::abs(src[i]) * 0x1p-11, 1e-7))
        << "i=" << i;
  }
}

TEST(CompressCodec, Int8ErrorBoundedByChunkScale) {
  const std::size_t n = 600;  // chunks of 256, 256, 88
  std::vector<Real> src = wave(n, 5);
  // Zero out the middle chunk to exercise the scale == 0 path.
  std::fill(src.begin() + 256, src.begin() + 512, Real{0});
  std::vector<std::uint8_t> enc(encoded_size_bytes(CompressMode::kInt8, n));
  std::vector<Real> dec(n);
  compress_encode(CompressMode::kInt8, src, enc.data(), nullptr);
  compress_decode(CompressMode::kInt8, enc.data(), n, dec.data());
  for (std::size_t c = 0; c < n; c += kCompressChunk) {
    const std::size_t hi = std::min(n, c + kCompressChunk);
    Real amax = 0;
    for (std::size_t i = c; i < hi; ++i) amax = std::max(amax, std::abs(src[i]));
    // |v - scale*round(v/scale)| <= scale/2, plus float-storage slack on
    // the scale itself.
    const Real bound = amax > 0 ? (amax / 127.0) * 0.5 * (1 + 1e-6) : 0;
    for (std::size_t i = c; i < hi; ++i) {
      EXPECT_LE(std::abs(dec[i] - src[i]), bound + 1e-12) << "i=" << i;
    }
  }
}

TEST(CompressCodec, OneBitPreservesChunkSumsAndSigns) {
  const std::size_t n = 520;  // chunks of 256, 256, 8
  const std::vector<Real> src = wave(n, 7);
  std::vector<std::uint8_t> enc(encoded_size_bytes(CompressMode::k1Bit, n));
  std::vector<Real> dec(n);
  compress_encode(CompressMode::k1Bit, src, enc.data(), nullptr);
  compress_decode(CompressMode::k1Bit, enc.data(), n, dec.data());
  for (std::size_t c = 0; c < n; c += kCompressChunk) {
    const std::size_t hi = std::min(n, c + kCompressChunk);
    Real sum_src = 0;
    Real sum_dec = 0;
    for (std::size_t i = c; i < hi; ++i) {
      sum_src += src[i];
      sum_dec += dec[i];
      // Sign bit routes each value to the matching chunk mean.
      if (src[i] >= 0) {
        EXPECT_GE(dec[i], 0) << "i=" << i;
      } else {
        EXPECT_LE(dec[i], 0) << "i=" << i;
      }
    }
    // count_pos * mean_pos + count_neg * mean_neg telescopes back to the
    // chunk sum, up to the float storage of the two means.
    EXPECT_NEAR(sum_dec, sum_src, 1e-4 * static_cast<double>(hi - c));
  }
}

TEST(CompressCodec, DecodeRangeMatchesFullDecodeBitwise) {
  const std::size_t n = 600;
  const std::vector<Real> src = wave(n, 11);
  const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, n}, {5, n}, {250, 262}, {256, 512}, {300, 300}, {599, 600}};
  for (CompressMode mode :
       {CompressMode::kFp16, CompressMode::kInt8, CompressMode::k1Bit}) {
    std::vector<std::uint8_t> enc(encoded_size_bytes(mode, n));
    compress_encode(mode, src, enc.data(), nullptr);
    std::vector<Real> full(n);
    compress_decode(mode, enc.data(), n, full.data());
    for (const auto& [lo, hi] : ranges) {
      std::vector<Real> part(hi - lo, -999.0);
      compress_decode_range(mode, enc.data(), n, lo, hi, part.data());
      for (std::size_t i = lo; i < hi; ++i) {
        EXPECT_EQ(part[i - lo], full[i])
            << compress_mode_name(mode) << " [" << lo << "," << hi << ") i="
            << i;
      }
    }
  }
}

TEST(CompressCodec, BitwiseDeterministicAcrossThreadBudgets) {
  const int budget_before = thread_budget();
  const std::size_t n = 2048 + 130;
  const std::vector<Real> src = wave(n, 13);
  for (CompressMode mode :
       {CompressMode::kFp16, CompressMode::kInt8, CompressMode::k1Bit}) {
    std::vector<std::vector<std::uint8_t>> encs;
    std::vector<std::vector<Real>> decs;
    for (int budget : {1, 8}) {
      override_thread_budget(budget);
      std::vector<std::uint8_t> enc(encoded_size_bytes(mode, n));
      compress_encode(mode, src, enc.data(), nullptr);
      std::vector<Real> dec(n);
      compress_decode(mode, enc.data(), n, dec.data());
      encs.push_back(std::move(enc));
      decs.push_back(std::move(dec));
    }
    EXPECT_EQ(encs[0], encs[1]) << compress_mode_name(mode);
    EXPECT_EQ(decs[0], decs[1]) << compress_mode_name(mode);
  }
  override_thread_budget(budget_before);
}

TEST(CompressCodec, ErrorFeedbackTelescopes) {
  // With error feedback, decode_k = v + r_{k-1} - r_k, so the running sum
  // of decoded rounds satisfies sum + residual == rounds * v exactly (up
  // to fp accumulation) — quantization error never accumulates.
  const std::size_t n = 384;
  const std::vector<Real> src = wave(n, 17);
  for (CompressMode mode : {CompressMode::kInt8, CompressMode::k1Bit}) {
    std::vector<Real> residual;
    std::vector<std::uint8_t> enc(encoded_size_bytes(mode, n));
    std::vector<Real> dec(n);
    std::vector<Real> sum(n, 0);
    const int rounds = 7;
    for (int k = 0; k < rounds; ++k) {
      compress_encode(mode, src, enc.data(), &residual);
      compress_decode(mode, enc.data(), n, dec.data());
      for (std::size_t i = 0; i < n; ++i) sum[i] += dec[i];
    }
    ASSERT_EQ(residual.size(), n);
    double max_err = 0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err,
                         std::abs(sum[i] + residual[i] - rounds * src[i]));
    }
    EXPECT_LE(max_err, 1e-9) << compress_mode_name(mode);
    // And the EF-corrected average is far closer to v than one raw round.
    double avg_err = 0;
    double one_shot_err = 0;
    compress_encode(mode, src, enc.data(), nullptr);
    compress_decode(mode, enc.data(), n, dec.data());
    for (std::size_t i = 0; i < n; ++i) {
      avg_err = std::max(avg_err, std::abs(sum[i] / rounds - src[i]));
      one_shot_err = std::max(one_shot_err, std::abs(dec[i] - src[i]));
    }
    EXPECT_LT(avg_err, one_shot_err) << compress_mode_name(mode);
  }
}

// ---- Compressed collectives: decode-sum semantics and metered bytes ----

TEST(CompressedCollectives, AllreduceMatchesLocalDecodeSumAndMeter) {
  const std::size_t n = 1000;
  const int p = 4;
  for (CompressMode mode :
       {CompressMode::kFp16, CompressMode::kInt8, CompressMode::k1Bit}) {
    run_world(p, [&](Comm& world) {
      // Oracle: decode every rank's encoded contribution and sum in
      // ascending rank order — the documented deterministic element order.
      const std::size_t enc_bytes = encoded_size_bytes(mode, n);
      std::vector<std::uint8_t> enc(enc_bytes);
      std::vector<Real> dec(n);
      std::vector<Real> expect(n, 0);
      for (int r = 0; r < p; ++r) {
        const std::vector<Real> contrib = wave(n, r);
        compress_encode(mode, contrib, enc.data(), nullptr);
        compress_decode(mode, enc.data(), n, dec.data());
        for (std::size_t i = 0; i < n; ++i) expect[i] += dec[i];
      }

      std::vector<Real> mine = wave(n, world.rank());
      CompressBuf buf;
      const CostMeter before = world.meter();
      world.allreduce_sum_compressed(std::span<Real>(mine), mode, buf);
      CostMeter delta = world.meter();
      delta.subtract(before);

      EXPECT_EQ(mine, expect) << compress_mode_name(mode);
      // 2 E (P-1)/P wire bytes in Real-sized words, 2 lg P latency.
      EXPECT_DOUBLE_EQ(delta.words(CommCategory::kCompressed),
                       2.0 * static_cast<double>(enc_bytes) * (p - 1) / p /
                           sizeof(Real));
      EXPECT_DOUBLE_EQ(delta.latency_units(CommCategory::kCompressed),
                       2.0 * ceil_log2(p));
      EXPECT_EQ(delta.words(CommCategory::kDense), 0.0);
      EXPECT_EQ(delta.words(CommCategory::kHalo), 0.0);
    });
  }
}

TEST(CompressedCollectives, ReduceScatterMatchesOracleAndMeter) {
  // Uneven scatter chunks (one rank keeps nothing): the 1.5D keeper-only
  // form. Wire carries a u64 length header plus the encoded contribution
  // per rank; each rank decodes only its own slice.
  const std::size_t n = 300;
  const int p = 4;
  const std::vector<std::size_t> lens = {100, 50, 0, 150};
  run_world(p, [&](Comm& world) {
    const CompressMode mode = CompressMode::kInt8;
    const int rank = world.rank();
    std::size_t lo = 0;
    for (int r = 0; r < rank; ++r) lo += lens[static_cast<std::size_t>(r)];
    const std::size_t len = lens[static_cast<std::size_t>(rank)];

    const std::size_t enc_bytes = encoded_size_bytes(mode, n);
    std::vector<std::uint8_t> enc(enc_bytes);
    std::vector<Real> expect(len, 0);
    std::vector<Real> slice(len);
    for (int r = 0; r < p; ++r) {
      const std::vector<Real> contrib = wave(n, 100 + r);
      compress_encode(mode, contrib, enc.data(), nullptr);
      compress_decode_range(mode, enc.data(), n, lo, lo + len, slice.data());
      for (std::size_t i = 0; i < len; ++i) expect[i] += slice[i];
    }

    const std::vector<Real> mine = wave(n, 100 + rank);
    std::vector<Real> out(len, -1);
    CompressBuf buf;
    const CostMeter before = world.meter();
    world.reduce_scatter_sum_compressed(std::span<const Real>(mine),
                                        std::span<Real>(out), mode, buf);
    CostMeter delta = world.meter();
    delta.subtract(before);

    EXPECT_EQ(out, expect);
    const double gathered =
        static_cast<double>(p) * (sizeof(std::uint64_t) + enc_bytes);
    EXPECT_DOUBLE_EQ(delta.words(CommCategory::kCompressed),
                     gathered * (p - 1) / p / sizeof(Real));
    EXPECT_DOUBLE_EQ(delta.latency_units(CommCategory::kCompressed),
                     ceil_log2(p));
  });
}

TEST(CompressedCollectives, NonblockingMatchesBlockingBitwise) {
  const std::size_t n = 777;
  const int p = 4;
  run_world(p, [&](Comm& world) {
    const CompressMode mode = CompressMode::kInt8;
    std::vector<Real> blocking = wave(n, world.rank());
    CompressBuf buf_b;
    const CostMeter before_b = world.meter();
    world.allreduce_sum_compressed(std::span<Real>(blocking), mode, buf_b);
    CostMeter delta_b = world.meter();
    delta_b.subtract(before_b);

    const std::vector<Real> contrib = wave(n, world.rank());
    std::vector<Real> out(n, 0);
    CompressBuf buf_n;
    const CostMeter before_n = world.meter();
    PendingCompressedReduce op = world.iallreduce_sum_compressed(
        std::span<const Real>(contrib), std::span<Real>(out), mode, buf_n);
    EXPECT_TRUE(op.pending());
    op.wait();
    world.quiesce();  // release the peers' reads of buf_n.send
    CostMeter delta_n = world.meter();
    delta_n.subtract(before_n);

    EXPECT_EQ(out, blocking);
    EXPECT_DOUBLE_EQ(delta_n.words(CommCategory::kCompressed),
                     delta_b.words(CommCategory::kCompressed));
    EXPECT_DOUBLE_EQ(delta_n.latency_units(CommCategory::kCompressed),
                     delta_b.latency_units(CommCategory::kCompressed));
  });
}

TEST(CompressedCollectives, SingleRankIsExactAndFree) {
  const std::size_t n = 333;
  run_world(1, [&](Comm& world) {
    const std::vector<Real> src = wave(n, 21);
    std::vector<Real> data = src;
    CompressBuf buf;
    const CostMeter before = world.meter();
    world.allreduce_sum_compressed(std::span<Real>(data),
                                   CompressMode::k1Bit, buf);
    EXPECT_EQ(data, src);  // exact copy, no codec round-trip

    std::vector<Real> out(n, -1);
    PendingCompressedReduce op = world.ireduce_scatter_sum_compressed(
        std::span<const Real>(src), std::span<Real>(out),
        CompressMode::kInt8, buf);
    EXPECT_FALSE(op.pending());  // completed at post time
    op.wait();                   // idempotent no-op
    EXPECT_EQ(out, src);

    CostMeter delta = world.meter();
    delta.subtract(before);
    EXPECT_EQ(delta.words(CommCategory::kCompressed), 0.0);
    EXPECT_EQ(delta.latency_units(CommCategory::kCompressed), 0.0);
  });
}

// ---- Trainer-level: metered byte reduction and lossy convergence ----

/// Planted-partition graph whose labels follow the communities, so the
/// GCN can actually learn them and accuracy is a meaningful comparison.
Graph learnable_graph(Index n, Index communities, Index f, Index classes,
                      std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "compress-test";
  Coo coo = planted_partition(n, communities, 10.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    const Index community = v * communities / n;
    g.labels[static_cast<std::size_t>(v)] = community % classes;
    // A noisy community signature on top of the random features, so the
    // task is genuinely learnable and accuracy comparisons are meaningful.
    g.features(v, community % f) += Real{2};
  }
  return g;
}

struct TrainRun {
  std::vector<Real> losses;
  std::vector<Real> accuracies;
  std::vector<Matrix> weights;
  EpochStats stats;  ///< max-reduced, final epoch
};

TrainRun run_trainer(const std::string& algebra, const DistProblem& problem,
                     const GnnConfig& config, int p, int epochs) {
  TrainRun run;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    std::vector<Real> accuracies;
    for (int e = 0; e < epochs; ++e) {
      const EpochResult r = trainer->train_epoch();
      losses.push_back(r.loss);
      accuracies.push_back(r.accuracy);
    }
    const EpochStats reduced = trainer->reduce_epoch_stats();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      run.losses = std::move(losses);
      run.accuracies = std::move(accuracies);
      run.weights = trainer->weights();
      run.stats = reduced;
    }
  });
  return run;
}

TEST(LossyTraining, MeteredGradientBytesShrinkOnWire) {
  // 2D at P=4: the only compressed traffic is the gradient slice-sum
  // all-reduce, so (exact kDense - lossy kDense) is exactly the gradient
  // words that moved to kCompressed — the metered words-on-wire reduction
  // the acceptance asks for (>= 3x int8, >= 20x 1-bit).
  ModeGuard guard;
  dist::set_halo_enabled(false);
  const Graph g = learnable_graph(128, 8, 12, 4, 31);
  const GnnConfig config = GnnConfig::three_layer(12, 4, 8);
  const DistProblem problem = DistProblem::prepare(g);

  set_compress_mode(CompressMode::kOff);
  const TrainRun exact = run_trainer("2d", problem, config, 4, 2);
  EXPECT_EQ(exact.stats.comm.words(CommCategory::kCompressed), 0.0);

  for (const auto& [mode, min_ratio] :
       std::vector<std::pair<CompressMode, double>>{
           {CompressMode::kInt8, 3.0}, {CompressMode::k1Bit, 20.0}}) {
    set_compress_mode(mode);
    const TrainRun lossy = run_trainer("2d", problem, config, 4, 2);
    const double moved =
        exact.stats.comm.words(CommCategory::kDense) -
        lossy.stats.comm.words(CommCategory::kDense);
    const double compressed =
        lossy.stats.comm.words(CommCategory::kCompressed);
    EXPECT_GT(moved, 0.0) << compress_mode_name(mode);
    EXPECT_GT(compressed, 0.0) << compress_mode_name(mode);
    EXPECT_GE(moved / compressed, min_ratio) << compress_mode_name(mode);
    // Every other category is value-independent and must not move.
    EXPECT_EQ(lossy.stats.comm.words(CommCategory::kSparse),
              exact.stats.comm.words(CommCategory::kSparse));
    EXPECT_EQ(lossy.stats.comm.words(CommCategory::kTranspose),
              exact.stats.comm.words(CommCategory::kTranspose));
  }
}

TEST(LossyTraining, CompressedOverlapMatchesBlockingBitwise) {
  // Within one lossy mode the overlap toggle must stay bitwise-neutral,
  // halo path included — same contract the exact runtime upholds.
  ModeGuard guard;
  const Graph g = learnable_graph(180, 9, 10, 3, 41);
  const GnnConfig config = GnnConfig::three_layer(10, 3, 8);
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");
  dist::set_halo_enabled(true);
  set_compress_mode(CompressMode::kInt8);

  dist::set_overlap_enabled(true);
  const TrainRun pipelined = run_trainer("1d", problem, config, 4, 3);
  dist::set_overlap_enabled(false);
  const TrainRun blocking = run_trainer("1d", problem, config, 4, 3);

  ASSERT_EQ(pipelined.losses.size(), blocking.losses.size());
  for (std::size_t e = 0; e < pipelined.losses.size(); ++e) {
    EXPECT_EQ(pipelined.losses[e], blocking.losses[e]) << "epoch " << e;
  }
  ASSERT_EQ(pipelined.weights.size(), blocking.weights.size());
  for (std::size_t l = 0; l < pipelined.weights.size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(pipelined.weights[l],
                                   blocking.weights[l]),
              Real{0})
        << "layer " << l;
  }
  EXPECT_EQ(pipelined.stats.comm.words(CommCategory::kCompressed),
            blocking.stats.comm.words(CommCategory::kCompressed));
}

TEST(LossyTraining, LossyModesReachExactAccuracyWithinTolerance) {
  // The acceptance parity/convergence contract: on the planted-partition
  // trainer every lossy mode must land within tolerance of the exact
  // run's final loss and accuracy (error feedback keeps the gradient
  // quantization from biasing SGD; halo rows are fp16/int8 only).
  ModeGuard guard;
  const Graph g = learnable_graph(240, 8, 12, 4, 51);
  GnnConfig config = GnnConfig::three_layer(12, 4, 16);
  config.learning_rate = 0.3;
  const int epochs = 60;
  const DistProblem problem = DistProblem::prepare(g, 4, "greedy-bfs");
  dist::set_halo_enabled(true);

  set_compress_mode(CompressMode::kOff);
  const TrainRun exact = run_trainer("1d", problem, config, 4, epochs);
  ASSERT_TRUE(std::isfinite(exact.losses.back()));
  // Community labels are learnable; demand real training so the lossy
  // comparison below is not vacuously satisfied at chance accuracy.
  ASSERT_GE(exact.accuracies.back(), 0.8);

  for (CompressMode mode :
       {CompressMode::kFp16, CompressMode::kInt8, CompressMode::k1Bit}) {
    set_compress_mode(mode);
    const TrainRun lossy = run_trainer("1d", problem, config, 4, epochs);
    EXPECT_TRUE(std::isfinite(lossy.losses.back()))
        << compress_mode_name(mode);
    EXPECT_NEAR(lossy.losses.back(), exact.losses.back(),
                0.1 * exact.losses.back() + 0.05)
        << compress_mode_name(mode);
    EXPECT_GE(lossy.accuracies.back(), exact.accuracies.back() - 0.05)
        << compress_mode_name(mode);
  }
}

}  // namespace
}  // namespace cagnet
