// Neighbor-sampling tests: determinism of the k-hop uniform sampler for a
// fixed seed (including across kernel thread budgets), fanout caps and
// duplicate/range invariants, degenerate graphs (isolated vertices,
// degree < fanout, empty batches), seed replay, and the typed validation
// of MiniBatchOptions — the contract the distributed sampled trainer
// builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/gnn/sampling.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

/// Labeled graph over an arbitrary (already-built) adjacency; features are
/// deterministic so two sampling runs can be compared bitwise.
Graph graph_over(Csr adjacency, Index f, Index classes, std::uint64_t seed) {
  Graph g;
  g.name = "sampling-test";
  const Index n = adjacency.rows();
  g.adjacency = std::move(adjacency);
  Rng rng(seed);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v % classes;
  }
  return g;
}

/// Planted-partition graph with the usual GCN normalization (self loops).
Graph community_graph(Index n, Index communities, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo = planted_partition(n, communities, 10.0, 1.0, rng,
                              /*hub_fraction=*/0.0);
  return graph_over(gcn_normalize(std::move(coo), /*symmetrize=*/true), 6, 4,
                    seed + 1);
}

void expect_identical(const SampledSubgraph& a, const SampledSubgraph& b) {
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.adjacency.rows(), b.adjacency.rows());
  ASSERT_EQ(a.adjacency.cols(), b.adjacency.cols());
  ASSERT_EQ(a.adjacency.nnz(), b.adjacency.nnz());
  const auto arp = a.adjacency.row_ptr();
  const auto brp = b.adjacency.row_ptr();
  EXPECT_TRUE(std::equal(arp.begin(), arp.end(), brp.begin()));
  const auto aci = a.adjacency.col_idx();
  const auto bci = b.adjacency.col_idx();
  EXPECT_TRUE(std::equal(aci.begin(), aci.end(), bci.begin()));
  const auto av = a.adjacency.values();
  const auto bv = b.adjacency.values();
  EXPECT_TRUE(std::equal(av.begin(), av.end(), bv.begin()));
  ASSERT_EQ(a.features.rows(), b.features.rows());
  ASSERT_EQ(a.features.cols(), b.features.cols());
  EXPECT_LE(Matrix::max_abs_diff(a.features, b.features), Real{0});
}

/// The sampler's structural invariants: seeds first, no duplicate vertex,
/// every id in range, every hop's growth bounded by the fanout product.
void expect_well_formed(const SampledSubgraph& sub, const Graph& g,
                        std::span<const Index> seeds,
                        std::span<const Index> fanouts) {
  ASSERT_EQ(sub.num_seeds, static_cast<Index>(seeds.size()));
  ASSERT_GE(sub.vertices.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(sub.vertices[i], seeds[i]) << "seed order broken at " << i;
  }
  std::set<Index> distinct;
  for (const Index v : sub.vertices) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.num_vertices());
    EXPECT_TRUE(distinct.insert(v).second) << "duplicate vertex " << v;
  }
  // Frontier recursion bound: hop h adds at most fanouts[h] vertices per
  // frontier vertex, so |sub| <= S * (1 + f0 + f0 f1 + ...).
  double bound = static_cast<double>(seeds.size());
  double frontier = static_cast<double>(seeds.size());
  for (const Index f : fanouts) {
    frontier *= static_cast<double>(f);
    bound += frontier;
  }
  EXPECT_LE(static_cast<double>(sub.vertices.size()), bound);
  // Labels: seed rows carry the graph label, sampled rows carry -1.
  ASSERT_EQ(sub.labels.size(), sub.vertices.size());
  for (std::size_t i = 0; i < sub.vertices.size(); ++i) {
    const Index expected =
        static_cast<Index>(i) < sub.num_seeds
            ? g.labels[static_cast<std::size_t>(sub.vertices[i])]
            : Index{-1};
    EXPECT_EQ(sub.labels[i], expected) << "row " << i;
  }
  // Features: the H0 rows of the sampled vertices, in subgraph order.
  ASSERT_EQ(sub.features.rows(), static_cast<Index>(sub.vertices.size()));
  for (std::size_t i = 0; i < sub.vertices.size(); ++i) {
    const auto got = sub.features.row(static_cast<Index>(i));
    const auto want = g.features.row(sub.vertices[i]);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "features row " << i;
  }
}

TEST(Sampling, SeedReplayProducesIdenticalSubgraphs) {
  const Graph g = community_graph(120, 6, 17);
  const Csr at = g.adjacency.transposed();
  const std::vector<Index> seeds = {3, 17, 40, 77, 113};
  const std::vector<Index> fanouts = {5, 3};
  Rng rng_a(2024);
  Rng rng_b(2024);
  const SampledSubgraph a = sample_subgraph(g, at, seeds, fanouts, rng_a);
  const SampledSubgraph b = sample_subgraph(g, at, seeds, fanouts, rng_b);
  expect_well_formed(a, g, seeds, fanouts);
  expect_identical(a, b);

  // A different stream genuinely re-samples (the graph is dense enough
  // that two independent draws almost surely differ somewhere).
  Rng rng_c(2025);
  const SampledSubgraph c = sample_subgraph(g, at, seeds, fanouts, rng_c);
  EXPECT_NE(a.vertices, c.vertices);
}

TEST(Sampling, DeterministicAcrossThreadBudgets) {
  const int budget_before = thread_budget();
  const Graph g = community_graph(160, 8, 23);
  const Csr at = g.adjacency.transposed();
  std::vector<Index> seeds;
  for (Index v = 0; v < g.num_vertices(); v += 7) seeds.push_back(v);
  const std::vector<Index> fanouts = {6, 4};

  std::vector<SampledSubgraph> runs;
  for (const int budget : {1, 8}) {
    override_thread_budget(budget);
    Rng rng(99);
    runs.push_back(sample_subgraph(g, at, seeds, fanouts, rng));
  }
  override_thread_budget(budget_before);
  expect_identical(runs[0], runs[1]);
}

TEST(Sampling, FanoutCapsBoundEachHop) {
  // Star: edges u -> 0 for u in 1..n-1, so A^T row 0 holds every u as an
  // in-neighbor and a single-seed, single-hop sample is exactly capped.
  const Index n = 40;
  Coo coo(n, n);
  for (Index u = 1; u < n; ++u) coo.add(u, 0, Real{1});
  const Graph g = graph_over(Csr::from_coo(coo), 4, 2, 7);
  const Csr at = g.adjacency.transposed();
  const std::vector<Index> seeds = {0};

  for (const Index fanout : {Index{1}, Index{5}, Index{17}}) {
    const std::vector<Index> fanouts = {fanout};
    Rng rng(31);
    const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
    expect_well_formed(sub, g, seeds, fanouts);
    // Exactly fanout distinct in-neighbors: the pool (n-1) exceeds every
    // cap above, and sampling is without replacement.
    EXPECT_EQ(static_cast<Index>(sub.vertices.size()), 1 + fanout);
    for (std::size_t i = 1; i < sub.vertices.size(); ++i) {
      EXPECT_GE(sub.vertices[i], 1);
    }
  }

  // Fanout >= degree (and kSampleAll) take the whole in-neighborhood.
  for (const Index fanout : {n, kSampleAll}) {
    const std::vector<Index> fanouts = {fanout};
    Rng rng(31);
    const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
    ASSERT_EQ(static_cast<Index>(sub.vertices.size()), n);
    std::vector<Index> rest(sub.vertices.begin() + 1, sub.vertices.end());
    std::sort(rest.begin(), rest.end());
    for (Index u = 1; u < n; ++u) EXPECT_EQ(rest[static_cast<std::size_t>(u - 1)], u);
  }
}

TEST(Sampling, MultiHopStaysWithinBoundsOnCommunityGraph) {
  const Graph g = community_graph(200, 8, 41);
  const Csr at = g.adjacency.transposed();
  const std::vector<Index> seeds = {0, 25, 50, 75, 100, 125, 150, 175};
  const std::vector<Index> fanouts = {3, 2, 2};
  Rng rng(55);
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  expect_well_formed(sub, g, seeds, fanouts);
  // The sample genuinely grew beyond the seed set (the graph is connected
  // enough), so the cap assertions above were not vacuous.
  EXPECT_GT(sub.vertices.size(), seeds.size());
}

TEST(Sampling, IsolatedVerticesYieldSeedOnlySubgraph) {
  // Raw adjacency with NO self loops: vertices 10..19 have no edges at
  // all, so sampling from them must terminate at the seed set.
  const Index n = 20;
  Coo coo(n, n);
  for (Index v = 0; v + 1 < 10; ++v) {
    coo.add(v, v + 1, Real{0.5});
    coo.add(v + 1, v, Real{0.5});
  }
  const Graph g = graph_over(Csr::from_coo(coo), 3, 2, 13);
  const Csr at = g.adjacency.transposed();
  const std::vector<Index> seeds = {12, 15, 19};
  const std::vector<Index> fanouts = {4, 4};
  Rng rng(3);
  const SampledSubgraph sub = sample_subgraph(g, at, seeds, fanouts, rng);
  expect_well_formed(sub, g, seeds, fanouts);
  EXPECT_EQ(sub.vertices, seeds);
  EXPECT_EQ(sub.adjacency.nnz(), 0);
}

TEST(Sampling, DegreeBelowFanoutTakesWholeNeighborhoodDeterministically) {
  // Path graph: every in-degree is <= 3 after normalization (self loop +
  // two neighbors), far below the fanout, so the sample is the exact
  // 2-hop ball around the seed regardless of the RNG state.
  const Index n = 30;
  Coo coo(n, n);
  for (Index v = 0; v + 1 < n; ++v) coo.add(v, v + 1, Real{1});
  const Graph g =
      graph_over(gcn_normalize(std::move(coo), /*symmetrize=*/true), 3, 2, 5);
  const Csr at = g.adjacency.transposed();
  const std::vector<Index> seeds = {15};
  const std::vector<Index> fanouts = {10, 10};
  Rng rng_a(1);
  Rng rng_b(999);  // different stream, same take-all outcome
  const SampledSubgraph a = sample_subgraph(g, at, seeds, fanouts, rng_a);
  const SampledSubgraph b = sample_subgraph(g, at, seeds, fanouts, rng_b);
  expect_identical(a, b);
  std::vector<Index> got = a.vertices;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<Index>{13, 14, 15, 16, 17}));
}

TEST(Sampling, EmptySeedBatchYieldsEmptySubgraph) {
  const Graph g = community_graph(50, 2, 9);
  const Csr at = g.adjacency.transposed();
  Rng rng(8);
  const SampledSubgraph sub = sample_subgraph(
      g, at, std::span<const Index>(), std::vector<Index>{4, 4}, rng);
  EXPECT_EQ(sub.num_seeds, 0);
  EXPECT_TRUE(sub.vertices.empty());
  EXPECT_TRUE(sub.labels.empty());
  EXPECT_EQ(sub.adjacency.rows(), 0);
  EXPECT_EQ(sub.adjacency.nnz(), 0);
  EXPECT_EQ(sub.features.rows(), 0);
}

TEST(Sampling, RejectsOutOfRangeAndDuplicateSeeds) {
  const Graph g = community_graph(32, 2, 19);
  const Csr at = g.adjacency.transposed();
  const std::vector<Index> fanouts = {2};
  Rng rng(4);
  EXPECT_THROW(sample_subgraph(g, at, std::vector<Index>{32}, fanouts, rng),
               Error);
  EXPECT_THROW(sample_subgraph(g, at, std::vector<Index>{-1}, fanouts, rng),
               Error);
  EXPECT_THROW(sample_subgraph(g, at, std::vector<Index>{5, 5}, fanouts, rng),
               Error);
}

// ---- MiniBatchOptions validation (the trainers' typed contract) ----

TEST(MiniBatchOptions, InvalidOptionsThrowTypedErrors) {
  const Graph g = community_graph(64, 4, 29);
  const GnnConfig config = GnnConfig::three_layer(6, 4, 8);

  MiniBatchOptions wrong_len;
  wrong_len.fanouts = {5, 5};  // three-layer model needs three hops
  EXPECT_THROW(MiniBatchTrainer(g, config, wrong_len), Error);

  MiniBatchOptions zero_fanout;
  zero_fanout.fanouts = {5, 0, 5};
  EXPECT_THROW(MiniBatchTrainer(g, config, zero_fanout), Error);

  MiniBatchOptions bad_batch;
  bad_batch.fanouts = {5, 5, 5};
  bad_batch.batch_size = 0;
  EXPECT_THROW(MiniBatchTrainer(g, config, bad_batch), Error);

  MiniBatchOptions ok;
  ok.fanouts = {5, 5, 5};
  ok.batch_size = 20;
  MiniBatchTrainer trainer(g, config, ok);
  EXPECT_EQ(trainer.batches_per_epoch(), (64 + 19) / 20);
}

TEST(MiniBatchTrainer, EpochsAreBitwiseDeterministicAcrossThreadBudgets) {
  const int budget_before = thread_budget();
  const Graph g = community_graph(96, 4, 37);
  const GnnConfig config = GnnConfig::three_layer(6, 4, 8);
  MiniBatchOptions options;
  options.fanouts = {6, 4, 3};
  options.batch_size = 24;
  options.seed = 123;

  std::vector<std::vector<Real>> losses;
  std::vector<std::vector<Matrix>> weights;
  for (const int budget : {1, 8}) {
    override_thread_budget(budget);
    MiniBatchTrainer trainer(g, config, options);
    std::vector<Real> run;
    for (int e = 0; e < 3; ++e) run.push_back(trainer.train_epoch().loss);
    losses.push_back(std::move(run));
    weights.push_back(trainer.weights());
  }
  override_thread_budget(budget_before);

  EXPECT_EQ(losses[0], losses[1]);
  ASSERT_EQ(weights[0].size(), weights[1].size());
  for (std::size_t l = 0; l < weights[0].size(); ++l) {
    EXPECT_LE(Matrix::max_abs_diff(weights[0][l], weights[1][l]), Real{0})
        << "layer " << l;
  }
}

}  // namespace
}  // namespace cagnet
