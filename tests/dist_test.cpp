// Parity tests for the distributed trainers: for the same seed, every
// registered algebra (1D, 1.5D, 2D, 3D), executed by the one shared
// DistEngine, must reproduce the serial reference's per-epoch losses and
// output embeddings up to floating-point accumulation error — the paper's
// Section V-A verification. Also checks the metered communication against
// the Section IV closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/core/algebra_registry.hpp"
#include "src/core/costmodel.hpp"
#include "src/core/dist15d.hpp"
#include "src/core/dist1d.hpp"
#include "src/core/dist2d.hpp"
#include "src/core/dist3d.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/graph/datasets.hpp"
#include "src/sparse/generate.hpp"

namespace cagnet {
namespace {

constexpr Real kParityTol = 1e-8;

// Dist-vs-serial exactness is a statement about exact wire contents; an
// ambient lossy codec (CAGNET_COMPRESS) reroutes the gradient and row
// reductions through quantized payloads, ambient bounded staleness
// (CAGNET_STALE >= 2 or adaptive) replays cached halo rows, and ambient
// pre-aggregation (CAGNET_PREAGG) reassociates the halo sums — so these
// comparisons only hold in exact mode. Within-mode parity suites
// (OverlapParity) keep running.
#define SKIP_IF_AMBIENT_LOSSY()                                           \
  do {                                                                    \
    if (compress_mode() != CompressMode::kOff) {                          \
      GTEST_SKIP() << "dist-vs-serial exactness requires "                \
                      "CAGNET_COMPRESS=off (ambient: "                    \
                   << compress_mode_name(compress_mode()) << ")";         \
    }                                                                     \
    if (dist::stale_k() != 0 && dist::stale_k() != 1) {                   \
      GTEST_SKIP() << "dist-vs-serial exactness requires "                \
                      "CAGNET_STALE=off (ambient: " << dist::stale_k()    \
                   << ")";                                                \
    }                                                                     \
    if (dist::preagg_enabled()) {                                         \
      GTEST_SKIP() << "dist-vs-serial exactness requires "                \
                      "CAGNET_PREAGG=off";                                \
    }                                                                     \
  } while (false)

Graph test_graph(Index n, Index f, Index classes, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.name = "dist-test";
  g.adjacency = gcn_normalize(rmat(n, n * 6, rng), true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    label = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(classes)));
  }
  return g;
}

struct RunOutcome {
  std::vector<Real> losses;
  Matrix output;     // epoch-K forward output (gathered)
  EpochStats stats;  // max-reduced stats of the final epoch
};

/// Run `epochs` epochs of the named registry algebra through the shared
/// engine on a simulated world of `p` ranks.
RunOutcome run_distributed(const std::string& algebra, const Graph& g,
                           const GnnConfig& config, int p, int epochs) {
  const DistProblem prob = DistProblem::prepare(g);
  RunOutcome outcome;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, prob, config, world);
    std::vector<Real> losses;
    for (int e = 0; e < epochs; ++e) {
      losses.push_back(trainer->train_epoch().loss);
    }
    const EpochStats reduced = trainer->reduce_epoch_stats();
    Matrix out = trainer->gather_output();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      outcome.losses = std::move(losses);
      outcome.output = std::move(out);
      outcome.stats = reduced;
    }
  });
  return outcome;
}

/// Serial run collecting per-epoch losses and the epoch-K forward output.
RunOutcome run_serial(const Graph& g, const GnnConfig& config, int epochs) {
  SerialTrainer trainer(g, config);
  RunOutcome outcome;
  for (int e = 0; e < epochs; ++e) {
    outcome.losses.push_back(trainer.train_epoch().loss);
  }
  outcome.output = trainer.activations().back();
  return outcome;
}

// ---- Registry-driven parity: every algebra x every valid world size ----

struct AlgebraWorld {
  std::string algebra;
  int p = 0;
};

std::vector<AlgebraWorld> all_registered_cases() {
  std::vector<AlgebraWorld> cases;
  for (const AlgebraSpec& spec : algebra_registry()) {
    for (int p : spec.world_sizes) {
      EXPECT_TRUE(spec.accepts(p))
          << spec.name << " rejects its own suggested world size " << p;
      cases.push_back({spec.name, p});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<AlgebraWorld>& info) {
  std::string name = info.param.algebra + "_p" +
                     std::to_string(info.param.p);
  for (char& c : name) {
    if (c == '.' || c == '-') c = '_';
  }
  return name;
}

class EngineParity : public ::testing::TestWithParam<AlgebraWorld> {};

TEST_P(EngineParity, MatchesSerialLossesAndEmbeddings) {
  SKIP_IF_AMBIENT_LOSSY();
  const auto [algebra, p] = GetParam();
  const Graph g = test_graph(90, 12, 5, 42);
  GnnConfig config = GnnConfig::three_layer(12, 5, 8);
  config.learning_rate = 0.2;
  const int epochs = 4;

  const RunOutcome serial = run_serial(g, config, epochs);
  const RunOutcome dist = run_distributed(algebra, g, config, p, epochs);

  ASSERT_EQ(dist.losses.size(), serial.losses.size());
  for (int e = 0; e < epochs; ++e) {
    EXPECT_NEAR(dist.losses[static_cast<std::size_t>(e)],
                serial.losses[static_cast<std::size_t>(e)], kParityTol)
        << "epoch " << e;
  }
  EXPECT_LE(Matrix::max_abs_diff(dist.output, serial.output), kParityTol);
}

INSTANTIATE_TEST_SUITE_P(AllAlgebras, EngineParity,
                         ::testing::ValuesIn(all_registered_cases()),
                         case_name);

TEST(EngineParity, RegistryCoversAllPaperFamilies) {
  for (const char* name : {"1d", "1.5d-c2", "1.5d-c4", "2d", "3d"}) {
    EXPECT_NE(find_algebra(name), nullptr) << name;
  }
  EXPECT_EQ(find_algebra("nonexistent"), nullptr);
}

TEST(EngineParity, UnknownAlgebraNameThrows) {
  const Graph g = test_graph(40, 8, 3, 58);
  const DistProblem problem = DistProblem::prepare(g);
  const GnnConfig config = GnnConfig::three_layer(8, 3);
  EXPECT_THROW(run_world(2,
                         [&](Comm& world) {
                           make_dist_trainer("4d", problem, config, world);
                         }),
               Error);
}

TEST(DistParity, UnevenBlockSizesStillMatch) {
  SKIP_IF_AMBIENT_LOSSY();
  // n deliberately not divisible by P or the grid dimension.
  const Graph g = test_graph(101, 7, 3, 43);
  GnnConfig config = GnnConfig::three_layer(7, 3, 5);
  const RunOutcome serial = run_serial(g, config, 3);
  const RunOutcome d1 = run_distributed("1d", g, config, 6, 3);
  const RunOutcome d2 = run_distributed("2d", g, config, 9, 3);
  EXPECT_LE(Matrix::max_abs_diff(d1.output, serial.output), kParityTol);
  EXPECT_LE(Matrix::max_abs_diff(d2.output, serial.output), kParityTol);
}

TEST(DistParity, DirectedGraphMatchesAcrossAllFamilies) {
  SKIP_IF_AMBIENT_LOSSY();
  // A directed (asymmetric) adjacency exercises the A-vs-A^T handling: the
  // forward pass multiplies by A^T, the backward by A, and the 2D/3D
  // algebras materialize A through distributed transposes.
  Rng rng(51);
  Graph g;
  g.name = "directed";
  g.adjacency = gcn_normalize(rmat(80, 80 * 5, rng), /*symmetrize=*/false);
  g.features = Matrix(80, 9);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = 4;
  g.labels.resize(80);
  for (auto& label : g.labels) {
    label = static_cast<Index>(rng.next_below(4));
  }
  GnnConfig config = GnnConfig::three_layer(9, 4, 6);

  const RunOutcome serial = run_serial(g, config, 3);
  for (const auto& [algebra, p] :
       {std::pair<std::string, int>{"1d", 4},
        {"1.5d-c2", 8},
        {"2d", 9},
        {"3d", 8}}) {
    const RunOutcome dist = run_distributed(algebra, g, config, p, 3);
    EXPECT_LE(Matrix::max_abs_diff(dist.output, serial.output), kParityTol)
        << "algebra " << algebra << " P=" << p;
  }
}

TEST(DistParity, MaskedLabelsMatchSerial) {
  SKIP_IF_AMBIENT_LOSSY();
  Graph g = test_graph(72, 8, 3, 52);
  for (std::size_t v = 0; v < g.labels.size(); v += 3) g.labels[v] = -1;
  GnnConfig config = GnnConfig::three_layer(8, 3, 5);
  const RunOutcome serial = run_serial(g, config, 3);
  for (const auto& [algebra, p] : {std::pair<std::string, int>{"1d", 6},
                                   {"2d", 4},
                                   {"3d", 8}}) {
    const RunOutcome dist = run_distributed(algebra, g, config, p, 3);
    ASSERT_EQ(dist.losses.size(), serial.losses.size());
    for (std::size_t e = 0; e < serial.losses.size(); ++e) {
      EXPECT_NEAR(dist.losses[e], serial.losses[e], kParityTol);
    }
  }
}

TEST(DistParity, DeepNetworkMatchesOn3D) {
  SKIP_IF_AMBIENT_LOSSY();
  const Graph g = test_graph(100, 6, 3, 53);
  GnnConfig config;
  config.dims = {6, 10, 10, 10, 10, 3};  // 5 layers
  const RunOutcome serial = run_serial(g, config, 2);
  const RunOutcome dist = run_distributed("3d", g, config, 27, 2);
  EXPECT_LE(Matrix::max_abs_diff(dist.output, serial.output), kParityTol);
}

TEST(DistParity, ConfigGraphMismatchThrowsInWorld) {
  const Graph g = test_graph(40, 8, 3, 54);
  GnnConfig bad = GnnConfig::three_layer(9, 3);  // wrong input width
  const DistProblem problem = DistProblem::prepare(g);
  EXPECT_THROW(run_world(4,
                         [&](Comm& world) {
                           Dist2D trainer(problem, bad, world);
                         }),
               Error);
}

TEST(DistParity, ThreeDRejectsNonCubeWorld) {
  const Graph g = test_graph(40, 8, 3, 55);
  const DistProblem problem = DistProblem::prepare(g);
  const GnnConfig config = GnnConfig::three_layer(8, 3);
  EXPECT_THROW(run_world(4,
                         [&](Comm& world) {
                           Dist3D trainer(problem, config, world);
                         }),
               Error);
}

TEST(DistParity, FifteenDRejectsBadReplication) {
  const Graph g = test_graph(40, 8, 3, 56);
  const DistProblem problem = DistProblem::prepare(g);
  const GnnConfig config = GnnConfig::three_layer(8, 3);
  EXPECT_THROW(run_world(6,
                         [&](Comm& world) {
                           Dist15D trainer(problem, config, world, 4);
                         }),
               Error);
}

TEST(DistMeter, FifteenDDenseTrafficFallsWithReplication) {
  // Section IV-B: c-fold replication cuts the broadcast volume ~1/c once
  // P >> c^2 (the team-reduction terms scale with c/P). The closed form
  // cost_15d predicts a ~0.34x ratio for c=4 at P=64. The claim is about
  // the *broadcast* algorithm's volumes, so pin the halo exchange off (a
  // CAGNET_HALO=1 environment would replace the backward reduce-scatter
  // with the sparsity-aware contribution exchange at c=1 and skew the
  // ratio; halo-mode volumes are covered by tests/halo_test.cpp).
  const bool halo_was = dist::halo_enabled();
  dist::set_halo_enabled(false);
  const Graph g = test_graph(256, 16, 4, 57);
  GnnConfig config;
  config.dims = {16, 16, 16, 4};
  const DistProblem problem = DistProblem::prepare(g);
  const auto measure = [&](int c) {
    double words = 0;
    run_world(64, [&](Comm& world) {
      Dist15D trainer(problem, config, world, c);
      trainer.train_epoch();
      const EpochStats s = trainer.reduce_epoch_stats();
      if (world.rank() == 0) words = s.comm.words(CommCategory::kDense);
    });
    return words;
  };
  const double words_c1 = measure(1);
  const double words_c4 = measure(4);
  EXPECT_LT(words_c4, 0.5 * words_c1);
  dist::set_halo_enabled(halo_was);
}

TEST(DistParity, FeatureDimNarrowerThanGridMatchesSerial) {
  SKIP_IF_AMBIENT_LOSSY();
  // A feature dimension smaller than the grid dimension gives some process
  // columns the full slice and others an empty one — the engine's
  // rows-whole branching must stay uniform across ranks (a per-rank slice
  // test deadlocks the gather collectives here).
  const Graph g = test_graph(48, 6, 1, 63);
  for (const std::vector<Index>& dims :
       {std::vector<Index>{6, 4, 1}, {6, 1, 4, 1}}) {
    GnnConfig config;
    config.dims = dims;
    const RunOutcome serial = run_serial(g, config, 2);
    for (const auto& [algebra, p] : {std::pair<std::string, int>{"2d", 4},
                                     {"3d", 8}}) {
      const RunOutcome dist = run_distributed(algebra, g, config, p, 2);
      EXPECT_LE(Matrix::max_abs_diff(dist.output, serial.output), kParityTol)
          << "algebra " << algebra;
    }
  }
}

TEST(DistParity, TwoLayerNetworkMatches) {
  SKIP_IF_AMBIENT_LOSSY();
  const Graph g = test_graph(64, 10, 4, 44);
  GnnConfig config;
  config.dims = {10, 4};
  const RunOutcome serial = run_serial(g, config, 3);
  const RunOutcome d2 = run_distributed("2d", g, config, 4, 3);
  EXPECT_LE(Matrix::max_abs_diff(d2.output, serial.output), kParityTol);
}

// Optimizer state (momentum, Adam moments) is replicated alongside W, so
// distributed parity must hold for every optimizer kind.
class OptimizerParity : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerParity, DistributedMatchesSerial) {
  SKIP_IF_AMBIENT_LOSSY();
  const Graph g = test_graph(80, 10, 4, 60);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  config.learning_rate = 0.05;
  config.optimizer.kind = GetParam();
  const int epochs = 5;  // enough steps for momentum/Adam state to matter

  const RunOutcome serial = run_serial(g, config, epochs);
  for (const auto& [algebra, p] : {std::pair<std::string, int>{"1d", 4},
                                   {"2d", 9},
                                   {"3d", 8},
                                   {"1.5d-c2", 8}}) {
    const RunOutcome dist = run_distributed(algebra, g, config, p, epochs);
    for (std::size_t e = 0; e < serial.losses.size(); ++e) {
      EXPECT_NEAR(dist.losses[e], serial.losses[e], kParityTol)
          << "algebra " << algebra << " epoch " << e;
    }
    EXPECT_LE(Matrix::max_abs_diff(dist.output, serial.output), kParityTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerParity,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam));

// ---- Metered traffic vs the Section IV closed forms ----

TEST(DistMeter, OneDDenseWordsMatchClosedForm) {
  // This is a broadcast-path (Algorithm 1) bound: pin the halo exchange
  // off so a CAGNET_HALO=1 environment cannot reroute the dense words.
  const bool halo_was = dist::halo_enabled();
  dist::set_halo_enabled(false);
  const Index n = 96;
  const Index f = 8;  // uniform width keeps the formula exact
  const Graph g = test_graph(n, f, 4, 45);
  GnnConfig config;
  config.dims = {f, f, f, 4};
  const int p = 4;
  const int L = 3;

  const RunOutcome dist = run_distributed("1d", g, config, p, 1);
  const double dense_words = dist.stats.comm.words(CommCategory::kDense);

  // Per layer and per rank: broadcasts deliver ~n*f (edgecut bound with the
  // trailing f_out=4 layer slightly smaller), reduce-scatter ~n*f*(p-1)/p,
  // all-reduce ~2*f^2*(p-1)/p. The closed form L*(edgecut*f + n*f + f^2)
  // with edgecut = n(p-1)/p should agree within ~35% (layer-width taper and
  // the meter charging the root its own block).
  const CostInputs in = CostInputs::from_random(
      static_cast<double>(n), 0.0, static_cast<double>(f), p, L);
  const double predicted = cost_1d(in).words;
  EXPECT_GT(dense_words, 0.5 * predicted);
  EXPECT_LT(dense_words, 1.6 * predicted);
  dist::set_halo_enabled(halo_was);
}

TEST(DistMeter, TwoDDenseWordsScaleWithSqrtP) {
  const Graph g = test_graph(144, 16, 4, 46);
  GnnConfig config;
  config.dims = {16, 16, 16, 4};

  const RunOutcome p4 = run_distributed("2d", g, config, 4, 1);
  const RunOutcome p16 = run_distributed("2d", g, config, 16, 1);
  const double w4 = p4.stats.comm.words(CommCategory::kDense);
  const double w16 = p16.stats.comm.words(CommCategory::kDense);
  // Section IV-C: dense words per process fall by ~sqrt(4) = 2 when P
  // quadruples. Allow generous slack for the f^2 replication terms and
  // uneven blocks at this small scale.
  EXPECT_GT(w4 / w16, 1.4);
  EXPECT_LT(w4 / w16, 3.0);
}

TEST(DistMeter, TwoDSparseTrafficPresentAndTransposeCharged) {
  const Graph g = test_graph(100, 8, 4, 47);
  GnnConfig config = GnnConfig::three_layer(8, 4, 8);
  const RunOutcome r = run_distributed("2d", g, config, 9, 1);
  EXPECT_GT(r.stats.comm.words(CommCategory::kSparse), 0.0);
  EXPECT_GT(r.stats.comm.words(CommCategory::kTranspose), 0.0);
  // 1D has no sparse movement at all (A never travels in Algorithm 1).
  const RunOutcome r1 = run_distributed("1d", g, config, 4, 1);
  EXPECT_DOUBLE_EQ(r1.stats.comm.words(CommCategory::kSparse), 0.0);
}

TEST(DistMeter, SingleProcessMovesNoData) {
  const Graph g = test_graph(64, 6, 3, 48);
  GnnConfig config = GnnConfig::three_layer(6, 3, 4);
  for (const char* algebra : {"1d", "2d"}) {
    const RunOutcome r = run_distributed(algebra, g, config, 1, 1);
    EXPECT_DOUBLE_EQ(r.stats.comm.words(CommCategory::kDense), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.comm.words(CommCategory::kSparse), 0.0);
  }
}

TEST(DistParity, GatherOutputIdenticalOnEveryRank) {
  // gather_output is a collective returning the full H^L; every rank must
  // observe bitwise the same matrix.
  const Graph g = test_graph(60, 6, 3, 61);
  const GnnConfig config = GnnConfig::three_layer(6, 3, 5);
  const DistProblem problem = DistProblem::prepare(g);
  run_world(9, [&](Comm& world) {
    Dist2D trainer(problem, config, world);
    trainer.train_epoch();
    Matrix mine = trainer.gather_output();
    // Compare against rank 0's copy via a broadcast.
    Matrix reference = mine;
    world.broadcast(reference.flat(), 0, CommCategory::kControl);
    ASSERT_LE(Matrix::max_abs_diff(mine, reference), 0.0);
  });
}

TEST(DistParity, RepeatedEpochsKeepWeightsReplicated) {
  // After several epochs, every rank's replicated weights must agree
  // exactly (any drift would indicate a non-deterministic reduction).
  const Graph g = test_graph(70, 8, 4, 62);
  GnnConfig config = GnnConfig::three_layer(8, 4, 6);
  config.optimizer.kind = OptimizerKind::kAdam;
  const DistProblem problem = DistProblem::prepare(g);
  run_world(8, [&](Comm& world) {
    Dist3D trainer(problem, config, world);
    for (int e = 0; e < 4; ++e) trainer.train_epoch();
    for (const Matrix& w : trainer.weights()) {
      Matrix reference = w;
      world.broadcast(reference.flat(), 0, CommCategory::kControl);
      ASSERT_LE(Matrix::max_abs_diff(w, reference), 0.0);
    }
  });
}

TEST(DistStats, WorkMeterSeesSpmmOnAllRanks) {
  const Graph g = test_graph(80, 8, 4, 49);
  GnnConfig config = GnnConfig::three_layer(8, 4, 8);
  const RunOutcome r = run_distributed("2d", g, config, 4, 1);
  EXPECT_GT(r.stats.work.spmm_flops(), 0.0);
  EXPECT_GT(r.stats.work.gemm_flops(), 0.0);
  EXPECT_GT(r.stats.work.total_seconds(), 0.0);
}

// Randomized differential sweep: random graph shape x random architecture
// x every algebra family, always compared against the serial oracle.
class RandomizedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedDifferential, AllFamiliesMatchSerial) {
  SKIP_IF_AMBIENT_LOSSY();
  const int trial = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(trial));
  const Index n = 48 + static_cast<Index>(rng.next_below(80));
  const Index f = 4 + static_cast<Index>(rng.next_below(10));
  const Index classes = 2 + static_cast<Index>(rng.next_below(5));
  const Index hidden = 3 + static_cast<Index>(rng.next_below(12));
  const Index layers = 2 + static_cast<Index>(rng.next_below(3));
  const bool directed = rng.next_below(2) == 0;

  Graph g;
  g.name = "fuzz";
  g.adjacency = gcn_normalize(
      rmat(n, n * (3 + static_cast<Index>(rng.next_below(6))), rng),
      !directed);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    // ~1/8 of vertices unlabeled.
    label = rng.next_below(8) == 0
                ? Index{-1}
                : static_cast<Index>(rng.next_below(
                      static_cast<std::uint64_t>(classes)));
  }

  GnnConfig config;
  config.dims.push_back(f);
  for (Index l = 0; l + 1 < layers; ++l) config.dims.push_back(hidden);
  config.dims.push_back(classes);
  config.seed = 7 + static_cast<std::uint64_t>(trial);

  const RunOutcome serial = run_serial(g, config, 2);
  for (const auto& [algebra, p] : {std::pair<std::string, int>{"1d", 5},
                                   {"1.5d-c2", 6},
                                   {"2d", 16},
                                   {"3d", 8}}) {
    const RunOutcome dist = run_distributed(algebra, g, config, p, 2);
    EXPECT_LE(Matrix::max_abs_diff(dist.output, serial.output), kParityTol)
        << "trial " << trial << " algebra " << algebra;
    for (std::size_t e = 0; e < serial.losses.size(); ++e) {
      EXPECT_NEAR(dist.losses[e], serial.losses[e], kParityTol)
          << "trial " << trial << " algebra " << algebra;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, RandomizedDifferential,
                         ::testing::Range(0, 8));

// ---- Overlap mode vs blocking mode ----
// With CAGNET_OVERLAP=1 the SUMMA-style loops double-buffer their stage
// broadcasts and the 1.5D replica reduction is drained behind the Z = T W
// GEMM, but losses, embeddings, weights, and metered words/latency must be
// *bitwise* identical to blocking mode for every algebra and world size —
// overlap may only move wall time, never results or modeled volumes.

struct OverlapRun {
  std::vector<Real> losses;
  std::vector<Matrix> weights;
  Matrix output;
  std::vector<std::vector<double>> epoch_meters;  // rank 0, per epoch
  double overlap_regions = 0;
  double overlap_saved = 0;
};

OverlapRun run_for_overlap_compare(const std::string& algebra,
                                   const DistProblem& problem,
                                   const GnnConfig& config, int p,
                                   int epochs) {
  OverlapRun run;
  std::mutex mutex;
  run_world(p, [&](Comm& world) {
    auto trainer = make_dist_trainer(algebra, problem, config, world);
    std::vector<Real> losses;
    std::vector<std::vector<double>> meters;
    for (int e = 0; e < epochs; ++e) {
      losses.push_back(trainer->train_epoch().loss);
      const CostMeter& m = trainer->last_epoch_stats().comm;
      std::vector<double> row;
      for (std::size_t c = 0; c < CostMeter::kNumCategories; ++c) {
        const auto cat = static_cast<CommCategory>(c);
        row.push_back(m.latency_units(cat));
        row.push_back(m.words(cat));
      }
      meters.push_back(std::move(row));
    }
    Matrix out = trainer->gather_output();
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      const CostMeter& m = trainer->last_epoch_stats().comm;
      run.losses = std::move(losses);
      run.weights = trainer->weights();
      run.output = std::move(out);
      run.epoch_meters = std::move(meters);
      run.overlap_regions = m.overlap_regions();
      run.overlap_saved = m.overlap_saved_seconds();
    }
  });
  return run;
}

TEST(OverlapParity, BitwiseIdenticalToBlockingAcrossAlgebras) {
  const Graph g = test_graph(96, 10, 4, 77);
  const DistProblem problem = DistProblem::prepare(g);
  GnnConfig config = GnnConfig::three_layer(10, 4, 8);
  const int epochs = 3;
  const bool was_enabled = dist::overlap_enabled();
  // The overlap-regions assertions below are about the double-buffered
  // broadcast loops; pin the halo exchange off so a CAGNET_HALO=1
  // environment cannot replace them (halo x overlap parity is covered by
  // tests/halo_test.cpp).
  const bool halo_was = dist::halo_enabled();
  dist::set_halo_enabled(false);

  for (const auto& [algebra, p] :
       {std::pair<std::string, int>{"1d", 4},
        {"1.5d-c2", 4},
        {"1.5d-c2", 8},
        {"1.5d-c4", 4},
        {"2d", 4},
        {"2d", 9},
        {"3d", 8}}) {
    dist::set_overlap_enabled(true);
    const OverlapRun overlapped =
        run_for_overlap_compare(algebra, problem, config, p, epochs);
    dist::set_overlap_enabled(false);
    const OverlapRun blocking =
        run_for_overlap_compare(algebra, problem, config, p, epochs);

    const std::string label = algebra + " p=" + std::to_string(p);
    ASSERT_EQ(overlapped.losses.size(), blocking.losses.size()) << label;
    for (std::size_t e = 0; e < overlapped.losses.size(); ++e) {
      EXPECT_EQ(overlapped.losses[e], blocking.losses[e])
          << label << " loss, epoch " << e;
    }
    ASSERT_EQ(overlapped.weights.size(), blocking.weights.size()) << label;
    for (std::size_t l = 0; l < overlapped.weights.size(); ++l) {
      EXPECT_LE(Matrix::max_abs_diff(overlapped.weights[l],
                                     blocking.weights[l]),
                Real{0})
          << label << " weights, layer " << l;
    }
    EXPECT_LE(Matrix::max_abs_diff(overlapped.output, blocking.output),
              Real{0})
        << label << " output";
    // Metered words and latency units: bitwise equal per epoch/category.
    ASSERT_EQ(overlapped.epoch_meters.size(), blocking.epoch_meters.size());
    for (std::size_t e = 0; e < overlapped.epoch_meters.size(); ++e) {
      for (std::size_t i = 0; i < overlapped.epoch_meters[e].size(); ++i) {
        EXPECT_EQ(overlapped.epoch_meters[e][i], blocking.epoch_meters[e][i])
            << label << " epoch " << e << " meter slot " << i;
      }
    }
    // Overlap mode actually recorded overlapped regions (p > 1 SUMMA-style
    // loops always have at least one per layer); blocking recorded none.
    EXPECT_GT(overlapped.overlap_regions, 0.0) << label;
    EXPECT_GE(overlapped.overlap_saved, 0.0) << label;
    EXPECT_DOUBLE_EQ(blocking.overlap_regions, 0.0) << label;
  }
  dist::set_overlap_enabled(was_enabled);
  dist::set_halo_enabled(halo_was);
}

TEST(OverlapParity, CachedEpochsStillReplayExactlyUnderOverlap) {
  // Epoch cache x overlap: cached blocks are served from the prefetch
  // buffers and the replayed charges must still match the uncached path
  // bitwise while overlap is on.
  const Graph g = test_graph(80, 8, 3, 78);
  const DistProblem problem = DistProblem::prepare(g);
  GnnConfig config = GnnConfig::three_layer(8, 3, 6);
  const bool was_enabled = dist::overlap_enabled();
  dist::set_overlap_enabled(true);
  for (const auto& [algebra, p] :
       {std::pair<std::string, int>{"2d", 4}, {"3d", 8}}) {
    dist::set_epoch_cache_enabled(true);
    const OverlapRun cached =
        run_for_overlap_compare(algebra, problem, config, p, 3);
    dist::set_epoch_cache_enabled(false);
    const OverlapRun uncached =
        run_for_overlap_compare(algebra, problem, config, p, 3);
    dist::set_epoch_cache_enabled(true);
    for (std::size_t e = 0; e < cached.epoch_meters.size(); ++e) {
      for (std::size_t i = 0; i < cached.epoch_meters[e].size(); ++i) {
        EXPECT_EQ(cached.epoch_meters[e][i], uncached.epoch_meters[e][i])
            << algebra << " epoch " << e << " slot " << i;
      }
    }
    for (std::size_t e = 0; e < cached.losses.size(); ++e) {
      EXPECT_EQ(cached.losses[e], uncached.losses[e]) << algebra;
    }
  }
  dist::set_overlap_enabled(was_enabled);
}

TEST(DistStats, ProfilerCoversAllPhasesFor2D) {
  const Graph g = test_graph(81, 8, 4, 50);
  GnnConfig config = GnnConfig::three_layer(8, 4, 8);
  const RunOutcome r = run_distributed("2d", g, config, 9, 1);
  EXPECT_GT(r.stats.profiler.seconds(Phase::kSpmm), 0.0);
  EXPECT_GT(r.stats.profiler.seconds(Phase::kDenseComm), 0.0);
  EXPECT_GT(r.stats.profiler.seconds(Phase::kSparseComm), 0.0);
  EXPECT_GT(r.stats.profiler.seconds(Phase::kTranspose), 0.0);
  EXPECT_GT(r.stats.profiler.seconds(Phase::kMisc), 0.0);
}

}  // namespace
}  // namespace cagnet
