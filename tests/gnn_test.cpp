// Tests for the serial GCN reference: forward shape/semantics, a full
// numerical gradient check of the paper's backpropagation equations, loss
// descent, and the ability to overfit a tiny graph.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dense/ops.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/graph/datasets.hpp"
#include "src/sparse/generate.hpp"

namespace cagnet {
namespace {

Graph tiny_graph(Index n, Index f, Index classes, std::uint64_t seed,
                 double degree = 4.0) {
  Rng rng(seed);
  Graph g;
  g.name = "tiny";
  g.adjacency = gcn_normalize(erdos_renyi(n, degree, rng), true);
  g.features = Matrix(n, f);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = classes;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    label = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(classes)));
  }
  return g;
}

TEST(Model, ThreeLayerConfigShape) {
  const GnnConfig c = GnnConfig::three_layer(602, 41);
  ASSERT_EQ(c.dims.size(), 4u);
  EXPECT_EQ(c.dims[0], 602);
  EXPECT_EQ(c.dims[1], 16);  // the paper's 16-wide hidden layers
  EXPECT_EQ(c.dims[2], 16);
  EXPECT_EQ(c.dims[3], 41);
  EXPECT_EQ(c.num_layers(), 3);
}

TEST(Model, WeightsDeterministicInSeed) {
  GnnConfig c = GnnConfig::three_layer(32, 7);
  const auto w1 = make_weights(c);
  const auto w2 = make_weights(c);
  ASSERT_EQ(w1.size(), 3u);
  for (std::size_t l = 0; l < w1.size(); ++l) {
    EXPECT_TRUE(Matrix::allclose(w1[l], w2[l], 0.0));
  }
  c.seed = 99;
  const auto w3 = make_weights(c);
  EXPECT_FALSE(Matrix::allclose(w1[0], w3[0], 1e-12));
}

TEST(Model, LayerWeightsAreIndependentStreams) {
  const GnnConfig c = GnnConfig::three_layer(16, 16, 16);
  const auto w = make_weights(c);
  // Same shapes, but different values per layer.
  EXPECT_FALSE(Matrix::allclose(w[0], w[1], 1e-12));
  EXPECT_FALSE(Matrix::allclose(w[1], w[2], 1e-12));
}

TEST(SerialTrainer, ForwardShapesAndLogProbRows) {
  const Graph g = tiny_graph(30, 8, 5, 1);
  SerialTrainer trainer(g, GnnConfig::three_layer(8, 5, 6));
  const Matrix& out = trainer.forward();
  EXPECT_EQ(out.rows(), 30);
  EXPECT_EQ(out.cols(), 5);
  for (Index i = 0; i < out.rows(); ++i) {
    Real sum = 0;
    for (Index j = 0; j < out.cols(); ++j) sum += std::exp(out(i, j));
    EXPECT_NEAR(sum, 1.0, 1e-10);
  }
}

TEST(SerialTrainer, ConfigMismatchRejected) {
  const Graph g = tiny_graph(10, 8, 5, 2);
  EXPECT_THROW(SerialTrainer(g, GnnConfig::three_layer(9, 5)), Error);
  EXPECT_THROW(SerialTrainer(g, GnnConfig::three_layer(8, 4)), Error);
}

// The decisive correctness test: analytic weight gradients (the paper's
// equations 1-3) must match central-difference numerical gradients of the
// NLL loss for every weight entry of every layer.
TEST(SerialTrainer, GradientsMatchNumericalDifferentiation) {
  const Graph g = tiny_graph(14, 5, 3, 3);
  GnnConfig config = GnnConfig::three_layer(5, 3, 4);
  SerialTrainer trainer(g, config);

  trainer.forward();
  trainer.backward();
  const auto analytic = trainer.gradients();  // copy before weights change

  const Real eps = 1e-6;
  for (std::size_t l = 0; l < trainer.weights().size(); ++l) {
    for (Index i = 0; i < trainer.weights()[l].rows(); ++i) {
      for (Index j = 0; j < trainer.weights()[l].cols(); ++j) {
        const Real original = trainer.weights()[l](i, j);
        trainer.weights()[l](i, j) = original + eps;
        const Real loss_plus = nll_loss(trainer.forward(), g.labels);
        trainer.weights()[l](i, j) = original - eps;
        const Real loss_minus = nll_loss(trainer.forward(), g.labels);
        trainer.weights()[l](i, j) = original;
        const Real numeric = (loss_plus - loss_minus) / (2 * eps);
        EXPECT_NEAR(analytic[l](i, j), numeric, 1e-5)
            << "layer " << l << " entry (" << i << "," << j << ")";
      }
    }
  }
}

TEST(SerialTrainer, LossDecreasesOverEpochs) {
  const Graph g = tiny_graph(60, 12, 4, 4);
  GnnConfig config = GnnConfig::three_layer(12, 4);
  config.learning_rate = 0.5;
  SerialTrainer trainer(g, config);
  const Real first = trainer.train_epoch().loss;
  Real last = first;
  for (int e = 0; e < 30; ++e) last = trainer.train_epoch().loss;
  EXPECT_LT(last, first);
}

TEST(SerialTrainer, OverfitsTinyGraph) {
  // With enough capacity and epochs, full-batch training must drive
  // training accuracy high on a tiny problem (sanity of the whole loop).
  const Graph g = tiny_graph(20, 16, 2, 5, /*degree=*/2.0);
  GnnConfig config;
  config.dims = {16, 32, 2};
  config.learning_rate = 1.0;
  SerialTrainer trainer(g, config);
  EpochResult r;
  for (int e = 0; e < 300; ++e) r = trainer.train_epoch();
  EXPECT_GE(r.accuracy, 0.9);
  EXPECT_LT(r.loss, 0.5);
}

TEST(SerialTrainer, StepWithoutBackwardThrows) {
  const Graph g = tiny_graph(10, 4, 2, 6);
  SerialTrainer trainer(g, GnnConfig::three_layer(4, 2));
  EXPECT_THROW(trainer.step(), Error);
}

TEST(SerialTrainer, BackwardWithoutForwardThrows) {
  const Graph g = tiny_graph(10, 4, 2, 7);
  SerialTrainer trainer(g, GnnConfig::three_layer(4, 2));
  EXPECT_THROW(trainer.backward(), Error);
}

TEST(SerialTrainer, MaskedVerticesDoNotContributeGradient) {
  // Identical graphs, but one has half its labels masked; the masked run
  // must differ (fewer gradient sources) yet both must be finite/sane.
  Graph g1 = tiny_graph(40, 6, 3, 8);
  Graph g2 = g1;
  for (std::size_t v = 0; v < g2.labels.size(); v += 2) g2.labels[v] = -1;

  SerialTrainer t1(g1, GnnConfig::three_layer(6, 3));
  SerialTrainer t2(g2, GnnConfig::three_layer(6, 3));
  const Real l1 = t1.train_epoch().loss;
  const Real l2 = t2.train_epoch().loss;
  EXPECT_TRUE(std::isfinite(l1));
  EXPECT_TRUE(std::isfinite(l2));
  EXPECT_FALSE(Matrix::allclose(t1.gradients()[0], t2.gradients()[0], 1e-12));
}

TEST(SerialTrainer, TwoLayerAndFourLayerConfigsRun) {
  const Graph g = tiny_graph(25, 6, 3, 9);
  for (std::vector<Index> dims :
       {std::vector<Index>{6, 3}, std::vector<Index>{6, 8, 8, 8, 3}}) {
    GnnConfig config;
    config.dims = dims;
    SerialTrainer trainer(g, config);
    const EpochResult r = trainer.train_epoch();
    EXPECT_TRUE(std::isfinite(r.loss));
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
  }
}

TEST(Optimizer, SgdMatchesManualUpdate) {
  std::vector<Matrix> w(1, Matrix(2, 2));
  w[0].fill(1.0);
  std::vector<Matrix> g(1, Matrix(2, 2));
  g[0].fill(0.5);
  Optimizer opt({.kind = OptimizerKind::kSgd}, 0.1, w);
  opt.step(w, g);
  for (Real v : w[0].flat()) EXPECT_DOUBLE_EQ(v, 1.0 - 0.1 * 0.5);
}

TEST(Optimizer, MomentumAccumulatesVelocity) {
  std::vector<Matrix> w(1, Matrix(1, 1));
  std::vector<Matrix> g(1, Matrix(1, 1));
  g[0](0, 0) = 1.0;
  OptimizerOptions options;
  options.kind = OptimizerKind::kMomentum;
  options.momentum = 0.5;
  Optimizer opt(options, 0.1, w);
  opt.step(w, g);  // v=1,   w=-0.1
  opt.step(w, g);  // v=1.5, w=-0.25
  EXPECT_NEAR(w[0](0, 0), -0.25, 1e-12);
}

TEST(Optimizer, AdamFirstStepIsSignedLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  std::vector<Matrix> w(1, Matrix(1, 2));
  std::vector<Matrix> g(1, Matrix(1, 2));
  g[0](0, 0) = 3.7;
  g[0](0, 1) = -0.02;
  OptimizerOptions options;
  options.kind = OptimizerKind::kAdam;
  Optimizer opt(options, 0.1, w);
  opt.step(w, g);
  EXPECT_NEAR(w[0](0, 0), -0.1, 1e-6);
  EXPECT_NEAR(w[0](0, 1), 0.1, 1e-4);
}

TEST(Optimizer, AdamConvergesFasterOnIllScaledProblem) {
  // Adam's per-coordinate scaling should beat SGD when gradients differ by
  // orders of magnitude across layers; check on the usual tiny graph.
  const Graph g = tiny_graph(40, 8, 3, 11);
  GnnConfig sgd_config = GnnConfig::three_layer(8, 3);
  sgd_config.learning_rate = 0.01;
  GnnConfig adam_config = sgd_config;
  adam_config.optimizer.kind = OptimizerKind::kAdam;
  SerialTrainer sgd(g, sgd_config);
  SerialTrainer adam(g, adam_config);
  Real sgd_loss = 0;
  Real adam_loss = 0;
  for (int e = 0; e < 40; ++e) {
    sgd_loss = sgd.train_epoch().loss;
    adam_loss = adam.train_epoch().loss;
  }
  EXPECT_LT(adam_loss, sgd_loss);
}

TEST(Optimizer, MismatchedGradientsThrow) {
  std::vector<Matrix> w(1, Matrix(2, 2));
  std::vector<Matrix> g(2, Matrix(2, 2));
  Optimizer opt({.kind = OptimizerKind::kSgd}, 0.1, w);
  EXPECT_THROW(opt.step(w, g), Error);
}

TEST(SerialTrainer, EmbeddingsReproducibleAcrossRuns) {
  const Graph g = tiny_graph(30, 8, 4, 10);
  const GnnConfig config = GnnConfig::three_layer(8, 4);
  SerialTrainer a(g, config);
  SerialTrainer b(g, config);
  for (int e = 0; e < 5; ++e) {
    a.train_epoch();
    b.train_epoch();
  }
  EXPECT_TRUE(Matrix::allclose(a.forward(), b.forward(), 0.0));
}

}  // namespace
}  // namespace cagnet
