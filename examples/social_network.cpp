// Social-network node classification with an algorithm shoot-out.
//
//   ./social_network [--scale-denominator 128] [--epochs 2]
//
// Uses a Reddit-like graph (very dense: average degree ~493 >> f) and runs
// the same training under all four algorithm families at matching process
// counts, reporting metered per-rank communication and modeled Summit
// epoch times — the "algorithmic recipes" view of the paper's Section I.
#include <cstdio>
#include <memory>

#include "src/core/dist15d.hpp"
#include "src/core/dist1d.hpp"
#include "src/core/dist2d.hpp"
#include "src/core/dist3d.hpp"
#include "src/graph/datasets.hpp"
#include "src/util/cli.hpp"

using namespace cagnet;

namespace {

struct Row {
  const char* name;
  int procs;
  double dense_words;
  double sparse_words;
  double modeled_ms;
  double loss;
};

template <typename MakeTrainer>
Row run_one(const char* name, const DistProblem& problem,
            const GnnConfig& config, int procs, int epochs,
            MakeTrainer make_trainer) {
  const MachineModel summit = MachineModel::summit();
  Row row{name, procs, 0, 0, 0, 0};
  run_world(procs, [&](Comm& world) {
    auto trainer = make_trainer(world);
    EpochResult r{};
    for (int e = 0; e < epochs; ++e) r = trainer->train_epoch();
    const EpochStats s =
        trainer->reduce_epoch_stats();
    if (world.rank() == 0) {
      row.dense_words = s.comm.words(CommCategory::kDense);
      row.sparse_words = s.comm.words(CommCategory::kSparse) +
                         s.comm.words(CommCategory::kTranspose);
      row.modeled_ms = 1e3 * s.modeled_seconds(summit);
      row.loss = r.loss;
    }
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const long denom = args.get_int("scale-denominator", 128);
  const int epochs = static_cast<int>(args.get_int("epochs", 2));

  SyntheticOptions opt;
  opt.scale = 1.0 / static_cast<double>(denom);
  opt.max_features = args.get_int("max-features", 64);
  std::printf("generating reddit analog at 1/%ld scale (f capped at %lld)\n",
              denom, static_cast<long long>(opt.max_features));
  const Graph graph = make_dataset("reddit", opt);
  std::printf("  %lld vertices, %lld nonzeros\n\n",
              static_cast<long long>(graph.num_vertices()),
              static_cast<long long>(graph.num_edges()));

  GnnConfig config = GnnConfig::three_layer(graph.feature_dim(),
                                            graph.num_classes);
  const DistProblem problem = DistProblem::prepare(graph);

  std::vector<Row> rows;
  rows.push_back(run_one("1D   ", problem, config, 16, epochs, [&](Comm& w) {
    return std::make_unique<Dist1D>(problem, config, w);
  }));
  rows.push_back(run_one("1.5D ", problem, config, 16, epochs, [&](Comm& w) {
    return std::make_unique<Dist15D>(problem, config, w, 4);
  }));
  rows.push_back(run_one("2D   ", problem, config, 16, epochs, [&](Comm& w) {
    return std::make_unique<Dist2D>(problem, config, w);
  }));
  rows.push_back(run_one("3D   ", problem, config, 27, epochs, [&](Comm& w) {
    return std::make_unique<Dist3D>(problem, config, w);
  }));

  std::printf("%-6s %5s %14s %14s %12s %10s\n", "algo", "P", "dense words",
              "sparse words", "modeled ms", "loss");
  for (const Row& r : rows) {
    std::printf("%-6s %5d %14.3e %14.3e %12.3f %10.4f\n", r.name, r.procs,
                r.dense_words, r.sparse_words, r.modeled_ms, r.loss);
  }
  std::printf("\nAll losses agree: the algorithms are exact reformulations\n"
              "of the same full-batch GCN training (paper Section V-A).\n"
              "At these small P the 1D family still wins on latency; the 2D\n"
              "and 3D advantages appear at sqrt(P) >= 5 (see\n"
              "bench_costmodel_scaling).\n");
  return 0;
}
