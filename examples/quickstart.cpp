// Quickstart: train a 3-layer GCN serially, then distribute it with the
// paper's 2D (SUMMA) algorithm and verify both produce the same model.
//
//   ./quickstart [--vertices 2000] [--degree 8] [--features 32]
//                [--classes 7] [--epochs 20] [--procs 4]
//
// This walks the whole public API surface: graph construction and GCN
// normalization, the serial reference trainer, the simulated distributed
// world, and a distributed trainer with its metered communication stats.
#include <cstdio>

#include "src/core/dist2d.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/graph/graph.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Index n = args.get_int("vertices", 2000);
  const double degree = args.get_double("degree", 8.0);
  const Index f = args.get_int("features", 32);
  const Index classes = args.get_int("classes", 7);
  const int epochs = static_cast<int>(args.get_int("epochs", 20));
  const int procs = static_cast<int>(args.get_int("procs", 4));

  // 1. Build a node-classification problem: R-MAT topology, GCN-normalized
  //    adjacency D^-1/2 (A+I) D^-1/2, random features and labels.
  Rng rng(1234);
  Graph graph;
  graph.name = "quickstart";
  graph.adjacency =
      gcn_normalize(rmat(n, static_cast<Index>(degree * n), rng), true);
  graph.features = Matrix(n, f);
  graph.features.fill_uniform(rng, -1, 1);
  graph.num_classes = classes;
  graph.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : graph.labels) {
    label = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(classes)));
  }
  std::printf("graph: %lld vertices, %lld nonzeros, %lld features, %lld classes\n",
              static_cast<long long>(graph.num_vertices()),
              static_cast<long long>(graph.num_edges()),
              static_cast<long long>(graph.feature_dim()),
              static_cast<long long>(classes));

  // 2. Serial reference training.
  GnnConfig config = GnnConfig::three_layer(f, classes);
  config.learning_rate = 0.5;
  SerialTrainer serial(graph, config);
  std::printf("\nserial training (%d epochs):\n", epochs);
  EpochResult last{};
  for (int e = 0; e < epochs; ++e) {
    last = serial.train_epoch();
    if (e % 5 == 0 || e == epochs - 1) {
      std::printf("  epoch %3d  loss %.6f  train-acc %.3f\n", e, last.loss,
                  last.accuracy);
    }
  }

  // 3. The same training distributed over a sqrt(P) x sqrt(P) process grid
  //    with the paper's 2D SUMMA algorithm. Each "process" is a simulated
  //    rank; collectives move real data and are metered in the alpha-beta
  //    model.
  std::printf("\ndistributed 2D training on %d simulated processes:\n", procs);
  const DistProblem problem = DistProblem::prepare(graph);
  run_world(procs, [&](Comm& world) {
    Dist2D trainer(problem, config, world);
    EpochResult r{};
    for (int e = 0; e < epochs; ++e) r = trainer.train_epoch();
    const EpochStats stats =
        trainer.reduce_epoch_stats();
    if (world.rank() == 0) {
      std::printf("  final loss %.6f  train-acc %.3f\n", r.loss, r.accuracy);
      std::printf("  per-epoch traffic (busiest rank): dense %.0f words, "
                  "sparse %.0f words, transpose %.0f words\n",
                  stats.comm.words(CommCategory::kDense),
                  stats.comm.words(CommCategory::kSparse),
                  stats.comm.words(CommCategory::kTranspose));
      const MachineModel summit = MachineModel::summit();
      std::printf("  modeled Summit epoch time: %.3f ms\n",
                  1e3 * stats.modeled_seconds(summit));
      std::printf("  parity with serial: |loss_2d - loss_serial| = %.2e\n",
                  std::abs(r.loss - last.loss));
    }
  });
  std::printf("\nDone. The distributed model matches the serial one up to\n"
              "floating-point accumulation order (see tests/dist_test.cpp\n"
              "for the strict parity checks).\n");
  return 0;
}
