// Protein-network embedding: the paper's flagship workload (a HipMCL
// protein-similarity subgraph with 1.06B edges, trained on up to 100 GPUs).
//
//   ./protein_embedding [--scale-denominator 256] [--procs 36]
//                       [--epochs 2] [--hidden 16]
//
// Regenerates a scale-free analog of the protein dataset (matched average
// degree d ~ 121, f = 128 input features, 256 classes), trains the paper's
// 3-layer GCN with the 2D algorithm, and reports the modeled Summit epoch
// time with its Fig. 3-style breakdown.
#include <cstdio>

#include "src/core/dist2d.hpp"
#include "src/graph/datasets.hpp"
#include "src/sparse/stats.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const long denom = args.get_int("scale-denominator", 256);
  const int procs = static_cast<int>(args.get_int("procs", 36));
  const int epochs = static_cast<int>(args.get_int("epochs", 2));
  const Index hidden = args.get_int("hidden", 16);

  if (exact_sqrt(procs) == 0) {
    std::fprintf(stderr, "--procs must be a perfect square for the 2D grid\n");
    return 1;
  }

  SyntheticOptions opt;
  opt.scale = 1.0 / static_cast<double>(denom);
  std::printf("generating protein analog at 1/%ld of Table VI scale...\n",
              denom);
  const Graph graph = make_dataset("protein", opt);
  const DegreeStats stats = degree_stats(graph.adjacency);
  std::printf("  %lld vertices, %lld nonzeros (avg degree %.1f, paper: 121),"
              " f=%lld, %lld classes\n",
              static_cast<long long>(stats.rows),
              static_cast<long long>(stats.nnz), stats.avg_degree,
              static_cast<long long>(graph.feature_dim()),
              static_cast<long long>(graph.num_classes));

  GnnConfig config = GnnConfig::three_layer(graph.feature_dim(),
                                            graph.num_classes, hidden);
  const DistProblem problem = DistProblem::prepare(graph);
  const MachineModel summit = MachineModel::summit();

  std::printf("training %d epochs on a %dx%d simulated grid...\n", epochs,
              exact_sqrt(procs), exact_sqrt(procs));
  WallTimer wall;
  run_world(procs, [&](Comm& world) {
    Dist2D trainer(problem, config, world);
    EpochResult r{};
    for (int e = 0; e < epochs; ++e) {
      r = trainer.train_epoch();
      const EpochStats s =
          trainer.reduce_epoch_stats();
      if (world.rank() == 0) {
        std::printf("  epoch %d: loss %.4f | modeled Summit epoch %.3f s "
                    "(comm %.3f s, spmm %.3f s, gemm %.3f s)\n",
                    e, r.loss, s.modeled_seconds(summit),
                    s.comm.modeled_seconds(summit), s.work.spmm_seconds(),
                    s.work.gemm_seconds());
        std::printf("    traffic/rank: dcomm %.2e w, scomm %.2e w, "
                    "trpose %.2e w | host wall so far %.1f s\n",
                    s.comm.words(CommCategory::kDense),
                    s.comm.words(CommCategory::kSparse),
                    s.comm.words(CommCategory::kTranspose), wall.seconds());
      }
    }
  });
  std::printf("done in %.1f s host wall (simulation; the modeled Summit\n"
              "numbers above are the paper-comparable quantity).\n",
              wall.seconds());
  return 0;
}
