// Graph analytics through the semiring interface (paper Section I: the
// neighborhood aggregation is a semiring, so the same SpMM machinery runs
// BFS and shortest paths).
//
//   ./graph_analytics [--vertices 2000] [--degree 6] [--source 0]
//
// Runs level-synchronous BFS with the (or, and) semiring and Bellman-Ford
// shortest paths with the (min, +) semiring, both as repeated SpMM on the
// same CSR the GNN trainers consume, and cross-checks against classical
// CPU implementations.
#include <cstdio>
#include <limits>
#include <queue>
#include <vector>

#include "src/sparse/generate.hpp"
#include "src/sparse/semiring.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Index n = args.get_int("vertices", 2000);
  const double degree = args.get_double("degree", 6.0);
  const Index source = args.get_int("source", 0);

  Rng rng(77);
  Coo coo = erdos_renyi(n, degree, rng);
  coo.symmetrize();
  // Positive random weights for SSSP; row i holds in-edges of vertex i so
  // one semiring SpMM propagates values along edges.
  for (auto& t : coo.entries()) t.val = 1.0 + rng.next_double() * 9.0;
  // Weight-0 self loops retain each vertex's settled value across sweeps.
  for (Index v = 0; v < n; ++v) coo.add(v, v, 0.0);
  coo.sort_and_combine();
  const Csr a = Csr::from_coo(coo);
  std::printf("graph: %lld vertices, %lld weighted edges\n\n",
              static_cast<long long>(n), static_cast<long long>(a.nnz()));

  // ---- BFS via (or, and) ----
  WallTimer bfs_timer;
  Matrix frontier(n, 1);
  frontier(source, 0) = 1;
  int rounds = 0;
  Index reached_prev = 0;
  Index reached = 1;
  Matrix next(n, 1);
  while (reached != reached_prev) {
    reached_prev = reached;
    spmm_semiring<OrAnd>(a, frontier, next);
    next(source, 0) = 1;
    std::swap(frontier, next);
    reached = 0;
    for (Index v = 0; v < n; ++v) reached += frontier(v, 0) != 0 ? 1 : 0;
    ++rounds;
  }
  std::printf("BFS (or,and semiring) : %lld/%lld vertices reachable from %lld"
              " in %d rounds (%.1f ms)\n",
              static_cast<long long>(reached), static_cast<long long>(n),
              static_cast<long long>(source), rounds,
              1e3 * bfs_timer.seconds());

  // Verify against a classical queue BFS over the same structure.
  {
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    std::queue<Index> queue;
    visited[static_cast<std::size_t>(source)] = 1;
    queue.push(source);
    const Csr at = a.transposed();  // out-edges of each vertex
    Index count = 1;
    while (!queue.empty()) {
      const Index u = queue.front();
      queue.pop();
      for (Index p = at.row_ptr()[u]; p < at.row_ptr()[u + 1]; ++p) {
        const Index v = at.col_idx()[p];
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = 1;
          ++count;
          queue.push(v);
        }
      }
    }
    std::printf("  classical BFS agrees: %lld reachable -> %s\n",
                static_cast<long long>(count),
                count == reached ? "OK" : "MISMATCH");
  }

  // ---- SSSP via (min, +) ----
  WallTimer sssp_timer;
  const Real inf = std::numeric_limits<Real>::infinity();
  Matrix dist(n, 1);
  dist.fill(inf);
  dist(source, 0) = 0;
  Matrix relaxed(n, 1);
  int sweeps = 0;
  while (true) {
    spmm_semiring<MinPlus>(a, dist, relaxed);
    if (relaxed(source, 0) > 0) relaxed(source, 0) = 0;
    ++sweeps;
    if (Matrix::max_abs_diff(relaxed, dist) == 0 || sweeps > n) break;
    std::swap(dist, relaxed);
  }
  double finite_sum = 0;
  Index finite_count = 0;
  for (Index v = 0; v < n; ++v) {
    if (dist(v, 0) < inf) {
      finite_sum += dist(v, 0);
      ++finite_count;
    }
  }
  std::printf("\nSSSP (min,+ semiring) : converged after %d Bellman-Ford "
              "sweeps (%.1f ms); mean distance %.3f over %lld reachable\n",
              sweeps, 1e3 * sssp_timer.seconds(),
              finite_sum / static_cast<double>(finite_count),
              static_cast<long long>(finite_count));
  std::printf("\nThe same Csr/Matrix operands feed GNN training and these\n"
              "analytics: the semiring swap is the Section I extension.\n");
  return 0;
}
