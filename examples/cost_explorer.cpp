// Communication-cost explorer: the paper's Section IV closed forms as a
// planning tool ("algorithmic recipes to get the fastest GNN
// implementations at large scale").
//
//   ./cost_explorer [--vertices 1e6-ish] [--nnz ...] [--features 128]
//                   [--layers 3] [--procs 4,16,64,256,1024]
//   ./cost_explorer --dataset protein     # use a Table VI shape
//
// Prints, per process count: words moved and modeled Summit epoch seconds
// for the 1D / 1.5D(c=4) / 2D / 3D algorithms, and which one wins.
//
// A final section grounds the 1D prediction in a *measured* edgecut
// (CostInputs::from_partition): it partitions a community-structured proxy
// graph with the greedy-BFS partitioner and prints the words a
// sparsity-aware halo run would move next to the random n(P-1)/P bound.
// Disable with --preview-vertices 0.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/costmodel.hpp"
#include "src/graph/datasets.hpp"
#include "src/graph/partition.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  double n = args.get_double("vertices", 1e6);
  double nnz = args.get_double("nnz", 0);
  double f = args.get_double("features", 128);
  const int layers = static_cast<int>(args.get_int("layers", 3));
  const std::string dataset = args.get("dataset", "");

  if (!dataset.empty()) {
    const DatasetSpec& spec = dataset_spec(dataset);
    n = static_cast<double>(spec.vertices);
    nnz = static_cast<double>(spec.edges);
    f = static_cast<double>(spec.features);
    std::printf("dataset %s: n=%.3e nnz=%.3e f=%.0f\n", dataset.c_str(), n,
                nnz, f);
  }
  if (nnz <= 0) nnz = 16 * n;

  const auto procs = args.get_int_list("procs", {4, 16, 36, 64, 100, 256,
                                                 1024, 4096});
  const MachineModel summit = MachineModel::summit();

  std::printf("\nper-epoch communication (words per process, Section IV "
              "closed forms; L=%d)\n", layers);
  std::printf("%6s %12s %12s %12s %12s   %-18s\n", "P", "1D", "1.5D(c=4)",
              "2D", "3D", "fastest (modeled)");
  for (long p : procs) {
    const CostInputs in = CostInputs::from_random(
        n, nnz, f, static_cast<int>(p), layers);
    const CommCost c1 = cost_1d(in);
    const CommCost c15 =
        p % 4 == 0 ? cost_15d(in, 4) : CommCost{1e300, 1e300};
    const CommCost c2 = cost_2d(in);
    const CommCost c3 = cost_3d(in);

    const double seconds[4] = {c1.seconds(summit), c15.seconds(summit),
                               c2.seconds(summit), c3.seconds(summit)};
    int best = 0;
    for (int a = 1; a < 4; ++a) {
      if (seconds[a] < seconds[best]) best = a;
    }
    char verdict[64];
    std::snprintf(verdict, sizeof(verdict), "%s (%.4f s)",
                  algorithm_name(best), seconds[best]);
    std::printf("%6ld %12.3e %12.3e %12.3e %12.3e   %-18s\n", p, c1.words,
                c15.words, c2.words, c3.words, verdict);
  }

  std::printf("\nmemory (words per process, incl. replication factors)\n");
  std::printf("%6s %12s %12s %12s %12s\n", "P", "1D", "1.5D(c=4)", "2D",
              "3D");
  for (long p : procs) {
    const CostInputs in = CostInputs::from_random(
        n, nnz, f, static_cast<int>(p), layers);
    std::printf("%6ld %12.3e %12.3e %12.3e %12.3e\n", p,
                memory_words_1d(in),
                p % 4 == 0 ? memory_words_15d(in, 4) : 0.0,
                memory_words_2d(in), memory_words_3d(in));
  }
  std::printf("\n2D consumes optimal memory and O(sqrt(P)) fewer words than"
              "\n1D; 3D shaves another O(P^(1/6)) at a P^(1/3) memory cost\n"
              "(paper abstract / Section IV).\n");

  // ---- Measured edgecut: predictions beyond the n(P-1)/P bound ----
  const Index pn = args.get_int("preview-vertices", 20000);
  if (pn > 0) {
    const double avg_degree = nnz / n;
    Rng rng(21);
    Coo coo = planted_partition(pn, std::max<Index>(pn / 256, 2),
                                0.8 * avg_degree, 0.2 * avg_degree, rng,
                                /*hub_fraction=*/0.0002,
                                /*hub_degree=*/avg_degree * 40);
    coo.symmetrize();
    const Csr a = Csr::from_coo(coo);
    std::printf("\n1D words under a *measured* greedy-BFS edgecut "
                "(community proxy: %lld vertices,\n%lld edges, scaled from "
                "the shape above; CostInputs::from_partition)\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.nnz()));
    std::printf("%6s %14s %14s %14s %10s\n", "P", "bound n(P-1)/P",
                "measured cut", "1D words", "vs bound");
    for (int p : {4, 16, 64}) {
      const Partition part = greedy_bfs_partition(a, p);
      const EdgeCutStats cut = edge_cut(a, part);
      const CostInputs bound = CostInputs::from_random(
          static_cast<double>(a.rows()), static_cast<double>(a.nnz()), f, p,
          layers);
      const CostInputs measured = CostInputs::from_partition(
          cut, static_cast<double>(a.rows()), static_cast<double>(a.nnz()),
          f, p, layers);
      std::printf("%6d %14.0f %14.0f %14.3e %9.2fx\n", p, bound.edgecut,
                  measured.edgecut, cost_1d_symmetric(measured).words,
                  cost_1d_symmetric(bound).words /
                      cost_1d_symmetric(measured).words);
    }
    std::printf("\nA locality partitioner plus the halo exchange "
                "(CAGNET_PARTITION=greedy-bfs,\nCAGNET_HALO=1) realizes the "
                "measured column; Algorithm 1's broadcasts pay\nthe bound "
                "regardless of partition quality (Section IV-A.8).\n");

    // ---- Bounded staleness: amortized forward-halo words per epoch ----
    // cost_1d_halo_stale amortizes the exact forward exchange over a
    // CAGNET_STALE=k refresh interval; k=1 is the exact per-epoch
    // exchange, and an adaptive run's effective (possibly fractional)
    // rate can be read back off the same curve.
    std::printf("\nforward-halo words per epoch under bounded staleness "
                "(CAGNET_STALE=k,\nmeasured greedy-BFS edgecut; k=1 is the "
                "exact exchange)\n");
    std::printf("%6s %14s %14s %14s %14s\n", "P", "k=1", "k=2", "k=4",
                "k=8");
    for (int p : {4, 16, 64}) {
      const Partition part = greedy_bfs_partition(a, p);
      const EdgeCutStats cut = edge_cut(a, part);
      const CostInputs measured = CostInputs::from_partition(
          cut, static_cast<double>(a.rows()), static_cast<double>(a.nnz()),
          f, p, layers);
      std::printf("%6d %14.3e %14.3e %14.3e %14.3e\n", p,
                  cost_1d_halo_stale(measured, 1).words,
                  cost_1d_halo_stale(measured, 2).words,
                  cost_1d_halo_stale(measured, 4).words,
                  cost_1d_halo_stale(measured, 8).words);
    }
    std::printf("\nThe metered counterpart is the kHalo words drop plus "
                "CostMeter::stale_saved_words\n(predicted saving at rate k "
                "= exact words minus the k column).\n");
  }
  return 0;
}
