// Community detection: a workload where the GCN genuinely learns.
//
//   ./community_detection [--vertices 600] [--communities 4] [--procs 4]
//                         [--epochs 60]
//
// Generates a planted-partition graph whose labels are the community ids,
// trains the paper's 3-layer GCN three ways — full-batch serial, full-batch
// distributed 2D (the paper's algorithm), and mini-batch with neighbor
// sampling (the paper's Section VII direction) — and compares accuracy.
// The full-batch runs agree exactly (Section V-A); sampling trades a little
// accuracy for a bounded memory footprint.
#include <cstdio>

#include "src/core/dist2d.hpp"
#include "src/dense/ops.hpp"
#include "src/gnn/checkpoint.hpp"
#include "src/gnn/sampling.hpp"
#include "src/gnn/serial_trainer.hpp"
#include "src/sparse/generate.hpp"
#include "src/util/cli.hpp"

using namespace cagnet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Index n = args.get_int("vertices", 600);
  const Index communities = args.get_int("communities", 4);
  const int procs = static_cast<int>(args.get_int("procs", 4));
  const int epochs = static_cast<int>(args.get_int("epochs", 60));

  Rng rng(2024);
  Graph g;
  g.name = "communities";
  g.adjacency = gcn_normalize(
      planted_partition(n, communities, 12, 1.5, rng, 0.0), true);
  g.features = Matrix(n, 16);
  g.features.fill_uniform(rng, -1, 1);
  g.num_classes = communities;
  g.labels.resize(static_cast<std::size_t>(n));
  const Index comm_size = (n + communities - 1) / communities;
  for (Index v = 0; v < n; ++v) {
    g.labels[static_cast<std::size_t>(v)] = v / comm_size;
  }
  std::printf("planted-partition graph: %lld vertices, %lld nonzeros, "
              "%lld communities (chance accuracy %.2f)\n\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()),
              static_cast<long long>(communities),
              1.0 / static_cast<double>(communities));

  GnnConfig config;
  config.dims = {16, 32, communities};
  config.learning_rate = 0.01;
  config.optimizer.kind = OptimizerKind::kAdam;

  // 1. Full-batch serial reference.
  SerialTrainer serial(g, config);
  EpochResult serial_result{};
  for (int e = 0; e < epochs; ++e) serial_result = serial.train_epoch();
  std::printf("full-batch serial     : loss %.4f  accuracy %.3f\n",
              serial_result.loss, serial_result.accuracy);

  // 2. Full-batch distributed (the paper's 2D algorithm).
  const DistProblem problem = DistProblem::prepare(g);
  run_world(procs, [&](Comm& world) {
    Dist2D trainer(problem, config, world);
    EpochResult r{};
    for (int e = 0; e < epochs; ++e) r = trainer.train_epoch();
    if (world.rank() == 0) {
      std::printf("full-batch 2D (P=%d)   : loss %.4f  accuracy %.3f  "
                  "(matches serial: |delta|=%.1e)\n",
                  procs, r.loss, r.accuracy,
                  std::abs(r.loss - serial_result.loss));
    }
  });

  // 3. Mini-batch with neighbor sampling (Section VII direction).
  MiniBatchOptions mb;
  mb.batch_size = 64;
  mb.fanouts = {10, 10};
  MiniBatchTrainer sampled(g, config, mb);
  EpochResult mb_result{};
  for (int e = 0; e < epochs; ++e) mb_result = sampled.train_epoch();
  const Matrix full_probs = sampled.predict();
  std::printf("mini-batch sampled    : loss %.4f  accuracy %.3f  "
              "(full-graph inference accuracy %.3f)\n",
              mb_result.loss, mb_result.accuracy,
              accuracy(full_probs, g.labels));

  // 4. Checkpoint round trip.
  save_weights("/tmp/cagnet_community.ckpt", serial.weights());
  SerialTrainer resumed(g, config);
  resumed.weights() = load_weights("/tmp/cagnet_community.ckpt");
  std::printf("\ncheckpoint restored   : forward parity %.1e\n",
              Matrix::max_abs_diff(resumed.forward(), serial.forward()));
  std::remove("/tmp/cagnet_community.ckpt");
  return 0;
}
