#include "src/core/costmodel.hpp"

#include <cmath>
#include <numeric>

#include "src/util/error.hpp"

namespace cagnet {

namespace {
double lg(double p) { return p <= 1 ? 0.0 : std::log2(p); }
}  // namespace

CostInputs CostInputs::from_random(double n, double nnz, double f, int p,
                                   int layers) {
  CostInputs in;
  in.n = n;
  in.nnz = nnz;
  in.f = f;
  in.p = p;
  in.layers = layers;
  in.edgecut = p > 0 ? n * (p - 1) / p : 0.0;
  return in;
}

CostInputs CostInputs::from_partition(const EdgeCutStats& cut, double n,
                                      double nnz, double f, int p,
                                      int layers) {
  CostInputs in = from_random(n, nnz, f, p, layers);
  in.edgecut = static_cast<double>(cut.max_remote_rows_per_part);
  return in;
}

CommCost cost_1d(const CostInputs& in) {
  const double L = in.layers;
  return {L * 3.0 * lg(in.p),
          L * (in.edgecut * in.f + in.n * in.f + in.f * in.f)};
}

CommCost cost_1d_symmetric(const CostInputs& in) {
  const double L = in.layers;
  return {L * 3.0 * lg(in.p), L * (2.0 * in.edgecut * in.f + in.f * in.f)};
}

CommCost cost_1d_halo_stale(const CostInputs& in, double stale_k) {
  CAGNET_CHECK(stale_k >= 1.0,
               "cost_1d_halo_stale: refresh interval must be >= 1");
  const double L = in.layers;
  return {L * static_cast<double>(in.p - 1) / stale_k,
          L * in.edgecut * in.f / stale_k};
}

CommCost cost_1d_transposing(const CostInputs& in) {
  CommCost c = cost_1d_symmetric(in);
  c.latency_units += 2.0 * static_cast<double>(in.p) * in.p;
  c.words += 2.0 * in.nnz / in.p;
  return c;
}

CommCost cost_15d(const CostInputs& in, int c) {
  CAGNET_CHECK(c >= 1 && in.p % c == 0,
               "replication factor must divide process count");
  const double L = in.layers;
  const double cc = c;
  return {L * (3.0 * lg(in.p) + 4.0),
          L * (2.0 * in.n * in.f / cc + 3.0 * in.n * in.f * cc / in.p +
               in.f * in.f)};
}

CommCost cost_2d(const CostInputs& in) {
  const double L = in.layers;
  const double rp = std::sqrt(static_cast<double>(in.p));
  return {L * (5.0 * rp + 3.0 * lg(in.p)),
          L * (8.0 * in.n * in.f / rp + 2.0 * in.nnz / rp + in.f * in.f)};
}

CommCost cost_2d_rectangular_forward(const CostInputs& in, int pr, int pc) {
  CAGNET_CHECK(pr >= 1 && pc >= 1 && pr * pc == in.p,
               "grid must multiply to P");
  return {static_cast<double>(std::gcd(pr, pc)),
          in.nnz / pr + in.n * in.f / pc + in.n * in.f / pr};
}

CommCost cost_3d(const CostInputs& in) {
  const double L = in.layers;
  const double p13 = std::cbrt(static_cast<double>(in.p));
  const double p23 = p13 * p13;
  return {L * 4.0 * p13,
          L * (2.0 * in.nnz / p23 + 12.0 * in.n * in.f / p23)};
}

// Memory accounting (words per process). Dense layer state is H^l for all
// L layers plus gradients of comparable size; we count the dominant terms:
// adjacency share + L dense activation shares (replicated per the scheme) +
// replicated weights L f^2.
double memory_words_1d(const CostInputs& in) {
  const double L = in.layers;
  return in.nnz / in.p + L * in.n * in.f / in.p + L * in.f * in.f;
}

double memory_words_15d(const CostInputs& in, int c) {
  const double L = in.layers;
  return in.nnz / in.p + L * c * in.n * in.f / in.p + L * in.f * in.f;
}

double memory_words_2d(const CostInputs& in) {
  const double L = in.layers;
  return in.nnz / in.p + L * in.n * in.f / in.p + L * in.f * in.f;
}

double memory_words_3d(const CostInputs& in) {
  const double L = in.layers;
  const double p13 = std::cbrt(static_cast<double>(in.p));
  // Inputs are unreplicated (1/P each); the intermediate stage carries the
  // well-known P^(1/3) dense replication factor (Section IV-D.1).
  return in.nnz / in.p + L * p13 * in.n * in.f / in.p + L * in.f * in.f;
}

const char* algorithm_name(int which) {
  switch (which) {
    case 0:
      return "1D";
    case 1:
      return "1.5D";
    case 2:
      return "2D";
    case 3:
      return "3D";
    default:
      return "?";
  }
}

}  // namespace cagnet
