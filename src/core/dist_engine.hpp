// The shared distributed GCN training engine.
//
// The paper's four partitioning algorithms (1D, 1.5D, 2D, 3D) differ *only*
// in how they realize the distributed SpMM A^T H (forward) and A G
// (backward) plus the collectives that keep W and Y replicated. Everything
// else — weight/optimizer state, the per-layer forward (distributed SpMM ->
// local GEMM -> ReLU / log-softmax), the loss/accuracy reduction, the
// backward recurrence, the SGD step, and EpochStats collection — is
// identical across the families. DistEngine owns that shared epoch;
// DistSpmmAlgebra is the strategy interface each partitioning implements
// (see DESIGN.md, "Engine / algebra split"). Adding a new partitioning is
// one algebra subclass plus a registry entry (algebra_registry.hpp).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/dist_common.hpp"
#include "src/gnn/optimizer.hpp"

namespace cagnet {

namespace dist {
class SampledRunner;
}  // namespace dist

/// Distributed linear algebra of one partitioning scheme. All methods are
/// collective over world(); every rank must call them in lockstep (the same
/// contract as Comm). An algebra is stateful only in its partitioned
/// adjacency blocks and communicators — activations, weights, and optimizer
/// state live in the engine.
///
/// Local data layout contract: each rank owns the H/G/Z row block
/// [row_lo(), row_hi()) and, of an f-wide feature dimension, the column
/// slice feat_slice(f). 1D/1.5D keep rows whole (feat_slice = [0, f)); the
/// 2D/3D families split features across process columns.
class DistSpmmAlgebra {
 public:
  explicit DistSpmmAlgebra(MachineModel machine) : machine_(machine) {}
  virtual ~DistSpmmAlgebra() = default;

  DistSpmmAlgebra(const DistSpmmAlgebra&) = delete;
  DistSpmmAlgebra& operator=(const DistSpmmAlgebra&) = delete;

  /// Registry / display name ("1d", "2d", ...). Purely local.
  virtual const char* name() const = 0;

  /// The world communicator (loss reduction, stats, meter deltas). The
  /// returned Comm's meter carries every charge this algebra makes, since
  /// meters are shared across split sub-communicators.
  virtual Comm& world() = 0;

  /// Target machine for modeled local-kernel work and for folding overlap
  /// regions (CostMeter overlap accounting). Purely local.
  const MachineModel& machine() const { return machine_; }

  // ---- Local layout (all purely local queries) ----

  /// First global row of this rank's H/G/Z blocks.
  virtual Index row_lo() const = 0;
  /// One past the last global row of this rank's H/G/Z blocks.
  virtual Index row_hi() const = 0;
  /// Row count of this rank's H/G/Z blocks.
  Index local_rows() const { return row_hi() - row_lo(); }

  /// Column range [c0, c1) of an f-wide feature dimension stored locally.
  virtual std::pair<Index, Index> feat_slice(Index f) const { return {0, f}; }

  /// True when local blocks hold whole feature rows (feat_slice is the
  /// identity) so gather_feature_rows is a no-op the engine may skip.
  /// Must be uniform across the world — the engine branches on it around
  /// collectives. Per-rank slice arithmetic is NOT a substitute: a 1-wide
  /// feature dimension on a multi-column grid gives some ranks the full
  /// slice and others an empty one.
  virtual bool rows_whole() const { return true; }

  /// True when this rank's output rows are the primary copy for loss and
  /// accuracy terms (replicas — 1.5D team members t > 0, 2D/3D process
  /// columns j > 0 — contribute nothing to the global reduction).
  virtual bool owns_loss_rows() const { return true; }

  /// Communicator of the sampled minibatch path, or nullptr when this
  /// algebra cannot host it. Sampled training needs a pure row-stripe
  /// layout — every rank owning whole rows [row_lo, row_hi) of H and the
  /// matching A^T stripe to sample in-neighbors from — so only the 1D
  /// family qualifies today; feature-sliced (2D/3D) and team-replicated
  /// (1.5D) layouts return nullptr and DistEngine raises a typed Error.
  virtual Comm* sample_comm() { return nullptr; }

  // ---- The distributed operations of one GCN layer ----
  //
  // All results are written into caller-owned output matrices whose
  // storage is reused across layers and epochs (Matrix::resize), so the
  // per-epoch hot path stops allocating after the first epoch. Outputs
  // must not alias inputs.

  /// Forward propagation T = A^T H: `h` is the local block of H^(l-1),
  /// `t` receives the local block of T in the same layout. Collective.
  /// Charges: the family's broadcast/reduction stages — kSparse for
  /// adjacency blocks (2D/3D SUMMA stages; replayed from the epoch cache
  /// after epoch 1), kDense for activation panels and the completing
  /// reductions. With overlap enabled, stage k+1's blocks are in flight
  /// behind stage k's local SpMM, and (1.5D) the team reduction of T may
  /// be left pending for times_weight to drain — charges and results are
  /// bitwise identical either way.
  virtual void spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) = 0;

  /// Backward propagation U = A G: `g` is the local block of G^l, `u`
  /// receives the local block of U. Called between begin_backward() and
  /// end_backward() (the 2D/3D families materialize A there). Collective;
  /// charges like spmm_at (on the transposed-adjacency blocks).
  virtual void spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) = 0;

  /// Z = T W with W replicated: `t` is the local block of T, `z` receives
  /// the local block of Z. Default: purely local GEMM (rows-whole
  /// layouts; charges nothing); the 2D/3D families override with their
  /// partial-SUMMA row broadcasts (kDense), and 1.5D overrides in overlap
  /// mode to drain the deferred team reduction of T chunk-by-chunk behind
  /// the GEMM. Collective whenever communication is involved.
  virtual void times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                            EpochStats& stats);

  /// Assemble full rows (local_rows x f) from the local feature slice —
  /// the row-wise all-gather forced by log-softmax's row dependence and
  /// reused for the weight-gradient operand. Default: identity copy
  /// (rows-whole layouts move nothing; the engine skips the call). The
  /// 2D/3D overrides are collective over the process row and charge
  /// kDense for the received slices.
  virtual void gather_feature_rows(const Matrix& local, Index f,
                                   Matrix& full, EpochStats& stats);

  /// Complete the weight gradient Y^l = (H^(l-1))^T (A G^l): `y_partial`
  /// is this rank's partial (feat_slice(f_in) width x f_out), consumed as
  /// reduction scratch; `y_full` receives the fully replicated
  /// (f_in x f_out) gradient on every rank. Collective; charges kDense
  /// for the all-reduce (and, 2D/3D, the slice all-gather).
  virtual void reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                Matrix& y_full, EpochStats& stats) = 0;

  /// Overlap-mode split of reduce_gradients: begin posts the reduction of
  /// this layer's partial through the nonblocking layer (staging a copy,
  /// so `y_partial` is released immediately) and returns; finish — called
  /// once per epoch, after the backward recurrence — completes every
  /// posted reduction into its `y_full`. The reductions are therefore in
  /// flight behind the remaining backward layers' compute. Charges are
  /// identical to reduce_gradients (every charge value is an integer
  /// count of bytes over the 8-byte word — an exactly-representable
  /// dyadic — so per-category sums are order-independent and bitwise
  /// equal). Default: synchronous fallback (begin == reduce_gradients,
  /// finish == no-op), which is also the blocking-mode behavior.
  virtual void begin_reduce_gradients(Matrix& y_partial, Index f_in,
                                      Index f_out, Matrix& y_full,
                                      EpochStats& stats) {
    reduce_gradients(y_partial, f_in, f_out, y_full, stats);
  }
  virtual void finish_gradients(EpochStats& stats) { (void)stats; }

  /// Assemble the full (n x f) output on every rank from the full-row local
  /// output block (parity tests and inference). Default: rank-ordered
  /// all-gather over gather_comm(), charged as kControl so it never
  /// perturbs the modeled training volumes. Collective.
  virtual Matrix gather_output(const Matrix& output_rows, Index n);

  // ---- Epoch hooks ----

  /// Called at the start of each full-batch epoch with the absolute epoch
  /// number, or with -1 to disarm before an out-of-band forward (sampled
  /// inference). The 1D/1.5D families arm their halo plan's adaptive-rate
  /// state here (dist::halo_begin_epoch); collective in adaptive stale
  /// mode (the per-epoch want-flag exchange runs inside), a purely local
  /// decision otherwise. A no-op by default and whenever CAGNET_STALE is
  /// off.
  virtual void begin_epoch(int epoch) { (void)epoch; }

  /// Called before the backward recurrence; the 2D/3D families run their
  /// distributed transpose A^T -> A here (the paper's "trpose" phase,
  /// charged as kTranspose; replayed from the transpose cache after
  /// epoch 1). Collective for those families, a local no-op by default.
  virtual void begin_backward(EpochStats& stats) { (void)stats; }

  /// Called after the backward recurrence; undoes begin_backward()
  /// (charged/replayed symmetrically). Collective for the transpose
  /// families, a local no-op by default.
  virtual void end_backward(EpochStats& stats) { (void)stats; }

  /// Release every nonblocking-collective source peers may still be
  /// reading (quiesce this algebra's communicators, swallowing abort
  /// errors). The engine destructor calls it before the activation
  /// buffers those peers read from are freed; charges nothing.
  virtual void drain() noexcept {}

 protected:
  /// Communicator whose rank-ordered all-gather of full-row output blocks
  /// assembles H^L: world (1D), the slice (1.5D), the process column (2D),
  /// the j-plane (3D).
  virtual Comm& gather_comm() = 0;

 private:
  MachineModel machine_;
};

/// The single shared trainer: one full-batch GCN epoch (forward, loss,
/// backward, SGD step) expressed against a DistSpmmAlgebra. Owns the
/// replicated weights/optimizer, the local activation caches, and the
/// per-epoch EpochStats.
class DistEngine : public DistTrainer {
 public:
  /// Collective constructor: call on every rank of the algebra's world.
  DistEngine(const DistProblem& problem, GnnConfig config,
             std::unique_ptr<DistSpmmAlgebra> algebra);

  /// Drains the algebra's pending nonblocking reads (see
  /// DistSpmmAlgebra::drain) before the activation buffers are freed.
  ~DistEngine() override;

  /// One full-batch epoch (forward, loss, backward, SGD step). Collective
  /// over the algebra's world; the returned loss/accuracy are already
  /// globally reduced (the reduction itself is charged as kControl).
  /// last_epoch_stats().comm afterwards holds this rank's per-epoch meter
  /// delta, including the overlap-accounting totals.
  EpochResult train_epoch() override;

  /// Stats of the most recent epoch (this rank's view). Purely local.
  const EpochStats& last_epoch_stats() const override { return stats_; }

  /// Collective: the most recent epoch's stats max-reduced over the world
  /// (bulk-synchronous epochs are paced by the slowest rank); the
  /// reduction travels as kControl.
  EpochStats reduce_epoch_stats() const override;

  /// Collective: assemble the full (n x f) output log-probability matrix
  /// on every rank (kControl traffic; parity tests and inference). For a
  /// partitioned problem the rows are un-permuted back to original vertex
  /// order, so callers never see the internal relabeling.
  Matrix gather_output() override;

  /// Replicated weight matrices (bitwise identical on every rank by
  /// construction). Purely local.
  const std::vector<Matrix>& weights() const override { return weights_; }

  /// Replace the replicated weights (checkpoint restore). Purely local —
  /// call with identical matrices on every rank (e.g. loaded from the
  /// same checkpoint file) to keep the replication invariant; shapes must
  /// match the configured model exactly.
  void set_weights(const std::vector<Matrix>& weights) override;

  /// Training configuration (identical on every rank). Purely local.
  const GnnConfig& config() const { return config_; }
  /// The partitioning strategy driving this engine. Purely local access;
  /// calling algebra methods directly re-enters the collective contract.
  DistSpmmAlgebra& algebra() { return *algebra_; }
  const DistSpmmAlgebra& algebra() const { return *algebra_; }

  /// Full rows of this rank's block of H^L (valid after an epoch).
  /// Purely local.
  const Matrix& local_output() const { return output_rows_; }

  /// Align the absolute-epoch counter (checkpoint resume). The sampled
  /// path keys its shuffle/sampling RNG streams by absolute epoch, so
  /// restarting from a checkpoint must resume the streams where the
  /// uninterrupted run would be — the recovery drills assert bitwise
  /// parity through this hook. Purely local.
  void set_start_epoch(int epoch) override;

 private:
  const Matrix& forward();
  void backward();
  void step();
  EpochResult train_epoch_sampled();

  const DistProblem& problem_;
  GnnConfig config_;
  std::unique_ptr<DistSpmmAlgebra> algebra_;

  std::optional<Optimizer> optimizer_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> gradients_;
  std::vector<Matrix> h_;  ///< local blocks of H^l, l = 0..L
  std::vector<Matrix> z_;  ///< local blocks of Z^l, l = 1..L
  Matrix output_rows_;     ///< full rows of this rank's H^L block

  // Reusable epoch workspaces: sized on first use, allocation-free after
  // the first epoch (Matrix::resize reuses storage).
  Matrix t_buf_;       ///< T = A^T H
  Matrix zrows_buf_;   ///< gathered full rows of Z^L
  Matrix u_buf_;       ///< U = A G
  Matrix u_rows_buf_;  ///< gathered full rows of U
  Matrix g_buf_;       ///< G^l (ping)
  Matrix g_next_buf_;  ///< G^(l-1) (pong)
  Matrix dh_buf_;      ///< U (W^l)^T before the ReLU mask
  Matrix y_buf_;       ///< weight-gradient slice partial
  Matrix w_rows_buf_;  ///< feat-sliced rows of W for the G recurrence

  /// Persistent (src, dst) pairs of the overlap-mode nonblocking loss
  /// reduction; released by the quiesce at the next epoch's start.
  std::array<double, 4> loss_scratch_ = {};

  /// Sampled minibatch state (dist::SampledRunner), constructed lazily on
  /// the first sampled epoch. Declared after algebra_ so its pending
  /// exchanges are quiesced (engine destructor drains the world) before
  /// its pack buffers die.
  std::unique_ptr<dist::SampledRunner> sampler_;
  /// Absolute epoch counter (sampled RNG stream key; see set_start_epoch).
  int epoch_ = 0;

  EpochStats stats_;
};

}  // namespace cagnet
