#include "src/core/algebra_registry.hpp"

#include "src/comm/grid.hpp"
#include "src/core/dist15d.hpp"
#include "src/core/dist1d.hpp"
#include "src/core/dist2d.hpp"
#include "src/core/dist3d.hpp"
#include "src/util/error.hpp"

namespace cagnet {

const std::vector<AlgebraSpec>& algebra_registry() {
  static const std::vector<AlgebraSpec> registry = [] {
    std::vector<AlgebraSpec> specs;
    specs.push_back(
        {"1d", [](int p) { return p >= 1; }, {1, 2, 3, 4, 7, 8},
         [](const DistProblem& problem, Comm& world, MachineModel machine) {
           return std::make_unique<Algebra1D>(problem, world, machine);
         }});
    specs.push_back(
        {"1.5d-c2", [](int p) { return p >= 2 && p % 2 == 0; }, {2, 4, 6, 8},
         [](const DistProblem& problem, Comm& world, MachineModel machine) {
           return std::make_unique<Algebra15D>(problem, world, 2, machine);
         }});
    specs.push_back(
        {"1.5d-c4", [](int p) { return p >= 4 && p % 4 == 0; }, {4, 8, 16},
         [](const DistProblem& problem, Comm& world, MachineModel machine) {
           return std::make_unique<Algebra15D>(problem, world, 4, machine);
         }});
    specs.push_back(
        {"2d", [](int p) { return exact_sqrt(p) > 0; }, {1, 4, 9, 16},
         [](const DistProblem& problem, Comm& world, MachineModel machine) {
           return std::make_unique<Algebra2D>(problem, world, machine);
         }});
    specs.push_back(
        {"3d", [](int p) { return exact_cbrt(p) > 0; }, {1, 8, 27},
         [](const DistProblem& problem, Comm& world, MachineModel machine) {
           return std::make_unique<Algebra3D>(problem, world, machine);
         }});
    return specs;
  }();
  return registry;
}

const AlgebraSpec* find_algebra(const std::string& name) {
  for (const AlgebraSpec& spec : algebra_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::unique_ptr<DistTrainer> make_dist_trainer(const std::string& name,
                                               const DistProblem& problem,
                                               GnnConfig config, Comm& world,
                                               MachineModel machine) {
  const AlgebraSpec* spec = find_algebra(name);
  CAGNET_CHECK(spec != nullptr, "unknown algebra: " + name);
  return std::make_unique<DistEngine>(problem, std::move(config),
                                      spec->make(problem, world, machine));
}

}  // namespace cagnet
