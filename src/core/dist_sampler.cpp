#include "src/core/dist_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/core/dist_engine.hpp"
#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/sparse/spmm_kernel.hpp"
#include "src/util/error.hpp"

namespace cagnet {

namespace dist {

SampledRunner::SampledRunner(const DistProblem& problem,
                             const GnnConfig& config,
                             DistSpmmAlgebra& algebra, Comm& comm,
                             MiniBatchOptions options)
    : problem_(problem), config_(config), algebra_(algebra), comm_(comm),
      machine_(algebra.machine()), options_(std::move(options)) {
  const Index layers = config_.num_layers();
  CAGNET_CHECK(static_cast<Index>(options_.fanouts.size()) == layers,
               "sampled training: fanouts length (" +
                   std::to_string(options_.fanouts.size()) +
                   ") must equal the model's layer count (" +
                   std::to_string(layers) + ")");
  for (Index fanout : options_.fanouts) {
    CAGNET_CHECK(fanout > 0,
                 "sampled training: fanouts must be positive (use "
                 "kSampleAll for an uncapped hop)");
  }
  CAGNET_CHECK(options_.batch_size > 0,
               "sampled training: batch size must be positive");

  const int p = comm_.size();
  row_lo_ = algebra_.row_lo();
  row_hi_ = algebra_.row_hi();
  row_starts_ = row_starts(problem_, p);

  const std::vector<Index>& labels = problem_.graph->labels;
  for (Index v = row_lo_; v < row_hi_; ++v) {
    if (labels[static_cast<std::size_t>(v)] >= 0) labeled_.push_back(v);
  }

  // Lockstep batch count: the busiest rank paces the epoch; short ranks
  // run empty trailing batches so every collective stays in order.
  const Index local_batches =
      (static_cast<Index>(labeled_.size()) + options_.batch_size - 1) /
      options_.batch_size;
  std::array<double, 1> most = {static_cast<double>(local_batches)};
  comm_.allreduce_max(std::span<double>(most), CommCategory::kControl);
  batches_ = static_cast<Index>(most[0]);

  const Index n = problem_.graph->num_vertices();
  pos_.resize(static_cast<std::size_t>(n));
  stamp_.assign(static_cast<std::size_t>(n), 0);
  blk_nnz_.resize(static_cast<std::size_t>(p));
  curs_.resize(static_cast<std::size_t>(p));
  for (Slot& slot : slots_) {
    slot.levels.resize(static_cast<std::size_t>(layers) + 1);
    slot.exch.resize(static_cast<std::size_t>(layers));
    for (Exchange& e : slot.exch) {
      e.plan.ready = true;
      e.plan.recv_row_offsets.assign(static_cast<std::size_t>(p) + 1, 0);
      e.plan.send_row_offsets.assign(static_cast<std::size_t>(p) + 1, 0);
      e.plan.blocks.resize(static_cast<std::size_t>(p));
      e.tblocks.resize(static_cast<std::size_t>(p));
    }
  }
}

void SampledRunner::build_batch(Slot& slot, int epoch, Index batch,
                                const Matrix& features_block,
                                EpochStats& stats) {
  const int p = comm_.size();
  const int rank = comm_.rank();
  const Index layers = config_.num_layers();
  const Csr& at = problem_.at;

  // Seeds: this rank's slice of the per-epoch shuffle, re-sorted
  // ascending so every downstream ordering (loss terms, landing rows,
  // accumulation) matches the full-batch row order.
  auto& seeds = slot.levels[static_cast<std::size_t>(layers)].targets;
  seeds.clear();
  const std::size_t lo = static_cast<std::size_t>(batch) *
                         static_cast<std::size_t>(options_.batch_size);
  const std::size_t hi =
      std::min(lo + static_cast<std::size_t>(options_.batch_size),
               shuffled_.size());
  for (std::size_t i = lo; i < hi && lo < shuffled_.size(); ++i) {
    seeds.push_back(shuffled_[i]);
  }
  std::sort(seeds.begin(), seeds.end());

  // The whole build is serial per rank (plus collectives), so the sampled
  // structure is bitwise identical at any thread count; the stream is
  // keyed by (seed, epoch, batch, rank), so it is independent of pipeline
  // order and of restarts.
  Rng rng = Rng(options_.seed)
                .split(2)
                .split(static_cast<std::uint64_t>(epoch) + 1)
                .split(static_cast<std::uint64_t>(batch) + 1)
                .split(static_cast<std::uint64_t>(rank) + 1);

  for (Index k = layers - 1; k >= 0; --k) {
    // Hop h = layers-1-k outward from the seeds uses fanouts[h].
    const Index fanout =
        options_.fanouts[static_cast<std::size_t>(layers - 1 - k)];
    const auto& up_targets =
        slot.levels[static_cast<std::size_t>(k) + 1].targets;
    Exchange& e = slot.exch[static_cast<std::size_t>(k)];

    // ---- Fan-out sample the local A^T stripe rows of the upper targets.
    // Floyd's algorithm draws `fanout` distinct positions without
    // replacement; positions are re-sorted so each row's sampled columns
    // stay ascending (the full-batch accumulation order).
    e.samp_row_ptr.clear();
    e.samp_row_ptr.push_back(0);
    e.samp_cols.clear();
    e.samp_vals.clear();
    for (Index i : up_targets) {
      const Index r0 = at.row_ptr()[static_cast<std::size_t>(i)];
      const Index r1 = at.row_ptr()[static_cast<std::size_t>(i) + 1];
      const Index deg = r1 - r0;
      if (deg <= fanout) {
        for (Index q = r0; q < r1; ++q) {
          e.samp_cols.push_back(at.col_idx()[static_cast<std::size_t>(q)]);
          e.samp_vals.push_back(at.values()[static_cast<std::size_t>(q)]);
        }
      } else {
        picked_.clear();
        for (Index r = deg - fanout; r < deg; ++r) {
          Index cand = static_cast<Index>(
              rng.next_below(static_cast<std::uint64_t>(r) + 1));
          if (std::find(picked_.begin(), picked_.end(), cand) !=
              picked_.end()) {
            cand = r;
          }
          picked_.push_back(cand);
        }
        std::sort(picked_.begin(), picked_.end());
        // Horvitz-Thompson correction: each kept edge stood a
        // fanout/deg chance of inclusion, so dividing by it keeps the
        // sampled row aggregate an unbiased estimate of the full one.
        // Without it every capped hop shrinks the signal by ~fanout/deg
        // and deep models stop training. Take-all rows above scale by
        // exactly one, which is what keeps uncapped runs bitwise equal
        // to full-batch.
        const Real scale =
            static_cast<Real>(deg) / static_cast<Real>(fanout);
        for (Index posn : picked_) {
          const Index q = r0 + posn;
          e.samp_cols.push_back(at.col_idx()[static_cast<std::size_t>(q)]);
          e.samp_vals.push_back(
              at.values()[static_cast<std::size_t>(q)] * scale);
        }
      }
      e.samp_row_ptr.push_back(static_cast<Index>(e.samp_cols.size()));
    }

    // ---- Dedup the sampled columns and partition them by owner.
    // Sorting makes the per-owner runs contiguous (ownership ranges are
    // ascending), so the need lists come out ascending per peer.
    ++cur_stamp_;
    needs_.clear();
    for (Index g : e.samp_cols) {
      auto& s = stamp_[static_cast<std::size_t>(g)];
      if (s != cur_stamp_) {
        s = cur_stamp_;
        needs_.push_back(g);
      }
    }
    std::sort(needs_.begin(), needs_.end());

    HaloPlan& plan = e.plan;
    plan.need_rows.clear();
    std::size_t cursor = 0;
    std::size_t self_lo = 0;
    std::size_t self_hi = 0;
    for (int j = 0; j < p; ++j) {
      const Index bound = row_starts_[static_cast<std::size_t>(j) + 1];
      std::size_t end = cursor;
      while (end < needs_.size() && needs_[end] < bound) ++end;
      if (j == rank) {
        // Own rows are never requested over the wire; they are simply
        // part of F_k below.
        self_lo = cursor;
        self_hi = end;
      } else {
        for (std::size_t q = cursor; q < end; ++q) {
          plan.need_rows.push_back(needs_[q] -
                                   row_starts_[static_cast<std::size_t>(j)]);
        }
      }
      plan.recv_row_offsets[static_cast<std::size_t>(j) + 1] =
          plan.need_rows.size();
      cursor = end;
    }

    // ---- Learn which of this rank's rows each peer sampled (the send
    // side), and close F_k as local-needs ∪ received-requests.
    comm_.alltoallv_into(std::span<const Index>(plan.need_rows),
                         std::span<const std::size_t>(plan.recv_row_offsets),
                         requested_, CommCategory::kControl);

    auto& targets = slot.levels[static_cast<std::size_t>(k)].targets;
    targets.clear();
    for (std::size_t q = self_lo; q < self_hi; ++q) {
      targets.push_back(needs_[q]);
    }
    for (Index local : requested_.data) {
      CAGNET_CHECK(local >= 0 && local < row_hi_ - row_lo_,
                   "sampled training: peer requested an out-of-range row");
      targets.push_back(row_lo_ + local);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());

    // ---- Compact positions: own rows index F_k, remote rows index the
    // peer's recv chunk (ownership is disjoint, so one map serves both).
    for (std::size_t i = 0; i < targets.size(); ++i) {
      pos_[static_cast<std::size_t>(targets[i])] = static_cast<Index>(i);
    }
    for (int j = 0; j < p; ++j) {
      const std::size_t c0 = plan.recv_row_offsets[static_cast<std::size_t>(j)];
      const std::size_t c1 =
          plan.recv_row_offsets[static_cast<std::size_t>(j) + 1];
      for (std::size_t q = c0; q < c1; ++q) {
        pos_[static_cast<std::size_t>(
            plan.need_rows[q] + row_starts_[static_cast<std::size_t>(j)])] =
            static_cast<Index>(q - c0);
      }
    }

    plan.send_rows.clear();
    for (std::size_t j = 0; j <= static_cast<std::size_t>(p); ++j) {
      plan.send_row_offsets[j] = requested_.offsets[j];
    }
    for (Index local : requested_.data) {
      plan.send_rows.push_back(pos_[static_cast<std::size_t>(row_lo_ + local)]);
    }

    // ---- Owner-compacted forward blocks: block j holds the sampled
    // entries whose column peer j owns, re-indexed into j's recv chunk
    // (the self block into F_k). Entry order is (row-major, ascending
    // column) — CSR order — so a single cursor pass fills each block.
    const auto n_up = static_cast<Index>(up_targets.size());
    const auto nnz = static_cast<Index>(e.samp_cols.size());
    owners_.resize(static_cast<std::size_t>(nnz));
    std::fill(blk_nnz_.begin(), blk_nnz_.end(), Index{0});
    for (Index q = 0; q < nnz; ++q) {
      const Index g = e.samp_cols[static_cast<std::size_t>(q)];
      const int owner = static_cast<int>(
          std::upper_bound(row_starts_.begin() + 1, row_starts_.end(), g) -
          (row_starts_.begin() + 1));
      owners_[static_cast<std::size_t>(q)] = owner;
      ++blk_nnz_[static_cast<std::size_t>(owner)];
    }
    for (int j = 0; j < p; ++j) {
      const Index width =
          j == rank
              ? static_cast<Index>(targets.size())
              : static_cast<Index>(
                    plan.recv_row_offsets[static_cast<std::size_t>(j) + 1] -
                    plan.recv_row_offsets[static_cast<std::size_t>(j)]);
      Csr& blk = plan.blocks[static_cast<std::size_t>(j)];
      blk.resize_parts(n_up, width, blk_nnz_[static_cast<std::size_t>(j)]);
      std::fill(blk.row_ptr_mut().begin(), blk.row_ptr_mut().end(),
                Index{0});
    }
    for (Index r = 0; r < n_up; ++r) {
      for (Index q = e.samp_row_ptr[static_cast<std::size_t>(r)];
           q < e.samp_row_ptr[static_cast<std::size_t>(r) + 1]; ++q) {
        const int owner = owners_[static_cast<std::size_t>(q)];
        ++plan.blocks[static_cast<std::size_t>(owner)]
              .row_ptr_mut()[static_cast<std::size_t>(r) + 1];
      }
    }
    for (int j = 0; j < p; ++j) {
      const std::span<Index> rp =
          plan.blocks[static_cast<std::size_t>(j)].row_ptr_mut();
      for (Index r = 0; r < n_up; ++r) {
        rp[static_cast<std::size_t>(r) + 1] += rp[static_cast<std::size_t>(r)];
      }
    }
    std::fill(curs_.begin(), curs_.end(), Index{0});
    for (Index q = 0; q < nnz; ++q) {
      const int owner = owners_[static_cast<std::size_t>(q)];
      Csr& blk = plan.blocks[static_cast<std::size_t>(owner)];
      const Index w = curs_[static_cast<std::size_t>(owner)]++;
      blk.col_idx_mut()[static_cast<std::size_t>(w)] =
          pos_[static_cast<std::size_t>(e.samp_cols[static_cast<std::size_t>(q)])];
      blk.values()[static_cast<std::size_t>(w)] =
          e.samp_vals[static_cast<std::size_t>(q)];
    }

    // Backward operators and landing bookkeeping.
    for (int j = 0; j < p; ++j) {
      plan.blocks[static_cast<std::size_t>(j)].transposed_into(
          e.tblocks[static_cast<std::size_t>(j)], tscratch_);
    }
    e.recv_total = plan.recv_row_offsets[static_cast<std::size_t>(p)];
    e.pack_identity.resize(e.recv_total);
    for (std::size_t q = 0; q < e.recv_total; ++q) {
      e.pack_identity[q] = static_cast<Index>(q);
    }
  }

  // ---- Compact features and post the level-0 exchange: the ialltoallv
  // flies behind the current batch's backward + step (overlap mode) and
  // is drained inside the next forward's first-layer sweep. Blocking mode
  // completes it here — identical collective order either way.
  Level& l0 = slot.levels[0];
  {
    ScopedPhase scope(stats.profiler, Phase::kHaloPack);
    const Index f0 = config_.dims.front();
    l0.h.resize(static_cast<Index>(l0.targets.size()), f0);
    for (std::size_t r = 0; r < l0.targets.size(); ++r) {
      const auto src = features_block.row(l0.targets[r] - row_lo_);
      std::copy(src.begin(), src.end(),
                l0.h.row(static_cast<Index>(r)).begin());
    }
  }
  HaloPlan& plan0 = slot.exch[0].plan;
  slot.h0_op = halo_exchange_begin(
      l0.h, std::span<const Index>(plan0.send_rows),
      std::span<const std::size_t>(plan0.send_row_offsets), comm_, plan0,
      CommCategory::kHalo, stats.profiler);
}

void SampledRunner::forward_batch(Slot& slot,
                                  const std::vector<Matrix>& weights,
                                  EpochStats& stats) {
  const int rank = comm_.rank();
  const Index layers = config_.num_layers();

  for (Index k = 1; k <= layers; ++k) {
    Exchange& e = slot.exch[static_cast<std::size_t>(k) - 1];
    Level& dn = slot.levels[static_cast<std::size_t>(k) - 1];
    Level& up = slot.levels[static_cast<std::size_t>(k)];
    const Index f_in = config_.dims[static_cast<std::size_t>(k) - 1];
    const Index f_out = config_.dims[static_cast<std::size_t>(k)];
    const auto n_up = static_cast<Index>(up.targets.size());

    // Layer 1 drains the exchange build_batch posted a phase earlier;
    // deeper layers begin theirs inline on the just-computed activations.
    if (k > 1) {
      slot.h0_op = halo_exchange_begin(
          dn.h, std::span<const Index>(e.plan.send_rows),
          std::span<const std::size_t>(e.plan.send_row_offsets), comm_,
          e.plan, CommCategory::kHalo, stats.profiler);
    }
    t_buf_.resize(n_up, f_in);
    t_buf_.set_zero();
    halo_spmm_sweep(slot.h0_op, dn.h,
                    &e.plan.blocks[static_cast<std::size_t>(rank)], rank,
                    comm_, e.plan, machine_, stats, t_buf_);

    ScopedPhase scope(stats.profiler, Phase::kMisc);
    up.z.resize(n_up, f_out);
    gemm(Trans::kNo, Trans::kNo, Real{1}, t_buf_,
         weights[static_cast<std::size_t>(k) - 1], Real{0}, up.z);
    stats.work.add_gemm(machine_, 2.0 * static_cast<double>(n_up) *
                                      static_cast<double>(f_in) *
                                      static_cast<double>(f_out));
    up.h.resize(n_up, f_out);
    if (k == layers) {
      log_softmax_rows(up.z, up.h);
    } else {
      relu(up.z, up.h);
    }
  }
}

std::array<double, 3> SampledRunner::reduce_batch_loss(Slot& slot,
                                                       EpochStats& stats) {
  const Index layers = config_.num_layers();
  const Level& top = slot.levels[static_cast<std::size_t>(layers)];
  const std::vector<Index>& labels = problem_.graph->labels;

  double loss_sum = 0;
  double hits = 0;
  {
    ScopedPhase scope(stats.profiler, Phase::kMisc);
    for (std::size_t r = 0; r < top.targets.size(); ++r) {
      const Index label = labels[static_cast<std::size_t>(top.targets[r])];
      loss_sum -= top.h(static_cast<Index>(r), label);
      const auto row = top.h.row(static_cast<Index>(r));
      const Index pred = static_cast<Index>(
          std::max_element(row.begin(), row.end()) - row.begin());
      if (pred == label) hits += 1;
    }
  }
  // Blocking double[3] reduce: elements 0/1 sum in the same rank-ascending
  // order as the full-batch double[2] reduce, so a seeds-everything batch
  // reproduces its loss bitwise; element 2 carries the global seed count
  // (the gradient scale, known only after the shuffle).
  std::array<double, 3> acc = {loss_sum, hits,
                               static_cast<double>(top.targets.size())};
  comm_.allreduce_sum(std::span<double>(acc), CommCategory::kControl);
  return acc;
}

void SampledRunner::backward_batch(Slot& slot,
                                   const std::vector<Matrix>& weights,
                                   std::vector<Matrix>& gradients,
                                   double global_seeds, EpochStats& stats) {
  const int p = comm_.size();
  const int rank = comm_.rank();
  const Index layers = config_.num_layers();
  const std::vector<Index>& labels = problem_.graph->labels;

  // G^L over the seed rows: every seed is labeled, and the scale is the
  // global batch size (mean NLL over the batch), so an all-seeds batch
  // reproduces the full-batch scale -1/labeled_count exactly.
  const Level& top = slot.levels[static_cast<std::size_t>(layers)];
  const Index f_last = config_.dims.back();
  g_buf_.resize(static_cast<Index>(top.targets.size()), f_last);
  {
    ScopedPhase scope(stats.profiler, Phase::kMisc);
    const Real scale =
        global_seeds > 0 ? Real{-1} / static_cast<Real>(global_seeds)
                         : Real{0};
    for (Index r = 0; r < g_buf_.rows(); ++r) {
      const Index label =
          labels[static_cast<std::size_t>(top.targets[static_cast<std::size_t>(r)])];
      for (Index c = 0; c < f_last; ++c) {
        g_buf_(r, c) = -std::exp(top.h(r, c)) * scale;
      }
      g_buf_(r, label) += scale;
    }
  }

  for (Index k = layers; k >= 1; --k) {
    Exchange& e = slot.exch[static_cast<std::size_t>(k) - 1];
    Level& dn = slot.levels[static_cast<std::size_t>(k) - 1];
    const Index f_in = config_.dims[static_cast<std::size_t>(k) - 1];
    const Index f_out = config_.dims[static_cast<std::size_t>(k)];
    const auto n_dn = static_cast<Index>(dn.targets.size());
    const auto recv_total = static_cast<Index>(e.recv_total);

    // Stacked contribution rows: [0, recv_total) owed to peers (in recv
    // order), then this rank's own F_{k-1} rows. accumulate=false
    // zero-fills each transposed block's rows, and the chunks are
    // disjoint, so every row is written exactly once.
    {
      ScopedPhase scope(stats.profiler, Phase::kSpmm);
      e.partial.resize(recv_total + n_dn, f_out);
      for (int j = 0; j < p; ++j) {
        const Csr& tb = e.tblocks[static_cast<std::size_t>(j)];
        if (tb.rows() == 0) continue;
        const Index row0 =
            j == rank
                ? recv_total
                : static_cast<Index>(
                      e.plan.recv_row_offsets[static_cast<std::size_t>(j)]);
        spmm_csr_kernel<Real>(tb.rows(), tb.row_ptr().data(),
                              tb.col_idx().data(), tb.values().data(),
                              g_buf_.data(), f_out,
                              e.partial.data() + row0 * f_out,
                              /*accumulate=*/false);
        stats.work.add_spmm(machine_, static_cast<double>(tb.nnz()),
                            static_cast<double>(f_out), block_degree(tb));
      }
    }

    // Contributions travel back along the forward plan's mirror: packed
    // in recv order, landing scatter-add on the compact send positions.
    u_buf_.resize(n_dn, f_out);
    halo_exchange_contributions(
        e.partial, std::span<const Index>(e.pack_identity),
        std::span<const std::size_t>(e.plan.recv_row_offsets),
        /*self_partial=*/true, recv_total,
        std::span<const Index>(e.plan.send_rows),
        std::span<const std::size_t>(e.plan.send_row_offsets), rank, comm_,
        e.plan, CommCategory::kHalo, machine_, stats, u_buf_);

    // Y^k = (H^(k-1))^T U over the compact rows; the replicated reduction
    // is the algebra's own (deferred in overlap mode, so it flies behind
    // the remaining layers — same discipline as full-batch).
    {
      ScopedPhase scope(stats.profiler, Phase::kMisc);
      y_buf_.resize(f_in, f_out);
      gemm(Trans::kYes, Trans::kNo, Real{1}, dn.h, u_buf_, Real{0}, y_buf_);
      stats.work.add_gemm(machine_, 2.0 * static_cast<double>(n_dn) *
                                        static_cast<double>(f_in) *
                                        static_cast<double>(f_out));
    }
    algebra_.begin_reduce_gradients(
        y_buf_, f_in, f_out, gradients[static_cast<std::size_t>(k) - 1],
        stats);

    if (k > 1) {
      ScopedPhase scope(stats.profiler, Phase::kMisc);
      dh_buf_.resize(n_dn, f_in);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u_buf_,
           weights[static_cast<std::size_t>(k) - 1], Real{0}, dh_buf_);
      stats.work.add_gemm(machine_, 2.0 * static_cast<double>(n_dn) *
                                        static_cast<double>(f_in) *
                                        static_cast<double>(f_out));
      g_next_.resize(n_dn, f_in);
      relu_backward(dh_buf_, dn.z, g_next_);
      std::swap(g_buf_, g_next_);
    }
  }
  algebra_.finish_gradients(stats);
}

EpochResult SampledRunner::run_epoch(int epoch, const Matrix& features_block,
                                     std::vector<Matrix>& weights,
                                     std::vector<Matrix>& gradients,
                                     Optimizer& optimizer,
                                     EpochStats& stats) {
  EpochResult result;
  if (batches_ == 0) return result;  // nothing labeled anywhere

  // Per-epoch shuffle of this rank's labeled rows (Fisher–Yates on a
  // (seed, epoch, rank)-keyed stream: restart-deterministic, and
  // independent of every other rank's stream).
  shuffled_ = labeled_;
  Rng rng = Rng(options_.seed)
                .split(1)
                .split(static_cast<std::uint64_t>(epoch) + 1)
                .split(static_cast<std::uint64_t>(comm_.rank()) + 1);
  for (std::size_t i = shuffled_.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i)));
    std::swap(shuffled_[i - 1], shuffled_[j]);
  }

  double loss_acc = 0;
  double hits_acc = 0;
  int s = 0;
  build_batch(slots_[static_cast<std::size_t>(s)], epoch, 0, features_block,
              stats);
  for (Index b = 0; b < batches_; ++b) {
    Slot& cur = slots_[static_cast<std::size_t>(s)];
    forward_batch(cur, weights, stats);
    const std::array<double, 3> acc = reduce_batch_loss(cur, stats);
    if (b + 1 < batches_) {
      // Pipeline: the next batch's sample/pack/exchange runs here so its
      // posted feature exchange is in flight behind this batch's whole
      // backward and step.
      build_batch(slots_[static_cast<std::size_t>(1 - s)], epoch, b + 1,
                  features_block, stats);
    }
    backward_batch(cur, weights, gradients, acc[2], stats);
    {
      ScopedPhase scope(stats.profiler, Phase::kMisc);
      optimizer.step(weights, gradients);
    }
    if (acc[2] > 0) loss_acc += acc[0] / acc[2];
    hits_acc += acc[1];
    s = 1 - s;
  }

  result.loss = loss_acc / static_cast<double>(batches_);
  result.accuracy = problem_.labeled_count > 0
                        ? hits_acc / static_cast<double>(problem_.labeled_count)
                        : 0.0;
  return result;
}

}  // namespace dist

}  // namespace cagnet
