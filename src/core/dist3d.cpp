#include "src/core/dist3d.hpp"

#include "src/util/error.hpp"

namespace cagnet {

Algebra3D::Algebra3D(const DistProblem& problem, Comm world,
                     MachineModel machine)
    : DistSpmmAlgebra(machine), grid_(Grid3D::create_cube(world)) {
  n_ = problem.graph->num_vertices();
  const int q = grid_.q;

  std::tie(coarse_lo_, coarse_hi_) = block_range(n_, q, grid_.i);
  std::tie(fine_lo_, fine_hi_) = fine_range(n_, q, grid_.i, grid_.k);

  const auto [ac0, ac1] = fine_range(n_, q, grid_.j, grid_.k);
  at_block_ = problem.at.block(coarse_lo_, coarse_hi_, ac0, ac1);

  jplane_ = grid_.world.split(/*color=*/grid_.j,
                              /*key=*/grid_.i * q + grid_.k);
}

void Algebra3D::split3d_spmm(const Csr& my_sparse,
                             dist::SparseStageCache& cache,
                             const Matrix& my_dense, Matrix& out,
                             EpochStats& stats) {
  const int q = grid_.q;
  const Index coarse_rows = coarse_hi_ - coarse_lo_;
  const Index w = my_dense.cols();
  // The pre-reduction partial: (n/q x f/q), the P^(1/3)-replicated
  // intermediate of Section IV-D.1. The shared loop double-buffers the
  // per-layer SUMMA stages when overlap is enabled and replays the cached
  // sparse charges in cached epochs.
  if (dist::overlap_enabled()) {
    // Release points for this rank's earlier sources: fiber peers read
    // t_partial_ (previous reduce-scatter), row peers read the partial-
    // SUMMA T panels and gathered feature rows — all rewritten below or
    // by the engine buffers backing them. Readers drained a whole layer
    // ago, so this is a handful of atomic loads.
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    grid_.fiber.quiesce();
    grid_.row.quiesce();
  }
  t_partial_.resize(coarse_rows, w);
  t_partial_.set_zero();
  dist::summa_stage_loop(
      my_sparse, cache, grid_.row, my_dense, grid_.col,
      [&](int s) {
        const auto [d_lo, d_hi] = fine_range(n_, q, s, grid_.k);
        return d_hi - d_lo;
      },
      q, t_partial_, machine(), stats, ws_);

  // Fiber reduce-scatter: sum layer partials, splitting C_i into its fine
  // slabs F_{i,kk}; fiber rank kk keeps slab kk. In overlap mode the
  // nonblocking form computes this rank's slab as soon as all partials
  // are posted and skips the trailing rendezvous — the release of
  // t_partial_ is deferred to the quiesce at the next call — so the rest
  // of the layer (partial SUMMA, gathers) proceeds without waiting for
  // fiber stragglers.
  out.resize(fine_hi_ - fine_lo_, w);
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (dist::overlap_enabled()) {
      grid_.fiber
          .ireduce_scatter_sum(std::span<const Real>(t_partial_.flat()),
                               out.flat(), CommCategory::kDense)
          .wait();
    } else {
      grid_.fiber.reduce_scatter_sum(
          std::span<const Real>(t_partial_.flat()), out.flat(),
          CommCategory::kDense);
    }
  }
}

Csr Algebra3D::transpose_3d(const Csr& my_block) {
  const int q = grid_.q;
  // Local transpose: M[C_i, F_{j,k}] -> M^T[F_{j,k}, C_i].
  const Csr bt = my_block.transposed();

  // Round d: send the column slab F_{i, (k+d)%q} of bt to rank
  // (i', j', k') = (j, i, (k+d)%q). The map is a bijection for each d, and
  // across rounds every target receives the q pieces it must stack.
  std::vector<Csr> pieces(static_cast<std::size_t>(q));
  for (int d = 0; d < q; ++d) {
    const int kk = (grid_.k + d) % q;
    const auto [g0, g1] = fine_range(n_, q, grid_.i, kk);
    const Csr piece =
        bt.block(0, bt.rows(), g0 - coarse_lo_, g1 - coarse_lo_);
    const int dest = kk * q * q + grid_.j * q + grid_.i;
    const Csr recv = dist::route_csr(piece, dest, grid_.world,
                                     CommCategory::kTranspose);
    // In round d we receive from (j, i, (k-d) mod q): its piece carries the
    // row slab F_{i, k_src} of the assembled block.
    const int k_src = ((grid_.k - d) % q + q) % q;
    pieces[static_cast<std::size_t>(k_src)] = recv;
  }
  Csr assembled = Csr::vstack(pieces);
  CAGNET_CHECK(assembled.rows() == coarse_hi_ - coarse_lo_,
               "transpose_3d: assembled row count mismatch");
  return assembled;
}

void Algebra3D::spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) {
  split3d_spmm(at_block_, at_cache_, h, t, stats);
}

void Algebra3D::spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) {
  CAGNET_CHECK(a_block_.rows() > 0 || coarse_hi_ == coarse_lo_,
               "spmm_a outside begin_backward/end_backward");
  split3d_spmm(a_block_, a_cache_, g, u, stats);
}

void Algebra3D::times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                             EpochStats& stats) {
  // Partial Split-3D-SpMM Z = T W: W is replicated, so only T moves, along
  // within-layer process rows (contraction over the f dimension needs no
  // fiber reduction).
  dist::partial_summa_times_weight(t, w, grid_.q, grid_.j, grid_.row,
                                   machine(), stats, ws_, z);
}

void Algebra3D::gather_feature_rows(const Matrix& local, Index f,
                                    Matrix& full, EpochStats& stats) {
  // Within-layer row all-gather (Section IV-D.2 — no cross-layer or
  // cross-row communication).
  dist::allgather_feature_rows(local, f, grid_.q, grid_.row, stats.profiler,
                               ws_, full);
}

void Algebra3D::reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                 Matrix& y_full, EpochStats& stats) {
  // Reduction over the j-plane (all fine row blocks sharing this feature
  // slice), then row all-gather to replicate Y (IV-D.4).
  dist::assemble_weight_gradient(y_partial, f_in, f_out, grid_.q, jplane_,
                                 grid_.row, stats.profiler, ws_,
                                 grad_pending_, y_full);
}

void Algebra3D::begin_reduce_gradients(Matrix& y_partial, Index f_in,
                                       Index f_out, Matrix& y_full,
                                       EpochStats& stats) {
  if (!dist::overlap_enabled()) {
    reduce_gradients(y_partial, f_in, f_out, y_full, stats);
    return;
  }
  dist::begin_assemble_weight_gradient(y_partial, f_in, f_out, jplane_,
                                       stats.profiler, grad_pending_,
                                       y_full);
}

void Algebra3D::finish_gradients(EpochStats& stats) {
  dist::finish_assemble_weight_gradient(grid_.q, grid_.row,
                                        stats.profiler, grad_pending_);
}

void Algebra3D::begin_backward(EpochStats& stats) {
  ScopedPhase scope(stats.profiler, Phase::kTranspose);
  if (trpose_cache_.ready && dist::epoch_cache_enabled()) {
    // a_block_ is still materialized from epoch 1; replay the charges.
    grid_.world.meter().merge_sum(trpose_cache_.begin_charges);
    return;
  }
  CostMeter before = grid_.world.meter();
  a_block_ = transpose_3d(at_block_);
  trpose_cache_.begin_charges = grid_.world.meter();
  trpose_cache_.begin_charges.subtract(before);
}

void Algebra3D::end_backward(EpochStats& stats) {
  ScopedPhase scope(stats.profiler, Phase::kTranspose);
  if (trpose_cache_.ready && dist::epoch_cache_enabled()) {
    grid_.world.meter().merge_sum(trpose_cache_.end_charges);
    return;
  }
  CostMeter before = grid_.world.meter();
  const Csr restored = transpose_3d(a_block_);
  CAGNET_CHECK(restored.nnz() == at_block_.nnz(),
               "3D transpose round-trip changed the block");
  trpose_cache_.end_charges = grid_.world.meter();
  trpose_cache_.end_charges.subtract(before);
  if (dist::epoch_cache_enabled()) {
    trpose_cache_.ready = true;  // keep a_block_ for the next epoch
  } else {
    a_block_ = Csr();
  }
}

Dist3D::Dist3D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra3D>(problem, std::move(world),
                                             machine)) {}

}  // namespace cagnet
