#include "src/core/dist3d.hpp"

#include <cmath>

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Dist3D::Dist3D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : problem_(problem), config_(std::move(config)),
      grid_(Grid3D::create_cube(world)), machine_(machine) {
  const Graph& g = *problem_.graph;
  CAGNET_CHECK(config_.dims.front() == g.feature_dim(),
               "input dim must match graph features");
  n_ = g.num_vertices();
  const int q = grid_.q;

  std::tie(coarse_lo_, coarse_hi_) = block_range(n_, q, grid_.i);
  std::tie(fine_lo_, fine_hi_) = fine_range(n_, q, grid_.i, grid_.k);

  const auto [ac0, ac1] = fine_range(n_, q, grid_.j, grid_.k);
  at_block_ = problem_.at.block(coarse_lo_, coarse_hi_, ac0, ac1);

  jplane_ = grid_.world.split(/*color=*/grid_.j,
                              /*key=*/grid_.i * q + grid_.k);

  weights_ = make_weights(config_);
  optimizer_.emplace(config_.optimizer, config_.learning_rate, weights_);
  gradients_.resize(weights_.size());
  const auto layers = static_cast<std::size_t>(config_.num_layers());
  h_.resize(layers + 1);
  z_.resize(layers + 1);
  const auto [f0, f1] = block_range(config_.dims.front(), q, grid_.j);
  h_[0] = g.features.block(fine_lo_, f0, fine_hi_ - fine_lo_, f1 - f0);
}

Matrix Dist3D::split3d_spmm(const Csr& my_sparse, const Matrix& my_dense) {
  const int q = grid_.q;
  const Index coarse_rows = coarse_hi_ - coarse_lo_;
  const Index w = my_dense.cols();
  // The pre-reduction partial: (n/q x f/q), the P^(1/3)-replicated
  // intermediate of Section IV-D.1.
  Matrix t_partial(coarse_rows, w);

  for (int s = 0; s < q; ++s) {
    Csr a_recv;
    {
      ScopedPhase scope(stats_.profiler, Phase::kSparseComm);
      a_recv = dist::broadcast_csr(grid_.j == s ? &my_sparse : nullptr, s,
                                   grid_.row, CommCategory::kSparse);
    }
    const auto [d_lo, d_hi] = fine_range(n_, q, s, grid_.k);
    Matrix d_recv(d_hi - d_lo, w);
    if (grid_.i == s) {
      CAGNET_CHECK(my_dense.rows() == d_recv.rows(),
                   "split3d_spmm: dense block height mismatch at root");
      d_recv = my_dense;
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      grid_.col.broadcast(d_recv.flat(), s, CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kSpmm);
      a_recv.spmm(d_recv, t_partial, /*accumulate=*/true);
      stats_.work.add_spmm(machine_, static_cast<double>(a_recv.nnz()),
                           static_cast<double>(w),
                           dist::block_degree(a_recv));
    }
  }

  // Fiber reduce-scatter: sum layer partials, splitting C_i into its fine
  // slabs F_{i,kk}; fiber rank kk keeps slab kk.
  Matrix out(fine_hi_ - fine_lo_, w);
  {
    ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
    grid_.fiber.reduce_scatter_sum(std::span<const Real>(t_partial.flat()),
                                   out.flat(), CommCategory::kDense);
  }
  return out;
}

Matrix Dist3D::allgather_rows(const Matrix& local, Index full_cols) {
  const int q = grid_.q;
  Gathered<Real> gathered;
  {
    ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
    gathered = grid_.row.allgatherv(std::span<const Real>(local.flat()),
                                    CommCategory::kDense);
  }
  Matrix full(local.rows(), full_cols);
  for (int jj = 0; jj < q; ++jj) {
    const auto [c0, c1] = block_range(full_cols, q, jj);
    const auto chunk = gathered.chunk(jj);
    CAGNET_CHECK(chunk.size() == static_cast<std::size_t>(local.rows() *
                                                          (c1 - c0)),
                 "allgather_rows: chunk size mismatch");
    for (Index r = 0; r < local.rows(); ++r) {
      std::copy(chunk.begin() + r * (c1 - c0),
                chunk.begin() + (r + 1) * (c1 - c0),
                full.data() + r * full_cols + c0);
    }
  }
  return full;
}

Csr Dist3D::transpose_3d(const Csr& my_block) {
  const int q = grid_.q;
  // Local transpose: M[C_i, F_{j,k}] -> M^T[F_{j,k}, C_i].
  const Csr bt = my_block.transposed();

  // Round d: send the column slab F_{i, (k+d)%q} of bt to rank
  // (i', j', k') = (j, i, (k+d)%q). The map is a bijection for each d, and
  // across rounds every target receives the q pieces it must stack.
  std::vector<Csr> pieces(static_cast<std::size_t>(q));
  for (int d = 0; d < q; ++d) {
    const int kk = (grid_.k + d) % q;
    const auto [g0, g1] = fine_range(n_, q, grid_.i, kk);
    const Csr piece =
        bt.block(0, bt.rows(), g0 - coarse_lo_, g1 - coarse_lo_);
    const int dest = kk * q * q + grid_.j * q + grid_.i;
    const Csr recv = dist::route_csr(piece, dest, grid_.world,
                                     CommCategory::kTranspose);
    // In round d we receive from (j, i, (k-d) mod q): its piece carries the
    // row slab F_{i, k_src} of the assembled block.
    const int k_src = ((grid_.k - d) % q + q) % q;
    pieces[static_cast<std::size_t>(k_src)] = recv;
  }
  Csr assembled = Csr::vstack(pieces);
  CAGNET_CHECK(assembled.rows() == coarse_hi_ - coarse_lo_,
               "transpose_3d: assembled row count mismatch");
  return assembled;
}

const Matrix& Dist3D::forward() {
  const Index layers = config_.num_layers();
  const int q = grid_.q;
  const Index fine_rows = fine_hi_ - fine_lo_;

  for (Index l = 1; l <= layers; ++l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // T = A^T H^(l-1): one full Split-3D-SpMM.
    const Matrix t =
        split3d_spmm(at_block_, h_[static_cast<std::size_t>(l - 1)]);

    // Z = T W: partial Split-3D-SpMM — W is replicated, so only T moves,
    // along within-layer process rows (contraction over the f dimension
    // needs no fiber reduction).
    const auto [fo0, fo1] = block_range(f_out, q, grid_.j);
    auto& z = z_[static_cast<std::size_t>(l)];
    z = Matrix(fine_rows, fo1 - fo0);
    const Matrix& w = weights_[static_cast<std::size_t>(l - 1)];
    for (int m = 0; m < q; ++m) {
      const auto [fm0, fm1] = block_range(f_in, q, m);
      Matrix t_recv(fine_rows, fm1 - fm0);
      if (grid_.j == m) t_recv = t;
      {
        ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
        grid_.row.broadcast(t_recv.flat(), m, CommCategory::kDense);
      }
      {
        ScopedPhase scope(stats_.profiler, Phase::kMisc);
        const Matrix w_block = w.block(fm0, fo0, fm1 - fm0, fo1 - fo0);
        gemm(Trans::kNo, Trans::kNo, Real{1}, t_recv, w_block, Real{1}, z);
        stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(fine_rows) *
                                           static_cast<double>(fm1 - fm0) *
                                           static_cast<double>(fo1 - fo0));
      }
    }

    auto& h = h_[static_cast<std::size_t>(l)];
    if (l == layers) {
      // log_softmax needs whole rows: within-layer row all-gather
      // (Section IV-D.2 — no cross-layer or cross-row communication).
      const Matrix z_rows = allgather_rows(z, f_out);
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      output_rows_ = Matrix(fine_rows, f_out);
      log_softmax_rows(z_rows, output_rows_);
      h = output_rows_.block(0, fo0, fine_rows, fo1 - fo0);
    } else {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      h = Matrix(z.rows(), z.cols());
      relu(z, h);
    }
  }
  return h_[static_cast<std::size_t>(layers)];
}

void Dist3D::backward() {
  const Index layers = config_.num_layers();
  const int q = grid_.q;
  const Index fine_rows = fine_hi_ - fine_lo_;
  const std::vector<Index>& labels = problem_.graph->labels;

  // 3D distributed transpose A^T -> A.
  Csr a_block;
  {
    ScopedPhase scope(stats_.profiler, Phase::kTranspose);
    a_block = transpose_3d(at_block_);
  }

  // G^L, local (see Dist2D::backward for the row-sum argument).
  const auto [fL0, fL1] = block_range(config_.dims.back(), q, grid_.j);
  Matrix g(fine_rows, fL1 - fL0);
  {
    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    const Matrix& ls = h_[static_cast<std::size_t>(layers)];
    const Real scale = Real{-1} / static_cast<Real>(problem_.labeled_count);
    for (Index r = 0; r < fine_rows; ++r) {
      const Index label = labels[static_cast<std::size_t>(fine_lo_ + r)];
      if (label < 0) continue;
      for (Index c = 0; c < fL1 - fL0; ++c) {
        g(r, c) = -std::exp(ls(r, c)) * scale;
      }
      if (label >= fL0 && label < fL1) g(r, label - fL0) += scale;
    }
  }

  for (Index l = layers; l >= 1; --l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // U = A G^l: full Split-3D-SpMM on the transposed adjacency.
    const Matrix u = split3d_spmm(a_block, g);

    // Row all-gather of U, reused by Y^l and G^(l-1) (IV-D.4).
    const Matrix u_rows = allgather_rows(u, f_out);

    // Y^l = (H^(l-1))^T (A G^l): local slice product, reduction over the
    // j-plane (all fine row blocks sharing this feature slice), then row
    // all-gather to replicate Y.
    const auto [fi0, fi1] = block_range(f_in, q, grid_.j);
    Matrix y_slice(fi1 - fi0, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      gemm(Trans::kYes, Trans::kNo, Real{1},
           h_[static_cast<std::size_t>(l - 1)], u_rows, Real{0}, y_slice);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(fine_rows) *
                                         static_cast<double>(fi1 - fi0) *
                                         static_cast<double>(f_out));
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      jplane_.allreduce_sum(y_slice.flat(), CommCategory::kDense);
    }
    auto& y = gradients_[static_cast<std::size_t>(l - 1)];
    y = Matrix(f_in, f_out);
    {
      Gathered<Real> slices;
      {
        ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
        slices = grid_.row.allgatherv(std::span<const Real>(y_slice.flat()),
                                      CommCategory::kDense);
      }
      for (int jj = 0; jj < q; ++jj) {
        const auto [r0, r1] = block_range(f_in, q, jj);
        const auto chunk = slices.chunk(jj);
        CAGNET_CHECK(chunk.size() ==
                         static_cast<std::size_t>((r1 - r0) * f_out),
                     "Y assembly: slice size mismatch");
        std::copy(chunk.begin(), chunk.end(), y.data() + r0 * f_out);
      }
    }

    if (l > 1) {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      const Matrix& w = weights_[static_cast<std::size_t>(l - 1)];
      const Matrix w_rows = w.block(fi0, 0, fi1 - fi0, f_out);
      Matrix dh(fine_rows, fi1 - fi0);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u_rows, w_rows, Real{0}, dh);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(fine_rows) *
                                         static_cast<double>(fi1 - fi0) *
                                         static_cast<double>(f_out));
      Matrix next_g(fine_rows, fi1 - fi0);
      relu_backward(dh, z_[static_cast<std::size_t>(l - 1)], next_g);
      g = std::move(next_g);
    }
  }

  // Transpose back to restore the forward orientation.
  {
    ScopedPhase scope(stats_.profiler, Phase::kTranspose);
    const Csr restored = transpose_3d(a_block);
    CAGNET_CHECK(restored.nnz() == at_block_.nnz(),
                 "3D transpose round-trip changed the block");
  }
}

void Dist3D::step() {
  ScopedPhase scope(stats_.profiler, Phase::kMisc);
  optimizer_->step(weights_, gradients_);
}

EpochResult Dist3D::train_epoch() {
  const CostMeter before = grid_.world.meter();
  stats_ = EpochStats{};

  forward();
  const Index f_out = config_.dims.back();
  const Matrix empty(0, f_out);
  stats_.result = dist::reduce_loss_accuracy(
      grid_.j == 0 ? output_rows_ : empty, fine_lo_, problem_.graph->labels,
      problem_.labeled_count, grid_.world);
  backward();
  step();

  stats_.comm = grid_.world.meter();
  stats_.comm.subtract(before);
  return stats_.result;
}

Matrix Dist3D::gather_output() {
  // j-plane ranks are keyed by (i, k), i.e. ascending fine row blocks, so
  // gathering along it assembles all n rows in order.
  const auto gathered = jplane_.allgatherv(
      std::span<const Real>(output_rows_.flat()), CommCategory::kControl);
  Matrix full(n_, config_.dims.back());
  CAGNET_CHECK(gathered.data.size() == static_cast<std::size_t>(full.size()),
               "gather_output: size mismatch");
  std::copy(gathered.data.begin(), gathered.data.end(), full.data());
  return full;
}

}  // namespace cagnet
