#include "src/core/dist_common.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/sparse/spmm_kernel.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {

DistProblem DistProblem::prepare(const Graph& graph) {
  DistProblem p;
  p.graph = &graph;
  p.at = graph.adjacency.transposed();
  for (Index label : graph.labels) {
    if (label >= 0) ++p.labeled_count;
  }
  return p;
}

DistProblem DistProblem::prepare(const Graph& graph, int parts,
                                 const std::string& partitioner,
                                 std::uint64_t seed) {
  const PartitionerSpec* spec = find_partitioner(partitioner);
  CAGNET_CHECK(spec != nullptr, "unknown partitioner: " + partitioner);
  Partition part = spec->make(graph.adjacency, parts, seed);

  DistProblem p;
  p.partitioner = partitioner;
  if (partitioner == "block") {
    // Contiguous already: no relabeling, identical training to the
    // identity form (part_offsets reproduce block_range exactly).
    p.graph = &graph;
    p.partition = std::move(part);
  } else {
    const std::vector<Index> perm = partition_permutation(part);
    const Index n = graph.num_vertices();
    auto owned = std::make_shared<Graph>();
    owned->name = graph.name + "+" + partitioner;
    owned->num_classes = graph.num_classes;
    owned->adjacency = graph.adjacency.permuted(
        std::span<const Index>(perm));
    owned->features = Matrix(graph.features.rows(), graph.features.cols());
    owned->labels.resize(graph.labels.size());
    Partition sorted;
    sorted.parts = part.parts;
    sorted.owner.resize(static_cast<std::size_t>(n));
    for (Index r = 0; r < n; ++r) {
      const Index v = perm[static_cast<std::size_t>(r)];
      std::copy(graph.features.row(v).begin(), graph.features.row(v).end(),
                owned->features.row(r).begin());
      owned->labels[static_cast<std::size_t>(r)] =
          graph.labels[static_cast<std::size_t>(v)];
      sorted.owner[static_cast<std::size_t>(r)] =
          part.owner[static_cast<std::size_t>(v)];
    }
    p.partition = std::move(sorted);
    p.perm = perm;
    p.owned_graph_ = owned;
    p.graph = p.owned_graph_.get();
  }
  p.part_offsets = partition_offsets(p.partition);
  p.edgecut = edge_cut(p.graph->adjacency, p.partition);
  p.at = p.graph->adjacency.transposed();
  for (Index label : p.graph->labels) {
    if (label >= 0) ++p.labeled_count;
  }
  return p;
}

EpochStats EpochStats::reduce_max(const EpochStats& mine, Comm& comm) {
  // Serialize the numeric payload into one vector, allreduce-max it, and
  // unpack. Loss/accuracy are identical on all ranks already (reduced in
  // the trainer), so max is a no-op for them.
  constexpr std::size_t kPhases = Profiler::kNumPhases;
  constexpr std::size_t kCats = CostMeter::kNumCategories;
  std::vector<double> payload;
  payload.reserve(2 + kPhases + 2 * kCats + 3 + 1 + 4);
  payload.push_back(mine.result.loss);
  payload.push_back(mine.result.accuracy);
  for (std::size_t i = 0; i < kPhases; ++i) {
    payload.push_back(mine.profiler.seconds(static_cast<Phase>(i)));
  }
  for (std::size_t i = 0; i < kCats; ++i) {
    const auto cat = static_cast<CommCategory>(i);
    payload.push_back(mine.comm.latency_units(cat));
    payload.push_back(mine.comm.words(cat));
  }
  payload.push_back(mine.comm.overlap_serialized_seconds());
  payload.push_back(mine.comm.overlap_overlapped_seconds());
  payload.push_back(mine.comm.overlap_regions());
  payload.push_back(mine.comm.stale_saved_words());
  payload.push_back(mine.work.spmm_seconds());
  payload.push_back(mine.work.gemm_seconds());
  payload.push_back(mine.work.spmm_flops());
  payload.push_back(mine.work.gemm_flops());

  comm.allreduce_max(std::span<double>(payload), CommCategory::kControl);

  EpochStats out;
  std::size_t k = 0;
  out.result.loss = payload[k++];
  out.result.accuracy = payload[k++];
  for (std::size_t i = 0; i < kPhases; ++i) {
    out.profiler.add(static_cast<Phase>(i), payload[k++]);
  }
  for (std::size_t i = 0; i < kCats; ++i) {
    const auto cat = static_cast<CommCategory>(i);
    const double lat = payload[k++];
    const double words = payload[k++];
    out.comm.add(cat, lat, words);
  }
  out.comm.restore_overlap_totals(payload[k], payload[k + 1],
                                  payload[k + 2]);
  k += 3;
  out.comm.restore_stale_saved_words(payload[k]);
  k += 1;
  out.work = WorkMeter::from_values(payload[k], payload[k + 1],
                                    payload[k + 2], payload[k + 3]);
  return out;
}

namespace dist {

namespace {
/// Not atomic on purpose: flip only between run_world invocations.
bool g_epoch_cache_enabled = true;

bool overlap_default_from_env() {
  const char* v = std::getenv("CAGNET_OVERLAP");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false" ||
           s == "FALSE");
}

/// Same discipline as the epoch cache: flip only between run_world
/// invocations. Preset once from CAGNET_OVERLAP.
bool g_overlap_enabled = overlap_default_from_env();

bool halo_default_from_env() {
  const char* v = std::getenv("CAGNET_HALO");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true" || s == "TRUE";
}

/// Same discipline again: flip only between run_world invocations.
/// Preset once from CAGNET_HALO (default off — Algorithm 1's broadcasts
/// remain the reference semantics; see DESIGN.md).
bool g_halo_enabled = halo_default_from_env();

bool sample_default_from_env() {
  const char* v = std::getenv("CAGNET_SAMPLE");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true" || s == "TRUE";
}

std::vector<Index> sample_fanouts_from_env() {
  const char* v = std::getenv("CAGNET_SAMPLE_FANOUT");
  if (v == nullptr || v[0] == '\0') return {15, 10, 5};
  std::vector<Index> fanouts;
  std::string s(v);
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(start, comma - start);
    if (tok == "inf" || tok == "all") {
      fanouts.push_back(std::numeric_limits<Index>::max());
    } else {
      CAGNET_CHECK(!tok.empty() &&
                       tok.find_first_not_of("0123456789") ==
                           std::string::npos,
                   "CAGNET_SAMPLE_FANOUT: \"" + tok +
                       "\" is not a positive integer, \"inf\", or \"all\"");
      const long value = std::atol(tok.c_str());
      CAGNET_CHECK(value > 0, "CAGNET_SAMPLE_FANOUT: fanouts must be "
                              "positive");
      fanouts.push_back(static_cast<Index>(value));
    }
    start = comma + 1;
  }
  return fanouts;
}

Index sample_batch_from_env() {
  const char* v = std::getenv("CAGNET_SAMPLE_BATCH");
  if (v == nullptr || v[0] == '\0') return 64;
  const std::string s(v);
  CAGNET_CHECK(s.find_first_not_of("0123456789") == std::string::npos,
               "CAGNET_SAMPLE_BATCH: \"" + s +
                   "\" is not a positive integer");
  const long value = std::atol(s.c_str());
  CAGNET_CHECK(value > 0, "CAGNET_SAMPLE_BATCH must be positive");
  return static_cast<Index>(value);
}

/// Same discipline again: flip only between run_world invocations.
/// Preset once from CAGNET_SAMPLE / CAGNET_SAMPLE_FANOUT /
/// CAGNET_SAMPLE_BATCH.
bool g_sample_enabled = sample_default_from_env();
std::vector<Index> g_sample_fanouts = sample_fanouts_from_env();
Index g_sample_batch = sample_batch_from_env();

int stale_k_from_env() {
  const char* v = std::getenv("CAGNET_STALE");
  if (v == nullptr || v[0] == '\0') return 0;
  const std::string s(v);
  if (s == "off" || s == "OFF" || s == "0") return 0;
  if (s == "adaptive" || s == "ADAPTIVE") return kStaleAdaptive;
  CAGNET_CHECK(s.find_first_not_of("0123456789") == std::string::npos,
               "CAGNET_STALE: \"" + s +
                   "\" is not \"off\", \"adaptive\", or a positive integer");
  const long value = std::atol(s.c_str());
  CAGNET_CHECK(value > 0, "CAGNET_STALE refresh interval must be positive");
  return static_cast<int>(value);
}

int stale_bound_from_env(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const std::string s(v);
  CAGNET_CHECK(s.find_first_not_of("0123456789") == std::string::npos,
               std::string(name) + ": \"" + s +
                   "\" is not a positive integer");
  const long value = std::atol(s.c_str());
  CAGNET_CHECK(value > 0,
               std::string(name) + " refresh interval must be positive");
  return static_cast<int>(value);
}

bool preagg_default_from_env() {
  const char* v = std::getenv("CAGNET_PREAGG");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true" || s == "TRUE";
}

/// Same discipline again: flip only between run_world invocations.
/// Preset once from CAGNET_STALE / CAGNET_STALE_MIN / CAGNET_STALE_MAX /
/// CAGNET_PREAGG (all default off/exact; see DESIGN.md "Adaptive
/// communication rates contract").
int g_stale_k = stale_k_from_env();
int g_stale_min = stale_bound_from_env("CAGNET_STALE_MIN", 1);
int g_stale_max = stale_bound_from_env("CAGNET_STALE_MAX", 8);
bool g_preagg_enabled = preagg_default_from_env();
}  // namespace

bool epoch_cache_enabled() { return g_epoch_cache_enabled; }
void set_epoch_cache_enabled(bool on) { g_epoch_cache_enabled = on; }

bool overlap_enabled() { return g_overlap_enabled; }
void set_overlap_enabled(bool on) { g_overlap_enabled = on; }

bool halo_enabled() { return g_halo_enabled; }
void set_halo_enabled(bool on) { g_halo_enabled = on; }

bool sample_enabled() { return g_sample_enabled; }
void set_sample_enabled(bool on) { g_sample_enabled = on; }

const std::vector<Index>& sample_fanouts() { return g_sample_fanouts; }
void set_sample_fanouts(std::vector<Index> fanouts) {
  CAGNET_CHECK(!fanouts.empty(), "set_sample_fanouts: empty fanout list");
  for (Index fanout : fanouts) {
    CAGNET_CHECK(fanout > 0, "set_sample_fanouts: fanouts must be positive");
  }
  g_sample_fanouts = std::move(fanouts);
}

Index sample_batch_size() { return g_sample_batch; }
void set_sample_batch_size(Index batch) {
  CAGNET_CHECK(batch > 0, "set_sample_batch_size: batch must be positive");
  g_sample_batch = batch;
}

int stale_k() { return g_stale_k; }
void set_stale_k(int k) {
  CAGNET_CHECK(k >= 0 || k == kStaleAdaptive,
               "set_stale_k: interval must be >= 0 or kStaleAdaptive");
  g_stale_k = k;
}

int stale_min_k() { return g_stale_min; }
int stale_max_k() { return g_stale_max; }
void set_stale_bounds(int min_k, int max_k) {
  CAGNET_CHECK(min_k >= 1, "set_stale_bounds: floor must be >= 1");
  CAGNET_CHECK(max_k >= min_k,
               "set_stale_bounds: ceiling must be >= floor");
  g_stale_min = min_k;
  g_stale_max = max_k;
}

bool preagg_enabled() { return g_preagg_enabled; }
void set_preagg_enabled(bool on) { g_preagg_enabled = on; }

void drain_comm(const Comm& comm) noexcept {
  if (!comm.valid()) return;
  try {
    comm.quiesce();
  } catch (...) {
    // Aborted world: peers were released by the abort flag.
  }
}

EpochResult reduce_loss_accuracy(const Matrix& local_log_probs, Index row_lo,
                                 const std::vector<Index>& labels,
                                 Index labeled_count, Comm& comm,
                                 std::array<double, 4>* scratch) {
  double loss_sum = 0;
  double hits = 0;
  for (Index r = 0; r < local_log_probs.rows(); ++r) {
    const Index label = labels[static_cast<std::size_t>(row_lo + r)];
    if (label < 0) continue;
    loss_sum -= local_log_probs(r, label);
    const auto row = local_log_probs.row(r);
    const Index pred = static_cast<Index>(
        std::max_element(row.begin(), row.end()) - row.begin());
    if (pred == label) hits += 1;
  }
  std::array<double, 2> acc = {loss_sum, hits};
  if (scratch != nullptr) {
    // Nonblocking (overlap-mode) form: one lock-free rendezvous instead
    // of four barrier phases. The caller owns the scratch lifetime and
    // quiesces `comm` before reusing it.
    (*scratch)[0] = acc[0];
    (*scratch)[1] = acc[1];
    comm.iallreduce_sum(std::span<const double>(scratch->data(), 2),
                        std::span<double>(scratch->data() + 2, 2),
                        CommCategory::kControl)
        .wait();
    acc = {(*scratch)[2], (*scratch)[3]};
  } else {
    comm.allreduce_sum(std::span<double>(acc), CommCategory::kControl);
  }
  EpochResult result;
  result.loss = labeled_count > 0 ? acc[0] / static_cast<double>(labeled_count)
                                  : 0.0;
  result.accuracy =
      labeled_count > 0 ? acc[1] / static_cast<double>(labeled_count) : 0.0;
  return result;
}

Matrix local_nll_gradient(const Matrix& local_log_probs, Index row_lo,
                          const std::vector<Index>& labels,
                          Index labeled_count) {
  Matrix grad(local_log_probs.rows(), local_log_probs.cols());
  if (labeled_count == 0) return grad;
  const Real scale = Real{-1} / static_cast<Real>(labeled_count);
  for (Index r = 0; r < local_log_probs.rows(); ++r) {
    const Index label = labels[static_cast<std::size_t>(row_lo + r)];
    if (label >= 0) grad(r, label) = scale;
  }
  return grad;
}

double block_degree(const Csr& block) {
  return block.rows() > 0
             ? static_cast<double>(block.nnz()) /
                   static_cast<double>(block.rows())
             : 0.0;
}

const Matrix* broadcast_dense_stage(const Matrix& mine, Matrix& recv,
                                    Index rows, Index cols, int root,
                                    Comm& comm, CommCategory cat) {
  if (comm.rank() == root) {
    CAGNET_CHECK(mine.rows() == rows && mine.cols() == cols,
                 "broadcast_dense_stage: root block shape mismatch");
    comm.broadcast_from(std::span<const Real>(mine.flat()),
                        std::span<Real>{}, root, cat);
    return &mine;
  }
  recv.resize(rows, cols);
  comm.broadcast_from(std::span<const Real>{}, recv.flat(), root, cat);
  return &recv;
}

void allreduce_weight_gradient(Matrix& y_partial, Index f_in, Index f_out,
                               Comm& comm, Profiler& profiler,
                               PendingGradReduce& pending, Matrix& y_full) {
  CAGNET_CHECK(y_partial.rows() == f_in && y_partial.cols() == f_out,
               "reduce_gradients: unexpected partial shape");
  std::swap(y_partial, y_full);
  const CompressMode gmode = gradient_compress_mode();
  if (gmode != CompressMode::kOff) {
    // Layer order is the call order, so ccount indexes this layer's
    // residual slot; finish_gradients (called unconditionally per epoch)
    // resets it. The op times itself (encode/decode under kCompressPack,
    // wire under kDenseComm) — no outer ScopedPhase.
    comm.allreduce_sum_compressed(y_full.flat(), gmode,
                                  pending.compress_slot(pending.ccount++),
                                  &profiler);
    return;
  }
  ScopedPhase scope(profiler, Phase::kDenseComm);
  comm.allreduce_sum(y_full.flat(), CommCategory::kDense);
}

void PendingDenseStage::post(const Matrix& mine, Matrix& recv, Index rows,
                             Index cols, int root, Comm& comm,
                             CommCategory cat) {
  if (comm.rank() == root) {
    CAGNET_CHECK(mine.rows() == rows && mine.cols() == cols,
                 "PendingDenseStage: root block shape mismatch");
    op_ = comm.ibroadcast_from(std::span<const Real>(mine.flat()),
                               std::span<Real>{}, root, cat);
    result_ = &mine;
    return;
  }
  recv.resize(rows, cols);
  op_ = comm.ibroadcast_from(std::span<const Real>{}, recv.flat(), root, cat);
  result_ = &recv;
}

const Matrix* PendingDenseStage::wait() {
  CAGNET_CHECK(result_ != nullptr, "PendingDenseStage: wait before post");
  op_.wait();
  const Matrix* result = result_;
  result_ = nullptr;
  return result;
}

void PendingCsrBcast::post_header(const Csr* mine, Csr& recv,
                                  std::array<Index, 3>& header, int root,
                                  Comm& comm, CommCategory cat) {
  CAGNET_CHECK(stage_ == 0, "PendingCsrBcast: previous stage not waited");
  const bool is_root = comm.rank() == root;
  CAGNET_CHECK(is_root == (mine != nullptr),
               "PendingCsrBcast: exactly the root must supply a block");
  mine_ = mine;
  recv_ = &recv;
  comm_ = &comm;
  cat_ = cat;
  root_ = root;
  header_ = &header;
  if (is_root) {
    header = {mine->rows(), mine->cols(), mine->nnz()};
    header_op_ = comm.ibroadcast_from(std::span<const Index>(header),
                                      std::span<Index>{}, root, cat);
  } else {
    header_op_ = comm.ibroadcast_from(std::span<const Index>{},
                                      std::span<Index>(header), root, cat);
  }
  stage_ = 1;
}

void PendingCsrBcast::post_parts() {
  CAGNET_CHECK(stage_ == 1, "PendingCsrBcast: post_parts without header");
  header_op_.wait();
  if (mine_ != nullptr) {
    // The root publishes straight from its block's arrays — no staging
    // copy, and the caller keeps using `mine` (its cache slot is left
    // untouched).
    parts_[0] = comm_->ibroadcast_from(mine_->row_ptr(), std::span<Index>{},
                                       root_, cat_);
    parts_[1] = comm_->ibroadcast_from(mine_->col_idx(), std::span<Index>{},
                                       root_, cat_);
    parts_[2] = comm_->ibroadcast_from(std::span<const Real>(mine_->values()),
                                       std::span<Real>{}, root_, cat_);
  } else {
    recv_->resize_parts((*header_)[0], (*header_)[1], (*header_)[2]);
    parts_[0] = comm_->ibroadcast_from(std::span<const Index>{},
                                       recv_->row_ptr_mut(), root_, cat_);
    parts_[1] = comm_->ibroadcast_from(std::span<const Index>{},
                                       recv_->col_idx_mut(), root_, cat_);
    parts_[2] = comm_->ibroadcast_from(std::span<const Real>{},
                                       recv_->values(), root_, cat_);
  }
  stage_ = 2;
}

const Csr* PendingCsrBcast::wait() {
  CAGNET_CHECK(stage_ == 2, "PendingCsrBcast: wait without post_parts");
  for (PendingOp& op : parts_) op.wait();
  stage_ = 0;
  return mine_ != nullptr ? mine_ : recv_;
}

void overlapped_dense_stages(
    int stages,
    const std::function<void(int, PendingDenseStage&, Matrix&)>& post_stage,
    const std::function<void(int, const Matrix*)>& compute_stage,
    Matrix& recv0, Matrix& recv1, CostMeter& meter, const WorkMeter& work,
    const MachineModel& machine, Profiler& profiler) {
  PendingDenseStage dn[2];
  Matrix* recv[2] = {&recv0, &recv1};
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    post_stage(0, dn[0], *recv[0]);
  }
  OverlapScope region(meter, work, machine);
  for (int s = 0; s < stages; ++s) {
    const int cur = s & 1;
    const int nxt = 1 - cur;
    const Matrix* block = nullptr;
    {
      ScopedPhase scope(profiler, Phase::kDenseComm);
      block = dn[cur].wait();
    }
    region.close();  // stage s's arrival was in flight behind compute s-1
    if (s + 1 < stages) {
      ScopedPhase scope(profiler, Phase::kDenseComm);
      post_stage(s + 1, dn[nxt], *recv[nxt]);
    }
    region.open();
    compute_stage(s, block);
  }
  region.close();
}

void summa_stage_loop(const Csr& my_sparse, SparseStageCache& cache,
                      Comm& sparse_comm, const Matrix& my_dense,
                      Comm& dense_comm,
                      const std::function<Index(int)>& stage_rows,
                      int stages, Matrix& acc, const MachineModel& machine,
                      EpochStats& stats, DistWorkspace& ws) {
  const Index w = my_dense.cols();
  CostMeter& meter = sparse_comm.meter();
  const bool use_cache = cache.ready && epoch_cache_enabled();
  if (use_cache) {
    // The adjacency blocks are epoch-invariant: replay the recorded
    // epoch-1 sparse charges instead of re-broadcasting identical bytes.
    // Replayed (bulk) charges stay outside the overlap regions — only
    // traffic that was actually in flight behind a compute is attributed.
    ScopedPhase scope(stats.profiler, Phase::kSparseComm);
    meter.merge_sum(cache.charges);
  } else {
    cache.charges.clear();
    cache.blocks.resize(static_cast<std::size_t>(stages));
    cache.own_stage.assign(static_cast<std::size_t>(stages), 0);
    cache.headers.assign(static_cast<std::size_t>(stages), {0, 0, 0});
  }

  const auto spmm_stage = [&](const Csr* a, const Matrix* d) {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    a->spmm(*d, acc, /*accumulate=*/true);
    stats.work.add_spmm(machine, static_cast<double>(a->nnz()),
                        static_cast<double>(w), block_degree(*a));
  };
  const auto cached_block = [&](int s) {
    return cache.own_stage[static_cast<std::size_t>(s)]
               ? &my_sparse
               : &cache.blocks[static_cast<std::size_t>(s)];
  };

  if (!overlap_enabled() || stages == 1) {
    // Blocking (synchronous) loop: stage s's blocks arrive, then stage s
    // computes — each stage's communication is fully latency-exposed.
    for (int s = 0; s < stages; ++s) {
      const Csr* a = nullptr;
      if (use_cache) {
        a = cached_block(s);
      } else {
        ScopedPhase scope(stats.profiler, Phase::kSparseComm);
        CostMeter before = meter;
        a = broadcast_csr(sparse_comm.rank() == s ? &my_sparse : nullptr,
                          cache.blocks[static_cast<std::size_t>(s)], s,
                          sparse_comm, CommCategory::kSparse);
        CostMeter delta = meter;
        delta.subtract(before);
        cache.charges.merge_sum(delta);
        cache.own_stage[static_cast<std::size_t>(s)] = a == &my_sparse;
      }
      const Matrix* d = nullptr;
      {
        ScopedPhase scope(stats.profiler, Phase::kDenseComm);
        d = broadcast_dense_stage(my_dense, ws.stage_recv, stage_rows(s), w,
                                  s, dense_comm, CommCategory::kDense);
      }
      spmm_stage(a, d);
    }
    cache.ready = epoch_cache_enabled();
    return;
  }

  // Overlapped loop: stage s+1's sparse payloads and dense panel are in
  // flight while stage s's SpMM runs; the CSR header travels one stage
  // further ahead so the payloads can be sized and posted on time. The
  // charge order per category is identical to the blocking loop (header s,
  // payloads s, header s+1, ...), so metered totals are bitwise equal.
  const bool live_sparse = !use_cache;
  const auto sparse_section = [&](auto&& fn) {
    ScopedPhase scope(stats.profiler, Phase::kSparseComm);
    CostMeter before = meter;
    fn();
    CostMeter delta = meter;
    delta.subtract(before);
    cache.charges.merge_sum(delta);
  };
  const auto root_block = [&](int s) {
    return sparse_comm.rank() == s ? &my_sparse : nullptr;
  };

  PendingCsrBcast sp[2];
  PendingDenseStage dn[2];
  Matrix* recv[2] = {&ws.stage_recv, &ws.stage_recv2};
  if (live_sparse) {
    sparse_section([&] {
      sp[0].post_header(root_block(0), cache.blocks[0], cache.headers[0], 0,
                        sparse_comm, CommCategory::kSparse);
      sp[1].post_header(root_block(1), cache.blocks[1], cache.headers[1], 1,
                        sparse_comm, CommCategory::kSparse);
      sp[0].post_parts();
    });
  }
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    dn[0].post(my_dense, *recv[0], stage_rows(0), w, 0, dense_comm,
               CommCategory::kDense);
  }

  OverlapScope region(meter, stats.work, machine);
  for (int s = 0; s < stages; ++s) {
    const int cur = s & 1;
    const int nxt = 1 - cur;
    const Csr* a = nullptr;
    if (use_cache) {
      a = cached_block(s);
    } else {
      sparse_section([&] {
        a = sp[cur].wait();
        cache.own_stage[static_cast<std::size_t>(s)] = a == &my_sparse;
      });
    }
    const Matrix* d = nullptr;
    {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      d = dn[cur].wait();
    }
    region.close();  // stage s's arrivals were in flight behind compute s-1
    if (s + 1 < stages) {
      if (live_sparse) {
        sparse_section([&] {
          if (s + 2 < stages) {
            sp[cur].post_header(root_block(s + 2),
                                cache.blocks[static_cast<std::size_t>(s + 2)],
                                cache.headers[static_cast<std::size_t>(s + 2)],
                                s + 2, sparse_comm, CommCategory::kSparse);
          }
          sp[nxt].post_parts();
        });
      }
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      dn[nxt].post(my_dense, *recv[nxt], stage_rows(s + 1), w, s + 1,
                   dense_comm, CommCategory::kDense);
    }
    region.open();
    spmm_stage(a, d);
  }
  region.close();
  cache.ready = epoch_cache_enabled();
}

const Csr* broadcast_csr(const Csr* mine, Csr& recv, int root, Comm& comm,
                         CommCategory cat) {
  const bool is_root = comm.rank() == root;
  std::array<Index, 3> header = {0, 0, 0};
  if (is_root) {
    CAGNET_CHECK(mine != nullptr, "broadcast_csr: root must supply a block");
    header = {mine->rows(), mine->cols(), mine->nnz()};
  }
  comm.broadcast(std::span<Index>(header), root, cat);
  if (is_root) {
    // The root publishes straight from its block's arrays — no staging
    // copy, no deserialization, and the caller keeps using `mine`.
    comm.broadcast_from(mine->row_ptr(), std::span<Index>{}, root, cat);
    comm.broadcast_from(mine->col_idx(), std::span<Index>{}, root, cat);
    comm.broadcast_from(std::span<const Real>(mine->values()),
                        std::span<Real>{}, root, cat);
    return mine;
  }
  recv.resize_parts(header[0], header[1], header[2]);
  comm.broadcast_from(std::span<const Index>{}, recv.row_ptr_mut(), root,
                      cat);
  comm.broadcast_from(std::span<const Index>{}, recv.col_idx_mut(), root,
                      cat);
  comm.broadcast_from(std::span<const Real>{}, recv.values(), root, cat);
  return &recv;
}

Csr exchange_csr(const Csr& mine, int peer, Comm& comm, CommCategory cat) {
  const std::array<Index, 3> my_header = {mine.rows(), mine.cols(),
                                          mine.nnz()};
  const auto header = comm.exchange(std::span<const Index>(my_header), peer, cat);
  auto row_ptr = comm.exchange(mine.row_ptr(), peer, cat);
  auto col_idx = comm.exchange(mine.col_idx(), peer, cat);
  auto vals = comm.exchange(std::span<const Real>(mine.values()), peer, cat);
  return Csr::from_parts(header[0], header[1], std::move(row_ptr),
                         std::move(col_idx), std::move(vals));
}

void partial_summa_times_weight(const Matrix& t, const Matrix& w, int parts,
                                int my_col, Comm& row_comm,
                                const MachineModel& machine,
                                EpochStats& stats, DistWorkspace& ws,
                                Matrix& z) {
  const Index local_rows = t.rows();
  const Index f_in = w.rows();
  const Index f_out = w.cols();
  const auto [fo0, fo1] = block_range(f_out, parts, my_col);
  z.resize(local_rows, fo1 - fo0);
  z.set_zero();

  const auto gemm_stage = [&](int m, const Matrix* t_m) {
    ScopedPhase scope(stats.profiler, Phase::kMisc);
    const auto [fm0, fm1] = block_range(f_in, parts, m);
    w.block_into(fm0, fo0, fm1 - fm0, fo1 - fo0, ws.w_block);
    gemm(Trans::kNo, Trans::kNo, Real{1}, *t_m, ws.w_block, Real{1}, z);
    stats.work.add_gemm(machine, 2.0 * static_cast<double>(local_rows) *
                                     static_cast<double>(fm1 - fm0) *
                                     static_cast<double>(fo1 - fo0));
  };
  const auto stage_cols = [&](int m) {
    const auto [fm0, fm1] = block_range(f_in, parts, m);
    return fm1 - fm0;
  };

  if (!overlap_enabled() || parts == 1) {
    for (int m = 0; m < parts; ++m) {
      const Matrix* t_m = nullptr;
      {
        ScopedPhase scope(stats.profiler, Phase::kDenseComm);
        t_m = broadcast_dense_stage(t, ws.stage_recv, local_rows,
                                    stage_cols(m), m, row_comm,
                                    CommCategory::kDense);
      }
      gemm_stage(m, t_m);
    }
    return;
  }

  // Overlapped: the stage-m+1 T panel is in flight while the stage-m GEMM
  // accumulates. Source-release contract: peers may still be copying this
  // rank's T panels after we return; the caller quiesces row_comm before
  // T is next rewritten (the 2D/3D algebras do it at their stage-loop
  // entry, where peers have long drained — off the critical path).
  overlapped_dense_stages(
      parts,
      [&](int m, PendingDenseStage& dn, Matrix& recv) {
        dn.post(t, recv, local_rows, stage_cols(m), m, row_comm,
                CommCategory::kDense);
      },
      gemm_stage, ws.stage_recv, ws.stage_recv2, row_comm.meter(),
      stats.work, machine, stats.profiler);
}

void allgather_feature_rows(const Matrix& local, Index full_cols, int parts,
                            Comm& row_comm, Profiler& profiler,
                            DistWorkspace& ws, Matrix& full) {
  {
    // In overlap mode the nonblocking form (posted and waited in place)
    // replaces the blocking one: same movement and identical charge, but
    // a single lock-free rendezvous instead of two barrier phases.
    ScopedPhase scope(profiler, Phase::kDenseComm);
    if (overlap_enabled()) {
      row_comm
          .iallgatherv_into(std::span<const Real>(local.flat()), ws.gathered,
                            CommCategory::kDense)
          .wait();
    } else {
      row_comm.allgatherv_into(std::span<const Real>(local.flat()),
                               ws.gathered, CommCategory::kDense);
    }
  }
  full.resize(local.rows(), full_cols);
  for (int jj = 0; jj < parts; ++jj) {
    const auto [c0, c1] = block_range(full_cols, parts, jj);
    const auto chunk = ws.gathered.chunk(jj);
    CAGNET_CHECK(chunk.size() == static_cast<std::size_t>(local.rows() *
                                                          (c1 - c0)),
                 "allgather_feature_rows: chunk size mismatch");
    for (Index r = 0; r < local.rows(); ++r) {
      std::copy(chunk.begin() + r * (c1 - c0),
                chunk.begin() + (r + 1) * (c1 - c0),
                full.data() + r * full_cols + c0);
    }
  }
}

void assemble_weight_gradient(Matrix& y_slice, Index f_in, Index f_out,
                              int parts, Comm& reduce_comm, Comm& row_comm,
                              Profiler& profiler, DistWorkspace& ws,
                              PendingGradReduce& pending, Matrix& y) {
  // Always the blocking form: in overlap mode the engine routes gradient
  // assembly through begin_/finish_assemble_weight_gradient instead,
  // whose per-layer staging gives every nonblocking source a stable
  // lifetime (a workspace-backed nonblocking variant here would race a
  // lagging row peer against the next call's buffer resize).
  const CompressMode gmode = gradient_compress_mode();
  if (gmode != CompressMode::kOff) {
    // Only the slice sum is lossy-coded; the row all-gather below moves
    // already-reduced slices and stays exact, so every rank unpacks the
    // same decoded values.
    reduce_comm.allreduce_sum_compressed(
        y_slice.flat(), gmode, pending.compress_slot(pending.ccount++),
        &profiler);
  } else {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    reduce_comm.allreduce_sum(y_slice.flat(), CommCategory::kDense);
  }
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    row_comm.allgatherv_into(std::span<const Real>(y_slice.flat()),
                             ws.gathered, CommCategory::kDense);
  }
  y.resize(f_in, f_out);
  for (int jj = 0; jj < parts; ++jj) {
    const auto [r0, r1] = block_range(f_in, parts, jj);
    const auto chunk = ws.gathered.chunk(jj);
    CAGNET_CHECK(chunk.size() == static_cast<std::size_t>((r1 - r0) * f_out),
                 "assemble_weight_gradient: slice size mismatch");
    std::copy(chunk.begin(), chunk.end(), y.data() + r0 * f_out);
  }
}

namespace {

/// Grow-once access to pending-reduction slot `i`.
template <typename T>
T& pending_slot(std::vector<T>& v, std::size_t i) {
  if (v.size() <= i) v.resize(i + 1);
  return v[i];
}

}  // namespace

void begin_allreduce_weight_gradient(Matrix& y_partial, Index f_in,
                                     Index f_out, Comm& comm,
                                     Profiler& profiler,
                                     PendingGradReduce& pending,
                                     Matrix& y_full) {
  CAGNET_CHECK(y_partial.rows() == f_in && y_partial.cols() == f_out,
               "reduce_gradients: unexpected partial shape");
  const CompressMode gmode = gradient_compress_mode();
  if (gmode != CompressMode::kOff) {
    if (pending.count + pending.ccount == 0 && pending.has_release) {
      ScopedPhase scope(profiler, Phase::kDenseComm);
      // Release last cycle's encoded sends. Targeted (not a full
      // quiesce): unrelated ops may legitimately still be in flight
      // here — see PendingGradReduce::release_ticket.
      comm.quiesce_op(pending.release_ticket);
      pending.has_release = false;
    }
    // The encode IS the staging copy: peers read the stable buf.send of
    // the layer's CompressBuf, so y_partial is free immediately and no
    // pending.src slot is needed. The op times itself.
    const std::size_t i = pending.ccount++;
    y_full.resize(f_in, f_out);
    pending_slot(pending.cops, i) = comm.iallreduce_sum_compressed(
        std::span<const Real>(y_partial.flat()), y_full.flat(), gmode,
        pending.compress_slot(i), &profiler);
    return;
  }
  ScopedPhase scope(profiler, Phase::kDenseComm);
  if (pending.count + pending.ccount == 0 && pending.has_release) {
    // Release point for last cycle's staged partials (peers read them at
    // their finish waits); long drained by now. Targeted, so ops posted
    // after that cycle's waits stay untouched.
    comm.quiesce_op(pending.release_ticket);
    pending.has_release = false;
  }
  const std::size_t i = pending.count++;
  Matrix& src = pending_slot(pending.src, i);
  src.resize(f_in, f_out);
  std::copy(y_partial.flat().begin(), y_partial.flat().end(),
            src.flat().begin());
  y_full.resize(f_in, f_out);
  pending_slot(pending.ops, i) = comm.iallreduce_sum(
      std::span<const Real>(src.flat()), y_full.flat(),
      CommCategory::kDense);
}

void finish_allreduce_weight_gradient(Profiler& profiler,
                                      PendingGradReduce& pending) {
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    for (std::size_t i = 0; i < pending.count; ++i) {
      if (pending.ops[i].pending()) {
        pending.release_ticket = pending.ops[i].ticket();
        pending.has_release = true;
      }
      pending.ops[i].wait();
    }
  }
  // Compressed ops time themselves (wire wait under kDenseComm, decode
  // under kCompressPack). The size guard covers blocking mode, where
  // ccount counts residual slots but no op was stored.
  for (std::size_t i = 0; i < pending.ccount && i < pending.cops.size();
       ++i) {
    if (pending.cops[i].pending()) {
      pending.release_ticket = pending.cops[i].ticket();
      pending.has_release = true;
    }
    pending.cops[i].wait();
  }
  pending.count = 0;
  pending.ccount = 0;
}

void begin_assemble_weight_gradient(Matrix& y_slice, Index f_in,
                                    Index f_out, Comm& reduce_comm,
                                    Profiler& profiler,
                                    PendingGradReduce& pending,
                                    Matrix& y_full) {
  const CompressMode gmode = gradient_compress_mode();
  if (gmode != CompressMode::kOff) {
    if (pending.count + pending.ccount == 0) {
      ScopedPhase scope(profiler, Phase::kDenseComm);
      reduce_comm.quiesce();  // release last epoch's encoded sends
    }
    // Lossy slice sum into the reduced slot; the exact row gather is
    // posted at finish once the decode lands. The encode is the staging
    // copy (peers read the layer buf's stable send bytes), so y_slice is
    // free on return. The op times itself.
    const std::size_t i = pending.ccount++;
    Matrix& reduced = pending_slot(pending.reduced, i);
    reduced.resize(y_slice.rows(), y_slice.cols());
    pending_slot(pending.cops, i) = reduce_comm.iallreduce_sum_compressed(
        std::span<const Real>(y_slice.flat()), reduced.flat(), gmode,
        pending.compress_slot(i), &profiler);
    pending_slot(pending.targets, i) = &y_full;
    pending_slot(pending.dims, i) = {f_in, f_out};
    return;
  }
  ScopedPhase scope(profiler, Phase::kDenseComm);
  if (pending.count == 0) reduce_comm.quiesce();  // release last epoch's
  const std::size_t i = pending.count++;
  Matrix& src = pending_slot(pending.src, i);
  src.resize(y_slice.rows(), y_slice.cols());
  std::copy(y_slice.flat().begin(), y_slice.flat().end(),
            src.flat().begin());
  Matrix& reduced = pending_slot(pending.reduced, i);
  reduced.resize(y_slice.rows(), y_slice.cols());
  pending_slot(pending.ops, i) = reduce_comm.iallreduce_sum(
      std::span<const Real>(src.flat()), reduced.flat(),
      CommCategory::kDense);
  pending_slot(pending.targets, i) = &y_full;
  pending_slot(pending.dims, i) = {f_in, f_out};
}

void finish_assemble_weight_gradient(int parts, Comm& row_comm,
                                     Profiler& profiler,
                                     PendingGradReduce& pending) {
  // Complete each layer's reduction and launch its slice all-gather
  // before touching the next, so later layers' gathers are in flight
  // while earlier layers unpack.
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    for (std::size_t i = 0; i < pending.count; ++i) {
      pending.ops[i].wait();
      auto& gathered = pending_slot(pending.gathered, i);
      if (!gathered) gathered = std::make_unique<Gathered<Real>>();
      pending_slot(pending.gather_ops, i) = row_comm.iallgatherv_into(
          std::span<const Real>(pending.reduced[i].flat()), *gathered,
          CommCategory::kDense);
    }
  }
  // Compressed layers: complete each lossy slice sum (the op times its
  // own wait/decode) and launch its exact row gather. The size guard
  // covers blocking mode, where ccount counts residual slots but no op
  // was stored. Modes never mix within an epoch, so slot indices of the
  // two families both start at 0 and never collide.
  const std::size_t cposted = std::min(pending.ccount, pending.cops.size());
  for (std::size_t i = 0; i < cposted; ++i) {
    pending.cops[i].wait();
    ScopedPhase scope(profiler, Phase::kDenseComm);
    auto& gathered = pending_slot(pending.gathered, i);
    if (!gathered) gathered = std::make_unique<Gathered<Real>>();
    pending_slot(pending.gather_ops, i) = row_comm.iallgatherv_into(
        std::span<const Real>(pending.reduced[i].flat()), *gathered,
        CommCategory::kDense);
  }
  for (std::size_t i = 0; i < pending.count + cposted; ++i) {
    {
      ScopedPhase scope(profiler, Phase::kDenseComm);
      pending.gather_ops[i].wait();
    }
    const auto [f_in, f_out] = pending.dims[i];
    Matrix& y = *pending.targets[i];
    y.resize(f_in, f_out);
    for (int jj = 0; jj < parts; ++jj) {
      const auto [r0, r1] = block_range(f_in, parts, jj);
      const auto chunk = pending.gathered[i]->chunk(jj);
      CAGNET_CHECK(chunk.size() ==
                       static_cast<std::size_t>((r1 - r0) * f_out),
                   "finish_assemble_weight_gradient: slice size mismatch");
      std::copy(chunk.begin(), chunk.end(), y.data() + r0 * f_out);
    }
  }
  pending.count = 0;
  pending.ccount = 0;
}

std::vector<Index> row_starts(const DistProblem& problem, int parts) {
  std::vector<Index> starts(static_cast<std::size_t>(parts) + 1);
  for (int j = 0; j < parts; ++j) {
    starts[static_cast<std::size_t>(j)] = problem.row_range(parts, j).first;
  }
  starts[static_cast<std::size_t>(parts)] = problem.graph->num_vertices();
  return starts;
}

void build_halo_plan(const std::function<const Csr*(int)>& block_of,
                     int self, const std::function<Index(int)>& peer_row_lo,
                     Comm& comm, HaloPlan& plan) {
  const int p = comm.size();
  plan.blocks.assign(static_cast<std::size_t>(p), Csr{});
  plan.need_rows.clear();
  plan.need_rows_global.clear();
  plan.recv_row_offsets.assign(static_cast<std::size_t>(p) + 1, 0);

  std::vector<char> seen;
  std::vector<Index> new_col;
  std::vector<Index> need;
  for (int j = 0; j < p; ++j) {
    plan.recv_row_offsets[static_cast<std::size_t>(j) + 1] =
        plan.recv_row_offsets[static_cast<std::size_t>(j)];
    if (j == self) continue;
    const Csr* block = block_of(j);
    if (block == nullptr) continue;
    // Distinct peer-local columns the block touches, ascending: the exact
    // remote rows Section IV-A defines edgecut_P(A) over.
    seen.assign(static_cast<std::size_t>(block->cols()), 0);
    for (Index c : block->col_idx()) seen[static_cast<std::size_t>(c)] = 1;
    new_col.assign(static_cast<std::size_t>(block->cols()), Index{-1});
    need.clear();
    for (Index c = 0; c < block->cols(); ++c) {
      if (!seen[static_cast<std::size_t>(c)]) continue;
      new_col[static_cast<std::size_t>(c)] =
          static_cast<Index>(need.size());
      need.push_back(c);
    }
    plan.blocks[static_cast<std::size_t>(j)] = block->with_remapped_columns(
        std::span<const Index>(new_col), static_cast<Index>(need.size()));
    for (Index c : need) {
      plan.need_rows.push_back(c);
      plan.need_rows_global.push_back(peer_row_lo(j) + c);
    }
    plan.recv_row_offsets[static_cast<std::size_t>(j) + 1] =
        plan.need_rows.size();
  }

  // The one-time index request-and-send: every rank learns which of its
  // rows each peer needs. Setup traffic, charged as kControl so the
  // per-epoch halo volume stays exactly edgecut * f.
  Gathered<Index> requested;
  comm.alltoallv_into(std::span<const Index>(plan.need_rows),
                      std::span<const std::size_t>(plan.recv_row_offsets),
                      requested, CommCategory::kControl);
  plan.send_rows.assign(requested.data.begin(), requested.data.end());
  plan.send_row_offsets = requested.offsets;
  for (HaloPlan::PackBuf& buf : plan.pack) {
    buf.send_elem_offsets.assign(static_cast<std::size_t>(p) + 1, 0);
    buf.has_release = false;
  }
  plan.next_pack = 0;
  plan.ready = true;
}

namespace {

/// One peer drain of a pipelined halo exchange, the protocol shared by
/// the forward and backward sweeps: provably-empty chunks are
/// skip_source'd (no rendezvous), anything else is awaited zero-copy and
/// size-checked against the plan; the overlap region is closed (pairing
/// the drained charges with the compute that just ran) and reopened for
/// the next stage. Blocking mode reads the already-exchanged chunk from
/// plan.recv. Under a lossy row codec (`rmode` != off) the wire carries
/// codec bytes — size-checked against encoded_size_bytes and decoded
/// into `decode_dst` (Phase::kCompressPack); both modes decode the same
/// bytes, so the sweeps stay bitwise identical across overlap modes.
/// Returns the peer's rows, or nullptr when nothing landed.
const Real* drain_halo_peer(PendingOp& op, const HaloPlan& plan, int peer,
                            std::size_t expected_elems, bool pipelined,
                            CompressMode rmode, Real* decode_dst,
                            OverlapScope& region, Profiler& profiler) {
  const std::uint8_t* bytes = nullptr;
  if (!pipelined) {
    if (rmode == CompressMode::kOff) {
      return plan.recv.data.data() +
             plan.recv.offsets[static_cast<std::size_t>(peer)];
    }
    const std::size_t b0 =
        plan.recv_bytes.offsets[static_cast<std::size_t>(peer)];
    const std::size_t b1 =
        plan.recv_bytes.offsets[static_cast<std::size_t>(peer) + 1];
    CAGNET_CHECK(b1 - b0 == encoded_size_bytes(rmode, expected_elems),
                 "halo drain: unexpected compressed chunk size");
    bytes = plan.recv_bytes.data.data() + b0;
  } else {
    const Real* exact_rows = nullptr;
    {
      ScopedPhase scope(profiler, Phase::kDenseComm);
      if (expected_elems == 0) {
        op.skip_source(peer);
      } else if (rmode == CompressMode::kOff) {
        const std::span<const Real> chunk = op.await_source<Real>(peer);
        CAGNET_CHECK(chunk.size() == expected_elems,
                     "halo drain: unexpected chunk size");
        exact_rows = chunk.data();
      } else {
        const std::span<const std::uint8_t> chunk =
            op.await_source<std::uint8_t>(peer);
        CAGNET_CHECK(
            chunk.size() == encoded_size_bytes(rmode, expected_elems),
            "halo drain: unexpected compressed chunk size");
        bytes = chunk.data();
      }
    }
    region.close();
    region.open();
    if (rmode == CompressMode::kOff) return exact_rows;
  }
  if (expected_elems == 0 || bytes == nullptr) return nullptr;
  ScopedPhase scope(profiler, Phase::kCompressPack);
  compress_decode(rmode, bytes, expected_elems, decode_dst);
  return decode_dst;
}

/// Threaded row gather: copy `rows` of `src` (f-wide) into `dst`
/// row-major. Chunks write disjoint destination rows, so every chunk
/// count is bitwise-identical.
void pack_rows_threaded(const Matrix& src, std::span<const Index> rows,
                        Index f, Real* dst) {
  const auto n = static_cast<Index>(rows.size());
  parallel_for(n,
               plan_chunks(static_cast<double>(n) * static_cast<double>(f),
                           kMinElemsPerChunk, n),
               [&](Index lo, Index hi) {
                 for (Index k = lo; k < hi; ++k) {
                   const Real* from =
                       src.data() + rows[static_cast<std::size_t>(k)] * f;
                   std::copy(from, from + f, dst + k * f);
                 }
               });
}

/// Adaptive staleness target: a peer whose rows changed by relative L2
/// delta `rel` since its last refresh gets interval ~ kStaleTau / rel
/// (clamped to [stale_min_k, stale_max_k]) — 5% drift per refresh keeps
/// a peer at the floor; converged peers drift toward the ceiling.
constexpr double kStaleTau = 0.05;

/// The forward exchange's landed-row offsets: the preagg plan's effective
/// layout when aggregation is armed, the raw plan's otherwise.
const std::vector<std::size_t>& fwd_recv_offsets(const HaloPlan& plan) {
  return plan.preagg.active ? plan.preagg.eff_recv_row_offsets
                            : plan.recv_row_offsets;
}

/// Drop the empty rows of `m` (row order preserved): col_idx/values are
/// untouched, only row_ptr compacts, so the result's row k is the k-th
/// nonzero row of `m` — exactly the order the receiver's agg_land_rows
/// were recorded in.
Csr compact_nonzero_rows(const Csr& m) {
  std::vector<Index> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(m.rows()) + 1);
  row_ptr.push_back(0);
  for (Index r = 0; r < m.rows(); ++r) {
    if (m.row_degree(r) > 0) row_ptr.push_back(m.row_ptr()[r + 1]);
  }
  std::vector<Index> cols(m.col_idx().begin(), m.col_idx().end());
  std::vector<Real> vals(m.values().begin(), m.values().end());
  // Hoisted: argument evaluation order is unspecified, so reading
  // row_ptr.size() inline could observe the vector already moved-from.
  const Index nzr = static_cast<Index>(row_ptr.size()) - 1;
  return Csr::from_parts(nzr, m.cols(), std::move(row_ptr), std::move(cols),
                         std::move(vals));
}

/// Accumulate one peer's landed forward rows into T: the compacted-block
/// SpMM on the raw path (bitwise the pre-stale/pre-preagg sweep), or a
/// scatter-add of the pre-reduced rows onto their distinct local T rows
/// when the pair aggregates (disjoint chunked writes, deterministic).
void halo_accumulate_peer(HaloPlan& plan, int j, const Real* rows_j, Index f,
                          const MachineModel& machine, EpochStats& stats,
                          Matrix& t) {
  const HaloPlan::PreAggPlan& pa = plan.preagg;
  if (pa.active && pa.agg_recv[static_cast<std::size_t>(j)] != 0) {
    const std::size_t k0 = pa.agg_land_offsets[static_cast<std::size_t>(j)];
    const std::size_t k1 =
        pa.agg_land_offsets[static_cast<std::size_t>(j) + 1];
    if (k0 == k1) return;
    ScopedPhase scope(stats.profiler, Phase::kHaloPack);
    const auto rows_n = static_cast<Index>(k1 - k0);
    parallel_for(
        rows_n,
        plan_chunks(static_cast<double>(rows_n) * static_cast<double>(f),
                    kMinElemsPerChunk, rows_n),
        [&](Index lo, Index hi) {
          for (Index k = lo; k < hi; ++k) {
            const Real* s = rows_j + k * f;
            Real* d = t.data() +
                      pa.agg_land_rows[k0 + static_cast<std::size_t>(k)] * f;
            for (Index c = 0; c < f; ++c) d[c] += s[c];
          }
        });
    return;
  }
  const Csr& a = plan.blocks[static_cast<std::size_t>(j)];
  if (a.nnz() == 0) return;
  ScopedPhase scope(stats.profiler, Phase::kSpmm);
  spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                        a.values().data(), rows_j, f, t.data(),
                        /*accumulate=*/true);
  stats.work.add_spmm(machine, static_cast<double>(a.nnz()),
                      static_cast<double>(f), block_degree(a));
}

/// The fixed-interval skip epoch: no exchange at all — no pack-buffer
/// claim, no quiesce, zero kHalo latency and words. Every remote stage
/// replays the cached landed rows through the identical accumulation,
/// crediting the avoided exact words to the meter; the self stage runs
/// as usual. Allocation-free (the cache slots were sized by the last
/// refresh epoch).
void halo_stale_replay(const Matrix& h, const Csr* self_block, int self,
                       Comm& comm, HaloPlan& plan,
                       const MachineModel& machine, EpochStats& stats,
                       Matrix& t) {
  HaloPlan::StaleState& st = plan.stale;
  const int p = comm.size();
  const Index f = h.cols();
  const auto slot = static_cast<std::size_t>(st.cur_slot);
  const std::vector<std::size_t>& roff = fwd_recv_offsets(plan);
  CAGNET_CHECK(slot < st.cache.size() && st.cache_f[slot] == f,
               "halo stale replay: cache slot not filled");
  comm.notify_event(CommCategory::kHalo, "halo stale skip");
  for (int j = 0; j < p; ++j) {
    if (j == self) {
      if (self_block != nullptr) {
        ScopedPhase scope(stats.profiler, Phase::kSpmm);
        self_block->spmm(h, t, /*accumulate=*/true);
        stats.work.add_spmm(machine, static_cast<double>(self_block->nnz()),
                            static_cast<double>(f),
                            block_degree(*self_block));
      }
      continue;
    }
    const std::size_t rows_n = roff[static_cast<std::size_t>(j) + 1] -
                               roff[static_cast<std::size_t>(j)];
    if (rows_n == 0) continue;
    comm.meter().add_stale_saved(static_cast<double>(rows_n) *
                                 static_cast<double>(f));
    halo_accumulate_peer(plan, j,
                         st.cache[slot].data() +
                             roff[static_cast<std::size_t>(j)] *
                                 static_cast<std::size_t>(f),
                         f, machine, stats, t);
  }
}

/// Sender side of aggregation-before-communication: stage this epoch's
/// outgoing rows — per aggregating destination a partial SpMM of the
/// dest's compacted coupling segment against the whole local H (one
/// pre-reduced row per distinct dest T row, Phase::kSpmm, metered as
/// local work), per raw destination the plain row gather. Skipped
/// adaptive destinations stage nothing (zero-length chunks keep the
/// collective in lockstep). The staged matrix then rides the ordinary
/// halo_exchange_begin — iota pack rows — so double-buffering,
/// compression, overlap, and charging stay in one place.
void build_preagg_stage(const Matrix& h, int self, HaloPlan& plan,
                        const MachineModel& machine, EpochStats& stats) {
  HaloPlan::PreAggPlan& pa = plan.preagg;
  const HaloPlan::StaleState& st = plan.stale;
  const bool thin = st.active && st.use_eff;
  const Index f = h.cols();
  const int p = static_cast<int>(plan.blocks.size());
  const auto np = static_cast<std::size_t>(p);
  pa.epoch_stage_offsets.resize(np + 1);
  pa.epoch_stage_offsets[0] = 0;
  for (std::size_t d = 0; d < np; ++d) {
    std::size_t rows_d = 0;
    if (static_cast<int>(d) != self && (!thin || st.send_fresh[d] != 0)) {
      rows_d = pa.agg_send[d] != 0
                   ? static_cast<std::size_t>(pa.seg[d].rows())
                   : plan.send_row_offsets[d + 1] - plan.send_row_offsets[d];
    }
    pa.epoch_stage_offsets[d + 1] = pa.epoch_stage_offsets[d] + rows_d;
  }
  const std::size_t total = pa.epoch_stage_offsets[np];
  {
    ScopedPhase scope(stats.profiler, Phase::kHaloPack);
    pa.stage.resize(static_cast<Index>(total), f);
    if (pa.stage_rows.size() < total) {
      const std::size_t old = pa.stage_rows.size();
      pa.stage_rows.resize(total);
      for (std::size_t k = old; k < total; ++k) {
        pa.stage_rows[k] = static_cast<Index>(k);
      }
    }
  }
  for (std::size_t d = 0; d < np; ++d) {
    const std::size_t off = pa.epoch_stage_offsets[d];
    const std::size_t rows_d = pa.epoch_stage_offsets[d + 1] - off;
    if (rows_d == 0) continue;
    if (pa.agg_send[d] != 0) {
      const Csr& seg = pa.seg[d];
      ScopedPhase scope(stats.profiler, Phase::kSpmm);
      spmm_csr_kernel<Real>(seg.rows(), seg.row_ptr().data(),
                            seg.col_idx().data(), seg.values().data(),
                            h.data(), f,
                            pa.stage.data() + off * static_cast<std::size_t>(f),
                            /*accumulate=*/false);
      stats.work.add_spmm(machine, static_cast<double>(seg.nnz()),
                          static_cast<double>(f), block_degree(seg));
    } else {
      ScopedPhase scope(stats.profiler, Phase::kHaloPack);
      pack_rows_threaded(
          h,
          std::span<const Index>(plan.send_rows.data() +
                                     plan.send_row_offsets[d],
                                 rows_d),
          f, pa.stage.data() + off * static_cast<std::size_t>(f));
    }
  }
}

}  // namespace

bool halo_backward_profitable(std::size_t landed_rows, double rs_rows,
                              Comm& comm) {
  std::array<double, 1> landed = {static_cast<double>(landed_rows)};
  comm.allreduce_max(std::span<double>(landed), CommCategory::kControl);
  return landed[0] <= 0.5 * rs_rows;
}

void halo_begin_epoch(int epoch, bool halo_active, Comm& comm,
                      HaloPlan& plan) {
  HaloPlan::StaleState& st = plan.stale;
  st.layer = 0;
  st.cur_slot = 0;
  const int mode = stale_k();
  const int p = comm.size();
  if (epoch < 0 || !halo_active || !plan.ready || p <= 1 || mode == 0 ||
      mode == 1) {
    // k = 1 refreshes every exchange — that IS the exact path — so the
    // cache machinery stays disarmed entirely (bitwise parity, incl.
    // per-category meters; tests/stale_test.cpp pins it).
    st.active = false;
    st.epoch_skip = false;
    st.use_eff = false;
    return;
  }
  st.active = true;
  const int self = comm.rank();
  const auto np = static_cast<std::size_t>(p);
  if (st.recv_fresh.size() != np) {
    st.valid.assign(np, 0);
    st.recv_fresh.assign(np, 1);
    st.send_fresh.assign(np, 1);
    st.delta_sq.assign(np, -1.0);
    st.norm_sq.assign(np, 0.0);
    st.next_refresh.assign(np, epoch);
    st.filled_epoch = -1;
    st.prev_epoch = -1;
    st.cache.clear();
    st.cache_f.clear();
  }
  if (mode != kStaleAdaptive) {
    // Fixed interval. filled_epoch evolves identically on every rank
    // (same knob, same epoch sequence, first arm always refreshes), so
    // the skip decision is rank-uniform and skip epochs can elide the
    // collective entirely.
    const bool refresh =
        st.filled_epoch < 0 || epoch - st.filled_epoch >= mode;
    st.epoch_skip = !refresh;
    st.use_eff = false;
    const char fill = refresh ? 1 : 0;
    std::fill(st.recv_fresh.begin(), st.recv_fresh.end(), fill);
    std::fill(st.send_fresh.begin(), st.send_fresh.end(), fill);
    if (refresh) st.filled_epoch = epoch;
    st.prev_epoch = epoch;
    return;
  }
  // Adaptive: fold the deltas accumulated over the previous epoch's
  // refreshes into per-peer intervals. A first fill (delta_sq < 0) has
  // no baseline and stays at the floor; otherwise the relative L2 drift
  // maps to ~ kStaleTau / drift epochs, clamped to the knob bounds.
  if (st.prev_epoch >= 0) {
    for (int j = 0; j < p; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (j == self || st.recv_fresh[js] == 0) continue;
      if (plan.recv_row_offsets[js + 1] == plan.recv_row_offsets[js]) {
        continue;
      }
      int kj = stale_min_k();
      if (st.delta_sq[js] >= 0.0) {
        const double rel =
            std::sqrt(st.delta_sq[js] / (st.norm_sq[js] + 1e-30));
        kj = rel > 0.0 ? static_cast<int>(kStaleTau / rel) : stale_max_k();
        kj = std::clamp(kj, stale_min_k(), stale_max_k());
      }
      st.next_refresh[js] = st.prev_epoch + kj;
    }
  }
  // This epoch's receiver-side wants, and the accumulator reset for the
  // refreshes about to run.
  st.want_flags.assign(np, 0);
  if (st.flag_offsets.size() != np + 1) {
    st.flag_offsets.resize(np + 1);
    for (std::size_t j = 0; j <= np; ++j) st.flag_offsets[j] = j;
  }
  for (int j = 0; j < p; ++j) {
    const auto js = static_cast<std::size_t>(j);
    bool want = false;
    if (j != self &&
        plan.recv_row_offsets[js + 1] > plan.recv_row_offsets[js]) {
      want = st.valid[js] == 0 || epoch >= st.next_refresh[js];
    }
    st.recv_fresh[js] = want ? 1 : 0;
    st.want_flags[js] = want ? 1 : 0;
    if (want && st.valid[js] != 0) {
      st.delta_sq[js] = 0.0;
      st.norm_sq[js] = 0.0;
    }
  }
  // One want-flag per peer, the only adaptive control traffic: collective
  // and in lockstep every epoch, so each sender learns exactly which
  // destinations to thin without any schedule agreement.
  comm.alltoallv_into(std::span<const Index>(st.want_flags),
                      std::span<const std::size_t>(st.flag_offsets),
                      st.peer_wants, CommCategory::kControl);
  bool any_skip = false;
  for (int d = 0; d < p; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const bool fresh = d != self && st.peer_wants.data[ds] != 0;
    st.send_fresh[ds] = fresh ? 1 : 0;
    if (d != self && !fresh &&
        plan.send_row_offsets[ds + 1] > plan.send_row_offsets[ds]) {
      any_skip = true;
    }
  }
  st.epoch_skip = false;
  st.use_eff = any_skip;
  if (any_skip) {
    // Thinned send set: refreshing destinations' send_rows chunks
    // concatenated, zero-length chunks for the rest. The exchange stays
    // in lockstep; only the words drop.
    st.eff_send_rows.clear();
    st.eff_send_row_offsets.assign(np + 1, 0);
    for (std::size_t d = 0; d < np; ++d) {
      if (st.send_fresh[d] != 0) {
        const std::size_t s0 = plan.send_row_offsets[d];
        const std::size_t s1 = plan.send_row_offsets[d + 1];
        st.eff_send_rows.insert(
            st.eff_send_rows.end(),
            plan.send_rows.begin() + static_cast<std::ptrdiff_t>(s0),
            plan.send_rows.begin() + static_cast<std::ptrdiff_t>(s1));
      }
      st.eff_send_row_offsets[d + 1] = st.eff_send_rows.size();
    }
  }
  st.prev_epoch = epoch;
}

void build_preagg_plan(const Csr& at,
                       const std::function<std::pair<Index, Index>(int)>&
                           peer_rows,
                       Index my_row_lo, Index my_row_hi, int self,
                       HaloPlan& plan) {
  CAGNET_CHECK(plan.ready, "build_preagg_plan: halo plan not built");
  HaloPlan::PreAggPlan& pa = plan.preagg;
  const int p = static_cast<int>(plan.blocks.size());
  const auto np = static_cast<std::size_t>(p);
  pa.active = false;
  pa.agg_send.assign(np, 0);
  pa.agg_recv.assign(np, 0);
  pa.seg.assign(np, Csr{});
  pa.stage_row_offsets.assign(np + 1, 0);
  pa.agg_land_offsets.assign(np + 1, 0);
  pa.agg_land_rows.clear();
  pa.eff_recv_row_offsets.assign(np + 1, 0);
  bool any = false;
  // Receiver side: a source whose compacted coupling block touches fewer
  // distinct output rows than it ships source rows profits from landing
  // one pre-reduced row per output row instead.
  for (int s = 0; s < p; ++s) {
    const auto ss = static_cast<std::size_t>(s);
    pa.eff_recv_row_offsets[ss + 1] = pa.eff_recv_row_offsets[ss];
    pa.agg_land_offsets[ss + 1] = pa.agg_land_offsets[ss];
    if (s == self) continue;
    const std::size_t need =
        plan.recv_row_offsets[ss + 1] - plan.recv_row_offsets[ss];
    if (need == 0) continue;
    const Csr& blk = plan.blocks[ss];
    Index nzr = 0;
    for (Index r = 0; r < blk.rows(); ++r) {
      if (blk.row_degree(r) > 0) ++nzr;
    }
    if (static_cast<std::size_t>(nzr) < need) {
      pa.agg_recv[ss] = 1;
      for (Index r = 0; r < blk.rows(); ++r) {
        if (blk.row_degree(r) > 0) pa.agg_land_rows.push_back(r);
      }
      pa.agg_land_offsets[ss + 1] = pa.agg_land_rows.size();
      pa.eff_recv_row_offsets[ss + 1] += static_cast<std::size_t>(nzr);
      any = true;
    } else {
      pa.eff_recv_row_offsets[ss + 1] += need;
    }
  }
  // Sender side: the same verdict from the destination's segment of the
  // global A^T — identical nnz structure to the block the destination
  // inspected, so both endpoints agree without control traffic.
  for (int d = 0; d < p; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    pa.stage_row_offsets[ds + 1] = pa.stage_row_offsets[ds];
    if (d == self) continue;
    const std::size_t sent =
        plan.send_row_offsets[ds + 1] - plan.send_row_offsets[ds];
    if (sent == 0) continue;
    const auto [d_lo, d_hi] = peer_rows(d);
    const Csr segd = at.block(d_lo, d_hi, my_row_lo, my_row_hi);
    Index nzr = 0;
    for (Index r = 0; r < segd.rows(); ++r) {
      if (segd.row_degree(r) > 0) ++nzr;
    }
    if (static_cast<std::size_t>(nzr) < sent) {
      pa.agg_send[ds] = 1;
      pa.seg[ds] = compact_nonzero_rows(segd);
      pa.stage_row_offsets[ds + 1] += static_cast<std::size_t>(nzr);
      any = true;
    } else {
      pa.stage_row_offsets[ds + 1] += sent;
    }
  }
  pa.active = any;
  if (!any) return;
  const std::size_t total = pa.stage_row_offsets[np];
  pa.stage_rows.resize(total);
  for (std::size_t k = 0; k < total; ++k) {
    pa.stage_rows[k] = static_cast<Index>(k);
  }
  pa.epoch_stage_offsets = pa.stage_row_offsets;
}

PendingOp halo_exchange_begin(const Matrix& src, std::span<const Index> rows,
                              std::span<const std::size_t> row_offsets,
                              Comm& comm, HaloPlan& plan, CommCategory cat,
                              Profiler& profiler) {
  CAGNET_CHECK(plan.ready, "halo_exchange_begin: plan not built");
  const Index f = src.cols();
  const int p = comm.size();
  HaloPlan::PackBuf& buf =
      plan.pack[static_cast<std::size_t>(plan.next_pack)];
  plan.next_pack ^= 1;
  if (buf.has_release) {
    // Release point for the op that used this buffer: it is two exchanges
    // stale, so peers drained it a whole layer ago — a handful of atomic
    // loads, off the critical path (the reason the staging is
    // double-buffered at all).
    ScopedPhase scope(profiler, Phase::kDenseComm);
    comm.quiesce_op(buf.release_ticket);
    buf.has_release = false;
  }
  {
    ScopedPhase scope(profiler, Phase::kHaloPack);
    buf.send_buf.resize(static_cast<Index>(rows.size()), f);
    pack_rows_threaded(src, rows, f, buf.send_buf.data());
    buf.send_elem_offsets.resize(static_cast<std::size_t>(p) + 1);
    for (std::size_t j = 0; j <= static_cast<std::size_t>(p); ++j) {
      buf.send_elem_offsets[j] =
          row_offsets[j] * static_cast<std::size_t>(f);
    }
  }
  const CompressMode rmode =
      p > 1 ? row_compress_mode() : CompressMode::kOff;
  if (rmode != CompressMode::kOff) {
    // Lossy row payload: re-encode the exact pack per destination chunk
    // (chunk boundaries must fall on codec-chunk starts, which per-
    // destination encoding guarantees) and ship the byte buffer instead.
    // No error feedback — halo rows are fresh activations each layer, not
    // an accumulating signal, so a residual would mix unrelated rows.
    {
      ScopedPhase scope(profiler, Phase::kCompressPack);
      buf.send_byte_offsets.resize(static_cast<std::size_t>(p) + 1);
      buf.send_byte_offsets[0] = 0;
      for (std::size_t j = 0; j < static_cast<std::size_t>(p); ++j) {
        const std::size_t elems =
            buf.send_elem_offsets[j + 1] - buf.send_elem_offsets[j];
        buf.send_byte_offsets[j + 1] =
            buf.send_byte_offsets[j] + encoded_size_bytes(rmode, elems);
      }
      buf.send_bytes.resize(
          buf.send_byte_offsets[static_cast<std::size_t>(p)]);
      for (std::size_t j = 0; j < static_cast<std::size_t>(p); ++j) {
        const std::size_t e0 = buf.send_elem_offsets[j];
        const std::size_t e1 = buf.send_elem_offsets[j + 1];
        if (e0 == e1) continue;
        compress_encode(
            rmode,
            std::span<const Real>(buf.send_buf.data() + e0, e1 - e0),
            buf.send_bytes.data() + buf.send_byte_offsets[j],
            /*residual=*/nullptr);
      }
    }
    ScopedPhase scope(profiler, Phase::kDenseComm);
    if (overlap_enabled()) {
      PendingOp op = comm.ialltoallv_post(
          std::span<const std::uint8_t>(buf.send_bytes),
          std::span<const std::size_t>(buf.send_byte_offsets),
          CommCategory::kCompressed);
      buf.release_ticket = op.ticket();
      buf.has_release = true;
      return op;
    }
    comm.alltoallv_into(std::span<const std::uint8_t>(buf.send_bytes),
                        std::span<const std::size_t>(buf.send_byte_offsets),
                        plan.recv_bytes, CommCategory::kCompressed);
    return PendingOp{};
  }
  ScopedPhase scope(profiler, Phase::kDenseComm);
  if (overlap_enabled()) {
    // Post-only: the caller drains each peer's chunk exactly when the
    // stage that consumes it runs, and wait()s the op once all stages are
    // done. Charges (applied per drain) sum bitwise to the blocking
    // form's.
    PendingOp op = comm.ialltoallv_post(
        std::span<const Real>(buf.send_buf.flat()),
        std::span<const std::size_t>(buf.send_elem_offsets), cat);
    buf.release_ticket = op.ticket();
    buf.has_release = true;
    return op;
  }
  comm.alltoallv_into(std::span<const Real>(buf.send_buf.flat()),
                      std::span<const std::size_t>(buf.send_elem_offsets),
                      plan.recv, cat);
  return PendingOp{};
}

void halo_spmm_pipeline(const Matrix& h, const Csr* self_block, int self,
                        Comm& comm, HaloPlan& plan, CommCategory cat,
                        const MachineModel& machine, EpochStats& stats,
                        Matrix& t) {
  HaloPlan::StaleState& st = plan.stale;
  if (st.active) {
    // One cache slot per forward exchange of the epoch (each layer has
    // its own width); the counter restarts at halo_begin_epoch.
    st.cur_slot = st.layer++;
    if (st.epoch_skip) {
      halo_stale_replay(h, self_block, self, comm, plan, machine, stats, t);
      return;
    }
  } else {
    st.cur_slot = 0;
  }
  PendingOp op;
  if (plan.preagg.active) {
    build_preagg_stage(h, self, plan, machine, stats);
    op = halo_exchange_begin(
        plan.preagg.stage,
        std::span<const Index>(plan.preagg.stage_rows.data(),
                               static_cast<std::size_t>(
                                   plan.preagg.stage.rows())),
        std::span<const std::size_t>(plan.preagg.epoch_stage_offsets), comm,
        plan, cat, stats.profiler);
  } else if (st.active && st.use_eff) {
    op = halo_exchange_begin(
        h, std::span<const Index>(st.eff_send_rows),
        std::span<const std::size_t>(st.eff_send_row_offsets), comm, plan,
        cat, stats.profiler);
  } else {
    op = halo_exchange_begin(
        h, std::span<const Index>(plan.send_rows),
        std::span<const std::size_t>(plan.send_row_offsets), comm, plan, cat,
        stats.profiler);
  }
  halo_spmm_sweep(op, h, self_block, self, comm, plan, machine, stats, t);
}

void halo_spmm_sweep(PendingOp& op, const Matrix& h, const Csr* self_block,
                     int self, Comm& comm, HaloPlan& plan,
                     const MachineModel& machine, EpochStats& stats,
                     Matrix& t) {
  const int p = comm.size();
  const Index f = h.cols();
  const bool pipelined = op.pending();
  HaloPlan::StaleState& st = plan.stale;
  const bool stale_on = st.active;
  const bool adaptive = stale_on && stale_k() == kStaleAdaptive;
  const auto slot = static_cast<std::size_t>(st.cur_slot);
  // Landed-row offsets of this exchange: the preagg plan's effective
  // layout when aggregation is armed, the raw plan's otherwise.
  const std::vector<std::size_t>& roff = fwd_recv_offsets(plan);
  const CompressMode rmode =
      p > 1 ? row_compress_mode() : CompressMode::kOff;
  if (rmode != CompressMode::kOff) {
    // Decode staging for every peer's landed rows, laid out at the
    // exchange's recv row offsets so each stage decodes into its own
    // slice.
    ScopedPhase scope(stats.profiler, Phase::kCompressPack);
    plan.recv_decode.resize(roff[static_cast<std::size_t>(p)] *
                            static_cast<std::size_t>(f));
  }
  if (stale_on) {
    // Size this layer's cache slot. Only refresh epochs reach the sweep,
    // and only their first visit allocates; replays never get here.
    if (st.cache.size() <= slot) {
      st.cache.resize(slot + 1);
      st.cache_f.resize(slot + 1, 0);
    }
    st.cache[slot].resize(roff[static_cast<std::size_t>(p)] *
                          static_cast<std::size_t>(f));
    st.cache_f[slot] = f;
  }
  // Ascending stage order is the broadcast loops' accumulation order;
  // keeping it makes every per-element sum an identical ordered sum of
  // identical products, so T stays bitwise the broadcast path's. Each
  // drain closes one overlap region: stage j's rows were in flight while
  // the stages before j multiplied — including the self stage, whose
  // SpMM is the pipeline's headline overlap, so the region opens before
  // the sweep.
  OverlapScope region(comm.meter(), stats.work, machine);
  if (pipelined) region.open();
  for (int j = 0; j < p; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (j == self) {
      if (self_block != nullptr) {
        ScopedPhase scope(stats.profiler, Phase::kSpmm);
        self_block->spmm(h, t, /*accumulate=*/true);
        stats.work.add_spmm(machine, static_cast<double>(self_block->nnz()),
                            static_cast<double>(f),
                            block_degree(*self_block));
      }
      continue;
    }
    const std::size_t base_rows = roff[js + 1] - roff[js];
    if (stale_on && st.recv_fresh[js] == 0) {
      // Stale peer: certify its empty chunk (adaptive exchanges stay in
      // lockstep; the peer shipped a zero-length chunk by the same
      // want-flag) and replay the cached landed rows through the
      // identical accumulation, crediting the avoided exact words.
      if (pipelined) {
        {
          ScopedPhase scope(stats.profiler, Phase::kDenseComm);
          op.skip_source(j);
        }
        region.close();
        region.open();
      }
      if (base_rows == 0) continue;
      comm.notify_event(CommCategory::kHalo, "halo stale skip");
      comm.meter().add_stale_saved(static_cast<double>(base_rows) *
                                   static_cast<double>(f));
      halo_accumulate_peer(
          plan, j,
          st.cache[slot].data() + roff[js] * static_cast<std::size_t>(f), f,
          machine, stats, t);
      continue;
    }
    const std::size_t expect = base_rows * static_cast<std::size_t>(f);
    Real* decode_dst =
        rmode == CompressMode::kOff
            ? nullptr
            : plan.recv_decode.data() +
                  roff[js] * static_cast<std::size_t>(f);
    const Real* rows_j = drain_halo_peer(op, plan, j, expect, pipelined,
                                         rmode, decode_dst, region,
                                         stats.profiler);
    if (stale_on && expect > 0 && rows_j != nullptr) {
      // Refresh this peer's cache slice (and, in adaptive mode, fold the
      // serial L2 delta against the old slice before overwriting it —
      // deterministic double accumulation).
      ScopedPhase scope(stats.profiler, Phase::kHaloPack);
      Real* dst =
          st.cache[slot].data() + roff[js] * static_cast<std::size_t>(f);
      if (adaptive) {
        if (st.valid[js] == 0) {
          st.delta_sq[js] = -1.0;  // first fill: no baseline for a delta
        } else if (st.delta_sq[js] >= 0.0) {
          double d2 = 0.0;
          double n2 = 0.0;
          for (std::size_t k = 0; k < expect; ++k) {
            const double diff = static_cast<double>(rows_j[k]) -
                                static_cast<double>(dst[k]);
            d2 += diff * diff;
            n2 += static_cast<double>(rows_j[k]) *
                  static_cast<double>(rows_j[k]);
          }
          st.delta_sq[js] += d2;
          st.norm_sq[js] += n2;
        }
      }
      std::copy(rows_j, rows_j + expect, dst);
      st.valid[js] = 1;
    }
    halo_accumulate_peer(plan, j, rows_j, f, machine, stats, t);
  }
  region.close();
  if (pipelined) {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    op.wait();  // every source drained; this just releases the channel
  }
}

void halo_exchange_contributions(
    const Matrix& partial, std::span<const Index> pack_rows,
    std::span<const std::size_t> pack_row_offsets, bool self_partial,
    Index self_row0, std::span<const Index> land_rows,
    std::span<const std::size_t> land_row_offsets, int self, Comm& comm,
    HaloPlan& plan, CommCategory cat, const MachineModel& machine,
    EpochStats& stats, Matrix& u) {
  PendingOp op = halo_exchange_begin(partial, pack_rows, pack_row_offsets,
                                     comm, plan, cat, stats.profiler);
  const int p = comm.size();
  const Index f = partial.cols();
  const bool pipelined = op.pending();
  const CompressMode rmode =
      p > 1 ? row_compress_mode() : CompressMode::kOff;
  // A rank that accumulates nothing (a 1.5D non-keeper: no self term and
  // every land chunk empty — its u arrives whole with the team broadcast)
  // only owes the drain bookkeeping: skip every source without touching u
  // or coupling to any peer's schedule.
  if (!self_partial &&
      land_row_offsets[static_cast<std::size_t>(p)] ==
          land_row_offsets[0]) {
    if (pipelined) {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      for (int r = 0; r < p; ++r) {
        if (r != self) op.skip_source(r);
      }
      op.wait();
    }
    return;
  }
  {
    ScopedPhase scope(stats.profiler, Phase::kHaloPack);
    u.set_zero();
  }
  if (rmode != CompressMode::kOff) {
    ScopedPhase scope(stats.profiler, Phase::kCompressPack);
    plan.recv_decode.resize(
        land_row_offsets[static_cast<std::size_t>(p)] *
        static_cast<std::size_t>(f));
  }
  // Rank-ascending accumulation, the reduce-scatter's exact per-element
  // order (rows a peer did not send are exact +0.0 contributions), so U
  // is bitwise the broadcast path's. The region opens before the sweep
  // so the first drain's charges pair with the accumulation that
  // precedes it.
  OverlapScope region(comm.meter(), stats.work, machine);
  if (pipelined) region.open();
  for (int r = 0; r < p; ++r) {
    if (r == self) {
      if (self_partial) {
        ScopedPhase scope(stats.profiler, Phase::kHaloPack);
        const Real* src = partial.data() + self_row0 * f;
        Real* dst = u.data();
        const Index len = u.rows() * f;
        parallel_for(len,
                     plan_chunks(static_cast<double>(len), kMinElemsPerChunk,
                                 len),
                     [&](Index lo, Index hi) {
                       for (Index k = lo; k < hi; ++k) dst[k] += src[k];
                     });
      }
      continue;
    }
    const std::size_t k0 = land_row_offsets[static_cast<std::size_t>(r)];
    const std::size_t k1 = land_row_offsets[static_cast<std::size_t>(r) + 1];
    Real* decode_dst =
        rmode == CompressMode::kOff
            ? nullptr
            : plan.recv_decode.data() + k0 * static_cast<std::size_t>(f);
    const Real* src =
        drain_halo_peer(op, plan, r, (k1 - k0) * static_cast<std::size_t>(f),
                        pipelined, rmode, decode_dst, region,
                        stats.profiler);
    if (k0 == k1) continue;
    // Scatter-add this peer's landed rows (distinct within a peer, so
    // row chunks write disjoint outputs and threading is deterministic).
    ScopedPhase scope(stats.profiler, Phase::kHaloPack);
    const auto rows_n = static_cast<Index>(k1 - k0);
    parallel_for(
        rows_n,
        plan_chunks(static_cast<double>(rows_n) * static_cast<double>(f),
                    kMinElemsPerChunk, rows_n),
        [&](Index lo, Index hi) {
          for (Index k = lo; k < hi; ++k) {
            const Real* s = src + k * f;
            Real* d = u.data() +
                      land_rows[k0 + static_cast<std::size_t>(k)] * f;
            for (Index c = 0; c < f; ++c) d[c] += s[c];
          }
        });
  }
  region.close();
  if (pipelined) {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    op.wait();  // every source drained; this just releases the channel
  }
}

Csr route_csr(const Csr& mine, int dest, Comm& comm, CommCategory cat) {
  const std::array<Index, 3> my_header = {mine.rows(), mine.cols(),
                                          mine.nnz()};
  const auto header = comm.route(std::span<const Index>(my_header), dest, cat);
  auto row_ptr = comm.route(mine.row_ptr(), dest, cat);
  auto col_idx = comm.route(mine.col_idx(), dest, cat);
  auto vals = comm.route(std::span<const Real>(mine.values()), dest, cat);
  return Csr::from_parts(header[0], header[1], std::move(row_ptr),
                         std::move(col_idx), std::move(vals));
}

}  // namespace dist
}  // namespace cagnet
