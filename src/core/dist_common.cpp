#include "src/core/dist_common.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

DistProblem DistProblem::prepare(const Graph& graph) {
  DistProblem p;
  p.graph = &graph;
  p.at = graph.adjacency.transposed();
  for (Index label : graph.labels) {
    if (label >= 0) ++p.labeled_count;
  }
  return p;
}

EpochStats EpochStats::reduce_max(const EpochStats& mine, Comm& comm) {
  // Serialize the numeric payload into one vector, allreduce-max it, and
  // unpack. Loss/accuracy are identical on all ranks already (reduced in
  // the trainer), so max is a no-op for them.
  constexpr std::size_t kPhases = Profiler::kNumPhases;
  constexpr std::size_t kCats = CostMeter::kNumCategories;
  std::vector<double> payload;
  payload.reserve(2 + kPhases + 2 * kCats + 4);
  payload.push_back(mine.result.loss);
  payload.push_back(mine.result.accuracy);
  for (std::size_t i = 0; i < kPhases; ++i) {
    payload.push_back(mine.profiler.seconds(static_cast<Phase>(i)));
  }
  for (std::size_t i = 0; i < kCats; ++i) {
    const auto cat = static_cast<CommCategory>(i);
    payload.push_back(mine.comm.latency_units(cat));
    payload.push_back(mine.comm.words(cat));
  }
  payload.push_back(mine.work.spmm_seconds());
  payload.push_back(mine.work.gemm_seconds());
  payload.push_back(mine.work.spmm_flops());
  payload.push_back(mine.work.gemm_flops());

  comm.allreduce_max(std::span<double>(payload), CommCategory::kControl);

  EpochStats out;
  std::size_t k = 0;
  out.result.loss = payload[k++];
  out.result.accuracy = payload[k++];
  for (std::size_t i = 0; i < kPhases; ++i) {
    out.profiler.add(static_cast<Phase>(i), payload[k++]);
  }
  for (std::size_t i = 0; i < kCats; ++i) {
    const auto cat = static_cast<CommCategory>(i);
    const double lat = payload[k++];
    const double words = payload[k++];
    out.comm.add(cat, lat, words);
  }
  out.work = WorkMeter::from_values(payload[k], payload[k + 1],
                                    payload[k + 2], payload[k + 3]);
  return out;
}

namespace dist {

namespace {
/// Not atomic on purpose: flip only between run_world invocations.
bool g_epoch_cache_enabled = true;
}  // namespace

bool epoch_cache_enabled() { return g_epoch_cache_enabled; }
void set_epoch_cache_enabled(bool on) { g_epoch_cache_enabled = on; }

EpochResult reduce_loss_accuracy(const Matrix& local_log_probs, Index row_lo,
                                 const std::vector<Index>& labels,
                                 Index labeled_count, Comm& comm) {
  double loss_sum = 0;
  double hits = 0;
  for (Index r = 0; r < local_log_probs.rows(); ++r) {
    const Index label = labels[static_cast<std::size_t>(row_lo + r)];
    if (label < 0) continue;
    loss_sum -= local_log_probs(r, label);
    const auto row = local_log_probs.row(r);
    const Index pred = static_cast<Index>(
        std::max_element(row.begin(), row.end()) - row.begin());
    if (pred == label) hits += 1;
  }
  std::array<double, 2> acc = {loss_sum, hits};
  comm.allreduce_sum(std::span<double>(acc), CommCategory::kControl);
  EpochResult result;
  result.loss = labeled_count > 0 ? acc[0] / static_cast<double>(labeled_count)
                                  : 0.0;
  result.accuracy =
      labeled_count > 0 ? acc[1] / static_cast<double>(labeled_count) : 0.0;
  return result;
}

Matrix local_nll_gradient(const Matrix& local_log_probs, Index row_lo,
                          const std::vector<Index>& labels,
                          Index labeled_count) {
  Matrix grad(local_log_probs.rows(), local_log_probs.cols());
  if (labeled_count == 0) return grad;
  const Real scale = Real{-1} / static_cast<Real>(labeled_count);
  for (Index r = 0; r < local_log_probs.rows(); ++r) {
    const Index label = labels[static_cast<std::size_t>(row_lo + r)];
    if (label >= 0) grad(r, label) = scale;
  }
  return grad;
}

double block_degree(const Csr& block) {
  return block.rows() > 0
             ? static_cast<double>(block.nnz()) /
                   static_cast<double>(block.rows())
             : 0.0;
}

const Matrix* broadcast_dense_stage(const Matrix& mine, Matrix& recv,
                                    Index rows, Index cols, int root,
                                    Comm& comm, CommCategory cat) {
  if (comm.rank() == root) {
    CAGNET_CHECK(mine.rows() == rows && mine.cols() == cols,
                 "broadcast_dense_stage: root block shape mismatch");
    comm.broadcast_from(std::span<const Real>(mine.flat()),
                        std::span<Real>{}, root, cat);
    return &mine;
  }
  recv.resize(rows, cols);
  comm.broadcast_from(std::span<const Real>{}, recv.flat(), root, cat);
  return &recv;
}

void allreduce_weight_gradient(Matrix& y_partial, Index f_in, Index f_out,
                               Comm& comm, Profiler& profiler,
                               Matrix& y_full) {
  CAGNET_CHECK(y_partial.rows() == f_in && y_partial.cols() == f_out,
               "reduce_gradients: unexpected partial shape");
  std::swap(y_partial, y_full);
  ScopedPhase scope(profiler, Phase::kDenseComm);
  comm.allreduce_sum(y_full.flat(), CommCategory::kDense);
}

const Csr* broadcast_csr(const Csr* mine, Csr& recv, int root, Comm& comm,
                         CommCategory cat) {
  const bool is_root = comm.rank() == root;
  std::array<Index, 3> header = {0, 0, 0};
  if (is_root) {
    CAGNET_CHECK(mine != nullptr, "broadcast_csr: root must supply a block");
    header = {mine->rows(), mine->cols(), mine->nnz()};
  }
  comm.broadcast(std::span<Index>(header), root, cat);
  if (is_root) {
    // The root publishes straight from its block's arrays — no staging
    // copy, no deserialization, and the caller keeps using `mine`.
    comm.broadcast_from(mine->row_ptr(), std::span<Index>{}, root, cat);
    comm.broadcast_from(mine->col_idx(), std::span<Index>{}, root, cat);
    comm.broadcast_from(std::span<const Real>(mine->values()),
                        std::span<Real>{}, root, cat);
    return mine;
  }
  recv.resize_parts(header[0], header[1], header[2]);
  comm.broadcast_from(std::span<const Index>{}, recv.row_ptr_mut(), root,
                      cat);
  comm.broadcast_from(std::span<const Index>{}, recv.col_idx_mut(), root,
                      cat);
  comm.broadcast_from(std::span<const Real>{}, recv.values(), root, cat);
  return &recv;
}

Csr exchange_csr(const Csr& mine, int peer, Comm& comm, CommCategory cat) {
  const std::array<Index, 3> my_header = {mine.rows(), mine.cols(),
                                          mine.nnz()};
  const auto header = comm.exchange(std::span<const Index>(my_header), peer, cat);
  auto row_ptr = comm.exchange(mine.row_ptr(), peer, cat);
  auto col_idx = comm.exchange(mine.col_idx(), peer, cat);
  auto vals = comm.exchange(std::span<const Real>(mine.values()), peer, cat);
  return Csr::from_parts(header[0], header[1], std::move(row_ptr),
                         std::move(col_idx), std::move(vals));
}

void partial_summa_times_weight(const Matrix& t, const Matrix& w, int parts,
                                int my_col, Comm& row_comm,
                                const MachineModel& machine,
                                EpochStats& stats, DistWorkspace& ws,
                                Matrix& z) {
  const Index local_rows = t.rows();
  const Index f_in = w.rows();
  const Index f_out = w.cols();
  const auto [fo0, fo1] = block_range(f_out, parts, my_col);
  z.resize(local_rows, fo1 - fo0);
  z.set_zero();
  for (int m = 0; m < parts; ++m) {
    const auto [fm0, fm1] = block_range(f_in, parts, m);
    const Matrix* t_m = nullptr;
    {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      t_m = broadcast_dense_stage(t, ws.stage_recv, local_rows, fm1 - fm0,
                                  m, row_comm, CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats.profiler, Phase::kMisc);
      w.block_into(fm0, fo0, fm1 - fm0, fo1 - fo0, ws.w_block);
      gemm(Trans::kNo, Trans::kNo, Real{1}, *t_m, ws.w_block, Real{1}, z);
      stats.work.add_gemm(machine, 2.0 * static_cast<double>(local_rows) *
                                       static_cast<double>(fm1 - fm0) *
                                       static_cast<double>(fo1 - fo0));
    }
  }
}

void allgather_feature_rows(const Matrix& local, Index full_cols, int parts,
                            Comm& row_comm, Profiler& profiler,
                            DistWorkspace& ws, Matrix& full) {
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    row_comm.allgatherv_into(std::span<const Real>(local.flat()),
                             ws.gathered, CommCategory::kDense);
  }
  full.resize(local.rows(), full_cols);
  for (int jj = 0; jj < parts; ++jj) {
    const auto [c0, c1] = block_range(full_cols, parts, jj);
    const auto chunk = ws.gathered.chunk(jj);
    CAGNET_CHECK(chunk.size() == static_cast<std::size_t>(local.rows() *
                                                          (c1 - c0)),
                 "allgather_feature_rows: chunk size mismatch");
    for (Index r = 0; r < local.rows(); ++r) {
      std::copy(chunk.begin() + r * (c1 - c0),
                chunk.begin() + (r + 1) * (c1 - c0),
                full.data() + r * full_cols + c0);
    }
  }
}

void assemble_weight_gradient(Matrix& y_slice, Index f_in, Index f_out,
                              int parts, Comm& reduce_comm, Comm& row_comm,
                              Profiler& profiler, DistWorkspace& ws,
                              Matrix& y) {
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    reduce_comm.allreduce_sum(y_slice.flat(), CommCategory::kDense);
  }
  {
    ScopedPhase scope(profiler, Phase::kDenseComm);
    row_comm.allgatherv_into(std::span<const Real>(y_slice.flat()),
                             ws.gathered, CommCategory::kDense);
  }
  y.resize(f_in, f_out);
  for (int jj = 0; jj < parts; ++jj) {
    const auto [r0, r1] = block_range(f_in, parts, jj);
    const auto chunk = ws.gathered.chunk(jj);
    CAGNET_CHECK(chunk.size() == static_cast<std::size_t>((r1 - r0) * f_out),
                 "assemble_weight_gradient: slice size mismatch");
    std::copy(chunk.begin(), chunk.end(), y.data() + r0 * f_out);
  }
}

Csr route_csr(const Csr& mine, int dest, Comm& comm, CommCategory cat) {
  const std::array<Index, 3> my_header = {mine.rows(), mine.cols(),
                                          mine.nnz()};
  const auto header = comm.route(std::span<const Index>(my_header), dest, cat);
  auto row_ptr = comm.route(mine.row_ptr(), dest, cat);
  auto col_idx = comm.route(mine.col_idx(), dest, cat);
  auto vals = comm.route(std::span<const Real>(mine.values()), dest, cat);
  return Csr::from_parts(header[0], header[1], std::move(row_ptr),
                         std::move(col_idx), std::move(vals));
}

}  // namespace dist
}  // namespace cagnet
