// 1.5D block-row algorithm with c-fold dense replication (Section IV-B).
//
// The paper discusses this family qualitatively (Koanantakool-style 1.5D
// SpMM) and argues that its extra memory is hard to justify for GNNs where
// d = O(f); it gives no formulas or implementation. We implement it so the
// communication/memory trade-off can be measured (DESIGN.md experiment E9).
//
// Layout: P = G * c ranks as G "groups" x c "teams" (team index t = rank %
// c, group g = rank / c). Vertex rows are split into G coarse blocks R_g.
//   H^l, G^l: block R_g, *replicated* across the c team members of group g
//             (the c-fold dense memory cost).
//   A^T:      rank (g, t) owns A^T[R_g, R_j] for all j ≡ t (mod c) — the
//             block row's columns are striped across the team, so A itself
//             is not replicated.
// Forward: slice t (the G ranks sharing t) runs Algorithm-1-style broadcast
// stages over only its stripe's j's — a 1/c reduction of broadcast volume —
// followed by a team all-reduce of the partial T. Backward: the outer
// product reduces within the slice (reduce-scatter onto the j ≡ t ranks)
// and finishes with a team broadcast.
//
// Only the distributed algebra lives here; the training loop itself is the
// shared DistEngine (see dist_engine.hpp).
#pragma once

#include <map>
#include <memory>

#include "src/core/dist_engine.hpp"

namespace cagnet {

/// 1.5D replicated block-row algebra: rows-whole layout (the engine's
/// default times_weight / gather_feature_rows apply); loss rows are primary
/// only on team member 0 of each group.
class Algebra15D final : public DistSpmmAlgebra {
 public:
  /// Collective constructor; replication must divide the world size.
  Algebra15D(const DistProblem& problem, Comm world, int replication,
             MachineModel machine);

  const char* name() const override { return "1.5d"; }
  Comm& world() override { return world_; }
  Index row_lo() const override { return row_lo_; }
  Index row_hi() const override { return row_hi_; }
  bool owns_loss_rows() const override { return t_ == 0; }

  void spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) override;
  void spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) override;
  /// Arm the slice halo plan's bounded-staleness state for this epoch
  /// (dist::halo_begin_epoch); collective over the slice in adaptive
  /// mode, a no-op when CAGNET_STALE is off or halo mode is inactive.
  void begin_epoch(int epoch) override;

  /// With overlap enabled, spmm_at defers the team (replica) all-reduce of
  /// T as row-chunked nonblocking ops, and this override interleaves their
  /// waits with the local Z = T W GEMM chunk by chunk — the reduction of
  /// chunk c+1 is in flight while chunk c multiplies. Results and metered
  /// charges are bitwise identical to the blocking form.
  void times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                    EpochStats& stats) override;

  void reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                        Matrix& y_full, EpochStats& stats) override;
  void begin_reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                              Matrix& y_full, EpochStats& stats) override;
  void finish_gradients(EpochStats& stats) override;
  void drain() noexcept override {
    dist::drain_comm(slice_);
    dist::drain_comm(team_);
  }

  int replication() const { return c_; }
  int groups() const { return groups_; }
  /// True when the sparsity-aware halo exchange replaces the stripe
  /// broadcasts (dist::halo_enabled() at construction and G > 1).
  bool halo_active() const { return use_halo_; }
  /// True when the backward slice reduce-scatter is also replaced by the
  /// mirrored contribution exchange. Gated at construction: the exchange
  /// moves per-peer contribution rows rather than pre-reduced chunks, so
  /// it only wins when the slice-wide worst-case landed volume stays
  /// within the reduce-scatter's charge (a locality partitioner regime;
  /// a random partition keeps the reduce-scatter).
  bool backward_halo_active() const { return use_bwd_halo_; }

 protected:
  /// Slices hold identical replicas; slice ranks are ordered by group,
  /// i.e. by row block, so the slice all-gather assembles H^L.
  Comm& gather_comm() override { return slice_; }

 private:
  Comm world_;
  Comm team_;   ///< the c replicas of this group's dense blocks
  Comm slice_;  ///< the G ranks sharing this team index t

  int c_ = 1;       ///< replication factor
  int groups_ = 1;  ///< G = P / c
  int t_ = 0;       ///< team index (column stripe)
  int g_ = 0;       ///< group index (vertex block)

  Index n_ = 0;
  Index row_lo_ = 0, row_hi_ = 0;  ///< R_g
  /// Partition-aware group boundaries (G+1): the DistProblem partition's
  /// offsets when it was prepared for G parts, even block_range otherwise.
  std::vector<Index> row_starts_;

  bool use_halo_ = false;  ///< sparsity-aware stripe exchange (forward)
  bool use_bwd_halo_ = false;  ///< mirrored contribution exchange (backward)
  dist::HaloPlan halo_;    ///< over the slice; built once, replayed
  /// Backward pack addressing: the plan's need_rows remapped into the
  /// stacked stripe layout of u_partial_ (stacked block base of peer j +
  /// peer-local row), built once alongside the plan.
  std::vector<Index> bwd_pack_rows_;
  Index self_stacked_row0_ = 0;  ///< stacked base of this group's block

  /// at_stripe_[j] for j ≡ t (mod c): A^T[R_g, R_j].
  std::map<int, Csr> at_stripe_;
  /// a_stripe_[j] = A[R_j, R_g] (transposes of the above), the backward
  /// outer-product operands.
  std::map<int, Csr> a_stripe_;

  Matrix hj_recv_;    ///< broadcast-stage receive buffer (reused)
  Matrix hj_recv2_;   ///< double-buffer partner (overlapped prefetch)
  Matrix u_partial_;  ///< stacked stripe outer-product partial (reused)

  /// Deferred team (replica) all-reduce of T, posted by spmm_at in overlap
  /// mode and drained chunk-by-chunk in times_weight. The chunk charges
  /// telescope (cumulative-bytes differences) so their sum is bitwise the
  /// blocking all-reduce charge for any team size.
  struct DeferredTeamReduce {
    bool active = false;
    std::vector<PendingOp> ops;                       ///< one per row chunk
    std::vector<std::pair<Index, Index>> rows;        ///< chunk row ranges
    std::vector<std::pair<double, double>> charges;   ///< (lat, words)
  };
  DeferredTeamReduce deferred_;
  dist::PendingGradReduce grad_pending_;  ///< deferred Y reductions
  /// Codec staging of the compressed slice reduce-scatter (row modes;
  /// error feedback off — U is fresh each layer).
  CompressBuf u_cbuf_;
  std::uint64_t u_release_ticket_ = 0;  ///< last u reduce-scatter (release)
  bool has_u_release_ = false;
  Matrix t_reduced_;   ///< out-of-place reduced T (reused)
  Matrix t_chunk_;     ///< reduced-T row chunk staged for the GEMM (reused)
  Matrix z_chunk_;     ///< per-chunk GEMM output (reused)
};

/// The 1.5D trainer: the shared engine driven by Algebra15D.
class Dist15D final : public DistEngine {
 public:
  /// Collective constructor; replication must divide the world size.
  Dist15D(const DistProblem& problem, GnnConfig config, Comm world,
          int replication, MachineModel machine = MachineModel::summit());
};

}  // namespace cagnet
