// Analytical per-epoch communication costs of Section IV.
//
// These closed forms are the paper's primary contribution; the benches
// cross-check them against the metered traffic of the actual distributed
// trainers and regenerate the 1D vs 2D vs 3D comparisons of Section VI-d
// (e.g. "the 2D algorithm moves (5/sqrt(P))-th of the data moved by 1D" and
// the sqrt(P) >= 5 crossover).
#pragma once

#include <string>

#include "src/comm/machine.hpp"
#include "src/graph/partition.hpp"
#include "src/util/types.hpp"

namespace cagnet {

/// Problem shape entering the closed forms.
struct CostInputs {
  double n = 0;        ///< vertices
  double nnz = 0;      ///< nonzeros of A (edges + self loops)
  double f = 0;        ///< average feature-vector length across layers
  double edgecut = 0;  ///< edgecut_P(A); n(P-1)/P for random partitioning
  int p = 1;           ///< processes
  int layers = 1;      ///< L

  /// Inputs with the random-partitioning edgecut bound n(P-1)/P (what
  /// Algorithm 1's dense broadcasts realize).
  static CostInputs from_random(double n, double nnz, double f, int p,
                                int layers);

  /// Inputs with a *measured* edgecut_P(A) — the max distinct remote rows
  /// any process receives under an actual partition (Section IV-A.8) —
  /// so predicted and metered volumes agree for partitioned halo runs.
  static CostInputs from_partition(const EdgeCutStats& cut, double n,
                                   double nnz, double f, int p, int layers);
};

/// A latency/bandwidth pair in alpha-units and words.
struct CommCost {
  double latency_units = 0;  ///< multiply by alpha
  double words = 0;          ///< multiply by beta

  double seconds(const MachineModel& m) const {
    return m.alpha * latency_units + m.beta * words;
  }
};

/// 1D block row (Section IV-A.5): per epoch,
///   lat = 3 L lg P,   words = L (edgecut*f + n*f + f^2).
CommCost cost_1d(const CostInputs& in);

/// 1D symmetric case (Eq. 2): words = L (2*edgecut*f + f^2).
CommCost cost_1d_symmetric(const CostInputs& in);

/// Forward-halo traffic alone under a bounded-staleness refresh every
/// `stale_k` epochs (CAGNET_STALE; stale_k = 1 is the exact per-epoch
/// exchange). Amortized per epoch: the exact forward halo moves
/// L * edgecut * f words and L (P-1) messages, and a refresh interval of
/// k ships 1/k of both — the predicted counterpart of the metered kHalo
/// drop and of CostMeter::stale_saved_words (predicted savings = exact
/// minus this). `stale_k` may be fractional: pass the *effective* rate
/// (refresh epochs / total epochs)^-1 measured from an adaptive run.
CommCost cost_1d_halo_stale(const CostInputs& in, double stale_k);

/// 1D transposing variant (Section IV-A.7): symmetric cost plus
/// 2 alpha p^2 + 2 beta nnz/P per epoch for the two transposes.
CommCost cost_1d_transposing(const CostInputs& in);

/// 1.5D with replication factor c (Section IV-B discusses the family
/// without formulas; this matches our Dist15D implementation, which
/// replicates the dense matrices c-fold):
///   lat = L (3 lg P + 4),  words = L (2 n f / c + 3 n f c / P + f^2).
CommCost cost_15d(const CostInputs& in, int c);

/// 2D SUMMA on a sqrt(P) x sqrt(P) grid (Section IV-C.5):
///   lat = L (5 sqrt(P) + 3 lg P),
///   words = L (8 n f / sqrt(P) + 2 nnz / sqrt(P) + f^2).
CommCost cost_2d(const CostInputs& in);

/// 2D on a rectangular Pr x Pc grid, forward-propagation term only
/// (Section IV-C.6): lat = gcf(Pr, Pc), words = nnz/Pr + nf/Pc + nf/Pr.
CommCost cost_2d_rectangular_forward(const CostInputs& in, int pr, int pc);

/// 3D split on a cbrt(P)^3 mesh (Section IV-D.5):
///   lat = 4 L P^(1/3),
///   words = L (2 nnz / P^(2/3) + 12 n f / P^(2/3)).
CommCost cost_3d(const CostInputs& in);

/// Per-process memory words for storing A, H (all layers), and W under each
/// distribution, used for the 3D replication-cost discussion and the 1.5D
/// ablation. Includes the P^(1/3) (3D) and c (1.5D) replication factors on
/// intermediate/dense storage.
double memory_words_1d(const CostInputs& in);
double memory_words_15d(const CostInputs& in, int c);
double memory_words_2d(const CostInputs& in);
double memory_words_3d(const CostInputs& in);

const char* algorithm_name(int which);  ///< 0=1D,1=1.5D,2=2D,3=3D (display)

}  // namespace cagnet
