// Distributed mini-batch sampled training (the paper's Section VII
// outlook: "our distributed training algorithms ... carefully combined
// with sophisticated sampling based methods").
//
// The sampled epoch is the full-batch distributed epoch *masked* to the
// receptive field of each minibatch: per layer k the runner keeps the
// sorted set F_k of this rank's rows that the batch needs at that depth
// (F_L = the batch seeds; F_{k-1} = the sampled in-neighbors of F_k,
// local and requested-by-peers alike), and every matrix of the layer —
// activations, pre-activations, gradients — is the compact |F_k|-row
// restriction of its full-batch counterpart. Because the per-hop sampled
// neighbor lists stay ascending and the exchange/accumulation discipline
// is exactly the halo path's (ascending peer order, per-source drains,
// rank-ascending contribution sums), an uncapped fanout reproduces the
// full-batch epoch bitwise: every per-element sum is the same ordered sum
// of the same products, restricted to rows outside which the full-batch
// epoch only ever adds exact zeros.
//
// Pipeline (mirroring the PR-5 halo drain discipline): while batch b's
// backward and optimizer step run, batch b+1 has already been sampled,
// its plans built, and its level-0 feature exchange *posted* — the
// ialltoallv flies behind a whole compute phase and is drained row-set by
// row-set inside batch b+1's first-layer sweep (halo_spmm_sweep). Two
// batch slots alternate so nothing is rebuilt in place while peers may
// still read it; after the first minibatch the hot path is
// allocation-free (every vector and matrix is resized in place).
//
// Lockstep: ranks may own different labeled counts, so the batch count is
// the all-reduced maximum and ranks that run out of seeds keep issuing
// every collective on empty (0-row) matrices — same order, same
// categories, zero rows.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/core/dist_common.hpp"
#include "src/gnn/optimizer.hpp"
#include "src/gnn/sampling.hpp"

namespace cagnet {

class DistSpmmAlgebra;

namespace dist {

/// The sampled minibatch epoch driver. Owned lazily by DistEngine (one
/// per engine); weights/gradients/optimizer stay engine-owned so
/// checkpointing and set_weights keep working unchanged. All methods are
/// collective over the sample communicator.
class SampledRunner {
 public:
  /// Collective constructor (one kControl all-reduce fixes the lockstep
  /// batch count). `algebra` must be the row-stripe algebra whose
  /// sample_comm() returned `comm`; `options.fanouts` must match the
  /// model's layer count and `options.batch_size` must be positive
  /// (typed Error otherwise).
  SampledRunner(const DistProblem& problem, const GnnConfig& config,
                DistSpmmAlgebra& algebra, Comm& comm,
                MiniBatchOptions options);

  /// One sampled epoch: shuffle this rank's labeled vertices, then for
  /// every (lockstep) minibatch run sample/pack/exchange -> forward ->
  /// loss -> backward -> step, with the next batch's build pipelined
  /// between loss and backward. `epoch` keys the shuffle and sampling RNG
  /// streams (absolute epoch => restart-deterministic);
  /// `features_block` is this rank's H^0 row block. Returns the mean
  /// per-batch loss and the training accuracy over all seeds.
  EpochResult run_epoch(int epoch, const Matrix& features_block,
                        std::vector<Matrix>& weights,
                        std::vector<Matrix>& gradients, Optimizer& optimizer,
                        EpochStats& stats);

  /// Lockstep batches per epoch (identical on every rank). Purely local.
  Index batches_per_epoch() const { return batches_; }

 private:
  /// The exchange between level k and level k+1 of one batch slot: the
  /// sampled stripe rows, the per-batch halo plan over them, and the
  /// forward/backward block pair.
  struct Exchange {
    HaloPlan plan;  ///< per-batch need/send over the sampled rows
    /// Sampled A^T stripe rows of the upper level's targets (ascending
    /// columns within each row; global column ids).
    std::vector<Index> samp_row_ptr;
    std::vector<Index> samp_cols;
    std::vector<Real> samp_vals;
    /// Owner-compacted transposes of plan.blocks (backward operators).
    std::vector<Csr> tblocks;
    /// 0..recv_total-1: the backward pack rows (contributions to every
    /// received row travel back to its owner in recv order).
    std::vector<Index> pack_identity;
    Matrix partial;  ///< stacked (recv_total + |F_k|) x f_out contributions
    std::size_t recv_total = 0;
  };

  /// One receptive-field level of one batch slot.
  struct Level {
    std::vector<Index> targets;  ///< this rank's F_k rows, global ascending
    Matrix h;  ///< |F_k| x f_k activations (level L: log-probabilities)
    Matrix z;  ///< |F_k| x f_k pre-activations (ReLU mask, levels 1..L-1)
  };

  /// One pipelined batch: levels 0..L, exchanges 0..L-1, and the posted
  /// level-0 feature exchange.
  struct Slot {
    std::vector<Level> levels;
    std::vector<Exchange> exch;
    PendingOp h0_op;  ///< in-flight feature exchange (overlap mode)
  };

  /// Sample batch `batch` of `epoch` into `slot`: seeds, per-hop Floyd
  /// fan-out sampling of the local A^T stripe, need-list exchanges
  /// (kControl), plan/block construction, and the posted level-0 feature
  /// exchange (kHalo). Collective; serial per rank (thread-count
  /// deterministic).
  void build_batch(Slot& slot, int epoch, Index batch,
                   const Matrix& features_block, EpochStats& stats);
  void forward_batch(Slot& slot, const std::vector<Matrix>& weights,
                     EpochStats& stats);
  /// Reduced {loss_sum, hits, seeds} of the batch (kControl).
  std::array<double, 3> reduce_batch_loss(Slot& slot, EpochStats& stats);
  void backward_batch(Slot& slot, const std::vector<Matrix>& weights,
                      std::vector<Matrix>& gradients, double global_seeds,
                      EpochStats& stats);

  const DistProblem& problem_;
  const GnnConfig& config_;
  DistSpmmAlgebra& algebra_;
  Comm& comm_;
  MachineModel machine_;
  MiniBatchOptions options_;

  Index row_lo_ = 0;
  Index row_hi_ = 0;
  std::vector<Index> row_starts_;  ///< P+1 owner boundaries (partition-aware)
  std::vector<Index> labeled_;     ///< this rank's labeled rows, ascending
  Index batches_ = 0;              ///< lockstep batches per epoch

  std::array<Slot, 2> slots_;  ///< pipelined batch double-buffer

  // Shared per-rank scratch (reused across batches; never pipelined).
  std::vector<Index> shuffled_;   ///< this epoch's shuffled labeled rows
  std::vector<Index> picked_;     ///< Floyd sample positions of one row
  std::vector<Index> needs_;      ///< deduped sampled rows of one hop
  std::vector<Index> pos_;        ///< global row -> compact position (n)
  std::vector<std::uint64_t> stamp_;  ///< dedup stamps (n)
  std::uint64_t cur_stamp_ = 0;
  std::vector<int> owners_;       ///< owner of each sampled entry
  std::vector<Index> blk_nnz_;    ///< per-owner entry counts (P)
  std::vector<Index> curs_;       ///< per-owner fill cursors (P)
  std::vector<Index> tscratch_;   ///< Csr::transposed_into scratch
  Gathered<Index> requested_;     ///< need-list exchange staging
  Matrix t_buf_;   ///< T = (sampled A^T) H, consumed into z immediately
  Matrix g_buf_;   ///< G^k compact (ping)
  Matrix g_next_;  ///< G^(k-1) compact (pong)
  Matrix u_buf_;   ///< U = (sampled A) G compact
  Matrix dh_buf_;  ///< U (W^k)^T before the ReLU mask
  Matrix y_buf_;   ///< weight-gradient partial
};

}  // namespace dist

}  // namespace cagnet
