#include "src/core/recovery.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "src/gnn/checkpoint.hpp"

namespace cagnet {

namespace {

struct CkptKnob {
  std::mutex mutex;
  bool initialized = false;
  int every = 0;
};

CkptKnob& ckpt_knob() {
  static CkptKnob k;
  return k;
}

}  // namespace

int ckpt_every() {
  CkptKnob& k = ckpt_knob();
  std::lock_guard<std::mutex> lock(k.mutex);
  if (!k.initialized) {
    const char* env = std::getenv("CAGNET_CKPT_EVERY");
    if (env != nullptr && env[0] != '\0') {
      const std::string s(env);
      CAGNET_CHECK(s.find_first_not_of("0123456789") == std::string::npos,
                   "CAGNET_CKPT_EVERY: \"" + s +
                       "\" is not a non-negative integer");
      k.every = std::atoi(env);
    }
    k.initialized = true;
  }
  return k.every;
}

void set_ckpt_every(int every) {
  CAGNET_CHECK(every >= 0, "set_ckpt_every: interval must be non-negative");
  CkptKnob& k = ckpt_knob();
  std::lock_guard<std::mutex> lock(k.mutex);
  k.every = every;
  k.initialized = true;
}

RecoveryReport train_with_recovery(const std::string& algebra,
                                   const DistProblem& problem,
                                   const GnnConfig& config, int p, int epochs,
                                   const RecoveryOptions& options) {
  CAGNET_CHECK(!options.ckpt_path.empty(),
               "train_with_recovery: options.ckpt_path is required");
  CAGNET_CHECK(epochs >= 0, "train_with_recovery: epochs must be >= 0");
  const int every = options.ckpt_every >= 0 ? options.ckpt_every : ckpt_every();
  const std::string& path = options.ckpt_path;
  if (!options.resume_existing) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }

  RecoveryReport report;
  report.epochs = epochs;
  report.losses.assign(static_cast<std::size_t>(epochs), Real{0});

  // Rank 0's completed-epoch count for the current attempt, read after an
  // abort to account the epochs the next attempt must re-train.
  std::atomic<int> completed{0};
  std::mutex report_mutex;

  for (;;) {
    // Resume point: the latest durable checkpoint, or a fresh model. The
    // deterministic weight init means attempt zero is reproducible too.
    int start = 0;
    bool have_ckpt = false;
    Checkpoint ckpt;
    if (std::filesystem::exists(path)) {
      ckpt = load_checkpoint(path);  // CRC-verified; throws if corrupt
      start = static_cast<int>(ckpt.epoch);
      CAGNET_CHECK(start <= epochs,
                   "checkpoint " + path + " is ahead of the requested run (" +
                       std::to_string(start) + " > " +
                       std::to_string(epochs) + " epochs)");
      have_ckpt = true;
    }
    completed.store(start, std::memory_order_relaxed);

    try {
      run_world(p, [&](Comm& world) {
        auto trainer = make_dist_trainer(algebra, problem, config, world);
        if (have_ckpt) trainer->set_weights(ckpt.weights);
        // Resume epoch-keyed RNG streams (sampled training) where the
        // uninterrupted run would be; a no-op for full-batch trainers.
        trainer->set_start_epoch(start);
        for (int e = start; e < epochs; ++e) {
          const Real loss = trainer->train_epoch().loss;
          if (world.rank() == 0) {
            {
              std::lock_guard<std::mutex> lock(report_mutex);
              report.losses[static_cast<std::size_t>(e)] = loss;
            }
            completed.store(e + 1, std::memory_order_relaxed);
            if (every > 0 && (e + 1) % every == 0 && e + 1 < epochs) {
              const auto t0 = std::chrono::steady_clock::now();
              save_checkpoint(path, trainer->weights(),
                              static_cast<std::uint64_t>(e + 1));
              const auto t1 = std::chrono::steady_clock::now();
              std::lock_guard<std::mutex> lock(report_mutex);
              report.checkpoint_write_seconds +=
                  std::chrono::duration<double>(t1 - t0).count();
              ++report.checkpoints_written;
            }
          }
        }
        if (world.rank() == 0) {
          std::lock_guard<std::mutex> lock(report_mutex);
          report.weights = trainer->weights();
        }
      });
      return report;
    } catch (const CommAborted& abort) {
      report.last_abort = abort;
      ++report.restarts;
      // Epochs finished this attempt but not yet durable: the next
      // attempt resumes from the latest checkpoint and re-trains them.
      int durable = 0;
      if (std::filesystem::exists(path)) {
        durable = static_cast<int>(load_checkpoint(path).epoch);
      }
      const int reached = completed.load(std::memory_order_relaxed);
      if (reached > durable) report.retrained_epochs += reached - durable;
      if (report.restarts > options.max_restarts) throw;
    }
  }
}

}  // namespace cagnet
