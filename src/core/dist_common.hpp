// Shared machinery of the distributed GNN trainers (1D / 1.5D / 2D / 3D).
#pragma once

#include <memory>
#include <vector>

#include "src/comm/comm.hpp"
#include "src/comm/grid.hpp"
#include "src/comm/machine.hpp"
#include "src/gnn/model.hpp"
#include "src/graph/graph.hpp"
#include "src/util/profiler.hpp"

namespace cagnet {

/// Read-only problem state shared by all ranks of a simulated world.
///
/// The simulation keeps one copy of the graph in host memory; each rank
/// extracts only its own blocks in its trainer constructor, mirroring a
/// real distributed loader. A^T is materialized once here rather than per
/// rank (the paper's implementation likewise prepares both orientations).
struct DistProblem {
  const Graph* graph = nullptr;
  Csr at;  ///< A^T (paper keeps A and A^T distinguishable for directedness)
  Index labeled_count = 0;

  static DistProblem prepare(const Graph& graph);
};

/// Per-epoch instrumentation, mirroring what Figs. 2-3 report.
struct EpochStats {
  EpochResult result;
  Profiler profiler;    ///< measured host seconds per phase (this rank)
  CostMeter comm;       ///< metered traffic for the epoch (this rank)
  WorkMeter work;       ///< modeled local-kernel seconds (this rank)

  /// Modeled epoch seconds on the target machine: communication under
  /// alpha-beta plus modeled local kernels.
  double modeled_seconds(const MachineModel& m) const {
    return comm.modeled_seconds(m) + work.total_seconds();
  }

  /// Collective: component-wise max over ranks (bulk-synchronous epochs
  /// are paced by the slowest rank), metered as control traffic.
  static EpochStats reduce_max(const EpochStats& mine, Comm& comm);
};

/// Interface shared by the distributed trainers. All methods are
/// *collective*: every rank of the world must call them in lockstep.
class DistTrainer {
 public:
  virtual ~DistTrainer() = default;

  /// One full-batch epoch (forward, loss, backward, SGD step). The returned
  /// loss/accuracy are global (already reduced).
  virtual EpochResult train_epoch() = 0;

  /// Stats of the most recent epoch (this rank's view).
  virtual const EpochStats& last_epoch_stats() const = 0;

  /// Collective: the most recent epoch's stats max-reduced over the world
  /// (bulk-synchronous epochs are paced by the slowest rank).
  virtual EpochStats reduce_epoch_stats() const = 0;

  /// Assemble the full output log-probability matrix H^L on every rank
  /// (control-category traffic; used for parity tests and inference).
  virtual Matrix gather_output() = 0;

  /// Replicated weight matrices (identical on every rank by construction).
  virtual const std::vector<Matrix>& weights() const = 0;
};

/// Helpers shared by the trainer implementations.
namespace dist {

/// Process-global switch for the epoch-invariant adjacency caches
/// (default on). When off, every epoch re-runs the epoch-1 communication
/// path; tests flip it to compare the cached and uncached paths
/// in-process. Not per-trainer state: flip it only between run_world
/// invocations.
bool epoch_cache_enabled();
void set_epoch_cache_enabled(bool on);

/// Reusable dense/staging buffers for the shared SUMMA helpers. One per
/// algebra instance; after the first epoch the hot path stops allocating.
/// The helpers never nest, so sharing the buffers between them is safe.
struct DistWorkspace {
  Matrix stage_recv;        ///< per-stage dense broadcast receive buffer
  Matrix w_block;           ///< partial-SUMMA weight sub-block
  Gathered<Real> gathered;  ///< all-gather staging
};

/// Epoch-invariant cache of the sparse blocks a SUMMA-style loop
/// receives. The adjacency never changes across epochs, so stage k of
/// epoch e > 1 re-receives exactly the block it deserialized in epoch 1;
/// after the first pass the blocks are served from memory and the
/// recorded epoch-1 CostMeter charges are replayed instead (all charges
/// are integer-valued in words/latency units, so replaying the summed
/// delta is bitwise-exact). Modeled communication volumes — the paper's
/// measurements — are therefore unchanged while the data movement,
/// deserialization, and allocation disappear.
struct SparseStageCache {
  bool ready = false;
  std::vector<Csr> blocks;      ///< per stage; unused when own_stage[k]
  std::vector<char> own_stage;  ///< stage roots keep using their own block
  CostMeter charges;            ///< epoch-1 sparse charges to replay
};

/// Epoch-invariant cache of a distributed-transpose pair: after epoch 1
/// the materialized A block is kept across epochs and begin/end_backward
/// only replay their recorded charges.
struct TransposeCache {
  bool ready = false;
  CostMeter begin_charges;
  CostMeter end_charges;
};

/// Global mean NLL loss and accuracy from a local row block of output
/// log-probabilities. `row_lo` is the first global row of the block.
/// Reduces (loss_sum, hits, labeled) across ranks as control traffic.
EpochResult reduce_loss_accuracy(const Matrix& local_log_probs, Index row_lo,
                                 const std::vector<Index>& labels,
                                 Index labeled_count, Comm& comm);

/// dL/d(H^L) for the local row block under global-mean NLL.
Matrix local_nll_gradient(const Matrix& local_log_probs, Index row_lo,
                          const std::vector<Index>& labels,
                          Index labeled_count);

/// Average degree of a CSR block (nnz / rows), guarding empty blocks.
double block_degree(const Csr& block);

/// Broadcast a CSR block from `root` within `comm` without staging
/// copies: the root publishes straight from `mine`'s arrays and returns
/// `mine`; every other rank receives into `recv` (reusing its buffers,
/// non-roots pass nullptr for `mine`) and returns `&recv`. Traffic
/// (indices + values) is charged to `cat`; this is the SUMMA
/// sparse-broadcast primitive.
const Csr* broadcast_csr(const Csr* mine, Csr& recv, int root, Comm& comm,
                         CommCategory cat);

/// One dense SUMMA broadcast stage without staging copies: the stage root
/// (comm rank `root`) publishes `mine` directly and returns it; every
/// other rank receives a (rows x cols) block into `recv` (storage reused)
/// and gets `&recv`. Shared by every dense broadcast loop (1D stages,
/// 1.5D stripes, 2D/3D SUMMA stages, partial SUMMA).
const Matrix* broadcast_dense_stage(const Matrix& mine, Matrix& recv,
                                    Index rows, Index cols, int root,
                                    Comm& comm, CommCategory cat);

/// Complete a rows-whole weight gradient: move the (f_in x f_out) local
/// partial into `y_full` (buffer swap, no copy) and all-reduce it over
/// `comm`, leaving Y replicated. Shared by the 1D and 1.5D algebras.
void allreduce_weight_gradient(Matrix& y_partial, Index f_in, Index f_out,
                               Comm& comm, Profiler& profiler,
                               Matrix& y_full);

/// Pairwise CSR exchange with `peer` (the distributed-transpose primitive:
/// rank (i,j) swaps blocks with rank (j,i) and locally transposes).
Csr exchange_csr(const Csr& mine, int peer, Comm& comm, CommCategory cat);

/// Permutation-route a CSR block to `dest` (see Comm::route).
Csr route_csr(const Csr& mine, int dest, Comm& comm, CommCategory cat);

/// Row-wise all-gather of feature slices into full rows: `local` is this
/// rank's (rows x w_j) slice, `parts` ranks along `row_comm` each hold the
/// block_range(full_cols, parts, j) slice. Assembles into `full` (storage
/// reused) via the workspace. Charges kDense. Shared by the 2D and 3D
/// families (log-softmax rows and the U reuse).
void allgather_feature_rows(const Matrix& local, Index full_cols, int parts,
                            Comm& row_comm, Profiler& profiler,
                            DistWorkspace& ws, Matrix& full);

/// Complete a weight gradient from per-rank slice partials: sum `y_slice`
/// (a feat_slice(f_in) x f_out partial, consumed as scratch) over
/// `reduce_comm`, then all-gather the reduced slices along `row_comm`
/// (`parts` ranks, rank j holding block_range(f_in, parts, j)) into the
/// fully replicated (f_in x f_out) gradient `y` (storage reused). Shared
/// by the 2D and 3D families.
void assemble_weight_gradient(Matrix& y_slice, Index f_in, Index f_out,
                              int parts, Comm& reduce_comm, Comm& row_comm,
                              Profiler& profiler, DistWorkspace& ws,
                              Matrix& y);

/// Partial SUMMA Z = T W with W replicated: only T moves, broadcast along
/// `row_comm` (`parts` ranks; this rank is column `my_col` and contributes
/// `t`, its local feat_slice of T). Writes this rank's Z slice
/// (t.rows() x block_range(w.cols(), parts, my_col) width) into `z`
/// (storage reused). Shared by the 2D and 3D families ("partial SUMMA" /
/// "partial Split-3D-SpMM").
void partial_summa_times_weight(const Matrix& t, const Matrix& w, int parts,
                                int my_col, Comm& row_comm,
                                const MachineModel& machine,
                                EpochStats& stats, DistWorkspace& ws,
                                Matrix& z);

}  // namespace dist

}  // namespace cagnet
