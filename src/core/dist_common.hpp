// Shared machinery of the distributed GNN trainers (1D / 1.5D / 2D / 3D).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "src/comm/comm.hpp"
#include "src/comm/grid.hpp"
#include "src/comm/machine.hpp"
#include "src/gnn/model.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/partition.hpp"
#include "src/util/profiler.hpp"

namespace cagnet {

/// Read-only problem state shared by all ranks of a simulated world.
///
/// The simulation keeps one copy of the graph in host memory; each rank
/// extracts only its own blocks in its trainer constructor, mirroring a
/// real distributed loader. A^T is materialized once here rather than per
/// rank (the paper's implementation likewise prepares both orientations).
///
/// Partition-aware form: `prepare(graph, parts, partitioner)` runs a
/// registered partitioner (src/graph/partition.hpp) and relabels the
/// problem once — adjacency, features, and labels are permuted so every
/// part is a contiguous row block — before any rank extracts its blocks.
/// Every algebra therefore trains on the permuted problem transparently;
/// the engine un-permutes gather_output() so callers always see original
/// vertex order. The block boundaries follow the (generally uneven) part
/// sizes via row_range(); algebras whose part count differs from the
/// partition's fall back to even block_range splits of the permuted order.
struct DistProblem {
  const Graph* graph = nullptr;  ///< the (possibly permuted) training graph
  Csr at;  ///< A^T (paper keeps A and A^T distinguishable for directedness)
  Index labeled_count = 0;

  // ---- Partition-aware layout (empty / identity when prepared without a
  // partitioner) ----
  std::string partitioner = "block";
  Partition partition;             ///< owners in permuted order (sorted)
  std::vector<Index> part_offsets; ///< parts+1 row prefix; empty = even blocks
  std::vector<Index> perm;         ///< permuted row r = original vertex
                                   ///< perm[r]; empty = identity
  EdgeCutStats edgecut;            ///< of `partition` on the training graph

  /// Identity layout (the paper's default block distribution).
  static DistProblem prepare(const Graph& graph);

  /// Partitioned layout: run the named registered partitioner for `parts`
  /// parts, permute the problem part-contiguously, and record the
  /// edge-cut statistics the halo path and the cost model consume. The
  /// "block" partitioner keeps the original vertex order (no permutation)
  /// and trains bitwise identically to the identity form.
  static DistProblem prepare(const Graph& graph, int parts,
                             const std::string& partitioner,
                             std::uint64_t seed = 12345);

  /// True when part boundaries (possibly uneven) are recorded.
  bool partitioned() const { return !part_offsets.empty(); }

  /// Row range of block `idx` of `parts`: the partition's own (uneven)
  /// boundaries when its part count matches `parts`, the even block_range
  /// otherwise. The 1D family queries with parts = P, the 1.5D family
  /// with parts = G = P / c.
  std::pair<Index, Index> row_range(int parts, int idx) const {
    if (static_cast<int>(part_offsets.size()) == parts + 1) {
      return {part_offsets[static_cast<std::size_t>(idx)],
              part_offsets[static_cast<std::size_t>(idx) + 1]};
    }
    return block_range(graph->num_vertices(), parts, idx);
  }

 private:
  /// Owning storage of the permuted graph (aliased by `graph`); shared so
  /// DistProblem remains cheaply copyable.
  std::shared_ptr<const Graph> owned_graph_;
};

/// Per-epoch instrumentation, mirroring what Figs. 2-3 report.
struct EpochStats {
  EpochResult result;
  Profiler profiler;    ///< measured host seconds per phase (this rank)
  CostMeter comm;       ///< metered traffic for the epoch (this rank)
  WorkMeter work;       ///< modeled local-kernel seconds (this rank)

  /// Modeled epoch seconds on the target machine: communication under
  /// alpha-beta plus modeled local kernels, with every phase serialized
  /// (the paper's bulk-synchronous reading).
  double modeled_seconds(const MachineModel& m) const {
    return comm.modeled_seconds(m) + work.total_seconds();
  }

  /// Modeled epoch seconds when each overlapped region pays
  /// max(comm, compute) instead of comm + compute (see CostMeter's overlap
  /// accounting). Equals modeled_seconds when nothing was overlapped.
  /// Note: the per-region fold uses the machine the run was recorded with.
  double modeled_seconds_overlap(const MachineModel& m) const {
    return modeled_seconds(m) - comm.overlap_saved_seconds();
  }

  /// Collective: component-wise max over ranks (bulk-synchronous epochs
  /// are paced by the slowest rank), metered as control traffic.
  static EpochStats reduce_max(const EpochStats& mine, Comm& comm);
};

/// Interface shared by the distributed trainers. All methods are
/// *collective*: every rank of the world must call them in lockstep.
class DistTrainer {
 public:
  virtual ~DistTrainer() = default;

  /// One full-batch epoch (forward, loss, backward, SGD step). The returned
  /// loss/accuracy are global (already reduced).
  virtual EpochResult train_epoch() = 0;

  /// Stats of the most recent epoch (this rank's view).
  virtual const EpochStats& last_epoch_stats() const = 0;

  /// Collective: the most recent epoch's stats max-reduced over the world
  /// (bulk-synchronous epochs are paced by the slowest rank).
  virtual EpochStats reduce_epoch_stats() const = 0;

  /// Assemble the full output log-probability matrix H^L on every rank
  /// (control-category traffic; used for parity tests and inference).
  virtual Matrix gather_output() = 0;

  /// Replicated weight matrices (identical on every rank by construction).
  virtual const std::vector<Matrix>& weights() const = 0;

  /// Overwrite the replicated weights (checkpoint restore). Purely local,
  /// but every rank must install identical matrices or the replication
  /// invariant breaks; shapes must match the configured layers.
  virtual void set_weights(const std::vector<Matrix>& weights) = 0;

  /// Align the trainer's absolute-epoch counter after a checkpoint
  /// restore. Full-batch training is epoch-stateless (weights are the
  /// whole state), so the default is a no-op; the sampled trainer keys
  /// its shuffle and sampling RNG streams by absolute epoch, and restart
  /// bitwise-determinism requires resuming those streams at the restored
  /// epoch rather than zero. Purely local.
  virtual void set_start_epoch(int epoch) { (void)epoch; }
};

/// Helpers shared by the trainer implementations.
namespace dist {

/// Process-global switch for the epoch-invariant adjacency caches
/// (default on). When off, every epoch re-runs the epoch-1 communication
/// path; tests flip it to compare the cached and uncached paths
/// in-process. Not per-trainer state: flip it only between run_world
/// invocations.
bool epoch_cache_enabled();
void set_epoch_cache_enabled(bool on);

/// Process-global switch for compute/communication overlap (default on;
/// the CAGNET_OVERLAP env var, read once at startup, can preset it — "0",
/// "off", or "false" disable). When on, the SUMMA-style loops
/// double-buffer their stage broadcasts through the nonblocking layer and
/// the 1.5D replica reduction is overlapped with the next local multiply.
/// Losses, embeddings, and metered words/latency are bitwise identical in
/// both modes (tests/dist_test.cpp asserts it); only wall time and the
/// overlap accounting change. Not per-trainer state: flip it only between
/// run_world invocations.
bool overlap_enabled();
void set_overlap_enabled(bool on);

/// Process-global switch for the sparsity-aware halo exchange of the 1D /
/// 1.5D families (default off; the CAGNET_HALO env var, read once at
/// startup, can preset it — "1", "on", or "true" enable). When on, the
/// rows-whole forward SpMM replaces Algorithm 1's P dense broadcast
/// stages with an individualized request-and-send of exactly the remote
/// H rows the local A^T sparsity touches (metered as kHalo:
/// edgecut_P(A) * f words instead of n(P-1)/P * f), pipelined behind the
/// stage SpMMs in overlap mode (per-source drains; see
/// halo_spmm_pipeline), and the 1D / 1.5D backwards replace their
/// reduce-scatters with the symmetric contribution exchange when the
/// halo_backward_profitable gate passes. Losses, weights, and accuracy
/// are bitwise identical to the broadcast path (tests/halo_test.cpp
/// asserts it); only the metered volume drops. Not per-trainer state:
/// flip it only between run_world invocations.
bool halo_enabled();
void set_halo_enabled(bool on);

/// Process-global switch for sampled mini-batch training (default off;
/// the CAGNET_SAMPLE env var, read once at startup, can preset it — "1",
/// "on", or "true" enable). When on, DistEngine::train_epoch runs the
/// GraphSAGE-style sampled epoch (per-epoch shuffler, per-hop fanout
/// sampling from the local A^T stripe, minibatch halo exchanges of only
/// the sampled rows) instead of the full-batch epoch. Requires a
/// row-partitioned algebra exposing sample_comm(); others raise a typed
/// Error. Not per-trainer state: flip it only between run_world
/// invocations.
bool sample_enabled();
void set_sample_enabled(bool on);

/// Per-hop sampling fanouts, outermost hop first (default 15/10/5; the
/// CAGNET_SAMPLE_FANOUT env var can preset a comma list, with "inf" or
/// "all" for an uncapped hop). The sampled trainer validates the length
/// against the model's layer count. Flip only between run_world
/// invocations.
const std::vector<Index>& sample_fanouts();
void set_sample_fanouts(std::vector<Index> fanouts);

/// Sampled minibatch size over the labeled training vertices (default
/// 64; the CAGNET_SAMPLE_BATCH env var can preset it). Must be positive.
/// Flip only between run_world invocations.
Index sample_batch_size();
void set_sample_batch_size(Index batch);

/// stale_k() value selecting the adaptive per-peer refresh policy.
inline constexpr int kStaleAdaptive = -1;

/// Process-global bounded-staleness refresh interval of the halo forward
/// (default 0 = off; the CAGNET_STALE env var, read once at startup, can
/// preset it — a positive integer k, "adaptive", or "off"). k >= 2 keeps
/// each peer's received halo rows in a per-plan cache and re-exchanges
/// them every k epochs; skipped epochs replay the cached rows
/// allocation-free, charging zero kHalo latency/words (the avoided words
/// are credited to CostMeter::stale_saved_words). kStaleAdaptive tracks
/// the L2 delta of each peer's row block between refreshes and refreshes
/// fast-changing peers more often, inside [stale_min_k, stale_max_k].
/// 0 and 1 are the exact path verbatim — bitwise identical losses,
/// weights, and per-category meters (tests/stale_test.cpp asserts it).
/// Lossy for k >= 2: forward activations use rows up to k-1 epochs old
/// (the backward stays the exact gradient of that stale forward). The
/// cache is per-run transient state — never checkpointed; a restart
/// refreshes every peer on its first epoch (DESIGN.md "Adaptive
/// communication rates contract"). Requires CAGNET_HALO. Not per-trainer
/// state: flip it only between run_world invocations.
int stale_k();
void set_stale_k(int k);

/// Floor / ceiling of the adaptive per-peer refresh interval (defaults
/// 1 / 8; the CAGNET_STALE_MIN / CAGNET_STALE_MAX env vars can preset
/// them). Flip only between run_world invocations.
int stale_min_k();
int stale_max_k();
void set_stale_bounds(int min_k, int max_k);

/// Process-global switch for aggregation-before-communication on the halo
/// forward (default off; the CAGNET_PREAGG env var can preset it — "1",
/// "on", or "true" enable). When on, each (source, dest) pair whose A^T
/// coupling block has fewer distinct nonzero output rows than requested
/// source rows pre-reduces the requested rows through that block on the
/// sender, so one aggregated contribution row per (dest, out-row) crosses
/// the wire instead of every raw source row (the ABC pattern). Lossy only
/// in floating-point association order — deterministic for a fixed world,
/// but not bitwise the exact path. Composes with CAGNET_COMPRESS and
/// CAGNET_STALE. Requires CAGNET_HALO. Flip only between run_world
/// invocations.
bool preagg_enabled();
void set_preagg_enabled(bool on);

/// Reusable dense/staging buffers for the shared SUMMA helpers. One per
/// algebra instance; after the first epoch the hot path stops allocating.
/// The helpers never nest, so sharing the buffers between them is safe.
struct DistWorkspace {
  Matrix stage_recv;        ///< per-stage dense broadcast receive buffer
  Matrix stage_recv2;       ///< double-buffer partner of stage_recv (the
                            ///< overlapped loops receive stage k+1 here
                            ///< while stage k is still being consumed)
  Matrix w_block;           ///< partial-SUMMA weight sub-block
  Gathered<Real> gathered;  ///< all-gather staging
};

/// Epoch-invariant cache of the sparse blocks a SUMMA-style loop
/// receives. The adjacency never changes across epochs, so stage k of
/// epoch e > 1 re-receives exactly the block it deserialized in epoch 1;
/// after the first pass the blocks are served from memory and the
/// recorded epoch-1 CostMeter charges are replayed instead (all charges
/// are integer-valued in words/latency units, so replaying the summed
/// delta is bitwise-exact). Modeled communication volumes — the paper's
/// measurements — are therefore unchanged while the data movement,
/// deserialization, and allocation disappear.
struct SparseStageCache {
  bool ready = false;
  std::vector<Csr> blocks;      ///< per stage; unused when own_stage[k]
  std::vector<char> own_stage;  ///< stage roots keep using their own block
  /// Per-stage (rows, cols, nnz) header staging for the nonblocking CSR
  /// broadcasts: headers must outlive the loop (peers read a stage root's
  /// header at their own pace), so they live here rather than on the
  /// loop's stack. Rewritten only by the next uncached epoch, behind the
  /// stage-loop entry quiesce.
  std::vector<std::array<Index, 3>> headers;
  CostMeter charges;            ///< epoch-1 sparse charges to replay
};

/// Epoch-invariant cache of a distributed-transpose pair: after epoch 1
/// the materialized A block is kept across epochs and begin/end_backward
/// only replay their recorded charges.
struct TransposeCache {
  bool ready = false;
  CostMeter begin_charges;
  CostMeter end_charges;
};

/// quiesce() a communicator without propagating abort errors — the
/// building block of DistSpmmAlgebra::drain overrides (no-op on invalid
/// Comms, so never-initialized sub-communicators are safe to pass).
void drain_comm(const Comm& comm) noexcept;

/// Demand-driven halo exchange plan of the rows-whole (1D / 1.5D)
/// families, built once per algebra from the local A^T sparsity and
/// cached across epochs and layers (the analogue of the SUMMA epoch
/// cache). Lifecycle:
///
///   1. *Build* (collective, constructor time): each rank scans its A^T
///      blocks for the distinct peer-local columns they touch (`need`),
///      compacts each block to those columns (Csr::with_remapped_columns),
///      and runs one index alltoallv so every rank learns which of its
///      rows each peer requests (`send`). The index exchange is one-time
///      setup, charged as kControl.
///   2. *Epoch replay*: every forward layer packs the `send` rows of H
///      (threaded on the persistent pool, Phase::kHaloPack) and exchanges
///      them (kHalo; edgecut words). The backward reuses the same plan
///      mirrored — contributions travel along need-rows and land on
///      send-rows. Nothing is rebuilt; the staging buffers are reused
///      allocation-free.
///   3. *Pipeline + release*: in overlap mode the exchange posts through
///      ialltoallv_post and each peer's rows are drained — zero-copy,
///      straight from the peer's pack buffer — exactly when the stage
///      that multiplies them runs (PendingOp::await_source), so the
///      self-block SpMM and every earlier stage execute while later
///      peers' rows are still in flight. Pack staging is double-buffered:
///      exchange k packs into buffer k % 2 after quiescing the op that
///      used that buffer two exchanges ago (quiesce_op) — a release peers
///      finished a whole layer earlier, off the critical path. Blocking
///      mode needs no release (barrier phases separate the accesses) and
///      keeps the one-shot alltoallv_into.
struct HaloPlan {
  bool ready = false;
  /// Forward receives: rows obtained from each source, ascending peer
  /// order. need_rows are peer-local row indices; need_rows_global adds
  /// the peer row offsets (indices into an n-row matrix, the 1D backward
  /// pack addressing).
  std::vector<std::size_t> recv_row_offsets;  ///< P+1
  std::vector<Index> need_rows;
  std::vector<Index> need_rows_global;
  /// Forward sends: this rank's local row indices each destination
  /// requested.
  std::vector<std::size_t> send_row_offsets;  ///< P+1
  std::vector<Index> send_rows;
  /// Column-compacted A^T blocks (self and absent peers left empty; the
  /// self stage multiplies the rank's own uncompacted block against H).
  std::vector<Csr> blocks;
  /// One half of the double-buffered pack staging (see the release
  /// discipline above). Peers read send_buf and send_elem_offsets at
  /// their own drains, so a buffer may be rewritten only after its
  /// recorded op is globally finished.
  struct PackBuf {
    Matrix send_buf;
    std::vector<std::size_t> send_elem_offsets;  ///< P+1, rebuilt per use
    /// Compressed-payload staging (CAGNET_COMPRESS=fp16/int8): the exact
    /// pack above is re-encoded per destination chunk into send_bytes,
    /// and the byte offsets replace the element offsets on the wire.
    /// Same release discipline as send_buf (peers read it at their
    /// drains).
    std::vector<std::uint8_t> send_bytes;
    std::vector<std::size_t> send_byte_offsets;  ///< P+1
    std::uint64_t release_ticket = 0;
    bool has_release = false;
  };
  std::array<PackBuf, 2> pack;
  int next_pack = 0;          ///< which PackBuf the next exchange claims
  Gathered<Real> recv;        ///< blocking-mode receive staging
  Gathered<std::uint8_t> recv_bytes;  ///< compressed blocking staging
  /// Decode target for compressed halo rows: the forward decodes each
  /// peer's chunk at recv_row_offsets[j]*f; the backward at
  /// land_row_offsets[r]*f. Sized by the caller before the sweep.
  std::vector<Real> recv_decode;

  /// Bounded-staleness refresh state (CAGNET_STALE; armed per epoch by
  /// halo_begin_epoch, consumed by halo_spmm_pipeline). The cache holds
  /// the *landed* rows of each forward exchange — one slot per forward
  /// layer, laid out at the exchange's effective receive offsets — so a
  /// skipped epoch replays them through the identical accumulation
  /// without touching the wire. Per-run transient: never checkpointed,
  /// and a rebuilt world starts invalid (uniform refresh on the first
  /// epoch).
  struct StaleState {
    bool active = false;      ///< cache machinery armed for this epoch
    bool epoch_skip = false;  ///< fixed mode: replay every peer, no exchange
    bool use_eff = false;     ///< adaptive: ship the thinned send set
    int cur_slot = 0;         ///< forward-exchange slot of the current call
    int layer = 0;            ///< forward exchanges begun this epoch
    int filled_epoch = -1;    ///< fixed mode: epoch of the last refresh
    int prev_epoch = -1;      ///< adaptive: epoch of the previous arm
    std::vector<char> valid;       ///< per source: cache slice filled
    std::vector<char> recv_fresh;  ///< per source: refresh this epoch
    std::vector<char> send_fresh;  ///< per dest: dest wants fresh rows
    /// Thinned send set of the current adaptive epoch (refreshing dests'
    /// send_rows chunks concatenated; zero-length chunks for skipped
    /// dests keep the collective in lockstep while the words drop).
    std::vector<Index> eff_send_rows;
    std::vector<std::size_t> eff_send_row_offsets;  ///< P+1
    std::vector<std::vector<Real>> cache;  ///< landed rows per slot
    std::vector<Index> cache_f;            ///< feature width per slot
    /// Adaptive accumulators: sum ||new-old||^2 and ||new||^2 over a
    /// refresh epoch's layers (delta_sq < 0 flags a first fill with no
    /// baseline), folded into per-peer next_refresh at the next arm.
    std::vector<double> delta_sq;
    std::vector<double> norm_sq;
    std::vector<int> next_refresh;  ///< absolute epoch of the next refresh
    std::vector<Index> want_flags;  ///< adaptive flag-exchange send staging
    std::vector<std::size_t> flag_offsets;  ///< P+1, one flag per dest
    Gathered<Index> peer_wants;     ///< adaptive flag-exchange receives
  };
  StaleState stale;

  /// Aggregation-before-communication plan (CAGNET_PREAGG; built once by
  /// build_preagg_plan next to the halo plan). Both endpoints of a
  /// (source, dest) pair derive the same structural decision from the
  /// same A^T coupling block — aggregate exactly when the block has
  /// fewer distinct nonzero output rows than requested source rows — so
  /// no control traffic is needed and the effective wire layout is
  /// rank-consistent by construction.
  struct PreAggPlan {
    bool active = false;         ///< any pair aggregates
    std::vector<char> agg_send;  ///< per dest: this rank pre-reduces
    std::vector<char> agg_recv;  ///< per source: rows land pre-reduced
    /// Per aggregating dest: the dest's A^T coupling segment compacted to
    /// its nonzero output rows (columns stay rank-local H indices), the
    /// operator of the sender-side partial SpMM.
    std::vector<Csr> seg;
    std::vector<std::size_t> stage_row_offsets;    ///< P+1, full refresh
    std::vector<std::size_t> epoch_stage_offsets;  ///< P+1, this epoch
    std::vector<Index> stage_rows;  ///< iota pack indices into stage
    Matrix stage;                   ///< staged outgoing rows (agg + raw)
    /// Per aggregating source: the local T rows its pre-reduced rows
    /// scatter-add onto (ascending; chunked by agg_land_offsets).
    std::vector<Index> agg_land_rows;
    std::vector<std::size_t> agg_land_offsets;      ///< P+1
    std::vector<std::size_t> eff_recv_row_offsets;  ///< P+1 landed rows
  };
  PreAggPlan preagg;
};

/// The (parts+1) partition-aware block boundaries of `problem` for a
/// family splitting rows into `parts` blocks (DistProblem::row_range
/// semantics: the partition's own offsets when aligned, even block_range
/// otherwise). Shared by the 1D (parts = P) and 1.5D (parts = G)
/// constructors.
std::vector<Index> row_starts(const DistProblem& problem, int parts);

/// Build `plan` from this rank's A^T blocks: `block_of(j)` returns the
/// (local_rows x peer_rows(j)) block of peer j's columns, or nullptr when
/// no rows are needed from j (1.5D off-stripe peers); `self` is this
/// rank's index in `comm` (its own block is never exchanged);
/// `peer_row_lo(j)` is peer j's first global row. Collective over `comm`;
/// the index request-and-send is charged as kControl.
void build_halo_plan(const std::function<const Csr*(int)>& block_of,
                     int self, const std::function<Index(int)>& peer_row_lo,
                     Comm& comm, HaloPlan& plan);

/// Arm (or disarm) the plan's bounded-staleness state for one epoch,
/// called by the algebra's begin_epoch hook before the first forward
/// exchange. Fixed mode (stale_k() >= 2) decides refresh-vs-replay from
/// the absolute epoch and the plan's last refresh epoch — both evolve
/// identically on every rank, so skip epochs can elide the collective
/// entirely. Adaptive mode folds the previous refresh's L2 deltas into
/// per-peer intervals, exchanges one want-flag per peer (kControl, the
/// only adaptive control traffic), and thins the send set to the
/// refreshing destinations; the exchange itself stays in lockstep with
/// zero-length chunks for skipped pairs. epoch < 0 disarms (exact path;
/// used by out-of-band forwards like gather_output). No-op state when
/// stale is off, k == 1, the plan is not ready, or p == 1.
void halo_begin_epoch(int epoch, bool halo_active, Comm& comm,
                      HaloPlan& plan);

/// Build the plan's aggregation-before-communication side tables from the
/// global A^T (`at`): `peer_rows(j)` returns peer j's [row_lo, row_hi)
/// global output-row range, [my_row_lo, my_row_hi) is this rank's H-row
/// range, `self` its index in the plan's communicator. Purely local —
/// sender and receiver of each pair inspect the same coupling block and
/// reach the same decision. Leaves preagg.active false when no pair
/// profits. Call after build_halo_plan, once, at construction.
void build_preagg_plan(const Csr& at,
                       const std::function<std::pair<Index, Index>(int)>&
                           peer_rows,
                       Index my_row_lo, Index my_row_hi, int self,
                       HaloPlan& plan);

/// Collective profitability gate of the mirrored backward contribution
/// exchange: the exchange lands per-peer contribution rows (the plan's
/// send side) instead of a pre-reduced chunk, paying pack + scatter-add
/// host work per landed row — a win only when the structural sparsity
/// actually shrinks the volume. Returns true when the busiest rank's
/// landed rows stay under half the reduce-scatter's per-rank row charge
/// (`rs_rows`), max-reduced over `comm` so the decision is rank-uniform
/// (collective order depends on it). One-time setup traffic (kControl).
bool halo_backward_profitable(std::size_t landed_rows, double rs_rows,
                              Comm& comm);

/// Begin one halo exchange: claim the plan's next pack buffer (quiescing
/// the op that last used it — two exchanges stale, so the release has
/// left the critical path), pack the rows of `src` listed in (`rows`,
/// `row_offsets`) on the persistent pool (Phase::kHaloPack), and ship
/// them. In overlap mode the exchange is posted through ialltoallv_post
/// and the returned pending op is the drain handle (per-source zero-copy
/// views; the caller must wait() it after draining). In blocking mode the
/// exchange completes here into plan.recv and the returned op is empty.
/// Charges are identical either way, applied to `cat`.
PendingOp halo_exchange_begin(const Matrix& src, std::span<const Index> rows,
                              std::span<const std::size_t> row_offsets,
                              Comm& comm, HaloPlan& plan, CommCategory cat,
                              Profiler& profiler);

/// The pipelined halo forward of the rows-whole families: one exchange of
/// the plan's send rows of `h` plus the stage sweep, accumulating into
/// `t` in ascending peer order — bitwise the broadcast loops'
/// accumulation. The self stage (j == self) multiplies the rank's own
/// uncompacted block (`self_block`; null when this rank's block is not a
/// stage, as for 1.5D non-keepers) against `h` and waits on nothing;
/// each remote stage drains exactly its peer's packed rows as they land
/// (overlap mode: zero-copy from the peer's staging, charges applied at
/// the drain) and multiplies the plan's compacted block. Every drain is
/// recorded as one CostMeter overlap region paired against the previous
/// stage's SpMM, so halo mode reports nonzero overlap_regions. Shared by
/// the 1D (comm = world) and 1.5D (comm = slice) forwards.
void halo_spmm_pipeline(const Matrix& h, const Csr* self_block, int self,
                        Comm& comm, HaloPlan& plan, CommCategory cat,
                        const MachineModel& machine, EpochStats& stats,
                        Matrix& t);

/// The stage sweep of halo_spmm_pipeline alone, against an exchange the
/// caller already began (`op` from halo_exchange_begin on the same plan;
/// empty in blocking mode, where the rows sit in plan.recv). Splitting
/// the begin from the sweep lets the sampled minibatch trainer post the
/// next batch's feature exchange a whole compute phase early while
/// keeping the drain/accumulation discipline — ascending peer order,
/// per-source zero-copy drains, one overlap region per stage — in one
/// place. halo_spmm_pipeline is exactly begin + this sweep.
void halo_spmm_sweep(PendingOp& op, const Matrix& h, const Csr* self_block,
                     int self, Comm& comm, HaloPlan& plan,
                     const MachineModel& machine, EpochStats& stats,
                     Matrix& t);

/// The mirrored backward contribution exchange: pack `pack_rows` of
/// `partial` (the structurally nonzero remote contribution rows), ship
/// them along the plan, and accumulate into `u` in ascending peer order —
/// bitwise the reduce-scatter it replaces (skipped rows are exact +0.0
/// terms). The self term adds `partial` rows [self_row0, self_row0 +
/// u.rows()) when `self_partial` is true (1D always; 1.5D only on
/// keepers); remote peers' landed rows scatter-add onto `land_rows`
/// (chunked by `land_row_offsets`), threaded on the pool — rows within a
/// peer are distinct, so chunked writes stay disjoint and deterministic.
/// Overlap mode drains per peer with the same chunk-drain overlap
/// accounting as the forward. Shared by the 1D (full plan mirror) and
/// 1.5D (stripe-stacked pack rows) backwards.
void halo_exchange_contributions(
    const Matrix& partial, std::span<const Index> pack_rows,
    std::span<const std::size_t> pack_row_offsets, bool self_partial,
    Index self_row0, std::span<const Index> land_rows,
    std::span<const std::size_t> land_row_offsets, int self, Comm& comm,
    HaloPlan& plan, CommCategory cat, const MachineModel& machine,
    EpochStats& stats, Matrix& u);

/// Global mean NLL loss and accuracy from a local row block of output
/// log-probabilities. `row_lo` is the first global row of the block.
/// Reduces (loss_sum, hits, labeled) across ranks as control traffic.
/// In overlap mode pass `scratch` — persistent storage (e.g. engine-owned)
/// for the nonblocking reduction's (src, dst) pairs — and quiesce `comm`
/// before the next call overwrites it; with scratch == nullptr the
/// reduction is the blocking all-reduce. Charges are identical.
EpochResult reduce_loss_accuracy(const Matrix& local_log_probs, Index row_lo,
                                 const std::vector<Index>& labels,
                                 Index labeled_count, Comm& comm,
                                 std::array<double, 4>* scratch = nullptr);

/// dL/d(H^L) for the local row block under global-mean NLL.
Matrix local_nll_gradient(const Matrix& local_log_probs, Index row_lo,
                          const std::vector<Index>& labels,
                          Index labeled_count);

/// Average degree of a CSR block (nnz / rows), guarding empty blocks.
double block_degree(const Csr& block);

/// Broadcast a CSR block from `root` within `comm` without staging
/// copies: the root publishes straight from `mine`'s arrays and returns
/// `mine`; every other rank receives into `recv` (reusing its buffers,
/// non-roots pass nullptr for `mine`) and returns `&recv`. Traffic
/// (indices + values) is charged to `cat`; this is the SUMMA
/// sparse-broadcast primitive.
const Csr* broadcast_csr(const Csr* mine, Csr& recv, int root, Comm& comm,
                         CommCategory cat);

/// One dense SUMMA broadcast stage without staging copies: the stage root
/// (comm rank `root`) publishes `mine` directly and returns it; every
/// other rank receives a (rows x cols) block into `recv` (storage reused)
/// and gets `&recv`. Shared by every dense broadcast loop (1D stages,
/// 1.5D stripes, 2D/3D SUMMA stages, partial SUMMA).
const Matrix* broadcast_dense_stage(const Matrix& mine, Matrix& recv,
                                    Index rows, Index cols, int root,
                                    Comm& comm, CommCategory cat);

/// Nonblocking counterpart of broadcast_dense_stage: post() ships the
/// stage without a staging copy and without blocking; wait() completes the
/// receive and returns the usable block (the root's own `mine`, or
/// `recv`). Charges are identical to the blocking form, applied at wait.
/// `mine` (root) and `recv` (everyone else) must stay valid and unmodified
/// until every rank of `comm` has waited.
class PendingDenseStage {
 public:
  void post(const Matrix& mine, Matrix& recv, Index rows, Index cols,
            int root, Comm& comm, CommCategory cat);
  const Matrix* wait();

 private:
  PendingOp op_;
  const Matrix* result_ = nullptr;
};

/// Nonblocking counterpart of broadcast_csr, pipelined in two steps
/// because the receivers cannot size their buffers until the (rows, cols,
/// nnz) header lands: post_header() ships the header; post_parts() —
/// which first completes the header — sizes `recv` and posts the
/// row_ptr/col_idx/values payloads; wait() completes them and returns the
/// usable block (the root's `mine`, or `recv`). The SUMMA loops post the
/// header two stages ahead and the payloads one stage ahead, so the bulk
/// arrays are always in flight behind a whole local SpMM. Charges are
/// identical to broadcast_csr, applied as each piece is waited.
class PendingCsrBcast {
 public:
  /// `mine` non-null exactly on the root; `recv` is the receive block
  /// whose storage is reused (roots may pass their own cache slot — it is
  /// left untouched); `header` is caller-owned (rows, cols, nnz) staging
  /// that must stay valid until the communicator's release point — stack
  /// storage is NOT enough, since the root's wait is passive and peers
  /// read the header at their own pace (SparseStageCache::headers is the
  /// loop's stable slot for it).
  void post_header(const Csr* mine, Csr& recv, std::array<Index, 3>& header,
                   int root, Comm& comm, CommCategory cat);
  /// Complete the header, size the receive buffers, post the payloads.
  void post_parts();
  /// Complete the payloads; returns the usable block.
  const Csr* wait();

 private:
  std::array<Index, 3>* header_ = nullptr;  ///< caller-owned staging
  PendingOp header_op_;
  PendingOp parts_[3];
  const Csr* mine_ = nullptr;
  Csr* recv_ = nullptr;
  Comm* comm_ = nullptr;
  CommCategory cat_ = CommCategory::kSparse;
  int root_ = 0;
  int stage_ = 0;  ///< 0 idle, 1 header posted, 2 payloads posted
};

/// Bookkeeping for CostMeter's overlap accounting in the double-buffered
/// loops: open() marks the start of one overlapped compute block, close()
/// ends it, pairing the modeled local-kernel seconds recorded by `work`
/// in between against the comm charged to `meter` in the same window.
/// The loops call close() right after the waits of stage k+1 (whose
/// charges are the comm that was in flight) and open() right before the
/// stage-k+1 compute, so each region is exactly one stage of overlap.
class OverlapScope {
 public:
  OverlapScope(CostMeter& meter, const WorkMeter& work,
               const MachineModel& machine)
      : meter_(meter), work_(work), machine_(machine) {}
  ~OverlapScope() { close(); }

  OverlapScope(const OverlapScope&) = delete;
  OverlapScope& operator=(const OverlapScope&) = delete;

  void open() {
    meter_.begin_overlap_region();
    work_mark_ = work_.total_seconds();
    open_ = true;
  }
  void close() {
    if (!open_) return;
    meter_.end_overlap_region(machine_, work_.total_seconds() - work_mark_);
    open_ = false;
  }

 private:
  CostMeter& meter_;
  const WorkMeter& work_;
  MachineModel machine_;
  double work_mark_ = 0;
  bool open_ = false;
};

/// The generic dense double-buffer pipeline behind every overlapped
/// broadcast-stage loop: posts stage 0, then for each stage waits its
/// panel, closes the overlap region (so the charges of the waits are
/// paired with the previous stage's compute), posts stage s+1 into the
/// other receive buffer, reopens the region, and runs `compute_stage`.
/// `post_stage(s, dn, recv)` must post stage s's broadcast on `dn`
/// receiving into `recv`; `compute_stage(s, block)` consumes the stage.
/// Keeping the close/post/open ordering in one place keeps the overlap
/// accounting invariant from drifting between the loops. (The 2D/3D
/// summa_stage_loop keeps its own interleaved variant because sparse
/// pipelining is threaded through the same iteration.)
void overlapped_dense_stages(
    int stages,
    const std::function<void(int, PendingDenseStage&, Matrix&)>& post_stage,
    const std::function<void(int, const Matrix*)>& compute_stage,
    Matrix& recv0, Matrix& recv1, CostMeter& meter, const WorkMeter& work,
    const MachineModel& machine, Profiler& profiler);

/// The shared SUMMA accumulation loop of the 2D and 3D algebras: for each
/// stage s, the stage-root's sparse block travels along `sparse_comm`
/// (kSparse; received into and cached by `cache`, replayed from it in
/// cached epochs) and the stage-root's dense block — (stage_rows(s) x
/// my_dense.cols()), root s — travels along `dense_comm` (kDense); the
/// local SpMM accumulates into `acc`. With overlap enabled, stage s+1's
/// sparse payloads and dense panel are posted through the nonblocking
/// layer before stage s's SpMM runs (the CSR header travels two stages
/// ahead), cached blocks are served from the same buffers the prefetch
/// lands in, and every stage is recorded as one overlap region. Metered
/// charges are identical in both modes, in the same per-category order.
void summa_stage_loop(const Csr& my_sparse, SparseStageCache& cache,
                      Comm& sparse_comm, const Matrix& my_dense,
                      Comm& dense_comm,
                      const std::function<Index(int)>& stage_rows,
                      int stages, Matrix& acc, const MachineModel& machine,
                      EpochStats& stats, DistWorkspace& ws);

struct PendingGradReduce;

/// Complete a rows-whole weight gradient: move the (f_in x f_out) local
/// partial into `y_full` (buffer swap, no copy) and all-reduce it over
/// `comm`, leaving Y replicated. Shared by the 1D and 1.5D algebras.
/// Under CAGNET_COMPRESS != off the all-reduce runs through the lossy
/// codec with error feedback; `pending` owns the per-layer residual
/// stores (layer order is the call order within an epoch, so each
/// layer's residual is continuous across epochs).
void allreduce_weight_gradient(Matrix& y_partial, Index f_in, Index f_out,
                               Comm& comm, Profiler& profiler,
                               PendingGradReduce& pending, Matrix& y_full);

/// Pairwise CSR exchange with `peer` (the distributed-transpose primitive:
/// rank (i,j) swaps blocks with rank (j,i) and locally transposes).
Csr exchange_csr(const Csr& mine, int peer, Comm& comm, CommCategory cat);

/// Permutation-route a CSR block to `dest` (see Comm::route).
Csr route_csr(const Csr& mine, int dest, Comm& comm, CommCategory cat);

/// Row-wise all-gather of feature slices into full rows: `local` is this
/// rank's (rows x w_j) slice, `parts` ranks along `row_comm` each hold the
/// block_range(full_cols, parts, j) slice. Assembles into `full` (storage
/// reused) via the workspace. Charges kDense. Shared by the 2D and 3D
/// families (log-softmax rows and the U reuse).
void allgather_feature_rows(const Matrix& local, Index full_cols, int parts,
                            Comm& row_comm, Profiler& profiler,
                            DistWorkspace& ws, Matrix& full);

/// Complete a weight gradient from per-rank slice partials: sum `y_slice`
/// (a feat_slice(f_in) x f_out partial, consumed as scratch) over
/// `reduce_comm`, then all-gather the reduced slices along `row_comm`
/// (`parts` ranks, rank j holding block_range(f_in, parts, j)) into the
/// fully replicated (f_in x f_out) gradient `y` (storage reused). Shared
/// by the 2D and 3D families.
void assemble_weight_gradient(Matrix& y_slice, Index f_in, Index f_out,
                              int parts, Comm& reduce_comm, Comm& row_comm,
                              Profiler& profiler, DistWorkspace& ws,
                              PendingGradReduce& pending, Matrix& y);

/// Per-epoch state of the deferred (overlap-mode) gradient reductions:
/// one entry per layer, all storage reused across epochs. The begin_/
/// finish_ helpers below implement DistSpmmAlgebra::begin_reduce_gradients
/// / finish_gradients for the two layout families, so the reductions are
/// in flight behind the remaining backward layers.
struct PendingGradReduce {
  std::vector<Matrix> src;                 ///< staged partials (per layer)
  std::vector<Matrix> reduced;             ///< slice-family reduce targets
  /// Slice-family gather staging. unique_ptr: in-flight gathers hold the
  /// slot's address, which must survive the vector growing more slots.
  std::vector<std::unique_ptr<Gathered<Real>>> gathered;
  std::vector<PendingOp> ops;              ///< in-flight reductions
  std::vector<PendingOp> gather_ops;       ///< slice-family gathers
  std::vector<Matrix*> targets;            ///< y_full per layer
  std::vector<std::pair<Index, Index>> dims;  ///< (f_in, f_out) per layer
  std::size_t count = 0;                   ///< layers posted this epoch
  /// Compressed-path state (CAGNET_COMPRESS != off). One CompressBuf per
  /// layer, error feedback on: the residual store is the codec's memory
  /// across epochs, so slot i must always serve the same layer.
  /// unique_ptr for address stability while in-flight ops hold the slot.
  std::vector<std::unique_ptr<CompressBuf>> cbufs;
  std::vector<PendingCompressedReduce> cops;  ///< in-flight compressed ops
  std::size_t ccount = 0;                  ///< compressed layers posted
  /// Targeted release of the previous cycle's staged sends: the ticket of
  /// the last op waited at finish. Every rank waits its cycle's ops in
  /// posting order, so that op being globally finished implies every
  /// rank's reads of every staged src / encoded send of the cycle are
  /// done. quiesce_op on it at the next cycle's first begin releases the
  /// slots without waiting unrelated in-flight ops (the sampled trainer
  /// deliberately keeps the next minibatch's feature exchange pending
  /// across this point; a global quiesce would deadlock on it).
  std::uint64_t release_ticket = 0;
  bool has_release = false;

  /// Grow-once residual slot for layer `i` (error feedback enabled).
  CompressBuf& compress_slot(std::size_t i) {
    if (cbufs.size() <= i) cbufs.resize(i + 1);
    if (!cbufs[i]) {
      cbufs[i] = std::make_unique<CompressBuf>();
      cbufs[i]->error_feedback = true;
    }
    return *cbufs[i];
  }
};

/// Rows-whole family (1D / 1.5D) deferred gradient reduction: stage a
/// copy of `y_partial` (releasing it immediately) and post its
/// nonblocking all-reduce straight into `y_full`; the finish form waits
/// every posted op. Charges are identical to allreduce_weight_gradient.
void begin_allreduce_weight_gradient(Matrix& y_partial, Index f_in,
                                     Index f_out, Comm& comm,
                                     Profiler& profiler,
                                     PendingGradReduce& pending,
                                     Matrix& y_full);
void finish_allreduce_weight_gradient(Profiler& profiler,
                                      PendingGradReduce& pending);

/// Slice family (2D / 3D) deferred gradient assembly: stage a copy of
/// `y_slice` and post its nonblocking sum over `reduce_comm`; the finish
/// form completes each reduction, all-gathers the reduced slices along
/// `row_comm`, and unpacks into the recorded y_full targets. Charges are
/// identical to assemble_weight_gradient.
void begin_assemble_weight_gradient(Matrix& y_slice, Index f_in,
                                    Index f_out, Comm& reduce_comm,
                                    Profiler& profiler,
                                    PendingGradReduce& pending,
                                    Matrix& y_full);
void finish_assemble_weight_gradient(int parts, Comm& row_comm,
                                     Profiler& profiler,
                                     PendingGradReduce& pending);

/// Partial SUMMA Z = T W with W replicated: only T moves, broadcast along
/// `row_comm` (`parts` ranks; this rank is column `my_col` and contributes
/// `t`, its local feat_slice of T). Writes this rank's Z slice
/// (t.rows() x block_range(w.cols(), parts, my_col) width) into `z`
/// (storage reused). Shared by the 2D and 3D families ("partial SUMMA" /
/// "partial Split-3D-SpMM").
void partial_summa_times_weight(const Matrix& t, const Matrix& w, int parts,
                                int my_col, Comm& row_comm,
                                const MachineModel& machine,
                                EpochStats& stats, DistWorkspace& ws,
                                Matrix& z);

}  // namespace dist

}  // namespace cagnet
