// Registry of the distributed SpMM algebras the shared engine can drive.
//
// Each paper algorithm registers a name, a validity predicate on the world
// size, a representative list of valid world sizes (for parameterized
// parity tests and shoot-out tools), and a factory. Adding a new
// partitioning (e.g. an ABC-style aggregation-before-communication scheme)
// is one DistSpmmAlgebra subclass plus one AlgebraSpec entry here — the
// engine, the parity tests, and the benches pick it up automatically.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dist_engine.hpp"

namespace cagnet {

struct AlgebraSpec {
  /// Unique registry key ("1d", "1.5d-c2", "2d", ...).
  std::string name;

  /// Which simulated world sizes this algebra accepts.
  std::function<bool(int world_size)> accepts;

  /// Representative valid world sizes exercised by the parity tests.
  std::vector<int> world_sizes;

  /// Collective factory: call on every rank of `world`.
  std::function<std::unique_ptr<DistSpmmAlgebra>(
      const DistProblem& problem, Comm& world, MachineModel machine)>
      make;
};

/// All registered algebras (1D, 1.5D at c = 2 and 4, 2D, 3D).
const std::vector<AlgebraSpec>& algebra_registry();

/// Lookup by name; nullptr when unknown.
const AlgebraSpec* find_algebra(const std::string& name);

/// Build the shared engine over the named algebra. Collective: call on
/// every rank of `world`. Throws on an unknown name or an invalid world
/// size for that algebra.
std::unique_ptr<DistTrainer> make_dist_trainer(
    const std::string& name, const DistProblem& problem, GnnConfig config,
    Comm& world, MachineModel machine = MachineModel::summit());

}  // namespace cagnet
