// The paper's block 3D algorithm: Split-3D-SpMM (Section IV-D).
//
// The paper analyzes this algorithm (it reduces words by another O(P^(1/6))
// over 2D) but does not implement it, citing constants, complexity, and the
// P^(1/3) intermediate replication. We implement it faithfully so that its
// metered communication can be compared against the closed forms and the
// 2D implementation (DESIGN.md experiment E5).
//
// Processes form a q x q x q mesh (P = q^3); each 2D plane with fixed k is
// a "layer". Following Azad et al.'s Split-3D layout:
//   A^T block of rank (i,j,k): rows = coarse block C_i (n/q), cols = fine
//     slab F_{j,k} (n/q^2) — the k-th sub-slab of coarse column j.
//   H^l block of rank (i,j,k): rows = fine slab F_{i,k}, cols = feature
//     block j (f/q) — "shorter and fatter than the 2D distribution".
//
// One Split-3D-SpMM = independent 2D SUMMAs per layer (each layer owns the
// contraction sub-slabs with its k) followed by a reduce-scatter along the
// fiber dimension; the pre-reduction partial is the algorithm's P^(1/3)
// memory replication. The backward pass needs A in the same family of
// blocks, obtained by a 3D distributed transpose: a local transpose plus q
// permutation-routed piece exchanges (i,j,k) -> (j,i,k'').
#pragma once

#include <optional>

#include "src/core/dist_common.hpp"
#include "src/gnn/optimizer.hpp"

namespace cagnet {

class Dist3D final : public DistTrainer {
 public:
  /// Collective constructor; world size must be a perfect cube.
  Dist3D(const DistProblem& problem, GnnConfig config, Comm world,
         MachineModel machine = MachineModel::summit());

  EpochResult train_epoch() override;
  const EpochStats& last_epoch_stats() const override { return stats_; }
  Matrix gather_output() override;
  const std::vector<Matrix>& weights() const override { return weights_; }

  int grid_dim() const { return grid_.q; }

 private:
  const Matrix& forward();
  void backward();
  void step();

  /// One Split-3D-SpMM: T = S * D with S this rank's sparse block (row
  /// broadcasts), D the dense blocks (column broadcasts), then the fiber
  /// reduce-scatter. Returns the (fine rows x dense cols) result block.
  Matrix split3d_spmm(const Csr& my_sparse, const Matrix& my_dense);

  /// Row-wise all-gather within the layer: local (fine rows x w_j) block to
  /// full (fine rows x full_cols).
  Matrix allgather_rows(const Matrix& local, Index full_cols);

  /// 3D distributed transpose of a (coarse x fine)-blocked square matrix;
  /// returns this rank's block of the transpose in the same blocking.
  Csr transpose_3d(const Csr& my_block);

  const DistProblem& problem_;
  GnnConfig config_;
  Grid3D grid_;
  Comm jplane_;  ///< ranks sharing j, ordered by (i, k): Y reduction/gather
  MachineModel machine_;

  Index n_ = 0;
  Index coarse_lo_ = 0, coarse_hi_ = 0;  ///< C_i
  Index fine_lo_ = 0, fine_hi_ = 0;      ///< F_{i,k} (H rows)

  Csr at_block_;  ///< A^T[C_i, F_{j,k}]

  std::optional<Optimizer> optimizer_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> gradients_;
  std::vector<Matrix> h_;
  std::vector<Matrix> z_;
  Matrix output_rows_;  ///< full rows F_{i,k} of H^L

  EpochStats stats_;
};

}  // namespace cagnet
