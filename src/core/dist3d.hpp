// The paper's block 3D algorithm: Split-3D-SpMM (Section IV-D).
//
// The paper analyzes this algorithm (it reduces words by another O(P^(1/6))
// over 2D) but does not implement it, citing constants, complexity, and the
// P^(1/3) intermediate replication. We implement it faithfully so that its
// metered communication can be compared against the closed forms and the
// 2D implementation (DESIGN.md experiment E5).
//
// Processes form a q x q x q mesh (P = q^3); each 2D plane with fixed k is
// a "layer". Following Azad et al.'s Split-3D layout:
//   A^T block of rank (i,j,k): rows = coarse block C_i (n/q), cols = fine
//     slab F_{j,k} (n/q^2) — the k-th sub-slab of coarse column j.
//   H^l block of rank (i,j,k): rows = fine slab F_{i,k}, cols = feature
//     block j (f/q) — "shorter and fatter than the 2D distribution".
//
// One Split-3D-SpMM = independent 2D SUMMAs per layer (each layer owns the
// contraction sub-slabs with its k) followed by a reduce-scatter along the
// fiber dimension; the pre-reduction partial is the algorithm's P^(1/3)
// memory replication. The backward pass needs A in the same family of
// blocks, obtained by a 3D distributed transpose: a local transpose plus q
// permutation-routed piece exchanges (i,j,k) -> (j,i,k'').
//
// Only the distributed algebra lives here; the training loop itself is the
// shared DistEngine (see dist_engine.hpp).
#pragma once

#include <memory>

#include "src/core/dist_engine.hpp"

namespace cagnet {

/// Split-3D-SpMM algebra: vertex rows are fine slabs F_{i,k}, feature
/// columns are split across j — both feature hooks are overridden with
/// their within-layer SUMMA realizations.
class Algebra3D final : public DistSpmmAlgebra {
 public:
  /// Collective constructor; world size must be a perfect cube.
  Algebra3D(const DistProblem& problem, Comm world, MachineModel machine);

  const char* name() const override { return "3d"; }
  Comm& world() override { return grid_.world; }
  Index row_lo() const override { return fine_lo_; }
  Index row_hi() const override { return fine_hi_; }
  std::pair<Index, Index> feat_slice(Index f) const override {
    return block_range(f, grid_.q, grid_.j);
  }
  bool rows_whole() const override { return false; }
  bool owns_loss_rows() const override { return grid_.j == 0; }

  void spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) override;
  void spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) override;
  void times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                    EpochStats& stats) override;
  void gather_feature_rows(const Matrix& local, Index f, Matrix& full,
                           EpochStats& stats) override;
  void reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                        Matrix& y_full, EpochStats& stats) override;
  void begin_reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                              Matrix& y_full, EpochStats& stats) override;
  void finish_gradients(EpochStats& stats) override;

  /// 3D distributed transpose A^T -> A (and back).
  void begin_backward(EpochStats& stats) override;
  void end_backward(EpochStats& stats) override;

  void drain() noexcept override {
    dist::drain_comm(grid_.row);
    dist::drain_comm(grid_.col);
    dist::drain_comm(grid_.fiber);
    dist::drain_comm(jplane_);
  }

  int grid_dim() const { return grid_.q; }

 protected:
  /// j-plane ranks are keyed by (i, k), i.e. ascending fine row blocks, so
  /// gathering full-row outputs along it assembles all n rows in order.
  Comm& gather_comm() override { return jplane_; }

 private:
  /// One Split-3D-SpMM: T = S * D with S this rank's sparse block (row
  /// broadcasts, cached across epochs in `cache`), D the dense blocks
  /// (column broadcasts), then the fiber reduce-scatter. Writes the
  /// (fine rows x dense cols) result block into `out` (storage reused).
  void split3d_spmm(const Csr& my_sparse, dist::SparseStageCache& cache,
                    const Matrix& my_dense, Matrix& out, EpochStats& stats);

  /// 3D distributed transpose of a (coarse x fine)-blocked square matrix;
  /// returns this rank's block of the transpose in the same blocking.
  Csr transpose_3d(const Csr& my_block);

  Grid3D grid_;
  Comm jplane_;  ///< ranks sharing j, ordered by (i, k): Y reduction/gather

  Index n_ = 0;
  Index coarse_lo_ = 0, coarse_hi_ = 0;  ///< C_i
  Index fine_lo_ = 0, fine_hi_ = 0;      ///< F_{i,k} (H rows)

  Csr at_block_;  ///< A^T[C_i, F_{j,k}]
  Csr a_block_;   ///< A[C_i, F_{j,k}], materialized in backward epoch 1
                  ///< and kept across epochs while the cache is enabled

  Matrix t_partial_;                 ///< P^(1/3)-replicated partial (reused)
  dist::PendingGradReduce grad_pending_;  ///< deferred Y reductions
  dist::DistWorkspace ws_;           ///< reused dense/staging buffers
  dist::SparseStageCache at_cache_;  ///< forward received A^T blocks
  dist::SparseStageCache a_cache_;   ///< backward received A blocks
  dist::TransposeCache trpose_cache_;
};

/// The 3D trainer: the shared engine driven by Algebra3D.
class Dist3D final : public DistEngine {
 public:
  /// Collective constructor; world size must be a perfect cube.
  Dist3D(const DistProblem& problem, GnnConfig config, Comm world,
         MachineModel machine = MachineModel::summit());
};

}  // namespace cagnet
