#include "src/core/dist15d.hpp"

#include <algorithm>

#include "src/sparse/spmm_kernel.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Algebra15D::Algebra15D(const DistProblem& problem, Comm world,
                       int replication, MachineModel machine)
    : DistSpmmAlgebra(machine), world_(std::move(world)), c_(replication) {
  CAGNET_CHECK(c_ >= 1 && world_.size() % c_ == 0,
               "replication factor must divide world size");
  groups_ = world_.size() / c_;
  t_ = world_.rank() % c_;
  g_ = world_.rank() / c_;
  team_ = world_.split(/*color=*/g_, /*key=*/t_);
  slice_ = world_.split(/*color=*/t_, /*key=*/g_);

  n_ = problem.graph->num_vertices();
  std::tie(row_lo_, row_hi_) = block_range(n_, groups_, g_);

  for (int j = t_; j < groups_; j += c_) {
    const auto [c0, c1] = block_range(n_, groups_, j);
    Csr block = problem.at.block(row_lo_, row_hi_, c0, c1);
    a_stripe_[j] = block.transposed();
    at_stripe_[j] = std::move(block);
  }
}

void Algebra15D::spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) {
  const Index f = h.cols();
  t.resize(local_rows(), f);
  t.set_zero();

  // Broadcast stages restricted to this slice's stripe j ≡ t (mod c):
  // the broadcast volume of the 1D algorithm divided by c. The stage root
  // broadcasts straight from h (slice ranks are ordered by group, so the
  // slice root of stage j is group j's member).
  for (int j = t_; j < groups_; j += c_) {
    const auto [r0, r1] = block_range(n_, groups_, j);
    const Matrix* hj = nullptr;
    {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      hj = dist::broadcast_dense_stage(h, hj_recv_, r1 - r0, f, j, slice_,
                                       CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats.profiler, Phase::kSpmm);
      const Csr& a = at_stripe_.at(j);
      a.spmm(*hj, t, /*accumulate=*/true);
      stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                          static_cast<double>(f), dist::block_degree(a));
    }
  }

  // Team all-reduce completes the contraction and leaves T replicated
  // across the c team members (the 1.5D replication cost in flight).
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    team_.allreduce_sum(t.flat(), CommCategory::kDense);
  }
}

void Algebra15D::spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) {
  const Index f = g.cols();

  // Outer product restricted to this stripe: partial U over the rows
  // R_j, j ≡ t (mod c), stacked in ascending-j order. The pieces are
  // contiguous row ranges of u_partial_, so the kernel writes straight
  // into the stacked buffer.
  Index stripe_rows = 0;
  for (int j = t_; j < groups_; j += c_) {
    const auto [r0, r1] = block_range(n_, groups_, j);
    stripe_rows += r1 - r0;
  }
  u_partial_.resize(stripe_rows, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    Index cursor = 0;
    for (int j = t_; j < groups_; j += c_) {
      const Csr& a = a_stripe_.at(j);
      CAGNET_CHECK(g.rows() == a.cols(),
                   "spmm_a: stripe block width does not match G rows");
      spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                            a.values().data(), g.data(), f,
                            u_partial_.data() + cursor * f,
                            /*accumulate=*/false);
      stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                          static_cast<double>(f), dist::block_degree(a));
      cursor += a.rows();
    }
  }

  // Reduce-scatter within the slice: slice rank j' keeps U[R_j'] when
  // j' ≡ t (mod c), nothing otherwise (chunk order is ascending j, which
  // is ascending slice rank). The keeper's chunk lands directly in u.
  const bool keeper = (g_ % c_) == t_;
  u.resize(local_rows(), f);
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    slice_.reduce_scatter_sum(std::span<const Real>(u_partial_.flat()),
                              keeper ? u.flat() : std::span<Real>{},
                              CommCategory::kDense);
  }
  // Team broadcast from the member holding this group's block: group g's
  // reduced block landed on team member g mod c (the keeper).
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (keeper) {
      team_.broadcast_from(std::span<const Real>(u.flat()),
                           std::span<Real>{}, g_ % c_, CommCategory::kDense);
    } else {
      team_.broadcast_from(std::span<const Real>{}, u.flat(), g_ % c_,
                           CommCategory::kDense);
    }
  }
}

void Algebra15D::reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                  Matrix& y_full, EpochStats& stats) {
  // Rows whole: y_partial is the group's (f_in x f_out) contribution,
  // summed over groups within the slice (each slice forms the identical
  // full sum independently, keeping Y replicated without cross-team
  // traffic).
  dist::allreduce_weight_gradient(y_partial, f_in, f_out, slice_,
                                  stats.profiler, y_full);
}

Dist15D::Dist15D(const DistProblem& problem, GnnConfig config, Comm world,
                 int replication, MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra15D>(problem, std::move(world),
                                              replication, machine)) {}

}  // namespace cagnet
