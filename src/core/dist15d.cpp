#include "src/core/dist15d.hpp"

#include "src/util/error.hpp"

namespace cagnet {

Algebra15D::Algebra15D(const DistProblem& problem, Comm world,
                       int replication, MachineModel machine)
    : DistSpmmAlgebra(machine), world_(std::move(world)), c_(replication) {
  CAGNET_CHECK(c_ >= 1 && world_.size() % c_ == 0,
               "replication factor must divide world size");
  groups_ = world_.size() / c_;
  t_ = world_.rank() % c_;
  g_ = world_.rank() / c_;
  team_ = world_.split(/*color=*/g_, /*key=*/t_);
  slice_ = world_.split(/*color=*/t_, /*key=*/g_);

  n_ = problem.graph->num_vertices();
  std::tie(row_lo_, row_hi_) = block_range(n_, groups_, g_);

  for (int j = t_; j < groups_; j += c_) {
    const auto [c0, c1] = block_range(n_, groups_, j);
    Csr block = problem.at.block(row_lo_, row_hi_, c0, c1);
    a_stripe_[j] = block.transposed();
    at_stripe_[j] = std::move(block);
  }
}

Matrix Algebra15D::spmm_at(const Matrix& h, EpochStats& stats) {
  const Index f = h.cols();
  Matrix t_partial(local_rows(), f);

  // Broadcast stages restricted to this slice's stripe j ≡ t (mod c):
  // the broadcast volume of the 1D algorithm divided by c.
  for (int j = t_; j < groups_; j += c_) {
    const auto [r0, r1] = block_range(n_, groups_, j);
    Matrix hj(r1 - r0, f);
    if (g_ == j) hj = h;
    {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      slice_.broadcast(hj.flat(), j, CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats.profiler, Phase::kSpmm);
      const Csr& a = at_stripe_.at(j);
      a.spmm(hj, t_partial, /*accumulate=*/true);
      stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                          static_cast<double>(f), dist::block_degree(a));
    }
  }

  // Team all-reduce completes the contraction and leaves T replicated
  // across the c team members (the 1.5D replication cost in flight).
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    team_.allreduce_sum(t_partial.flat(), CommCategory::kDense);
  }
  return t_partial;
}

Matrix Algebra15D::spmm_a(const Matrix& g, EpochStats& stats) {
  const Index f = g.cols();

  // Outer product restricted to this stripe: partial U over the rows
  // R_j, j ≡ t (mod c), stacked in ascending-j order.
  Index stripe_rows = 0;
  for (int j = t_; j < groups_; j += c_) {
    const auto [r0, r1] = block_range(n_, groups_, j);
    stripe_rows += r1 - r0;
  }
  Matrix u_partial(stripe_rows, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    Index cursor = 0;
    for (int j = t_; j < groups_; j += c_) {
      const Csr& a = a_stripe_.at(j);
      Matrix piece(a.rows(), f);
      a.spmm(g, piece, /*accumulate=*/false);
      stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                          static_cast<double>(f), dist::block_degree(a));
      u_partial.set_block(cursor, 0, piece);
      cursor += a.rows();
    }
  }

  // Reduce-scatter within the slice: slice rank j' keeps U[R_j'] when
  // j' ≡ t (mod c), nothing otherwise (chunk order is ascending j, which
  // is ascending slice rank).
  const bool keeper = (g_ % c_) == t_;
  const auto [my0, my1] = block_range(n_, groups_, g_);
  Matrix u_mine(keeper ? my1 - my0 : 0, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    slice_.reduce_scatter_sum(std::span<const Real>(u_partial.flat()),
                              u_mine.flat(), CommCategory::kDense);
  }
  // Team broadcast from the member holding this group's block: group g's
  // reduced block landed on team member g mod c.
  Matrix u(local_rows(), f);
  if (keeper) u = std::move(u_mine);
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    team_.broadcast(u.flat(), g_ % c_, CommCategory::kDense);
  }
  return u;
}

Matrix Algebra15D::reduce_gradients(Matrix y_local, Index f_in, Index f_out,
                                    EpochStats& stats) {
  // Rows whole: y_local is the group's (f_in x f_out) contribution, summed
  // over groups within the slice (each slice forms the identical full sum
  // independently, keeping Y replicated without cross-team traffic).
  CAGNET_CHECK(y_local.rows() == f_in && y_local.cols() == f_out,
               "reduce_gradients: unexpected partial shape");
  ScopedPhase scope(stats.profiler, Phase::kDenseComm);
  slice_.allreduce_sum(y_local.flat(), CommCategory::kDense);
  return y_local;
}

Dist15D::Dist15D(const DistProblem& problem, GnnConfig config, Comm world,
                 int replication, MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra15D>(problem, std::move(world),
                                              replication, machine)) {}

}  // namespace cagnet
