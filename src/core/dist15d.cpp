#include "src/core/dist15d.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "src/dense/gemm.hpp"
#include "src/sparse/spmm_kernel.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Algebra15D::Algebra15D(const DistProblem& problem, Comm world,
                       int replication, MachineModel machine)
    : DistSpmmAlgebra(machine), world_(std::move(world)), c_(replication) {
  CAGNET_CHECK(c_ >= 1 && world_.size() % c_ == 0,
               "replication factor must divide world size");
  groups_ = world_.size() / c_;
  t_ = world_.rank() % c_;
  g_ = world_.rank() / c_;
  team_ = world_.split(/*color=*/g_, /*key=*/t_);
  slice_ = world_.split(/*color=*/t_, /*key=*/g_);

  n_ = problem.graph->num_vertices();
  row_starts_ = dist::row_starts(problem, groups_);
  row_lo_ = row_starts_[static_cast<std::size_t>(g_)];
  row_hi_ = row_starts_[static_cast<std::size_t>(g_) + 1];

  for (int j = t_; j < groups_; j += c_) {
    Csr block = problem.at.block(row_lo_, row_hi_,
                                 row_starts_[static_cast<std::size_t>(j)],
                                 row_starts_[static_cast<std::size_t>(j) + 1]);
    a_stripe_[j] = block.transposed();
    at_stripe_[j] = std::move(block);
  }

  // Halo mode (forward only for this family): exchange, over the slice,
  // exactly the remote H rows the stripe blocks touch. Off-stripe slice
  // peers hold rows this rank never reads (their stages do not exist),
  // so the plan requests nothing from them.
  use_halo_ = dist::halo_enabled() && groups_ > 1;
  if (use_halo_) {
    dist::build_halo_plan(
        [&](int j) {
          const auto it = at_stripe_.find(j);
          return it != at_stripe_.end() ? &it->second : nullptr;
        },
        g_, [&](int j) { return row_starts_[static_cast<std::size_t>(j)]; },
        slice_, halo_);

    // Backward mirror, stacked: u_partial_ stacks the stripe blocks in
    // ascending-j order, so the contribution rows for peer j pack from
    // stacked_base[j] + peer-local row.
    std::vector<Index> stacked_base(static_cast<std::size_t>(groups_), 0);
    Index cursor = 0;
    for (int j = t_; j < groups_; j += c_) {
      stacked_base[static_cast<std::size_t>(j)] = cursor;
      cursor += row_starts_[static_cast<std::size_t>(j) + 1] -
                row_starts_[static_cast<std::size_t>(j)];
    }
    const Index stripe_rows = cursor;
    self_stacked_row0_ =
        (g_ % c_) == t_ ? stacked_base[static_cast<std::size_t>(g_)] : 0;
    bwd_pack_rows_.reserve(halo_.need_rows.size());
    for (int j = 0; j < groups_; ++j) {
      for (std::size_t k = halo_.recv_row_offsets[static_cast<std::size_t>(j)];
           k < halo_.recv_row_offsets[static_cast<std::size_t>(j) + 1]; ++k) {
        bwd_pack_rows_.push_back(stacked_base[static_cast<std::size_t>(j)] +
                                 halo_.need_rows[k]);
      }
    }
    // Gate the backward exchange on profitability: it lands per-peer
    // contribution rows (send_rows, the forward mirror) instead of the
    // reduce-scatter's pre-reduced stripe_rows*(G-1)/G chunk, so under a
    // poor partition the busiest rank could move (and pack/scatter) more
    // than the reduce-scatter charges.
    use_bwd_halo_ = dist::halo_backward_profitable(
        halo_.send_rows.size(),
        static_cast<double>(stripe_rows) *
            static_cast<double>(groups_ - 1) / static_cast<double>(groups_),
        slice_);
    if (dist::preagg_enabled()) {
      // Aggregation-before-communication over the slice: a destination
      // group d only requests rows from g when (g, d)'s coupling block
      // sits on d's stripe, and both endpoints see the same block of the
      // global A^T, so the structural agree-without-traffic argument of
      // the 1D build carries over unchanged.
      dist::build_preagg_plan(
          problem.at,
          [&](int j) {
            return std::pair<Index, Index>(
                row_starts_[static_cast<std::size_t>(j)],
                row_starts_[static_cast<std::size_t>(j) + 1]);
          },
          row_lo_, row_hi_, g_, halo_);
    }
  }
}

void Algebra15D::begin_epoch(int epoch) {
  dist::halo_begin_epoch(epoch, use_halo_, slice_, halo_);
}

void Algebra15D::spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) {
  const Index f = h.cols();
  if (dist::overlap_enabled() && c_ > 1) {
    // Release point for the previous layer's deferred team reduction:
    // team peers read this rank's T chunks at their waits, and `t` is
    // rewritten below. Readers drained a whole layer ago.
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    team_.quiesce();
  }
  t.resize(local_rows(), f);
  t.set_zero();

  // Broadcast stages restricted to this slice's stripe j ≡ t (mod c):
  // the broadcast volume of the 1D algorithm divided by c. The stage root
  // broadcasts straight from h (slice ranks are ordered by group, so the
  // slice root of stage j is group j's member).
  std::vector<int> stages;
  for (int j = t_; j < groups_; j += c_) stages.push_back(j);
  const auto stage_rows = [&](int j) {
    return row_starts_[static_cast<std::size_t>(j) + 1] -
           row_starts_[static_cast<std::size_t>(j)];
  };
  const auto spmm_stage = [&](int j, const Matrix* hj) {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    const Csr& a = at_stripe_.at(j);
    a.spmm(*hj, t, /*accumulate=*/true);
    stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                        static_cast<double>(f), dist::block_degree(a));
  };

  if (use_halo_) {
    // Stripe-restricted request-and-send (kHalo words; see dist1d.cpp),
    // pipelined: the self stage (when this group's block is on the
    // stripe) runs while remote rows are in flight, and each remote
    // stage drains its peer's rows as they land — in the same
    // j-ascending accumulation order as the broadcast stages, so the
    // stripe partial of T is bitwise identical.
    dist::halo_spmm_pipeline(
        h, (g_ % c_) == t_ ? &at_stripe_.at(g_) : nullptr, g_, slice_,
        halo_, CommCategory::kHalo, machine(), stats, t);
  } else if (!(dist::overlap_enabled() && slice_.size() > 1 &&
               !stages.empty())) {
    for (int j : stages) {
      const Matrix* hj = nullptr;
      {
        ScopedPhase scope(stats.profiler, Phase::kDenseComm);
        hj = dist::broadcast_dense_stage(h, hj_recv_, stage_rows(j), f, j,
                                         slice_, CommCategory::kDense);
      }
      spmm_stage(j, hj);
    }
  } else {
    // Overlapped: the next stripe stage's H panel is in flight while this
    // stage's SpMM accumulates (H is stable for the whole epoch).
    dist::overlapped_dense_stages(
        static_cast<int>(stages.size()),
        [&](int s, dist::PendingDenseStage& dn, Matrix& recv) {
          const int j = stages[static_cast<std::size_t>(s)];
          dn.post(h, recv, stage_rows(j), f, j, slice_,
                  CommCategory::kDense);
        },
        [&](int s, const Matrix* hj) {
          spmm_stage(stages[static_cast<std::size_t>(s)], hj);
        },
        hj_recv_, hj_recv2_, world_.meter(), stats.work, machine(),
        stats.profiler);
  }

  // Team all-reduce completes the contraction and leaves T replicated
  // across the c team members (the 1.5D replication cost in flight).
  if (c_ == 1) return;
  if (!dist::overlap_enabled()) {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    team_.allreduce_sum(t.flat(), CommCategory::kDense);
    return;
  }
  // Overlap mode: defer the reduction as row-chunked nonblocking ops; the
  // times_weight override drains them interleaved with its GEMM. Chunk
  // charges telescope over cumulative bytes so their sum is bitwise the
  // blocking all-reduce charge (per-chunk integer division would not be).
  ScopedPhase scope(stats.profiler, Phase::kDenseComm);
  const Index rows = t.rows();
  t_reduced_.resize(rows, f);
  const int chunks = static_cast<int>(
      std::min<Index>(4, std::max<Index>(rows, 1)));
  deferred_.ops.clear();
  deferred_.rows.clear();
  deferred_.charges.clear();
  const auto cum_bytes = [&](Index upto_rows) {
    const auto elems = static_cast<std::size_t>(upto_rows * f);
    return 2 * elems * sizeof(Real) * static_cast<std::size_t>(c_ - 1) /
           static_cast<std::size_t>(c_);
  };
  for (int i = 0; i < chunks; ++i) {
    const auto [r0, r1] = block_range(rows, chunks, i);
    const auto n = static_cast<std::size_t>((r1 - r0) * f);
    deferred_.rows.push_back({r0, r1});
    deferred_.charges.push_back(
        {i == 0 ? 2.0 * ceil_log2(c_) : 0.0,
         static_cast<double>(cum_bytes(r1) - cum_bytes(r0)) /
             sizeof(Real)});
    deferred_.ops.push_back(team_.iallreduce_sum(
        std::span<const Real>(t.data() + r0 * f, n),
        std::span<Real>(t_reduced_.data() + r0 * f, n),
        CommCategory::kDense, /*charged=*/false));
  }
  deferred_.active = true;
}

void Algebra15D::times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                              EpochStats& stats) {
  if (!deferred_.active) {
    DistSpmmAlgebra::times_weight(t, w, z, stats);
    return;
  }
  deferred_.active = false;
  const Index f_in = w.rows();
  const Index f_out = w.cols();
  CAGNET_CHECK(t_reduced_.rows() == t.rows() && t.cols() == f_in,
               "times_weight: deferred reduction does not match T");
  z.resize(t.rows(), f_out);
  dist::OverlapScope region(world_.meter(), stats.work, machine());
  for (std::size_t i = 0; i < deferred_.ops.size(); ++i) {
    const auto [r0, r1] = deferred_.rows[i];
    {
      // The manual charge lands here — inside the wait window — so the
      // overlap accounting attributes it to the region it overlapped.
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      world_.meter().add(CommCategory::kDense, deferred_.charges[i].first,
                         deferred_.charges[i].second);
      deferred_.ops[i].wait();
    }
    region.close();
    region.open();
    {
      ScopedPhase scope(stats.profiler, Phase::kMisc);
      t_reduced_.block_into(r0, 0, r1 - r0, f_in, t_chunk_);
      z_chunk_.resize(r1 - r0, f_out);
      gemm(Trans::kNo, Trans::kNo, Real{1}, t_chunk_, w, Real{0}, z_chunk_);
      std::copy(z_chunk_.flat().begin(), z_chunk_.flat().end(),
                z.data() + r0 * f_out);
      stats.work.add_gemm(machine(), 2.0 * static_cast<double>(r1 - r0) *
                                         static_cast<double>(f_in) *
                                         static_cast<double>(f_out));
    }
  }
  region.close();
  // Source-release contract: team peers may still be reading this rank's
  // T chunks; spmm_at quiesces the team before T is next rewritten.
}

void Algebra15D::spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) {
  const Index f = g.cols();

  if (dist::overlap_enabled()) {
    // Release points: slice peers read this rank's u_partial_ (previous
    // layer's reduce-scatter; the halo backward manages its own pack
    // staging instead) and team peers read u (previous layer's replica
    // broadcast); both buffers are rewritten below. The slice release is
    // bounded to that single op — anything broader would wait on the
    // deferred gradient reductions, which peers finish only later.
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (has_u_release_) slice_.quiesce_op(u_release_ticket_);
    team_.quiesce();
  }
  // Outer product restricted to this stripe: partial U over the rows
  // R_j, j ≡ t (mod c), stacked in ascending-j order. The pieces are
  // contiguous row ranges of u_partial_, so the kernel writes straight
  // into the stacked buffer.
  Index stripe_rows = 0;
  for (int j = t_; j < groups_; j += c_) {
    stripe_rows += row_starts_[static_cast<std::size_t>(j) + 1] -
                   row_starts_[static_cast<std::size_t>(j)];
  }
  u_partial_.resize(stripe_rows, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    Index cursor = 0;
    for (int j = t_; j < groups_; j += c_) {
      const Csr& a = a_stripe_.at(j);
      CAGNET_CHECK(g.rows() == a.cols(),
                   "spmm_a: stripe block width does not match G rows");
      spmm_csr_kernel<Real>(a.rows(), a.row_ptr().data(), a.col_idx().data(),
                            a.values().data(), g.data(), f,
                            u_partial_.data() + cursor * f,
                            /*accumulate=*/false);
      stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                          static_cast<double>(f), dist::block_degree(a));
      cursor += a.rows();
    }
  }

  const bool keeper = (g_ % c_) == t_;
  u.resize(local_rows(), f);

  if (use_bwd_halo_) {
    // Mirrored contribution exchange instead of the slice reduce-scatter
    // (the 1D backward's discipline, stripe-stacked): only the
    // structurally nonzero contribution rows travel, landing on keepers
    // in rank-ascending order — bitwise the reduce-scatter's sums (the
    // rows it skips are exact +0.0 terms). Non-keepers contribute rows
    // and receive nothing; their u arrives with the team broadcast below.
    dist::halo_exchange_contributions(
        u_partial_, std::span<const Index>(bwd_pack_rows_),
        std::span<const std::size_t>(halo_.recv_row_offsets),
        /*self_partial=*/keeper, self_stacked_row0_,
        std::span<const Index>(halo_.send_rows),
        std::span<const std::size_t>(halo_.send_row_offsets), g_, slice_,
        halo_, CommCategory::kDense, machine(), stats, u);
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (dist::overlap_enabled()) {
      const std::span<const Real> src =
          keeper ? std::span<const Real>(u.flat()) : std::span<const Real>{};
      team_
          .ibroadcast_from(src, keeper ? std::span<Real>{} : u.flat(),
                           g_ % c_, CommCategory::kDense)
          .wait();
    } else if (keeper) {
      team_.broadcast_from(std::span<const Real>(u.flat()),
                           std::span<Real>{}, g_ % c_, CommCategory::kDense);
    } else {
      team_.broadcast_from(std::span<const Real>{}, u.flat(), g_ % c_,
                           CommCategory::kDense);
    }
    return;
  }

  // Same pays-off gate as the 1D path: the compressed reduce-scatter is
  // an all-gather of full encoded contributions, a win only when the
  // codec ratio beats the slice size.
  CompressMode rmode =
      slice_.size() > 1 ? row_compress_mode() : CompressMode::kOff;
  if (!reduce_scatter_compression_pays(rmode, u_partial_.flat().size(),
                                       slice_.size())) {
    rmode = CompressMode::kOff;
  }
  if (rmode != CompressMode::kOff) {
    // Lossy-coded slice reduce-scatter (the op times itself); the exact
    // team broadcast then replicates the keeper's decoded block, so all
    // replicas stay bitwise identical.
    if (dist::overlap_enabled()) {
      PendingCompressedReduce op = slice_.ireduce_scatter_sum_compressed(
          std::span<const Real>(u_partial_.flat()),
          keeper ? u.flat() : std::span<Real>{}, rmode, u_cbuf_,
          &stats.profiler);
      u_release_ticket_ = op.ticket();
      has_u_release_ = true;
      op.wait();
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      const std::span<const Real> src =
          keeper ? std::span<const Real>(u.flat()) : std::span<const Real>{};
      team_
          .ibroadcast_from(src, keeper ? std::span<Real>{} : u.flat(),
                           g_ % c_, CommCategory::kDense)
          .wait();
      return;
    }
    slice_.reduce_scatter_sum_compressed(
        std::span<const Real>(u_partial_.flat()),
        keeper ? u.flat() : std::span<Real>{}, rmode, u_cbuf_,
        &stats.profiler);
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (keeper) {
      team_.broadcast_from(std::span<const Real>(u.flat()),
                           std::span<Real>{}, g_ % c_, CommCategory::kDense);
    } else {
      team_.broadcast_from(std::span<const Real>{}, u.flat(), g_ % c_,
                           CommCategory::kDense);
    }
    return;
  }

  // Reduce-scatter within the slice: slice rank j' keeps U[R_j'] when
  // j' ≡ t (mod c), nothing otherwise (chunk order is ascending j, which
  // is ascending slice rank). The keeper's chunk lands directly in u.
  // Then a team broadcast from the member holding this group's block:
  // group g's reduced block landed on team member g mod c (the keeper).
  // In overlap mode both use the nonblocking forms — identical charges,
  // no trailing rendezvous (the sources' release is the quiesce above).
  if (dist::overlap_enabled()) {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    PendingOp reduce_op = slice_.ireduce_scatter_sum(
        std::span<const Real>(u_partial_.flat()),
        keeper ? u.flat() : std::span<Real>{}, CommCategory::kDense);
    u_release_ticket_ = reduce_op.ticket();
    has_u_release_ = true;
    reduce_op.wait();
    const std::span<const Real> src =
        keeper ? std::span<const Real>(u.flat()) : std::span<const Real>{};
    team_
        .ibroadcast_from(src, keeper ? std::span<Real>{} : u.flat(),
                         g_ % c_, CommCategory::kDense)
        .wait();
    return;
  }
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    slice_.reduce_scatter_sum(std::span<const Real>(u_partial_.flat()),
                              keeper ? u.flat() : std::span<Real>{},
                              CommCategory::kDense);
  }
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (keeper) {
      team_.broadcast_from(std::span<const Real>(u.flat()),
                           std::span<Real>{}, g_ % c_, CommCategory::kDense);
    } else {
      team_.broadcast_from(std::span<const Real>{}, u.flat(), g_ % c_,
                           CommCategory::kDense);
    }
  }
}

void Algebra15D::reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                  Matrix& y_full, EpochStats& stats) {
  // Rows whole: y_partial is the group's (f_in x f_out) contribution,
  // summed over groups within the slice (each slice forms the identical
  // full sum independently, keeping Y replicated without cross-team
  // traffic).
  dist::allreduce_weight_gradient(y_partial, f_in, f_out, slice_,
                                  stats.profiler, grad_pending_, y_full);
}

void Algebra15D::begin_reduce_gradients(Matrix& y_partial, Index f_in,
                                        Index f_out, Matrix& y_full,
                                        EpochStats& stats) {
  if (!dist::overlap_enabled() || slice_.size() == 1) {
    reduce_gradients(y_partial, f_in, f_out, y_full, stats);
    return;
  }
  dist::begin_allreduce_weight_gradient(y_partial, f_in, f_out, slice_,
                                        stats.profiler, grad_pending_,
                                        y_full);
}

void Algebra15D::finish_gradients(EpochStats& stats) {
  dist::finish_allreduce_weight_gradient(stats.profiler, grad_pending_);
}

Dist15D::Dist15D(const DistProblem& problem, GnnConfig config, Comm world,
                 int replication, MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra15D>(problem, std::move(world),
                                              replication, machine)) {}

}  // namespace cagnet
