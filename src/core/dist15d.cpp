#include "src/core/dist15d.hpp"

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Dist15D::Dist15D(const DistProblem& problem, GnnConfig config, Comm world,
                 int replication, MachineModel machine)
    : problem_(problem), config_(std::move(config)), world_(std::move(world)),
      machine_(machine), c_(replication) {
  const Graph& g = *problem_.graph;
  CAGNET_CHECK(config_.dims.front() == g.feature_dim(),
               "input dim must match graph features");
  CAGNET_CHECK(c_ >= 1 && world_.size() % c_ == 0,
               "replication factor must divide world size");
  groups_ = world_.size() / c_;
  t_ = world_.rank() % c_;
  g_ = world_.rank() / c_;
  team_ = world_.split(/*color=*/g_, /*key=*/t_);
  slice_ = world_.split(/*color=*/t_, /*key=*/g_);

  n_ = g.num_vertices();
  std::tie(row_lo_, row_hi_) = block_range(n_, groups_, g_);

  for (int j = t_; j < groups_; j += c_) {
    const auto [c0, c1] = block_range(n_, groups_, j);
    Csr block = problem_.at.block(row_lo_, row_hi_, c0, c1);
    a_stripe_[j] = block.transposed();
    at_stripe_[j] = std::move(block);
  }

  weights_ = make_weights(config_);
  optimizer_.emplace(config_.optimizer, config_.learning_rate, weights_);
  gradients_.resize(weights_.size());
  const auto layers = static_cast<std::size_t>(config_.num_layers());
  h_.resize(layers + 1);
  z_.resize(layers + 1);
  h_[0] = g.features.block(row_lo_, 0, row_hi_ - row_lo_, g.feature_dim());
}

const Matrix& Dist15D::forward() {
  const Index layers = config_.num_layers();
  const Index local_rows = row_hi_ - row_lo_;

  for (Index l = 1; l <= layers; ++l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];
    Matrix t_partial(local_rows, f_in);

    // Broadcast stages restricted to this slice's stripe j ≡ t (mod c):
    // the broadcast volume of the 1D algorithm divided by c.
    for (int j = t_; j < groups_; j += c_) {
      const auto [r0, r1] = block_range(n_, groups_, j);
      Matrix hj(r1 - r0, f_in);
      if (g_ == j) hj = h_[static_cast<std::size_t>(l - 1)];
      {
        ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
        slice_.broadcast(hj.flat(), j, CommCategory::kDense);
      }
      {
        ScopedPhase scope(stats_.profiler, Phase::kSpmm);
        const Csr& a = at_stripe_.at(j);
        a.spmm(hj, t_partial, /*accumulate=*/true);
        stats_.work.add_spmm(machine_, static_cast<double>(a.nnz()),
                             static_cast<double>(f_in),
                             dist::block_degree(a));
      }
    }

    // Team all-reduce completes the contraction and leaves T replicated
    // across the c team members (the 1.5D replication cost in flight).
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      team_.allreduce_sum(t_partial.flat(), CommCategory::kDense);
    }

    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    auto& z = z_[static_cast<std::size_t>(l)];
    z = Matrix(local_rows, f_out);
    gemm(Trans::kNo, Trans::kNo, Real{1}, t_partial,
         weights_[static_cast<std::size_t>(l - 1)], Real{0}, z);
    stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                       static_cast<double>(f_in) *
                                       static_cast<double>(f_out));
    auto& h = h_[static_cast<std::size_t>(l)];
    h = Matrix(local_rows, f_out);
    if (l == layers) {
      log_softmax_rows(z, h);  // rows whole: no communication (as in 1D)
    } else {
      relu(z, h);
    }
  }
  return h_[static_cast<std::size_t>(layers)];
}

void Dist15D::backward() {
  const Index layers = config_.num_layers();
  const Index local_rows = row_hi_ - row_lo_;
  const std::vector<Index>& labels = problem_.graph->labels;

  Matrix g(local_rows, config_.dims.back());
  {
    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    const Matrix& log_probs = h_[static_cast<std::size_t>(layers)];
    const Matrix dh = dist::local_nll_gradient(log_probs, row_lo_, labels,
                                               problem_.labeled_count);
    log_softmax_backward(dh, log_probs, g);
  }

  for (Index l = layers; l >= 1; --l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // Outer product restricted to this stripe: partial U over the rows
    // R_j, j ≡ t (mod c), stacked in ascending-j order.
    Index stripe_rows = 0;
    for (int j = t_; j < groups_; j += c_) {
      const auto [r0, r1] = block_range(n_, groups_, j);
      stripe_rows += r1 - r0;
    }
    Matrix u_partial(stripe_rows, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kSpmm);
      Index cursor = 0;
      for (int j = t_; j < groups_; j += c_) {
        const Csr& a = a_stripe_.at(j);
        Matrix piece(a.rows(), f_out);
        a.spmm(g, piece, /*accumulate=*/false);
        stats_.work.add_spmm(machine_, static_cast<double>(a.nnz()),
                             static_cast<double>(f_out),
                             dist::block_degree(a));
        u_partial.set_block(cursor, 0, piece);
        cursor += a.rows();
      }
    }

    // Reduce-scatter within the slice: slice rank j' keeps U[R_j'] when
    // j' ≡ t (mod c), nothing otherwise (chunk order is ascending j, which
    // is ascending slice rank).
    const bool keeper = (g_ % c_) == t_;
    const auto [my0, my1] = block_range(n_, groups_, g_);
    Matrix u_mine(keeper ? my1 - my0 : 0, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      slice_.reduce_scatter_sum(std::span<const Real>(u_partial.flat()),
                                u_mine.flat(), CommCategory::kDense);
    }
    // Team broadcast from the member holding this group's block: group g's
    // reduced block landed on team member g mod c.
    Matrix u(local_rows, f_out);
    if (keeper) u = std::move(u_mine);
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      team_.broadcast(u.flat(), g_ % c_, CommCategory::kDense);
    }

    // Y^l = (H^(l-1))^T U: local product, summed over groups within the
    // slice (each slice forms the identical full sum independently, keeping
    // Y replicated without cross-team traffic).
    auto& y = gradients_[static_cast<std::size_t>(l - 1)];
    y = Matrix(f_in, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      gemm(Trans::kYes, Trans::kNo, Real{1},
           h_[static_cast<std::size_t>(l - 1)], u, Real{0}, y);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                         static_cast<double>(f_in) *
                                         static_cast<double>(f_out));
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      slice_.allreduce_sum(y.flat(), CommCategory::kDense);
    }

    if (l > 1) {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      Matrix dh(local_rows, f_in);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u,
           weights_[static_cast<std::size_t>(l - 1)], Real{0}, dh);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                         static_cast<double>(f_in) *
                                         static_cast<double>(f_out));
      Matrix next_g(local_rows, f_in);
      relu_backward(dh, z_[static_cast<std::size_t>(l - 1)], next_g);
      g = std::move(next_g);
    }
  }
}

void Dist15D::step() {
  ScopedPhase scope(stats_.profiler, Phase::kMisc);
  optimizer_->step(weights_, gradients_);
}

EpochResult Dist15D::train_epoch() {
  const CostMeter before = world_.meter();
  stats_ = EpochStats{};

  const Matrix& log_probs = forward();
  // Team replicas hold identical rows; only team member 0 contributes.
  const Matrix empty(0, config_.dims.back());
  stats_.result = dist::reduce_loss_accuracy(
      t_ == 0 ? log_probs : empty, row_lo_, problem_.graph->labels,
      problem_.labeled_count, world_);
  backward();
  step();

  stats_.comm = world_.meter();
  stats_.comm.subtract(before);
  return stats_.result;
}

Matrix Dist15D::gather_output() {
  // Slices hold identical replicas; any slice's all-gather assembles H^L
  // (slice ranks are ordered by group, i.e. by row block).
  const Matrix& mine = h_[static_cast<std::size_t>(config_.num_layers())];
  const auto gathered = slice_.allgatherv(std::span<const Real>(mine.flat()),
                                          CommCategory::kControl);
  Matrix full(n_, config_.dims.back());
  CAGNET_CHECK(gathered.data.size() == static_cast<std::size_t>(full.size()),
               "gather_output: size mismatch");
  std::copy(gathered.data.begin(), gathered.data.end(), full.data());
  return full;
}

}  // namespace cagnet
