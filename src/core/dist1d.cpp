#include "src/core/dist1d.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace cagnet {

Algebra1D::Algebra1D(const DistProblem& problem, Comm world,
                     MachineModel machine)
    : DistSpmmAlgebra(machine), world_(std::move(world)) {
  n_ = problem.graph->num_vertices();
  const int p = world_.size();
  std::tie(row_lo_, row_hi_) = block_range(n_, p, world_.rank());

  // A^T block row, pre-split into the P column blocks of Algorithm 1.
  at_blocks_.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    const auto [c0, c1] = block_range(n_, p, j);
    at_blocks_.push_back(problem.at.block(row_lo_, row_hi_, c0, c1));
  }
  // Column block of A for the backward outer product: A(:, lo:hi) is the
  // transpose of this rank's A^T block row.
  a_col_block_ = problem.at.block(row_lo_, row_hi_, 0, n_).transposed();
}

void Algebra1D::spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) {
  const int p = world_.size();
  const Index f = h.cols();
  t.resize(local_rows(), f);
  t.set_zero();

  // Algorithm 1: for j = 1..p, broadcast H_j and accumulate A^T_ij H_j.
  // The stage root broadcasts straight from h; everyone else receives
  // into the reused stage buffer.
  for (int j = 0; j < p; ++j) {
    const auto [r0, r1] = block_range(n_, p, j);
    const Matrix* hj = nullptr;
    {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      hj = dist::broadcast_dense_stage(h, hj_recv_, r1 - r0, f, j, world_,
                                       CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats.profiler, Phase::kSpmm);
      const Csr& a = at_blocks_[static_cast<std::size_t>(j)];
      a.spmm(*hj, t, /*accumulate=*/true);
      stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                          static_cast<double>(f), dist::block_degree(a));
    }
  }
}

void Algebra1D::spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) {
  const Index f = g.cols();

  // 1D outer product: U_partial = A(:, my rows) * G_i, a full n x f
  // low-rank partial (the O(nf) intermediate of Section IV-A.3) ...
  u_partial_.resize(n_, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    a_col_block_.spmm(g, u_partial_, /*accumulate=*/false);
    stats.work.add_spmm(machine(), static_cast<double>(a_col_block_.nnz()),
                        static_cast<double>(f),
                        dist::block_degree(a_col_block_));
  }
  // ... reduce-scattered back to block rows.
  u.resize(local_rows(), f);
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    world_.reduce_scatter_sum(std::span<const Real>(u_partial_.flat()),
                              u.flat(), CommCategory::kDense);
  }
}

void Algebra1D::reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                 Matrix& y_full, EpochStats& stats) {
  // Rows whole: y_partial is already (f_in x f_out); the "small 1D outer
  // product" of Section IV-A.4 finishes with an f x f all-reduce.
  dist::allreduce_weight_gradient(y_partial, f_in, f_out, world_,
                                  stats.profiler, y_full);
}

Dist1D::Dist1D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra1D>(problem, std::move(world),
                                             machine)) {}

}  // namespace cagnet
