#include "src/core/dist1d.hpp"

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Dist1D::Dist1D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : problem_(problem), config_(std::move(config)), world_(std::move(world)),
      machine_(machine) {
  const Graph& g = *problem_.graph;
  CAGNET_CHECK(config_.dims.front() == g.feature_dim(),
               "input dim must match graph features");
  n_ = g.num_vertices();
  const int p = world_.size();
  std::tie(row_lo_, row_hi_) = block_range(n_, p, world_.rank());

  // A^T block row, pre-split into the P column blocks of Algorithm 1.
  at_blocks_.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    const auto [c0, c1] = block_range(n_, p, j);
    at_blocks_.push_back(problem_.at.block(row_lo_, row_hi_, c0, c1));
  }
  // Column block of A for the backward outer product: A(:, lo:hi) is the
  // transpose of this rank's A^T block row.
  a_col_block_ = problem_.at.block(row_lo_, row_hi_, 0, n_).transposed();

  weights_ = make_weights(config_);
  optimizer_.emplace(config_.optimizer, config_.learning_rate, weights_);
  gradients_.resize(weights_.size());
  const auto layers = static_cast<std::size_t>(config_.num_layers());
  h_.resize(layers + 1);
  z_.resize(layers + 1);
  h_[0] = g.features.block(row_lo_, 0, row_hi_ - row_lo_, g.feature_dim());
}

const Matrix& Dist1D::local_output() const {
  return h_[static_cast<std::size_t>(config_.num_layers())];
}

const Matrix& Dist1D::forward() {
  const Index layers = config_.num_layers();
  const int p = world_.size();
  const Index local_rows = row_hi_ - row_lo_;

  for (Index l = 1; l <= layers; ++l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];
    Matrix t(local_rows, f_in);

    // Algorithm 1: for j = 1..p, broadcast H_j and accumulate A^T_ij H_j.
    for (int j = 0; j < p; ++j) {
      const auto [r0, r1] = block_range(n_, p, j);
      Matrix hj(r1 - r0, f_in);
      if (world_.rank() == j) hj = h_[static_cast<std::size_t>(l - 1)];
      {
        ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
        world_.broadcast(hj.flat(), j, CommCategory::kDense);
      }
      {
        ScopedPhase scope(stats_.profiler, Phase::kSpmm);
        const Csr& a = at_blocks_[static_cast<std::size_t>(j)];
        a.spmm(hj, t, /*accumulate=*/true);
        stats_.work.add_spmm(machine_, static_cast<double>(a.nnz()),
                             static_cast<double>(f_in),
                             dist::block_degree(a));
      }
    }

    // Z_i = T_i W^l and the activation, both local.
    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    auto& z = z_[static_cast<std::size_t>(l)];
    z = Matrix(local_rows, f_out);
    gemm(Trans::kNo, Trans::kNo, Real{1}, t,
         weights_[static_cast<std::size_t>(l - 1)], Real{0}, z);
    stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                       static_cast<double>(f_in) *
                                       static_cast<double>(f_out));
    auto& h = h_[static_cast<std::size_t>(l)];
    h = Matrix(local_rows, f_out);
    if (l == layers) {
      // Rows are whole in the 1D layout, so log_softmax is local.
      log_softmax_rows(z, h);
    } else {
      relu(z, h);
    }
  }
  return h_[static_cast<std::size_t>(layers)];
}

void Dist1D::backward() {
  const Index layers = config_.num_layers();
  const Index local_rows = row_hi_ - row_lo_;
  const std::vector<Index>& labels = problem_.graph->labels;

  // G^L from the loss through log_softmax, all local rows.
  Matrix g(local_rows, config_.dims.back());
  {
    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    const Matrix& log_probs = h_[static_cast<std::size_t>(layers)];
    const Matrix dh = dist::local_nll_gradient(log_probs, row_lo_, labels,
                                               problem_.labeled_count);
    log_softmax_backward(dh, log_probs, g);
  }

  for (Index l = layers; l >= 1; --l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // 1D outer product: U_partial = A(:, my rows) * G_i, a full n x f_out
    // low-rank partial (the O(nf) intermediate of Section IV-A.3) ...
    Matrix u_partial(n_, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kSpmm);
      a_col_block_.spmm(g, u_partial, /*accumulate=*/false);
      stats_.work.add_spmm(machine_, static_cast<double>(a_col_block_.nnz()),
                           static_cast<double>(f_out),
                           dist::block_degree(a_col_block_));
    }
    // ... reduce-scattered back to block rows.
    Matrix u(local_rows, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      world_.reduce_scatter_sum(std::span<const Real>(u_partial.flat()),
                                u.flat(), CommCategory::kDense);
    }

    // Y^l = (H^(l-1))^T (A G^l): local product then f x f all-reduce
    // (the "small 1D outer product" of Section IV-A.4).
    auto& y = gradients_[static_cast<std::size_t>(l - 1)];
    y = Matrix(f_in, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      gemm(Trans::kYes, Trans::kNo, Real{1},
           h_[static_cast<std::size_t>(l - 1)], u, Real{0}, y);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                         static_cast<double>(f_in) *
                                         static_cast<double>(f_out));
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      world_.allreduce_sum(y.flat(), CommCategory::kDense);
    }

    if (l > 1) {
      // G^(l-1) = (A G^l (W^l)^T) ⊙ relu'(Z^(l-1)), all local.
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      Matrix dh(local_rows, f_in);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u,
           weights_[static_cast<std::size_t>(l - 1)], Real{0}, dh);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                         static_cast<double>(f_in) *
                                         static_cast<double>(f_out));
      Matrix next_g(local_rows, f_in);
      relu_backward(dh, z_[static_cast<std::size_t>(l - 1)], next_g);
      g = std::move(next_g);
    }
  }
}

void Dist1D::step() {
  ScopedPhase scope(stats_.profiler, Phase::kMisc);
  optimizer_->step(weights_, gradients_);
}

EpochResult Dist1D::train_epoch() {
  const CostMeter before = world_.meter();
  stats_ = EpochStats{};

  const Matrix& log_probs = forward();
  stats_.result = dist::reduce_loss_accuracy(log_probs, row_lo_,
                                             problem_.graph->labels,
                                             problem_.labeled_count, world_);
  backward();
  step();

  stats_.comm = world_.meter();
  stats_.comm.subtract(before);
  return stats_.result;
}

Matrix Dist1D::gather_output() {
  const Matrix& mine = local_output();
  const auto gathered = world_.allgatherv(
      std::span<const Real>(mine.flat()), CommCategory::kControl);
  Matrix full(n_, mine.cols());
  CAGNET_CHECK(gathered.data.size() ==
                   static_cast<std::size_t>(n_ * mine.cols()),
               "gathered output size mismatch");
  std::copy(gathered.data.begin(), gathered.data.end(), full.data());
  return full;
}

}  // namespace cagnet
