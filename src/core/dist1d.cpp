#include "src/core/dist1d.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace cagnet {

Algebra1D::Algebra1D(const DistProblem& problem, Comm world,
                     MachineModel machine)
    : DistSpmmAlgebra(machine), world_(std::move(world)) {
  n_ = problem.graph->num_vertices();
  const int p = world_.size();
  row_starts_ = dist::row_starts(problem, p);
  row_lo_ = row_starts_[static_cast<std::size_t>(world_.rank())];
  row_hi_ = row_starts_[static_cast<std::size_t>(world_.rank()) + 1];

  // A^T block row, pre-split into the P column blocks of Algorithm 1.
  at_blocks_.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    at_blocks_.push_back(problem.at.block(
        row_lo_, row_hi_, row_starts_[static_cast<std::size_t>(j)],
        row_starts_[static_cast<std::size_t>(j) + 1]));
  }
  // Column block of A for the backward outer product: A(:, lo:hi) is the
  // transpose of this rank's A^T block row.
  a_col_block_ = problem.at.block(row_lo_, row_hi_, 0, n_).transposed();

  // Halo mode: precompute, from the A^T block sparsity, exactly which
  // remote H rows this rank needs (and, via the plan's request exchange,
  // which of its rows each peer needs). Built once; replayed every layer.
  use_halo_ = dist::halo_enabled() && p > 1;
  if (use_halo_) {
    dist::build_halo_plan(
        [&](int j) { return &at_blocks_[static_cast<std::size_t>(j)]; },
        world_.rank(),
        [&](int j) { return row_starts_[static_cast<std::size_t>(j)]; },
        world_, halo_);
    // The backward contribution exchange only replaces the reduce-scatter
    // when the structural sparsity actually shrinks it; under a poor
    // partition nearly every row travels anyway and the per-row
    // pack/scatter-add loses to the reduce-scatter's contiguous sums.
    use_bwd_halo_ = dist::halo_backward_profitable(
        halo_.send_rows.size(),
        static_cast<double>(n_) * static_cast<double>(p - 1) /
            static_cast<double>(p),
        world_);
    if (dist::preagg_enabled()) {
      // Aggregation-before-communication side tables: purely local (both
      // endpoints of a pair inspect the same A^T coupling block), built
      // once next to the halo plan.
      dist::build_preagg_plan(
          problem.at,
          [&](int j) {
            return std::pair<Index, Index>(
                row_starts_[static_cast<std::size_t>(j)],
                row_starts_[static_cast<std::size_t>(j) + 1]);
          },
          row_lo_, row_hi_, world_.rank(), halo_);
    }
  }
}

void Algebra1D::begin_epoch(int epoch) {
  dist::halo_begin_epoch(epoch, use_halo_, world_, halo_);
}

void Algebra1D::spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) {
  const int p = world_.size();
  const Index f = h.cols();
  t.resize(local_rows(), f);
  t.set_zero();

  // Algorithm 1: for j = 1..p, broadcast H_j and accumulate A^T_ij H_j.
  // The stage root broadcasts straight from h; everyone else receives
  // into the reused stage buffers.
  const auto stage_rows = [&](int j) {
    return row_starts_[static_cast<std::size_t>(j) + 1] -
           row_starts_[static_cast<std::size_t>(j)];
  };
  const auto spmm_stage = [&](int j, const Matrix* hj) {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    const Csr& a = at_blocks_[static_cast<std::size_t>(j)];
    a.spmm(*hj, t, /*accumulate=*/true);
    stats.work.add_spmm(machine(), static_cast<double>(a.nnz()),
                        static_cast<double>(f), dist::block_degree(a));
  };

  if (use_halo_) {
    // IV-A.8 request-and-send, pipelined: the exchange of exactly the
    // needed remote rows (edgecut_P(A) * f words, metered as kHalo) is
    // posted, the self-block SpMM runs while remote rows are in flight,
    // and each peer's compacted stage drains its rows as they land — in
    // the same j-ascending accumulation order, so T is bitwise the
    // broadcast path's.
    dist::halo_spmm_pipeline(
        h, &at_blocks_[static_cast<std::size_t>(world_.rank())],
        world_.rank(), world_, halo_, CommCategory::kHalo, machine(), stats,
        t);
    return;
  }

  if (!dist::overlap_enabled() || p == 1) {
    for (int j = 0; j < p; ++j) {
      const Matrix* hj = nullptr;
      {
        ScopedPhase scope(stats.profiler, Phase::kDenseComm);
        hj = dist::broadcast_dense_stage(h, hj_recv_, stage_rows(j), f, j,
                                         world_, CommCategory::kDense);
      }
      spmm_stage(j, hj);
    }
    return;
  }

  // Overlapped: stage j+1's H panel is in flight while stage j's SpMM
  // accumulates. H is stable for the whole epoch, so late peer reads of
  // the final stage need no extra release point.
  dist::overlapped_dense_stages(
      p,
      [&](int j, dist::PendingDenseStage& dn, Matrix& recv) {
        dn.post(h, recv, stage_rows(j), f, j, world_, CommCategory::kDense);
      },
      spmm_stage, hj_recv_, hj_recv2_, world_.meter(), stats.work,
      machine(), stats.profiler);
}

void Algebra1D::spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) {
  const Index f = g.cols();

  if (use_halo_ && use_bwd_halo_) {
    spmm_a_halo(g, u, stats);
    return;
  }

  if (dist::overlap_enabled()) {
    // Release point for the previous layer's reduce-scatter: peers read
    // this rank's u_partial_ at their waits, and it is rewritten below.
    // Bounded to that single op — anything broader would wait on the
    // deferred gradient reductions, which peers finish only after this.
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (has_u_release_) world_.quiesce_op(u_release_ticket_);
  }
  // 1D outer product: U_partial = A(:, my rows) * G_i, a full n x f
  // low-rank partial (the O(nf) intermediate of Section IV-A.3) ...
  u_partial_.resize(n_, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    a_col_block_.spmm(g, u_partial_, /*accumulate=*/false);
    stats.work.add_spmm(machine(), static_cast<double>(a_col_block_.nnz()),
                        static_cast<double>(f),
                        dist::block_degree(a_col_block_));
  }
  // ... reduce-scattered back to block rows. The nonblocking form skips
  // the trailing rendezvous (u_partial_'s release is the quiesce above).
  u.resize(local_rows(), f);
  // The compressed reduce-scatter gathers full encoded contributions, so
  // it only pays at small worlds / high codec ratios; fall back to the
  // exact wire when coding would inflate the bytes (fp16 always, int8
  // beyond P ~ 7). The gate is rank-uniform: same (mode, n, P) everywhere.
  CompressMode rmode =
      world_.size() > 1 ? row_compress_mode() : CompressMode::kOff;
  if (!reduce_scatter_compression_pays(rmode, u_partial_.flat().size(),
                                       world_.size())) {
    rmode = CompressMode::kOff;
  }
  if (rmode != CompressMode::kOff) {
    // Lossy-coded U reduce-scatter (the op times itself). Overlap mode
    // records the release ticket exactly like the exact path; the wait
    // here only completes this rank's decode, peers drain later.
    if (dist::overlap_enabled()) {
      PendingCompressedReduce op =
          world_.ireduce_scatter_sum_compressed(
              std::span<const Real>(u_partial_.flat()), u.flat(), rmode,
              u_cbuf_, &stats.profiler);
      u_release_ticket_ = op.ticket();
      has_u_release_ = true;
      op.wait();
    } else {
      world_.reduce_scatter_sum_compressed(
          std::span<const Real>(u_partial_.flat()), u.flat(), rmode,
          u_cbuf_, &stats.profiler);
    }
    return;
  }
  {
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    if (dist::overlap_enabled()) {
      PendingOp op = world_.ireduce_scatter_sum(
          std::span<const Real>(u_partial_.flat()), u.flat(),
          CommCategory::kDense);
      u_release_ticket_ = op.ticket();
      has_u_release_ = true;
      op.wait();
    } else {
      world_.reduce_scatter_sum(std::span<const Real>(u_partial_.flat()),
                                u.flat(), CommCategory::kDense);
    }
  }
}

void Algebra1D::spmm_a_halo(const Matrix& g, Matrix& u, EpochStats& stats) {
  const Index f = g.cols();
  // Same O(nf) outer product as the broadcast path ...
  u_partial_.resize(n_, f);
  {
    ScopedPhase scope(stats.profiler, Phase::kSpmm);
    a_col_block_.spmm(g, u_partial_, /*accumulate=*/false);
    stats.work.add_spmm(machine(), static_cast<double>(a_col_block_.nnz()),
                        static_cast<double>(f),
                        dist::block_degree(a_col_block_));
  }
  // ... but only the structurally nonzero remote rows travel: the rows
  // rank i contributes to rank j are exactly the rows i *needs from* j
  // forward (A^T(rows_i, v) != 0 <=> A(v, rows_i) != 0), so the plan is
  // its own mirror — contributions pack along need-rows and land on
  // send-rows, drained and accumulated peer by peer as they arrive.
  u.resize(local_rows(), f);
  dist::halo_exchange_contributions(
      u_partial_, std::span<const Index>(halo_.need_rows_global),
      std::span<const std::size_t>(halo_.recv_row_offsets),
      /*self_partial=*/true, row_lo_,
      std::span<const Index>(halo_.send_rows),
      std::span<const std::size_t>(halo_.send_row_offsets), world_.rank(),
      world_, halo_, CommCategory::kDense, machine(), stats, u);
}

void Algebra1D::reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                 Matrix& y_full, EpochStats& stats) {
  // Rows whole: y_partial is already (f_in x f_out); the "small 1D outer
  // product" of Section IV-A.4 finishes with an f x f all-reduce.
  dist::allreduce_weight_gradient(y_partial, f_in, f_out, world_,
                                  stats.profiler, grad_pending_, y_full);
}

void Algebra1D::begin_reduce_gradients(Matrix& y_partial, Index f_in,
                                       Index f_out, Matrix& y_full,
                                       EpochStats& stats) {
  if (!dist::overlap_enabled() || world_.size() == 1) {
    reduce_gradients(y_partial, f_in, f_out, y_full, stats);
    return;
  }
  dist::begin_allreduce_weight_gradient(y_partial, f_in, f_out, world_,
                                        stats.profiler, grad_pending_,
                                        y_full);
}

void Algebra1D::finish_gradients(EpochStats& stats) {
  dist::finish_allreduce_weight_gradient(stats.profiler, grad_pending_);
}

Dist1D::Dist1D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra1D>(problem, std::move(world),
                                             machine)) {}

}  // namespace cagnet
