#include "src/core/dist_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/core/dist_sampler.hpp"
#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

void DistSpmmAlgebra::times_weight(const Matrix& t, const Matrix& w,
                                   Matrix& z, EpochStats& stats) {
  // Rows-whole default: T is (local_rows x f_in), W replicated, so Z = T W
  // is a purely local GEMM.
  ScopedPhase scope(stats.profiler, Phase::kMisc);
  z.resize(t.rows(), w.cols());
  gemm(Trans::kNo, Trans::kNo, Real{1}, t, w, Real{0}, z);
  stats.work.add_gemm(machine(), 2.0 * static_cast<double>(t.rows()) *
                                     static_cast<double>(w.rows()) *
                                     static_cast<double>(w.cols()));
}

void DistSpmmAlgebra::gather_feature_rows(const Matrix& local, Index f,
                                          Matrix& full, EpochStats& stats) {
  (void)stats;
  CAGNET_CHECK(local.cols() == f,
               "gather_feature_rows: rows-whole layout expects full width");
  full.resize(local.rows(), f);
  std::copy(local.flat().begin(), local.flat().end(), full.flat().begin());
}

Matrix DistSpmmAlgebra::gather_output(const Matrix& output_rows, Index n) {
  const auto gathered = gather_comm().allgatherv(
      std::span<const Real>(output_rows.flat()), CommCategory::kControl);
  Matrix full(n, output_rows.cols());
  CAGNET_CHECK(gathered.data.size() == static_cast<std::size_t>(full.size()),
               "gather_output: size mismatch");
  std::copy(gathered.data.begin(), gathered.data.end(), full.data());
  return full;
}

DistEngine::~DistEngine() {
  if (algebra_ == nullptr) return;
  // Peers may still be reading this engine's loss scratch (world) or the
  // algebra's broadcast sources; release both before the buffers die.
  algebra_->drain();
  dist::drain_comm(algebra_->world());
}

DistEngine::DistEngine(const DistProblem& problem, GnnConfig config,
                       std::unique_ptr<DistSpmmAlgebra> algebra)
    : problem_(problem), config_(std::move(config)),
      algebra_(std::move(algebra)) {
  const Graph& g = *problem_.graph;
  CAGNET_CHECK(algebra_ != nullptr, "engine requires an algebra");
  CAGNET_CHECK(config_.dims.front() == g.feature_dim(),
               "input dim must match graph features");

  weights_ = make_weights(config_);
  optimizer_.emplace(config_.optimizer, config_.learning_rate, weights_);
  gradients_.resize(weights_.size());
  const auto layers = static_cast<std::size_t>(config_.num_layers());
  h_.resize(layers + 1);
  z_.resize(layers + 1);
  const auto [f0, f1] = algebra_->feat_slice(config_.dims.front());
  h_[0] = g.features.block(algebra_->row_lo(), f0, algebra_->local_rows(),
                           f1 - f0);
}

void DistEngine::set_weights(const std::vector<Matrix>& weights) {
  CAGNET_CHECK(weights.size() == weights_.size(),
               "set_weights: layer count mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    CAGNET_CHECK(weights[i].rows() == weights_[i].rows() &&
                     weights[i].cols() == weights_[i].cols(),
                 "set_weights: layer shape mismatch");
    std::copy(weights[i].flat().begin(), weights[i].flat().end(),
              weights_[i].flat().begin());
  }
}

const Matrix& DistEngine::forward() {
  const Index layers = config_.num_layers();

  for (Index l = 1; l <= layers; ++l) {
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // T = A^T H^(l-1) (the algebra's distributed SpMM), then Z = T W.
    algebra_->spmm_at(h_[static_cast<std::size_t>(l - 1)], t_buf_, stats_);
    auto& z = z_[static_cast<std::size_t>(l)];
    algebra_->times_weight(t_buf_, weights_[static_cast<std::size_t>(l - 1)],
                           z, stats_);

    if (l == layers) {
      // log-softmax needs whole rows; rows-whole layouts skip the gather
      // (uniform across ranks by the algebra contract). output_rows_ is
      // the canonical final-layer activation — h_[L] is never read.
      const bool rows_whole = algebra_->rows_whole();
      if (!rows_whole) {
        algebra_->gather_feature_rows(z, f_out, zrows_buf_, stats_);
      }
      const Matrix& z_rows = rows_whole ? z : zrows_buf_;
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      output_rows_.resize(z_rows.rows(), f_out);
      log_softmax_rows(z_rows, output_rows_);
    } else {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      auto& h = h_[static_cast<std::size_t>(l)];
      h.resize(z.rows(), z.cols());
      relu(z, h);
    }
  }
  return output_rows_;
}

void DistEngine::backward() {
  const Index layers = config_.num_layers();
  const Index local_rows = algebra_->local_rows();
  const Index row_lo = algebra_->row_lo();
  const std::vector<Index>& labels = problem_.graph->labels;

  algebra_->begin_backward(stats_);

  // G^L = dL/dZ^L from the cached full-row log-probs, restricted to the
  // local feature slice. For mean-NLL upstream gradients the row sum of
  // dL/dH is -1/m for every labeled row, so the log-softmax Jacobian
  // product needs no communication in any layout.
  const Index f_last = config_.dims.back();
  const auto [fL0, fL1] = algebra_->feat_slice(f_last);
  g_buf_.resize(local_rows, fL1 - fL0);
  g_buf_.set_zero();
  {
    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    if (problem_.labeled_count > 0) {
      const Real scale =
          Real{-1} / static_cast<Real>(problem_.labeled_count);
      for (Index r = 0; r < local_rows; ++r) {
        const Index label = labels[static_cast<std::size_t>(row_lo + r)];
        if (label < 0) continue;
        for (Index c = 0; c < fL1 - fL0; ++c) {
          g_buf_(r, c) = -std::exp(output_rows_(r, fL0 + c)) * scale;
        }
        if (label >= fL0 && label < fL1) g_buf_(r, label - fL0) += scale;
      }
    }
  }

  for (Index l = layers; l >= 1; --l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // U = A G^l (the algebra's transposed distributed SpMM), with full rows
    // assembled once and reused by both Y^l and G^(l-1) — the paper's
    // intermediate-product reuse. Rows-whole layouts already hold full
    // rows and skip the gather (uniform by the algebra contract).
    algebra_->spmm_a(g_buf_, u_buf_, stats_);
    if (!algebra_->rows_whole()) {
      algebra_->gather_feature_rows(u_buf_, f_out, u_rows_buf_, stats_);
    }
    const Matrix& u_rows = algebra_->rows_whole() ? u_buf_ : u_rows_buf_;

    // Y^l = (H^(l-1))^T (A G^l): local slice product, completed into the
    // replicated gradient by the algebra's reductions.
    const auto [fi0, fi1] = algebra_->feat_slice(f_in);
    {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      y_buf_.resize(fi1 - fi0, f_out);
      gemm(Trans::kYes, Trans::kNo, Real{1},
           h_[static_cast<std::size_t>(l - 1)], u_rows, Real{0}, y_buf_);
      stats_.work.add_gemm(algebra_->machine(),
                           2.0 * static_cast<double>(local_rows) *
                               static_cast<double>(fi1 - fi0) *
                               static_cast<double>(f_out));
    }
    algebra_->begin_reduce_gradients(
        y_buf_, f_in, f_out, gradients_[static_cast<std::size_t>(l - 1)],
        stats_);

    if (l > 1) {
      // G^(l-1) = (U (W^l)^T) ⊙ relu'(Z^(l-1)); only the local feature
      // slice of W's rows participates.
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      const Matrix& w = weights_[static_cast<std::size_t>(l - 1)];
      dh_buf_.resize(local_rows, fi1 - fi0);
      if (fi0 == 0 && fi1 == f_in) {
        gemm(Trans::kNo, Trans::kYes, Real{1}, u_rows, w, Real{0}, dh_buf_);
      } else {
        w.block_into(fi0, 0, fi1 - fi0, f_out, w_rows_buf_);
        gemm(Trans::kNo, Trans::kYes, Real{1}, u_rows, w_rows_buf_, Real{0},
             dh_buf_);
      }
      stats_.work.add_gemm(algebra_->machine(),
                           2.0 * static_cast<double>(local_rows) *
                               static_cast<double>(fi1 - fi0) *
                               static_cast<double>(f_out));
      g_next_buf_.resize(local_rows, fi1 - fi0);
      relu_backward(dh_buf_, z_[static_cast<std::size_t>(l - 1)],
                    g_next_buf_);
      std::swap(g_buf_, g_next_buf_);
    }
  }

  algebra_->end_backward(stats_);
  // Deferred (overlap-mode) gradient reductions complete here, having
  // flown behind the backward recurrence; the optimizer step needs them.
  algebra_->finish_gradients(stats_);
}

void DistEngine::step() {
  ScopedPhase scope(stats_.profiler, Phase::kMisc);
  optimizer_->step(weights_, gradients_);
}

void DistEngine::set_start_epoch(int epoch) { epoch_ = epoch; }

EpochResult DistEngine::train_epoch_sampled() {
  Comm* sample = algebra_->sample_comm();
  CAGNET_CHECK(sample != nullptr,
               std::string("sampled training requires a row-partitioned "
                           "algebra exposing sample_comm(); '") +
                   algebra_->name() + "' does not support CAGNET_SAMPLE");
  if (sampler_ == nullptr) {
    MiniBatchOptions options;
    options.fanouts = dist::sample_fanouts();
    options.batch_size = dist::sample_batch_size();
    sampler_ = std::make_unique<dist::SampledRunner>(
        problem_, config_, *algebra_, *sample, std::move(options));
  }
  Comm& world = algebra_->world();
  const CostMeter before = world.meter();
  stats_ = EpochStats{};
  stats_.result = sampler_->run_epoch(epoch_, h_[0], weights_, gradients_,
                                      *optimizer_, stats_);
  ++epoch_;
  stats_.comm = world.meter();
  stats_.comm.subtract(before);
  return stats_.result;
}

EpochResult DistEngine::train_epoch() {
  if (dist::sample_enabled()) return train_epoch_sampled();
  Comm& world = algebra_->world();
  const CostMeter before = world.meter();
  stats_ = EpochStats{};

  const bool overlap = dist::overlap_enabled() && world.size() > 1;
  if (overlap) {
    // Release point for the previous epoch's nonblocking loss reduction:
    // peers read this rank's loss scratch at their waits, and it is
    // rewritten below. A handful of atomic loads when already drained.
    world.quiesce();
  }

  // Arm the algebra's adaptive-rate state (bounded-staleness halo
  // refresh) for this epoch. No-op unless CAGNET_STALE selects a lossy
  // mode; collective in adaptive mode, so it runs in lockstep here.
  algebra_->begin_epoch(epoch_);

  forward();
  // Replicas hold identical output rows; only the primary copies
  // contribute loss terms to the global reduction.
  const Matrix empty(0, config_.dims.back());
  stats_.result = dist::reduce_loss_accuracy(
      algebra_->owns_loss_rows() ? output_rows_ : empty, algebra_->row_lo(),
      problem_.graph->labels, problem_.labeled_count, world,
      overlap ? &loss_scratch_ : nullptr);
  backward();
  step();

  stats_.comm = world.meter();
  stats_.comm.subtract(before);
  ++epoch_;
  return stats_.result;
}

EpochStats DistEngine::reduce_epoch_stats() const {
  return EpochStats::reduce_max(stats_, algebra_->world());
}

Matrix DistEngine::gather_output() {
  if (dist::sample_enabled()) {
    // Sampled epochs never materialize the full-graph output; inference
    // runs one full-batch forward with the current weights first — with
    // the staleness machinery disarmed (inference is exact; the cache
    // slots belong to the training epochs' layer sequence).
    algebra_->begin_epoch(-1);
    forward();
  }
  Matrix full =
      algebra_->gather_output(output_rows_, problem_.graph->num_vertices());
  if (problem_.perm.empty()) return full;
  // Partition-aware runs train on the permuted problem; hand callers the
  // original vertex order back (permuted row r is original vertex
  // perm[r]).
  Matrix original(full.rows(), full.cols());
  for (Index r = 0; r < full.rows(); ++r) {
    const Index v = problem_.perm[static_cast<std::size_t>(r)];
    std::copy(full.row(r).begin(), full.row(r).end(),
              original.row(v).begin());
  }
  return original;
}

}  // namespace cagnet
