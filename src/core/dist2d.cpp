#include "src/core/dist2d.hpp"

#include <cmath>

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Dist2D::Dist2D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : problem_(problem), config_(std::move(config)),
      grid_(Grid2D::create_square(world)), machine_(machine) {
  const Graph& g = *problem_.graph;
  CAGNET_CHECK(config_.dims.front() == g.feature_dim(),
               "input dim must match graph features");
  n_ = g.num_vertices();
  const int q = grid_.pr;
  std::tie(row_lo_, row_hi_) = block_range(n_, q, grid_.i);
  std::tie(col_lo_, col_hi_) = block_range(n_, q, grid_.j);

  at_block_ = problem_.at.block(row_lo_, row_hi_, col_lo_, col_hi_);

  weights_ = make_weights(config_);
  optimizer_.emplace(config_.optimizer, config_.learning_rate, weights_);
  gradients_.resize(weights_.size());
  const auto layers = static_cast<std::size_t>(config_.num_layers());
  h_.resize(layers + 1);
  z_.resize(layers + 1);
  const auto [f0, f1] = feat_range(0);
  h_[0] = g.features.block(row_lo_, f0, row_hi_ - row_lo_, f1 - f0);
}

std::pair<Index, Index> Dist2D::feat_range(Index l) const {
  return block_range(config_.dims[static_cast<std::size_t>(l)], grid_.pc,
                     grid_.j);
}

Matrix Dist2D::summa_spmm(const Csr& my_sparse, const Matrix& my_dense) {
  const int q = grid_.pr;
  const Index local_rows = row_hi_ - row_lo_;
  Matrix t(local_rows, my_dense.cols());

  for (int k = 0; k < q; ++k) {
    // Stage k: A-block (i,k) travels along process row i; dense block
    // (k,j) travels along process column j.
    Csr a_recv;
    {
      ScopedPhase scope(stats_.profiler, Phase::kSparseComm);
      a_recv = dist::broadcast_csr(grid_.j == k ? &my_sparse : nullptr, k,
                                   grid_.row, CommCategory::kSparse);
    }
    const auto [k_lo, k_hi] = block_range(n_, q, k);
    Matrix d_recv(k_hi - k_lo, my_dense.cols());
    if (grid_.i == k) {
      CAGNET_CHECK(my_dense.rows() == d_recv.rows(),
                   "summa_spmm: dense block height mismatch at root");
      d_recv = my_dense;
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      grid_.col.broadcast(d_recv.flat(), k, CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kSpmm);
      a_recv.spmm(d_recv, t, /*accumulate=*/true);
      stats_.work.add_spmm(machine_, static_cast<double>(a_recv.nnz()),
                           static_cast<double>(my_dense.cols()),
                           dist::block_degree(a_recv));
    }
  }
  return t;
}

Matrix Dist2D::allgather_rows(const Matrix& local, Index full_cols) {
  const int q = grid_.pc;
  Gathered<Real> gathered;
  {
    ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
    gathered = grid_.row.allgatherv(std::span<const Real>(local.flat()),
                                    CommCategory::kDense);
  }
  Matrix full(local.rows(), full_cols);
  for (int jj = 0; jj < q; ++jj) {
    const auto [c0, c1] = block_range(full_cols, q, jj);
    const auto chunk = gathered.chunk(jj);
    CAGNET_CHECK(chunk.size() == static_cast<std::size_t>(local.rows() *
                                                          (c1 - c0)),
                 "allgather_rows: chunk size mismatch");
    for (Index r = 0; r < local.rows(); ++r) {
      std::copy(chunk.begin() + r * (c1 - c0),
                chunk.begin() + (r + 1) * (c1 - c0),
                full.data() + r * full_cols + c0);
    }
  }
  return full;
}

const Matrix& Dist2D::forward() {
  const Index layers = config_.num_layers();
  const int q = grid_.pr;
  const Index local_rows = row_hi_ - row_lo_;

  for (Index l = 1; l <= layers; ++l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // First SUMMA phase: T = A^T H^(l-1), 2D-partitioned like H.
    const Matrix t = summa_spmm(at_block_, h_[static_cast<std::size_t>(l - 1)]);

    // Second ("partial SUMMA") phase: Z = T W. W is replicated, so only T
    // moves, along the process row.
    const auto [fo0, fo1] = block_range(f_out, q, grid_.j);
    auto& z = z_[static_cast<std::size_t>(l)];
    z = Matrix(local_rows, fo1 - fo0);
    const Matrix& w = weights_[static_cast<std::size_t>(l - 1)];
    for (int m = 0; m < q; ++m) {
      const auto [fm0, fm1] = block_range(f_in, q, m);
      Matrix t_recv(local_rows, fm1 - fm0);
      if (grid_.j == m) t_recv = t;
      {
        ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
        grid_.row.broadcast(t_recv.flat(), m, CommCategory::kDense);
      }
      {
        ScopedPhase scope(stats_.profiler, Phase::kMisc);
        const Matrix w_block = w.block(fm0, fo0, fm1 - fm0, fo1 - fo0);
        gemm(Trans::kNo, Trans::kNo, Real{1}, t_recv, w_block, Real{1}, z);
        stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                           static_cast<double>(fm1 - fm0) *
                                           static_cast<double>(fo1 - fo0));
      }
    }

    auto& h = h_[static_cast<std::size_t>(l)];
    if (l == layers) {
      // log_softmax needs whole rows: all-gather Z along the process row,
      // apply the activation, keep the local column slice (IV-C.2).
      const Matrix z_rows = allgather_rows(z, f_out);
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      output_rows_ = Matrix(local_rows, f_out);
      log_softmax_rows(z_rows, output_rows_);
      h = output_rows_.block(0, fo0, local_rows, fo1 - fo0);
    } else {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      h = Matrix(z.rows(), z.cols());
      relu(z, h);
    }
  }
  return h_[static_cast<std::size_t>(layers)];
}

void Dist2D::backward() {
  const Index layers = config_.num_layers();
  const int q = grid_.pr;
  const Index local_rows = row_hi_ - row_lo_;
  const std::vector<Index>& labels = problem_.graph->labels;
  const int transpose_peer = grid_.j * q + grid_.i;

  // Distributed transpose A^T -> A: swap blocks across the diagonal and
  // transpose locally (the paper's "trpose" phase).
  Csr a_block;
  {
    ScopedPhase scope(stats_.profiler, Phase::kTranspose);
    a_block = dist::exchange_csr(at_block_, transpose_peer, grid_.world,
                                 CommCategory::kTranspose)
                  .transposed();
  }

  // G^L = dL/dZ^L: local, using the full-row log-probs kept from forward.
  // For mean-NLL upstream gradients the row sum of dL/dH is -1/m for every
  // labeled row, so the log-softmax Jacobian product needs no communication.
  const auto [fL0, fL1] = feat_range(layers);
  Matrix g(local_rows, fL1 - fL0);
  {
    ScopedPhase scope(stats_.profiler, Phase::kMisc);
    const Matrix& ls = h_[static_cast<std::size_t>(layers)];
    const Real scale = Real{-1} / static_cast<Real>(problem_.labeled_count);
    for (Index r = 0; r < local_rows; ++r) {
      const Index label = labels[static_cast<std::size_t>(row_lo_ + r)];
      if (label < 0) continue;
      for (Index c = 0; c < fL1 - fL0; ++c) {
        g(r, c) = -std::exp(ls(r, c)) * scale;
      }
      if (label >= fL0 && label < fL1) g(r, label - fL0) += scale;
    }
  }

  for (Index l = layers; l >= 1; --l) {
    const Index f_in = config_.dims[static_cast<std::size_t>(l - 1)];
    const Index f_out = config_.dims[static_cast<std::size_t>(l)];

    // U = A G^l by SUMMA SpMM (same pattern as forward's first phase).
    const Matrix u = summa_spmm(a_block, g);

    // Row-wise all-gather of U: reused by both Y^l and G^(l-1), the
    // paper's intermediate-product reuse (IV-C.4).
    const Matrix u_rows = allgather_rows(u, f_out);

    // Y^l = (H^(l-1))^T (A G^l): local slice product, column reduction,
    // then row all-gather to keep Y fully replicated.
    const auto [fi0, fi1] = block_range(f_in, q, grid_.j);
    Matrix y_slice(fi1 - fi0, f_out);
    {
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      gemm(Trans::kYes, Trans::kNo, Real{1},
           h_[static_cast<std::size_t>(l - 1)], u_rows, Real{0}, y_slice);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                         static_cast<double>(fi1 - fi0) *
                                         static_cast<double>(f_out));
    }
    {
      ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
      grid_.col.allreduce_sum(y_slice.flat(), CommCategory::kDense);
    }
    auto& y = gradients_[static_cast<std::size_t>(l - 1)];
    y = Matrix(f_in, f_out);
    {
      Gathered<Real> slices;
      {
        ScopedPhase scope(stats_.profiler, Phase::kDenseComm);
        slices = grid_.row.allgatherv(std::span<const Real>(y_slice.flat()),
                                      CommCategory::kDense);
      }
      for (int jj = 0; jj < q; ++jj) {
        const auto [r0, r1] = block_range(f_in, q, jj);
        const auto chunk = slices.chunk(jj);
        CAGNET_CHECK(chunk.size() ==
                         static_cast<std::size_t>((r1 - r0) * f_out),
                     "Y assembly: slice size mismatch");
        std::copy(chunk.begin(), chunk.end(), y.data() + r0 * f_out);
      }
    }

    if (l > 1) {
      // G^(l-1) = (U (W^l)^T) ⊙ relu'(Z^(l-1)); U's full rows are in hand.
      ScopedPhase scope(stats_.profiler, Phase::kMisc);
      const Matrix& w = weights_[static_cast<std::size_t>(l - 1)];
      const Matrix w_rows = w.block(fi0, 0, fi1 - fi0, f_out);
      Matrix dh(local_rows, fi1 - fi0);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u_rows, w_rows, Real{0}, dh);
      stats_.work.add_gemm(machine_, 2.0 * static_cast<double>(local_rows) *
                                         static_cast<double>(fi1 - fi0) *
                                         static_cast<double>(f_out));
      Matrix next_g(local_rows, fi1 - fi0);
      relu_backward(dh, z_[static_cast<std::size_t>(l - 1)], next_g);
      g = std::move(next_g);
    }
  }

  // Transpose back (A -> A^T), restoring the forward orientation; together
  // with the transpose above this is the paper's twice-per-epoch cost.
  {
    ScopedPhase scope(stats_.profiler, Phase::kTranspose);
    const Csr restored = dist::exchange_csr(a_block, transpose_peer,
                                            grid_.world,
                                            CommCategory::kTranspose)
                             .transposed();
    CAGNET_CHECK(restored.nnz() == at_block_.nnz(),
                 "transpose round-trip changed the block");
  }
}

void Dist2D::step() {
  ScopedPhase scope(stats_.profiler, Phase::kMisc);
  optimizer_->step(weights_, gradients_);
}

EpochResult Dist2D::train_epoch() {
  const CostMeter before = grid_.world.meter();
  stats_ = EpochStats{};

  forward();
  // Only the j == 0 column contributes loss terms (each process row holds
  // replicated full output rows after the softmax all-gather).
  const Index f_out = config_.dims.back();
  const Matrix empty(0, f_out);
  stats_.result = dist::reduce_loss_accuracy(
      grid_.j == 0 ? output_rows_ : empty, row_lo_, problem_.graph->labels,
      problem_.labeled_count, grid_.world);
  backward();
  step();

  stats_.comm = grid_.world.meter();
  stats_.comm.subtract(before);
  return stats_.result;
}

Matrix Dist2D::gather_output() {
  // Column communicator spans one process per row block (rank order = i),
  // so gathering full-row outputs along it assembles H^L everywhere.
  const auto gathered = grid_.col.allgatherv(
      std::span<const Real>(output_rows_.flat()), CommCategory::kControl);
  Matrix full(n_, config_.dims.back());
  CAGNET_CHECK(gathered.data.size() == static_cast<std::size_t>(full.size()),
               "gather_output: size mismatch");
  std::copy(gathered.data.begin(), gathered.data.end(), full.data());
  return full;
}

}  // namespace cagnet
