#include "src/core/dist2d.hpp"

#include "src/util/error.hpp"

namespace cagnet {

Algebra2D::Algebra2D(const DistProblem& problem, Comm world,
                     MachineModel machine)
    : DistSpmmAlgebra(machine), grid_(Grid2D::create_square(world)) {
  n_ = problem.graph->num_vertices();
  const int q = grid_.pr;
  std::tie(row_lo_, row_hi_) = block_range(n_, q, grid_.i);
  std::tie(col_lo_, col_hi_) = block_range(n_, q, grid_.j);

  at_block_ = problem.at.block(row_lo_, row_hi_, col_lo_, col_hi_);
}

void Algebra2D::summa_spmm(const Csr& my_sparse,
                           dist::SparseStageCache& cache,
                           const Matrix& my_dense, Matrix& t,
                           EpochStats& stats) {
  // Stage k: A-block (i,k) travels along process row i; dense block (k,j)
  // travels along process column j. The shared loop double-buffers both
  // when overlap is enabled (stage k+1 in flight behind stage k's SpMM)
  // and replays the cached sparse charges in cached epochs.
  const int q = grid_.pr;
  if (dist::overlap_enabled()) {
    // Release point for this rank's earlier row-comm sources (partial-
    // SUMMA T panels, feature-row gathers): their readers drained a whole
    // layer ago, and `t` (their backing buffer in the forward pass) is
    // rewritten below.
    ScopedPhase scope(stats.profiler, Phase::kDenseComm);
    grid_.row.quiesce();
  }
  t.resize(local_rows(), my_dense.cols());
  t.set_zero();
  dist::summa_stage_loop(
      my_sparse, cache, grid_.row, my_dense, grid_.col,
      [&](int k) {
        const auto [k_lo, k_hi] = block_range(n_, q, k);
        return k_hi - k_lo;
      },
      q, t, machine(), stats, ws_);
}

void Algebra2D::spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) {
  summa_spmm(at_block_, at_cache_, h, t, stats);
}

void Algebra2D::spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) {
  CAGNET_CHECK(a_block_.rows() > 0 || local_rows() == 0,
               "spmm_a outside begin_backward/end_backward");
  summa_spmm(a_block_, a_cache_, g, u, stats);
}

void Algebra2D::times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                             EpochStats& stats) {
  // "Partial SUMMA" Z = T W: W is replicated, so only T moves, along the
  // process row.
  dist::partial_summa_times_weight(t, w, grid_.pr, grid_.j, grid_.row,
                                   machine(), stats, ws_, z);
}

void Algebra2D::gather_feature_rows(const Matrix& local, Index f,
                                    Matrix& full, EpochStats& stats) {
  dist::allgather_feature_rows(local, f, grid_.pc, grid_.row,
                               stats.profiler, ws_, full);
}

void Algebra2D::reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                                 Matrix& y_full, EpochStats& stats) {
  // Column-wise reduction of the slice partials, then row all-gather to
  // keep Y fully replicated (IV-C.4).
  dist::assemble_weight_gradient(y_partial, f_in, f_out, grid_.pc, grid_.col,
                                 grid_.row, stats.profiler, ws_,
                                 grad_pending_, y_full);
}

void Algebra2D::begin_reduce_gradients(Matrix& y_partial, Index f_in,
                                       Index f_out, Matrix& y_full,
                                       EpochStats& stats) {
  if (!dist::overlap_enabled()) {
    reduce_gradients(y_partial, f_in, f_out, y_full, stats);
    return;
  }
  dist::begin_assemble_weight_gradient(y_partial, f_in, f_out, grid_.col,
                                       stats.profiler, grad_pending_,
                                       y_full);
}

void Algebra2D::finish_gradients(EpochStats& stats) {
  dist::finish_assemble_weight_gradient(grid_.pc, grid_.row,
                                        stats.profiler, grad_pending_);
}

void Algebra2D::begin_backward(EpochStats& stats) {
  ScopedPhase scope(stats.profiler, Phase::kTranspose);
  if (trpose_cache_.ready && dist::epoch_cache_enabled()) {
    // a_block_ is still materialized from epoch 1; replay the charges.
    grid_.world.meter().merge_sum(trpose_cache_.begin_charges);
    return;
  }
  const int transpose_peer = grid_.j * grid_.pr + grid_.i;
  CostMeter before = grid_.world.meter();
  a_block_ = dist::exchange_csr(at_block_, transpose_peer, grid_.world,
                                CommCategory::kTranspose)
                 .transposed();
  trpose_cache_.begin_charges = grid_.world.meter();
  trpose_cache_.begin_charges.subtract(before);
}

void Algebra2D::end_backward(EpochStats& stats) {
  // Transpose back (A -> A^T), restoring the forward orientation; together
  // with begin_backward this is the paper's twice-per-epoch cost.
  ScopedPhase scope(stats.profiler, Phase::kTranspose);
  if (trpose_cache_.ready && dist::epoch_cache_enabled()) {
    grid_.world.meter().merge_sum(trpose_cache_.end_charges);
    return;
  }
  const int transpose_peer = grid_.j * grid_.pr + grid_.i;
  CostMeter before = grid_.world.meter();
  const Csr restored = dist::exchange_csr(a_block_, transpose_peer,
                                          grid_.world,
                                          CommCategory::kTranspose)
                           .transposed();
  CAGNET_CHECK(restored.nnz() == at_block_.nnz(),
               "transpose round-trip changed the block");
  trpose_cache_.end_charges = grid_.world.meter();
  trpose_cache_.end_charges.subtract(before);
  if (dist::epoch_cache_enabled()) {
    trpose_cache_.ready = true;  // keep a_block_ for the next epoch
  } else {
    a_block_ = Csr();
  }
}

Dist2D::Dist2D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra2D>(problem, std::move(world),
                                             machine)) {}

}  // namespace cagnet
