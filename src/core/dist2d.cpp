#include "src/core/dist2d.hpp"

#include "src/util/error.hpp"

namespace cagnet {

Algebra2D::Algebra2D(const DistProblem& problem, Comm world,
                     MachineModel machine)
    : DistSpmmAlgebra(machine), grid_(Grid2D::create_square(world)) {
  n_ = problem.graph->num_vertices();
  const int q = grid_.pr;
  std::tie(row_lo_, row_hi_) = block_range(n_, q, grid_.i);
  std::tie(col_lo_, col_hi_) = block_range(n_, q, grid_.j);

  at_block_ = problem.at.block(row_lo_, row_hi_, col_lo_, col_hi_);
}

Matrix Algebra2D::summa_spmm(const Csr& my_sparse, const Matrix& my_dense,
                             EpochStats& stats) {
  const int q = grid_.pr;
  Matrix t(local_rows(), my_dense.cols());

  for (int k = 0; k < q; ++k) {
    // Stage k: A-block (i,k) travels along process row i; dense block
    // (k,j) travels along process column j.
    Csr a_recv;
    {
      ScopedPhase scope(stats.profiler, Phase::kSparseComm);
      a_recv = dist::broadcast_csr(grid_.j == k ? &my_sparse : nullptr, k,
                                   grid_.row, CommCategory::kSparse);
    }
    const auto [k_lo, k_hi] = block_range(n_, q, k);
    Matrix d_recv(k_hi - k_lo, my_dense.cols());
    if (grid_.i == k) {
      CAGNET_CHECK(my_dense.rows() == d_recv.rows(),
                   "summa_spmm: dense block height mismatch at root");
      d_recv = my_dense;
    }
    {
      ScopedPhase scope(stats.profiler, Phase::kDenseComm);
      grid_.col.broadcast(d_recv.flat(), k, CommCategory::kDense);
    }
    {
      ScopedPhase scope(stats.profiler, Phase::kSpmm);
      a_recv.spmm(d_recv, t, /*accumulate=*/true);
      stats.work.add_spmm(machine(), static_cast<double>(a_recv.nnz()),
                          static_cast<double>(my_dense.cols()),
                          dist::block_degree(a_recv));
    }
  }
  return t;
}

Matrix Algebra2D::spmm_at(const Matrix& h, EpochStats& stats) {
  return summa_spmm(at_block_, h, stats);
}

Matrix Algebra2D::spmm_a(const Matrix& g, EpochStats& stats) {
  CAGNET_CHECK(a_block_.rows() > 0 || local_rows() == 0,
               "spmm_a outside begin_backward/end_backward");
  return summa_spmm(a_block_, g, stats);
}

Matrix Algebra2D::times_weight(const Matrix& t, const Matrix& w,
                               EpochStats& stats) {
  // "Partial SUMMA" Z = T W: W is replicated, so only T moves, along the
  // process row.
  return dist::partial_summa_times_weight(t, w, grid_.pr, grid_.j, grid_.row,
                                          machine(), stats);
}

Matrix Algebra2D::gather_feature_rows(const Matrix& local, Index f,
                                      EpochStats& stats) {
  return dist::allgather_feature_rows(local, f, grid_.pc, grid_.row,
                                      stats.profiler);
}

Matrix Algebra2D::reduce_gradients(Matrix y_local, Index f_in, Index f_out,
                                   EpochStats& stats) {
  // Column-wise reduction of the slice partials, then row all-gather to
  // keep Y fully replicated (IV-C.4).
  return dist::assemble_weight_gradient(std::move(y_local), f_in, f_out,
                                        grid_.pc, grid_.col, grid_.row,
                                        stats.profiler);
}

void Algebra2D::begin_backward(EpochStats& stats) {
  const int transpose_peer = grid_.j * grid_.pr + grid_.i;
  ScopedPhase scope(stats.profiler, Phase::kTranspose);
  a_block_ = dist::exchange_csr(at_block_, transpose_peer, grid_.world,
                                CommCategory::kTranspose)
                 .transposed();
}

void Algebra2D::end_backward(EpochStats& stats) {
  // Transpose back (A -> A^T), restoring the forward orientation; together
  // with begin_backward this is the paper's twice-per-epoch cost.
  const int transpose_peer = grid_.j * grid_.pr + grid_.i;
  ScopedPhase scope(stats.profiler, Phase::kTranspose);
  const Csr restored = dist::exchange_csr(a_block_, transpose_peer,
                                          grid_.world,
                                          CommCategory::kTranspose)
                           .transposed();
  CAGNET_CHECK(restored.nnz() == at_block_.nnz(),
               "transpose round-trip changed the block");
  a_block_ = Csr();
}

Dist2D::Dist2D(const DistProblem& problem, GnnConfig config, Comm world,
               MachineModel machine)
    : DistEngine(problem, std::move(config),
                 std::make_unique<Algebra2D>(problem, std::move(world),
                                             machine)) {}

}  // namespace cagnet
