// The paper's block 2D (SUMMA-based) algorithm: Section IV-C, Algorithm 2.
// This is the variant CAGNET implements and evaluates (Figs. 2-3).
//
// Data distribution (Table IV): A, H^l, G^l block-2D on a sqrt(P) x sqrt(P)
// grid; W replicated. Per layer:
//
//   forward  T = A^T H     : SUMMA SpMM — stage k broadcasts A^T_ik along
//                            process row i (sparse) and H_kj along process
//                            column j (dense).
//            Z = T W       : "partial SUMMA" — T_im broadcast along the
//                            process row; W is replicated so only T moves.
//            sigma         : ReLU is elementwise (free); the output-layer
//                            log_softmax needs full rows, hence a row-wise
//                            all-gather (Section IV-C.2).
//   backward U = A G^l     : SUMMA SpMM on the transposed adjacency. A is
//                            obtained from A^T by a distributed transpose
//                            (pairwise exchange (i,j) <-> (j,i) + local
//                            transpose) — the paper's "trpose" phase.
//            G^(l-1)       : U (W^l)^T ⊙ relu'(Z^(l-1)); U is re-used from
//                            the row-wise all-gather performed for Y.
//            Y^l           : (H^(l-1))^T (A G^l) via row all-gather of U,
//                            local GEMM, column-wise reduction, and final
//                            all-gather to keep Y replicated (IV-C.4).
#pragma once

#include <optional>

#include "src/core/dist_common.hpp"
#include "src/gnn/optimizer.hpp"

namespace cagnet {

class Dist2D final : public DistTrainer {
 public:
  /// Collective constructor; world size must be a perfect square.
  Dist2D(const DistProblem& problem, GnnConfig config, Comm world,
         MachineModel machine = MachineModel::summit());

  EpochResult train_epoch() override;
  const EpochStats& last_epoch_stats() const override { return stats_; }
  Matrix gather_output() override;
  const std::vector<Matrix>& weights() const override { return weights_; }

  /// Grid coordinates and local ranges (for tests).
  int grid_dim() const { return grid_.pr; }
  Index row_lo() const { return row_lo_; }
  Index row_hi() const { return row_hi_; }

 private:
  const Matrix& forward();
  void backward();
  void step();

  /// Column range of layer-l features owned by this process column.
  std::pair<Index, Index> feat_range(Index l) const;

  /// SUMMA T = S * D where S is this rank's sparse block family (row
  /// broadcasts of `my_sparse`) and D the dense blocks (column broadcasts
  /// of `my_dense`); accumulates into a fresh (local_rows x dense_cols)
  /// matrix. Used by both A^T H (forward) and A G (backward).
  Matrix summa_spmm(const Csr& my_sparse, const Matrix& my_dense);

  /// Row-wise all-gather of a local block into full rows
  /// (local_rows x full_cols); `full_cols` is the sum of widths over the
  /// process row. Charges kDense.
  Matrix allgather_rows(const Matrix& local, Index full_cols);

  const DistProblem& problem_;
  GnnConfig config_;
  Grid2D grid_;
  MachineModel machine_;

  Index n_ = 0;
  Index row_lo_ = 0, row_hi_ = 0;  ///< vertex rows of process row i
  Index col_lo_ = 0, col_hi_ = 0;  ///< vertex cols of process column j

  Csr at_block_;  ///< A^T(rows_i, cols_j)

  std::optional<Optimizer> optimizer_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> gradients_;
  std::vector<Matrix> h_;  ///< local 2D blocks of H^l
  std::vector<Matrix> z_;  ///< local 2D blocks of Z^l
  Matrix output_rows_;     ///< full rows of H^L (from the softmax all-gather)

  EpochStats stats_;
};

}  // namespace cagnet
