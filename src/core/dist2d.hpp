// The paper's block 2D (SUMMA-based) algorithm: Section IV-C, Algorithm 2.
// This is the variant CAGNET implements and evaluates (Figs. 2-3).
//
// Data distribution (Table IV): A, H^l, G^l block-2D on a sqrt(P) x sqrt(P)
// grid; W replicated. Per layer:
//
//   forward  T = A^T H     : SUMMA SpMM — stage k broadcasts A^T_ik along
//                            process row i (sparse) and H_kj along process
//                            column j (dense).
//            Z = T W       : "partial SUMMA" — T_im broadcast along the
//                            process row; W is replicated so only T moves.
//            sigma         : ReLU is elementwise (free); the output-layer
//                            log_softmax needs full rows, hence a row-wise
//                            all-gather (Section IV-C.2).
//   backward U = A G^l     : SUMMA SpMM on the transposed adjacency. A is
//                            obtained from A^T by a distributed transpose
//                            (pairwise exchange (i,j) <-> (j,i) + local
//                            transpose) — the paper's "trpose" phase.
//            G^(l-1)       : U (W^l)^T ⊙ relu'(Z^(l-1)); U is re-used from
//                            the row-wise all-gather performed for Y.
//            Y^l           : (H^(l-1))^T (A G^l) via row all-gather of U,
//                            local GEMM, column-wise reduction, and final
//                            all-gather to keep Y replicated (IV-C.4).
//
// Only the distributed algebra lives here; the training loop itself is the
// shared DistEngine (see dist_engine.hpp).
#pragma once

#include <memory>

#include "src/core/dist_engine.hpp"

namespace cagnet {

/// Block-2D SUMMA algebra: both vertex rows and feature columns are
/// partitioned, so it overrides the feature-dimension hooks
/// (times_weight, gather_feature_rows) with their SUMMA realizations.
class Algebra2D final : public DistSpmmAlgebra {
 public:
  /// Collective constructor; world size must be a perfect square.
  Algebra2D(const DistProblem& problem, Comm world, MachineModel machine);

  const char* name() const override { return "2d"; }
  Comm& world() override { return grid_.world; }
  Index row_lo() const override { return row_lo_; }
  Index row_hi() const override { return row_hi_; }
  std::pair<Index, Index> feat_slice(Index f) const override {
    return block_range(f, grid_.pc, grid_.j);
  }
  bool rows_whole() const override { return false; }
  bool owns_loss_rows() const override { return grid_.j == 0; }

  void spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) override;
  void spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) override;
  void times_weight(const Matrix& t, const Matrix& w, Matrix& z,
                    EpochStats& stats) override;
  void gather_feature_rows(const Matrix& local, Index f, Matrix& full,
                           EpochStats& stats) override;
  void reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                        Matrix& y_full, EpochStats& stats) override;
  void begin_reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                              Matrix& y_full, EpochStats& stats) override;
  void finish_gradients(EpochStats& stats) override;

  /// Distributed transpose A^T -> A (and back): swap blocks across the
  /// diagonal and transpose locally (the paper's "trpose" phase, charged
  /// twice per epoch).
  void begin_backward(EpochStats& stats) override;
  void end_backward(EpochStats& stats) override;

  void drain() noexcept override {
    dist::drain_comm(grid_.row);
    dist::drain_comm(grid_.col);
  }

  int grid_dim() const { return grid_.pr; }

 protected:
  /// Column communicator spans one process per row block (rank order = i),
  /// so gathering full-row outputs along it assembles H^L everywhere.
  Comm& gather_comm() override { return grid_.col; }

 private:
  /// SUMMA T = S * D where S is this rank's sparse block family (row
  /// broadcasts of `my_sparse`, cached across epochs in `cache`) and D the
  /// dense blocks (column broadcasts of `my_dense`); accumulates into `t`
  /// (resized, storage reused). Used by both A^T H (forward) and A G
  /// (backward).
  void summa_spmm(const Csr& my_sparse, dist::SparseStageCache& cache,
                  const Matrix& my_dense, Matrix& t, EpochStats& stats);

  Grid2D grid_;

  Index n_ = 0;
  Index row_lo_ = 0, row_hi_ = 0;  ///< vertex rows of process row i
  Index col_lo_ = 0, col_hi_ = 0;  ///< vertex cols of process column j

  Csr at_block_;  ///< A^T(rows_i, cols_j)
  Csr a_block_;   ///< A(rows_i, cols_j), materialized in backward epoch 1
                  ///< and kept across epochs while the cache is enabled

  dist::DistWorkspace ws_;           ///< reused dense/staging buffers
  dist::PendingGradReduce grad_pending_;  ///< deferred Y reductions
  dist::SparseStageCache at_cache_;  ///< forward-SUMMA received A^T blocks
  dist::SparseStageCache a_cache_;   ///< backward-SUMMA received A blocks
  dist::TransposeCache trpose_cache_;
};

/// The 2D trainer: the shared engine driven by Algebra2D.
class Dist2D final : public DistEngine {
 public:
  /// Collective constructor; world size must be a perfect square.
  Dist2D(const DistProblem& problem, GnnConfig config, Comm world,
         MachineModel machine = MachineModel::summit());
};

}  // namespace cagnet
