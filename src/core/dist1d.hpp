// The paper's 1D block-row algorithm (Section IV-A, Algorithm 1).
//
// Data distribution (Table III): A column-partitioned (equivalently A^T
// block-row partitioned), H^l and G^l block-row partitioned, W replicated.
//
// Per layer:
//   forward   Z = A^T H W : P broadcast stages of H_j (Algorithm 1); the
//                           local A^T_ij H_j products accumulate into T_i.
//   sigma               : rows are whole, so even log_softmax needs no
//                           communication (Section IV-A.2).
//   backward  AG^l      : 1D outer product A_i G_i summed by reduce-scatter
//                           of the O(nf) per-rank partials (IV-A.3).
//   Y = (H)^T AG^l      : small outer product + f x f all-reduce (IV-A.4).
//
// Metered cost matches Section IV-A.5 with edgecut = n(P-1)/P (the random /
// broadcast-based bound; Algorithm 1 broadcasts rather than doing
// individualized request-and-send, exactly as the paper argues in IV-A.8).
//
// Halo mode (CAGNET_HALO / dist::set_halo_enabled) implements the IV-A.8
// request-and-send instead: a HaloPlan built once from the local A^T
// sparsity exchanges exactly the remote H rows each rank needs (kHalo,
// edgecut_P(A) * f words per layer), pipelined behind the stage SpMMs in
// overlap mode (the self block multiplies while remote rows are in
// flight; each peer's rows are drained zero-copy as they land), and the
// backward outer product sends only its structurally nonzero
// contribution rows when the halo_backward_profitable gate passes (a
// random partition keeps the reduce-scatter) — with losses and weights
// bitwise identical to the broadcast path. Row-block boundaries follow
// the DistProblem partition when its part count is P (partition-aware
// layout), so a locality partitioner shrinks the exchanged halo.
//
// Only the distributed algebra lives here; the training loop itself is the
// shared DistEngine (see dist_engine.hpp).
#pragma once

#include <memory>
#include <vector>

#include "src/core/dist_engine.hpp"

namespace cagnet {

/// 1D block-row distributed algebra: rows-whole layout, so the engine's
/// default times_weight / gather_feature_rows (purely local) apply.
class Algebra1D final : public DistSpmmAlgebra {
 public:
  /// Collective constructor: call on every rank of `world`.
  Algebra1D(const DistProblem& problem, Comm world, MachineModel machine);

  const char* name() const override { return "1d"; }
  Comm& world() override { return world_; }
  /// The 1D layout is the pure row stripe sampled training needs: whole
  /// rows, whole features, no replicas — the world is the sample comm.
  Comm* sample_comm() override { return &world_; }
  Index row_lo() const override { return row_lo_; }
  Index row_hi() const override { return row_hi_; }

  void spmm_at(const Matrix& h, Matrix& t, EpochStats& stats) override;
  void spmm_a(const Matrix& g, Matrix& u, EpochStats& stats) override;
  /// Arm the halo plan's bounded-staleness state for this epoch
  /// (dist::halo_begin_epoch); collective in adaptive mode, a no-op when
  /// CAGNET_STALE is off or halo mode is inactive.
  void begin_epoch(int epoch) override;
  /// True when the sparsity-aware halo exchange replaces the broadcasts
  /// (dist::halo_enabled() at construction and P > 1). Purely local.
  bool halo_active() const { return use_halo_; }
  /// True when the backward reduce-scatter is also replaced by the
  /// mirrored contribution exchange (halo mode and the
  /// dist::halo_backward_profitable gate passed at construction).
  bool backward_halo_active() const { return use_halo_ && use_bwd_halo_; }
  void reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                        Matrix& y_full, EpochStats& stats) override;
  void begin_reduce_gradients(Matrix& y_partial, Index f_in, Index f_out,
                              Matrix& y_full, EpochStats& stats) override;
  void finish_gradients(EpochStats& stats) override;
  void drain() noexcept override { dist::drain_comm(world_); }

 protected:
  Comm& gather_comm() override { return world_; }

 private:
  void spmm_a_halo(const Matrix& g, Matrix& u, EpochStats& stats);

  Comm world_;

  Index n_ = 0;
  Index row_lo_ = 0;
  Index row_hi_ = 0;
  /// Partition-aware block boundaries (P+1): the DistProblem partition's
  /// offsets when it was prepared for P parts, even block_range otherwise.
  std::vector<Index> row_starts_;

  /// at_blocks_[j] = A^T(rows of this rank, rows of rank j): the j-th
  /// summand of Algorithm 1's accumulation loop.
  std::vector<Csr> at_blocks_;
  /// A(:, local rows) as CSR (n x local_rows): the outer-product operand.
  Csr a_col_block_;

  bool use_halo_ = false;  ///< sparsity-aware exchange instead of broadcasts
  bool use_bwd_halo_ = false;  ///< backward contribution exchange (gated)
  dist::HaloPlan halo_;    ///< built once, replayed every epoch/layer

  Matrix hj_recv_;    ///< broadcast-stage receive buffer (reused)
  Matrix hj_recv2_;   ///< double-buffer partner (overlapped prefetch)
  Matrix u_partial_;  ///< O(nf) outer-product partial (reused)
  dist::PendingGradReduce grad_pending_;  ///< deferred Y reductions
  /// Codec staging of the compressed U reduce-scatter (CAGNET_COMPRESS
  /// row modes). Error feedback stays off: U is a fresh activation
  /// gradient each layer, not an accumulating signal.
  CompressBuf u_cbuf_;
  std::uint64_t u_release_ticket_ = 0;  ///< last u reduce-scatter (release)
  bool has_u_release_ = false;
};

/// The 1D trainer: the shared engine driven by Algebra1D.
class Dist1D final : public DistEngine {
 public:
  /// Collective constructor: call on every rank of `world`.
  Dist1D(const DistProblem& problem, GnnConfig config, Comm world,
         MachineModel machine = MachineModel::summit());
};

}  // namespace cagnet
