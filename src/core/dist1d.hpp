// The paper's 1D block-row algorithm (Section IV-A, Algorithm 1).
//
// Data distribution (Table III): A column-partitioned (equivalently A^T
// block-row partitioned), H^l and G^l block-row partitioned, W replicated.
//
// Per layer:
//   forward   Z = A^T H W : P broadcast stages of H_j (Algorithm 1); the
//                           local A^T_ij H_j products accumulate into T_i.
//   sigma               : rows are whole, so even log_softmax needs no
//                           communication (Section IV-A.2).
//   backward  AG^l      : 1D outer product A_i G_i summed by reduce-scatter
//                           of the O(nf) per-rank partials (IV-A.3).
//   Y = (H)^T AG^l      : small outer product + f x f all-reduce (IV-A.4).
//
// Metered cost matches Section IV-A.5 with edgecut = n(P-1)/P (the random /
// broadcast-based bound; Algorithm 1 broadcasts rather than doing
// individualized request-and-send, exactly as the paper argues in IV-A.8).
#pragma once

#include <optional>

#include "src/core/dist_common.hpp"
#include "src/gnn/optimizer.hpp"

namespace cagnet {

class Dist1D final : public DistTrainer {
 public:
  /// Collective constructor: call on every rank of `world`.
  Dist1D(const DistProblem& problem, GnnConfig config, Comm world,
         MachineModel machine = MachineModel::summit());

  EpochResult train_epoch() override;
  const EpochStats& last_epoch_stats() const override { return stats_; }
  Matrix gather_output() override;
  const std::vector<Matrix>& weights() const override { return weights_; }

  /// Local row range [row_lo, row_hi) of this rank.
  Index row_lo() const { return row_lo_; }
  Index row_hi() const { return row_hi_; }
  /// Local block of the last forward's output log-probabilities.
  const Matrix& local_output() const;

 private:
  const Matrix& forward();
  void backward();
  void step();

  const DistProblem& problem_;
  GnnConfig config_;
  Comm world_;
  MachineModel machine_;

  Index n_ = 0;
  Index row_lo_ = 0;
  Index row_hi_ = 0;

  /// at_blocks_[j] = A^T(rows of this rank, rows of rank j): the j-th
  /// summand of Algorithm 1's accumulation loop.
  std::vector<Csr> at_blocks_;
  /// A(:, local rows) as CSR (n x local_rows): the outer-product operand.
  Csr a_col_block_;

  std::optional<Optimizer> optimizer_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> gradients_;
  std::vector<Matrix> h_;  ///< local blocks of H^l, l = 0..L
  std::vector<Matrix> z_;  ///< local blocks of Z^l, l = 1..L

  EpochStats stats_;
};

}  // namespace cagnet
