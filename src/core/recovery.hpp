// Checkpoint/restart recovery driver: close the fault-tolerance loop.
//
// train_with_recovery runs distributed training inside a supervision
// loop: periodic crash-consistent checkpoints (src/gnn/checkpoint.hpp,
// atomic tmp+rename so a crash mid-write can never corrupt the latest
// good image), and on a CommAborted — injected by the fault backend
// (src/comm/fault.hpp) or surfaced by a genuine rank failure — it
// rebuilds a fresh world, reloads the latest valid checkpoint, and
// resumes from the epoch it recorded. SGD is stateless and the weights
// are replicated, so weights + epoch are the complete training state; in
// exact mode a recovered run is bitwise identical to an uninterrupted
// one (pinned by tests/fault_test.cpp). Under a lossy codec the
// error-feedback residuals are deliberately transient per-world state:
// they reset to zero on the rebuilt communicator and the run converges
// but is not bitwise reproducible across a restart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/comm/fault.hpp"
#include "src/core/algebra_registry.hpp"

namespace cagnet {

/// Checkpoint interval knob: every k epochs rank 0 writes a checkpoint
/// (0 = periodic checkpointing off). Lazily parsed from CAGNET_CKPT_EVERY
/// at first use — a malformed value throws a catchable Error then, not a
/// startup crash. Like the other runtime knobs this is process-global:
/// flip it only between run_world invocations.
int ckpt_every();
void set_ckpt_every(int every);

struct RecoveryOptions {
  std::string ckpt_path;   ///< checkpoint file (required)
  int ckpt_every = -1;     ///< epochs between checkpoints; -1 = the knob
  int max_restarts = 3;    ///< give up (rethrow) after this many aborts
  bool resume_existing = false;  ///< load ckpt_path if it already exists
};

/// What the supervision loop did, for recovery-overhead accounting.
struct RecoveryReport {
  int epochs = 0;              ///< total epochs requested (and completed)
  int restarts = 0;            ///< worlds rebuilt after a CommAborted
  int retrained_epochs = 0;    ///< epochs lost to aborts and re-trained
  int checkpoints_written = 0;
  double checkpoint_write_seconds = 0;  ///< total wall time in save_checkpoint
  std::vector<Real> losses;    ///< per-epoch global loss (rank 0's view)
  std::vector<Matrix> weights; ///< final replicated weights
  std::optional<CommAborted> last_abort;  ///< most recent abort survived
};

/// Train `epochs` epochs of `algebra` on a `p`-rank world, restarting
/// from the latest checkpoint after any CommAborted, up to
/// `options.max_restarts` times. Rank 0 checkpoints every k epochs.
/// Throws the abort if restarts are exhausted (or the failure is typed
/// as something other than CommAborted); throws Error if
/// options.ckpt_path is empty.
RecoveryReport train_with_recovery(const std::string& algebra,
                                   const DistProblem& problem,
                                   const GnnConfig& config, int p, int epochs,
                                   const RecoveryOptions& options);

}  // namespace cagnet
