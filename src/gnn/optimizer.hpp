// First-order optimizers for GCN training.
//
// The distributed algorithms keep W and Y fully replicated (Table III/IV/V),
// so optimizer state is replicated too and the update is communication-free
// — exactly the property the paper exploits ("the gradient descent step does
// not require communication", Section III-D). Every trainer (serial and all
// four distributed families) shares this implementation, which preserves
// the bitwise parity between them for any optimizer choice.
#pragma once

#include <vector>

#include "src/dense/matrix.hpp"

namespace cagnet {

enum class OptimizerKind {
  kSgd,       ///< W -= lr * Y (the paper's update)
  kMomentum,  ///< Polyak: v = mu*v + Y; W -= lr * v
  kAdam,      ///< Kingma-Ba with bias correction
};

struct OptimizerOptions {
  OptimizerKind kind = OptimizerKind::kSgd;
  Real momentum = 0.9;       ///< kMomentum
  Real adam_beta1 = 0.9;     ///< kAdam
  Real adam_beta2 = 0.999;   ///< kAdam
  Real adam_epsilon = 1e-8;  ///< kAdam
};

/// Stateful optimizer over a fixed set of weight matrices.
class Optimizer {
 public:
  /// Shapes are taken from `weights`; state starts at zero.
  Optimizer(OptimizerOptions options, Real learning_rate,
            const std::vector<Matrix>& weights);

  /// Apply one update step. `gradients` must match the construction shapes.
  void step(std::vector<Matrix>& weights,
            const std::vector<Matrix>& gradients);

  long steps_taken() const { return t_; }

 private:
  OptimizerOptions options_;
  Real learning_rate_;
  std::vector<Matrix> m_;  ///< momentum / first-moment state
  std::vector<Matrix> v_;  ///< second-moment state (Adam)
  long t_ = 0;
};

}  // namespace cagnet
