// Neighborhood sampling and mini-batch GCN training.
//
// The paper trains full-batch and concludes: "we envision future work where
// our distributed training algorithms are carefully combined with
// sophisticated sampling based methods to achieve the best of both worlds"
// (Section VII). This module implements that direction's building blocks:
// a GraphSAGE-style k-hop uniform neighbor sampler that bounds the
// neighborhood explosion (Section I), and a mini-batch trainer that runs
// the same GCN mathematics on the sampled subgraphs. The subgraph operator
// keeps exactly the edges the sampler traversed, with each capped row's
// surviving entries scaled by deg/fanout (the Horvitz-Thompson correction
// the distributed SampledRunner applies), so sampled row aggregates stay
// unbiased estimates of the full ones; uncapped hops scale by exactly one,
// and the full-batch trainers remain the exact reference as fanouts grow.
#pragma once

#include <limits>
#include <vector>

#include "src/gnn/model.hpp"
#include "src/gnn/optimizer.hpp"
#include "src/graph/graph.hpp"

namespace cagnet {

/// A sampled k-hop training subgraph.
struct SampledSubgraph {
  Csr adjacency;               ///< sampled edges of the normalized A, with
                               ///< capped rows Horvitz-Thompson rescaled
  Matrix features;             ///< H0 rows of the sampled vertices
  std::vector<Index> labels;   ///< seed rows keep labels; others are -1
  std::vector<Index> vertices; ///< global ids; the first num_seeds are seeds
  Index num_seeds = 0;
};

/// Uniform k-hop neighbor sampling: starting from `seeds`, each hop h
/// samples up to fanouts[h] distinct in-neighbors (rows of A^T) of every
/// frontier vertex without replacement. Returns the subgraph of exactly
/// the traversed edges — capped rows carry the deg/fanout scale, take-all
/// rows are verbatim — over the union, seeds first, hop order preserved.
SampledSubgraph sample_subgraph(const Graph& graph, const Csr& at,
                                std::span<const Index> seeds,
                                std::span<const Index> fanouts, Rng& rng);

/// Fanout value meaning "take the whole in-neighborhood" (no cap). An
/// all-infinite fanout vector makes every sampled batch an exact induced
/// receptive field, which is how the distributed sampled trainer proves
/// bitwise parity against the full-batch engine.
inline constexpr Index kSampleAll = std::numeric_limits<Index>::max();

struct MiniBatchOptions {
  Index batch_size = 64;
  /// Per-hop fanouts, outermost hop first; length must equal the number
  /// of GNN layers (the paper's neighborhood-explosion depth). Validated
  /// by the trainers — a mismatched length would silently truncate or
  /// over-run the hop recursion.
  std::vector<Index> fanouts = {15, 10, 5};
  std::uint64_t seed = 99;
};

/// Mini-batch GCN trainer over sampled subgraphs; weights and optimizer
/// state are shared across batches exactly as in full-batch training.
class MiniBatchTrainer {
 public:
  MiniBatchTrainer(const Graph& graph, GnnConfig config,
                   MiniBatchOptions options);

  /// One pass over all labeled vertices in shuffled mini-batches. Returns
  /// the mean per-batch loss and the training accuracy over seed vertices.
  EpochResult train_epoch();

  /// Full-graph forward pass with the current weights (inference).
  Matrix predict();

  const std::vector<Matrix>& weights() const { return weights_; }
  Index batches_per_epoch() const;

 private:
  /// Forward + backward + step on one sampled subgraph; returns loss and
  /// the number of correct seed predictions.
  std::pair<Real, Index> train_batch(const SampledSubgraph& sub);

  const Graph& graph_;
  GnnConfig config_;
  MiniBatchOptions options_;
  Csr at_;  ///< transpose of the full normalized adjacency (sampling pool)
  std::vector<Matrix> weights_;
  Optimizer optimizer_;
  std::vector<Index> labeled_vertices_;
  Rng rng_;
};

}  // namespace cagnet
