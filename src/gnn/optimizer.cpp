#include "src/gnn/optimizer.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {

// The update rules below run through parallel_for_elements: purely
// elementwise, so chunking the flat range on the pool is
// bitwise-deterministic for every thread count, and the minimum-work
// clamp keeps the small (f x f) weight matrices serial.

Optimizer::Optimizer(OptimizerOptions options, Real learning_rate,
                     const std::vector<Matrix>& weights)
    : options_(options), learning_rate_(learning_rate) {
  if (options_.kind != OptimizerKind::kSgd) {
    m_.reserve(weights.size());
    for (const Matrix& w : weights) m_.emplace_back(w.rows(), w.cols());
  }
  if (options_.kind == OptimizerKind::kAdam) {
    v_.reserve(weights.size());
    for (const Matrix& w : weights) v_.emplace_back(w.rows(), w.cols());
  }
}

void Optimizer::step(std::vector<Matrix>& weights,
                     const std::vector<Matrix>& gradients) {
  CAGNET_CHECK(weights.size() == gradients.size(),
               "optimizer: weight/gradient count mismatch");
  ++t_;
  switch (options_.kind) {
    case OptimizerKind::kSgd: {
      for (std::size_t l = 0; l < weights.size(); ++l) {
        auto w = weights[l].flat();
        const auto g = gradients[l].flat();
        CAGNET_CHECK(w.size() == g.size(), "optimizer: shape mismatch");
        parallel_for_elements(static_cast<Index>(w.size()),
                              [&](Index lo, Index hi) {
          for (Index i = lo; i < hi; ++i) {
            w[static_cast<std::size_t>(i)] -=
                learning_rate_ * g[static_cast<std::size_t>(i)];
          }
        });
      }
      return;
    }
    case OptimizerKind::kMomentum: {
      for (std::size_t l = 0; l < weights.size(); ++l) {
        auto w = weights[l].flat();
        const auto g = gradients[l].flat();
        auto m = m_[l].flat();
        CAGNET_CHECK(w.size() == g.size(), "optimizer: shape mismatch");
        parallel_for_elements(static_cast<Index>(w.size()),
                              [&](Index lo, Index hi) {
          for (Index i = lo; i < hi; ++i) {
            const auto s = static_cast<std::size_t>(i);
            m[s] = options_.momentum * m[s] + g[s];
            w[s] -= learning_rate_ * m[s];
          }
        });
      }
      return;
    }
    case OptimizerKind::kAdam: {
      const Real b1 = options_.adam_beta1;
      const Real b2 = options_.adam_beta2;
      const Real correction1 =
          Real{1} - std::pow(b1, static_cast<Real>(t_));
      const Real correction2 =
          Real{1} - std::pow(b2, static_cast<Real>(t_));
      for (std::size_t l = 0; l < weights.size(); ++l) {
        auto w = weights[l].flat();
        const auto g = gradients[l].flat();
        auto m = m_[l].flat();
        auto v = v_[l].flat();
        CAGNET_CHECK(w.size() == g.size(), "optimizer: shape mismatch");
        parallel_for_elements(static_cast<Index>(w.size()),
                              [&](Index lo, Index hi) {
          for (Index i = lo; i < hi; ++i) {
            const auto s = static_cast<std::size_t>(i);
            m[s] = b1 * m[s] + (Real{1} - b1) * g[s];
            v[s] = b2 * v[s] + (Real{1} - b2) * g[s] * g[s];
            const Real m_hat = m[s] / correction1;
            const Real v_hat = v[s] / correction2;
            w[s] -= learning_rate_ * m_hat /
                    (std::sqrt(v_hat) + options_.adam_epsilon);
          }
        });
      }
      return;
    }
  }
}

}  // namespace cagnet
