#include "src/gnn/optimizer.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace cagnet {

Optimizer::Optimizer(OptimizerOptions options, Real learning_rate,
                     const std::vector<Matrix>& weights)
    : options_(options), learning_rate_(learning_rate) {
  if (options_.kind != OptimizerKind::kSgd) {
    m_.reserve(weights.size());
    for (const Matrix& w : weights) m_.emplace_back(w.rows(), w.cols());
  }
  if (options_.kind == OptimizerKind::kAdam) {
    v_.reserve(weights.size());
    for (const Matrix& w : weights) v_.emplace_back(w.rows(), w.cols());
  }
}

void Optimizer::step(std::vector<Matrix>& weights,
                     const std::vector<Matrix>& gradients) {
  CAGNET_CHECK(weights.size() == gradients.size(),
               "optimizer: weight/gradient count mismatch");
  ++t_;
  switch (options_.kind) {
    case OptimizerKind::kSgd: {
      for (std::size_t l = 0; l < weights.size(); ++l) {
        auto w = weights[l].flat();
        const auto g = gradients[l].flat();
        CAGNET_CHECK(w.size() == g.size(), "optimizer: shape mismatch");
        for (std::size_t i = 0; i < w.size(); ++i) {
          w[i] -= learning_rate_ * g[i];
        }
      }
      return;
    }
    case OptimizerKind::kMomentum: {
      for (std::size_t l = 0; l < weights.size(); ++l) {
        auto w = weights[l].flat();
        const auto g = gradients[l].flat();
        auto m = m_[l].flat();
        CAGNET_CHECK(w.size() == g.size(), "optimizer: shape mismatch");
        for (std::size_t i = 0; i < w.size(); ++i) {
          m[i] = options_.momentum * m[i] + g[i];
          w[i] -= learning_rate_ * m[i];
        }
      }
      return;
    }
    case OptimizerKind::kAdam: {
      const Real b1 = options_.adam_beta1;
      const Real b2 = options_.adam_beta2;
      const Real correction1 =
          Real{1} - std::pow(b1, static_cast<Real>(t_));
      const Real correction2 =
          Real{1} - std::pow(b2, static_cast<Real>(t_));
      for (std::size_t l = 0; l < weights.size(); ++l) {
        auto w = weights[l].flat();
        const auto g = gradients[l].flat();
        auto m = m_[l].flat();
        auto v = v_[l].flat();
        CAGNET_CHECK(w.size() == g.size(), "optimizer: shape mismatch");
        for (std::size_t i = 0; i < w.size(); ++i) {
          m[i] = b1 * m[i] + (Real{1} - b1) * g[i];
          v[i] = b2 * v[i] + (Real{1} - b2) * g[i] * g[i];
          const Real m_hat = m[i] / correction1;
          const Real v_hat = v[i] / correction2;
          w[i] -= learning_rate_ * m_hat /
                  (std::sqrt(v_hat) + options_.adam_epsilon);
        }
      }
      return;
    }
  }
}

}  // namespace cagnet
