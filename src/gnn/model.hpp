// GCN model configuration and parameter initialization.
//
// Layer convention (1-based, matching the paper's equations):
//   Z^l = A^T H^(l-1) W^l,   H^l = sigma_l(Z^l),   l = 1..L
// where sigma is ReLU on hidden layers and row-wise log_softmax on the
// output layer (the one non-elementwise activation whose row dependence
// drives the all-gather terms in the 2D/3D analyses).
#pragma once

#include <vector>

#include "src/dense/matrix.hpp"
#include "src/gnn/optimizer.hpp"
#include "src/util/rng.hpp"
#include "src/util/types.hpp"

namespace cagnet {

struct GnnConfig {
  /// dims = {f_0, f_1, ..., f_L}: f_0 input features, f_L classes.
  /// Weight W^l has shape (f_{l-1} x f_l); there are dims.size()-1 layers.
  std::vector<Index> dims;
  Real learning_rate = 0.01;
  OptimizerOptions optimizer{};  ///< update rule; state stays replicated
  std::uint64_t seed = 7;

  Index num_layers() const { return static_cast<Index>(dims.size()) - 1; }

  /// The paper's architecture (Section V-A): 3-layer Kipf-Welling GCN with
  /// 16-wide hidden layers.
  static GnnConfig three_layer(Index f_in, Index classes, Index hidden = 16);
};

/// Glorot-initialized weights, deterministic in config.seed. Every process
/// of a distributed trainer calls this with the same config and obtains
/// bitwise-identical replicated weights — no broadcast needed, matching the
/// paper's "W fully replicated" distribution.
std::vector<Matrix> make_weights(const GnnConfig& config);

/// Loss and training accuracy of one epoch.
struct EpochResult {
  Real loss = 0;
  Real accuracy = 0;
};

}  // namespace cagnet
