// Crash-consistent model checkpointing: save/restore the replicated
// weight matrices plus the epoch they correspond to.
//
// Binary format (version 2):
//   magic "CAGW" | u32 version | u64 epoch | u64 layer count |
//   per-layer (i64 rows, i64 cols, row-major doubles) | u32 CRC32
// The trailing CRC32 covers every byte after the magic; load rejects
// truncated, bit-flipped, or foreign files with a typed CheckpointError.
//
// Writes are atomic: the image is serialized to memory, written to
// `path + ".tmp"`, flushed, and renamed over `path`. A crash mid-write
// leaves either the previous checkpoint or a stray .tmp — never a
// half-written file that load could mistake for a checkpoint. This is
// what lets the recovery driver (src/core/recovery.hpp) trust the latest
// on-disk checkpoint unconditionally.
//
// Weights are replicated in every distribution scheme, so one rank
// saving is a complete checkpoint for any trainer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dense/matrix.hpp"
#include "src/util/error.hpp"

namespace cagnet {

/// Typed error for every checkpoint failure mode: missing file, bad
/// magic, unsupported version, truncation, CRC mismatch, write failure.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& message) : Error(message) {}
};

/// A loaded checkpoint: the epoch it was taken after plus the weights.
struct Checkpoint {
  std::uint64_t epoch = 0;
  std::vector<Matrix> weights;
};

/// CRC32 (IEEE 802.3, reflected) of `len` bytes — the integrity check
/// sealed into every checkpoint. Exposed so tests can forge/verify.
std::uint32_t crc32(const void* data, std::size_t len);

/// Atomically write a version-2 checkpoint (tmp-file + rename).
/// Throws CheckpointError on any I/O failure.
void save_checkpoint(const std::string& path,
                     const std::vector<Matrix>& weights, std::uint64_t epoch);

/// Load and verify a checkpoint. Throws CheckpointError if the file is
/// missing, has the wrong magic or an unsupported version, is truncated,
/// or fails the CRC32 check.
Checkpoint load_checkpoint(const std::string& path);

/// Back-compat wrappers: epoch-0 checkpoints of just the weights.
void save_weights(const std::string& path, const std::vector<Matrix>& weights);
std::vector<Matrix> load_weights(const std::string& path);

}  // namespace cagnet
