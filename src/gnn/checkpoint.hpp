// Model checkpointing: save/restore the replicated weight matrices.
//
// Binary format: magic "CAGW", layer count, then per-layer (rows, cols,
// row-major doubles). Weights are replicated in every distribution scheme,
// so one rank saving is a complete checkpoint for any trainer.
#pragma once

#include <string>
#include <vector>

#include "src/dense/matrix.hpp"

namespace cagnet {

void save_weights(const std::string& path,
                  const std::vector<Matrix>& weights);

std::vector<Matrix> load_weights(const std::string& path);

}  // namespace cagnet
