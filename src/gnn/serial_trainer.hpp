// Single-process full-batch GCN trainer: the reference implementation.
//
// Implements the paper's forward/backward equations directly on the whole
// matrices. Every distributed trainer is validated to reproduce this
// trainer's losses and embeddings up to floating-point accumulation error
// (the same parity claim the paper makes against serial PyTorch in V-A).
#pragma once

#include <optional>
#include <vector>

#include "src/gnn/model.hpp"
#include "src/gnn/optimizer.hpp"
#include "src/graph/graph.hpp"

namespace cagnet {

class SerialTrainer {
 public:
  /// Graph must outlive the trainer.
  SerialTrainer(const Graph& graph, GnnConfig config);

  /// Forward pass only: fills the layer cache and returns the output
  /// log-probabilities H^L.
  const Matrix& forward();

  /// Backward pass from the cached forward state; fills weight gradients.
  /// Must follow a forward() call.
  void backward();

  /// SGD step: W^l -= lr * Y^l.
  void step();

  /// forward + loss/accuracy + backward + step.
  EpochResult train_epoch();

  const GnnConfig& config() const { return config_; }
  const std::vector<Matrix>& weights() const { return weights_; }
  std::vector<Matrix>& weights() { return weights_; }
  /// dL/dW^l from the last backward().
  const std::vector<Matrix>& gradients() const { return gradients_; }
  /// H^l for l = 0..L from the last forward().
  const std::vector<Matrix>& activations() const { return h_; }
  /// Z^l for l = 1..L (index 0 unused) from the last forward().
  const std::vector<Matrix>& preactivations() const { return z_; }

 private:
  const Graph& graph_;
  GnnConfig config_;
  Csr at_;  ///< A^T, used by forward (kept explicit for directed generality)
  std::optional<Optimizer> optimizer_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> gradients_;
  std::vector<Matrix> h_;
  std::vector<Matrix> z_;
};

}  // namespace cagnet
