#include "src/gnn/sampling.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

SampledSubgraph sample_subgraph(const Graph& graph, const Csr& at,
                                std::span<const Index> seeds,
                                std::span<const Index> fanouts, Rng& rng) {
  CAGNET_CHECK(at.rows() == graph.num_vertices(),
               "sample_subgraph: A^T shape mismatch");
  SampledSubgraph sub;
  sub.num_seeds = static_cast<Index>(seeds.size());

  std::unordered_set<Index> seen;
  std::vector<Index> order;  // insertion order: seeds, hop 1, hop 2, ...
  order.reserve(seeds.size() * 8);
  for (Index s : seeds) {
    CAGNET_CHECK(s >= 0 && s < graph.num_vertices(), "seed out of range");
    CAGNET_CHECK(seen.insert(s).second, "duplicate seed vertex");
    order.push_back(s);
  }

  const auto row_ptr = at.row_ptr();
  const auto col_idx = at.col_idx();
  const auto& at_vals = at.values();
  std::unordered_map<Index, Index> local_of;
  local_of.reserve(seeds.size() * 8);
  for (std::size_t i = 0; i < order.size(); ++i) {
    local_of.emplace(order[i], static_cast<Index>(i));
  }
  // The traversed edges, recorded as entries of A over local indices
  // (A^T(v, u) = A(u, v)), with the Horvitz-Thompson deg/fanout scale
  // already applied on capped rows — the same unbiasedness correction the
  // distributed SampledRunner bakes into its sampled stripe rows. Each
  // frontier vertex's row is sampled exactly once, so entries are unique.
  std::vector<Index> edge_rows;
  std::vector<Index> edge_cols;
  std::vector<Real> edge_vals;
  std::vector<Index> frontier(order);
  std::vector<Index> scratch;
  for (Index fanout : fanouts) {
    std::vector<Index> next;
    for (Index v : frontier) {
      const Index deg = row_ptr[v + 1] - row_ptr[v];
      if (deg == 0) continue;
      const Index lv = local_of.find(v)->second;
      if (deg <= fanout) {
        // Take the whole in-neighborhood, verbatim (scale one — what
        // keeps uncapped runs exact against the full-batch reference).
        for (Index p = row_ptr[v]; p < row_ptr[v + 1]; ++p) {
          const Index u = col_idx[p];
          if (seen.insert(u).second) {
            local_of.emplace(u, static_cast<Index>(order.size()));
            order.push_back(u);
            next.push_back(u);
          }
          edge_rows.push_back(local_of.find(u)->second);
          edge_cols.push_back(lv);
          edge_vals.push_back(at_vals[static_cast<std::size_t>(p)]);
        }
      } else {
        // Floyd's sampling of `fanout` distinct positions in [0, deg).
        scratch.clear();
        std::unordered_set<Index> picked;
        for (Index r = deg - fanout; r < deg; ++r) {
          Index candidate = static_cast<Index>(
              rng.next_below(static_cast<std::uint64_t>(r + 1)));
          if (!picked.insert(candidate).second) {
            picked.insert(r);
            candidate = r;
          }
          scratch.push_back(candidate);
        }
        // Each kept edge stood a fanout/deg chance of inclusion, so
        // dividing by it keeps the sampled row aggregate an unbiased
        // estimate of the full one.
        const Real scale = static_cast<Real>(deg) / static_cast<Real>(fanout);
        for (Index offset : scratch) {
          const Index q = row_ptr[v] + offset;
          const Index u = col_idx[q];
          if (seen.insert(u).second) {
            local_of.emplace(u, static_cast<Index>(order.size()));
            order.push_back(u);
            next.push_back(u);
          }
          edge_rows.push_back(local_of.find(u)->second);
          edge_cols.push_back(lv);
          edge_vals.push_back(at_vals[static_cast<std::size_t>(q)] * scale);
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  // Assemble A over the sampled vertices from exactly the traversed edges.
  Coo coo(static_cast<Index>(order.size()), static_cast<Index>(order.size()));
  for (std::size_t k = 0; k < edge_rows.size(); ++k) {
    coo.add(edge_rows[k], edge_cols[k], edge_vals[k]);
  }
  sub.adjacency = Csr::from_coo(coo);

  sub.vertices = std::move(order);
  sub.features = Matrix(static_cast<Index>(sub.vertices.size()),
                        graph.feature_dim());
  sub.labels.assign(sub.vertices.size(), Index{-1});
  for (std::size_t i = 0; i < sub.vertices.size(); ++i) {
    const auto row = graph.features.row(sub.vertices[i]);
    std::copy(row.begin(), row.end(), sub.features.row(static_cast<Index>(i)).begin());
    if (static_cast<Index>(i) < sub.num_seeds) {
      sub.labels[i] =
          graph.labels[static_cast<std::size_t>(sub.vertices[i])];
    }
  }
  return sub;
}

MiniBatchTrainer::MiniBatchTrainer(const Graph& graph, GnnConfig config,
                                   MiniBatchOptions options)
    : graph_(graph), config_(std::move(config)), options_(std::move(options)),
      at_(graph.adjacency.transposed()), weights_(make_weights(config_)),
      optimizer_(config_.optimizer, config_.learning_rate, weights_),
      rng_(options_.seed) {
  CAGNET_CHECK(config_.dims.front() == graph.feature_dim(),
               "input dim must match graph features");
  CAGNET_CHECK(options_.batch_size > 0, "batch size must be positive");
  CAGNET_CHECK(static_cast<Index>(options_.fanouts.size()) ==
                   config_.num_layers(),
               "fanouts length (" + std::to_string(options_.fanouts.size()) +
                   ") must equal the model's layer count (" +
                   std::to_string(config_.num_layers()) + ")");
  for (Index fanout : options_.fanouts) {
    CAGNET_CHECK(fanout > 0, "fanouts must be positive (use kSampleAll for "
                             "an uncapped hop)");
  }
  for (Index v = 0; v < graph.num_vertices(); ++v) {
    if (graph.labels[static_cast<std::size_t>(v)] >= 0) {
      labeled_vertices_.push_back(v);
    }
  }
  CAGNET_CHECK(!labeled_vertices_.empty(),
               "mini-batch training needs labeled vertices");
}

Index MiniBatchTrainer::batches_per_epoch() const {
  return (static_cast<Index>(labeled_vertices_.size()) +
          options_.batch_size - 1) /
         options_.batch_size;
}

std::pair<Real, Index> MiniBatchTrainer::train_batch(
    const SampledSubgraph& sub) {
  const Index layers = config_.num_layers();
  const Index n = sub.adjacency.rows();
  const Csr sub_at = sub.adjacency.transposed();

  // Forward (identical mathematics to SerialTrainer, on the subgraph).
  std::vector<Matrix> h(static_cast<std::size_t>(layers) + 1);
  std::vector<Matrix> z(static_cast<std::size_t>(layers) + 1);
  h[0] = sub.features;
  for (Index l = 1; l <= layers; ++l) {
    const Matrix t = sub_at.multiply(h[static_cast<std::size_t>(l - 1)]);
    z[static_cast<std::size_t>(l)] =
        Matrix(n, config_.dims[static_cast<std::size_t>(l)]);
    gemm(Trans::kNo, Trans::kNo, Real{1}, t,
         weights_[static_cast<std::size_t>(l - 1)], Real{0},
         z[static_cast<std::size_t>(l)]);
    auto& hl = h[static_cast<std::size_t>(l)];
    hl = Matrix(n, config_.dims[static_cast<std::size_t>(l)]);
    if (l == layers) {
      log_softmax_rows(z[static_cast<std::size_t>(l)], hl);
    } else {
      relu(z[static_cast<std::size_t>(l)], hl);
    }
  }
  const Matrix& log_probs = h[static_cast<std::size_t>(layers)];
  const Real loss = nll_loss(log_probs, sub.labels);
  Index hits = 0;
  for (Index i = 0; i < sub.num_seeds; ++i) {
    const auto row = log_probs.row(i);
    const Index pred = static_cast<Index>(
        std::max_element(row.begin(), row.end()) - row.begin());
    if (pred == sub.labels[static_cast<std::size_t>(i)]) ++hits;
  }

  // Backward.
  std::vector<Matrix> gradients(weights_.size());
  Matrix g(n, config_.dims.back());
  {
    Matrix dh(n, config_.dims.back());
    nll_loss_backward(log_probs, sub.labels, dh);
    log_softmax_backward(dh, log_probs, g);
  }
  for (Index l = layers; l >= 1; --l) {
    const Matrix u = sub.adjacency.multiply(g);
    auto& y = gradients[static_cast<std::size_t>(l - 1)];
    y = Matrix(config_.dims[static_cast<std::size_t>(l - 1)],
               config_.dims[static_cast<std::size_t>(l)]);
    gemm(Trans::kYes, Trans::kNo, Real{1}, h[static_cast<std::size_t>(l - 1)],
         u, Real{0}, y);
    if (l > 1) {
      Matrix dh(n, config_.dims[static_cast<std::size_t>(l - 1)]);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u,
           weights_[static_cast<std::size_t>(l - 1)], Real{0}, dh);
      Matrix next_g(n, config_.dims[static_cast<std::size_t>(l - 1)]);
      relu_backward(dh, z[static_cast<std::size_t>(l - 1)], next_g);
      g = std::move(next_g);
    }
  }
  optimizer_.step(weights_, gradients);
  return {loss, hits};
}

EpochResult MiniBatchTrainer::train_epoch() {
  // Shuffle labeled vertices, then walk them in batches.
  std::vector<Index> perm = labeled_vertices_;
  for (std::size_t i = perm.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng_.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[i], perm[j]);
  }

  Real loss_sum = 0;
  Index batches = 0;
  Index hits = 0;
  for (std::size_t start = 0; start < perm.size();
       start += static_cast<std::size_t>(options_.batch_size)) {
    const std::size_t end =
        std::min(perm.size(),
                 start + static_cast<std::size_t>(options_.batch_size));
    const std::span<const Index> seeds(perm.data() + start, end - start);
    const SampledSubgraph sub =
        sample_subgraph(graph_, at_, seeds, options_.fanouts, rng_);
    const auto [loss, batch_hits] = train_batch(sub);
    loss_sum += loss;
    hits += batch_hits;
    ++batches;
  }
  EpochResult result;
  result.loss = loss_sum / static_cast<Real>(batches);
  result.accuracy =
      static_cast<Real>(hits) / static_cast<Real>(labeled_vertices_.size());
  return result;
}

Matrix MiniBatchTrainer::predict() {
  const Index layers = config_.num_layers();
  Matrix h = graph_.features;
  for (Index l = 1; l <= layers; ++l) {
    const Matrix t = at_.multiply(h);
    Matrix z(graph_.num_vertices(),
             config_.dims[static_cast<std::size_t>(l)]);
    gemm(Trans::kNo, Trans::kNo, Real{1}, t,
         weights_[static_cast<std::size_t>(l - 1)], Real{0}, z);
    h = Matrix(z.rows(), z.cols());
    if (l == layers) {
      log_softmax_rows(z, h);
    } else {
      relu(z, h);
    }
  }
  return h;
}

}  // namespace cagnet
