#include "src/gnn/model.hpp"

#include "src/util/error.hpp"

namespace cagnet {

GnnConfig GnnConfig::three_layer(Index f_in, Index classes, Index hidden) {
  GnnConfig config;
  config.dims = {f_in, hidden, hidden, classes};
  return config;
}

std::vector<Matrix> make_weights(const GnnConfig& config) {
  CAGNET_CHECK(config.dims.size() >= 2,
               "a GNN needs at least input and output dims");
  Rng root(config.seed);
  std::vector<Matrix> weights;
  weights.reserve(config.dims.size() - 1);
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    Matrix w(config.dims[l], config.dims[l + 1]);
    Rng layer_rng = root.split(static_cast<std::uint64_t>(l));
    w.fill_glorot(layer_rng);
    weights.push_back(std::move(w));
  }
  return weights;
}

}  // namespace cagnet
