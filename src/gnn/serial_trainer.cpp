#include "src/gnn/serial_trainer.hpp"

#include "src/dense/gemm.hpp"
#include "src/dense/ops.hpp"
#include "src/util/error.hpp"

namespace cagnet {

SerialTrainer::SerialTrainer(const Graph& graph, GnnConfig config)
    : graph_(graph), config_(std::move(config)) {
  CAGNET_CHECK(config_.dims.front() == graph.feature_dim(),
               "input dim must match graph features");
  CAGNET_CHECK(config_.dims.back() == graph.num_classes,
               "output dim must match class count");
  at_ = graph.adjacency.transposed();
  weights_ = make_weights(config_);
  optimizer_.emplace(config_.optimizer, config_.learning_rate, weights_);
  gradients_.resize(weights_.size());

  const auto layers = static_cast<std::size_t>(config_.num_layers());
  h_.resize(layers + 1);
  z_.resize(layers + 1);
  h_[0] = graph.features;
}

const Matrix& SerialTrainer::forward() {
  const Index layers = config_.num_layers();
  const Index n = graph_.num_vertices();
  for (Index l = 1; l <= layers; ++l) {
    // T = A^T H^(l-1), then Z^l = T W^l.
    const Matrix t = at_.multiply(h_[static_cast<std::size_t>(l - 1)]);
    auto& z = z_[static_cast<std::size_t>(l)];
    z = Matrix(n, config_.dims[static_cast<std::size_t>(l)]);
    gemm(Trans::kNo, Trans::kNo, Real{1}, t,
         weights_[static_cast<std::size_t>(l - 1)], Real{0}, z);

    auto& h = h_[static_cast<std::size_t>(l)];
    h = Matrix(z.rows(), z.cols());
    if (l == layers) {
      log_softmax_rows(z, h);
    } else {
      relu(z, h);
    }
  }
  return h_[static_cast<std::size_t>(layers)];
}

void SerialTrainer::backward() {
  const Index layers = config_.num_layers();
  const Index n = graph_.num_vertices();
  CAGNET_CHECK(!h_[static_cast<std::size_t>(layers)].empty(),
               "backward requires a forward pass");

  // G^L = dL/dZ^L through the log-softmax output activation.
  Matrix g(n, config_.dims.back());
  {
    const Matrix& log_probs = h_[static_cast<std::size_t>(layers)];
    Matrix dh(n, config_.dims.back());
    nll_loss_backward(log_probs, graph_.labels, dh);
    log_softmax_backward(dh, log_probs, g);
  }

  for (Index l = layers; l >= 1; --l) {
    // U = A G^l: reused for both the weight gradient and the next G
    // (the paper's "reuse the intermediate product AG^l").
    const Matrix u = graph_.adjacency.multiply(g);

    // Y^l = (H^(l-1))^T (A G^l).
    auto& y = gradients_[static_cast<std::size_t>(l - 1)];
    y = Matrix(config_.dims[static_cast<std::size_t>(l - 1)],
               config_.dims[static_cast<std::size_t>(l)]);
    gemm(Trans::kYes, Trans::kNo, Real{1},
         h_[static_cast<std::size_t>(l - 1)], u, Real{0}, y);

    if (l > 1) {
      // G^(l-1) = (A G^l (W^l)^T) ⊙ relu'(Z^(l-1)).
      Matrix dh(n, config_.dims[static_cast<std::size_t>(l - 1)]);
      gemm(Trans::kNo, Trans::kYes, Real{1}, u,
           weights_[static_cast<std::size_t>(l - 1)], Real{0}, dh);
      Matrix next_g(n, config_.dims[static_cast<std::size_t>(l - 1)]);
      relu_backward(dh, z_[static_cast<std::size_t>(l - 1)], next_g);
      g = std::move(next_g);
    }
  }
}

void SerialTrainer::step() {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    CAGNET_CHECK(!gradients_[l].empty(), "step requires a backward pass");
  }
  optimizer_->step(weights_, gradients_);
}

EpochResult SerialTrainer::train_epoch() {
  const Matrix& log_probs = forward();
  EpochResult result;
  result.loss = nll_loss(log_probs, graph_.labels);
  result.accuracy = accuracy(log_probs, graph_.labels);
  backward();
  step();
  return result;
}

}  // namespace cagnet
