#include "src/gnn/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace cagnet {

namespace {

constexpr char kMagic[4] = {'C', 'A', 'G', 'W'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint64_t kMaxLayers = 1u << 20;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void append_bytes(std::string& buf, const void* data, std::size_t len) {
  buf.append(static_cast<const char*>(data), len);
}

template <typename T>
void append_value(std::string& buf, T value) {
  append_bytes(buf, &value, sizeof(value));
}

/// Sequential reader over the in-memory image with typed truncation
/// errors; keeping the parse off the stream means the CRC can be checked
/// against the whole file before any field is trusted.
struct Reader {
  const std::string& buf;
  const std::string& path;
  std::size_t pos = 0;

  void read(void* out, std::size_t len, const char* what) {
    if (buf.size() - pos < len) {
      throw CheckpointError("truncated checkpoint (short " +
                            std::string(what) + "): " + path);
    }
    std::memcpy(out, buf.data() + pos, len);
    pos += len;
  }

  template <typename T>
  T value(const char* what) {
    T v{};
    read(&v, sizeof(v), what);
    return v;
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void save_checkpoint(const std::string& path,
                     const std::vector<Matrix>& weights,
                     std::uint64_t epoch) {
  // Serialize the full image first so the write is a single pass and the
  // CRC covers exactly what lands on disk.
  std::string body;
  append_value(body, kVersion);
  append_value(body, epoch);
  append_value(body, static_cast<std::uint64_t>(weights.size()));
  for (const Matrix& w : weights) {
    append_value(body, static_cast<std::int64_t>(w.rows()));
    append_value(body, static_cast<std::int64_t>(w.cols()));
    append_bytes(body, w.data(), sizeof(Real) * w.flat().size());
  }
  const std::uint32_t crc = crc32(body.data(), body.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw CheckpointError("cannot open " + tmp + " for writing");
    }
    out.write(kMagic, sizeof(kMagic));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw CheckpointError("checkpoint write failure: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("cannot rename " + tmp + " to " + path);
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw CheckpointError("cannot open checkpoint: " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("not a cagnet checkpoint (bad magic): " + path);
  }
  if (file.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    throw CheckpointError("truncated checkpoint (no checksum): " + path);
  }
  // Verify integrity over the whole body before parsing any field.
  const std::size_t body_len =
      file.size() - sizeof(kMagic) - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, file.data() + sizeof(kMagic) + body_len,
              sizeof(stored));
  const std::uint32_t actual = crc32(file.data() + sizeof(kMagic), body_len);
  if (stored != actual) {
    throw CheckpointError("checkpoint failed CRC32 check (corrupt): " + path);
  }

  const std::string body = file.substr(sizeof(kMagic), body_len);
  Reader r{body, path};
  const auto version = r.value<std::uint32_t>("version");
  if (version != kVersion) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kVersion) + "): " + path);
  }
  Checkpoint ckpt;
  ckpt.epoch = r.value<std::uint64_t>("epoch");
  const auto count = r.value<std::uint64_t>("layer count");
  if (count > kMaxLayers) {
    throw CheckpointError("implausible checkpoint layer count " +
                          std::to_string(count) + ": " + path);
  }
  ckpt.weights.reserve(count);
  for (std::uint64_t l = 0; l < count; ++l) {
    const auto rows = r.value<std::int64_t>("layer rows");
    const auto cols = r.value<std::int64_t>("layer cols");
    if (rows < 0 || cols < 0) {
      throw CheckpointError("corrupt checkpoint layer header: " + path);
    }
    Matrix w(rows, cols);
    r.read(w.data(), sizeof(Real) * w.flat().size(), "layer payload");
    ckpt.weights.push_back(std::move(w));
  }
  if (r.pos != body.size()) {
    throw CheckpointError("trailing garbage after checkpoint payload: " +
                          path);
  }
  return ckpt;
}

void save_weights(const std::string& path,
                  const std::vector<Matrix>& weights) {
  save_checkpoint(path, weights, 0);
}

std::vector<Matrix> load_weights(const std::string& path) {
  return load_checkpoint(path).weights;
}

}  // namespace cagnet
