#include "src/gnn/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "src/util/error.hpp"

namespace cagnet {

namespace {
constexpr char kMagic[4] = {'C', 'A', 'G', 'W'};
}  // namespace

void save_weights(const std::string& path,
                  const std::vector<Matrix>& weights) {
  std::ofstream out(path, std::ios::binary);
  CAGNET_CHECK(out.good(), "cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const auto count = static_cast<std::uint64_t>(weights.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Matrix& w : weights) {
    const std::int64_t rows = w.rows();
    const std::int64_t cols = w.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(w.data()),
              static_cast<std::streamsize>(sizeof(Real) * w.flat().size()));
  }
  CAGNET_CHECK(out.good(), "checkpoint write failure: " + path);
}

std::vector<Matrix> load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CAGNET_CHECK(in.good(), "cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  CAGNET_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a cagnet checkpoint: " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  CAGNET_CHECK(in.good() && count < (1u << 20), "corrupt checkpoint header");
  std::vector<Matrix> weights;
  weights.reserve(count);
  for (std::uint64_t l = 0; l < count; ++l) {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    CAGNET_CHECK(in.good() && rows >= 0 && cols >= 0,
                 "corrupt checkpoint layer header");
    Matrix w(rows, cols);
    in.read(reinterpret_cast<char*>(w.data()),
            static_cast<std::streamsize>(sizeof(Real) * w.flat().size()));
    CAGNET_CHECK(in.good(), "truncated checkpoint payload");
    weights.push_back(std::move(w));
  }
  return weights;
}

}  // namespace cagnet
