#include "src/comm/contract_check.hpp"

#include <cstdlib>
#include <sstream>

namespace cagnet {

namespace {

std::string violation_message(int rank, const char* op, CommCategory cat,
                              const std::string& detail) {
  std::ostringstream os;
  os << "contract violation: rank " << rank << ": " << op << " ["
     << comm_category_name(cat) << "]: " << detail;
  return os.str();
}

}  // namespace

ContractViolation::ContractViolation(int rank, const char* op,
                                     CommCategory cat,
                                     const std::string& detail)
    : Error(violation_message(rank, op, cat, detail)),
      rank_(rank),
      op_(op),
      cat_(cat) {}

namespace contract {

namespace {

/// In-process override installed by set_enabled_for_testing: -1 defers to
/// the env/build-type default, 0/1 force.
std::atomic<int> g_forced{-1};

bool env_default() {
  const char* v = std::getenv("CAGNET_CHECK");
  if (v == nullptr || *v == '\0') {
#ifdef NDEBUG
    return false;  // Release: opt in with CAGNET_CHECK=1
#else
    return true;   // Debug: on unless CAGNET_CHECK=0
#endif
  }
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF");
}

}  // namespace

bool enabled() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = env_default();
  return from_env;
}

void set_enabled_for_testing(int value) {
  g_forced.store(value < 0 ? -1 : (value != 0 ? 1 : 0),
                 std::memory_order_relaxed);
}

void diagnose_double_wait(int rank, const char* op, CommCategory cat) {
  if (!enabled()) return;
  throw ContractViolation(
      rank, op, cat,
      "wait() called on an already-completed op (the handle was waited "
      "twice; drop the second wait or gate it on pending())");
}

Checker::Checker(int size)
    : size_(size), ranks_(new PerRank[static_cast<std::size_t>(size)]) {}

Checker::PerRank& Checker::at(int rank) {
  return ranks_[static_cast<std::size_t>(rank)];
}

const Checker::PerRank& Checker::at(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)];
}

void Checker::on_blocking_begin(int rank, const char* op, CommCategory cat) {
  PerRank& pr = at(rank);
  pr.blocking_depth.fetch_add(1, std::memory_order_relaxed);
  pr.last_op.store(op, std::memory_order_relaxed);
  pr.last_cat.store(static_cast<int>(cat), std::memory_order_relaxed);
}

void Checker::on_blocking_end(int rank) noexcept {
  at(rank).blocking_depth.fetch_sub(1, std::memory_order_relaxed);
}

void Checker::on_post(int rank, std::uint64_t ticket, const char* op,
                      CommCategory cat, std::uint64_t finished_count,
                      std::uint64_t recycle_target) {
  PerRank& pr = at(rank);
  pr.last_op.store(op, std::memory_order_relaxed);
  pr.last_cat.store(static_cast<int>(cat), std::memory_order_relaxed);
  const std::uint64_t expected =
      pr.next_ticket.fetch_add(1, std::memory_order_relaxed);
  if (ticket != expected) {
    throw ContractViolation(
        rank, op, cat,
        "op ticket " + std::to_string(ticket) +
            " issued out of monotone posting order (expected " +
            std::to_string(expected) +
            "); a transport backend must hand out tickets in posting "
            "order or releases lose their meaning");
  }
  if (finished_count < recycle_target) {
    throw ContractViolation(
        rank, op, cat,
        "channel slot republished before every rank finished the "
        "previous generation (finished " + std::to_string(finished_count) +
            " < required " + std::to_string(recycle_target) +
            "); a parked waiter could still be reading the slot");
  }
  pr.posted.fetch_add(1, std::memory_order_relaxed);
}

void Checker::on_complete(int rank) {
  at(rank).completed.fetch_add(1, std::memory_order_relaxed);
}

void Checker::on_charge(int rank, const char* op, CommCategory cat) {
  PerRank& pr = at(rank);
  if (pr.blocking_depth.load(std::memory_order_relaxed) > 0) return;
  if (pr.posted.load(std::memory_order_relaxed) >
      pr.completed.load(std::memory_order_relaxed)) {
    return;
  }
  throw ContractViolation(
      rank, op, cat,
      "meter charge issued with no open op (no blocking collective in "
      "scope and no posted-but-uncompleted nonblocking op to attribute "
      "it to)");
}

void Checker::on_release(int rank, std::uint64_t ticket, const char* op) {
  PerRank& pr = at(rank);
  const std::uint64_t issued =
      pr.next_ticket.load(std::memory_order_relaxed);
  if (ticket >= issued) {
    throw ContractViolation(
        rank, op, CommCategory::kControl,
        "release ticket " + std::to_string(ticket) +
            " names an op that was never posted on this communicator (" +
            std::to_string(issued) + " posted so far)");
  }
}

void Checker::verify_teardown() const {
  for (int r = 0; r < size_; ++r) {
    const PerRank& pr = at(r);
    const char* op = pr.last_op.load(std::memory_order_relaxed);
    if (op == nullptr) op = "comm";
    const auto cat =
        static_cast<CommCategory>(pr.last_cat.load(std::memory_order_relaxed));
    if (pr.blocking_depth.load(std::memory_order_relaxed) != 0) {
      throw ContractViolation(
          r, op, cat,
          "communicator torn down with a blocking collective still open");
    }
    const std::uint64_t posted = pr.posted.load(std::memory_order_relaxed);
    const std::uint64_t completed =
        pr.completed.load(std::memory_order_relaxed);
    if (posted != completed) {
      throw ContractViolation(
          r, op, cat,
          "communicator torn down with " +
              std::to_string(posted - completed) +
              " posted-but-unwaited nonblocking op(s); wait() or quiesce "
              "them before the world ends");
    }
  }
}

}  // namespace contract
}  // namespace cagnet
