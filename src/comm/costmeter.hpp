// Per-rank alpha-beta communication accounting.
//
// Every collective in the simulated runtime charges its textbook cost
// (Chan et al. / Thakur et al., the same sources the paper cites) to the
// calling rank's meter, split by traffic category so Fig. 3's scomm/dcomm/
// trpose decomposition can be regenerated.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>

#include "src/comm/machine.hpp"

namespace cagnet {

/// What kind of payload a communication operation carried.
enum class CommCategory : std::size_t {
  kDense = 0,   ///< activations, gradients, intermediate dense products
  kSparse,      ///< adjacency submatrices (SUMMA broadcasts of A)
  kTranspose,   ///< distributed transpose traffic
  kHalo,        ///< demand-driven halo rows (the 1D family's sparsity-aware
                ///< forward exchange; edgecut_P(A) * f words per layer)
  kCompressed,  ///< lossy-codec payloads, metered at actual post-compression
                ///< bytes (in Real-sized words, so fractional values appear)
  kControl,     ///< harness/bookkeeping traffic, excluded from modeled time
  kCount
};

const char* comm_category_name(CommCategory c);

class CostMeter {
 public:
  static constexpr std::size_t kNumCategories =
      static_cast<std::size_t>(CommCategory::kCount);

  /// Charge `latency_units` alpha-terms (e.g. lg P for a broadcast) and
  /// `words` 8-byte words of bandwidth to a category.
  void add(CommCategory cat, double latency_units, double words);

  double latency_units(CommCategory cat) const;
  double words(CommCategory cat) const;

  /// Totals excluding kControl.
  double total_latency_units() const;
  double total_words() const;

  /// alpha * latency + beta * words for one category (kControl -> 0).
  double modeled_seconds(const MachineModel& m, CommCategory cat) const;
  /// Sum of modeled seconds over all metered categories.
  double modeled_seconds(const MachineModel& m) const;

  // ---- Overlap accounting (nonblocking runtime) ----
  //
  // An *overlapped region* is one compute block that ran while previously
  // posted nonblocking collectives were in flight. The runtime charges
  // words/latency identically whether or not overlap is on — volumes are
  // the paper's measurements and never change — but for each region the
  // meter additionally records the region's modeled comm seconds c (the
  // alpha-beta value of the charges attributed to it) and compute seconds
  // w, accumulating both the serialized reading c + w and the overlapped
  // reading max(c, w). The difference is the modeled time the overlap
  // hides; EpochStats::modeled_seconds_overlap subtracts it.

  /// Open a region: charges added until end_overlap_region are attributed
  /// to it. Regions may not nest.
  void begin_overlap_region();

  /// Close the open region, folding its charge delta with `m` and pairing
  /// it against `compute_seconds` of modeled local-kernel work.
  void end_overlap_region(const MachineModel& m, double compute_seconds);

  /// Sum over regions of comm + compute (the no-overlap reading).
  double overlap_serialized_seconds() const { return overlap_serialized_; }
  /// Sum over regions of max(comm, compute) (the overlapped reading).
  double overlap_overlapped_seconds() const { return overlap_overlapped_; }
  /// Modeled seconds hidden by overlap: serialized - overlapped. Clamped
  /// at zero: per region max(c, w) <= c + w exactly, but cross-rank
  /// reductions max the two totals independently, which can leave the
  /// difference one ulp negative when every region's saving is ~0.
  double overlap_saved_seconds() const {
    return std::max(0.0, overlap_serialized_ - overlap_overlapped_);
  }
  /// Number of regions recorded (a double so cross-rank reductions can
  /// serialize it alongside the other totals).
  double overlap_regions() const { return overlap_regions_; }

  /// Rebuild the overlap totals from serialized values (cross-rank
  /// reductions; see EpochStats::reduce_max).
  void restore_overlap_totals(double serialized, double overlapped,
                              double regions) {
    overlap_serialized_ = serialized;
    overlap_overlapped_ = overlapped;
    overlap_regions_ = regions;
  }

  // ---- Staleness accounting (bounded-staleness halo refresh) ----
  //
  // A stale-skipped halo exchange charges zero kHalo words; the meter
  // separately records the words the exact exchange *would* have moved so
  // the bench can report the saving without re-deriving it from plan
  // geometry. Not part of total_words()/modeled time — nothing moved.

  /// Credit `words` halo words avoided by replaying a stale cache.
  void add_stale_saved(double words) { stale_saved_words_ += words; }
  /// Halo words avoided by stale replays since the last clear.
  double stale_saved_words() const { return stale_saved_words_; }
  /// Rebuild the stale counter from a serialized value (cross-rank
  /// reductions; see EpochStats::reduce_max).
  void restore_stale_saved_words(double words) {
    stale_saved_words_ = words;
  }

  void clear() { *this = CostMeter{}; }

  /// Component-wise max: bulk-synchronous epochs are paced by the rank with
  /// the most communication.
  void merge_max(const CostMeter& other);
  /// Component-wise sum: aggregate traffic across ranks.
  void merge_sum(const CostMeter& other);

  /// Component-wise subtraction, used to take per-epoch deltas of the
  /// cumulative per-rank meter.
  void subtract(const CostMeter& other);

  std::string to_string() const;

 private:
  std::array<double, kNumCategories> latency_ = {};
  std::array<double, kNumCategories> words_ = {};

  // Overlap totals (merged/subtracted like the charge arrays) and the
  // transient open-region marks (snapshot of the charge arrays; never
  // merged).
  double overlap_serialized_ = 0;
  double overlap_overlapped_ = 0;
  double overlap_regions_ = 0;
  double stale_saved_words_ = 0;
  bool region_open_ = false;
  std::array<double, kNumCategories> region_lat_mark_ = {};
  std::array<double, kNumCategories> region_words_mark_ = {};
};

}  // namespace cagnet
