// Per-rank alpha-beta communication accounting.
//
// Every collective in the simulated runtime charges its textbook cost
// (Chan et al. / Thakur et al., the same sources the paper cites) to the
// calling rank's meter, split by traffic category so Fig. 3's scomm/dcomm/
// trpose decomposition can be regenerated.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "src/comm/machine.hpp"

namespace cagnet {

/// What kind of payload a communication operation carried.
enum class CommCategory : std::size_t {
  kDense = 0,   ///< activations, gradients, intermediate dense products
  kSparse,      ///< adjacency submatrices (SUMMA broadcasts of A)
  kTranspose,   ///< distributed transpose traffic
  kControl,     ///< harness/bookkeeping traffic, excluded from modeled time
  kCount
};

const char* comm_category_name(CommCategory c);

class CostMeter {
 public:
  static constexpr std::size_t kNumCategories =
      static_cast<std::size_t>(CommCategory::kCount);

  /// Charge `latency_units` alpha-terms (e.g. lg P for a broadcast) and
  /// `words` 8-byte words of bandwidth to a category.
  void add(CommCategory cat, double latency_units, double words);

  double latency_units(CommCategory cat) const;
  double words(CommCategory cat) const;

  /// Totals excluding kControl.
  double total_latency_units() const;
  double total_words() const;

  /// alpha * latency + beta * words for one category (kControl -> 0).
  double modeled_seconds(const MachineModel& m, CommCategory cat) const;
  /// Sum of modeled seconds over all metered categories.
  double modeled_seconds(const MachineModel& m) const;

  void clear() { *this = CostMeter{}; }

  /// Component-wise max: bulk-synchronous epochs are paced by the rank with
  /// the most communication.
  void merge_max(const CostMeter& other);
  /// Component-wise sum: aggregate traffic across ranks.
  void merge_sum(const CostMeter& other);

  /// Component-wise subtraction, used to take per-epoch deltas of the
  /// cumulative per-rank meter.
  void subtract(const CostMeter& other);

  std::string to_string() const;

 private:
  std::array<double, kNumCategories> latency_ = {};
  std::array<double, kNumCategories> words_ = {};
};

}  // namespace cagnet
