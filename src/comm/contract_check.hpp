// Runtime contract checker for the comm runtime.
//
// The nonblocking layer has a documented lifecycle discipline (DESIGN.md,
// "Nonblocking runtime and overlap accounting"): every posted PendingOp is
// waited or quiesced before its communicator is torn down, a channel slot
// is never republished before every rank has retired the previous
// generation, tickets are issued in monotone posting order, release
// requests name ops that were actually posted, and every CommCategory
// charge the runtime issues is attributed to an op that is open at charge
// time. Nothing enforced any of that at runtime — a violation surfaced as
// a deadlock, a corrupted meter, or silence. The Checker validates each
// rule at the runtime's own hook points and reports violations as typed
// ContractViolation diagnostics naming rank, op, and category, exactly
// like CommAborted does for injected faults.
//
// Cost model: one Checker per CommState (so split sub-communicators are
// covered), a handful of relaxed-ish atomics per hook, no locks, no
// allocation after construction. It is on by default in Debug builds and
// off in Release; CAGNET_CHECK=1 / CAGNET_CHECK=0 overrides either way.
// The checker only observes — enabling it never changes data movement,
// meter values, or result bits (tests/contract_test.cpp asserts bitwise
// identity of metered runs with the checker on and off).
//
// Scope note: the checker audits charges issued *by the comm runtime*
// (Comm::charge, PendingOp::charge, the compressed waits). Core-layer
// cache replays that add to a CostMeter directly (the bounded-staleness
// epoch replay) are deliberate bypasses of the runtime and are outside
// its jurisdiction — see DESIGN.md, "Correctness tooling".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/comm/costmeter.hpp"
#include "src/util/error.hpp"

namespace cagnet {

/// Typed diagnostic for a comm-runtime lifecycle violation. Carries the
/// observing rank, the op's display name, and the traffic category, like
/// CommAborted — so a harness can assert on structure, not just text.
class ContractViolation : public Error {
 public:
  ContractViolation(int rank, const char* op, CommCategory cat,
                    const std::string& detail);

  int rank() const { return rank_; }
  const char* op() const { return op_; }
  CommCategory category() const { return cat_; }

 private:
  int rank_;
  const char* op_;
  CommCategory cat_;
};

namespace contract {

/// Whether the checker is armed for newly created communicators: the
/// CAGNET_CHECK env knob when set ("0"/"off" disables, anything else
/// enables), otherwise on in Debug builds (!NDEBUG) and off in Release.
bool enabled();

/// Test hook: force the checker on (1), off (0), or back to the
/// env/build-type default (-1). Affects communicators created after the
/// call; in-process only.
void set_enabled_for_testing(int value);

/// Diagnose a second wait() on an already-completed PendingOp. A no-op
/// when the checker is disabled (the documented idempotent-wait
/// behaviour); throws ContractViolation when armed. Out-of-line so the
/// hot wait() entry stays a flag test.
void diagnose_double_wait(int rank, const char* op, CommCategory cat);

/// Per-communicator lifecycle auditor. One instance lives in each
/// CommState (world and splits) when enabled() was true at construction.
/// All hooks are called from the owning rank's thread; the atomics exist
/// so verify_teardown may read from the launching thread after join and
/// so a future multi-threaded transport backend stays data-race-free.
class Checker {
 public:
  explicit Checker(int size);

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// A blocking collective entered (see BlockingScope). Charges are legal
  /// while at least one blocking op is open on the rank.
  void on_blocking_begin(int rank, const char* op, CommCategory cat);
  /// The matching exit; noexcept so unwinding an aborted collective
  /// rebalances the depth without masking the original error.
  void on_blocking_end(int rank) noexcept;

  /// A nonblocking post claimed `ticket` and is about to publish its
  /// channel slots. Validates monotone ticket issuance and re-asserts the
  /// recycle gate: `finished_count` (the channel's cumulative finished
  /// counter as observed by the poster) must have reached
  /// `recycle_target`, or the slot overwrite could race a parked reader
  /// of the previous generation.
  void on_post(int rank, std::uint64_t ticket, const char* op,
               CommCategory cat, std::uint64_t finished_count,
               std::uint64_t recycle_target);

  /// A posted op completed (waited, drained, or destroyed-and-completed).
  void on_complete(int rank);

  /// A meter charge is being issued. Legal only while the rank has an
  /// open op: a blocking collective in scope or a posted-but-uncompleted
  /// nonblocking op.
  void on_charge(int rank, const char* op, CommCategory cat);

  /// A release request (quiesce_op) named `ticket`. The ticket must have
  /// been issued by a post on this communicator.
  void on_release(int rank, std::uint64_t ticket, const char* op);

  /// End-of-world audit, called after every rank thread joined (and only
  /// on the non-abort path — a poisoned world tears down mid-op by
  /// design). Every posted op must be completed and no blocking
  /// collective may still be open.
  void verify_teardown() const;

 private:
  struct PerRank {
    std::atomic<std::uint64_t> posted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> next_ticket{0};
    std::atomic<int> blocking_depth{0};
    /// Display name of the most recent post/blocking entry, for teardown
    /// diagnostics. Points at string literals / static storage only.
    std::atomic<const char*> last_op{nullptr};
    std::atomic<int> last_cat{0};
  };

  PerRank& at(int rank);
  const PerRank& at(int rank) const;

  int size_;
  std::unique_ptr<PerRank[]> ranks_;
};

/// RAII bracket for one blocking collective on one rank. Null checker
/// (disabled, or a Release build with CAGNET_CHECK unset) makes both ends
/// free.
class BlockingScope {
 public:
  BlockingScope(Checker* checker, int rank, const char* op, CommCategory cat)
      : checker_(checker), rank_(rank) {
    if (checker_ != nullptr) checker_->on_blocking_begin(rank, op, cat);
  }
  ~BlockingScope() {
    if (checker_ != nullptr) checker_->on_blocking_end(rank_);
  }

  BlockingScope(const BlockingScope&) = delete;
  BlockingScope& operator=(const BlockingScope&) = delete;

 private:
  Checker* checker_;
  int rank_;
};

}  // namespace contract
}  // namespace cagnet
