// Machine performance model used to convert metered communication volumes
// and local flop counts into modeled wall time.
//
// The paper runs on Summit (6x V100 per node, NVLINK intra-node, dual-rail
// EDR InfiniBand at 23 GB/s inter-node) and reports all results in epoch
// seconds. Our substrate executes on a host CPU, so absolute wall time is
// not comparable; instead every trainer meters (a) alpha-beta communication
// per category and (b) local kernel flops, and this model maps both to
// "Summit-like" seconds. The constants are order-of-magnitude calibrations,
// documented in EXPERIMENTS.md; the reproduced quantity is the *shape*
// (scaling factors, who dominates), which is insensitive to the constants.
#pragma once

namespace cagnet {

struct MachineModel {
  /// Seconds per message (NCCL collective software latency + wire latency).
  /// The paper observes ~1 ms broadcasts on Summit being latency-bound;
  /// per-hop alpha is lower since a lg(P) tree multiplies it.
  double alpha = 2.0e-5;

  /// Seconds per 8-byte word: dual-rail EDR InfiniBand, 23 GB/s.
  double beta = 8.0 / 23.0e9;

  /// Saturated V100 SpMM (cuSPARSE csrmm2) throughput in GFlop/s.
  double spmm_base_gflops = 120.0;

  /// Degree at which SpMM reaches half its saturated rate. With 30, the
  /// rate ratio between avg degree 62 and 8 is ~3.2x, matching the factor-3
  /// degradation of Yang et al. cited in Section VI-a.
  double spmm_degree_half = 30.0;

  /// Dense width (columns of the dense operand) at which SpMM reaches half
  /// rate; models the "skinny dense matrix" penalty (f/sqrt(P) columns).
  double spmm_width_half = 4.0;

  /// V100 dense GEMM GFlop/s (fp32 peak 15.7 TF; sustained fraction).
  double gemm_gflops = 7000.0;

  /// Effective SpMM rate for a block with the given average row degree and
  /// dense operand width: saturating in both factors, multiplicative, which
  /// mirrors the paper's "multiplicative detrimental impact" remark.
  double spmm_gflops(double avg_degree, double dense_width) const;

  /// Summit-calibrated defaults.
  static MachineModel summit() { return {}; }
};

/// Local-computation meter: accumulates modeled kernel seconds.
class WorkMeter {
 public:
  /// Record one local SpMM: A_block (nnz nonzeros, avg_degree) times a dense
  /// operand with `width` columns. flops = 2 * nnz * width.
  void add_spmm(const MachineModel& m, double nnz, double width,
                double avg_degree);

  /// Record one local dense GEMM of the given flop count.
  void add_gemm(const MachineModel& m, double flops);

  double spmm_seconds() const { return spmm_seconds_; }
  double gemm_seconds() const { return gemm_seconds_; }
  double spmm_flops() const { return spmm_flops_; }
  double gemm_flops() const { return gemm_flops_; }
  double total_seconds() const { return spmm_seconds_ + gemm_seconds_; }

  void clear() { *this = WorkMeter{}; }
  void merge_max(const WorkMeter& other);

  /// Rebuild a meter from serialized values (cross-rank reductions).
  static WorkMeter from_values(double spmm_seconds, double gemm_seconds,
                               double spmm_flops, double gemm_flops) {
    WorkMeter w;
    w.spmm_seconds_ = spmm_seconds;
    w.gemm_seconds_ = gemm_seconds;
    w.spmm_flops_ = spmm_flops;
    w.gemm_flops_ = gemm_flops;
    return w;
  }

 private:
  double spmm_seconds_ = 0;
  double gemm_seconds_ = 0;
  double spmm_flops_ = 0;
  double gemm_flops_ = 0;
};

}  // namespace cagnet
