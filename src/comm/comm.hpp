// Simulated message-passing runtime.
//
// This is the repo's stand-in for torch.distributed/NCCL on Summit (see
// DESIGN.md, "Substitutions"). A *world* of P ranks runs as P threads in one
// process. A Comm exposes MPI-flavoured collectives whose semantics match
// the operations the paper's algorithms are written in terms of: broadcast,
// all-reduce, reduce-scatter, all-gather(v), and pairwise exchange. Data is
// genuinely moved between rank-private buffers (so algorithm correctness is
// real), and every operation charges its textbook alpha-beta cost to the
// rank's CostMeter (so communication volumes are real too).
//
// Contract (same as MPI): a collective must be invoked by every member of
// the communicator, in the same program order. All spans must stay alive
// until the call returns.
//
// Nonblocking layer: the i-prefixed collectives (ibroadcast_from,
// ireduce_scatter_sum, iallgatherv_into, iallreduce_sum) post immediately
// and return a PendingOp whose wait() completes the data movement and the
// meter charge. Posts must follow the same program order on every rank;
// waits may be out of order. Between post and wait a rank may compute and
// may run other collectives (blocking or nonblocking) on any communicator —
// this is what the SUMMA double-buffering in src/core/ exploits. See
// DESIGN.md, "Nonblocking runtime and overlap accounting".
#pragma once

#include <atomic>
#include <cstring>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/comm/compress.hpp"
#include "src/comm/contract_check.hpp"
#include "src/comm/costmeter.hpp"
#include "src/comm/fault.hpp"
#include "src/util/error.hpp"
#include "src/util/types.hpp"

namespace cagnet {

class Profiler;  // src/util/profiler.hpp; compressed collectives time
                 // their codec work under Phase::kCompressPack

/// ceil(log2(p)) with ceil_log2(1) == 0: the latency factor of a
/// tree-structured collective.
double ceil_log2(int p);

namespace detail {

/// Channels per communicator for nonblocking collectives; also the cap on
/// posted-but-unwaited operations per rank (posting more is diagnosed, not
/// deadlocked).
inline constexpr int kAsyncChannels = 16;

/// Which nonblocking collective a channel generation carries; published
/// per rank so mismatched program order is diagnosed at wait().
enum class OpKind : std::uint8_t {
  kNone = 0,
  kBcast,
  kReduceScatter,
  kAllgatherv,
  kAllreduce,
  kAlltoallv,
};

/// Display name of a nonblocking op kind (diagnostics and CommAborted).
const char* op_kind_name(OpKind kind);

/// Identity of the operation a seam event or abort belongs to: the
/// observing rank, the traffic category, and the op's display name. Built
/// once per collective call and threaded through the publish/await/charge
/// hooks and every abort throw, so a CommAborted always names rank, phase,
/// and op kind no matter where the unwind started.
struct OpContext {
  int rank;
  CommCategory cat;
  const char* op;
};

/// Throw the peer-failure form of CommAborted: the world died under this
/// rank while it was inside `ctx`'s operation.
[[noreturn]] void throw_peer_aborted(const OpContext& ctx, FaultSite site);

/// Rendezvous state of one nonblocking-collective channel. Channels are
/// recycled in generations: the op with ticket T uses channel T % K at
/// generation T / K. `posted` and `finished` count cumulatively across
/// generations; generation G's payload is readable once posted reaches
/// size*(G+1), and the channel is recyclable for G+1 once finished reaches
/// size*(G+1). Slot writes happen-before the posting increment (release)
/// and slot reads happen-before the finishing increment, so recycling
/// never races with a straggling reader.
struct AsyncChannel {
  explicit AsyncChannel(int n)
      : posted_by(static_cast<std::size_t>(n)),
        ptr(static_cast<std::size_t>(n), nullptr),
        ptr2(static_cast<std::size_t>(n), nullptr),
        len(static_cast<std::size_t>(n), 0),
        kind(static_cast<std::size_t>(n), OpKind::kNone),
        root(static_cast<std::size_t>(n), -1) {}

  std::atomic<std::uint64_t> posted{0};
  std::atomic<std::uint64_t> finished{0};
  /// Per-rank cumulative post counts (posted == sum of these). They give
  /// the per-source drain of an alltoallv something finer to await than
  /// "everyone has posted": rank r's slots for generation G are readable
  /// once posted_by[r] reaches G+1, so a drainer can consume source r's
  /// chunk while slower ranks are still computing toward their posts.
  std::vector<std::atomic<std::uint64_t>> posted_by;
  /// Parked-waiter count gating the notify syscalls: posters bump their
  /// counter (seq_cst) and notify only when this is nonzero; waiters
  /// advertise themselves (seq_cst) before parking. The seq_cst total
  /// order makes a missed wake a cycle, hence impossible.
  std::atomic<int> waiters{0};
  std::vector<const void*> ptr;  ///< per-rank published source
  std::vector<const void*> ptr2; ///< secondary publication (alltoallv: the
                                 ///< per-destination offsets array)
  std::vector<std::size_t> len;  ///< per-rank published element count
  std::vector<OpKind> kind;      ///< per-rank op kind (order validation)
  std::vector<int> root;         ///< per-rank root (order validation)
};

struct CommState;

/// World-wide abort fan-out shared by a world and every communicator split
/// off it. A failing rank sets the flag and poisons every registered
/// state's channels and phase gates (bump + notify), so waiters parked on
/// futexes anywhere in the communicator tree — nonblocking waits AND
/// blocking-collective rendezvous, including on split sub-communicators —
/// wake, observe the flag, and unwind.
struct AbortHub {
  std::atomic<bool> aborted{false};
  std::mutex mutex;
  std::vector<std::weak_ptr<CommState>> states;
  /// World-lifetime fault schedule captured from the process-global plan
  /// at run_world entry; null is the everything-disabled fast path.
  std::shared_ptr<FaultPlan> fault;
  /// Strong refs to every state carrying a contract checker, so run_world
  /// can audit split sub-communicators at teardown even after the rank
  /// threads dropped theirs. Empty when the checker is disabled.
  std::vector<std::shared_ptr<CommState>> checked_states;

  void register_state(const std::shared_ptr<CommState>& state);  // comm.cpp
  void poison();  // comm.cpp
};

/// Abortable phase barrier (replaces std::barrier, which only a
/// participant can drop: a rank that died elsewhere would leave peers
/// parked in a blocking collective forever). Arrivals are a cumulative
/// counter; the last arrival of a phase bumps `released` and wakes the
/// rest, who park on it futex-style. AbortHub::poison bumps `released`
/// too, so every parked arrival wakes, observes the flag, and unwinds —
/// the unwind guarantee now covers blocking collectives on split
/// sub-communicators as well.
struct PhaseGate {
  explicit PhaseGate(int n) : size(static_cast<std::uint64_t>(n)) {}

  const std::uint64_t size;
  std::atomic<std::uint64_t> arrived{0};
  std::atomic<std::uint64_t> released{0};  ///< completed phases
  std::atomic<int> waiters{0};
};

/// Shared state of one communicator: a phase barrier plus per-rank
/// publication slots for the blocking collectives, and a ring of
/// AsyncChannels for the nonblocking ones. All blocking slot accesses are
/// separated by barrier phases, which provide the necessary happens-before
/// edges; the channels carry their own ordering (see AsyncChannel).
struct CommState {
  CommState(int n, std::shared_ptr<AbortHub> abort_hub)
      : size(n), gate(n),
        slot_ptr(static_cast<std::size_t>(n), nullptr),
        slot_ptr2(static_cast<std::size_t>(n), nullptr),
        slot_len(static_cast<std::size_t>(n), 0),
        slot_dest(static_cast<std::size_t>(n), -1),
        next_ticket(static_cast<std::size_t>(n), 0),
        outstanding(static_cast<std::size_t>(n), 0),
        in_collective(static_cast<std::size_t>(n)),
        hub(std::move(abort_hub)) {
    channels.reserve(kAsyncChannels);
    for (int c = 0; c < kAsyncChannels; ++c) {
      channels.push_back(std::make_unique<AsyncChannel>(n));
    }
    if (contract::enabled()) {
      checker = std::make_unique<contract::Checker>(n);
    }
  }

  const int size;
  /// Process-unique identity. A raw CommState pointer is NOT a safe
  /// identity across worlds: a rebuilt world's allocation can land on a
  /// freed predecessor's address, and anything keyed on the pointer (the
  /// compress-buffer binding) would silently adopt stale state from the
  /// dead world. The uid is never recycled, so a binding check against it
  /// always detects a new communicator.
  const std::uint64_t uid = next_uid();
  PhaseGate gate;
  std::vector<const void*> slot_ptr;
  std::vector<const void*> slot_ptr2; // alltoallv per-destination offsets
  std::vector<std::size_t> slot_len;  // element counts, payload-defined units
  std::vector<int> slot_dest;         // route() destination per rank
  std::vector<unsigned char> scratch; // reduction workspace (rank 0 resizes)
  std::vector<std::unique_ptr<AsyncChannel>> channels;
  std::vector<std::uint64_t> next_ticket;  // per rank; owner-written only
  std::vector<int> outstanding;            // per-rank posted-unwaited count
  /// Per-rank count of open slot-reading regions (blocking collective
  /// bodies, nonblocking waits, per-source drains). On the abort path a
  /// dying rank drains these before its unwind frees the buffers it
  /// published — see CollectiveWindow.
  std::vector<std::atomic<int>> in_collective;
  /// Lifecycle auditor (null unless contract::enabled() held at
  /// construction); split sub-communicators build their own.
  std::unique_ptr<contract::Checker> checker;
  std::mutex mutex;
  /// Transient rendezvous of an in-flight split(). Owned here (not by the
  /// splitting ranks) so a rank failure mid-split cannot leak it: it is
  /// released at the split's final phase, by the next split, or with this
  /// state.
  std::shared_ptr<void> split_ctx;
  /// Shared with every communicator split off this one, so a rank failure
  /// anywhere in the world also unblocks nonblocking waits on
  /// sub-communicators.
  std::shared_ptr<AbortHub> hub;

 private:
  static std::uint64_t next_uid() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }
};

/// Block until `counter` (cumulative across channel generations) reaches
/// `target`: a few yields for the near-miss case, then a futex park
/// (atomic wait) that burns no cycles — on an oversubscribed host the
/// rank being waited on needs them. Throws CommAborted (naming `ctx`'s
/// rank/op/category) as soon as the world aborts: AbortHub::poison bumps
/// and notifies every counter, so parked waiters wake. Posts precede
/// waits by a whole compute stage in the double-buffered loops, so the
/// fast path is a single load.
void await_counter(const std::atomic<std::uint64_t>& counter,
                   std::atomic<int>& waiters, std::uint64_t target,
                   const std::atomic<bool>& aborted, const OpContext& ctx);

/// Counter bump + conditional wake, the posting half of await_counter's
/// protocol.
// [[hot-path]]
inline void bump_counter(std::atomic<std::uint64_t>& counter,
                         const std::atomic<int>& waiters) {
  counter.fetch_add(1, std::memory_order_seq_cst);
  if (waiters.load(std::memory_order_seq_cst) != 0) counter.notify_all();
}

/// The transport seam: every payload publication, completion await, and
/// meter charge in the runtime reports itself here. With no fault plan
/// installed this is a null-pointer test (no lock, no allocation, no
/// charge perturbation); with one armed it is where kills, delays, and
/// poisoned payloads are injected (src/comm/fault.hpp).
// [[hot-path]]
inline void seam_event(const CommState& st, const OpContext& ctx,
                       FaultSite site) {
  FaultPlan* plan = st.hub->fault.get();
  if (plan != nullptr) [[unlikely]] {
    try {
      plan->on_event(ctx.rank, ctx.cat, site, ctx.op);
    } catch (...) {
      // Poison at throw time, not at run_world's catch: the dying rank's
      // own stack unwind completes in-flight ops, and those completions
      // block on peers who in turn block on this rank — a mutual wait
      // that only resolves if the abort flag is already up world-wide
      // when the unwind's awaits run.
      st.hub->poison();
      throw;
    }
  }
}

/// Program-order mismatch diagnostic naming this rank, the op it is
/// waiting on (kind + category), the offending peer, and what that peer
/// posted instead. Out-of-line (comm.cpp) — built only on the failure
/// path.
std::string order_mismatch(const OpContext& ctx, OpKind want, int peer,
                           OpKind got);

/// RAII bracket around one slot-reading region (a blocking collective
/// body, a nonblocking wait, a per-source drain). Healthy worlds pay two
/// uncontended atomic RMWs. Its real job is the abort path: a rank whose
/// exception escapes the region poisons the world immediately (so no peer
/// starts a new read of this rank's published buffers) and then blocks
/// until every other rank's open regions drain, because a peer that
/// passed its await before the poison landed may still be mid-read of a
/// buffer this rank's unwind is about to free. Peers exit their regions
/// in bounded time — parked ones are poison-woken and throw, active ones
/// throw at their next await — and each dying rank closes its own region
/// before waiting on the others', so mutual aborts cannot cycle.
/// ThreadSanitizer found the use-after-free window this closes (a killed
/// rank's teardown racing a straggling reader); the acquire/release pair
/// on the region counter is also the happens-before edge that orders the
/// reader's last load before the dying rank's free.
class CollectiveWindow {
 public:
  CollectiveWindow(CommState& st, int rank)
      : st_(st),
        rank_(rank),
        entry_exceptions_(std::uncaught_exceptions()) {
    st_.in_collective[static_cast<std::size_t>(rank)].fetch_add(
        1, std::memory_order_seq_cst);
  }
  ~CollectiveWindow();  // comm.cpp

  CollectiveWindow(const CollectiveWindow&) = delete;
  CollectiveWindow& operator=(const CollectiveWindow&) = delete;

 private:
  CommState& st_;
  int rank_;
  int entry_exceptions_;  ///< uncaught count at entry; more at exit = unwind
};

}  // namespace detail

/// Concatenation of per-rank variable-length contributions, with offsets.
template <typename T>
struct Gathered {
  std::vector<T> data;
  std::vector<std::size_t> offsets;  ///< size+1 entries; rank r owns
                                     ///< [offsets[r], offsets[r+1])
  std::span<const T> chunk(int r) const {
    return {data.data() + offsets[static_cast<std::size_t>(r)],
            offsets[static_cast<std::size_t>(r) + 1] -
                offsets[static_cast<std::size_t>(r)]};
  }
};

/// Reusable state of one compressed-collective stream: this rank's
/// encoded wire bytes, the gathered peers' bytes, a decode scratch, and
/// the optional error-feedback residual (see src/comm/compress.hpp).
/// A buf is bound to a (communicator, element count) pair on first use;
/// using it with a different communicator or length resets the residual,
/// because feedback accumulated against other peers or another buffer
/// shape would be meaningless noise (tests/comm_test.cpp asserts the
/// reset). Reuse the same buf across rounds of the same reduction — that
/// reuse is what carries the quantization error forward.
struct CompressBuf {
  std::vector<std::uint8_t> send;    ///< this rank's encoded wire bytes
  Gathered<std::uint8_t> recv;       ///< peers' wire bytes (gathered)
  std::vector<Real> residual;        ///< error-feedback carry
  std::vector<Real> scratch;         ///< decode workspace
  bool error_feedback = false;       ///< apply residual feedback on encode
  std::uint64_t bound_comm = 0;  ///< uid of the bound communicator (0 = none)
  std::size_t bound_n = 0;       ///< bound element count
};

namespace detail {

/// Shared unpack of the blocking and nonblocking alltoallv: computes the
/// per-source offsets from each rank's published (send, offsets) pair,
/// copies this rank's chunks into `out`, and returns the self-chunk
/// element count (which the charge excludes). One copy keeps the two
/// paths' movement and charge arithmetic in lockstep.
template <typename T>
std::size_t alltoallv_unpack(int p, int rank,
                             const std::vector<const void*>& ptr,
                             const std::vector<const void*>& ptr2,
                             Gathered<T>& out) {
  const auto me = static_cast<std::size_t>(rank);
  out.offsets.resize(static_cast<std::size_t>(p) + 1);
  out.offsets[0] = 0;
  std::size_t self_chunk = 0;
  for (int r = 0; r < p; ++r) {
    const auto* offs =
        static_cast<const std::size_t*>(ptr2[static_cast<std::size_t>(r)]);
    const std::size_t len = offs[me + 1] - offs[me];
    if (r == rank) self_chunk = len;
    out.offsets[static_cast<std::size_t>(r) + 1] =
        out.offsets[static_cast<std::size_t>(r)] + len;
  }
  out.data.resize(out.offsets.back());
  for (int r = 0; r < p; ++r) {
    const auto* offs =
        static_cast<const std::size_t*>(ptr2[static_cast<std::size_t>(r)]);
    const std::size_t len = offs[me + 1] - offs[me];
    if (len == 0) continue;
    std::memcpy(out.data.data() + out.offsets[static_cast<std::size_t>(r)],
                static_cast<const T*>(ptr[static_cast<std::size_t>(r)]) +
                    offs[me],
                len * sizeof(T));
  }
  return self_chunk;
}

}  // namespace detail

/// Handle to a posted-but-possibly-incomplete nonblocking collective.
/// Move-only. wait() blocks until every member has posted the matching op,
/// performs this rank's data movement, charges the meter exactly as the
/// blocking form would, and releases the channel; a second wait() is a
/// no-op, diagnosed as a ContractViolation when the contract checker is
/// armed (gate repeat waits on pending()). A
/// PendingOp that is destroyed while still pending completes itself first
/// (like a blocking wait), swallowing abort errors so unwinding a failed
/// world never terminates.
///
/// Caller contract: every span passed to the posting call must stay valid
/// and unmodified until *every* rank has waited the op (sources are read by
/// peers at their own wait), and output spans must not alias any rank's
/// contribution.
class PendingOp {
 public:
  PendingOp() = default;  ///< empty handle; pending() is false

  PendingOp(PendingOp&& other) noexcept { *this = std::move(other); }
  PendingOp& operator=(PendingOp&& other) noexcept {
    if (this != &other) {
      complete_for_destroy();
      state_ = std::move(other.state_);
      rank_ = other.rank_;
      meter_ = other.meter_;
      ticket_ = other.ticket_;
      cat_ = other.cat_;
      root_ = other.root_;
      charged_ = other.charged_;
      kind_ = other.kind_;
      out_ = other.out_;
      out_len_ = other.out_len_;
      src_len_ = other.src_len_;
      gathered_ = other.gathered_;
      drained_mask_ = other.drained_mask_;
      waited_ = other.waited_;
      complete_ = other.complete_;
      other.state_.reset();
      other.complete_ = nullptr;
      other.waited_ = false;  // moved-from behaves like an empty handle
    }
    return *this;
  }

  PendingOp(const PendingOp&) = delete;
  PendingOp& operator=(const PendingOp&) = delete;

  ~PendingOp() { complete_for_destroy(); }

  /// True between post and wait.
  bool pending() const { return state_ != nullptr; }

  /// Posting-order index of this op on its communicator (valid while
  /// pending). Record it before wait() to later release this op's
  /// sources with Comm::quiesce_op.
  std::uint64_t ticket() const { return ticket_; }

  /// Complete the op: block for all posts, move this rank's data, charge
  /// the meter, release the channel. No-op when not pending — but a
  /// second wait() on an already-completed handle is diagnosed as a
  /// ContractViolation when the contract checker is armed (gate a
  /// maybe-completed wait on pending() instead of relying on the no-op).
  void wait();

  // ---- Per-source drain (alltoallv-post ops only; see
  // Comm::ialltoallv_post). ----

  /// Block until `src` alone has posted the matching alltoallv, then
  /// return a read-only view of the chunk it addressed to this rank —
  /// straight into src's send buffer, no staging copy. Charges 1 latency
  /// unit + the chunk's words (nothing for src == rank(), mirroring the
  /// blocking form's self-chunk exclusion), so draining every source sums
  /// bitwise to the blocking alltoallv_into charge. Call at most once per
  /// source; the view stays readable until this communicator's release
  /// point for the op (quiesce / quiesce_op), exactly like any posted
  /// source. Worlds wider than 64 ranks are diagnosed (the drain ledger
  /// is a 64-bit mask).
  template <typename T>
  std::span<const T> await_source(int src) {
    CAGNET_CHECK(pending(), "await_source on a non-pending op");
    CAGNET_CHECK(kind_ == detail::OpKind::kAlltoallv && gathered_ == nullptr,
                 "await_source: op was not posted with ialltoallv_post");
    CAGNET_CHECK(src >= 0 && src < state_->size,
                 "await_source: source rank out of range");
    CAGNET_CHECK(src < 64, "await_source: drain supports at most 64 ranks");
    CAGNET_CHECK((drained_mask_ & (std::uint64_t{1} << src)) == 0,
                 "await_source: source already drained");
    const detail::OpContext ctx{rank_, cat_, "ialltoallv_post drain"};
    detail::CollectiveWindow window(*state_, rank_);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    auto& ch = *state_->channels[ticket_ %
                                 static_cast<std::uint64_t>(
                                     detail::kAsyncChannels)];
    const std::uint64_t gen =
        ticket_ / static_cast<std::uint64_t>(detail::kAsyncChannels);
    if (src != rank_) {
      detail::await_counter(ch.posted_by[static_cast<std::size_t>(src)],
                            ch.waiters, gen + 1, state_->hub->aborted, ctx);
    }
    CAGNET_CHECK(ch.kind[static_cast<std::size_t>(src)] == kind_ &&
                     ch.root[static_cast<std::size_t>(src)] == root_,
                 detail::order_mismatch(
                     ctx, kind_, src, ch.kind[static_cast<std::size_t>(src)]));
    const auto* offs = static_cast<const std::size_t*>(
        ch.ptr2[static_cast<std::size_t>(src)]);
    const auto me = static_cast<std::size_t>(rank_);
    const std::size_t lo = offs[me];
    const std::size_t n = offs[me + 1] - lo;
    if (src != rank_) charge(1.0, n * sizeof(T));
    drained_mask_ |= std::uint64_t{1} << src;
    return {static_cast<const T*>(ch.ptr[static_cast<std::size_t>(src)]) + lo,
            n};
  }

  /// Caller-certified empty chunk: charge the per-source latency unit and
  /// mark `src` drained WITHOUT awaiting its post or reading its slots.
  /// Use when the exchange plan guarantees src addressed nothing to this
  /// rank (both sides derive chunk sizes from the same plan): there is
  /// nothing to read, so there is no reason to couple this rank's
  /// progress to that peer's schedule. Safe because publication slots are
  /// per-rank and the counters cumulative — the skipped peer's eventual
  /// post conflicts with nothing. Charges still telescope bitwise to the
  /// blocking form's (1 latency unit, zero words).
  void skip_source(int src) {
    CAGNET_CHECK(pending(), "skip_source on a non-pending op");
    CAGNET_CHECK(kind_ == detail::OpKind::kAlltoallv && gathered_ == nullptr,
                 "skip_source: op was not posted with ialltoallv_post");
    CAGNET_CHECK(src >= 0 && src < state_->size && src < 64,
                 "skip_source: source rank out of range");
    CAGNET_CHECK((drained_mask_ & (std::uint64_t{1} << src)) == 0,
                 "skip_source: source already drained");
    if (src != rank_) charge(1.0, 0);
    drained_mask_ |= std::uint64_t{1} << src;
  }

 private:
  friend class Comm;

  void complete_for_destroy() noexcept {
    if (!pending()) return;
    try {
      wait();
    } catch (...) {
      // Unwinding a failed world: peers were released by the abort flag;
      // there is nothing left to complete.
      state_.reset();
    }
  }

  // [[hot-path]]
  void charge(double latency_units, std::size_t bytes) {
    if (!charged_) return;
    detail::seam_event(
        *state_, {rank_, cat_, detail::op_kind_name(kind_)},
        FaultSite::kCharge);
    if (auto* ck = state_->checker.get()) {
      ck->on_charge(rank_, detail::op_kind_name(kind_), cat_);
    }
    meter_->add(cat_, latency_units,
                static_cast<double>(bytes) / sizeof(Real));
  }

  template <typename T>
  static void complete_impl(PendingOp& op);

  /// Completion of an ialltoallv_post op: await + charge whatever sources
  /// the caller did not drain (no data is copied — an undrained chunk was
  /// abandoned), then release the channel via the shared wait() epilogue.
  /// Makes wait()/destruction equivalent to a full drain charge-wise.
  template <typename T>
  static void complete_drain_impl(PendingOp& op) {
    const detail::OpContext ctx{op.rank_, op.cat_, "ialltoallv_post drain"};
    auto& ch = *op.state_->channels[op.ticket_ %
                                    static_cast<std::uint64_t>(
                                        detail::kAsyncChannels)];
    const std::uint64_t gen =
        op.ticket_ / static_cast<std::uint64_t>(detail::kAsyncChannels);
    const int p = op.state_->size;
    for (int r = 0; r < p; ++r) {
      if (r == op.rank_ ||
          (op.drained_mask_ & (std::uint64_t{1} << r)) != 0) {
        continue;
      }
      detail::await_counter(ch.posted_by[static_cast<std::size_t>(r)],
                            ch.waiters, gen + 1, op.state_->hub->aborted,
                            ctx);
      CAGNET_CHECK(ch.kind[static_cast<std::size_t>(r)] == op.kind_ &&
                       ch.root[static_cast<std::size_t>(r)] == op.root_,
                   detail::order_mismatch(
                       ctx, op.kind_, r,
                       ch.kind[static_cast<std::size_t>(r)]));
      const auto* offs = static_cast<const std::size_t*>(
          ch.ptr2[static_cast<std::size_t>(r)]);
      const auto me = static_cast<std::size_t>(op.rank_);
      op.charge(1.0, (offs[me + 1] - offs[me]) * sizeof(T));
    }
  }

  std::shared_ptr<detail::CommState> state_;
  int rank_ = 0;
  CostMeter* meter_ = nullptr;
  std::uint64_t ticket_ = 0;
  CommCategory cat_ = CommCategory::kControl;
  int root_ = -1;
  bool charged_ = true;
  detail::OpKind kind_ = detail::OpKind::kNone;
  void* out_ = nullptr;          ///< this rank's destination (kind-specific)
  std::size_t out_len_ = 0;      ///< destination element count
  std::size_t src_len_ = 0;      ///< this rank's contribution element count
  void* gathered_ = nullptr;     ///< Gathered<T>* for iallgatherv_into
  std::uint64_t drained_mask_ = 0;  ///< await_source ledger (bit per rank)
  bool waited_ = false;  ///< completed by an explicit wait (double-wait check)
  void (*complete_)(PendingOp&) = nullptr;  ///< typed movement + charge
};

/// Handle to a posted compressed reduction (iallreduce_sum_compressed /
/// ireduce_scatter_sum_compressed). Move-only. wait() completes the
/// underlying byte all-gather, decodes and sums this rank's result, and
/// charges CommCategory::kCompressed with the actual post-compression
/// bytes; codec time lands in Phase::kCompressPack when the posting call
/// was given a profiler. Like any nonblocking source, the CompressBuf's
/// send bytes stay readable by peers until the communicator's release
/// point — record ticket() before wait() and release with
/// Comm::quiesce_op (or a later Comm::quiesce). A handle destroyed while
/// still pending completes itself first, like PendingOp.
class PendingCompressedReduce {
 public:
  PendingCompressedReduce() = default;  ///< empty handle; pending() false

  PendingCompressedReduce(PendingCompressedReduce&& other) noexcept {
    *this = std::move(other);
  }
  PendingCompressedReduce& operator=(
      PendingCompressedReduce&& other) noexcept {
    if (this != &other) {
      complete_for_destroy();
      op_ = std::move(other.op_);
      state_ = std::move(other.state_);
      buf_ = other.buf_;
      meter_ = other.meter_;
      profiler_ = other.profiler_;
      mode_ = other.mode_;
      scatter_ = other.scatter_;
      out_ = other.out_;
      out_len_ = other.out_len_;
      n_ = other.n_;
      rank_ = other.rank_;
      size_ = other.size_;
      other.buf_ = nullptr;
    }
    return *this;
  }

  PendingCompressedReduce(const PendingCompressedReduce&) = delete;
  PendingCompressedReduce& operator=(const PendingCompressedReduce&) = delete;

  ~PendingCompressedReduce() { complete_for_destroy(); }

  /// True between post and wait (false for the exact P == 1 fast path,
  /// which completes at post time).
  bool pending() const { return buf_ != nullptr; }

  /// Posting-order ticket of the underlying byte gather (valid while
  /// pending); record it before wait() to release the send bytes with
  /// Comm::quiesce_op.
  std::uint64_t ticket() const { return op_.ticket(); }

  /// Complete: block for all posts, decode + sum, charge kCompressed.
  void wait();  // comm.cpp

 private:
  friend class Comm;

  void complete_for_destroy() noexcept {
    if (!pending()) return;
    try {
      wait();
    } catch (...) {
      buf_ = nullptr;  // unwinding a failed world; nothing left to finish
      state_.reset();
    }
  }

  PendingOp op_;
  /// Kept alongside op_ (which drops its own ref at wait) so the decode
  /// epilogue can reach the contract checker for charge attribution.
  std::shared_ptr<detail::CommState> state_;
  CompressBuf* buf_ = nullptr;
  CostMeter* meter_ = nullptr;
  Profiler* profiler_ = nullptr;
  CompressMode mode_ = CompressMode::kOff;
  bool scatter_ = false;
  Real* out_ = nullptr;
  std::size_t out_len_ = 0;
  std::size_t n_ = 0;  ///< full contribution element count
  int rank_ = 0;
  int size_ = 0;
};

/// One rank's endpoint of a simulated communicator. Default-constructed
/// Comms are *invalid* (valid() is false); every collective, barrier, and
/// split on an invalid Comm fails with a diagnostic instead of crashing.
/// Obtain valid Comms from run_world or split(). Copies share the
/// communicator state and the rank's meter, so they are interchangeable.
class Comm {
 public:
  Comm() = default;  ///< invalid; assign from run_world / split

  /// This rank's index in [0, size()).
  int rank() const { return rank_; }
  /// Number of members; 0 for an invalid Comm.
  int size() const { return state_ ? state_->size : 0; }
  /// False for a default-constructed Comm (no collective may be called).
  bool valid() const { return state_ != nullptr; }

  /// The calling rank's cost meter (shared across split communicators).
  CostMeter& meter() const {
    check_valid("meter");
    return *meter_;
  }

  /// Synchronize all members (one barrier phase; charges nothing).
  void barrier();

  /// Report a named zero-cost protocol event at the transport seam
  /// (FaultSite::kCharge) without moving data or charging the meter. This
  /// gives fault plans a deterministic, nameable injection point for
  /// decisions that suppress communication — e.g. the bounded-staleness
  /// halo path reports "halo stale skip" when it replays cached rows
  /// instead of exchanging, so chaos drills can kill or delay a rank at
  /// exactly that seam. Purely local: no rendezvous, no ordering effect.
  void notify_event(CommCategory cat, const char* op) {
    check_valid("notify_event");
    detail::seam_event(*state_, {rank_, cat, op}, FaultSite::kCharge);
  }

  /// Block until every member has completed (waited) every nonblocking op
  /// posted so far on this communicator — the release point after which
  /// the source buffers of those ops may be modified or freed. Unlike
  /// barrier() this is not a phase: it costs a handful of atomic loads
  /// when peers have already drained, and it charges nothing. The
  /// double-buffered loops call it before reusing a broadcast source.
  /// CAUTION: quiescing while an op that peers deliberately wait *later*
  /// (e.g. a deferred gradient reduction) is outstanding deadlocks; use
  /// quiesce_op to release one specific op instead.
  void quiesce() const;

  /// Block until every member has completed one specific op, identified
  /// by the PendingOp::ticket() recorded at post time — the single-op
  /// release form of quiesce. Waits only on that op's channel (channel
  /// generations complete in order), so deliberately-still-pending ops
  /// elsewhere cause no deadlock.
  void quiesce_op(std::uint64_t ticket) const;

  /// Collective split into disjoint sub-communicators by color; ranks are
  /// ordered by (key, parent rank) within each color. Every member of this
  /// communicator must call. The sub-communicator shares this rank's meter
  /// and the world's abort flag.
  Comm split(int color, int key) const;

  // ---- Collectives. `cat` selects the CostMeter category. ----

  /// In-place broadcast from `root` to all members. Charges lg(P) latency
  /// units and data.size() words to every rank (nothing when P == 1).
  template <typename T>
  void broadcast(std::span<T> data, int root, CommCategory cat) {
    check_valid("broadcast");
    check_member(root);
    const detail::OpContext ctx{rank_, cat, "broadcast"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    sync_sizes(data.size(), ctx);
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = data.data();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    if (rank_ != root && !data.empty()) {
      std::memcpy(data.data(),
                  state_->slot_ptr[static_cast<std::size_t>(root)],
                  data.size() * sizeof(T));
    }
    phase(ctx);
    if (size() > 1) charge(ctx, ceil_log2(size()), data.size() * sizeof(T));
  }

  /// Broadcast that reads directly from the root's existing buffer: the
  /// root passes its data as `src` (left untouched) and an empty `dst`;
  /// every other rank passes an empty `src` and receives into `dst`. This
  /// is the zero-staging-copy form the SUMMA loops use so roots never
  /// materialize a second copy of the block they already hold. Charged
  /// exactly like broadcast.
  template <typename T>
  void broadcast_from(std::span<const T> src, std::span<T> dst, int root,
                      CommCategory cat) {
    check_valid("broadcast_from");
    check_member(root);
    const detail::OpContext ctx{rank_, cat, "broadcast_from"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    const std::size_t n = rank_ == root ? src.size() : dst.size();
    sync_sizes(n, ctx);
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] =
        rank_ == root ? static_cast<const void*>(src.data()) : nullptr;
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    if (rank_ != root && n > 0) {
      std::memcpy(dst.data(),
                  state_->slot_ptr[static_cast<std::size_t>(root)],
                  n * sizeof(T));
    }
    phase(ctx);
    if (size() > 1) charge(ctx, ceil_log2(size()), n * sizeof(T));
  }

  /// In-place elementwise sum over all members; every rank ends with the
  /// total. Cost: Rabenseifner (reduce-scatter + all-gather): 2 lg(P)
  /// latency units and 2 n (P-1)/P words.
  template <typename T>
  void allreduce_sum(std::span<T> data, CommCategory cat) {
    check_valid("allreduce_sum");
    reduce_impl(data, cat, /*is_max=*/false, "allreduce_sum");
  }

  /// In-place elementwise max over all members. Charged like
  /// allreduce_sum.
  template <typename T>
  void allreduce_max(std::span<T> data, CommCategory cat) {
    check_valid("allreduce_max");
    reduce_impl(data, cat, /*is_max=*/true, "allreduce_max");
  }

  /// Reduce-scatter with sum: `contrib` (same length on every rank) is the
  /// full-length vector of partial sums; rank r receives the reduced slice
  /// [chunk_offset(r), chunk_offset(r)+out.size()) into `out`, where chunk
  /// boundaries are the concatenation of every rank's out.size(). Charges
  /// lg(P) latency units and total (P-1)/P words.
  template <typename T>
  void reduce_scatter_sum(std::span<const T> contrib, std::span<T> out,
                          CommCategory cat) {
    check_valid("reduce_scatter_sum");
    const detail::OpContext ctx{rank_, cat, "reduce_scatter_sum"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    const int p = size();
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = contrib.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = out.size();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    std::size_t offset = 0;
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      if (r == rank_) offset = total;
      total += state_->slot_len[static_cast<std::size_t>(r)];
    }
    CAGNET_CHECK(contrib.size() == total,
                 "reduce_scatter: contribution length != sum of outputs");
    // Chunk-by-chunk with contiguous inner loops so the accumulation
    // vectorizes like the other collectives. The per-element order (zero,
    // then ranks ascending) matches the per-element form exactly, so the
    // result is bitwise identical.
    std::fill(out.begin(), out.end(), T{});
    for (int r = 0; r < p; ++r) {
      const T* src = static_cast<const T*>(
                         state_->slot_ptr[static_cast<std::size_t>(r)]) +
                     offset;
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += src[i];
    }
    phase(ctx);
    charge(ctx, ceil_log2(p),
           total * sizeof(T) * (p - 1) / std::max(p, 1));
  }

  /// All-gather of equal-size chunks: every rank contributes `mine`, and
  /// receives the rank-ordered concatenation. Charged like allgatherv.
  template <typename T>
  std::vector<T> allgather(std::span<const T> mine, CommCategory cat) {
    check_valid("allgather");
    sync_sizes(mine.size(), {rank_, cat, "allgather"});
    return allgatherv(mine, cat).data;
  }

  /// All-gather of variable-size chunks. Charges lg(P) latency units and
  /// the received words (everything but this rank's own chunk).
  template <typename T>
  Gathered<T> allgatherv(std::span<const T> mine, CommCategory cat) {
    Gathered<T> result;
    allgatherv_into(mine, result, cat);
    return result;
  }

  /// All-gather of variable-size chunks into a caller-owned Gathered whose
  /// storage is reused across calls (the allocation-free hot-path form).
  /// `mine` must not alias `out.data`. Charged like allgatherv.
  template <typename T>
  void allgatherv_into(std::span<const T> mine, Gathered<T>& out,
                       CommCategory cat) {
    check_valid("allgatherv_into");
    const detail::OpContext ctx{rank_, cat, "allgatherv_into"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    const int p = size();
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = mine.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = mine.size();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    out.offsets.resize(static_cast<std::size_t>(p) + 1);
    out.offsets[0] = 0;
    for (int r = 0; r < p; ++r) {
      out.offsets[static_cast<std::size_t>(r) + 1] =
          out.offsets[static_cast<std::size_t>(r)] +
          state_->slot_len[static_cast<std::size_t>(r)];
    }
    out.data.resize(out.offsets.back());
    for (int r = 0; r < p; ++r) {
      const auto len = state_->slot_len[static_cast<std::size_t>(r)];
      if (len == 0) continue;
      std::memcpy(out.data.data() + out.offsets[static_cast<std::size_t>(r)],
                  state_->slot_ptr[static_cast<std::size_t>(r)],
                  len * sizeof(T));
    }
    phase(ctx);
    charge(ctx, ceil_log2(p), (out.data.size() - mine.size()) * sizeof(T));
  }

  /// Pairwise exchange: send `send` to `peer` and receive its message.
  /// Both sides must name each other; peer == rank() is a local copy.
  /// Charges 1 latency unit and the received words (nothing for self).
  template <typename T>
  std::vector<T> exchange(std::span<const T> send, int peer,
                          CommCategory cat) {
    check_valid("exchange");
    check_member(peer);
    const detail::OpContext ctx{rank_, cat, "exchange"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = send.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = send.size();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    const auto len = state_->slot_len[static_cast<std::size_t>(peer)];
    std::vector<T> recv(len);
    if (len > 0) {
      std::memcpy(recv.data(),
                  state_->slot_ptr[static_cast<std::size_t>(peer)],
                  len * sizeof(T));
    }
    phase(ctx);
    if (peer != rank_) charge(ctx, 1.0, len * sizeof(T));
    return recv;
  }

  /// Permutation all-to-all: every rank sends one message to `dest`; the
  /// destinations across ranks must form a permutation (each rank receives
  /// exactly one message). This is the redistribution primitive of the 3D
  /// distributed transpose. dest == rank() is a local copy. Charges 1
  /// latency unit and the received words (nothing for self-delivery).
  template <typename T>
  std::vector<T> route(std::span<const T> send, int dest, CommCategory cat) {
    check_valid("route");
    check_member(dest);
    const detail::OpContext ctx{rank_, cat, "route"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = send.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = send.size();
    state_->slot_dest[static_cast<std::size_t>(rank_)] = dest;
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    int src = -1;
    for (int r = 0; r < size(); ++r) {
      if (state_->slot_dest[static_cast<std::size_t>(r)] == rank_) {
        src = r;
        break;
      }
    }
    CAGNET_CHECK(src >= 0, "route: destinations do not form a permutation");
    const auto len = state_->slot_len[static_cast<std::size_t>(src)];
    std::vector<T> recv(len);
    if (len > 0) {
      std::memcpy(recv.data(),
                  state_->slot_ptr[static_cast<std::size_t>(src)],
                  len * sizeof(T));
    }
    phase(ctx);
    if (src != rank_) charge(ctx, 1.0, len * sizeof(T));
    return recv;
  }

  /// Individualized all-to-all with variable chunk sizes: `send` holds this
  /// rank's outgoing data split per destination by `send_offsets` (size()+1
  /// monotone element offsets; destination d's chunk is
  /// [send_offsets[d], send_offsets[d+1])). Every rank receives the
  /// rank-ordered concatenation of the chunks addressed to it into `out`
  /// (storage reused). This is the request-and-send primitive of the
  /// sparsity-aware halo exchange (Section IV-A.8). Charges P-1 latency
  /// units and the received words (everything but the self chunk).
  template <typename T>
  void alltoallv_into(std::span<const T> send,
                      std::span<const std::size_t> send_offsets,
                      Gathered<T>& out, CommCategory cat) {
    check_valid("alltoallv_into");
    check_offsets(send.size(), send_offsets, "alltoallv_into");
    const detail::OpContext ctx{rank_, cat, "alltoallv_into"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    const int p = size();
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = send.data();
    state_->slot_ptr2[static_cast<std::size_t>(rank_)] = send_offsets.data();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    const std::size_t self_chunk = detail::alltoallv_unpack<T>(
        p, rank_, state_->slot_ptr, state_->slot_ptr2, out);
    phase(ctx);
    charge(ctx, p > 1 ? static_cast<double>(p - 1) : 0.0,
           (out.data.size() - self_chunk) * sizeof(T));
  }

  /// Gather to root (rank-ordered concatenation at root; empty elsewhere).
  /// Charges lg(P) latency units; the root is charged the received words,
  /// everyone else their sent words.
  template <typename T>
  Gathered<T> gather(std::span<const T> mine, int root, CommCategory cat) {
    check_valid("gather");
    check_member(root);
    const detail::OpContext ctx{rank_, cat, "gather"};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    const int p = size();
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = mine.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = mine.size();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    Gathered<T> result;
    if (rank_ == root) {
      result.offsets.resize(static_cast<std::size_t>(p) + 1, 0);
      for (int r = 0; r < p; ++r) {
        result.offsets[static_cast<std::size_t>(r) + 1] =
            result.offsets[static_cast<std::size_t>(r)] +
            state_->slot_len[static_cast<std::size_t>(r)];
      }
      result.data.resize(result.offsets.back());
      for (int r = 0; r < p; ++r) {
        const auto len = state_->slot_len[static_cast<std::size_t>(r)];
        if (len == 0) continue;
        std::memcpy(
            result.data.data() + result.offsets[static_cast<std::size_t>(r)],
            state_->slot_ptr[static_cast<std::size_t>(r)], len * sizeof(T));
      }
    }
    phase(ctx);
    charge(ctx, ceil_log2(p),
           rank_ == root ? (result.data.size() - mine.size()) * sizeof(T)
                         : mine.size() * sizeof(T));
    return result;
  }

  // ---- Nonblocking collectives. Posts are nonblocking (no barrier
  // phase); data moves and the meter is charged at PendingOp::wait(),
  // with charges identical to the blocking forms. `charged = false`
  // suppresses the automatic charge for callers that account the traffic
  // themselves (e.g. an op split into chunks whose per-chunk integer
  // charges would not sum to the unsplit op's). ----

  /// Nonblocking broadcast_from: the root posts `src` (left untouched and
  /// readable by peers until every rank has waited); every other rank
  /// receives into `dst` at its own wait(). Charged like broadcast.
  template <typename T>
  PendingOp ibroadcast_from(std::span<const T> src, std::span<T> dst,
                            int root, CommCategory cat, bool charged = true) {
    check_valid("ibroadcast_from");
    check_member(root);
    const bool is_root = rank_ == root;
    return post_async(detail::OpKind::kBcast,
                      is_root ? static_cast<const void*>(src.data()) : nullptr,
                      is_root ? src.size() : dst.size(), root, cat, charged,
                      &PendingOp::complete_impl<T>, dst.data(), dst.size(),
                      src.size(), nullptr);
  }

  /// Nonblocking reduce_scatter_sum (same chunking contract as the
  /// blocking form). `out` must not alias any rank's `contrib`. Charged
  /// like reduce_scatter_sum.
  template <typename T>
  PendingOp ireduce_scatter_sum(std::span<const T> contrib, std::span<T> out,
                                CommCategory cat, bool charged = true) {
    check_valid("ireduce_scatter_sum");
    return post_async(detail::OpKind::kReduceScatter, contrib.data(),
                      out.size(), /*root=*/0, cat, charged,
                      &PendingOp::complete_impl<T>, out.data(), out.size(),
                      contrib.size(), nullptr);
  }

  /// Nonblocking allgatherv_into. `out` (resized at wait) must outlive the
  /// op and `mine` must not alias `out.data`. Charged like allgatherv.
  template <typename T>
  PendingOp iallgatherv_into(std::span<const T> mine, Gathered<T>& out,
                             CommCategory cat, bool charged = true) {
    check_valid("iallgatherv_into");
    return post_async(detail::OpKind::kAllgatherv, mine.data(), mine.size(),
                      /*root=*/0, cat, charged, &PendingOp::complete_impl<T>,
                      nullptr, 0, mine.size(), &out);
  }

  /// Nonblocking *out-of-place* all-reduce sum: every rank posts `contrib`
  /// (stable until all ranks waited) and receives the elementwise total
  /// into `out` (same length, must not alias any contribution). The
  /// out-of-place form is what allows peers to complete at different
  /// times without a trailing rendezvous. Charged like allreduce_sum.
  template <typename T>
  PendingOp iallreduce_sum(std::span<const T> contrib, std::span<T> out,
                           CommCategory cat, bool charged = true) {
    check_valid("iallreduce_sum");
    CAGNET_CHECK(contrib.size() == out.size(),
                 "iallreduce_sum: contrib/out length mismatch");
    return post_async(detail::OpKind::kAllreduce, contrib.data(),
                      contrib.size(), /*root=*/0, cat, charged,
                      &PendingOp::complete_impl<T>, out.data(), out.size(),
                      contrib.size(), nullptr);
  }

  /// Nonblocking alltoallv_into. `send` AND `send_offsets` must stay valid
  /// and unmodified until every rank has waited (peers read both at their
  /// own waits); `out` (resized at wait) must outlive the op and must not
  /// alias any rank's send buffer. Charged like alltoallv_into.
  template <typename T>
  PendingOp ialltoallv_into(std::span<const T> send,
                            std::span<const std::size_t> send_offsets,
                            Gathered<T>& out, CommCategory cat,
                            bool charged = true) {
    check_valid("ialltoallv_into");
    check_offsets(send.size(), send_offsets, "ialltoallv_into");
    return post_async(detail::OpKind::kAlltoallv, send.data(), send.size(),
                      /*root=*/0, cat, charged, &PendingOp::complete_impl<T>,
                      nullptr, 0, send.size(), &out, send_offsets.data());
  }

  /// Nonblocking alltoallv without a gathered destination, made for
  /// per-source draining: the caller pulls each peer's chunk with
  /// PendingOp::await_source — zero-copy views into the peers' send
  /// buffers, available as soon as *that* peer has posted — and the final
  /// wait() awaits + charges any sources left undrained, so total charges
  /// are bitwise the blocking alltoallv_into's regardless of how many
  /// chunks the caller consumed. `send` and `send_offsets` obey the same
  /// lifetime contract as ialltoallv_into. This is the halo pipeline's
  /// primitive (remote rows are multiplied as they land; see
  /// dist_common.cpp). At most 64 ranks (the drain ledger is a bitmask).
  template <typename T>
  PendingOp ialltoallv_post(std::span<const T> send,
                            std::span<const std::size_t> send_offsets,
                            CommCategory cat, bool charged = true) {
    check_valid("ialltoallv_post");
    check_offsets(send.size(), send_offsets, "ialltoallv_post");
    CAGNET_CHECK(size() <= 64,
                 "ialltoallv_post: per-source drain supports at most 64 "
                 "ranks; use ialltoallv_into");
    return post_async(detail::OpKind::kAlltoallv, send.data(), send.size(),
                      /*root=*/0, cat, charged,
                      &PendingOp::complete_drain_impl<T>, nullptr, 0,
                      send.size(), nullptr, send_offsets.data());
  }

  // ---- Compressed collectives (the CAGNET_COMPRESS paths). All charge
  // CommCategory::kCompressed with the ACTUAL post-compression bytes
  // (converted to Real-sized words, hence fractional values appear), and
  // time codec work under Phase::kCompressPack when given a profiler —
  // call sites must NOT wrap these in their own ScopedPhase. The lossy
  // result is sum over ranks of decode(encode(contrib_r)), decoded in
  // ascending rank order on every rank, so it is identical across ranks
  // and bitwise reproducible for any thread count. P == 1 degenerates to
  // the exact copy (no codec round-trip) and charges nothing, like the
  // exact collectives. ----

  /// Blocking in-place lossy all-reduce sum. Implemented as an all-gather
  /// of encoded bytes plus a local decode-sum; returns after a trailing
  /// release rendezvous, so `buf` may be reused immediately. Charges
  /// 2 lg(P) latency units and 2 E (P-1)/P bytes, E the encoded size.
  void allreduce_sum_compressed(std::span<Real> data, CompressMode mode,
                                CompressBuf& buf,
                                Profiler* profiler = nullptr);

  /// Nonblocking out-of-place lossy all-reduce sum: `out` (same length as
  /// `contrib`, or aliasing it exactly) receives the decoded total at
  /// wait(). `contrib` is consumed at post time (the encode is the
  /// staging copy); buf.send must stay unmodified until the op's release
  /// point (quiesce / quiesce_op on ticket()).
  PendingCompressedReduce iallreduce_sum_compressed(
      std::span<const Real> contrib, std::span<Real> out, CompressMode mode,
      CompressBuf& buf, Profiler* profiler = nullptr);

  /// Blocking lossy reduce-scatter sum, same chunking contract as
  /// reduce_scatter_sum (chunk boundaries are the concatenation of every
  /// rank's out.size(), which may differ per rank — the 1.5D keeper-only
  /// form). Wire format per rank: [u64 out-length header][encoded full
  /// contribution]; every rank gathers all of them and decodes only its
  /// own slice. Charges lg(P) latency units and the gathered bytes'
  /// (P-1)/P (headers included — they are real wire bytes).
  void reduce_scatter_sum_compressed(std::span<const Real> contrib,
                                     std::span<Real> out, CompressMode mode,
                                     CompressBuf& buf,
                                     Profiler* profiler = nullptr);

  /// Nonblocking form of reduce_scatter_sum_compressed; same contract as
  /// iallreduce_sum_compressed regarding buf.send's lifetime.
  PendingCompressedReduce ireduce_scatter_sum_compressed(
      std::span<const Real> contrib, std::span<Real> out, CompressMode mode,
      CompressBuf& buf, Profiler* profiler = nullptr);

 private:
  friend void run_world(int, const std::function<void(Comm&)>&,
                        std::vector<CostMeter>*);
  friend class PendingOp;

  Comm(std::shared_ptr<detail::CommState> state, int rank, CostMeter* meter)
      : state_(std::move(state)), rank_(rank), meter_(meter) {}

  void check_member(int r) const {
    CAGNET_CHECK(r >= 0 && r < size(), "rank out of range");
  }

  /// Diagnose use of a default-constructed (invalid) Comm.
  void check_valid(const char* what) const {
    CAGNET_CHECK(state_ != nullptr,
                 std::string(what) +
                     " on an invalid Comm (default-constructed; obtain one "
                     "from run_world or split)");
  }

  /// One barrier phase with abort propagation: unwinds with a CommAborted
  /// naming `ctx` as soon as the world dies, even while parked (the
  /// PhaseGate is poison-wakeable). Const because it only touches the
  /// shared state, never this rank's identity.
  void phase(const detail::OpContext& ctx) const;

  /// Debug-style guard: all ranks must pass matching sizes to size-uniform
  /// collectives (cheap, and catches the classic SUMMA off-by-one).
  void sync_sizes(std::size_t n, const detail::OpContext& ctx) const;

  /// Purely local alltoallv offsets validation: size()+1 monotone entries
  /// spanning exactly the send buffer.
  void check_offsets(std::size_t send_len,
                     std::span<const std::size_t> offsets,
                     const char* what) const {
    CAGNET_CHECK(offsets.size() == static_cast<std::size_t>(size()) + 1,
                 std::string(what) + ": offsets must have size()+1 entries");
    CAGNET_CHECK(offsets.front() == 0 && offsets.back() == send_len,
                 std::string(what) + ": offsets must span the send buffer");
    for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
      CAGNET_CHECK(offsets[i] <= offsets[i + 1],
                   std::string(what) + ": offsets must be monotone");
    }
  }

  void charge(const detail::OpContext& ctx, double latency_units,
              std::size_t bytes) {
    detail::seam_event(*state_, ctx, FaultSite::kCharge);
    if (auto* ck = state_->checker.get()) {
      ck->on_charge(ctx.rank, ctx.op, ctx.cat);
    }
    meter_->add(ctx.cat, latency_units,
                static_cast<double>(bytes) / sizeof(Real));
  }

  /// Bind `buf` to this communicator and element count; a change of
  /// either resets the error-feedback residual (feedback accumulated on
  /// another communicator or buffer shape must not leak into this one).
  void rebind_compress_buf(CompressBuf& buf, std::size_t n) const {
    if (buf.bound_comm != state_->uid || buf.bound_n != n) {
      buf.residual.clear();
      buf.bound_comm = state_->uid;
      buf.bound_n = n;
    }
  }

  /// Claim the next ticket, publish this rank's slot on its channel, and
  /// hand back the armed PendingOp. Out-of-line (comm.cpp).
  PendingOp post_async(detail::OpKind kind, const void* publish_ptr,
                       std::size_t publish_len, int root, CommCategory cat,
                       bool charged, void (*complete)(PendingOp&), void* out,
                       std::size_t out_len, std::size_t src_len,
                       void* gathered, const void* publish_ptr2 = nullptr);

  template <typename T>
  void reduce_impl(std::span<T> data, CommCategory cat, bool is_max,
                   const char* op) {
    const detail::OpContext ctx{rank_, cat, op};
    detail::CollectiveWindow window(*state_, rank_);
    contract::BlockingScope contract_scope(state_->checker.get(),
                                           rank_, ctx.op, cat);
    const int p = size();
    detail::seam_event(*state_, ctx, FaultSite::kPost);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = data.data();
    phase(ctx);
    detail::seam_event(*state_, ctx, FaultSite::kWait);
    if (rank_ == 0) state_->scratch.resize(data.size() * sizeof(T));
    phase(ctx);
    T* scratch = reinterpret_cast<T*>(state_->scratch.data());
    // Rank r reduces its chunk across all publishers (reduce-scatter step).
    const std::size_t lo = data.size() * static_cast<std::size_t>(rank_) /
                           static_cast<std::size_t>(p);
    const std::size_t hi = data.size() *
                           (static_cast<std::size_t>(rank_) + 1) /
                           static_cast<std::size_t>(p);
    for (std::size_t i = lo; i < hi; ++i) {
      T acc = static_cast<const T*>(state_->slot_ptr[0])[i];
      for (int r = 1; r < p; ++r) {
        const T v =
            static_cast<const T*>(state_->slot_ptr[static_cast<std::size_t>(r)])[i];
        if (is_max) {
          if (v > acc) acc = v;
        } else {
          acc += v;
        }
      }
      scratch[i] = acc;
    }
    phase(ctx);
    // All-gather step: everyone copies the full reduced vector.
    if (!data.empty()) {
      std::memcpy(data.data(), scratch, data.size() * sizeof(T));
    }
    phase(ctx);
    charge(ctx, 2.0 * ceil_log2(p),
           2 * data.size() * sizeof(T) * (p - 1) / std::max(p, 1));
  }

  std::shared_ptr<detail::CommState> state_;
  int rank_ = 0;
  CostMeter* meter_ = nullptr;
};

template <typename T>
void PendingOp::complete_impl(PendingOp& op) {
  auto& ch = *op.state_->channels[op.ticket_ %
                                  static_cast<std::uint64_t>(
                                      detail::kAsyncChannels)];
  const int p = op.state_->size;
  if (op.kind_ == detail::OpKind::kBcast && op.rank_ == op.root_) {
    // Passive root completion: peers may not have posted yet (wait()
    // skipped the await), so validate nothing and charge from this
    // rank's own published length — identical to the blocking charge.
    if (p > 1) op.charge(ceil_log2(p), op.src_len_ * sizeof(T));
    return;
  }
  for (int r = 0; r < p; ++r) {
    CAGNET_CHECK(ch.kind[static_cast<std::size_t>(r)] == op.kind_ &&
                     ch.root[static_cast<std::size_t>(r)] == op.root_,
                 detail::order_mismatch(
                     {op.rank_, op.cat_, detail::op_kind_name(op.kind_)},
                     op.kind_, r, ch.kind[static_cast<std::size_t>(r)]));
  }
  switch (op.kind_) {
    case detail::OpKind::kBcast: {
      const std::size_t n = ch.len[static_cast<std::size_t>(op.root_)];
      for (int r = 0; r < p; ++r) {
        CAGNET_CHECK(ch.len[static_cast<std::size_t>(r)] == n,
                     "ibroadcast_from: ranks disagree on element count");
      }
      if (n > 0) {
        std::memcpy(op.out_, ch.ptr[static_cast<std::size_t>(op.root_)],
                    n * sizeof(T));
      }
      if (p > 1) op.charge(ceil_log2(p), n * sizeof(T));
      break;
    }
    case detail::OpKind::kReduceScatter: {
      std::size_t offset = 0;
      std::size_t total = 0;
      for (int r = 0; r < p; ++r) {
        if (r == op.rank_) offset = total;
        total += ch.len[static_cast<std::size_t>(r)];
      }
      CAGNET_CHECK(op.src_len_ == total,
                   "ireduce_scatter: contribution length != sum of outputs");
      T* out = static_cast<T*>(op.out_);
      std::fill(out, out + op.out_len_, T{});
      for (int r = 0; r < p; ++r) {
        const T* src =
            static_cast<const T*>(ch.ptr[static_cast<std::size_t>(r)]) +
            offset;
        for (std::size_t i = 0; i < op.out_len_; ++i) out[i] += src[i];
      }
      op.charge(ceil_log2(p),
                total * sizeof(T) * (p - 1) /
                    static_cast<std::size_t>(std::max(p, 1)));
      break;
    }
    case detail::OpKind::kAllgatherv: {
      auto& out = *static_cast<Gathered<T>*>(op.gathered_);
      out.offsets.resize(static_cast<std::size_t>(p) + 1);
      out.offsets[0] = 0;
      for (int r = 0; r < p; ++r) {
        out.offsets[static_cast<std::size_t>(r) + 1] =
            out.offsets[static_cast<std::size_t>(r)] +
            ch.len[static_cast<std::size_t>(r)];
      }
      out.data.resize(out.offsets.back());
      for (int r = 0; r < p; ++r) {
        const auto len = ch.len[static_cast<std::size_t>(r)];
        if (len == 0) continue;
        std::memcpy(out.data.data() +
                        out.offsets[static_cast<std::size_t>(r)],
                    ch.ptr[static_cast<std::size_t>(r)], len * sizeof(T));
      }
      op.charge(ceil_log2(p), (out.data.size() - op.src_len_) * sizeof(T));
      break;
    }
    case detail::OpKind::kAllreduce: {
      const std::size_t n = op.out_len_;
      for (int r = 0; r < p; ++r) {
        CAGNET_CHECK(ch.len[static_cast<std::size_t>(r)] == n,
                     "iallreduce_sum: ranks disagree on element count");
      }
      T* out = static_cast<T*>(op.out_);
      for (std::size_t i = 0; i < n; ++i) {
        T acc = static_cast<const T*>(ch.ptr[0])[i];
        for (int r = 1; r < p; ++r) {
          acc += static_cast<const T*>(ch.ptr[static_cast<std::size_t>(r)])[i];
        }
        out[i] = acc;
      }
      op.charge(2.0 * ceil_log2(p),
                2 * n * sizeof(T) * (p - 1) /
                    static_cast<std::size_t>(std::max(p, 1)));
      break;
    }
    case detail::OpKind::kAlltoallv: {
      auto& out = *static_cast<Gathered<T>*>(op.gathered_);
      const std::size_t self_chunk = detail::alltoallv_unpack<T>(
          p, op.rank_, ch.ptr, ch.ptr2, out);
      op.charge(p > 1 ? static_cast<double>(p - 1) : 0.0,
                (out.data.size() - self_chunk) * sizeof(T));
      break;
    }
    case detail::OpKind::kNone:
      CAGNET_CHECK(false, "completing an unarmed PendingOp");
  }
}

/// Launch a world of `p` ranks, each running `fn(comm)` on its own thread.
/// Rethrows the first rank exception after joining all threads. Peers
/// blocked anywhere — nonblocking waits, per-source drains, or blocking
/// collectives' barrier phases, on the world or any split
/// sub-communicator — are released by the abort machinery (the PhaseGate
/// and channel counters are poison-wakeable) and unwind with a typed
/// CommAborted naming their rank, op, and category. The thread pool and
/// the process-wide knobs are untouched by an abort, so the caller may
/// immediately launch a fresh world (the recovery driver in
/// src/core/recovery.hpp does). The world consults the process-global
/// fault plan (src/comm/fault.hpp) at entry; with none installed the
/// transport seam is inert. If `meters_out` is non-null it receives each
/// rank's final CostMeter.
void run_world(int p, const std::function<void(Comm&)>& fn,
               std::vector<CostMeter>* meters_out = nullptr);

}  // namespace cagnet
