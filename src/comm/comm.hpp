// Simulated message-passing runtime.
//
// This is the repo's stand-in for torch.distributed/NCCL on Summit (see
// DESIGN.md, "Substitutions"). A *world* of P ranks runs as P threads in one
// process. A Comm exposes MPI-flavoured collectives whose semantics match
// the operations the paper's algorithms are written in terms of: broadcast,
// all-reduce, reduce-scatter, all-gather(v), and pairwise exchange. Data is
// genuinely moved between rank-private buffers (so algorithm correctness is
// real), and every operation charges its textbook alpha-beta cost to the
// rank's CostMeter (so communication volumes are real too).
//
// Contract (same as MPI): a collective must be invoked by every member of
// the communicator, in the same program order. All spans must stay alive
// until the call returns.
#pragma once

#include <atomic>
#include <barrier>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/comm/costmeter.hpp"
#include "src/util/error.hpp"
#include "src/util/types.hpp"

namespace cagnet {

/// ceil(log2(p)) with ceil_log2(1) == 0: the latency factor of a
/// tree-structured collective.
double ceil_log2(int p);

namespace detail {

/// Shared state of one communicator: a phase barrier plus per-rank
/// publication slots. All slot accesses are separated by barrier phases,
/// which provide the necessary happens-before edges.
struct CommState {
  explicit CommState(int n)
      : size(n), gate(n), slot_ptr(static_cast<std::size_t>(n), nullptr),
        slot_len(static_cast<std::size_t>(n), 0),
        slot_dest(static_cast<std::size_t>(n), -1) {}

  const int size;
  std::barrier<> gate;
  std::vector<const void*> slot_ptr;
  std::vector<std::size_t> slot_len;  // element counts, payload-defined units
  std::vector<int> slot_dest;         // route() destination per rank
  std::vector<unsigned char> scratch; // reduction workspace (rank 0 resizes)
  std::mutex mutex;
  void* split_ctx = nullptr;          // transient, owned by split()
  std::atomic<bool> aborted{false};
};

}  // namespace detail

/// Concatenation of per-rank variable-length contributions, with offsets.
template <typename T>
struct Gathered {
  std::vector<T> data;
  std::vector<std::size_t> offsets;  ///< size+1 entries; rank r owns
                                     ///< [offsets[r], offsets[r+1])
  std::span<const T> chunk(int r) const {
    return {data.data() + offsets[static_cast<std::size_t>(r)],
            offsets[static_cast<std::size_t>(r) + 1] -
                offsets[static_cast<std::size_t>(r)]};
  }
};

class Comm {
 public:
  Comm() = default;  ///< invalid; assign from run_world / split

  int rank() const { return rank_; }
  int size() const { return state_ ? state_->size : 0; }
  bool valid() const { return state_ != nullptr; }

  /// The calling rank's cost meter (shared across split communicators).
  CostMeter& meter() const { return *meter_; }

  /// Synchronize all members.
  void barrier();

  /// Collective split into disjoint sub-communicators by color; ranks are
  /// ordered by (key, parent rank) within each color. Every member of this
  /// communicator must call.
  Comm split(int color, int key) const;

  // ---- Collectives. `cat` selects the CostMeter category. ----

  /// In-place broadcast from `root` to all members.
  template <typename T>
  void broadcast(std::span<T> data, int root, CommCategory cat) {
    check_member(root);
    sync_sizes(data.size(), "broadcast");
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = data.data();
    phase();
    if (rank_ != root) {
      std::memcpy(data.data(),
                  state_->slot_ptr[static_cast<std::size_t>(root)],
                  data.size() * sizeof(T));
    }
    phase();
    if (size() > 1) charge(cat, ceil_log2(size()), data.size() * sizeof(T));
  }

  /// Broadcast that reads directly from the root's existing buffer: the
  /// root passes its data as `src` (left untouched) and an empty `dst`;
  /// every other rank passes an empty `src` and receives into `dst`. This
  /// is the zero-staging-copy form the SUMMA loops use so roots never
  /// materialize a second copy of the block they already hold. Charged
  /// exactly like broadcast.
  template <typename T>
  void broadcast_from(std::span<const T> src, std::span<T> dst, int root,
                      CommCategory cat) {
    check_member(root);
    const std::size_t n = rank_ == root ? src.size() : dst.size();
    sync_sizes(n, "broadcast_from");
    state_->slot_ptr[static_cast<std::size_t>(rank_)] =
        rank_ == root ? static_cast<const void*>(src.data()) : nullptr;
    phase();
    if (rank_ != root && n > 0) {
      std::memcpy(dst.data(),
                  state_->slot_ptr[static_cast<std::size_t>(root)],
                  n * sizeof(T));
    }
    phase();
    if (size() > 1) charge(cat, ceil_log2(size()), n * sizeof(T));
  }

  /// In-place elementwise sum over all members; every rank ends with the
  /// total. Cost: Rabenseifner (reduce-scatter + all-gather).
  template <typename T>
  void allreduce_sum(std::span<T> data, CommCategory cat) {
    reduce_impl(data, cat, /*is_max=*/false);
  }

  /// In-place elementwise max over all members.
  template <typename T>
  void allreduce_max(std::span<T> data, CommCategory cat) {
    reduce_impl(data, cat, /*is_max=*/true);
  }

  /// Reduce-scatter with sum: `contrib` (same length on every rank) is the
  /// full-length vector of partial sums; rank r receives the reduced slice
  /// [chunk_offset(r), chunk_offset(r)+out.size()) into `out`, where chunk
  /// boundaries are the concatenation of every rank's out.size().
  template <typename T>
  void reduce_scatter_sum(std::span<const T> contrib, std::span<T> out,
                          CommCategory cat) {
    const int p = size();
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = contrib.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = out.size();
    phase();
    std::size_t offset = 0;
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      if (r == rank_) offset = total;
      total += state_->slot_len[static_cast<std::size_t>(r)];
    }
    CAGNET_CHECK(contrib.size() == total,
                 "reduce_scatter: contribution length != sum of outputs");
    // Chunk-by-chunk with contiguous inner loops so the accumulation
    // vectorizes like the other collectives. The per-element order (zero,
    // then ranks ascending) matches the per-element form exactly, so the
    // result is bitwise identical.
    std::fill(out.begin(), out.end(), T{});
    for (int r = 0; r < p; ++r) {
      const T* src = static_cast<const T*>(
                         state_->slot_ptr[static_cast<std::size_t>(r)]) +
                     offset;
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += src[i];
    }
    phase();
    charge(cat, ceil_log2(p),
           total * sizeof(T) * (p - 1) / std::max(p, 1));
  }

  /// All-gather of equal-size chunks: every rank contributes `mine`, and
  /// receives the rank-ordered concatenation.
  template <typename T>
  std::vector<T> allgather(std::span<const T> mine, CommCategory cat) {
    sync_sizes(mine.size(), "allgather");
    return allgatherv(mine, cat).data;
  }

  /// All-gather of variable-size chunks.
  template <typename T>
  Gathered<T> allgatherv(std::span<const T> mine, CommCategory cat) {
    Gathered<T> result;
    allgatherv_into(mine, result, cat);
    return result;
  }

  /// All-gather of variable-size chunks into a caller-owned Gathered whose
  /// storage is reused across calls (the allocation-free hot-path form).
  /// `mine` must not alias `out.data`.
  template <typename T>
  void allgatherv_into(std::span<const T> mine, Gathered<T>& out,
                       CommCategory cat) {
    const int p = size();
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = mine.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = mine.size();
    phase();
    out.offsets.resize(static_cast<std::size_t>(p) + 1);
    out.offsets[0] = 0;
    for (int r = 0; r < p; ++r) {
      out.offsets[static_cast<std::size_t>(r) + 1] =
          out.offsets[static_cast<std::size_t>(r)] +
          state_->slot_len[static_cast<std::size_t>(r)];
    }
    out.data.resize(out.offsets.back());
    for (int r = 0; r < p; ++r) {
      const auto len = state_->slot_len[static_cast<std::size_t>(r)];
      if (len == 0) continue;
      std::memcpy(out.data.data() + out.offsets[static_cast<std::size_t>(r)],
                  state_->slot_ptr[static_cast<std::size_t>(r)],
                  len * sizeof(T));
    }
    phase();
    charge(cat, ceil_log2(p), (out.data.size() - mine.size()) * sizeof(T));
  }

  /// Pairwise exchange: send `send` to `peer` and receive its message.
  /// Both sides must name each other; peer == rank() is a local copy.
  template <typename T>
  std::vector<T> exchange(std::span<const T> send, int peer,
                          CommCategory cat) {
    check_member(peer);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = send.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = send.size();
    phase();
    const auto len = state_->slot_len[static_cast<std::size_t>(peer)];
    std::vector<T> recv(len);
    if (len > 0) {
      std::memcpy(recv.data(),
                  state_->slot_ptr[static_cast<std::size_t>(peer)],
                  len * sizeof(T));
    }
    phase();
    if (peer != rank_) charge(cat, 1.0, len * sizeof(T));
    return recv;
  }

  /// Permutation all-to-all: every rank sends one message to `dest`; the
  /// destinations across ranks must form a permutation (each rank receives
  /// exactly one message). This is the redistribution primitive of the 3D
  /// distributed transpose. dest == rank() is a local copy.
  template <typename T>
  std::vector<T> route(std::span<const T> send, int dest, CommCategory cat) {
    check_member(dest);
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = send.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = send.size();
    state_->slot_dest[static_cast<std::size_t>(rank_)] = dest;
    phase();
    int src = -1;
    for (int r = 0; r < size(); ++r) {
      if (state_->slot_dest[static_cast<std::size_t>(r)] == rank_) {
        src = r;
        break;
      }
    }
    CAGNET_CHECK(src >= 0, "route: destinations do not form a permutation");
    const auto len = state_->slot_len[static_cast<std::size_t>(src)];
    std::vector<T> recv(len);
    if (len > 0) {
      std::memcpy(recv.data(),
                  state_->slot_ptr[static_cast<std::size_t>(src)],
                  len * sizeof(T));
    }
    phase();
    if (src != rank_) charge(cat, 1.0, len * sizeof(T));
    return recv;
  }

  /// Gather to root (rank-ordered concatenation at root; empty elsewhere).
  template <typename T>
  Gathered<T> gather(std::span<const T> mine, int root, CommCategory cat) {
    check_member(root);
    const int p = size();
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = mine.data();
    state_->slot_len[static_cast<std::size_t>(rank_)] = mine.size();
    phase();
    Gathered<T> result;
    if (rank_ == root) {
      result.offsets.resize(static_cast<std::size_t>(p) + 1, 0);
      for (int r = 0; r < p; ++r) {
        result.offsets[static_cast<std::size_t>(r) + 1] =
            result.offsets[static_cast<std::size_t>(r)] +
            state_->slot_len[static_cast<std::size_t>(r)];
      }
      result.data.resize(result.offsets.back());
      for (int r = 0; r < p; ++r) {
        const auto len = state_->slot_len[static_cast<std::size_t>(r)];
        if (len == 0) continue;
        std::memcpy(
            result.data.data() + result.offsets[static_cast<std::size_t>(r)],
            state_->slot_ptr[static_cast<std::size_t>(r)], len * sizeof(T));
      }
    }
    phase();
    charge(cat, ceil_log2(p),
           rank_ == root ? (result.data.size() - mine.size()) * sizeof(T)
                         : mine.size() * sizeof(T));
    return result;
  }

 private:
  friend void run_world(int, const std::function<void(Comm&)>&,
                        std::vector<CostMeter>*);

  Comm(std::shared_ptr<detail::CommState> state, int rank, CostMeter* meter)
      : state_(std::move(state)), rank_(rank), meter_(meter) {}

  void check_member(int r) const {
    CAGNET_CHECK(r >= 0 && r < size(), "rank out of range");
  }

  /// One barrier phase with abort propagation. Const because it only
  /// touches the shared state, never this rank's identity.
  void phase() const;

  /// Debug-style guard: all ranks must pass matching sizes to size-uniform
  /// collectives (cheap, and catches the classic SUMMA off-by-one).
  void sync_sizes(std::size_t n, const char* what) const;

  void charge(CommCategory cat, double latency_units, std::size_t bytes) {
    meter_->add(cat, latency_units,
                static_cast<double>(bytes) / sizeof(Real));
  }

  template <typename T>
  void reduce_impl(std::span<T> data, CommCategory cat, bool is_max) {
    const int p = size();
    state_->slot_ptr[static_cast<std::size_t>(rank_)] = data.data();
    phase();
    if (rank_ == 0) state_->scratch.resize(data.size() * sizeof(T));
    phase();
    T* scratch = reinterpret_cast<T*>(state_->scratch.data());
    // Rank r reduces its chunk across all publishers (reduce-scatter step).
    const std::size_t lo = data.size() * static_cast<std::size_t>(rank_) /
                           static_cast<std::size_t>(p);
    const std::size_t hi = data.size() *
                           (static_cast<std::size_t>(rank_) + 1) /
                           static_cast<std::size_t>(p);
    for (std::size_t i = lo; i < hi; ++i) {
      T acc = static_cast<const T*>(state_->slot_ptr[0])[i];
      for (int r = 1; r < p; ++r) {
        const T v =
            static_cast<const T*>(state_->slot_ptr[static_cast<std::size_t>(r)])[i];
        if (is_max) {
          if (v > acc) acc = v;
        } else {
          acc += v;
        }
      }
      scratch[i] = acc;
    }
    phase();
    // All-gather step: everyone copies the full reduced vector.
    std::memcpy(data.data(), scratch, data.size() * sizeof(T));
    phase();
    charge(cat, 2.0 * ceil_log2(p),
           2 * data.size() * sizeof(T) * (p - 1) / std::max(p, 1));
  }

  std::shared_ptr<detail::CommState> state_;
  int rank_ = 0;
  CostMeter* meter_ = nullptr;
};

/// Launch a world of `p` ranks, each running `fn(comm)` on its own thread.
/// Rethrows the first rank exception after joining all threads. If
/// `meters_out` is non-null it receives each rank's final CostMeter.
void run_world(int p, const std::function<void(Comm&)>& fn,
               std::vector<CostMeter>* meters_out = nullptr);

}  // namespace cagnet
