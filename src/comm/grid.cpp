#include "src/comm/grid.hpp"

namespace cagnet {

int exact_sqrt(int p) {
  for (int r = 0; r * r <= p; ++r) {
    if (r * r == p) return r;
  }
  return 0;
}

int exact_cbrt(int p) {
  for (int r = 0; r * r * r <= p; ++r) {
    if (r * r * r == p) return r;
  }
  return 0;
}

Grid2D Grid2D::create(const Comm& world, int pr, int pc) {
  CAGNET_CHECK(world.valid(), "invalid world communicator");
  CAGNET_CHECK(pr >= 1 && pc >= 1 && pr * pc == world.size(),
               "grid dims must multiply to world size");
  Grid2D g;
  g.world = world;
  g.pr = pr;
  g.pc = pc;
  g.i = world.rank() / pc;
  g.j = world.rank() % pc;
  g.row = world.split(/*color=*/g.i, /*key=*/g.j);
  g.col = world.split(/*color=*/g.j, /*key=*/g.i);
  return g;
}

Grid2D Grid2D::create_square(const Comm& world) {
  const int r = exact_sqrt(world.size());
  CAGNET_CHECK(r > 0, "world size is not a perfect square");
  return create(world, r, r);
}

Grid3D Grid3D::create(const Comm& world, int q) {
  CAGNET_CHECK(world.valid(), "invalid world communicator");
  CAGNET_CHECK(q >= 1 && q * q * q == world.size(),
               "3D grid dim must cube to world size");
  Grid3D g;
  g.world = world;
  g.q = q;
  const int rank = world.rank();
  g.k = rank / (q * q);
  g.i = (rank / q) % q;
  g.j = rank % q;
  g.layer = world.split(/*color=*/g.k, /*key=*/g.i * q + g.j);
  g.row = world.split(/*color=*/g.k * q + g.i, /*key=*/g.j);
  g.col = world.split(/*color=*/g.k * q + g.j, /*key=*/g.i);
  g.fiber = world.split(/*color=*/g.i * q + g.j, /*key=*/g.k);
  return g;
}

Grid3D Grid3D::create_cube(const Comm& world) {
  const int q = exact_cbrt(world.size());
  CAGNET_CHECK(q > 0, "world size is not a perfect cube");
  return create(world, q);
}

}  // namespace cagnet
