#include "src/comm/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

namespace cagnet {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kPost:
      return "post";
    case FaultSite::kWait:
      return "wait";
    case FaultSite::kCharge:
      return "charge";
  }
  return "?";
}

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kKill:
      return "kill";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kPoison:
      return "poison";
  }
  return "?";
}

namespace {

std::string aborted_message(int rank, const char* op, CommCategory cat,
                            FaultSite site, const std::string& cause) {
  std::ostringstream os;
  os << "communicator aborted: rank " << rank << ": " << op << " ["
     << comm_category_name(cat) << ", " << fault_site_name(site)
     << "]: " << cause;
  return os.str();
}

}  // namespace

CommAborted::CommAborted(int rank, const char* op, CommCategory cat,
                         FaultSite site, const std::string& cause)
    : Error(aborted_message(rank, op, cat, site, cause)),
      rank_(rank),
      op_(op),
      cat_(cat),
      site_(site),
      cause_(cause) {}

std::uint64_t seeded_nth(std::uint64_t seed, std::uint64_t lo,
                         std::uint64_t hi) {
  CAGNET_CHECK(lo >= 1 && lo <= hi, "seeded_nth: need 1 <= lo <= hi");
  // splitmix64: a fixed, platform-independent mix so the same seed names
  // the same injection point everywhere.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return lo + z % (hi - lo + 1);
}

FaultPlan& FaultPlan::add(const FaultTrigger& trigger) {
  CAGNET_CHECK(trigger.nth >= 1, "fault trigger: nth must be 1-based");
  CAGNET_CHECK(trigger.rank >= 0, "fault trigger: rank must be non-negative");
  armed_.emplace_back(trigger);
  return *this;
}

FaultPlan& FaultPlan::kill(int rank, CommCategory cat, FaultSite site,
                           std::uint64_t nth) {
  return add({FaultAction::kKill, rank, cat, false, site, nth, 0});
}

FaultPlan& FaultPlan::kill_any(int rank, FaultSite site, std::uint64_t nth) {
  return add({FaultAction::kKill, rank, CommCategory::kDense, true, site,
              nth, 0});
}

FaultPlan& FaultPlan::delay(int rank, CommCategory cat, FaultSite site,
                            std::uint64_t nth, int millis) {
  CAGNET_CHECK(millis >= 0, "fault trigger: delay must be non-negative");
  return add({FaultAction::kDelay, rank, cat, false, site, nth, millis});
}

FaultPlan& FaultPlan::poison(int rank, CommCategory cat, FaultSite site,
                             std::uint64_t nth) {
  return add({FaultAction::kPoison, rank, cat, false, site, nth, 0});
}

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw Error("CAGNET_FAULT: malformed spec \"" + spec + "\": " + why +
              " (grammar: action:rank:category:site:nth[:millis] entries "
              "joined by ';'; see src/comm/fault.hpp)");
}

FaultAction parse_action(const std::string& spec, const std::string& s) {
  if (s == "kill") return FaultAction::kKill;
  if (s == "delay") return FaultAction::kDelay;
  if (s == "poison") return FaultAction::kPoison;
  bad_spec(spec, "unknown action \"" + s + "\"");
}

bool parse_category(const std::string& spec, const std::string& s,
                    CommCategory& cat) {
  if (s == "any") return true;
  if (s == "dense") {
    cat = CommCategory::kDense;
  } else if (s == "sparse") {
    cat = CommCategory::kSparse;
  } else if (s == "trpose" || s == "transpose") {
    cat = CommCategory::kTranspose;
  } else if (s == "halo") {
    cat = CommCategory::kHalo;
  } else if (s == "compressed") {
    cat = CommCategory::kCompressed;
  } else if (s == "control") {
    cat = CommCategory::kControl;
  } else {
    bad_spec(spec, "unknown category \"" + s + "\"");
  }
  return false;
}

FaultSite parse_site(const std::string& spec, const std::string& s) {
  if (s == "post") return FaultSite::kPost;
  if (s == "wait") return FaultSite::kWait;
  if (s == "charge") return FaultSite::kCharge;
  bad_spec(spec, "unknown site \"" + s + "\"");
}

std::uint64_t parse_uint(const std::string& spec, const std::string& s,
                         const char* what) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    bad_spec(spec, std::string(what) + " \"" + s +
                       "\" is not a non-negative integer");
  }
  return std::stoull(s);
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(s);
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry : split_on(spec, ';')) {
    if (entry.empty()) continue;
    const std::vector<std::string> f = split_on(entry, ':');
    if (f.size() < 5 || f.size() > 6) {
      bad_spec(spec, "entry \"" + entry + "\" needs 5 or 6 ':' fields");
    }
    FaultTrigger t;
    t.action = parse_action(spec, f[0]);
    t.rank = static_cast<int>(parse_uint(spec, f[1], "rank"));
    t.any_category = parse_category(spec, f[2], t.category);
    t.site = parse_site(spec, f[3]);
    if (!f[4].empty() && f[4][0] == 's') {
      t.nth = seeded_nth(parse_uint(spec, f[4].substr(1), "seed"), 1, 8);
    } else {
      t.nth = parse_uint(spec, f[4], "nth");
      if (t.nth == 0) bad_spec(spec, "nth must be 1-based");
    }
    if (f.size() == 6) {
      if (t.action != FaultAction::kDelay) {
        bad_spec(spec, "millis field is only valid for delay entries");
      }
      t.delay_millis = static_cast<int>(parse_uint(spec, f[5], "millis"));
    }
    plan.add(t);
  }
  return plan;
}

void FaultPlan::on_event(int rank, CommCategory cat, FaultSite site,
                         const char* op) {
  for (Armed& armed : armed_) {
    const FaultTrigger& t = armed.trigger;
    if (t.rank != rank || t.site != site) continue;
    if (!t.any_category && t.category != cat) continue;
    // Counts are cumulative over the process, so a trigger fires exactly
    // once: after the abort a rebuilt world sails past it (the fault was
    // transient), which is what lets the recovery drills converge.
    const std::uint64_t n =
        armed.count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n != t.nth) continue;
    switch (t.action) {
      case FaultAction::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(t.delay_millis));
        break;
      case FaultAction::kKill:
        throw CommAborted(rank, op, cat, site, "injected rank kill");
      case FaultAction::kPoison:
        throw CommAborted(rank, op, cat, site, "poisoned payload detected");
    }
  }
}

namespace {

struct GlobalPlan {
  std::mutex mutex;
  bool initialized = false;
  std::shared_ptr<FaultPlan> plan;
};

GlobalPlan& global_plan() {
  static GlobalPlan g;
  return g;
}

}  // namespace

std::shared_ptr<FaultPlan> fault_plan() {
  GlobalPlan& g = global_plan();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (!g.initialized) {
    // Lazy env read so a malformed CAGNET_FAULT surfaces as a catchable
    // Error at first use (the compress-knob idiom), not a startup crash.
    const char* env = std::getenv("CAGNET_FAULT");
    if (env != nullptr && env[0] != '\0') {
      auto parsed = std::make_shared<FaultPlan>(FaultPlan::parse(env));
      g.plan = parsed->trigger_count() > 0 ? parsed : nullptr;
    }
    g.initialized = true;
  }
  return g.plan;
}

void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
  GlobalPlan& g = global_plan();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.plan = std::move(plan);
  g.initialized = true;
}

}  // namespace cagnet
