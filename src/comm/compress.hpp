// Lossy codecs for compressed communication (the PR's words-to-bits
// multiplier on top of the overlap/halo word reductions).
//
// Three codecs, all operating on fixed 256-element chunks so the encoded
// layout — and therefore the decoded values — never depend on the thread
// budget used to pack them:
//
//   fp16  2 bytes/value. IEEE half with round-to-nearest-even; values
//         beyond half range saturate to +-inf (never happens for the
//         gradients this repo moves). 4x over Real.
//   int8  per chunk: [float scale = max|v|/127][int8 q_i], 4 + len bytes.
//         q_i = round(v_i / scale) clamped to [-127, 127]. ~7.9x.
//   1bit  per chunk: [float mean_pos][float mean_neg][sign bitmap],
//         8 + ceil(len/8) bytes. Bit set => v_i >= 0, decoded to the
//         chunk's positive mean; clear => negative mean (Dryden et al.,
//         MLHPC@SC'16). ~51x.
//
// Error feedback: pass a residual store to compress_encode and it encodes
// v = src + residual, then leaves residual = v - decode(encode(v)), so
// the quantization error of one reduction round is re-injected into the
// next. The residual is computed entirely at encode time — no decode
// round-trip is needed on the receive side.
//
// Encode and decode parallelize over codec chunks on the persistent pool
// (src/util/parallel.hpp); chunk outputs are disjoint, so results are
// bitwise deterministic for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace cagnet {

/// Wire codecs selectable via CAGNET_COMPRESS.
enum class CompressMode : std::uint8_t {
  kOff = 0,  ///< exact Real payloads (today's paths, bitwise unchanged)
  kFp16,     ///< IEEE half precision, 4x
  kInt8,     ///< per-chunk max-scaled int8, ~7.9x
  k1Bit,     ///< per-chunk sign + two means, ~51x
};

/// Display/parse name: "off", "fp16", "int8", "1bit".
const char* compress_mode_name(CompressMode mode);

/// Parse a CAGNET_COMPRESS value; throws Error on an unknown string.
CompressMode parse_compress_mode(const std::string& name);

/// Process-global compression mode (default off; the CAGNET_COMPRESS env
/// var, read once at first use, can preset it). Like the other runtime
/// knobs this is not per-trainer state: flip it only between run_world
/// invocations.
CompressMode compress_mode();
void set_compress_mode(CompressMode mode);

/// Mode for the weight-gradient all-reduce: every codec is eligible.
inline CompressMode gradient_compress_mode() { return compress_mode(); }

/// Mode for row payloads (halo rows, feature reduce-scatters): fp16/int8
/// only. 1-bit collapses activations to two values per chunk, which the
/// aggregation cannot absorb the way the error-feedback gradient loop
/// can, so k1Bit leaves row traffic exact.
CompressMode row_compress_mode();

/// Values per codec chunk. Fixed so the encoded layout is independent of
/// the thread budget (bitwise-deterministic pack/unpack).
constexpr std::size_t kCompressChunk = 256;

/// True when the compressed reduce-scatter actually undercuts the exact
/// op's wire bytes. Its transport is an all-gather of every rank's full
/// encoded contribution (plus a u64 length header each), so the byte win
/// is roughly (8/P) x the codec ratio: int8 pays up to P ~ 7, 1-bit far
/// beyond, fp16 never. Callers fall back to the exact reduce-scatter when
/// compression would inflate the wire; the gate is a pure function of
/// (mode, n, p), so it is rank-uniform and overlap-mode invariant.
bool reduce_scatter_compression_pays(CompressMode mode, std::size_t n, int p);

/// Encoded byte count for n values. kOff reports the uncompressed
/// n * sizeof(Real) so callers can form compression ratios.
std::size_t encoded_size_bytes(CompressMode mode, std::size_t n);

/// Encode src into dst (which must hold encoded_size_bytes(mode, n)
/// bytes). With a non-null residual the codec applies error feedback:
/// it encodes v = src + residual and stores v - decode(encode(v)) back
/// into residual (resized and zeroed on first use or length change).
void compress_encode(CompressMode mode, std::span<const Real> src,
                     std::uint8_t* dst, std::vector<Real>* residual);

/// Decode elements [lo, hi) of an n-value encoded buffer into
/// dst[0 .. hi-lo). Ranges may start mid-chunk (used by the compressed
/// reduce-scatter, where each rank decodes only its own output slice).
void compress_decode_range(CompressMode mode, const std::uint8_t* src,
                           std::size_t n, std::size_t lo, std::size_t hi,
                           Real* dst);

/// Decode all n values.
inline void compress_decode(CompressMode mode, const std::uint8_t* src,
                            std::size_t n, Real* dst) {
  compress_decode_range(mode, src, n, 0, n, dst);
}

}  // namespace cagnet
