#include "src/comm/machine.hpp"

#include <algorithm>

namespace cagnet {

double MachineModel::spmm_gflops(double avg_degree, double dense_width) const {
  const double degree_eff = avg_degree / (avg_degree + spmm_degree_half);
  const double width_eff = dense_width / (dense_width + spmm_width_half);
  return spmm_base_gflops * degree_eff * width_eff;
}

void WorkMeter::add_spmm(const MachineModel& m, double nnz, double width,
                         double avg_degree) {
  const double flops = 2.0 * nnz * width;
  const double rate = std::max(m.spmm_gflops(avg_degree, width), 1e-3);
  spmm_flops_ += flops;
  spmm_seconds_ += flops / (rate * 1e9);
}

void WorkMeter::add_gemm(const MachineModel& m, double flops) {
  gemm_flops_ += flops;
  gemm_seconds_ += flops / (m.gemm_gflops * 1e9);
}

void WorkMeter::merge_max(const WorkMeter& other) {
  spmm_seconds_ = std::max(spmm_seconds_, other.spmm_seconds_);
  gemm_seconds_ = std::max(gemm_seconds_, other.gemm_seconds_);
  spmm_flops_ = std::max(spmm_flops_, other.spmm_flops_);
  gemm_flops_ = std::max(gemm_flops_, other.gemm_flops_);
}

}  // namespace cagnet
